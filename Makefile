GO ?= go

.PHONY: build vet test race bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# vet + unit tests + a -race pass over the scan-stress and parallel-driver
# tests (the paths with cross-goroutine iterators, epoch pins, and shared
# devices).
test: vet
	$(GO) test ./...
	$(GO) test -race -run 'ConcurrentScansUnderWrites|ConcurrentOpsAcrossPartitions|ParallelScanAccounting' ./internal/core/ ./bench/

# Race-detector pass over the packages with lock-free or multi-goroutine
# paths (manifest snapshots, iterator epoch pins, parallel partition
# driver, shared devices).
race:
	$(GO) test -race ./internal/core/ ./internal/sst/ ./internal/simdev/ ./bench/

# Runs the harness benchmarks (YCSB-B read-heavy and YCSB-E scan-heavy,
# serial and parallel drivers) and emits BENCH_<date>.json so the perf
# trajectory is tracked per PR. See scripts/bench.sh for knobs.
bench:
	./scripts/bench.sh
