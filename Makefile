GO ?= go

.PHONY: build vet test race bench serve-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# vet + unit tests (includes the wire-path malformed-RESP table) + a -race
# pass over the scan-stress, parallel-driver, concurrent-pipelined-client,
# and async-compaction tests (the paths with cross-goroutine iterators,
# epoch pins, shared devices, one server serving many connections, and
# background merge commits racing put/get/scan/close).
test: vet
	$(GO) test ./...
	$(GO) test -race -run 'ConcurrentScansUnderWrites|ConcurrentOpsAcrossPartitions|ParallelScanAccounting' ./internal/core/ ./bench/
	$(GO) test -race -run 'AsyncConcurrentOpsRaceMergeCommit|AsyncCloseRacesMergeCommit|AsyncModelBasedChurn' ./internal/core/
	$(GO) test -race -run 'ConcurrentPipelinedClients|GracefulShutdown' ./internal/server/

# Race-detector pass over the packages with lock-free or multi-goroutine
# paths (manifest snapshots, iterator epoch pins, parallel partition
# driver, shared devices, the network server).
race:
	$(GO) test -race ./internal/core/ ./internal/sst/ ./internal/simdev/ ./internal/server/ ./bench/

# Starts prismserver on loopback, drives a short pipelined prismload burst
# against it, and verifies the generator's issued op counts match the
# server's INFO counters.
serve-smoke:
	./scripts/serve_smoke.sh

# Runs the harness benchmarks (YCSB-B read-heavy and YCSB-E scan-heavy,
# serial and parallel drivers) and emits BENCH_<date>.json so the perf
# trajectory is tracked per PR. See scripts/bench.sh for knobs.
bench:
	./scripts/bench.sh
