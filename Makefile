GO ?= go

.PHONY: build test race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with lock-free or multi-goroutine
# paths (manifest snapshots, parallel partition driver, shared devices).
race:
	$(GO) test -race ./internal/core/ ./internal/sst/ ./internal/simdev/ ./bench/

# Runs the harness benchmarks and emits BENCH_<date>.json so the perf
# trajectory is tracked per PR. See scripts/bench.sh for knobs.
bench:
	./scripts/bench.sh
