GO ?= go

.PHONY: build vet lint test race bench bench-smoke serve-smoke crash-smoke metrics-smoke chaos-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# go vet plus prismvet (cmd/prismvet), the repo's own analyzer suite for the
# conventions the compiler can't check: *Locked call discipline, refcount and
# epoch pairing, WAL/slab ordering, COW publication, shadowed-error drops.
# Zero unannotated diagnostics is the bar; see internal/analysis/doc.go for
# the invariant catalog and the //prismvet:ignore contract.
lint:
	./scripts/lint.sh

# lint (vet + prismvet) + unit tests (includes the wire-path malformed-RESP
# table) + a -race
# pass over the scan-stress, parallel-driver, concurrent-pipelined-client,
# async-compaction, lock-free-read, and write-queue tests (the paths with
# cross-goroutine iterators, epoch pins, shared devices, one server serving
# many connections, background merge commits racing put/get/scan/close,
# lock-free GETs racing all of the above plus Close, and the owner-queue
# write path: 8 producers × SET/DEL/MSET racing lock-free GETs, an open
# iterator, an async compaction commit, and Close), plus the durability
# tests (WAL group commit, crash recovery, fault injection) under -race —
# the group-commit flusher and WaitDurable waiters are cross-goroutine.
test: lint
	$(GO) test ./...
	$(GO) test -race -run 'ConcurrentScansUnderWrites|ConcurrentOpsAcrossPartitions|ParallelScanAccounting' ./internal/core/ ./bench/
	$(GO) test -race -run 'AsyncConcurrentOpsRaceMergeCommit|AsyncCloseRacesMergeCommit|AsyncModelBasedChurn' ./internal/core/
	$(GO) test -race -run 'LockFreeGetRacesMutators' ./internal/core/
	$(GO) test -race -run 'WriteQueueRacesMutators' ./internal/core/
	$(GO) test -race -run 'SnapshotConcurrentReads' ./internal/btree/
	$(GO) test -race -run 'ConcurrentPipelinedClients|GracefulShutdown' ./internal/server/
	$(GO) test -race -run 'Durable' ./internal/core/
	$(GO) test -race ./internal/storage/

# Race-detector pass over the packages with lock-free or multi-goroutine
# paths (manifest snapshots, read views and the COW B-tree, iterator epoch
# pins, parallel partition driver, shared devices, the network server).
race:
	$(GO) test -race ./internal/core/ ./internal/btree/ ./internal/sst/ ./internal/simdev/ ./internal/server/ ./internal/storage/ ./bench/

# Starts prismserver on loopback, drives a short pipelined prismload burst
# against it, and verifies the generator's issued op counts match the
# server's INFO counters.
serve-smoke:
	./scripts/serve_smoke.sh

# Telemetry, end to end: start prismserver with -metrics-addr and a data
# directory, drive a write-heavy prismload burst, scrape /metrics, and
# assert the key series exist and observed the burst (per-op latencies,
# write batching, WAL fsync latency, group-commit batch size), plus /events
# and the pprof mux.
metrics-smoke:
	./scripts/metrics_smoke.sh

# Durability, end to end: start prismserver with a data directory, drive a
# write burst journaling every acknowledged write client-side, kill -9 the
# server mid-run, restart, and verify no acknowledged write was lost; then
# kill -9 and recover once more (recovery must be idempotent).
crash-smoke:
	./scripts/crash_smoke.sh

# Fault tolerance, end to end: start prismserver with -chaos-debug, arm a
# WAL fault over the wire (DEBUG FAULT), and burst writes into it — the
# server must degrade to read-only (-READONLY refusals, reads and HEALTH
# still serving, process alive), survive a kill -9, and recover every
# acknowledged write on restart, healthy and writable again.
chaos-smoke:
	./scripts/chaos_smoke.sh

# Runs the harness benchmarks (YCSB-B read-heavy and YCSB-E scan-heavy,
# serial and parallel drivers) and emits BENCH_<date>.json so the perf
# trajectory is tracked per PR. See scripts/bench.sh for knobs.
bench:
	./scripts/bench.sh

# One fast iteration of the contended-read and contended-write rows
# (in-process hot-partition GETs and SETs at 1/8 goroutines — the SET rows
# in both write modes so the owner-queue-vs-locked margin is visible — plus
# the GET-heavy serving row): a cheap CI tripwire for regressions in the
# lock-free read path and the batched write path, without waiting for the
# nightly bench script.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkContendedGets/goroutines=(1|8)' -benchtime 1x ./bench/
	$(GO) test -run '^$$' -bench 'BenchmarkContendedSets(Locked)?/goroutines=(1|8)' -benchtime 1x ./bench/
	$(GO) test -run '^$$' -bench 'BenchmarkServerContendedGets' -benchtime 1x ./internal/server/
