#!/bin/sh
# Chaos smoke test: storage faults degrade the server to read-only — they
# must not hang it, crash it, or lose an acknowledged write.
#
# Build prismserver and prismload, start the server with a durable data
# directory and -chaos-debug (the DEBUG FAULT wire hook), run a clean
# baseline burst, then arm a WAL fault over the wire and drive a second
# burst with bounded retries into it. The fault poisons the WAL mid-burst:
# the engine must transition to degraded, answer every later write with
# -READONLY (observed in the load generator's log), and keep serving reads
# and HEALTH on a live process. Then kill -9 the degraded server, restart
# it on the same directory, and -verify both acked-write journals: every
# write acknowledged before the fault (and before the kill) must be there,
# and the recovered server must be healthy and writable again.
#
#   PRISM_PORT   listen port (default 16399)
set -e
cd "$(dirname "$0")/.."

port="${PRISM_PORT:-16399}"
addr="127.0.0.1:$port"
bin="$(mktemp -d)"
data="$bin/data"
trap 'kill -9 "$srv_pid" 2>/dev/null; rm -rf "$bin"' EXIT

go build -o "$bin/prismserver" ./cmd/prismserver
go build -o "$bin/prismload" ./cmd/prismload

# respcmd: one-shot RESP client for the DEBUG FAULT / HEALTH / PING
# control-plane calls (no redis-cli dependency). Prints the reply
# flattened; error replies keep their leading '-' so grep can see them.
cat > "$bin/respcmd.go" <<'EOF'
package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"
)

func readReply(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimRight(line, "\r\n")
	if line == "" {
		return "", fmt.Errorf("empty reply line")
	}
	switch line[0] {
	case '+', ':':
		return line[1:], nil
	case '-':
		return line, nil
	case '$':
		n, err := strconv.Atoi(line[1:])
		if err != nil || n < 0 {
			return "", err
		}
		buf := make([]byte, n+2)
		if _, err := io_readFull(br, buf); err != nil {
			return "", err
		}
		return string(buf[:n]), nil
	case '*':
		n, err := strconv.Atoi(line[1:])
		if err != nil || n < 0 {
			return "", err
		}
		parts := make([]string, 0, n)
		for i := 0; i < n; i++ {
			p, err := readReply(br)
			if err != nil {
				return "", err
			}
			parts = append(parts, p)
		}
		return strings.Join(parts, " "), nil
	}
	return "", fmt.Errorf("unknown reply type %q", line)
}

func io_readFull(br *bufio.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := br.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func main() {
	if len(os.Args) < 3 {
		fmt.Fprintln(os.Stderr, "usage: respcmd ADDR CMD [ARG...]")
		os.Exit(2)
	}
	nc, err := net.DialTimeout("tcp", os.Args[1], 5*time.Second)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	args := os.Args[2:]
	var b strings.Builder
	fmt.Fprintf(&b, "*%d\r\n", len(args))
	for _, a := range args {
		fmt.Fprintf(&b, "$%d\r\n%s\r\n", len(a), a)
	}
	if _, err := nc.Write([]byte(b.String())); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	out, err := readReply(bufio.NewReader(nc))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(out)
}
EOF
go build -o "$bin/respcmd" "$bin/respcmd.go"

start_server() {
	"$bin/prismserver" -addr "$addr" -total 256 -quiet \
		-data-dir "$data" -wal-sync sync -chaos-debug >> "$bin/server.log" 2>&1 &
	srv_pid=$!
}

# --- Phase 1: clean baseline burst ----------------------------------------
start_server
"$bin/prismload" -addr "$addr" \
	-load -keys 2000 -value 256 -workload a \
	-ops 20000 -conns 2 -pipeline 8 \
	-acklog "$bin/acked1.log" > "$bin/load1.log" 2>&1
if [ ! -s "$bin/acked1.log" ]; then
	echo "baseline burst journaled no acknowledged writes" >&2
	exit 1
fi
"$bin/respcmd" "$addr" HEALTH | grep -q healthy
echo "baseline: $(wc -l < "$bin/acked1.log") acked writes, health healthy"

# --- Phase 2: arm a WAL fault, burst into it ------------------------------
# The 200th WAL I/O from now fails: a couple hundred writes land and ack
# first (so acked2.log is non-empty), then the log is poisoned mid-burst.
"$bin/respcmd" "$addr" DEBUG FAULT wal 200 error | grep -q OK
"$bin/prismload" -addr "$addr" \
	-keys 2000 -value 256 -workload a \
	-ops 40000 -conns 2 -pipeline 8 -retries 2 \
	-acklog "$bin/acked2.log" > "$bin/load2.log" 2>&1
cat "$bin/load2.log"
# The burst must have collided with the armed fault. The writes in flight
# when the WAL flush is poisoned get the raw storage error; whether any
# worker survives long enough to also see a post-degrade -READONLY depends
# on timing, so the deterministic -READONLY assertions come next.
if ! grep -Eq "READONLY|injected fault" "$bin/load2.log"; then
	echo "degraded burst never hit the armed fault" >&2
	exit 1
fi

# A fresh burst against the now-degraded server: every write is refused, so
# each worker retries, backs off, and gives up on -READONLY — prismload
# must observe the typed refusal, not a hang or a dropped connection.
"$bin/prismload" -addr "$addr" \
	-keys 2000 -value 256 -workload a \
	-ops 4000 -conns 2 -pipeline 8 -retries 2 \
	-acklog "$bin/acked3.log" > "$bin/load3.log" 2>&1
cat "$bin/load3.log"
if ! grep -q "READONLY" "$bin/load3.log"; then
	echo "burst against a degraded server never observed a -READONLY refusal" >&2
	exit 1
fi

# The process must be alive and still serving: reads, PING, HEALTH — only
# writes are refused.
kill -0 "$srv_pid"
"$bin/respcmd" "$addr" PING | grep -q PONG
"$bin/respcmd" "$addr" HEALTH > "$bin/health.out"
cat "$bin/health.out"
grep -q degraded "$bin/health.out"
if ! "$bin/respcmd" "$addr" SET chaos-probe 1 | grep -q READONLY; then
	echo "degraded server accepted a write" >&2
	exit 1
fi
echo "degraded: server alive, writes refused with -READONLY, reads serving"

# --- Phase 3: kill -9, restart, verify every acknowledged write -----------
kill -9 "$srv_pid" 2>/dev/null || true
wait "$srv_pid" 2>/dev/null || true
start_server
"$bin/prismload" -addr "$addr" -verify "$bin/acked1.log"
if [ -s "$bin/acked2.log" ]; then
	"$bin/prismload" -addr "$addr" -verify "$bin/acked2.log"
else
	echo "note: no writes were acknowledged between arming and the fault" >&2
fi
"$bin/respcmd" "$addr" HEALTH | grep -q healthy
"$bin/respcmd" "$addr" SET chaos-probe 1 | grep -q OK
echo "recovered: acked writes intact, health healthy, writes accepted"

# --- Graceful shutdown must still work ------------------------------------
kill -TERM "$srv_pid"
srv_status=0
wait "$srv_pid" || srv_status=$?
trap 'rm -rf "$bin"' EXIT
if [ "$srv_status" -ne 0 ]; then
	echo "prismserver exited with status $srv_status" >&2
	cat "$bin/server.log" >&2
	exit "$srv_status"
fi
echo "chaos-smoke OK"
