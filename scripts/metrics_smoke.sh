#!/bin/sh
# Telemetry smoke test: build prismserver and prismload, start the server
# with a durable data directory and the /metrics endpoint enabled, drive a
# short pipelined write-heavy burst, then scrape /metrics and assert that
# the key series exist AND observed real traffic — the per-op server
# latencies, the engine write-batch histogram, the write-queue depth gauge,
# and (because -data-dir is set) non-empty WAL fsync-latency and
# group-commit batch-size histograms. Also checks /events carries the JSON
# event log. Catches telemetry wiring rot that unit tests (which construct
# registries directly) would miss.
#
#   PRISM_PORT    RESP listen port (default 16401)
#   METRICS_PORT  metrics listen port (default 16402)
#   SMOKE_OPS     measured ops (default 20000)
set -e
cd "$(dirname "$0")/.."

port="${PRISM_PORT:-16401}"
mport="${METRICS_PORT:-16402}"
ops="${SMOKE_OPS:-20000}"
bin="$(mktemp -d)"
trap 'kill "$srv_pid" 2>/dev/null; rm -rf "$bin"' EXIT

go build -o "$bin/prismserver" ./cmd/prismserver
go build -o "$bin/prismload" ./cmd/prismload

"$bin/prismserver" -addr "127.0.0.1:$port" -metrics-addr "127.0.0.1:$mport" \
	-total 256 -data-dir "$bin/data" -quiet > "$bin/server.log" 2>&1 &
srv_pid=$!

# Write-heavy (YCSB-A is 50% update) so the WAL and write-queue series fill.
"$bin/prismload" -addr "127.0.0.1:$port" \
	-load -keys 5000 -value 256 -workload a \
	-ops "$ops" -conns 4 -pipeline 16

curl -sf "http://127.0.0.1:$mport/metrics" > "$bin/metrics.txt"
curl -sf "http://127.0.0.1:$mport/events" > "$bin/events.txt"

fail() {
	echo "metrics-smoke FAIL: $1" >&2
	echo "--- /metrics ---" >&2
	cat "$bin/metrics.txt" >&2
	exit 1
}

# A histogram "observed traffic" when its _count series is present and > 0.
hist_nonempty() {
	count=$(awk -v name="$1_count" '$1 ~ "^"name {sum += $NF} END {print sum+0}' "$bin/metrics.txt")
	[ "${count:-0}" -gt 0 ] || fail "$1 histogram empty (count=$count)"
}

# Key series must exist at all.
for series in \
	prism_server_op_wall_latency_seconds \
	prism_server_op_virtual_latency_seconds \
	prism_server_cmds_total \
	prism_server_reply_flush_bytes \
	prism_engine_ops_total \
	prism_write_batch_ops \
	prism_write_queue_depth \
	prism_wal_fsync_seconds \
	prism_wal_group_commit_records; do
	grep -q "^$series" "$bin/metrics.txt" || fail "missing series $series"
done

# And the load-bearing histograms must have actually observed the burst.
hist_nonempty prism_server_op_wall_latency_seconds
hist_nonempty prism_server_reply_flush_bytes
hist_nonempty prism_write_batch_ops
hist_nonempty prism_wal_fsync_seconds
hist_nonempty prism_wal_group_commit_records

# pprof must be mounted (profile endpoints are stdlib; index returning 200
# proves the mux wiring).
curl -sf "http://127.0.0.1:$mport/debug/pprof/" > /dev/null \
	|| fail "pprof index not served"

# The event log should carry at least the recovery/open events as JSON.
grep -q '"type":' "$bin/events.txt" || fail "/events carries no JSON events"

kill -TERM "$srv_pid"
srv_status=0
wait "$srv_pid" || srv_status=$?
trap 'rm -rf "$bin"' EXIT
if [ "$srv_status" -ne 0 ]; then
	echo "prismserver exited with status $srv_status" >&2
	cat "$bin/server.log" >&2
	exit "$srv_status"
fi
echo "metrics-smoke OK"
