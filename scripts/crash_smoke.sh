#!/bin/sh
# Crash-recovery smoke test: acknowledged writes must survive kill -9.
#
# Build prismserver and prismload, start the server with a durable data
# directory, drive a write-heavy burst with -acklog (every acknowledged
# SET/DEL journaled client-side, strictly after its reply), kill -9 the
# server mid-run, restart it on the same data directory, and run
# prismload -verify: every unambiguous acknowledged write must still be
# there. Then kill -9 the restarted server too and restart once more —
# recovery must be idempotent (recover-then-recover) — before a final
# graceful shutdown.
#
#   PRISM_PORT   listen port (default 16398)
#   SMOKE_OPS    ops offered before the kill lands (default 60000)
#   KILL_AFTER   seconds before the kill -9 (default: random in [0.5, 2.5))
set -e
cd "$(dirname "$0")/.."

port="${PRISM_PORT:-16398}"
ops="${SMOKE_OPS:-60000}"
bin="$(mktemp -d)"
data="$bin/data"
trap 'kill -9 "$srv_pid" 2>/dev/null; rm -rf "$bin"' EXIT

go build -o "$bin/prismserver" ./cmd/prismserver
go build -o "$bin/prismload" ./cmd/prismload

start_server() {
	"$bin/prismserver" -addr "127.0.0.1:$port" -total 256 -quiet \
		-data-dir "$data" -wal-sync sync >> "$bin/server.log" 2>&1 &
	srv_pid=$!
}

# --- Round 1: load + write burst, kill -9 mid-run -------------------------
start_server

# Workload A (50% updates) over few keys: plenty of acknowledged SETs, and
# hot-key overwrites exercise WAL replay ordering. -batch 8 coalesces SET
# runs into MSETs so the acked-write journal covers batched group commits:
# each MSET reply acknowledges all of its pairs at once, and none of them
# may be lost. The burst runs in the background; the kill lands while it is
# in full flight.
"$bin/prismload" -addr "127.0.0.1:$port" \
	-load -keys 3000 -value 256 -workload a \
	-ops "$ops" -conns 4 -pipeline 16 -batch 8 \
	-acklog "$bin/acked.log" > "$bin/load.log" 2>&1 &
load_pid=$!

# Random delay so successive runs kill at different points of the burst
# (awk, not $RANDOM — /bin/sh may be dash). The load phase plus a slice of
# the measured run fit inside it often enough to matter either way.
delay="${KILL_AFTER:-$(awk 'BEGIN{srand(); printf "%.2f", 0.5+2*rand()}')}"
sleep "$delay"
kill -9 "$srv_pid" 2>/dev/null || true
wait "$srv_pid" 2>/dev/null || true

# The client must notice the dead server and exit 0 (crash is the expected
# ending of an -acklog run), leaving the journal of acknowledged writes.
load_status=0
wait "$load_pid" || load_status=$?
cat "$bin/load.log"
if [ "$load_status" -ne 0 ]; then
	echo "prismload -acklog run failed (status $load_status)" >&2
	exit "$load_status"
fi
if [ ! -s "$bin/acked.log" ]; then
	echo "no acknowledged writes were journaled before the kill (killed too early?)" >&2
	exit 1
fi
echo "killed server (pid $srv_pid) after ${delay}s; $(wc -l < "$bin/acked.log") acked writes journaled"

# --- Round 2: restart, verify every acknowledged write --------------------
start_server
"$bin/prismload" -addr "127.0.0.1:$port" -verify "$bin/acked.log"

# --- Round 3: kill -9 again, restart, verify again ------------------------
# Recovery must be idempotent: recovering a directory that was itself
# produced by recovery (and then killed) converges on the same state.
kill -9 "$srv_pid" 2>/dev/null || true
wait "$srv_pid" 2>/dev/null || true
start_server
"$bin/prismload" -addr "127.0.0.1:$port" -verify "$bin/acked.log"

# --- Graceful shutdown must still work after all that ---------------------
kill -TERM "$srv_pid"
srv_status=0
wait "$srv_pid" || srv_status=$?
trap 'rm -rf "$bin"' EXIT
if [ "$srv_status" -ne 0 ]; then
	echo "prismserver exited with status $srv_status" >&2
	cat "$bin/server.log" >&2
	exit "$srv_status"
fi
echo "crash-smoke OK"
