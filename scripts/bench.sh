#!/bin/sh
# Runs the harness benchmarks with -benchmem and records the results as
# BENCH_<date>.json in the repo root, so the perf trajectory is tracked
# per PR. Knobs:
#
#   BENCH_PATTERN  -bench pattern (default ".")
#   BENCH_TIME     -benchtime (default "1x")
#
#   BENCH_PATTERN=BenchmarkYCSBB BENCH_TIME=5x ./scripts/bench.sh
set -e
cd "$(dirname "$0")/.."

out="BENCH_$(date +%Y-%m-%d).json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# The driver benchmarks live in ./bench (including the contended-read
# scaling rows BenchmarkContendedGets/goroutines=1..8 — wall-Kops of one
# hot partition under concurrent lock-free GETs; the contended-write
# scaling rows BenchmarkContendedSets/goroutines=1..8 against the
# BenchmarkContendedSetsLocked baseline — wall-Kops of one hot partition
# through the batched owner-queue write path vs the legacy locked path,
# where async should win at every width — plus the YCSB-A-shaped
# BenchmarkContendedMixed row with lock-free GETs racing the write queue,
# and the durability-cost
# rows BenchmarkWALFsyncModes/{sync,group,nosync} — acknowledged SETs/s
# against a real data directory under each WAL sync mode, where the
# sync-vs-nosync spread prices fsync-per-ack and group commit should
# recoup most of it), the per-figure harness
# benchmarks in the root package, and the wire-path benchmarks in
# ./internal/server: pipelined vs unpipelined serving, the GET-heavy
# multi-connection BenchmarkServerContendedGets row (prismload -workload c
# shape against a single hot partition), plus the compaction-interference
# trio (BenchmarkCompactionInterferenceSync/Async/None) — a write-heavy
# prismload-shaped SET stream against an in-process prismserver with
# demotion merges running steadily, whose set-p99-us rows track what
# foreground SETs pay for compaction under inline (sync) vs background
# (async) execution against the no-compaction baseline. (|| status=$?
# keeps set -e from discarding the captured output on failure.)
status=0
go test -run '^$' -bench "${BENCH_PATTERN:-.}" -benchmem \
	-benchtime "${BENCH_TIME:-1x}" . ./bench/... ./internal/server/ > "$tmp" || status=$?
cat "$tmp"
[ "$status" -eq 0 ] || exit "$status"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { printf "{\n  \"date\": \"%s\",\n  \"benchmarks\": [\n", date; n = 0 }
/^Benchmark/ && NF >= 3 {
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iters\": %s", $1, $2
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/"/, "", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END { if (n) printf "\n"; print "  ]\n}" }
' "$tmp" > "$out"

echo "wrote $out"
