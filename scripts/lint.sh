#!/usr/bin/env bash
# Static analysis gate: go vet plus prismvet, the repo's own analyzer suite
# (internal/analysis) that machine-checks the concurrency and durability
# conventions — *Locked call discipline, Acquire/Release and epoch pairing,
# WAL-after-slab ordering, copy-on-write publication, shadowed-error drops.
#
# Usage: scripts/lint.sh [-json]
#   -json   emit prismvet diagnostics as a JSON array on stdout (go vet
#           output still goes to stderr in its own format)
set -euo pipefail
cd "$(dirname "$0")/.."

JSON=""
for arg in "$@"; do
  case "$arg" in
    -json|--json) JSON="-json" ;;
    *) echo "usage: scripts/lint.sh [-json]" >&2; exit 2 ;;
  esac
done

go vet ./...
# shellcheck disable=SC2086
go run ./cmd/prismvet $JSON
