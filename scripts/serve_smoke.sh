#!/bin/sh
# Serve-path smoke test: build prismserver and prismload, start the server
# on loopback, run a short pipelined closed-loop burst (load phase + YCSB-B
# measure), and let prismload -check verify that its issued op counts match
# the server's INFO command counters exactly. Then shut the server down
# gracefully and require a clean exit.
#
#   PRISM_PORT  listen port (default 16399)
#   SMOKE_OPS   measured ops (default 20000)
set -e
cd "$(dirname "$0")/.."

port="${PRISM_PORT:-16399}"
ops="${SMOKE_OPS:-20000}"
bin="$(mktemp -d)"
trap 'kill "$srv_pid" 2>/dev/null; rm -rf "$bin"' EXIT

go build -o "$bin/prismserver" ./cmd/prismserver
go build -o "$bin/prismload" ./cmd/prismload

"$bin/prismserver" -addr "127.0.0.1:$port" -total 256 -quiet > "$bin/server.log" 2>&1 &
srv_pid=$!

# prismload retries the initial connection while the server starts.
"$bin/prismload" -addr "127.0.0.1:$port" \
	-load -keys 5000 -value 256 -workload b \
	-ops "$ops" -conns 4 -pipeline 16 -check

# Graceful shutdown must drain and exit 0. (|| keeps set -e from
# discarding the status we are about to report.)
kill -TERM "$srv_pid"
srv_status=0
wait "$srv_pid" || srv_status=$?
trap 'rm -rf "$bin"' EXIT
if [ "$srv_status" -ne 0 ]; then
	echo "prismserver exited with status $srv_status" >&2
	cat "$bin/server.log" >&2
	exit "$srv_status"
fi
echo "serve-smoke OK"
