// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§7). Each benchmark regenerates its experiment at a
// reduced scale and reports the headline metric(s) via b.ReportMetric, so
// `go test -bench=. -benchmem` reproduces the whole evaluation. Use
// cmd/prismbench for full-size runs and readable tables.
package prismdb_test

import (
	"fmt"
	"io"
	"testing"

	"github.com/prismdb/prismdb/bench"
	"github.com/prismdb/prismdb/workload"
)

// benchScale keeps every experiment's benchmark in the seconds range.
func benchScale() bench.Scale {
	return bench.Scale{Keys: 8000, Ops: 10000, WarmupOps: 5000, ValueSize: 1024}
}

func BenchmarkTable1Devices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Table1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2SingleVsMultiTier(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := bench.Table2(io.Discard, sc)
		if err != nil {
			b.Fatal(err)
		}
		// Paper: het multi-tier lands between single-tier QLC and NVM.
		b.ReportMetric(res[0].ThroughputKops, "nvm-Kops")
		b.ReportMetric(res[1].ThroughputKops, "qlc-Kops")
		b.ReportMetric(res[2].ThroughputKops, "het-Kops")
		b.ReportMetric(res[3].ThroughputKops, "prism-Kops")
	}
}

func BenchmarkFig2LSMBreakdown(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig2(io.Discard, sc)
		if err != nil {
			b.Fatal(err)
		}
		st := res.LSM
		var flashReads int64
		if n := len(st.ReadsPerLevel); n > 0 {
			flashReads = st.ReadsPerLevel[n-1]
		}
		total := st.ReadsMemtable + st.ReadsBlockCache + st.ReadsMiss
		for _, v := range st.ReadsPerLevel {
			total += v
		}
		if total > 0 {
			b.ReportMetric(100*float64(flashReads)/float64(total), "flash-read-%")
		}
	}
}

func BenchmarkFig5ClockDistributions(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		dists, err := bench.Fig5(io.Discard, sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(dists["ycsb-a"][3], "ycsbA-clk3-%")
		b.ReportMetric(dists["ycsb-f"][3], "ycsbF-clk3-%")
	}
}

func BenchmarkFig6MSCPolicies(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig6(io.Discard, sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res["approx-MSC"].ThroughputKops, "approx-Kops")
		b.ReportMetric(res["precise-MSC"].ThroughputKops, "precise-Kops")
		b.ReportMetric(float64(res["random-selection"].FlashWritten)/(1<<20), "random-flashMB")
		b.ReportMetric(float64(res["precise-MSC"].FlashWritten)/(1<<20), "precise-flashMB")
	}
}

func BenchmarkFig9CostSweep(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig9(io.Discard, sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res["prismdb-het10"].ThroughputKops, "prism-het10-Kops")
		b.ReportMetric(res["rocksdb-tlc"].ThroughputKops, "rocksdb-tlc-Kops")
	}
}

func BenchmarkFig10YCSBSweep(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig10(io.Discard, sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res["prismdb"]['B'].ThroughputKops, "prism-B-Kops")
		b.ReportMetric(res["rocksdb"]['B'].ThroughputKops, "rocksdb-B-Kops")
	}
}

func BenchmarkFig11SkewSweep(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig11(io.Discard, sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res["prismdb"]["0.99"].ReadHist.Quantile(0.5))/1000, "prism-p50-µs")
		b.ReportMetric(float64(res["rocksdb"]["0.99"].ReadHist.Quantile(0.5))/1000, "rocksdb-p50-µs")
	}
}

func BenchmarkFig12Lifetime(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		years, err := bench.Fig12(io.Discard, sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(years["UDB"], "UDB-years")
		b.ReportMetric(years["UP2X"], "UP2X-years")
	}
}

func BenchmarkFig13Fsync(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig13(io.Discard, sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res["prismdb"]['A'].ThroughputKops, "prism-Kops")
		b.ReportMetric(res["rocksdb"]['A'].ThroughputKops, "rocksdb-fsync-Kops")
	}
}

func BenchmarkFig14aReadCDF(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig14a(io.Discard, sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res["prismdb"].ReadHist.Quantile(0.5))/1000, "prism-p50-µs")
		b.ReportMetric(float64(res["rocksdb"].ReadHist.Quantile(0.5))/1000, "rocksdb-p50-µs")
	}
}

func BenchmarkFig14bPromotions(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		pts, err := bench.Fig14b(io.Discard, sc)
		if err != nil {
			b.Fatal(err)
		}
		prom := pts["prom"]
		noprom := pts["noprom"]
		if len(prom) > 0 && len(noprom) > 0 {
			b.ReportMetric(prom[len(prom)-1].NVMReadRatio, "prom-nvm-ratio")
			b.ReportMetric(noprom[len(noprom)-1].NVMReadRatio, "noprom-nvm-ratio")
		}
	}
}

func BenchmarkFig14cPinningThreshold(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig14c(io.Discard, sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res["95/5"][90].ThroughputKops, "read-heavy@90%-Kops")
		b.ReportMetric(res["5/95"][1].ThroughputKops, "write-heavy@1%-Kops")
	}
}

func BenchmarkFig14dPartitionScaling(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig14d(io.Discard, sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res[1].ThroughputKops, "p1-Kops")
		b.ReportMetric(res[8].ThroughputKops, "p8-Kops")
	}
}

func BenchmarkTable5Twitter(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := bench.Table5(io.Discard, sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res["cluster51"]["prismdb"].ThroughputKops, "c51-prism-Kops")
		b.ReportMetric(res["cluster51"]["rocksdb"].ThroughputKops, "c51-rocksdb-Kops")
	}
}

// BenchmarkEngineOps measures raw engine operation cost outside the
// experiment harness (microbenchmark of the public API).
func BenchmarkEngineOps(b *testing.B) {
	wl, _ := workload.YCSB('A', 4000, 512, 0.99, 3)
	gen := workload.NewGenerator(wl)
	setup := bench.Setup{System: bench.SysPrism, NVMFraction: 1.0 / 6}
	sc := bench.Scale{Keys: 4000, Ops: 1, WarmupOps: 1, ValueSize: 512}
	res, err := bench.Run(setup, sc, wl, "micro")
	if err != nil {
		b.Fatal(err)
	}
	_ = res
	_ = gen
	b.ReportMetric(res.ThroughputKops, "Kops")
}

// --- Ablation benchmarks for the design choices DESIGN.md calls out ---

// BenchmarkAblationPowerK sweeps the power-of-k candidate count (§5.3; the
// paper picks k=8 as the throughput/flash-I/O sweet spot).
func BenchmarkAblationPowerK(b *testing.B) {
	sc := benchScale()
	wl, _ := workload.YCSB('A', sc.Keys, sc.ValueSize, 0.99, 1)
	for _, k := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.Setup{
					System: bench.SysPrism, NVMFraction: 1.0 / 6, PowerK: k,
				}, sc, wl, "ablation")
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ThroughputKops, "Kops")
				b.ReportMetric(float64(res.FlashWritten)/(1<<20), "flashMB")
			}
		})
	}
}

// BenchmarkAblationRangeFiles sweeps i, the SSTs per compaction key range
// (§5.2: higher i suits workloads with small SSTs or even key spread).
func BenchmarkAblationRangeFiles(b *testing.B) {
	sc := benchScale()
	wl, _ := workload.YCSB('A', sc.Keys, sc.ValueSize, 0.99, 1)
	for _, rf := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("i=%d", rf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.Setup{
					System: bench.SysPrism, NVMFraction: 1.0 / 6, RangeFiles: rf,
				}, sc, wl, "ablation")
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ThroughputKops, "Kops")
				b.ReportMetric(float64(res.FlashWritten)/(1<<20), "flashMB")
			}
		})
	}
}

// BenchmarkAblationTrackerSize sweeps the tracker's coverage of the key
// space (the paper uses 10–20%).
func BenchmarkAblationTrackerSize(b *testing.B) {
	sc := benchScale()
	wl, _ := workload.YCSB('B', sc.Keys, sc.ValueSize, 0.99, 1)
	for _, frac := range []int{20, 10, 5} {
		b.Run(fmt.Sprintf("tracker=%d%%", frac), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.Setup{
					System: bench.SysPrism, NVMFraction: 1.0 / 6,
					TrackerFraction: float64(frac) / 100,
				}, sc, wl, "ablation")
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ThroughputKops, "Kops")
				if res.Prism != nil {
					b.ReportMetric(res.Prism.NVMReadRatio(), "nvm-read-ratio")
				}
			}
		})
	}
}
