package prismdb_test

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/prismdb/prismdb"
)

func smallConfig() prismdb.Options {
	return prismdb.RecommendedConfig(prismdb.TierSpec{
		TotalBytes:  4 << 20,
		NVMFraction: 1.0 / 6,
		DatasetKeys: 4000,
		Partitions:  4,
	})
}

func TestPublicAPIRoundTrip(t *testing.T) {
	db, err := prismdb.Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	key := func(i int) []byte { return []byte(fmt.Sprintf("user%06d", i)) }
	val := func(i int) []byte { return bytes.Repeat([]byte{byte('a' + i%26)}, 300) }

	for i := 0; i < 3000; i++ {
		if _, err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// RecommendedConfig compacts in the background (CompactionAsync):
	// settle the workers before asserting on compaction counters.
	db.DrainCompactions()
	st := db.Stats()
	if st.Compactions == 0 {
		t.Fatal("expected compactions at this fill level")
	}
	for i := 0; i < 3000; i += 17 {
		v, tier, lat, err := db.Get(key(i))
		if err != nil || tier == prismdb.TierMiss {
			t.Fatalf("key %d: tier=%v err=%v", i, tier, err)
		}
		if !bytes.Equal(v, val(i)) {
			t.Fatalf("key %d corrupted", i)
		}
		if lat <= 0 {
			t.Fatal("no simulated latency")
		}
	}
	kvs, _, err := db.Scan(key(100), 10)
	if err != nil || len(kvs) != 10 {
		t.Fatalf("scan: %d results, err %v", len(kvs), err)
	}
	it := db.NewIterator(key(100), 0)
	for i := 0; i < 10; i++ {
		if !it.Valid() {
			t.Fatalf("iterator exhausted at %d", i)
		}
		if !bytes.Equal(it.Key(), kvs[i].Key) || !bytes.Equal(it.Value(), kvs[i].Value) {
			t.Fatalf("iterator[%d] = %q, Scan saw %q", i, it.Key(), kvs[i].Key)
		}
		it.Next()
	}
	if it.Latency() <= 0 {
		t.Fatal("iterator consumed no virtual time")
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete(key(5)); err != nil {
		t.Fatal(err)
	}
	if _, tier, _, _ := db.Get(key(5)); tier != prismdb.TierMiss {
		t.Fatal("delete did not take")
	}
	used, budget := db.NVMUsage()
	if used <= 0 || used > budget {
		t.Fatalf("NVM usage %d / %d out of range", used, budget)
	}
	if db.Partitions() != 4 {
		t.Fatalf("partitions = %d", db.Partitions())
	}
	if db.Elapsed() <= 0 {
		t.Fatal("virtual time did not advance")
	}
	dist := db.ClockDistribution()
	total := 0
	for _, n := range dist {
		total += n
	}
	if total == 0 {
		t.Fatal("tracker empty after workload")
	}
}

func TestPublicAPIRecovery(t *testing.T) {
	cfg := smallConfig()
	db, err := prismdb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		k := []byte(fmt.Sprintf("user%06d", i))
		if _, err := db.Put(k, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: reopen against the same devices, same options.
	db2, err := prismdb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i += 13 {
		k := []byte(fmt.Sprintf("user%06d", i))
		v, tier, _, err := db2.Get(k)
		if err != nil || tier == prismdb.TierMiss {
			t.Fatalf("key %d lost in crash", i)
		}
		if string(v) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("key %d stale after recovery", i)
		}
	}
}

func TestDeviceConstructors(t *testing.T) {
	nvm := prismdb.NVMDevice(1 << 30)
	qlc := prismdb.QLCDevice(1 << 30)
	tlc := prismdb.TLCDevice(1 << 30)
	if nvm.Params().CostPerGB != 2.5 || qlc.Params().CostPerGB != 0.1 || tlc.Params().CostPerGB != 0.31 {
		t.Fatal("device cost parameters wrong")
	}
	if qlc.Params().ReadLatency <= nvm.Params().ReadLatency {
		t.Fatal("QLC must be slower than NVM")
	}
}

func TestRecommendedConfigDefaults(t *testing.T) {
	cfg := prismdb.RecommendedConfig(prismdb.TierSpec{})
	if cfg.NVM == nil || cfg.Flash == nil || cfg.Cache == nil {
		t.Fatal("devices not defaulted")
	}
	if cfg.PinningThreshold != 0.7 {
		t.Fatalf("pinning threshold %f", cfg.PinningThreshold)
	}
	if !cfg.Promotions || !cfg.ReadTrigger.Enabled {
		t.Fatal("promotions should default on")
	}
}
