package server

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/prismdb/prismdb/internal/core"
	"github.com/prismdb/prismdb/internal/metrics"
	"github.com/prismdb/prismdb/internal/simdev"
)

// benchCompactionInterference measures foreground interference from
// compaction on the serving path: a write-heavy SET stream (the prismload
// shape) over loopback against an engine whose NVM budget is small enough
// that demotion merges run steadily, reporting wall-clock SET p50/p99.
// Under sync compaction one unlucky SET pays a whole multi-SST merge
// inline under the partition lock — and every client with an op in flight
// at that partition waits out the burst with it; under async compaction
// the trigger only flags the background worker and serving continues.
// The Sync/Async/None trio lands in BENCH_<date>.json as the PR's tracked
// interference rows: None (budget too large to ever compact) is the
// serving-path baseline, so each mode's p99 EXCESS over it is its
// compaction-interference cost. On a multi-core host the async worker
// runs on its own core and async p99 sits at the baseline; on a
// single-core host (this repo's CI container) the worker must time-share
// the serving core — its throttling yields keep the async tail within a
// few× of baseline while inline merges push the sync tail roughly an
// order of magnitude above it.
//
// noCompaction inflates the budget so the watermark never trips — the
// identical client load with zero merges.
func benchCompactionInterference(b *testing.B, mode core.CompactionMode, noCompaction bool) {
	budget := int64(8 << 20)
	if noCompaction {
		budget = 512 << 20
	}
	opts := core.Options{
		CompactionMode:   mode,
		Partitions:       4,
		NVM:              simdev.New(simdev.NVMParams(1 << 30)),
		Flash:            simdev.New(simdev.QLCParams(1 << 30)),
		Cache:            simdev.NewPageCache(1 << 20),
		NVMBudget:        budget,
		TrackerCapacity:  4096,
		PinningThreshold: 0.7,
		KeySpace:         1 << 20,
		BucketKeys:       256,
		TargetSSTBytes:   48 << 10,
		// The paper's 98%/95% watermarks assume GBs of NVM headroom; at a
		// scaled-down budget that band is a handful of objects wide and
		// EVERY writer immediately exhausts its admission credit —
		// serializing on compaction in both modes regardless of where the
		// merge runs. A scaled band (as the bench harness uses) keeps
		// credit headroom realistic relative to the write rate, so the
		// modes differ by their actual mechanism: who pays the merge's
		// wall-clock time. The narrow band keeps each demotion job small
		// (tens of KB demoted per partition, but every round still reads
		// and rewrites its whole SST overlap — a multi-millisecond burst)
		// and frequent (every ~100 SETs), so the bursts a sync-mode
		// foreground pays land squarely inside the p99 instead of hiding
		// in the p99.9.
		HighWatermark: 0.90,
		LowWatermark:  0.89,
		Seed:          1,
	}
	db, err := core.Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	_, dial := startServer(b, db)

	// Closed-loop client (prismload's shape; depth 1 = unpipelined): each
	// SET's wall latency is one request-reply round trip, so an inline
	// merge shows up in exactly the op that paid it. One connection keeps
	// the single-core CI container out of saturation — the comparison is
	// about who pays for the merge, not about queueing at capacity; raise
	// conns/depth on real multi-core hosts to add the convoy effects.
	const (
		conns   = 1
		depth   = 1
		perConn = 36000
	)
	val := bytes.Repeat([]byte{'v'}, 512)

	// Keys are drawn uniformly from the whole key space: spread inserts
	// keep every candidate range populated, so demotion jobs stay small
	// and frequent (sequential keys would funnel all fresh data into the
	// one unbounded tail range, turning compaction into a handful of huge
	// merges the p99 never samples). Preload to just under the trigger so
	// the measured stream runs in compaction steady state from its first
	// window.
	keyOf := func(rng *rand.Rand) []byte {
		return []byte(fmt.Sprintf("user%08d", rng.Intn(1<<20)))
	}
	preRNG := rand.New(rand.NewSource(7))
	preload := int(float64(opts.NVMBudget) * 0.85 / 768) // 768 B slab class
	for i := 0; i < preload; i++ {
		if _, err := db.Put(keyOf(preRNG), val); err != nil {
			b.Fatal(err)
		}
	}

	hist := metrics.NewHistogram()
	var mu sync.Mutex
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		var wg sync.WaitGroup
		errs := make(chan error, 2*conns)
		for c := 0; c < conns; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				nc := dial()
				defer nc.Close()
				br := bufio.NewReaderSize(nc, 64<<10)
				bw := bufio.NewWriterSize(nc, 64<<10)
				local := metrics.NewHistogram()
				rng := rand.New(rand.NewSource(int64(1000 + iter*conns + c)))
				for off := 0; off < perConn; off += depth {
					n := depth
					if off+n > perConn {
						n = perConn - off
					}
					for i := 0; i < n; i++ {
						k := keyOf(rng)
						fmt.Fprintf(bw, "*3\r\n$3\r\nSET\r\n$%d\r\n%s\r\n$%d\r\n", len(k), k, len(val))
						bw.Write(val)
						bw.WriteString("\r\n")
					}
					t0 := time.Now()
					if err := bw.Flush(); err != nil {
						errs <- err
						return
					}
					for i := 0; i < n; i++ {
						rep, err := ReadReply(br)
						if err != nil {
							errs <- err
							return
						}
						if rep.IsErr() {
							errs <- fmt.Errorf("SET failed: %s", rep.Str)
							return
						}
						local.Record(time.Since(t0))
					}
				}
				mu.Lock()
				hist.Merge(local)
				mu.Unlock()
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(hist.Quantile(0.5))/1e3, "set-p50-us")
	b.ReportMetric(float64(hist.Quantile(0.99))/1e3, "set-p99-us")
	b.ReportMetric(float64(hist.Max())/1e3, "set-max-us")
	st := db.Stats()
	if !noCompaction && st.Compactions == 0 {
		b.Fatal("interference bench never compacted; shrink the budget")
	}
	b.ReportMetric(float64(st.Compactions)/float64(b.N), "compaction-rounds/run")
	b.ReportMetric(float64(st.CompactionHardStalls)/float64(b.N), "hard-stalls/run")
}

// BenchmarkCompactionInterferenceSync: write-heavy SET latency with
// inline (foreground) compaction.
func BenchmarkCompactionInterferenceSync(b *testing.B) {
	benchCompactionInterference(b, core.CompactionSync, false)
}

// BenchmarkCompactionInterferenceAsync: the same stream with background
// compaction workers (the default mode).
func BenchmarkCompactionInterferenceAsync(b *testing.B) {
	benchCompactionInterference(b, core.CompactionAsync, false)
}

// BenchmarkCompactionInterferenceNone: the same client load with a budget
// too large to ever compact — the baseline the other two rows' p99 excess
// is measured against.
func BenchmarkCompactionInterferenceNone(b *testing.B) {
	benchCompactionInterference(b, core.CompactionSync, true)
}
