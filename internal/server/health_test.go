package server

import (
	"bufio"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/prismdb/prismdb/internal/core"
	"github.com/prismdb/prismdb/internal/simdev"
	"github.com/prismdb/prismdb/internal/storage"
)

// durableEngine builds a small durable DB with a fault injector attached,
// so wire tests can break its storage mid-conversation.
func durableEngine(t testing.TB) (*core.DB, *storage.FaultInjector) {
	t.Helper()
	fi := &storage.FaultInjector{}
	opts := core.Options{
		CompactionMode:   core.CompactionSync,
		Partitions:       1,
		NVM:              simdev.New(simdev.NVMParams(64 << 20)),
		Flash:            simdev.New(simdev.QLCParams(512 << 20)),
		Cache:            simdev.NewPageCache(1 << 20),
		NVMBudget:        4 << 20,
		TrackerCapacity:  1024,
		PinningThreshold: 0.7,
		KeySpace:         1 << 16,
		BucketKeys:       256,
		TargetSSTBytes:   64 << 10,
		Seed:             1,
		DataDir:          t.TempDir(),
		Faults:           fi,
	}
	db, err := core.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, fi
}

// healthMap flattens a HEALTH reply's field/value array.
func healthMap(t *testing.T, rep Reply) map[string]string {
	t.Helper()
	if rep.Kind != '*' || len(rep.Elems)%2 != 0 {
		t.Fatalf("HEALTH reply = %+v, want a flat field/value array", rep)
	}
	m := make(map[string]string, len(rep.Elems)/2)
	for i := 0; i < len(rep.Elems); i += 2 {
		m[string(rep.Elems[i].Str)] = string(rep.Elems[i+1].Str)
	}
	return m
}

func TestHealthCommandHealthy(t *testing.T) {
	db := testEngine(t, 1)
	defer db.Close()
	_, dial := startServer(t, db)
	nc := dial()
	defer nc.Close()
	br := bufio.NewReader(nc)

	h := healthMap(t, roundTrip(t, nc, br, "HEALTH"))
	if h["state"] != "healthy" || h["read_only"] != "0" || h["cause"] != "" {
		t.Fatalf("HEALTH on a healthy engine = %v", h)
	}
	if rep := roundTrip(t, nc, br, "HEALTH", "extra"); !rep.IsErr() {
		t.Fatalf("HEALTH with arguments = %+v, want arity error", rep)
	}
}

// TestDegradedServesReadOnly walks the whole degraded-serving contract over
// the wire: DEBUG FAULT arms a WAL failure, the write that hits it gets an
// error, every later write is refused with -READONLY, reads keep answering,
// and HEALTH + INFO report the state.
func TestDegradedServesReadOnly(t *testing.T) {
	db, fi := durableEngine(t)
	defer db.Close()
	_, dial := startServerCfg(t, Config{Engine: db, Faults: fi})
	nc := dial()
	defer nc.Close()
	br := bufio.NewReader(nc)

	if rep := roundTrip(t, nc, br, "SET", "alpha", "1"); rep.Kind != '+' {
		t.Fatalf("SET = %+v", rep)
	}
	if rep := roundTrip(t, nc, br, "DEBUG", "FAULT", "wal", "1", "error"); rep.Kind != '+' {
		t.Fatalf("DEBUG FAULT = %+v", rep)
	}
	// The armed write fails (its WAL append is the injected error); the
	// engine degrades, so the reply must be an error — and every write
	// after it must be the typed -READONLY refusal.
	if rep := roundTrip(t, nc, br, "SET", "beta", "2"); !rep.IsErr() {
		t.Fatalf("SET through the armed fault = %+v, want error", rep)
	}
	rep := roundTrip(t, nc, br, "SET", "gamma", "3")
	if !rep.IsErr() || !strings.HasPrefix(string(rep.Str), "READONLY") {
		t.Fatalf("SET while degraded = %+v, want -READONLY", rep)
	}
	if rep := roundTrip(t, nc, br, "DEL", "alpha"); !rep.IsErr() || !strings.HasPrefix(string(rep.Str), "READONLY") {
		t.Fatalf("DEL while degraded = %+v, want -READONLY", rep)
	}
	// Reads still serve.
	if rep := roundTrip(t, nc, br, "GET", "alpha"); rep.Kind != '$' || string(rep.Str) != "1" {
		t.Fatalf("GET while degraded = %+v", rep)
	}
	h := healthMap(t, roundTrip(t, nc, br, "HEALTH"))
	if h["state"] != "degraded" || h["read_only"] != "1" || h["cause"] == "" || h["since"] == "" {
		t.Fatalf("HEALTH while degraded = %v", h)
	}
	info := roundTrip(t, nc, br, "INFO", "health")
	if !strings.Contains(string(info.Str), "health_state:degraded") ||
		!strings.Contains(string(info.Str), "read_only:1") {
		t.Fatalf("INFO health while degraded:\n%s", info.Str)
	}
}

func TestDebugFaultGatedAndValidated(t *testing.T) {
	db := testEngine(t, 1)
	defer db.Close()
	_, dial := startServer(t, db) // no Faults in the config
	nc := dial()
	defer nc.Close()
	br := bufio.NewReader(nc)

	if rep := roundTrip(t, nc, br, "DEBUG", "FAULT", "wal", "1", "error"); !rep.IsErr() || !strings.Contains(string(rep.Str), "disabled") {
		t.Fatalf("DEBUG FAULT without an injector = %+v, want disabled error", rep)
	}

	db2, fi := durableEngine(t)
	defer db2.Close()
	_, dial2 := startServerCfg(t, Config{Engine: db2, Faults: fi})
	nc2 := dial2()
	defer nc2.Close()
	br2 := bufio.NewReader(nc2)
	for _, bad := range [][]string{
		{"DEBUG", "FAULT", "bogus", "1", "error"},    // unknown scope
		{"DEBUG", "FAULT", "wal", "0", "error"},      // non-positive count
		{"DEBUG", "FAULT", "wal", "1", "nonsense"},   // unknown mode
		{"DEBUG", "FAULT", "wal", "1", "stall"},      // stall without duration
		{"DEBUG", "FAULT", "wal", "1", "stall", "0"}, // non-positive stall
	} {
		if rep := roundTrip(t, nc2, br2, bad...); !rep.IsErr() {
			t.Fatalf("%v = %+v, want error", bad, rep)
		}
	}
	if rep := roundTrip(t, nc2, br2, "DEBUG", "FAULT", "RESET"); rep.Kind != '+' {
		t.Fatalf("DEBUG FAULT RESET = %+v", rep)
	}
	if rep := roundTrip(t, nc2, br2, "DEBUG", "FAULT", "slab", "2", "enospc"); rep.Kind != '+' {
		t.Fatalf("DEBUG FAULT slab 2 enospc = %+v", rep)
	}
	// RESET disarms: the engine must still be healthy and writable after
	// the re-reset below even though a fault was armed above.
	if rep := roundTrip(t, nc2, br2, "DEBUG", "FAULT", "RESET"); rep.Kind != '+' {
		t.Fatalf("DEBUG FAULT RESET = %+v", rep)
	}
	if rep := roundTrip(t, nc2, br2, "SET", "k", "v"); rep.Kind != '+' {
		t.Fatalf("SET after RESET = %+v", rep)
	}
}

func TestMaxConnsRejectsExtras(t *testing.T) {
	db := testEngine(t, 1)
	defer db.Close()
	_, dial := startServerCfg(t, Config{Engine: db, MaxConns: 1})

	nc1 := dial()
	defer nc1.Close()
	br1 := bufio.NewReader(nc1)
	if rep := roundTrip(t, nc1, br1, "PING"); string(rep.Str) != "PONG" {
		t.Fatalf("PING on first conn = %+v", rep)
	}

	// The second connection is refused at accept with a clean RESP error,
	// then closed.
	nc2 := dial()
	defer nc2.Close()
	nc2.SetReadDeadline(time.Now().Add(5 * time.Second))
	br2 := bufio.NewReader(nc2)
	rep, err := ReadReply(br2)
	if err != nil {
		t.Fatalf("reading rejection reply: %v", err)
	}
	if !rep.IsErr() || !strings.Contains(string(rep.Str), "max clients") {
		t.Fatalf("over-limit conn reply = %+v, want max clients error", rep)
	}
	if _, err := br2.ReadByte(); err != io.EOF {
		t.Fatalf("over-limit conn read after rejection = %v, want EOF", err)
	}

	// Draining the first connection frees the slot.
	nc1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		nc3 := dial()
		nc3.SetReadDeadline(time.Now().Add(time.Second))
		br3 := bufio.NewReader(nc3)
		if _, err := nc3.Write(respCmd("PING")); err == nil {
			if rep, err := ReadReply(br3); err == nil && string(rep.Str) == "PONG" {
				nc3.Close()
				return
			}
		}
		nc3.Close()
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after the first connection closed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestIdleTimeoutClosesConnection(t *testing.T) {
	db := testEngine(t, 1)
	defer db.Close()
	_, dial := startServerCfg(t, Config{Engine: db, IdleTimeout: 150 * time.Millisecond})

	nc := dial()
	defer nc.Close()
	br := bufio.NewReader(nc)
	// Active connections are untouched: two commands spaced under the
	// timeout both answer.
	if rep := roundTrip(t, nc, br, "PING"); string(rep.Str) != "PONG" {
		t.Fatalf("PING = %+v", rep)
	}
	time.Sleep(75 * time.Millisecond)
	if rep := roundTrip(t, nc, br, "PING"); string(rep.Str) != "PONG" {
		t.Fatalf("second PING = %+v", rep)
	}
	// Going quiet past the timeout gets the connection closed server-side:
	// the next read returns EOF (or a reset), not a hang.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := br.ReadByte(); err == nil {
		t.Fatal("idle connection still open well past the idle timeout")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("idle connection not closed within 5s (client read deadline hit)")
	}
}
