package server

import (
	"fmt"
	"strings"
	"time"

	"github.com/prismdb/prismdb/internal/core"
)

// info renders the INFO reply: key:value lines grouped into # sections,
// Redis-style, so existing tooling can parse it. An empty section selects
// everything; otherwise only the named section (case-insensitive) is
// rendered. Every number is live — the latency section reads the same
// lock-free histograms the op loop records into (and /metrics exposes), so
// in-flight connections are included, not just completed ones.
func (s *Server) info(section string) string {
	section = strings.ToLower(section)
	want := func(name string) bool { return section == "" || section == name }
	var b strings.Builder

	if want("server") {
		fmt.Fprintf(&b, "# server\r\n")
		fmt.Fprintf(&b, "uptime_seconds:%.1f\r\n", time.Since(s.start).Seconds())
		fmt.Fprintf(&b, "connections_received:%d\r\n", s.connsTotal.Load())
		fmt.Fprintf(&b, "connections_current:%d\r\n", s.connsLive.Load())
		b.WriteString("\r\n")
	}

	if want("health") {
		// Present only for engines that track failure-domain state (a
		// durable core.DB behind the facade); a fake without the method
		// renders nothing rather than guessing.
		if s.heng != nil {
			h := s.heng.Health()
			fmt.Fprintf(&b, "# health\r\n")
			fmt.Fprintf(&b, "health_state:%s\r\n", h.State)
			ro := 0
			if h.ReadOnly {
				ro = 1
			}
			fmt.Fprintf(&b, "read_only:%d\r\n", ro)
			fmt.Fprintf(&b, "health_cause:%s\r\n", h.Cause)
			if !h.Since.IsZero() {
				fmt.Fprintf(&b, "degraded_seconds:%.1f\r\n", time.Since(h.Since).Seconds())
			}
			b.WriteString("\r\n")
		}
	}

	if want("ops") {
		fmt.Fprintf(&b, "# ops\r\n")
		var total int64
		for k := opKind(0); k < opKinds; k++ {
			n := s.cmdCounts[k].Load()
			total += n
			fmt.Fprintf(&b, "cmd_%s:%d\r\n", opNames[k], n)
		}
		fmt.Fprintf(&b, "cmd_total:%d\r\n", total)
		fmt.Fprintf(&b, "errors:%d\r\n", s.errCount.Load())
		b.WriteString("\r\n")
	}

	if want("latency") {
		fmt.Fprintf(&b, "# latency\r\n")
		for k := opKind(0); k < opKinds-1; k++ { // opOther has no latencies
			wall, virt := s.opWall[k].Snapshot(), s.opVirt[k].Snapshot()
			if wall.Count() == 0 {
				continue
			}
			fmt.Fprintf(&b, "%s_count:%d\r\n", opNames[k], wall.Count())
			fmt.Fprintf(&b, "%s_wall_p50_us:%.1f\r\n", opNames[k], us(wall.Quantile(0.5)))
			fmt.Fprintf(&b, "%s_wall_p99_us:%.1f\r\n", opNames[k], us(wall.Quantile(0.99)))
			fmt.Fprintf(&b, "%s_virt_p50_us:%.1f\r\n", opNames[k], us(virt.Quantile(0.5)))
			fmt.Fprintf(&b, "%s_virt_p99_us:%.1f\r\n", opNames[k], us(virt.Quantile(0.99)))
		}
		b.WriteString("\r\n")
	}

	if want("engine") {
		st := s.eng.Stats()
		fmt.Fprintf(&b, "# engine\r\n")
		fmt.Fprintf(&b, "puts:%d\r\n", st.Puts)
		fmt.Fprintf(&b, "gets:%d\r\n", st.Gets)
		fmt.Fprintf(&b, "deletes:%d\r\n", st.Deletes)
		fmt.Fprintf(&b, "scans:%d\r\n", st.Scans)
		fmt.Fprintf(&b, "in_place_updates:%d\r\n", st.InPlaceUpdates)
		fmt.Fprintf(&b, "fresh_inserts:%d\r\n", st.FreshInserts)
		fmt.Fprintf(&b, "compactions:%d\r\n", st.Compactions)
		fmt.Fprintf(&b, "read_triggered_compactions:%d\r\n", st.ReadTriggeredComps)
		fmt.Fprintf(&b, "demoted:%d\r\n", st.Demoted)
		fmt.Fprintf(&b, "promoted:%d\r\n", st.Promoted)
		fmt.Fprintf(&b, "dropped_tombstones:%d\r\n", st.DroppedTombstones)
		fmt.Fprintf(&b, "write_stalls:%d\r\n", st.WriteStalls)
		fmt.Fprintf(&b, "write_stall_virt_ms:%.3f\r\n", float64(st.WriteStallTime)/1e6)
		// Async-compaction health: how much background work is in flight
		// right now, how often commits skipped keys a foreground op beat
		// them to, and how often (and for how long, in wall-clock time)
		// writes host-blocked on an uncommitted merge.
		fmt.Fprintf(&b, "compaction_backlog:%d\r\n", st.CompactionBacklog)
		fmt.Fprintf(&b, "compaction_commit_conflicts:%d\r\n", st.CommitConflicts)
		fmt.Fprintf(&b, "compaction_hard_stalls:%d\r\n", st.CompactionHardStalls)
		fmt.Fprintf(&b, "compaction_hard_stall_wall_ms:%.3f\r\n", float64(st.CompactionHardStallTime)/1e6)
		fmt.Fprintf(&b, "nvm_objects:%d\r\n", st.NVMObjects)
		fmt.Fprintf(&b, "flash_objects:%d\r\n", st.FlashObjects)
		fmt.Fprintf(&b, "elapsed_virtual_ms:%.3f\r\n", float64(s.eng.Elapsed())/1e6)
		b.WriteString("\r\n")
	}

	if want("writes") {
		st := s.eng.Stats()
		// Owner-goroutine write path health: how well writes are batching
		// (batch size percentiles and the republish-per-batch economy), how
		// deep the intent queues are right now, and whether producers are
		// hitting the ring's backpressure (parks).
		fmt.Fprintf(&b, "# writes\r\n")
		fmt.Fprintf(&b, "write_batches:%d\r\n", st.WriteBatches)
		fmt.Fprintf(&b, "write_direct:%d\r\n", st.DirectWrites)
		fmt.Fprintf(&b, "write_batch_p50:%d\r\n", st.WriteBatchP50)
		fmt.Fprintf(&b, "write_batch_p99:%d\r\n", st.WriteBatchP99)
		fmt.Fprintf(&b, "write_queue_depth:%d\r\n", st.WriteQueueDepth)
		fmt.Fprintf(&b, "producer_parks:%d\r\n", st.ProducerParks)
		fmt.Fprintf(&b, "view_republishes:%d\r\n", st.ViewRepublishes)
		b.WriteString("\r\n")
	}

	if want("persistence") {
		// The section is present only when the engine is durable
		// (core.Options.DataDir): an in-memory engine either lacks the
		// method or reports Durable == false.
		if pe, ok := s.eng.(interface{ PersistenceStats() core.PersistenceStats }); ok {
			if ps := pe.PersistenceStats(); ps.Durable {
				fmt.Fprintf(&b, "# persistence\r\n")
				fmt.Fprintf(&b, "durable:1\r\n")
				fmt.Fprintf(&b, "wal_bytes:%d\r\n", ps.WALBytes)
				fmt.Fprintf(&b, "wal_records:%d\r\n", ps.WALRecords)
				fmt.Fprintf(&b, "wal_fsyncs:%d\r\n", ps.WALFsyncs)
				fmt.Fprintf(&b, "wal_segments:%d\r\n", ps.WALSegments)
				fmt.Fprintf(&b, "group_commit_batch_p50:%d\r\n", ps.GroupCommitBatchP50)
				fmt.Fprintf(&b, "group_commit_batch_p99:%d\r\n", ps.GroupCommitBatchP99)
				fmt.Fprintf(&b, "fsync_p50_us:%.1f\r\n", us(ps.FsyncP50))
				fmt.Fprintf(&b, "fsync_p99_us:%.1f\r\n", us(ps.FsyncP99))
				fmt.Fprintf(&b, "checkpoints:%d\r\n", ps.Checkpoints)
				fmt.Fprintf(&b, "recovery_ms:%.3f\r\n", float64(ps.RecoveryDuration)/1e6)
				fmt.Fprintf(&b, "recovery_records:%d\r\n", ps.RecoveryRecords)
				fmt.Fprintf(&b, "recovery_segments:%d\r\n", ps.RecoverySegments)
				fmt.Fprintf(&b, "last_recovery_truncated_bytes:%d\r\n", ps.LastRecoveryTruncatedBytes)
				fmt.Fprintf(&b, "orphan_ssts_removed:%d\r\n", ps.OrphanSSTsRemoved)
				b.WriteString("\r\n")
			}
		}
	}

	if want("events") {
		// The structured event log: compaction rounds, checkpoints, WAL
		// rotations, recovery outcomes, write stalls — each a single JSON
		// line. A full INFO shows the most recent few; INFO events shows
		// the whole retained ring, oldest first.
		n := 8
		if section == "events" {
			n = 0 // Tail(0) returns everything retained
		}
		fmt.Fprintf(&b, "# events\r\n")
		fmt.Fprintf(&b, "events_total:%d\r\n", s.events.Total())
		for _, line := range s.events.Tail(n) {
			fmt.Fprintf(&b, "event:%s\r\n", line)
		}
		b.WriteString("\r\n")
	}

	if want("tiers") {
		st := s.eng.Stats()
		fmt.Fprintf(&b, "# tiers\r\n")
		hits := st.GetDRAM + st.GetNVM + st.GetFlash
		total := hits + st.GetMiss
		ratio := func(n int64) float64 {
			if total == 0 {
				return 0
			}
			return float64(n) / float64(total)
		}
		fmt.Fprintf(&b, "reads_dram:%d\r\n", st.GetDRAM)
		fmt.Fprintf(&b, "reads_nvm:%d\r\n", st.GetNVM)
		fmt.Fprintf(&b, "reads_flash:%d\r\n", st.GetFlash)
		fmt.Fprintf(&b, "reads_miss:%d\r\n", st.GetMiss)
		// Wasted flash probes: the bloom filter passed but the table read
		// found nothing (or only a tombstone). Filters target ~1% FP.
		fmt.Fprintf(&b, "bloom_false_positives:%d\r\n", st.BloomFalsePositives)
		fmt.Fprintf(&b, "dram_hit_ratio:%.4f\r\n", ratio(st.GetDRAM))
		fmt.Fprintf(&b, "nvm_hit_ratio:%.4f\r\n", ratio(st.GetNVM))
		fmt.Fprintf(&b, "flash_hit_ratio:%.4f\r\n", ratio(st.GetFlash))
		fmt.Fprintf(&b, "miss_ratio:%.4f\r\n", ratio(st.GetMiss))
		fmt.Fprintf(&b, "nvm_read_ratio:%.4f\r\n", st.NVMReadRatio())
		b.WriteString("\r\n")
	}

	return b.String()
}

func us(d time.Duration) float64 { return float64(d) / 1e3 }
