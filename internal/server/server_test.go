package server

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/prismdb/prismdb/internal/core"
	"github.com/prismdb/prismdb/internal/simdev"
)

// testEngine builds a small single-partition DB (multi-partition variants
// pass their own options).
func testEngine(t testing.TB, parts int) *core.DB {
	t.Helper()
	opts := core.Options{
		Partitions:       parts,
		NVM:              simdev.New(simdev.NVMParams(64 << 20)),
		Flash:            simdev.New(simdev.QLCParams(512 << 20)),
		Cache:            simdev.NewPageCache(1 << 20),
		NVMBudget:        4 << 20,
		TrackerCapacity:  1024,
		PinningThreshold: 0.7,
		KeySpace:         1 << 16,
		BucketKeys:       256,
		TargetSSTBytes:   64 << 10,
		Seed:             1,
	}
	db, err := core.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// startServer runs a Server on loopback and returns it with a dialer.
// Cleanup shuts it down.
func startServer(t testing.TB, eng Engine) (*Server, func() net.Conn) {
	t.Helper()
	srv, err := New(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Shutdown(2 * time.Second); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	dial := func() net.Conn {
		nc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return nc
	}
	return srv, dial
}

// respCmd encodes a command as a RESP array of bulk strings.
func respCmd(args ...string) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "*%d\r\n", len(args))
	for _, a := range args {
		fmt.Fprintf(&b, "$%d\r\n%s\r\n", len(a), a)
	}
	return b.Bytes()
}

// roundTrip sends one command and reads one reply.
func roundTrip(t *testing.T, nc net.Conn, br *bufio.Reader, args ...string) Reply {
	t.Helper()
	if _, err := nc.Write(respCmd(args...)); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadReply(br)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestCommandsRoundTrip(t *testing.T) {
	db := testEngine(t, 2)
	_, dial := startServer(t, db)
	nc := dial()
	defer nc.Close()
	br := bufio.NewReader(nc)

	if rep := roundTrip(t, nc, br, "PING"); string(rep.Str) != "PONG" {
		t.Fatalf("PING → %q", rep.Str)
	}
	if rep := roundTrip(t, nc, br, "SET", "user1", "v1"); string(rep.Str) != "OK" {
		t.Fatalf("SET → %q", rep.Str)
	}
	for i := 2; i <= 9; i++ {
		roundTrip(t, nc, br, "SET", fmt.Sprintf("user%d", i), fmt.Sprintf("v%d", i))
	}
	if rep := roundTrip(t, nc, br, "GET", "user1"); string(rep.Str) != "v1" {
		t.Fatalf("GET → %q", rep.Str)
	}
	if rep := roundTrip(t, nc, br, "GET", "nosuch"); !rep.Null {
		t.Fatalf("GET missing → %+v, want null", rep)
	}
	rep := roundTrip(t, nc, br, "MGET", "user1", "nosuch", "user3")
	if len(rep.Elems) != 3 || string(rep.Elems[0].Str) != "v1" ||
		!rep.Elems[1].Null || string(rep.Elems[2].Str) != "v3" {
		t.Fatalf("MGET → %+v", rep)
	}
	rep = roundTrip(t, nc, br, "SCAN", "user", "100")
	if len(rep.Elems) != 18 { // 9 keys × (key, value)
		t.Fatalf("SCAN → %d elements, want 18", len(rep.Elems))
	}
	if string(rep.Elems[0].Str) != "user1" || string(rep.Elems[1].Str) != "v1" {
		t.Fatalf("SCAN first pair = %q,%q", rep.Elems[0].Str, rep.Elems[1].Str)
	}
	if rep := roundTrip(t, nc, br, "DEL", "user1", "user2"); rep.Int != 2 {
		t.Fatalf("DEL → %d, want 2", rep.Int)
	}
	if rep := roundTrip(t, nc, br, "GET", "user1"); !rep.Null {
		t.Fatalf("GET after DEL → %+v, want null", rep)
	}
	rep = roundTrip(t, nc, br, "INFO")
	if !bytes.Contains(rep.Str, []byte("# engine")) ||
		!bytes.Contains(rep.Str, []byte("# tiers")) {
		t.Fatalf("INFO missing sections:\n%s", rep.Str)
	}
	if rep := roundTrip(t, nc, br, "BOGUS", "x"); !rep.IsErr() {
		t.Fatalf("unknown command → %+v, want error", rep)
	}
	if rep := roundTrip(t, nc, br, "GET"); !rep.IsErr() {
		t.Fatalf("GET arity → %+v, want error", rep)
	}
}

// TestInlineCommands drives the telnet-convenience syntax.
func TestInlineCommands(t *testing.T) {
	db := testEngine(t, 1)
	_, dial := startServer(t, db)
	nc := dial()
	defer nc.Close()
	br := bufio.NewReader(nc)

	if _, err := nc.Write([]byte("SET ikey ival\r\nGET ikey\r\n")); err != nil {
		t.Fatal(err)
	}
	if rep, err := ReadReply(br); err != nil || string(rep.Str) != "OK" {
		t.Fatalf("inline SET → %v %q", err, rep.Str)
	}
	if rep, err := ReadReply(br); err != nil || string(rep.Str) != "ival" {
		t.Fatalf("inline GET → %v %q", err, rep.Str)
	}
}

// TestPipelinedBatch sends one write containing many commands and checks
// the replies come back complete and in order.
func TestPipelinedBatch(t *testing.T) {
	db := testEngine(t, 2)
	_, dial := startServer(t, db)
	nc := dial()
	defer nc.Close()
	br := bufio.NewReader(nc)

	const n = 200
	var batch bytes.Buffer
	for i := 0; i < n; i++ {
		batch.Write(respCmd("SET", fmt.Sprintf("k%04d", i), fmt.Sprintf("v%04d", i)))
	}
	for i := 0; i < n; i++ {
		batch.Write(respCmd("GET", fmt.Sprintf("k%04d", i)))
	}
	if _, err := nc.Write(batch.Bytes()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rep, err := ReadReply(br)
		if err != nil || string(rep.Str) != "OK" {
			t.Fatalf("pipelined SET %d → %v %q", i, err, rep.Str)
		}
	}
	for i := 0; i < n; i++ {
		rep, err := ReadReply(br)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("v%04d", i); string(rep.Str) != want {
			t.Fatalf("pipelined GET %d → %q, want %q", i, rep.Str, want)
		}
	}
}

// TestMalformedInput is the fuzz-style wire-path table: every malformed or
// truncated RESP stream must produce an error reply and/or a closed
// connection — never a panic, never a hang — and the server must stay
// healthy for subsequent connections.
func TestMalformedInput(t *testing.T) {
	db := testEngine(t, 1)
	_, dial := startServer(t, db)

	cases := []struct {
		name  string
		input string
	}{
		{"bad array length", "*abc\r\n"},
		{"negative array", "*-2\r\n"},
		{"huge array", "*99999999\r\n"},
		{"overflow array", "*99999999999999999999\r\n"},
		{"missing bulk header", "*1\r\nGET\r\n"},
		{"bad bulk length", "*1\r\n$abc\r\n"},
		{"negative bulk", "*1\r\n$-5\r\n"},
		{"huge bulk", "*1\r\n$999999999\r\n"},
		{"overflow bulk", "*1\r\n$99999999999999999999\r\n"},
		{"truncated bulk body", "*1\r\n$10\r\nab"},
		{"truncated after header", "*2\r\n$3\r\nGET\r\n"},
		{"bulk missing crlf", "*1\r\n$3\r\nGETXY"},
		{"bulk bad terminator", "*1\r\n$3\r\nGETxx"},
		{"truncated array header", "*"},
		{"truncated bulk header", "*1\r\n$"},
		{"stray binary", "\x00\x01\x02\x03\xff\xfe\r\n"},
		{"inline too many args", "PING " + repeat("a ", MaxArgs+2)},
		{"half command then eof", "*3\r\n$3\r\nSET\r\n$1\r\nk"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nc := dial()
			defer nc.Close()
			nc.SetDeadline(time.Now().Add(5 * time.Second))
			if _, err := nc.Write([]byte(tc.input)); err != nil {
				t.Fatal(err)
			}
			// Signal end-of-input so truncation cases resolve, then drain:
			// the server may send -ERR before closing, or just close.
			if tcp, ok := nc.(*net.TCPConn); ok {
				tcp.CloseWrite()
			}
			buf := make([]byte, 4096)
			for {
				if _, err := nc.Read(buf); err != nil {
					break
				}
			}
		})
	}

	// The server must still serve fresh connections afterwards.
	nc := dial()
	defer nc.Close()
	br := bufio.NewReader(nc)
	if rep := roundTrip(t, nc, br, "PING"); string(rep.Str) != "PONG" {
		t.Fatalf("server unhealthy after malformed inputs: %+v", rep)
	}
}

func repeat(s string, n int) string {
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		b.WriteString(s)
	}
	return b.String()
}

// TestConcurrentPipelinedClients drives N clients, each pipelining batches
// of mixed commands, against one server — the -race half of the wire-path
// satellite (run under make test's race pass).
func TestConcurrentPipelinedClients(t *testing.T) {
	db := testEngine(t, 4)
	srv, dial := startServer(t, db)

	const (
		clients   = 8
		batches   = 20
		batchSize = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			nc := dial()
			defer nc.Close()
			br := bufio.NewReader(nc)
			for b := 0; b < batches; b++ {
				var batch bytes.Buffer
				for i := 0; i < batchSize; i++ {
					k := fmt.Sprintf("c%dk%04d", c, b*batchSize+i)
					batch.Write(respCmd("SET", k, fmt.Sprintf("val-%s", k)))
					batch.Write(respCmd("GET", k))
				}
				batch.Write(respCmd("SCAN", fmt.Sprintf("c%d", c), "10"))
				if _, err := nc.Write(batch.Bytes()); err != nil {
					errs <- err
					return
				}
				for i := 0; i < batchSize; i++ {
					if rep, err := ReadReply(br); err != nil || string(rep.Str) != "OK" {
						errs <- fmt.Errorf("client %d SET: %v %q", c, err, rep.Str)
						return
					}
					rep, err := ReadReply(br)
					if err != nil || rep.Null {
						errs <- fmt.Errorf("client %d GET: %v null=%v", c, err, rep.Null)
						return
					}
				}
				if rep, err := ReadReply(br); err != nil || rep.IsErr() {
					errs <- fmt.Errorf("client %d SCAN: %v %+v", c, err, rep)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	want := int64(clients * batches * batchSize)
	if got := srv.cmdCounts[opSet].Load(); got != want {
		t.Fatalf("cmd_set = %d, want %d", got, want)
	}
	if got := srv.cmdCounts[opGet].Load(); got != want {
		t.Fatalf("cmd_get = %d, want %d", got, want)
	}
	st := db.Stats()
	if st.Puts != want || st.Gets != want {
		t.Fatalf("engine stats puts=%d gets=%d, want %d", st.Puts, st.Gets, want)
	}
}

// TestGracefulShutdown checks Shutdown drains a live connection and that
// engine Close afterwards fails racing requests deterministically.
func TestGracefulShutdown(t *testing.T) {
	db := testEngine(t, 1)
	srv, err := New(Config{Engine: db})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	if rep := roundTrip(t, nc, br, "SET", "k", "v"); string(rep.Str) != "OK" {
		t.Fatalf("SET → %q", rep.Str)
	}

	if err := srv.Shutdown(500 * time.Millisecond); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after Shutdown", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Put([]byte("k"), []byte("v")); err != core.ErrClosed {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}

	// The drained connection is dead: either the write fails or the read
	// reports closure.
	nc.SetDeadline(time.Now().Add(2 * time.Second))
	nc.Write(respCmd("PING"))
	if _, err := ReadReply(br); err == nil {
		// One in-flight reply may drain; the connection must still die.
		if _, err := ReadReply(br); err == nil {
			t.Fatal("connection still alive after Shutdown")
		}
	}
}

// TestMSET drives the explicit batch-write command: values land, arity
// errors reject, and the counters tally pairs as sets (prismload's -check
// contract) with the command itself under cmd_mset.
func TestMSET(t *testing.T) {
	db := testEngine(t, 2)
	srv, dial := startServer(t, db)
	nc := dial()
	defer nc.Close()
	br := bufio.NewReader(nc)

	if rep := roundTrip(t, nc, br, "MSET", "m1", "v1", "m2", "v2", "m3", "v3"); string(rep.Str) != "OK" {
		t.Fatalf("MSET → %+v", rep)
	}
	for i := 1; i <= 3; i++ {
		k, v := fmt.Sprintf("m%d", i), fmt.Sprintf("v%d", i)
		if rep := roundTrip(t, nc, br, "GET", k); string(rep.Str) != v {
			t.Fatalf("GET %s → %q, want %q", k, rep.Str, v)
		}
	}
	if rep := roundTrip(t, nc, br, "MSET", "k"); !rep.IsErr() {
		t.Fatalf("MSET with no pairs → %+v, want error", rep)
	}
	if rep := roundTrip(t, nc, br, "MSET", "k", "v", "odd"); !rep.IsErr() {
		t.Fatalf("MSET with odd tail → %+v, want error", rep)
	}
	if got := srv.cmdCounts[opSet].Load(); got != 3 {
		t.Fatalf("cmd_set = %d, want 3 (one per pair)", got)
	}
	if got := srv.cmdCounts[opMSet].Load(); got != 1 {
		t.Fatalf("cmd_mset = %d, want 1", got)
	}
	if st := db.Stats(); st.Puts != 3 {
		t.Fatalf("engine puts = %d, want 3", st.Puts)
	}
}

// TestSetBatchFlush unit-drives the pipelined-write fast path's machinery:
// addSet must copy out of the (recycled) parse arena, flushSetBatch must
// apply every pair through one PutBatch and write one OK per SET, and the
// batch state must come back empty for reuse.
func TestSetBatchFlush(t *testing.T) {
	db := testEngine(t, 2)
	srv, err := New(Config{Engine: db})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	w := &writer{bw: bufio.NewWriter(&out)}
	st := &connState{}

	const n = 10
	arena := make([]byte, 0, 64) // stands in for the parser's recycled arena
	for i := 0; i < n; i++ {
		arena = arena[:0]
		arena = append(arena, []byte(fmt.Sprintf("bk%02d", i))...)
		arena = append(arena, []byte(fmt.Sprintf("bv%02d", i))...)
		st.addSet(arena[:4], arena[4:])
	}
	s := srv
	s.flushSetBatch(w, st)
	s.flushSetBatch(w, st) // idempotent on an empty batch
	if err := w.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if want := repeat("+OK\r\n", n); out.String() != want {
		t.Fatalf("replies = %q, want %d OKs", out.String(), n)
	}
	if len(st.bpairs) != 0 || len(st.barena) != 0 {
		t.Fatalf("batch not recycled: %d pairs, %d arena bytes", len(st.bpairs), len(st.barena))
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("bk%02d", i)
		v, tier, _, err := db.Get([]byte(k))
		if err != nil || tier == core.TierMiss {
			t.Fatalf("Get %s: %v tier=%v", k, err, tier)
		}
		if want := fmt.Sprintf("bv%02d", i); string(v) != want {
			t.Fatalf("Get %s = %q, want %q (arena aliasing?)", k, v, want)
		}
	}
	if got := s.cmdCounts[opSet].Load(); got != n {
		t.Fatalf("cmd_set = %d, want %d", got, n)
	}
	if s.opWall[opSet].Count() != n || s.opVirt[opSet].Count() != n {
		t.Fatalf("histogram counts = %d/%d, want %d", s.opWall[opSet].Count(), s.opVirt[opSet].Count(), n)
	}
}

// TestInfoWritesSection checks INFO surfaces the owner write path's
// telemetry.
func TestInfoWritesSection(t *testing.T) {
	db := testEngine(t, 1)
	_, dial := startServer(t, db)
	nc := dial()
	defer nc.Close()
	br := bufio.NewReader(nc)

	roundTrip(t, nc, br, "MSET", "wk1", "v", "wk2", "v")
	rep := roundTrip(t, nc, br, "INFO", "writes")
	for _, field := range []string{
		"# writes", "write_batches:", "write_batch_p50:", "write_batch_p99:",
		"write_queue_depth:", "producer_parks:", "view_republishes:",
	} {
		if !bytes.Contains(rep.Str, []byte(field)) {
			t.Fatalf("INFO writes missing %q:\n%s", field, rep.Str)
		}
	}
	var batches int64
	fmt.Sscanf(string(rep.Str[bytes.Index(rep.Str, []byte("write_batches:")):]), "write_batches:%d", &batches)
	if batches == 0 {
		t.Fatalf("write_batches = 0 after MSET:\n%s", rep.Str)
	}
}
