// Package server is PrismDB's network front end: a RESP2-subset TCP server
// lean enough not to squander the engine's microsecond-scale operations.
//
// The design is one goroutine per connection over the engine's
// shared-nothing partitions (requests serialize per partition inside the
// engine, so N connections drive up to N partitions concurrently), with
// explicit pipelining on the wire: commands are parsed and executed as they
// arrive, replies accumulate in the connection's write buffer, and the
// buffer is flushed only when the parser would block on the socket — so a
// pipelined batch of K commands costs one inbound read, K engine calls, and
// one outbound write, regardless of K.
//
// The data path is allocation-conscious end to end: the parser recycles a
// per-connection argument arena, reads ride the engine's GetBuf zero-alloc
// path through a per-connection scratch buffer, and replies are formatted
// into the write buffer without intermediate allocations.
//
// Writes ride the engine's owner-goroutine batch path: a pipelined run of
// SETs is accumulated per connection and handed to the engine as ONE
// PutBatch the moment a non-SET command or the flush-on-read valve forces
// it out — so a pipelined write burst costs one engine enqueue per
// partition, one WAL group append, and one view republication. MSET is the
// explicit form of the same batch.
//
// Protocol subset: GET, SET, DEL, MGET, MSET, SCAN, PING, INFO, HEALTH,
// SLOWLOG, TRACE, COMMAND, QUIT (plus DEBUG FAULT when fault injection is
// configured).
// SCAN is PrismDB's range scan (SCAN start count → a flat array of
// alternating keys and values), not Redis's cursor iteration. INFO reports
// server counters, engine Stats, tier hit ratios, and per-op latency
// distributions in both virtual (simulated) and wall-clock time.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/prismdb/prismdb/internal/core"
	"github.com/prismdb/prismdb/internal/obs"
	"github.com/prismdb/prismdb/internal/storage"
)

// Engine is the storage interface the server serves. *core.DB implements
// it, and so does the public facade (prismdb.DB re-exports core's types),
// so cmd/prismserver can hand the facade straight in.
type Engine interface {
	Put(key, value []byte) (time.Duration, error)
	// PutBatch applies a group of puts as one engine batch: under the
	// owner-goroutine write path all pairs enqueue together, so the engine
	// can apply them in one critical section with one WAL group append and
	// one view republication. The returned latency is the batch's summed
	// per-op virtual time.
	PutBatch(pairs []core.KV) (time.Duration, error)
	GetBuf(key, buf []byte) ([]byte, core.Tier, time.Duration, error)
	Delete(key []byte) (time.Duration, error)
	NewIterator(start []byte, limitHint int) *core.Iterator
	Stats() core.Stats
	Elapsed() time.Duration
}

// Config parameterizes a Server.
type Config struct {
	// Engine is required.
	Engine Engine
	// MaxScanLen caps one SCAN command's result count (default 10000).
	MaxScanLen int
	// ReadBuffer and WriteBuffer size each connection's bufio buffers
	// (default 64 KiB). The read buffer bounds how much of a pipelined
	// batch is parsed per syscall; the write buffer, how many replies one
	// flush carries.
	ReadBuffer, WriteBuffer int
	// Logf, when non-nil, receives connection-level diagnostics.
	Logf func(format string, args ...interface{})

	// Metrics is the registry the server records into. Pass the same
	// registry as core.Options.Metrics and one /metrics endpoint exposes
	// the whole stack; nil creates a private registry (the instruments are
	// always live — the op loop's recording cost is unconditional).
	Metrics *obs.Registry
	// Events is the structured event log surfaced by INFO events (shared
	// with the engine the same way; nil creates a private one).
	Events *obs.EventLog
	// TraceSample traces roughly one in every TraceSample commands through
	// the op's stage pipeline, feeding SLOWLOG and TRACE. 0 uses the
	// default (64); negative disables tracing.
	TraceSample int
	// SlowlogLen bounds SLOWLOG GET's ring of slowest traced ops
	// (default 32).
	SlowlogLen int

	// MaxConns caps concurrently open client connections (0 = unlimited).
	// A connection past the cap gets one "-ERR max clients reached" reply
	// and is closed before a handler goroutine is spawned, so an
	// overloaded server degrades with a crisp refusal instead of an
	// unbounded goroutine pile.
	MaxConns int
	// IdleTimeout closes a connection whose socket has produced no bytes
	// for the duration (0 = never). The deadline re-arms at every socket
	// read, so a pipelining client is never cut mid-burst — only one that
	// has gone quiet.
	IdleTimeout time.Duration
	// Faults, when non-nil, enables the DEBUG FAULT command: the chaos
	// harness's wire-level hook for arming the storage fault injector
	// under a live workload. Leave nil outside fault testing — the
	// command then answers with an error.
	Faults *storage.FaultInjector
}

// traceSampleDefault is the 1-in-N command sampling rate when
// Config.TraceSample is zero: cheap enough to leave on (one atomic add per
// command plus one pooled span per sample), frequent enough that SLOWLOG
// fills within seconds under load.
const traceSampleDefault = 64

// opKind indexes the per-command metrics.
type opKind int

const (
	opGet opKind = iota
	opSet
	opDel
	opMGet
	opScan
	opMSet
	opOther // must stay last: the INFO latency loop skips it by position
	opKinds
)

var opNames = [opKinds]string{"get", "set", "del", "mget", "scan", "mset", "other"}

// healthEngine is the optional engine interface behind the HEALTH command
// and INFO's health section. *core.DB and the prismdb facade implement it;
// an engine without it (a test fake) reports healthy.
type healthEngine interface {
	Health() core.Health
}

// Server is a RESP2-subset front end over an Engine.
type Server struct {
	cfg  Config
	eng  Engine
	teng traceEngine  // non-nil when eng supports traced writes
	heng healthEngine // non-nil when eng reports failure-domain health

	ln     net.Listener
	lnMu   sync.Mutex
	closed atomic.Bool

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup

	start time.Time

	// Telemetry. The per-op latency histograms are server-global lock-free
	// obs histograms recorded directly from the op loop — INFO and /metrics
	// read them live, so in-flight connections are always reflected (the
	// old per-connection histograms only merged at connection close, hiding
	// every live connection from INFO latency).
	reg        *obs.Registry
	events     *obs.EventLog
	tracer     *obs.Tracer
	opWall     [opKinds]*obs.Histogram // wall clock around the engine call
	opVirt     [opKinds]*obs.Histogram // engine-billed virtual time
	flushBytes *obs.Histogram          // reply bytes per socket flush

	// Command counters, atomics so INFO reads them live (the smoke test
	// compares them against the load generator's issued-op counts).
	cmdCounts   [opKinds]atomic.Int64
	errCount    atomic.Int64
	connsTotal  atomic.Int64
	connsLive   atomic.Int64
	connRejects atomic.Int64 // refused at the MaxConns cap
}

// New builds a Server. Call Serve or ListenAndServe to start it.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("server: Config.Engine is required")
	}
	if cfg.MaxScanLen <= 0 {
		cfg.MaxScanLen = 10000
	}
	if cfg.ReadBuffer <= 0 {
		cfg.ReadBuffer = 64 << 10
	}
	if cfg.WriteBuffer <= 0 {
		cfg.WriteBuffer = 64 << 10
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Events == nil {
		cfg.Events = obs.NewEventLog(256)
	}
	sample := cfg.TraceSample
	switch {
	case sample == 0:
		sample = traceSampleDefault
	case sample < 0:
		sample = 0 // tracer disabled: Sample always returns nil
	}
	if cfg.SlowlogLen <= 0 {
		cfg.SlowlogLen = 32
	}
	s := &Server{
		cfg:    cfg,
		eng:    cfg.Engine,
		conns:  map[net.Conn]struct{}{},
		start:  time.Now(),
		reg:    cfg.Metrics,
		events: cfg.Events,
		tracer: obs.NewTracer(sample, cfg.SlowlogLen, 0),
	}
	s.teng, _ = cfg.Engine.(traceEngine)
	s.heng, _ = cfg.Engine.(healthEngine)
	for k := opKind(0); k < opKinds; k++ {
		s.opWall[k] = s.reg.Histogram(
			`prism_server_op_wall_latency_seconds{op="`+opNames[k]+`"}`,
			"Wall-clock latency around the engine call, by op.", obs.UnitSeconds)
		s.opVirt[k] = s.reg.Histogram(
			`prism_server_op_virtual_latency_seconds{op="`+opNames[k]+`"}`,
			"Engine-billed virtual-time latency, by op.", obs.UnitSeconds)
	}
	s.flushBytes = s.reg.Histogram("prism_server_reply_flush_bytes",
		"Reply bytes written per socket flush.", obs.UnitCount)
	s.reg.Collect(func(g *obs.Gathered) {
		const cmdHelp = "Commands executed, by op."
		for k := opKind(0); k < opKinds; k++ {
			g.Counter(`prism_server_cmds_total{op="`+opNames[k]+`"}`, cmdHelp,
				s.cmdCounts[k].Load())
		}
		g.Counter("prism_server_errors_total",
			"Commands answered with a RESP error.", s.errCount.Load())
		g.Counter("prism_server_connections_total",
			"Client connections accepted.", s.connsTotal.Load())
		g.Counter("prism_server_connections_rejected_total",
			"Connections refused at the max-conns cap.", s.connRejects.Load())
		g.Gauge("prism_server_connections_live",
			"Client connections currently open.", float64(s.connsLive.Load()))
	})
	return s, nil
}

// record logs one executed command into the live per-op histograms.
func (s *Server) record(k opKind, wall, virt time.Duration) {
	s.opWall[k].Record(wall)
	s.opVirt[k].Record(virt)
}

// Registry returns the server's metrics registry (Config.Metrics or the
// private one New created), for mounting on an obs HTTP mux.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Events returns the server's structured event log.
func (s *Server) Events() *obs.EventLog { return s.events }

// ListenAndServe listens on addr ("host:port") and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown (which returns nil here)
// or a listener error.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		// Registration (conns map + WaitGroup) and Shutdown's closed-flag
		// store serialize on s.mu: either this connection registers before
		// Shutdown begins waiting — so the Wait covers it and the
		// force-close sweep can reach it — or it observes closed and is
		// dropped. Without the lock, an Accept racing Shutdown could
		// wg.Add concurrently with wg.Wait (a documented WaitGroup
		// misuse) and leak an untracked connection.
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.connRejects.Add(1)
			// One crisp diagnostic, no handler goroutine. The write rides
			// a short deadline so a client that never reads cannot wedge
			// the accept loop.
			nc.SetWriteDeadline(time.Now().Add(time.Second))
			nc.Write([]byte("-ERR max clients reached\r\n"))
			nc.Close()
			continue
		}
		s.connsTotal.Add(1)
		s.connsLive.Add(1)
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(nc)
	}
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown stops accepting, lets in-flight connections drain for up to
// grace, then force-closes stragglers. It returns once every connection
// goroutine has exited; the engine is not closed (the caller owns it —
// close it after Shutdown so racing requests fail with core.ErrClosed
// rather than hitting torn-down state).
func (s *Server) Shutdown(grace time.Duration) error {
	s.mu.Lock()
	s.closed.Store(true) // under s.mu: serializes with Serve's registration
	s.mu.Unlock()
	s.lnMu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.lnMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(grace):
	}
	s.mu.Lock()
	n := len(s.conns)
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	s.logf("server: force-closed %d connection(s) after %v drain window", n, grace)
	<-done
	return nil
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// errorReply formats an engine error as a RESP error and counts it. A
// degraded engine's ErrReadOnly maps to the Redis-shaped -READONLY error
// class, so clients (and prismload's retry loop) can tell a policy refusal
// — back off, maybe fail over — from a plain command failure.
func (s *Server) errorReply(w *writer, err error) {
	s.errCount.Add(1)
	if errors.Is(err, core.ErrReadOnly) {
		w.err("READONLY " + err.Error())
		return
	}
	w.err("ERR " + err.Error())
}
