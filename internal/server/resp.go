package server

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Wire-format limits. A request that exceeds them is a protocol error: the
// connection gets one -ERR reply and is closed, so a malformed or hostile
// client cannot make the server allocate unboundedly.
const (
	// MaxArgs bounds the argument count of one command (MGET is the widest
	// legitimate user).
	MaxArgs = 1024
	// MaxBulkLen bounds one bulk string (key or value).
	MaxBulkLen = 8 << 20
	// maxInlineLen bounds an inline (non-RESP) command line.
	maxInlineLen = 64 << 10
)

// ProtocolError is a malformed-input error. The server replies -ERR with
// the message and closes the connection, like Redis; every other error kind
// (I/O, engine) is handled by its site.
type ProtocolError string

// Error implements error.
func (e ProtocolError) Error() string { return "protocol error: " + string(e) }

// reader parses RESP2 commands — arrays of bulk strings, with the inline
// fallback — from a buffered connection. Argument bytes live in a
// per-reader arena recycled across commands, so steady-state parsing of a
// pipelined stream performs no per-command allocations; the returned
// [][]byte views are valid until the next ReadCommand.
type reader struct {
	br    *bufio.Reader
	args  [][]byte
	arena []byte
	offs  []int // arg boundaries within arena (len == #args + 1)
}

func newReader(br *bufio.Reader) *reader {
	return &reader{br: br}
}

// readLine returns one line without its terminator. RESP mandates \r\n; a
// bare \n is tolerated on inline commands the way Redis tolerates it. The
// returned slice views the bufio buffer — valid only until the next read.
func (r *reader) readLine() ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		return nil, ProtocolError("line too long")
	}
	if err != nil {
		return nil, err // io.EOF or a transport error: nothing to reply to
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// parseLen parses a non-negative decimal ([]byte to avoid a string alloc on
// the hot path). Returns -1 on anything else, including empty input and
// overflow.
func parseLen(b []byte) int {
	if len(b) == 0 || len(b) > 10 {
		return -1
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// ReadCommand parses the next command. It returns a nil slice with a nil
// error for no-op input (an empty inline line, an empty array), which the
// caller skips. A ProtocolError means the stream is unrecoverable: reply
// once and close. Other errors are transport-level (EOF, reset).
func (r *reader) ReadCommand() ([][]byte, error) {
	r.args = r.args[:0]
	r.arena = r.arena[:0]
	r.offs = r.offs[:0]

	line, err := r.readLine()
	if err != nil {
		return nil, err
	}
	if len(line) == 0 {
		return nil, nil
	}
	if line[0] != '*' {
		return r.parseInline(line)
	}
	n := parseLen(line[1:])
	if n < 0 || n > MaxArgs {
		return nil, ProtocolError("invalid multibulk length")
	}
	if n == 0 {
		return nil, nil
	}
	r.offs = append(r.offs, 0)
	for i := 0; i < n; i++ {
		hdr, err := r.readLine()
		if err != nil {
			return nil, unexpected(err)
		}
		if len(hdr) == 0 || hdr[0] != '$' {
			return nil, ProtocolError("expected bulk string ('$')")
		}
		blen := parseLen(hdr[1:])
		if blen < 0 || blen > MaxBulkLen {
			return nil, ProtocolError("invalid bulk length")
		}
		off := len(r.arena)
		r.arena = append(r.arena, make([]byte, blen)...)
		if _, err := io.ReadFull(r.br, r.arena[off:off+blen]); err != nil {
			return nil, unexpected(err)
		}
		var crlf [2]byte
		if _, err := io.ReadFull(r.br, crlf[:]); err != nil {
			return nil, unexpected(err)
		}
		if crlf[0] != '\r' || crlf[1] != '\n' {
			return nil, ProtocolError("bulk string missing CRLF terminator")
		}
		r.offs = append(r.offs, len(r.arena))
	}
	return r.sliceArgs(), nil
}

// parseInline splits a plain-text command line on spaces/tabs (the telnet
// convenience path; no quoting).
func (r *reader) parseInline(line []byte) ([][]byte, error) {
	if len(line) > maxInlineLen {
		return nil, ProtocolError("inline command too long")
	}
	r.offs = append(r.offs, 0)
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		if len(r.offs)-1 >= MaxArgs {
			return nil, ProtocolError("too many inline arguments")
		}
		r.arena = append(r.arena, line[start:i]...)
		r.offs = append(r.offs, len(r.arena))
	}
	if len(r.offs) == 1 {
		return nil, nil
	}
	return r.sliceArgs(), nil
}

// sliceArgs materializes the arg views over the (now final-sized) arena.
func (r *reader) sliceArgs() [][]byte {
	for i := 0; i+1 < len(r.offs); i++ {
		r.args = append(r.args, r.arena[r.offs[i]:r.offs[i+1]])
	}
	return r.args
}

// unexpected maps a clean EOF in the middle of a command to a protocol
// error (truncated input), leaving transport errors untouched.
func unexpected(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ProtocolError("truncated command")
	}
	return err
}

// writer emits RESP2 replies into a buffered writer. Integer formatting
// goes through a small scratch buffer, so the reply path allocates nothing.
type writer struct {
	bw      *bufio.Writer
	scratch [24]byte
}

func (w *writer) simple(s string) {
	w.bw.WriteByte('+')
	w.bw.WriteString(s)
	w.bw.WriteString("\r\n")
}

func (w *writer) err(msg string) {
	w.bw.WriteByte('-')
	w.bw.WriteString(msg)
	w.bw.WriteString("\r\n")
}

func (w *writer) integer(n int64) {
	w.bw.WriteByte(':')
	w.writeInt(n)
	w.bw.WriteString("\r\n")
}

func (w *writer) bulk(b []byte) {
	w.bw.WriteByte('$')
	w.writeInt(int64(len(b)))
	w.bw.WriteString("\r\n")
	w.bw.Write(b)
	w.bw.WriteString("\r\n")
}

func (w *writer) bulkString(s string) {
	w.bw.WriteByte('$')
	w.writeInt(int64(len(s)))
	w.bw.WriteString("\r\n")
	w.bw.WriteString(s)
	w.bw.WriteString("\r\n")
}

// null is the RESP2 null bulk string ($-1), the "no such key" reply.
func (w *writer) null() { w.bw.WriteString("$-1\r\n") }

// appendBulk appends one encoded RESP bulk string to dst (for replies
// staged in a scratch buffer before their array header is known, e.g.
// SCAN's streamed pairs).
func appendBulk(dst, b []byte) []byte {
	dst = append(dst, '$')
	dst = strconv.AppendInt(dst, int64(len(b)), 10)
	dst = append(dst, '\r', '\n')
	dst = append(dst, b...)
	return append(dst, '\r', '\n')
}

func (w *writer) array(n int) {
	w.bw.WriteByte('*')
	w.writeInt(int64(n))
	w.bw.WriteString("\r\n")
}

func (w *writer) writeInt(n int64) {
	if n < 0 {
		w.bw.WriteByte('-')
		n = -n
	}
	i := len(w.scratch)
	for {
		i--
		w.scratch[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	w.bw.Write(w.scratch[i:])
}

// Reply is one parsed RESP2 reply, for client-side use (the load generator
// and the wire tests). Kind is the RESP type byte: '+', '-', ':', '$', '*'.
type Reply struct {
	Kind  byte
	Str   []byte  // simple string, error message, or bulk payload
	Null  bool    // null bulk ($-1) or null array (*-1)
	Int   int64   // ':' payload
	Elems []Reply // '*' payload
}

// IsErr reports whether the reply is a RESP error.
func (r Reply) IsErr() bool { return r.Kind == '-' }

// ReadReply parses one reply from br. Client-side only — the hot server
// path never builds Reply trees.
func ReadReply(br *bufio.Reader) (Reply, error) {
	line, err := readClientLine(br)
	if err != nil {
		return Reply{}, err
	}
	if len(line) == 0 {
		return Reply{}, ProtocolError("empty reply line")
	}
	rep := Reply{Kind: line[0]}
	body := line[1:]
	switch rep.Kind {
	case '+', '-':
		rep.Str = append([]byte(nil), body...)
	case ':':
		neg := false
		if len(body) > 0 && body[0] == '-' {
			neg, body = true, body[1:]
		}
		n := parseLen(body)
		if n < 0 {
			return Reply{}, ProtocolError("invalid integer reply")
		}
		rep.Int = int64(n)
		if neg {
			rep.Int = -rep.Int
		}
	case '$':
		if len(body) > 0 && body[0] == '-' {
			rep.Null = true
			return rep, nil
		}
		blen := parseLen(body)
		if blen < 0 || blen > MaxBulkLen {
			return Reply{}, ProtocolError("invalid bulk reply length")
		}
		rep.Str = make([]byte, blen)
		if _, err := io.ReadFull(br, rep.Str); err != nil {
			return Reply{}, err
		}
		var crlf [2]byte
		if _, err := io.ReadFull(br, crlf[:]); err != nil {
			return Reply{}, err
		}
	case '*':
		if len(body) > 0 && body[0] == '-' {
			rep.Null = true
			return rep, nil
		}
		n := parseLen(body)
		if n < 0 {
			return Reply{}, ProtocolError("invalid array reply length")
		}
		rep.Elems = make([]Reply, 0, n)
		for i := 0; i < n; i++ {
			e, err := ReadReply(br)
			if err != nil {
				return Reply{}, err
			}
			rep.Elems = append(rep.Elems, e)
		}
	default:
		return Reply{}, ProtocolError(fmt.Sprintf("unknown reply type %q", rep.Kind))
	}
	return rep, nil
}

func readClientLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}
