package server

import (
	"bufio"
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// benchThroughput drives a fixed GET burst through the server over conns
// loopback connections at the given pipeline depth and reports wall-clock
// ops/s. Depth 1 is the unpipelined baseline: one request, one reply, one
// round trip at a time. The BenchmarkServerPipelined /
// BenchmarkServerUnpipelined pair shares a connection count, so the
// BENCH_<date>.json rows record exactly what explicit pipelining buys on
// the wire (the engine work is identical).
func benchThroughput(b *testing.B, conns, depth, ops int) {
	benchThroughputParts(b, 4, conns, depth, ops)
}

func benchThroughputParts(b *testing.B, parts, conns, depth, ops int) {
	db := testEngine(b, parts)
	_, dial := startServer(b, db)

	const keys = 4096
	for i := 0; i < keys; i++ {
		if _, err := db.Put(benchKey(i), bytes.Repeat([]byte{'v'}, 128)); err != nil {
			b.Fatal(err)
		}
	}

	// Pre-encode each connection's request windows so the measured loop is
	// socket + server work, not client-side formatting.
	perConn := ops / conns
	windows := make([][][]byte, conns)
	for c := 0; c < conns; c++ {
		for off := 0; off < perConn; off += depth {
			n := depth
			if off+n > perConn {
				n = perConn - off
			}
			var w bytes.Buffer
			for i := 0; i < n; i++ {
				k := benchKey((c*perConn + off + i) % keys)
				fmt.Fprintf(&w, "*2\r\n$3\r\nGET\r\n$%d\r\n%s\r\n", len(k), k)
			}
			windows[c] = append(windows[c], w.Bytes())
		}
	}

	b.ResetTimer()
	var elapsed time.Duration
	for iter := 0; iter < b.N; iter++ {
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, conns)
		for c := 0; c < conns; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				nc := dial()
				defer nc.Close()
				br := bufio.NewReaderSize(nc, 64<<10)
				for wi, w := range windows[c] {
					if _, err := nc.Write(w); err != nil {
						errs <- err
						return
					}
					n := depth
					if wi == len(windows[c])-1 {
						n = perConn - wi*depth
					}
					for i := 0; i < n; i++ {
						rep, err := ReadReply(br)
						if err != nil {
							errs <- err
							return
						}
						if rep.IsErr() || rep.Null {
							errs <- fmt.Errorf("GET failed: %+v", rep)
							return
						}
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
		elapsed += time.Since(start)
	}
	totalOps := float64(conns*perConn) * float64(b.N)
	b.ReportMetric(totalOps/elapsed.Seconds(), "wall-ops/s")
	b.ReportMetric(0, "ns/op") // the burst, not b.N, is the unit of work
}

func benchKey(i int) []byte { return []byte(fmt.Sprintf("user%08d", i)) }

// BenchmarkServerUnpipelined is the round-trip-bound baseline: depth 1 on 2
// connections.
func BenchmarkServerUnpipelined(b *testing.B) { benchThroughput(b, 2, 1, 4000) }

// BenchmarkServerPipelined is the same connection count with explicit
// pipelining (depth 64): one inbound read, 64 engine calls, one flush.
func BenchmarkServerPipelined(b *testing.B) { benchThroughput(b, 2, 64, 40000) }

// BenchmarkServerContendedGets is the GET-heavy serving row (the prismload
// -workload c shape: 100% reads, many connections) against a SINGLE
// partition, so every connection's goroutine lands on the same hot shard.
// Before the lock-free GET path these 8 goroutines serialized on one
// partition mutex around each ~µs engine read; now they only meet at the
// read view's atomics. Tracks wall-ops/s in BENCH_<date>.json next to the
// pipelining rows; on multi-core hosts this row is the one that scales
// with cores.
func BenchmarkServerContendedGets(b *testing.B) { benchThroughputParts(b, 1, 8, 16, 64000) }
