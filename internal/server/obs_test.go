package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// traceAllConfig returns a Config that samples every command, so SLOWLOG
// and TRACE tests are deterministic about WHAT gets traced (timings still
// vary; the tests assert ordering properties, not values).
func traceAllConfig(eng Engine) Config {
	return Config{Engine: eng, TraceSample: 1}
}

// startServerCfg is startServer with a caller-built Config.
func startServerCfg(t testing.TB, cfg Config) (*Server, func() net.Conn) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Shutdown(2 * time.Second); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	dial := func() net.Conn {
		nc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return nc
	}
	return srv, dial
}

// TestSlowlogWire drives traced commands over the wire and checks the
// SLOWLOG contract: LEN counts retained entries, GET returns them slowest
// first with unique IDs, GET n truncates, and RESET empties the ring
// without stopping new samples.
func TestSlowlogWire(t *testing.T) {
	db := testEngine(t, 2)
	t.Cleanup(func() { db.Close() })
	_, dial := startServerCfg(t, traceAllConfig(db))
	nc := dial()
	defer nc.Close()
	br := bufio.NewReader(nc)

	for i := 0; i < 20; i++ {
		k, v := fmt.Sprintf("sl%02d", i), fmt.Sprintf("v%02d", i)
		if rep := roundTrip(t, nc, br, "SET", k, v); string(rep.Str) != "OK" {
			t.Fatalf("SET → %+v", rep)
		}
		if rep := roundTrip(t, nc, br, "GET", k); string(rep.Str) != v {
			t.Fatalf("GET → %+v", rep)
		}
	}

	rep := roundTrip(t, nc, br, "SLOWLOG", "LEN")
	if rep.Int <= 0 {
		t.Fatalf("SLOWLOG LEN = %d after 40 traced commands, want > 0", rep.Int)
	}
	retained := rep.Int

	rep = roundTrip(t, nc, br, "SLOWLOG", "GET")
	if int64(len(rep.Elems)) != retained {
		t.Fatalf("SLOWLOG GET returned %d entries, LEN said %d", len(rep.Elems), retained)
	}
	seen := map[int64]bool{}
	prev := int64(-1)
	for i, e := range rep.Elems {
		if len(e.Elems) != 4 {
			t.Fatalf("entry %d has %d fields, want 4: %+v", i, len(e.Elems), e)
		}
		id, durUS := e.Elems[0].Int, e.Elems[2].Int
		if seen[id] {
			t.Fatalf("duplicate slowlog id %d", id)
		}
		seen[id] = true
		if prev >= 0 && durUS > prev {
			t.Fatalf("entry %d (%dµs) slower than entry %d (%dµs): not sorted", i, durUS, i-1, prev)
		}
		prev = durUS
		detail := e.Elems[3]
		if len(detail.Elems) != 4 {
			t.Fatalf("entry %d detail has %d fields, want 4", i, len(detail.Elems))
		}
		if op := string(detail.Elems[0].Str); op != "get" && op != "set" && op != "cmd" {
			t.Fatalf("entry %d op = %q", i, op)
		}
	}

	if rep = roundTrip(t, nc, br, "SLOWLOG", "GET", "3"); len(rep.Elems) > 3 {
		t.Fatalf("SLOWLOG GET 3 returned %d entries", len(rep.Elems))
	}
	if rep = roundTrip(t, nc, br, "SLOWLOG", "RESET"); string(rep.Str) != "OK" {
		t.Fatalf("SLOWLOG RESET → %+v", rep)
	}
	// The RESET command itself is traced, so LEN is 0 or 1 — never the old
	// population.
	if rep = roundTrip(t, nc, br, "SLOWLOG", "LEN"); rep.Int > 1 {
		t.Fatalf("SLOWLOG LEN = %d after RESET, want ≤ 1", rep.Int)
	}
	if rep = roundTrip(t, nc, br, "SLOWLOG", "NOPE"); !rep.IsErr() {
		t.Fatalf("bad subcommand → %+v, want error", rep)
	}
}

// TestTraceWire checks the TRACE debug command: bounded output, one line
// per recent span, each carrying the op and a total.
func TestTraceWire(t *testing.T) {
	db := testEngine(t, 1)
	t.Cleanup(func() { db.Close() })
	_, dial := startServerCfg(t, traceAllConfig(db))
	nc := dial()
	defer nc.Close()
	br := bufio.NewReader(nc)

	roundTrip(t, nc, br, "SET", "tk", "tv")
	roundTrip(t, nc, br, "GET", "tk")
	rep := roundTrip(t, nc, br, "TRACE", "2")
	if len(rep.Elems) == 0 || len(rep.Elems) > 2 {
		t.Fatalf("TRACE 2 → %d lines", len(rep.Elems))
	}
	for _, e := range rep.Elems {
		line := string(e.Str)
		if !strings.HasPrefix(line, "#") || !strings.Contains(line, "total=") {
			t.Fatalf("TRACE line %q", line)
		}
	}
	if rep := roundTrip(t, nc, br, "TRACE", "0"); !rep.IsErr() {
		t.Fatalf("TRACE 0 → %+v, want error", rep)
	}
}

// TestInfoLatencyLiveConnections is the regression test for the INFO
// latency bug: per-connection histograms used to merge only at connection
// close, so a live connection's ops were invisible. The histograms are now
// server-global and recorded live — INFO must reflect ops from a
// connection that is still open.
func TestInfoLatencyLiveConnections(t *testing.T) {
	db := testEngine(t, 1)
	t.Cleanup(func() { db.Close() })
	_, dial := startServer(t, db)
	nc := dial()
	defer nc.Close() // stays open for the whole test — that's the point
	br := bufio.NewReader(nc)

	for i := 0; i < 10; i++ {
		roundTrip(t, nc, br, "SET", fmt.Sprintf("lk%d", i), "v")
		roundTrip(t, nc, br, "GET", fmt.Sprintf("lk%d", i))
	}
	rep := roundTrip(t, nc, br, "INFO", "latency")
	body := string(rep.Str)
	if !strings.Contains(body, "get_count:10") {
		t.Fatalf("INFO latency on a LIVE connection missing get_count:10:\n%s", body)
	}
	if !strings.Contains(body, "set_count:10") {
		t.Fatalf("INFO latency on a LIVE connection missing set_count:10:\n%s", body)
	}
	if !strings.Contains(body, "get_wall_p50_us:") || !strings.Contains(body, "get_virt_p99_us:") {
		t.Fatalf("INFO latency missing quantile lines:\n%s", body)
	}
}

// TestInfoEventsSection: the events section surfaces the engine's
// structured event log through the shared EventLog.
func TestInfoEventsSection(t *testing.T) {
	db := testEngine(t, 1)
	t.Cleanup(func() { db.Close() })
	srv, dial := startServer(t, db)
	srv.events.Emit("test_event", "answer", 42)
	nc := dial()
	defer nc.Close()
	br := bufio.NewReader(nc)
	rep := roundTrip(t, nc, br, "INFO", "events")
	body := string(rep.Str)
	if !strings.Contains(body, "# events") || !strings.Contains(body, "events_total:") {
		t.Fatalf("INFO events malformed:\n%s", body)
	}
	if !strings.Contains(body, `"type":"test_event"`) || !strings.Contains(body, `"answer":42`) {
		t.Fatalf("INFO events missing emitted event:\n%s", body)
	}
}

// TestServerRecordZeroAlloc pins the op loop's instrumented recording path
// at zero heap allocations per op: the obs histograms and atomic counters
// the hot path touches must never allocate.
func TestServerRecordZeroAlloc(t *testing.T) {
	db := testEngine(t, 1)
	t.Cleanup(func() { db.Close() })
	srv, err := New(Config{Engine: db})
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(2000, func() {
		srv.record(opGet, time.Microsecond, 2*time.Microsecond)
		srv.flushBytes.Observe(1024)
		srv.cmdCounts[opGet].Add(1)
	}); n != 0 {
		t.Fatalf("instrumented record path allocates %.2f objects/op, want 0", n)
	}
}
