package server

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"github.com/prismdb/prismdb/internal/core"
	"github.com/prismdb/prismdb/internal/obs"
	"github.com/prismdb/prismdb/internal/storage"
)

// traceEngine is the optional engine interface sampled writes use to pull
// stage timings (queue wait, apply, WAL append, fsync wait) out of the
// engine. *core.DB and the prismdb facade implement it; the Engine
// interface itself stays small so test fakes keep compiling.
type traceEngine interface {
	PutTraced(key, value []byte, tr *core.OpTrace) (time.Duration, error)
	DeleteTraced(key []byte, tr *core.OpTrace) (time.Duration, error)
}

// flushReader is the pipelining valve: it sits between the connection and
// the parser's bufio.Reader and flushes the connection's pending replies
// whenever the parser actually needs bytes from the kernel. While a
// pipelined batch is still buffered, parse → execute → reply loops touch
// the socket zero times; the moment the inbound buffer runs dry, the
// accumulated replies go out in one write and the goroutine blocks in Read.
// One flush per inbound batch, and no deadlock when a client trickles half
// a command and waits for earlier replies.
//
// beforeRead runs first: it flushes the connection's pending engine SET
// batch, so the batched writes' replies land in bw before bw itself is
// flushed. The same valve that bounds reply latency therefore also bounds
// write-batch latency — a client that stops pipelining gets its OKs (and
// its writes applied) before the server blocks on the socket, never after.
type flushReader struct {
	nc         net.Conn
	bw         *bufio.Writer
	idle       time.Duration // Config.IdleTimeout; 0 = no read deadline
	beforeRead func()        // flushes the pending SET batch; set by handleConn
	flush      func() error  // flushes bw, recording flush size + traced spans
}

func (f *flushReader) Read(p []byte) (int, error) {
	if f.beforeRead != nil {
		f.beforeRead()
	}
	if f.bw.Buffered() > 0 {
		if err := f.flush(); err != nil {
			return 0, err
		}
	}
	// The idle clock re-arms per socket read: a connection only times out
	// when it produces no bytes for the whole window, never mid-pipeline
	// (buffered commands are parsed without touching the socket).
	if f.idle > 0 {
		f.nc.SetReadDeadline(time.Now().Add(f.idle))
	}
	return f.nc.Read(p)
}

// handleConn runs one connection's parse → execute → reply loop to
// completion.
func (s *Server) handleConn(nc net.Conn) {
	defer s.wg.Done()
	defer func() {
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		s.connsLive.Add(-1)
	}()

	bw := bufio.NewWriterSize(nc, s.cfg.WriteBuffer)
	fr := &flushReader{nc: nc, bw: bw, idle: s.cfg.IdleTimeout}
	br := bufio.NewReaderSize(fr, s.cfg.ReadBuffer)
	r := newReader(br)
	w := &writer{bw: bw}

	// The connection's scratch buffers: GETs land in st.val via the
	// engine's GetBuf zero-allocation read path and are copied straight
	// into the write buffer, and SCAN streams its pairs through st.scan;
	// both are recycled across commands, so warm reads and scans allocate
	// nothing on the server side.
	st := &connState{val: make([]byte, 0, 4096)}
	fr.beforeRead = func() { s.flushSetBatch(w, st) }
	// flush replaces every bare bw.Flush: it feeds the flush-size
	// histogram and closes out the traced spans whose replies ride this
	// flush (the reply-flush stage is the shared socket write).
	flush := func() error {
		n := bw.Buffered()
		f0 := time.Now()
		err := bw.Flush()
		if n > 0 {
			s.flushBytes.Observe(int64(n))
		}
		if len(st.spans) > 0 {
			d := time.Since(f0)
			for i, sp := range st.spans {
				sp.Stage(obs.StageFlush, d)
				s.tracer.Finish(sp)
				st.spans[i] = nil
			}
			st.spans = st.spans[:0]
		}
		return err
	}
	fr.flush = flush

	for {
		if s.closed.Load() {
			s.flushSetBatch(w, st)
			flush()
			return
		}
		// Sampling a command's span: when the parser already holds buffered
		// bytes the parse is real work and a pre-armed span times it; when
		// the buffer is dry, ReadCommand blocks on the socket, so the span
		// is armed after the read instead — idle wire time is not "parse".
		var sp *obs.Span
		var p0 time.Time
		buffered := br.Buffered() > 0
		if buffered {
			if sp = s.tracer.Sample(); sp != nil {
				p0 = time.Now()
			}
		}
		args, err := r.ReadCommand()
		if sp != nil {
			sp.Stage(obs.StageParse, time.Since(p0))
		}
		if err != nil {
			s.tracer.Drop(sp)
			// A well-formed SET batched just before a protocol error (or
			// EOF mid-stream) still executes and gets its reply: the batch
			// flush precedes the diagnostic, mirroring the unbatched path's
			// ordering. Usually a no-op — beforeRead already flushed at the
			// last socket read.
			s.flushSetBatch(w, st)
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				// The idle deadline expired: a quiet goodbye, not an error
				// reply — the client wasn't mid-command.
				s.logf("server: %s: closed after %v idle", nc.RemoteAddr(), s.cfg.IdleTimeout)
			}
			if perr, ok := err.(ProtocolError); ok {
				// One diagnostic, then hang up: a desynced RESP stream
				// cannot be safely resumed.
				s.logf("server: %s: %v", nc.RemoteAddr(), perr)
				s.errCount.Add(1)
				w.err("ERR " + perr.Error())
			}
			flush()
			return
		}
		if len(args) == 0 {
			s.tracer.Drop(sp)
			continue
		}
		if !buffered {
			sp = s.tracer.Sample()
		}
		// The pipelined-write fast path: a SET that arrived with more
		// commands behind it (or while a batch is already open) is
		// deferred into the connection's batch instead of executing — the
		// whole run reaches the engine as ONE PutBatch, so N pipelined
		// SETs cost one owner-queue handoff per partition, one WAL group
		// append, and one view republication. A lone SET on an idle
		// connection executes immediately: batching it would only add
		// latency with nothing to coalesce.
		if len(args) == 3 && cmdIs(args[0], "SET") && (len(st.bpairs) > 0 || br.Buffered() > 0) {
			// A deferred SET dissolves into its batch; the batch itself is
			// traced as one unit in flushSetBatch.
			s.tracer.Drop(sp)
			st.addSet(args[1], args[2])
			if len(st.bpairs) >= setBatchMax {
				s.flushSetBatch(w, st)
			}
			continue
		}
		// Any other command first forces the pending batch out, preserving
		// per-connection order (a GET after a batched SET sees its write).
		s.flushSetBatch(w, st)
		if !s.execute(args, w, st, sp) {
			flush()
			return
		}
	}
}

// connState holds one connection's recycled scratch buffers.
type connState struct {
	val  []byte // GetBuf value scratch
	scan []byte // SCAN's encoded key/value pairs

	// The pipelined SET batch. The parser's argument arena is recycled by
	// the next ReadCommand, so a deferred SET's key and value are copied
	// into barena (one growable arena, recycled per flush) and bpairs
	// holds the slices handed to Engine.PutBatch. bpairs doubles as MSET's
	// pair scratch — it is always empty when execute runs.
	bpairs []core.KV
	barena []byte

	// spans are the connection's traced ops whose replies have not hit the
	// socket yet; the next flush stamps their reply-flush stage and
	// finishes them (recycled like every other scratch here).
	spans []*obs.Span
}

// setBatchMax bounds the deferred SET batch; it matches the engine's
// per-partition owner batch cap, past which a longer server-side batch
// would only split downstream anyway.
const setBatchMax = 128

// addSet copies one SET's key and value out of the parse arena and into
// the connection's batch. Growing barena mid-batch is fine: earlier pairs
// keep the old backing array alive, and appends never write inside an
// existing pair's bounds.
func (st *connState) addSet(key, value []byte) {
	off := len(st.barena)
	st.barena = append(st.barena, key...)
	k := st.barena[off:len(st.barena):len(st.barena)]
	off = len(st.barena)
	st.barena = append(st.barena, value...)
	v := st.barena[off:len(st.barena):len(st.barena)]
	st.bpairs = append(st.bpairs, core.KV{Key: k, Value: v})
}

// flushSetBatch hands the connection's deferred SETs to the engine as one
// PutBatch and writes their replies. No-op when the batch is empty. The
// batch's wall and virtual time are split evenly across its ops for the
// per-op histograms — the composition the engine maintains internally.
func (s *Server) flushSetBatch(w *writer, st *connState) {
	n := len(st.bpairs)
	if n == 0 {
		return
	}
	s.cmdCounts[opSet].Add(int64(n))
	// The batch is traced as one unit (its member SETs dissolved into it):
	// one sampled span covering the whole PutBatch dispatch.
	sp := s.tracer.Sample()
	if sp != nil {
		sp.SetOp("setbatch", st.bpairs[0].Key)
	}
	t0 := time.Now()
	vlat, err := s.eng.PutBatch(st.bpairs)
	if sp != nil {
		sp.Stage(obs.StageDispatch, time.Since(t0))
		st.spans = append(st.spans, sp)
	}
	st.bpairs = st.bpairs[:0]
	st.barena = st.barena[:0]
	if err != nil {
		// All-or-nothing reporting: PutBatch surfaces the first failure,
		// and a failed batch (in practice: the engine closed) errors every
		// op in it rather than guessing which prefix landed.
		for i := 0; i < n; i++ {
			s.errorReply(w, err)
		}
		return
	}
	wall, per := time.Since(t0), vlat/time.Duration(n)
	wper := wall / time.Duration(n)
	for i := 0; i < n; i++ {
		s.record(opSet, wper, per)
		w.simple("OK")
	}
}

// cmdIs compares a command name case-insensitively against an upper-case
// reference without allocating.
func cmdIs(b []byte, upper string) bool {
	if len(b) != len(upper) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != upper[i] {
			return false
		}
	}
	return true
}

// execute dispatches one parsed command, writing its reply. It reports
// false when the connection should close (QUIT). sp is the command's
// sampled trace span (usually nil): the dispatch stage covers the whole
// command — engine call plus reply encode — and write sub-stages from the
// engine decompose it; the span is parked on st.spans for the reply flush
// to finish.
func (s *Server) execute(args [][]byte, w *writer, st *connState, sp *obs.Span) bool {
	if sp == nil {
		return s.executeCmd(args, w, st, nil)
	}
	sp.SetOp("cmd", args[0]) // fallback; the data commands override
	d0 := time.Now()
	keep := s.executeCmd(args, w, st, sp)
	sp.Stage(obs.StageDispatch, time.Since(d0))
	st.spans = append(st.spans, sp)
	return keep
}

func (s *Server) executeCmd(args [][]byte, w *writer, st *connState, sp *obs.Span) bool {
	name := args[0]
	switch {
	case cmdIs(name, "GET"):
		if len(args) != 2 {
			s.argErr(w, "get")
			return true
		}
		s.doGet(args[1], w, st, opGet, sp)
	case cmdIs(name, "SET"):
		if len(args) != 3 {
			s.argErr(w, "set")
			return true
		}
		s.cmdCounts[opSet].Add(1)
		sp.SetOp("set", args[1])
		t0 := time.Now()
		var vlat time.Duration
		var err error
		if sp != nil && s.teng != nil {
			// Sampled write: pull the engine's stage breakdown (queue
			// wait, apply, WAL append, fsync wait) through the traced
			// variant. Identical semantics to Put.
			var tr core.OpTrace
			vlat, err = s.teng.PutTraced(args[1], args[2], &tr)
			traceStages(sp, &tr)
		} else {
			vlat, err = s.eng.Put(args[1], args[2])
		}
		if err != nil {
			s.errorReply(w, err)
			return true
		}
		s.record(opSet, time.Since(t0), vlat)
		w.simple("OK")
	case cmdIs(name, "DEL"):
		if len(args) < 2 {
			s.argErr(w, "del")
			return true
		}
		// Replies with the number of delete operations issued. PrismDB
		// deletes blindly (checking existence first would double the op's
		// cost), so unlike Redis the count includes keys that did not
		// exist.
		sp.SetOp("del", args[1])
		n := 0
		for _, k := range args[1:] {
			s.cmdCounts[opDel].Add(1)
			t0 := time.Now()
			var vlat time.Duration
			var err error
			if sp != nil && s.teng != nil && n == 0 {
				// Only the first key carries the span's stage breakdown —
				// one op, one span.
				var tr core.OpTrace
				vlat, err = s.teng.DeleteTraced(k, &tr)
				traceStages(sp, &tr)
			} else {
				vlat, err = s.eng.Delete(k)
			}
			if err != nil {
				s.errorReply(w, err)
				return true
			}
			s.record(opDel, time.Since(t0), vlat)
			n++
		}
		w.integer(int64(n))
	case cmdIs(name, "MSET"):
		if len(args) < 3 || len(args)%2 != 1 {
			s.argErr(w, "mset")
			return true
		}
		// The pairs may alias the parse arena: PutBatch is synchronous and
		// the engine copies what it keeps before acknowledging, exactly as
		// with Put. bpairs is free scratch here — handleConn flushed the
		// deferred batch before dispatching.
		pairs := st.bpairs[:0]
		for i := 1; i+1 < len(args); i += 2 {
			pairs = append(pairs, core.KV{Key: args[i], Value: args[i+1]})
		}
		// Each pair counts as a set (prismload's -check compares element
		// counts); cmd_mset counts the wire command itself.
		s.cmdCounts[opMSet].Add(1)
		s.cmdCounts[opSet].Add(int64(len(pairs)))
		sp.SetOp("mset", args[1])
		t0 := time.Now()
		vlat, err := s.eng.PutBatch(pairs)
		st.bpairs = pairs[:0]
		if err != nil {
			s.errorReply(w, err)
			return true
		}
		s.record(opMSet, time.Since(t0), vlat)
		w.simple("OK")
	case cmdIs(name, "MGET"):
		if len(args) < 2 {
			s.argErr(w, "mget")
			return true
		}
		sp.SetOp("mget", args[1])
		w.array(len(args) - 1)
		for _, k := range args[1:] {
			s.doGet(k, w, st, opMGet, nil)
		}
	case cmdIs(name, "SCAN"):
		if len(args) != 3 {
			s.argErr(w, "scan")
			return true
		}
		n := parseLen(args[2])
		if n <= 0 {
			s.errCount.Add(1)
			w.err("ERR SCAN count must be a positive integer")
			return true
		}
		if n > s.cfg.MaxScanLen {
			n = s.cfg.MaxScanLen
		}
		// Stream the engine's iterator instead of materializing a []KV:
		// the reply header needs the pair count up front, so encoded pairs
		// accumulate in the connection's recycled scan scratch — no
		// per-entry allocations — and go out in one write after the count
		// is known.
		s.cmdCounts[opScan].Add(1)
		sp.SetOp("scan", args[1])
		t0 := time.Now()
		it := s.eng.NewIterator(args[1], n)
		pairs := 0
		buf := st.scan[:0]
		for it.Valid() && pairs < n {
			buf = appendBulk(buf, it.Key())
			buf = appendBulk(buf, it.Value())
			pairs++
			it.Next()
		}
		err := it.Close()
		st.scan = buf
		if err != nil {
			s.errorReply(w, err)
			return true
		}
		s.record(opScan, time.Since(t0), it.Latency())
		w.array(2 * pairs)
		w.bw.Write(buf)
	case cmdIs(name, "PING"):
		s.cmdCounts[opOther].Add(1)
		if len(args) > 1 {
			w.bulk(args[1])
		} else {
			w.simple("PONG")
		}
	case cmdIs(name, "INFO"):
		s.cmdCounts[opOther].Add(1)
		section := ""
		if len(args) > 1 {
			section = string(args[1])
		}
		w.bulkString(s.info(section))
	case cmdIs(name, "HEALTH"):
		s.cmdCounts[opOther].Add(1)
		if len(args) != 1 {
			s.argErr(w, "health")
			return true
		}
		// Flat field/value array (HGETALL-shaped), cheap to script against:
		// state, read_only flag, the first sticky cause, and when it struck.
		// An engine without health tracking (a test fake, the in-memory
		// simulator) reports healthy — its zero value.
		var h core.Health
		if s.heng != nil {
			h = s.heng.Health()
		}
		w.array(8)
		w.bulkString("state")
		w.bulkString(h.State.String())
		w.bulkString("read_only")
		if h.ReadOnly {
			w.bulkString("1")
		} else {
			w.bulkString("0")
		}
		w.bulkString("cause")
		w.bulkString(h.Cause)
		w.bulkString("since")
		if h.Since.IsZero() {
			w.bulkString("")
		} else {
			w.bulkString(h.Since.UTC().Format(time.RFC3339))
		}
	case cmdIs(name, "DEBUG"):
		s.cmdCounts[opOther].Add(1)
		if len(args) < 2 {
			s.argErr(w, "debug")
			return true
		}
		if !cmdIs(args[1], "FAULT") {
			s.errCount.Add(1)
			w.err("ERR unknown DEBUG subcommand '" + printable(args[1]) + "'")
			return true
		}
		s.debugFault(args[2:], w)
	case cmdIs(name, "SLOWLOG"):
		s.cmdCounts[opOther].Add(1)
		if len(args) < 2 || len(args) > 3 {
			s.argErr(w, "slowlog")
			return true
		}
		sub := args[1]
		switch {
		case cmdIs(sub, "GET"):
			n := 0 // all retained entries
			if len(args) == 3 {
				if n = parseLen(args[2]); n <= 0 {
					s.errCount.Add(1)
					w.err("ERR SLOWLOG GET count must be a positive integer")
					return true
				}
			}
			recs := s.tracer.Slow(n)
			w.array(len(recs))
			for _, rec := range recs {
				writeSpanRecord(w, rec)
			}
		case cmdIs(sub, "LEN"):
			w.integer(int64(s.tracer.SlowLen()))
		case cmdIs(sub, "RESET"):
			s.tracer.SlowReset()
			w.simple("OK")
		default:
			s.errCount.Add(1)
			w.err("ERR unknown SLOWLOG subcommand '" + printable(sub) + "'")
		}
	case cmdIs(name, "TRACE"):
		// Debug: the n most recently finished sampled spans, newest last,
		// one formatted line per span.
		s.cmdCounts[opOther].Add(1)
		if len(args) > 2 {
			s.argErr(w, "trace")
			return true
		}
		n := 0
		if len(args) == 2 {
			if n = parseLen(args[1]); n <= 0 {
				s.errCount.Add(1)
				w.err("ERR TRACE count must be a positive integer")
				return true
			}
		}
		recs := s.tracer.Recent(n)
		w.array(len(recs))
		for _, rec := range recs {
			w.bulkString(formatSpanLine(rec))
		}
	case cmdIs(name, "COMMAND"):
		// redis-cli introspection on connect; an empty reply satisfies it.
		s.cmdCounts[opOther].Add(1)
		w.array(0)
	case cmdIs(name, "QUIT"):
		s.cmdCounts[opOther].Add(1)
		w.simple("OK")
		return false
	default:
		s.errCount.Add(1)
		w.err("ERR unknown command '" + printable(name) + "'")
	}
	return true
}

// debugFault arms the configured storage fault injector over the wire:
//
//	DEBUG FAULT <scope> <n> <mode> [stall_ms]
//	DEBUG FAULT RESET
//
// scope ∈ {any, wal, journal, slab, sst}; mode ∈ {error, short, torn,
// enospc, stall} (stall carries its duration in milliseconds); n counts
// in-scope I/Os until the fault fires (1 = the very next one). RESET
// disarms. Only live when Config.Faults is set (prismserver -chaos-debug):
// the chaos harness's hook for breaking storage under a live workload.
func (s *Server) debugFault(args [][]byte, w *writer) {
	if s.cfg.Faults == nil {
		s.errCount.Add(1)
		w.err("ERR DEBUG FAULT is disabled (start the server with fault injection to use it)")
		return
	}
	if len(args) == 1 && cmdIs(args[0], "RESET") {
		s.cfg.Faults.Reset()
		w.simple("OK")
		return
	}
	if len(args) != 3 && len(args) != 4 {
		s.argErr(w, "debug")
		return
	}
	scope, err := storage.ParseFaultScope(string(args[0]))
	if err != nil {
		s.errCount.Add(1)
		w.err("ERR " + err.Error())
		return
	}
	n := parseLen(args[1])
	if n <= 0 {
		s.errCount.Add(1)
		w.err("ERR DEBUG FAULT count must be a positive integer")
		return
	}
	mode, err := storage.ParseFaultMode(string(args[2]))
	if err != nil {
		s.errCount.Add(1)
		w.err("ERR " + err.Error())
		return
	}
	if mode == storage.FaultStall {
		if len(args) != 4 {
			s.errCount.Add(1)
			w.err("ERR DEBUG FAULT stall requires a duration in milliseconds")
			return
		}
		ms := parseLen(args[3])
		if ms <= 0 {
			s.errCount.Add(1)
			w.err("ERR DEBUG FAULT stall duration must be a positive integer")
			return
		}
		s.cfg.Faults.ArmStall(scope, int64(n), time.Duration(ms)*time.Millisecond)
		w.simple("OK")
		return
	}
	if len(args) != 3 {
		s.argErr(w, "debug")
		return
	}
	s.cfg.Faults.ArmScoped(scope, int64(n), mode)
	w.simple("OK")
}

// doGet serves one point read on the zero-allocation GetBuf path (GET and
// each MGET element).
func (s *Server) doGet(key []byte, w *writer, st *connState, kind opKind, sp *obs.Span) {
	s.cmdCounts[kind].Add(1)
	sp.SetOp("get", key)
	t0 := time.Now()
	val, tier, vlat, err := s.eng.GetBuf(key, st.val[:0])
	if err != nil {
		s.errorReply(w, err)
		return
	}
	if cap(val) > cap(st.val) {
		st.val = val[:0] // the engine grew the scratch; keep the bigger one
	}
	s.record(kind, time.Since(t0), vlat)
	sp.SetTier(tier.String())
	if tier == core.TierMiss {
		w.null()
		return
	}
	w.bulk(val)
}

// traceStages copies an engine OpTrace's write-path breakdown onto a span.
func traceStages(sp *obs.Span, tr *core.OpTrace) {
	sp.Stage(obs.StageQueueWait, tr.QueueWait)
	sp.Stage(obs.StageApply, tr.Apply)
	sp.Stage(obs.StageWALAppend, tr.WALAppend)
	sp.Stage(obs.StageFsyncWait, tr.FsyncWait)
}

// writeSpanRecord renders one SLOWLOG entry, Redis-shaped: a 4-element
// array of id, unix start time, total duration in microseconds, and the
// op detail as an array of op, key, tier, and the non-zero stage timings.
func writeSpanRecord(w *writer, rec obs.SpanRecord) {
	w.array(4)
	w.integer(rec.ID)
	w.integer(rec.When.Unix())
	w.integer(int64(rec.Total / time.Microsecond))
	w.array(4)
	w.bulkString(rec.Op)
	key := rec.Key
	if rec.Trunc {
		key += "..."
	}
	w.bulkString(key)
	w.bulkString(rec.Tier)
	w.bulkString(rec.StageSummary())
}

// formatSpanLine renders a TRACE line for one finished span.
func formatSpanLine(rec obs.SpanRecord) string {
	key := rec.Key
	if rec.Trunc {
		key += "..."
	}
	line := fmt.Sprintf("#%d %s %s key=%q total=%v", rec.ID,
		rec.When.UTC().Format("15:04:05.000"), rec.Op, key, rec.Total)
	if rec.Tier != "" {
		line += " tier=" + rec.Tier
	}
	if sum := rec.StageSummary(); sum != "" {
		line += " " + sum
	}
	return line
}

func (s *Server) argErr(w *writer, cmd string) {
	s.errCount.Add(1)
	w.err("ERR wrong number of arguments for '" + cmd + "' command")
}

// printable truncates and sanitizes client-controlled bytes for an error
// message.
func printable(b []byte) string {
	const max = 32
	if len(b) > max {
		b = b[:max]
	}
	out := make([]byte, 0, len(b))
	for _, c := range b {
		if c < 0x20 || c > 0x7e {
			c = '?'
		}
		out = append(out, c)
	}
	return string(out)
}
