package server

import (
	"bufio"
	"net"
	"time"

	"github.com/prismdb/prismdb/internal/core"
)

// flushReader is the pipelining valve: it sits between the connection and
// the parser's bufio.Reader and flushes the connection's pending replies
// whenever the parser actually needs bytes from the kernel. While a
// pipelined batch is still buffered, parse → execute → reply loops touch
// the socket zero times; the moment the inbound buffer runs dry, the
// accumulated replies go out in one write and the goroutine blocks in Read.
// One flush per inbound batch, and no deadlock when a client trickles half
// a command and waits for earlier replies.
type flushReader struct {
	nc net.Conn
	bw *bufio.Writer
}

func (f *flushReader) Read(p []byte) (int, error) {
	if f.bw.Buffered() > 0 {
		if err := f.bw.Flush(); err != nil {
			return 0, err
		}
	}
	return f.nc.Read(p)
}

// handleConn runs one connection's parse → execute → reply loop to
// completion.
func (s *Server) handleConn(nc net.Conn) {
	defer s.wg.Done()
	defer func() {
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		s.connsLive.Add(-1)
	}()

	bw := bufio.NewWriterSize(nc, s.cfg.WriteBuffer)
	br := bufio.NewReaderSize(&flushReader{nc: nc, bw: bw}, s.cfg.ReadBuffer)
	r := newReader(br)
	w := &writer{bw: bw}
	cm := newConnMetrics()
	defer func() {
		s.mu.Lock()
		for i := range cm.wall {
			s.agg.wall[i].Merge(cm.wall[i])
			s.agg.virt[i].Merge(cm.virt[i])
		}
		s.mu.Unlock()
	}()

	// The connection's scratch buffers: GETs land in st.val via the
	// engine's GetBuf zero-allocation read path and are copied straight
	// into the write buffer, and SCAN streams its pairs through st.scan;
	// both are recycled across commands, so warm reads and scans allocate
	// nothing on the server side.
	st := &connState{val: make([]byte, 0, 4096)}

	for {
		if s.closed.Load() {
			bw.Flush()
			return
		}
		args, err := r.ReadCommand()
		if err != nil {
			if perr, ok := err.(ProtocolError); ok {
				// One diagnostic, then hang up: a desynced RESP stream
				// cannot be safely resumed.
				s.logf("server: %s: %v", nc.RemoteAddr(), perr)
				s.errCount.Add(1)
				w.err("ERR " + perr.Error())
				bw.Flush()
			}
			return
		}
		if len(args) == 0 {
			continue
		}
		if !s.execute(args, w, cm, st) {
			bw.Flush()
			return
		}
	}
}

// connState holds one connection's recycled scratch buffers.
type connState struct {
	val  []byte // GetBuf value scratch
	scan []byte // SCAN's encoded key/value pairs
}

// cmdIs compares a command name case-insensitively against an upper-case
// reference without allocating.
func cmdIs(b []byte, upper string) bool {
	if len(b) != len(upper) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != upper[i] {
			return false
		}
	}
	return true
}

// execute dispatches one parsed command, writing its reply. It reports
// false when the connection should close (QUIT).
func (s *Server) execute(args [][]byte, w *writer, cm *connMetrics, st *connState) bool {
	name := args[0]
	switch {
	case cmdIs(name, "GET"):
		if len(args) != 2 {
			s.argErr(w, "get")
			return true
		}
		s.doGet(args[1], w, cm, st, opGet)
	case cmdIs(name, "SET"):
		if len(args) != 3 {
			s.argErr(w, "set")
			return true
		}
		s.cmdCounts[opSet].Add(1)
		t0 := time.Now()
		vlat, err := s.eng.Put(args[1], args[2])
		if err != nil {
			s.errorReply(w, err)
			return true
		}
		cm.record(opSet, time.Since(t0), vlat)
		w.simple("OK")
	case cmdIs(name, "DEL"):
		if len(args) < 2 {
			s.argErr(w, "del")
			return true
		}
		// Replies with the number of delete operations issued. PrismDB
		// deletes blindly (checking existence first would double the op's
		// cost), so unlike Redis the count includes keys that did not
		// exist.
		n := 0
		for _, k := range args[1:] {
			s.cmdCounts[opDel].Add(1)
			t0 := time.Now()
			vlat, err := s.eng.Delete(k)
			if err != nil {
				s.errorReply(w, err)
				return true
			}
			cm.record(opDel, time.Since(t0), vlat)
			n++
		}
		w.integer(int64(n))
	case cmdIs(name, "MGET"):
		if len(args) < 2 {
			s.argErr(w, "mget")
			return true
		}
		w.array(len(args) - 1)
		for _, k := range args[1:] {
			s.doGet(k, w, cm, st, opMGet)
		}
	case cmdIs(name, "SCAN"):
		if len(args) != 3 {
			s.argErr(w, "scan")
			return true
		}
		n := parseLen(args[2])
		if n <= 0 {
			s.errCount.Add(1)
			w.err("ERR SCAN count must be a positive integer")
			return true
		}
		if n > s.cfg.MaxScanLen {
			n = s.cfg.MaxScanLen
		}
		// Stream the engine's iterator instead of materializing a []KV:
		// the reply header needs the pair count up front, so encoded pairs
		// accumulate in the connection's recycled scan scratch — no
		// per-entry allocations — and go out in one write after the count
		// is known.
		s.cmdCounts[opScan].Add(1)
		t0 := time.Now()
		it := s.eng.NewIterator(args[1], n)
		pairs := 0
		buf := st.scan[:0]
		for it.Valid() && pairs < n {
			buf = appendBulk(buf, it.Key())
			buf = appendBulk(buf, it.Value())
			pairs++
			it.Next()
		}
		err := it.Close()
		st.scan = buf
		if err != nil {
			s.errorReply(w, err)
			return true
		}
		cm.record(opScan, time.Since(t0), it.Latency())
		w.array(2 * pairs)
		w.bw.Write(buf)
	case cmdIs(name, "PING"):
		s.cmdCounts[opOther].Add(1)
		if len(args) > 1 {
			w.bulk(args[1])
		} else {
			w.simple("PONG")
		}
	case cmdIs(name, "INFO"):
		s.cmdCounts[opOther].Add(1)
		section := ""
		if len(args) > 1 {
			section = string(args[1])
		}
		w.bulkString(s.info(section))
	case cmdIs(name, "COMMAND"):
		// redis-cli introspection on connect; an empty reply satisfies it.
		s.cmdCounts[opOther].Add(1)
		w.array(0)
	case cmdIs(name, "QUIT"):
		s.cmdCounts[opOther].Add(1)
		w.simple("OK")
		return false
	default:
		s.errCount.Add(1)
		w.err("ERR unknown command '" + printable(name) + "'")
	}
	return true
}

// doGet serves one point read on the zero-allocation GetBuf path (GET and
// each MGET element).
func (s *Server) doGet(key []byte, w *writer, cm *connMetrics, st *connState, kind opKind) {
	s.cmdCounts[kind].Add(1)
	t0 := time.Now()
	val, tier, vlat, err := s.eng.GetBuf(key, st.val[:0])
	if err != nil {
		s.errorReply(w, err)
		return
	}
	if cap(val) > cap(st.val) {
		st.val = val[:0] // the engine grew the scratch; keep the bigger one
	}
	cm.record(kind, time.Since(t0), vlat)
	if tier == core.TierMiss {
		w.null()
		return
	}
	w.bulk(val)
}

func (s *Server) argErr(w *writer, cmd string) {
	s.errCount.Add(1)
	w.err("ERR wrong number of arguments for '" + cmd + "' command")
}

// printable truncates and sanitizes client-controlled bytes for an error
// message.
func printable(b []byte) string {
	const max = 32
	if len(b) > max {
		b = b[:max]
	}
	out := make([]byte, 0, len(b))
	for _, c := range b {
		if c < 0x20 || c > 0x7e {
			c = '?'
		}
		out = append(out, c)
	}
	return string(out)
}
