package server

import (
	"bufio"
	"net"
	"time"

	"github.com/prismdb/prismdb/internal/core"
)

// flushReader is the pipelining valve: it sits between the connection and
// the parser's bufio.Reader and flushes the connection's pending replies
// whenever the parser actually needs bytes from the kernel. While a
// pipelined batch is still buffered, parse → execute → reply loops touch
// the socket zero times; the moment the inbound buffer runs dry, the
// accumulated replies go out in one write and the goroutine blocks in Read.
// One flush per inbound batch, and no deadlock when a client trickles half
// a command and waits for earlier replies.
//
// beforeRead runs first: it flushes the connection's pending engine SET
// batch, so the batched writes' replies land in bw before bw itself is
// flushed. The same valve that bounds reply latency therefore also bounds
// write-batch latency — a client that stops pipelining gets its OKs (and
// its writes applied) before the server blocks on the socket, never after.
type flushReader struct {
	nc         net.Conn
	bw         *bufio.Writer
	beforeRead func() // flushes the pending SET batch; set by handleConn
}

func (f *flushReader) Read(p []byte) (int, error) {
	if f.beforeRead != nil {
		f.beforeRead()
	}
	if f.bw.Buffered() > 0 {
		if err := f.bw.Flush(); err != nil {
			return 0, err
		}
	}
	return f.nc.Read(p)
}

// handleConn runs one connection's parse → execute → reply loop to
// completion.
func (s *Server) handleConn(nc net.Conn) {
	defer s.wg.Done()
	defer func() {
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		s.connsLive.Add(-1)
	}()

	bw := bufio.NewWriterSize(nc, s.cfg.WriteBuffer)
	fr := &flushReader{nc: nc, bw: bw}
	br := bufio.NewReaderSize(fr, s.cfg.ReadBuffer)
	r := newReader(br)
	w := &writer{bw: bw}
	cm := newConnMetrics()
	defer func() {
		s.mu.Lock()
		for i := range cm.wall {
			s.agg.wall[i].Merge(cm.wall[i])
			s.agg.virt[i].Merge(cm.virt[i])
		}
		s.mu.Unlock()
	}()

	// The connection's scratch buffers: GETs land in st.val via the
	// engine's GetBuf zero-allocation read path and are copied straight
	// into the write buffer, and SCAN streams its pairs through st.scan;
	// both are recycled across commands, so warm reads and scans allocate
	// nothing on the server side.
	st := &connState{val: make([]byte, 0, 4096)}
	fr.beforeRead = func() { s.flushSetBatch(w, cm, st) }

	for {
		if s.closed.Load() {
			s.flushSetBatch(w, cm, st)
			bw.Flush()
			return
		}
		args, err := r.ReadCommand()
		if err != nil {
			// A well-formed SET batched just before a protocol error (or
			// EOF mid-stream) still executes and gets its reply: the batch
			// flush precedes the diagnostic, mirroring the unbatched path's
			// ordering. Usually a no-op — beforeRead already flushed at the
			// last socket read.
			s.flushSetBatch(w, cm, st)
			if perr, ok := err.(ProtocolError); ok {
				// One diagnostic, then hang up: a desynced RESP stream
				// cannot be safely resumed.
				s.logf("server: %s: %v", nc.RemoteAddr(), perr)
				s.errCount.Add(1)
				w.err("ERR " + perr.Error())
			}
			bw.Flush()
			return
		}
		if len(args) == 0 {
			continue
		}
		// The pipelined-write fast path: a SET that arrived with more
		// commands behind it (or while a batch is already open) is
		// deferred into the connection's batch instead of executing — the
		// whole run reaches the engine as ONE PutBatch, so N pipelined
		// SETs cost one owner-queue handoff per partition, one WAL group
		// append, and one view republication. A lone SET on an idle
		// connection executes immediately: batching it would only add
		// latency with nothing to coalesce.
		if len(args) == 3 && cmdIs(args[0], "SET") && (len(st.bpairs) > 0 || br.Buffered() > 0) {
			st.addSet(args[1], args[2])
			if len(st.bpairs) >= setBatchMax {
				s.flushSetBatch(w, cm, st)
			}
			continue
		}
		// Any other command first forces the pending batch out, preserving
		// per-connection order (a GET after a batched SET sees its write).
		s.flushSetBatch(w, cm, st)
		if !s.execute(args, w, cm, st) {
			bw.Flush()
			return
		}
	}
}

// connState holds one connection's recycled scratch buffers.
type connState struct {
	val  []byte // GetBuf value scratch
	scan []byte // SCAN's encoded key/value pairs

	// The pipelined SET batch. The parser's argument arena is recycled by
	// the next ReadCommand, so a deferred SET's key and value are copied
	// into barena (one growable arena, recycled per flush) and bpairs
	// holds the slices handed to Engine.PutBatch. bpairs doubles as MSET's
	// pair scratch — it is always empty when execute runs.
	bpairs []core.KV
	barena []byte
}

// setBatchMax bounds the deferred SET batch; it matches the engine's
// per-partition owner batch cap, past which a longer server-side batch
// would only split downstream anyway.
const setBatchMax = 128

// addSet copies one SET's key and value out of the parse arena and into
// the connection's batch. Growing barena mid-batch is fine: earlier pairs
// keep the old backing array alive, and appends never write inside an
// existing pair's bounds.
func (st *connState) addSet(key, value []byte) {
	off := len(st.barena)
	st.barena = append(st.barena, key...)
	k := st.barena[off:len(st.barena):len(st.barena)]
	off = len(st.barena)
	st.barena = append(st.barena, value...)
	v := st.barena[off:len(st.barena):len(st.barena)]
	st.bpairs = append(st.bpairs, core.KV{Key: k, Value: v})
}

// flushSetBatch hands the connection's deferred SETs to the engine as one
// PutBatch and writes their replies. No-op when the batch is empty. The
// batch's wall and virtual time are split evenly across its ops for the
// per-op histograms — the composition the engine maintains internally.
func (s *Server) flushSetBatch(w *writer, cm *connMetrics, st *connState) {
	n := len(st.bpairs)
	if n == 0 {
		return
	}
	s.cmdCounts[opSet].Add(int64(n))
	t0 := time.Now()
	vlat, err := s.eng.PutBatch(st.bpairs)
	st.bpairs = st.bpairs[:0]
	st.barena = st.barena[:0]
	if err != nil {
		// All-or-nothing reporting: PutBatch surfaces the first failure,
		// and a failed batch (in practice: the engine closed) errors every
		// op in it rather than guessing which prefix landed.
		for i := 0; i < n; i++ {
			s.errorReply(w, err)
		}
		return
	}
	wall, per := time.Since(t0), vlat/time.Duration(n)
	wper := wall / time.Duration(n)
	for i := 0; i < n; i++ {
		cm.record(opSet, wper, per)
		w.simple("OK")
	}
}

// cmdIs compares a command name case-insensitively against an upper-case
// reference without allocating.
func cmdIs(b []byte, upper string) bool {
	if len(b) != len(upper) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != upper[i] {
			return false
		}
	}
	return true
}

// execute dispatches one parsed command, writing its reply. It reports
// false when the connection should close (QUIT).
func (s *Server) execute(args [][]byte, w *writer, cm *connMetrics, st *connState) bool {
	name := args[0]
	switch {
	case cmdIs(name, "GET"):
		if len(args) != 2 {
			s.argErr(w, "get")
			return true
		}
		s.doGet(args[1], w, cm, st, opGet)
	case cmdIs(name, "SET"):
		if len(args) != 3 {
			s.argErr(w, "set")
			return true
		}
		s.cmdCounts[opSet].Add(1)
		t0 := time.Now()
		vlat, err := s.eng.Put(args[1], args[2])
		if err != nil {
			s.errorReply(w, err)
			return true
		}
		cm.record(opSet, time.Since(t0), vlat)
		w.simple("OK")
	case cmdIs(name, "DEL"):
		if len(args) < 2 {
			s.argErr(w, "del")
			return true
		}
		// Replies with the number of delete operations issued. PrismDB
		// deletes blindly (checking existence first would double the op's
		// cost), so unlike Redis the count includes keys that did not
		// exist.
		n := 0
		for _, k := range args[1:] {
			s.cmdCounts[opDel].Add(1)
			t0 := time.Now()
			vlat, err := s.eng.Delete(k)
			if err != nil {
				s.errorReply(w, err)
				return true
			}
			cm.record(opDel, time.Since(t0), vlat)
			n++
		}
		w.integer(int64(n))
	case cmdIs(name, "MSET"):
		if len(args) < 3 || len(args)%2 != 1 {
			s.argErr(w, "mset")
			return true
		}
		// The pairs may alias the parse arena: PutBatch is synchronous and
		// the engine copies what it keeps before acknowledging, exactly as
		// with Put. bpairs is free scratch here — handleConn flushed the
		// deferred batch before dispatching.
		pairs := st.bpairs[:0]
		for i := 1; i+1 < len(args); i += 2 {
			pairs = append(pairs, core.KV{Key: args[i], Value: args[i+1]})
		}
		// Each pair counts as a set (prismload's -check compares element
		// counts); cmd_mset counts the wire command itself.
		s.cmdCounts[opMSet].Add(1)
		s.cmdCounts[opSet].Add(int64(len(pairs)))
		t0 := time.Now()
		vlat, err := s.eng.PutBatch(pairs)
		st.bpairs = pairs[:0]
		if err != nil {
			s.errorReply(w, err)
			return true
		}
		cm.record(opMSet, time.Since(t0), vlat)
		w.simple("OK")
	case cmdIs(name, "MGET"):
		if len(args) < 2 {
			s.argErr(w, "mget")
			return true
		}
		w.array(len(args) - 1)
		for _, k := range args[1:] {
			s.doGet(k, w, cm, st, opMGet)
		}
	case cmdIs(name, "SCAN"):
		if len(args) != 3 {
			s.argErr(w, "scan")
			return true
		}
		n := parseLen(args[2])
		if n <= 0 {
			s.errCount.Add(1)
			w.err("ERR SCAN count must be a positive integer")
			return true
		}
		if n > s.cfg.MaxScanLen {
			n = s.cfg.MaxScanLen
		}
		// Stream the engine's iterator instead of materializing a []KV:
		// the reply header needs the pair count up front, so encoded pairs
		// accumulate in the connection's recycled scan scratch — no
		// per-entry allocations — and go out in one write after the count
		// is known.
		s.cmdCounts[opScan].Add(1)
		t0 := time.Now()
		it := s.eng.NewIterator(args[1], n)
		pairs := 0
		buf := st.scan[:0]
		for it.Valid() && pairs < n {
			buf = appendBulk(buf, it.Key())
			buf = appendBulk(buf, it.Value())
			pairs++
			it.Next()
		}
		err := it.Close()
		st.scan = buf
		if err != nil {
			s.errorReply(w, err)
			return true
		}
		cm.record(opScan, time.Since(t0), it.Latency())
		w.array(2 * pairs)
		w.bw.Write(buf)
	case cmdIs(name, "PING"):
		s.cmdCounts[opOther].Add(1)
		if len(args) > 1 {
			w.bulk(args[1])
		} else {
			w.simple("PONG")
		}
	case cmdIs(name, "INFO"):
		s.cmdCounts[opOther].Add(1)
		section := ""
		if len(args) > 1 {
			section = string(args[1])
		}
		w.bulkString(s.info(section))
	case cmdIs(name, "COMMAND"):
		// redis-cli introspection on connect; an empty reply satisfies it.
		s.cmdCounts[opOther].Add(1)
		w.array(0)
	case cmdIs(name, "QUIT"):
		s.cmdCounts[opOther].Add(1)
		w.simple("OK")
		return false
	default:
		s.errCount.Add(1)
		w.err("ERR unknown command '" + printable(name) + "'")
	}
	return true
}

// doGet serves one point read on the zero-allocation GetBuf path (GET and
// each MGET element).
func (s *Server) doGet(key []byte, w *writer, cm *connMetrics, st *connState, kind opKind) {
	s.cmdCounts[kind].Add(1)
	t0 := time.Now()
	val, tier, vlat, err := s.eng.GetBuf(key, st.val[:0])
	if err != nil {
		s.errorReply(w, err)
		return
	}
	if cap(val) > cap(st.val) {
		st.val = val[:0] // the engine grew the scratch; keep the bigger one
	}
	cm.record(kind, time.Since(t0), vlat)
	if tier == core.TierMiss {
		w.null()
		return
	}
	w.bulk(val)
}

func (s *Server) argErr(w *writer, cmd string) {
	s.errCount.Add(1)
	w.err("ERR wrong number of arguments for '" + cmd + "' command")
}

// printable truncates and sanitizes client-controlled bytes for an error
// message.
func printable(b []byte) string {
	const max = 32
	if len(b) > max {
		b = b[:max]
	}
	out := make([]byte, 0, len(b))
	for _, c := range b {
		if c < 0x20 || c > 0x7e {
			c = '?'
		}
		out = append(out, c)
	}
	return string(out)
}
