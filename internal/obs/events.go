package obs

import (
	"strconv"
	"strings"
	"sync"
	"time"
)

// EventLog is a bounded ring of structured events, each rendered as one JSON
// line at emit time: `{"ts":"...","type":"checkpoint","segments":3}`. It
// records the rare, discrete things operators grep for — compaction rounds,
// checkpoints, WAL rotations, recovery outcomes, write stalls — and is
// queryable via the server's INFO events section and the HTTP /events
// endpoint. Emission takes a short mutex and allocates; every emitter is off
// the per-op hot path. All methods are nil-receiver-safe.
type EventLog struct {
	mu    sync.Mutex
	lines []string // ring, capacity fixed at construction
	pos   int      // next write slot
	n     int      // live entries (≤ cap)
	total int64
}

// NewEventLog returns a ring holding the most recent capacity events.
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 256
	}
	return &EventLog{lines: make([]string, capacity)}
}

// Emit records one event. kv alternates field names and values; supported
// value kinds are string, bool, int, int64, uint64, float64, and
// time.Duration (rendered as fractional milliseconds under key suffix
// discretion of the caller). A trailing odd key is ignored.
func (l *EventLog) Emit(typ string, kv ...any) {
	if l == nil {
		return
	}
	var b strings.Builder
	b.WriteString(`{"ts":"`)
	b.WriteString(time.Now().UTC().Format(time.RFC3339Nano))
	b.WriteString(`","type":`)
	b.WriteString(strconv.Quote(typ))
	for i := 0; i+1 < len(kv); i += 2 {
		k, ok := kv[i].(string)
		if !ok {
			continue
		}
		b.WriteByte(',')
		b.WriteString(strconv.Quote(k))
		b.WriteByte(':')
		appendJSONValue(&b, kv[i+1])
	}
	b.WriteByte('}')
	line := b.String()

	l.mu.Lock()
	l.lines[l.pos] = line
	l.pos = (l.pos + 1) % len(l.lines)
	if l.n < len(l.lines) {
		l.n++
	}
	l.total++
	l.mu.Unlock()
}

func appendJSONValue(b *strings.Builder, v any) {
	switch x := v.(type) {
	case string:
		b.WriteString(strconv.Quote(x))
	case bool:
		b.WriteString(strconv.FormatBool(x))
	case int:
		b.WriteString(strconv.FormatInt(int64(x), 10))
	case int64:
		b.WriteString(strconv.FormatInt(x, 10))
	case uint64:
		b.WriteString(strconv.FormatUint(x, 10))
	case float64:
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	case time.Duration:
		// Fractional milliseconds: readable at both µs and s scales.
		b.WriteString(strconv.FormatFloat(float64(x)/1e6, 'f', 3, 64))
	case error:
		b.WriteString(strconv.Quote(x.Error()))
	default:
		b.WriteString(`"?"`)
	}
}

// Tail returns up to n most recent events, oldest first.
func (l *EventLog) Tail(n int) []string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > l.n {
		n = l.n
	}
	out := make([]string, 0, n)
	start := l.pos - n
	if start < 0 {
		start += len(l.lines)
	}
	for i := 0; i < n; i++ {
		out = append(out, l.lines[(start+i)%len(l.lines)])
	}
	return out
}

// Total returns the number of events ever emitted (including evicted ones).
func (l *EventLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
