package obs

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/prismdb/prismdb/internal/metrics"
)

// The lock-free histogram must agree with the plain metrics.Histogram it
// mirrors: same buckets, same count/sum/min/max, same quantiles.
func TestHistogramMatchesMetrics(t *testing.T) {
	h := NewHistogram("h", "", UnitSeconds)
	ref := metrics.NewHistogram()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		v := time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
		h.Record(v)
		ref.Record(v)
	}
	snap := h.Snapshot()
	if snap.Count() != ref.Count() {
		t.Fatalf("count: got %d want %d", snap.Count(), ref.Count())
	}
	if snap.Sum() != ref.Sum() {
		t.Fatalf("sum: got %d want %d", snap.Sum(), ref.Sum())
	}
	if snap.Min() != ref.Min() || snap.Max() != ref.Max() {
		t.Fatalf("min/max: got %v/%v want %v/%v", snap.Min(), snap.Max(), ref.Min(), ref.Max())
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if snap.Quantile(q) != ref.Quantile(q) {
			t.Fatalf("q%.2f: got %v want %v", q, snap.Quantile(q), ref.Quantile(q))
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("h", "", UnitCount)
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int63n(1 << 20))
			}
		}(int64(g))
	}
	done := make(chan struct{})
	go func() { // concurrent snapshots must not race or corrupt
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = h.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count: got %d want %d", got, goroutines*per)
	}
	snap := h.Snapshot()
	if snap.Count() != goroutines*per {
		t.Fatalf("snapshot count: got %d want %d", snap.Count(), goroutines*per)
	}
}

// Hot-path recording must be allocation-free.
func TestRecordZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", UnitSeconds)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(7)
		g.Add(-1)
		h.Record(123 * time.Microsecond)
		h.Observe(17)
	}); n != 0 {
		t.Fatalf("recording allocates: %v allocs/op", n)
	}
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() { nilH.Record(1) }); n != 0 {
		t.Fatalf("nil histogram record allocates: %v allocs/op", n)
	}
}

func TestRegistryGather(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(`ops_total{op="get"}`, "ops")
	g := r.Gauge("depth", "queue depth")
	h := r.Histogram("lat_seconds", "latency", UnitSeconds)
	r.Collect(func(out *Gathered) {
		out.Counter("collected_total", "", 5)
		out.Gauge("ratio", "", 0.25)
	})
	c.Add(3)
	g.Set(9)
	h.Record(time.Millisecond)

	snap := r.Gather()
	if p, ok := snap.Find(`ops_total{op="get"}`); !ok || p.Value != 3 || p.IsGauge {
		t.Fatalf("counter: %+v ok=%v", p, ok)
	}
	if p, ok := snap.Find("depth"); !ok || p.Value != 9 || !p.IsGauge {
		t.Fatalf("gauge: %+v ok=%v", p, ok)
	}
	if p, ok := snap.Find("collected_total"); !ok || p.Value != 5 {
		t.Fatalf("collected counter: %+v ok=%v", p, ok)
	}
	if p, ok := snap.Find("ratio"); !ok || p.Value != 0.25 {
		t.Fatalf("collected gauge: %+v ok=%v", p, ok)
	}
	if hh := snap.FindHist("lat_seconds"); hh == nil || hh.Count() != 1 {
		t.Fatalf("hist: %v", hh)
	}
	// Sorted by name.
	for i := 1; i < len(snap.Points); i++ {
		if snap.Points[i-1].Name > snap.Points[i].Name {
			t.Fatalf("points not sorted: %q > %q", snap.Points[i-1].Name, snap.Points[i].Name)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	r.Counter("dup", "")
}

func TestNilInstrumentsSafe(t *testing.T) {
	var h *Histogram
	h.Record(time.Second)
	h.Observe(1)
	if h.Count() != 0 || h.Snapshot().Count() != 0 {
		t.Fatal("nil histogram should be empty")
	}
	var l *EventLog
	l.Emit("x", "k", 1)
	if l.Tail(5) != nil || l.Total() != 0 {
		t.Fatal("nil event log should be empty")
	}
	var tr *Tracer
	if tr.Sample() != nil || tr.SlowLen() != 0 || tr.Slow(1) != nil || tr.Recent(1) != nil {
		t.Fatal("nil tracer should be inert")
	}
	tr.Finish(nil)
	tr.Drop(nil)
	tr.SlowReset()
	var sp *Span
	sp.Stage(StageParse, time.Second)
	sp.SetOp("get", []byte("k"))
	sp.SetTier("nvm")
}
