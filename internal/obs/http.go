package obs

import (
	"io"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in Prometheus text exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteProm(w, r.Gather())
	})
}

// NewMux returns the telemetry HTTP mux: /metrics (Prometheus text format),
// /events (the structured event log as JSON lines, newest last; ?n=K limits
// the tail), and the standard /debug/pprof/* profiling endpoints. events may
// be nil.
func NewMux(r *Registry, events *EventLog) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		n := 0
		if s := req.URL.Query().Get("n"); s != "" {
			for _, c := range []byte(s) {
				if c < '0' || c > '9' {
					n = 0
					break
				}
				n = n*10 + int(c-'0')
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, line := range events.Tail(n) {
			_, _ = io.WriteString(w, line)
			_, _ = io.WriteString(w, "\n")
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
