package obs

import (
	"io"
	"strconv"
	"strings"
)

// WriteProm renders a gathered snapshot in the Prometheus text exposition
// format (version 0.0.4). Registered names may carry a fixed label set
// inline (`prism_cmds_total{op="get"}`); series sharing a family (the name
// with labels stripped) get one # HELP/# TYPE header, which sorted gathering
// keeps adjacent. Histograms emit cumulative `le` buckets for the non-empty
// log buckets only (the full 1024-bucket geometry would bloat every scrape),
// plus the conventional +Inf, _sum, and _count series; UnitSeconds
// histograms convert nanosecond observations to base-unit seconds.
func WriteProm(w io.Writer, g *Gathered) error {
	var b strings.Builder
	seen := map[string]bool{}
	header := func(name, help, typ string) {
		fam := familyOf(name)
		if seen[fam] {
			return
		}
		seen[fam] = true
		if help != "" {
			b.WriteString("# HELP ")
			b.WriteString(fam)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(fam)
		b.WriteByte(' ')
		b.WriteString(typ)
		b.WriteByte('\n')
	}

	for _, p := range g.Points {
		typ := "counter"
		if p.IsGauge {
			typ = "gauge"
		}
		header(p.Name, p.Help, typ)
		b.WriteString(p.Name)
		b.WriteByte(' ')
		b.WriteString(formatFloat(p.Value))
		b.WriteByte('\n')
	}

	for _, hp := range g.Hists {
		header(hp.Name, hp.Help, "histogram")
		count := hp.Hist.Count()
		sum := float64(hp.Hist.Sum())
		if hp.Unit == UnitSeconds {
			sum /= 1e9
		}
		for _, bc := range hp.Hist.CumulativeBuckets() {
			bound := float64(bc.Bound)
			if hp.Unit == UnitSeconds {
				bound /= 1e9
			}
			b.WriteString(withLabel(hp.Name, "_bucket", `le="`+formatFloat(bound)+`"`))
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(bc.Cum, 10))
			b.WriteByte('\n')
		}
		b.WriteString(withLabel(hp.Name, "_bucket", `le="+Inf"`))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(count, 10))
		b.WriteByte('\n')
		b.WriteString(suffixed(hp.Name, "_sum"))
		b.WriteByte(' ')
		b.WriteString(formatFloat(sum))
		b.WriteByte('\n')
		b.WriteString(suffixed(hp.Name, "_count"))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(count, 10))
		b.WriteByte('\n')
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// familyOf strips an inline label set: `name{...}` → `name`.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// suffixed appends a family suffix before any inline label set:
// `name{op="get"}` + `_sum` → `name_sum{op="get"}`.
func suffixed(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// withLabel is suffixed plus one more label spliced into the label set.
func withLabel(name, suffix, label string) string {
	s := suffixed(name, suffix)
	if strings.HasSuffix(s, "}") {
		return s[:len(s)-1] + "," + label + "}"
	}
	return s + "{" + label + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
