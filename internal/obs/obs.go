// Package obs is the telemetry subsystem: a lock-free metrics registry
// (counters, gauges, log-bucketed histograms recorded via cache-line-padded
// atomic shards), a Prometheus text-format exposition endpoint with pprof,
// a sampled per-op span tracer feeding a SLOWLOG ring, and a bounded
// structured event log.
//
// Everything on a recording path is allocation-free and lock-free:
// Counter.Inc/Add, Gauge.Set/Add, and Histogram.Record/Observe are a handful
// of atomic operations on padded cache lines, safe to call from the engine's
// GET/SET hot paths without disturbing the 0-allocs/op guarantees. Reading —
// Registry.Gather, Histogram.Snapshot, EventLog.Tail — is the slow path and
// may allocate freely.
//
// The package depends only on internal/metrics and the standard library, so
// storage, core, and server can all import it without cycles.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/prismdb/prismdb/internal/metrics"
)

// pad is the cache-line padding unit. 128 covers the spatial-prefetcher
// pair-of-lines granularity on current x86 (same constant as the engine's
// sharded read counters).
const pad = 128

// Counter is a monotonically increasing counter on its own cache line(s),
// so unrelated counters registered next to each other never false-share.
type Counter struct {
	_ [pad - 8]byte
	n atomic.Int64
	_ [pad - 8]byte

	name, help string
}

// Inc adds 1.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n (n must be ≥ 0 for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is an instantaneous value (queue depth, live connections).
type Gauge struct {
	_ [pad - 8]byte
	n atomic.Int64
	_ [pad - 8]byte

	name, help string
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.n.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.n.Load() }

// Unit declares how a Histogram's recorded values should be rendered.
type Unit int

const (
	// UnitSeconds marks values recorded in nanoseconds (time.Duration);
	// the Prometheus exposition divides bounds and sums by 1e9 per the
	// base-unit convention.
	UnitSeconds Unit = iota
	// UnitCount marks dimensionless values (batch sizes, byte counts),
	// rendered raw.
	UnitCount
)

// Registry holds named instruments plus snapshot collectors. Registration
// takes a mutex (startup only); recording into registered instruments is
// lock-free; Gather takes the mutex briefly to copy the instrument lists.
type Registry struct {
	mu         sync.Mutex
	names      map[string]bool
	counters   []*Counter
	gauges     []*Gauge
	hists      []*Histogram
	collectors []func(*Gathered)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

func (r *Registry) claim(name string) {
	if r.names[name] {
		panic("obs: duplicate metric name " + name)
	}
	r.names[name] = true
}

// Counter registers and returns a counter. Names follow the Prometheus data
// model and may carry a fixed label set inline: `prism_ops_total{op="get"}`.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	r.counters = append(r.counters, c)
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	r.gauges = append(r.gauges, g)
	return g
}

// Histogram registers and returns a lock-free histogram.
func (r *Registry) Histogram(name, help string, unit Unit) *Histogram {
	h := newHistogram(name, help, unit)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	r.hists = append(r.hists, h)
	return h
}

// Collect registers a snapshot collector: a function invoked once per Gather
// that contributes point-in-time series (typically read off an existing
// stats struct, so subsystems keep ONE source of truth and both /metrics and
// INFO render from the same sweep).
func (r *Registry) Collect(fn func(*Gathered)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Point is one gathered counter or gauge sample.
type Point struct {
	Name    string
	Help    string
	Value   float64
	IsGauge bool
}

// HistPoint is one gathered histogram: a merged snapshot plus unit.
type HistPoint struct {
	Name string
	Help string
	Unit Unit
	Hist *metrics.Histogram
}

// Gathered is a point-in-time snapshot of every registered series, sorted by
// name (deterministic exposition and INFO rendering).
type Gathered struct {
	Points []Point
	Hists  []HistPoint
}

// Counter appends a counter sample (collector helper).
func (g *Gathered) Counter(name, help string, v int64) {
	g.Points = append(g.Points, Point{Name: name, Help: help, Value: float64(v)})
}

// Gauge appends a gauge sample (collector helper).
func (g *Gathered) Gauge(name, help string, v float64) {
	g.Points = append(g.Points, Point{Name: name, Help: help, Value: v, IsGauge: true})
}

// Histogram appends a histogram sample (collector helper).
func (g *Gathered) Histogram(name, help string, unit Unit, h *metrics.Histogram) {
	g.Hists = append(g.Hists, HistPoint{Name: name, Help: help, Unit: unit, Hist: h})
}

// Find returns the gathered point named name, or false.
func (g *Gathered) Find(name string) (Point, bool) {
	for _, p := range g.Points {
		if p.Name == name {
			return p, true
		}
	}
	return Point{}, false
}

// FindHist returns the gathered histogram named name, or nil.
func (g *Gathered) FindHist(name string) *metrics.Histogram {
	for _, h := range g.Hists {
		if h.Name == name {
			return h.Hist
		}
	}
	return nil
}

// Gather snapshots every instrument and runs the collectors.
func (r *Registry) Gather() *Gathered {
	r.mu.Lock()
	counters := append([]*Counter(nil), r.counters...)
	gauges := append([]*Gauge(nil), r.gauges...)
	hists := append([]*Histogram(nil), r.hists...)
	collectors := append(make([]func(*Gathered), 0, len(r.collectors)), r.collectors...)
	r.mu.Unlock()

	g := &Gathered{}
	for _, c := range counters {
		g.Counter(c.name, c.help, c.Value())
	}
	for _, ga := range gauges {
		g.Gauge(ga.name, ga.help, float64(ga.Value()))
	}
	for _, h := range hists {
		g.Histogram(h.name, h.help, h.unit, h.Snapshot())
	}
	for _, fn := range collectors {
		fn(g)
	}
	sort.SliceStable(g.Points, func(i, j int) bool { return g.Points[i].Name < g.Points[j].Name })
	sort.SliceStable(g.Hists, func(i, j int) bool { return g.Hists[i].Name < g.Hists[j].Name })
	return g
}

// Quantile is a convenience for collectors: h.Quantile(q) with nil-safety.
func Quantile(h *metrics.Histogram, q float64) time.Duration {
	if h == nil {
		return 0
	}
	return h.Quantile(q)
}
