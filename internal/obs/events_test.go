package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestEventLogJSONAndBounds(t *testing.T) {
	l := NewEventLog(4)
	l.Emit("checkpoint", "segments", 3, "bytes", int64(1<<20), "clean", true,
		"took_ms", 1500*time.Microsecond, "dir", `a"b\c`, "err", errors.New("boom"),
		"ratio", 0.5, "lsn", uint64(42))
	lines := l.Tail(0)
	if len(lines) != 1 {
		t.Fatalf("lines: %v", lines)
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("invalid JSON %q: %v", lines[0], err)
	}
	if ev["type"] != "checkpoint" || ev["segments"] != float64(3) || ev["clean"] != true {
		t.Fatalf("event: %v", ev)
	}
	if ev["took_ms"] != 1.5 || ev["dir"] != `a"b\c` || ev["err"] != "boom" {
		t.Fatalf("event: %v", ev)
	}
	if _, err := time.Parse(time.RFC3339Nano, ev["ts"].(string)); err != nil {
		t.Fatalf("ts: %v", err)
	}

	for i := 0; i < 10; i++ {
		l.Emit("fill", "i", i)
	}
	if l.Total() != 11 {
		t.Fatalf("total = %d", l.Total())
	}
	lines = l.Tail(0)
	if len(lines) != 4 { // bounded by capacity, oldest evicted
		t.Fatalf("tail: %d lines", len(lines))
	}
	for i, want := range []int{6, 7, 8, 9} {
		var ev map[string]any
		if err := json.Unmarshal([]byte(lines[i]), &ev); err != nil {
			t.Fatal(err)
		}
		if ev["i"] != float64(want) {
			t.Fatalf("tail[%d] = %v, want i=%d", i, ev, want)
		}
	}
	if got := l.Tail(2); len(got) != 2 {
		t.Fatalf("Tail(2): %v", got)
	} else if fmt.Sprint(got[1]) != lines[3] {
		t.Fatalf("Tail(2) newest = %v, want %v", got[1], lines[3])
	}
}
