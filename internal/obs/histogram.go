package obs

import (
	"math"
	"sync/atomic"
	"time"

	"github.com/prismdb/prismdb/internal/metrics"
)

// histShards spreads a histogram's count/sum/min/max across cache lines so
// concurrent recorders from many goroutines don't serialize on one line.
// Power of two; the shard is picked from the observation's bucket index, so
// ops with different magnitudes land on different lines for free and the
// recording path needs no per-goroutine state.
const histShards = 4

type histShard struct {
	count atomic.Int64
	sum   atomic.Int64
	min   atomic.Int64
	max   atomic.Int64
	_     [pad - 4*8]byte
}

// Histogram is a lock-free log-bucketed histogram with the same bucket
// geometry as internal/metrics.Histogram (~4% relative error): Observe is a
// bucket increment plus a sharded count/sum update and two bounded CAS
// loops for min/max — no locks, no allocations. Snapshot folds the atomic
// state into a plain metrics.Histogram for quantile math. All methods are
// nil-receiver-safe so instrument plumbing can stay optional.
type Histogram struct {
	buckets []atomic.Int64 // metrics.NumBuckets entries; naturally sharded by value
	shards  []histShard
	name    string
	help    string
	unit    Unit
}

func newHistogram(name, help string, unit Unit) *Histogram {
	h := &Histogram{
		buckets: make([]atomic.Int64, metrics.NumBuckets),
		shards:  make([]histShard, histShards),
		name:    name,
		help:    help,
		unit:    unit,
	}
	for i := range h.shards {
		h.shards[i].min.Store(math.MaxInt64)
	}
	return h
}

// NewHistogram returns an unregistered lock-free histogram — for subsystems
// that record before a registry exists (the WAL flusher) and are attached to
// a registry by their owner later via Registry.Attach.
func NewHistogram(name, help string, unit Unit) *Histogram {
	return newHistogram(name, help, unit)
}

// Attach registers an already-constructed histogram (see NewHistogram).
func (r *Registry) Attach(h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(h.name)
	r.hists = append(r.hists, h)
}

// Observe records one raw value (nanoseconds for UnitSeconds histograms).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	idx := metrics.BucketIndex(v)
	h.buckets[idx].Add(1)
	sh := &h.shards[idx&(histShards-1)]
	sh.count.Add(1)
	sh.sum.Add(v)
	for {
		m := sh.min.Load()
		if v >= m || sh.min.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := sh.max.Load()
		if v <= m || sh.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Record records one duration observation.
func (h *Histogram) Record(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.shards {
		n += h.shards[i].count.Load()
	}
	return n
}

// Snapshot folds the atomic state into a metrics.Histogram. Concurrent
// recorders may land between the bucket and shard reads, so the snapshot is
// consistent only to within in-flight operations — fine for monitoring.
func (h *Histogram) Snapshot() *metrics.Histogram {
	if h == nil {
		return metrics.NewHistogram()
	}
	counts := make([]int64, metrics.NumBuckets)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
	}
	var sum int64
	min, max := int64(math.MaxInt64), int64(0)
	for i := range h.shards {
		sh := &h.shards[i]
		sum += sh.sum.Load()
		if m := sh.min.Load(); m < min {
			min = m
		}
		if m := sh.max.Load(); m > max {
			max = m
		}
	}
	return metrics.FromBuckets(counts, sum, min, max)
}
