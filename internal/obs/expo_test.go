package obs

import (
	"flag"
	"os"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// Golden-file test for the Prometheus text exposition: a fixed registry must
// render byte-identically. Regenerate with `go test ./internal/obs -update`.
func TestPromExpositionGolden(t *testing.T) {
	r := NewRegistry()
	cg := r.Counter(`prism_cmds_total{op="get"}`, "Commands executed, by op.")
	cs := r.Counter(`prism_cmds_total{op="set"}`, "Commands executed, by op.")
	g := r.Gauge("prism_write_queue_depth", "Intents waiting in the owner queues.")
	hl := r.Histogram(`prism_op_latency_seconds{op="get"}`, "Per-op wall latency.", UnitSeconds)
	hb := r.Histogram("prism_write_batch_ops", "Owner-goroutine batch sizes.", UnitCount)
	r.Collect(func(out *Gathered) {
		out.Gauge("prism_nvm_read_ratio", "Reads served from DRAM or NVM.", 0.75)
	})

	cg.Add(41)
	cs.Inc()
	g.Set(12)
	for _, d := range []time.Duration{
		900 * time.Nanosecond,
		12 * time.Microsecond, 13 * time.Microsecond,
		1500 * time.Microsecond,
	} {
		hl.Record(d)
	}
	for _, n := range []int64{1, 1, 2, 16, 16, 16, 128} {
		hb.Observe(n)
	}

	var b strings.Builder
	if err := WriteProm(&b, r.Gather()); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	const golden = "testdata/metrics.golden"
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestPromFamilyHelpers(t *testing.T) {
	if familyOf(`a_total{op="get"}`) != "a_total" || familyOf("a_total") != "a_total" {
		t.Fatal("familyOf")
	}
	if suffixed(`a{op="get"}`, "_sum") != `a_sum{op="get"}` || suffixed("a", "_sum") != "a_sum" {
		t.Fatal("suffixed")
	}
	if withLabel(`a{op="get"}`, "_bucket", `le="1"`) != `a_bucket{op="get",le="1"}` {
		t.Fatal("withLabel labeled")
	}
	if withLabel("a", "_bucket", `le="+Inf"`) != `a_bucket{le="+Inf"}` {
		t.Fatal("withLabel bare")
	}
}
