package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// finishSpan drives the deterministic internal finish path with an explicit
// total, so ordering tests don't depend on wall timing.
func finishSpan(t *Tracer, op string, key string, total time.Duration) {
	sp := t.Sample()
	if sp == nil {
		panic("sampler must fire with every=1")
	}
	sp.SetOp(op, []byte(key))
	t.finish(sp, total)
}

func TestSlowlogOrderingAndReset(t *testing.T) {
	tr := NewTracer(1, 4, 8)
	finishSpan(tr, "get", "k1", 10*time.Microsecond)
	finishSpan(tr, "set", "k2", 50*time.Microsecond)
	finishSpan(tr, "get", "k3", 30*time.Microsecond)
	finishSpan(tr, "del", "k4", 50*time.Microsecond) // tie with k2: earlier finish first
	finishSpan(tr, "get", "k5", 5*time.Microsecond)
	finishSpan(tr, "get", "k6", 40*time.Microsecond)

	if n := tr.SlowLen(); n != 4 {
		t.Fatalf("SlowLen = %d, want 4 (capacity)", n)
	}
	got := tr.Slow(0)
	wantKeys := []string{"k2", "k4", "k6", "k3"} // 50(id2), 50(id4), 40, 30; k5+k1 evicted
	for i, rec := range got {
		if rec.Key != wantKeys[i] {
			t.Fatalf("slow[%d] = %s (%v), want %s; full: %+v", i, rec.Key, rec.Total, wantKeys[i], got)
		}
	}
	if got[0].ID >= got[1].ID {
		t.Fatalf("tie must order by finish sequence: %d vs %d", got[0].ID, got[1].ID)
	}
	if sub := tr.Slow(2); len(sub) != 2 || sub[0].Key != "k2" || sub[1].Key != "k4" {
		t.Fatalf("Slow(2) = %+v", sub)
	}

	tr.SlowReset()
	if tr.SlowLen() != 0 || len(tr.Slow(0)) != 0 {
		t.Fatal("reset must clear the slowlog")
	}
	finishSpan(tr, "get", "k7", time.Microsecond)
	got = tr.Slow(0)
	if len(got) != 1 || got[0].Key != "k7" || got[0].ID != 7 {
		t.Fatalf("post-reset: %+v (IDs keep counting)", got)
	}
}

func TestRecentRing(t *testing.T) {
	tr := NewTracer(1, 4, 3)
	for i := 1; i <= 5; i++ {
		finishSpan(tr, "get", fmt.Sprintf("k%d", i), time.Duration(i)*time.Microsecond)
	}
	got := tr.Recent(0)
	if len(got) != 3 || got[0].Key != "k5" || got[1].Key != "k4" || got[2].Key != "k3" {
		t.Fatalf("Recent = %+v", got)
	}
	if one := tr.Recent(1); len(one) != 1 || one[0].Key != "k5" {
		t.Fatalf("Recent(1) = %+v", one)
	}
}

func TestSamplingRate(t *testing.T) {
	tr := NewTracer(4, 8, 8)
	sampled := 0
	for i := 0; i < 100; i++ {
		if sp := tr.Sample(); sp != nil {
			sampled++
			tr.Drop(sp)
		}
	}
	if sampled != 25 {
		t.Fatalf("every=4 sampled %d of 100", sampled)
	}
	if NewTracer(0, 8, 8).Sample() != nil {
		t.Fatal("every=0 must disable sampling")
	}
}

func TestSpanStagesAndSummary(t *testing.T) {
	tr := NewTracer(1, 4, 4)
	sp := tr.Sample()
	sp.SetOp("set", []byte(strings.Repeat("x", 100)))
	sp.SetTier("")
	sp.Stage(StageParse, 2*time.Microsecond)
	sp.Stage(StageFsyncWait, time.Millisecond)
	sp.Stage(StageFsyncWait, time.Millisecond) // accumulates
	tr.finish(sp, 3*time.Millisecond)

	rec := tr.Slow(1)[0]
	if rec.Op != "set" || len(rec.Key) != traceKeyMax || !rec.Trunc {
		t.Fatalf("record: %+v", rec)
	}
	if rec.Stages[StageFsyncWait] != 2*time.Millisecond {
		t.Fatalf("fsync stage = %v", rec.Stages[StageFsyncWait])
	}
	sum := rec.StageSummary()
	if !strings.Contains(sum, "parse=2µs") || !strings.Contains(sum, "fsync_wait=2ms") {
		t.Fatalf("summary: %q", sum)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(2, 16, 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				sp := tr.Sample()
				if sp == nil {
					continue
				}
				sp.SetOp("get", []byte("key"))
				sp.Stage(StageDispatch, time.Microsecond)
				tr.Finish(sp)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			tr.Slow(0)
			tr.Recent(0)
			tr.SlowLen()
		}
	}()
	wg.Wait()
	<-done
	if tr.SlowLen() == 0 {
		t.Fatal("no spans retained")
	}
}
