package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stage labels where a traced op's time went, in op order.
type Stage int

const (
	// StageParse is RESP command parsing (only counted when the command
	// was already buffered — socket idle time is not parse time).
	StageParse Stage = iota
	// StageDispatch is the engine call as seen by the server: for reads
	// this IS the tier read; for writes it wraps the queue/apply/WAL
	// stages below.
	StageDispatch
	// StageQueueWait is time an intent sat in the owner-goroutine write
	// queue before its mutation started.
	StageQueueWait
	// StageApply is the in-critical-section mutation (slab/B-tree work).
	StageApply
	// StageWALAppend is framing + appending the WAL group record.
	StageWALAppend
	// StageFsyncWait is blocking in WaitDurable for the group fsync.
	StageFsyncWait
	// StageFlush is the reply's share of the connection's write-buffer
	// flush (pipelined replies share one flush; each gets the full
	// flush duration, since each waited for it).
	StageFlush
	// NumStages bounds per-span stage arrays.
	NumStages
)

var stageNames = [NumStages]string{
	"parse", "dispatch", "queue_wait", "apply", "wal_append", "fsync_wait", "flush",
}

func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "?"
	}
	return stageNames[s]
}

// traceKeyMax bounds the key bytes a span retains (allocation-bounded).
const traceKeyMax = 48

// Span accumulates one traced op's per-stage durations. Spans come from
// Tracer.Sample (nil when the op is not sampled — every method is
// nil-receiver-safe so call sites stay branch-light) and return to the
// tracer's pool at Finish/Drop.
type Span struct {
	start  time.Time
	op     string
	key    [traceKeyMax]byte
	keyLen int
	trunc  bool
	tier   string
	stages [NumStages]time.Duration
}

// Stage adds d to stage st.
func (sp *Span) Stage(st Stage, d time.Duration) {
	if sp == nil {
		return
	}
	sp.stages[st] += d
}

// SetOp records the op name (a static string) and key (copied, truncated to
// traceKeyMax bytes).
func (sp *Span) SetOp(op string, key []byte) {
	if sp == nil {
		return
	}
	sp.op = op
	n := copy(sp.key[:], key)
	sp.keyLen = n
	sp.trunc = len(key) > n
}

// SetTier annotates a read span with the serving tier (a static string).
func (sp *Span) SetTier(tier string) {
	if sp == nil {
		return
	}
	sp.tier = tier
}

// SpanRecord is a finished span as retained by the SLOWLOG and recent rings.
type SpanRecord struct {
	ID     int64 // monotonically increasing finish sequence
	When   time.Time
	Op     string
	Key    string
	Trunc  bool // Key was truncated to traceKeyMax bytes
	Tier   string
	Total  time.Duration
	Stages [NumStages]time.Duration
}

// StageSummary renders the non-zero stages, e.g.
// "parse=2µs dispatch=14µs flush=9µs".
func (r SpanRecord) StageSummary() string {
	var b strings.Builder
	for i, d := range r.Stages {
		if d == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(stageNames[i])
		b.WriteByte('=')
		b.WriteString(d.String())
	}
	if r.Tier != "" {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString("tier=")
		b.WriteString(r.Tier)
	}
	return b.String()
}

// Tracer samples ops (1 in every), hands out pooled spans, and retains
// finished spans in two fixed-size rings: the slowest ops (SLOWLOG) and the
// most recent ops (TRACE). Sampling is one atomic add; the rings take a
// mutex only on the sampled finish path.
type Tracer struct {
	every int64
	tick  atomic.Int64
	pool  sync.Pool

	mu      sync.Mutex
	seq     int64
	recent  []SpanRecord // ring of last finished spans
	rpos    int
	rn      int
	slow    []SpanRecord // sorted: Total desc, ID asc on ties
	slowCap int
}

// NewTracer samples one op in every (≤ 0 disables sampling; 1 traces every
// op), keeping the slowCap slowest and recentCap most recent finished spans.
func NewTracer(every, slowCap, recentCap int) *Tracer {
	if slowCap <= 0 {
		slowCap = 32
	}
	if recentCap <= 0 {
		recentCap = 64
	}
	t := &Tracer{
		every:   int64(every),
		recent:  make([]SpanRecord, recentCap),
		slowCap: slowCap,
	}
	t.pool.New = func() any { return new(Span) }
	return t
}

// Sample returns a started span for 1 in every ops, nil otherwise.
func (t *Tracer) Sample() *Span {
	if t == nil || t.every <= 0 {
		return nil
	}
	if t.every > 1 && t.tick.Add(1)%t.every != 0 {
		return nil
	}
	sp := t.pool.Get().(*Span)
	*sp = Span{start: time.Now()}
	return sp
}

// Drop abandons a sampled span without recording it (e.g. the op was folded
// into a deferred batch that is traced as a unit instead).
func (t *Tracer) Drop(sp *Span) {
	if t == nil || sp == nil {
		return
	}
	t.pool.Put(sp)
}

// Finish records a sampled span with total = time since Sample and recycles
// it. The span must not be used afterwards.
func (t *Tracer) Finish(sp *Span) {
	if t == nil || sp == nil {
		return
	}
	t.finish(sp, time.Since(sp.start))
}

func (t *Tracer) finish(sp *Span, total time.Duration) {
	rec := SpanRecord{
		When:   sp.start,
		Op:     sp.op,
		Key:    string(sp.key[:sp.keyLen]),
		Trunc:  sp.trunc,
		Tier:   sp.tier,
		Total:  total,
		Stages: sp.stages,
	}
	t.pool.Put(sp)

	t.mu.Lock()
	t.seq++
	rec.ID = t.seq
	t.recent[t.rpos] = rec
	t.rpos = (t.rpos + 1) % len(t.recent)
	if t.rn < len(t.recent) {
		t.rn++
	}
	if len(t.slow) < t.slowCap || rec.Total > t.slow[len(t.slow)-1].Total {
		i := sort.Search(len(t.slow), func(i int) bool { return t.slow[i].Total < rec.Total })
		t.slow = append(t.slow, SpanRecord{})
		copy(t.slow[i+1:], t.slow[i:])
		t.slow[i] = rec
		if len(t.slow) > t.slowCap {
			t.slow = t.slow[:t.slowCap]
		}
	}
	t.mu.Unlock()
}

// Slow returns up to n SLOWLOG entries, slowest first (ties: earlier finish
// first). n ≤ 0 returns all retained entries.
func (t *Tracer) Slow(n int) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > len(t.slow) {
		n = len(t.slow)
	}
	return append([]SpanRecord(nil), t.slow[:n]...)
}

// SlowLen returns the number of retained SLOWLOG entries.
func (t *Tracer) SlowLen() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.slow)
}

// SlowReset clears the SLOWLOG ring (the recent ring and ID sequence keep
// going).
func (t *Tracer) SlowReset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.slow = t.slow[:0]
	t.mu.Unlock()
}

// Recent returns up to n most recently finished spans, newest first.
func (t *Tracer) Recent(n int) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.rn {
		n = t.rn
	}
	out := make([]SpanRecord, 0, n)
	for i := 1; i <= n; i++ {
		idx := t.rpos - i
		if idx < 0 {
			idx += len(t.recent)
		}
		out = append(out, t.recent[idx])
	}
	return out
}
