// Package btree implements the in-memory B-tree index PrismDB keeps in DRAM
// to locate unsorted objects on NVM (§4.1). Each entry maps a key to a
// packed NVM address (slab ID + slot offset, encoded by the caller into a
// uint64). Only NVM-resident objects are indexed here; flash objects are
// found through per-SST index and filter blocks.
//
// The tree is persistent (copy-on-write) with epoch-scoped transients:
// every node carries the epoch of the Snapshot window it was created in,
// and Snapshot bumps the handle's epoch. Insert and Delete never modify a
// node reachable from a previously published root — any node with an older
// epoch is path-copied — but nodes already created since the last Snapshot
// are mutated in place, so a batch of writes between two Snapshots copies
// each spine node at most once instead of once per operation.
// A *Tree handle is therefore single-writer (PrismDB's partition lock), and
// a Snapshot taken from it is an immutable view that any number of readers
// may traverse concurrently with further writes to the handle — the
// substrate of the engine's lock-free GET path. Keys and the Item structs
// inside shared nodes are never mutated after insert.
package btree

import "bytes"

const degree = 32 // minimum children of an internal node

const (
	maxItems = 2*degree - 1
	minItems = degree - 1
)

// Item is a key/value entry. Keys are treated as immutable after insert.
type Item struct {
	Key []byte
	Val uint64
}

// node is an immutable-once-shared B-tree node. ep records the Snapshot
// epoch the node was created in; mutating code only ever touches nodes
// whose epoch matches the handle's current epoch (clone or fresh), so
// anything reachable from an older root stays bit-identical forever.
type node struct {
	ep       uint64
	items    []Item
	children []*node
}

func (n *node) leaf() bool { return len(n.children) == 0 }

// clone returns a mutable copy of n stamped with epoch ep, with fresh item
// and child slices (the referenced subtrees are shared — that is the point
// of path copying).
func (n *node) clone(ep uint64) *node {
	nn := &node{ep: ep, items: append([]Item(nil), n.items...)}
	if len(n.children) > 0 {
		nn.children = append([]*node(nil), n.children...)
	}
	return nn
}

// mut returns a node standing in for n that is safe to mutate in epoch ep:
// n itself when it was already created this epoch (no published snapshot
// can reach it), otherwise a clone.
func (n *node) mut(ep uint64) *node {
	if n.ep == ep {
		return n
	}
	return n.clone(ep)
}

// find returns the index of the first item ≥ key and whether it equals key.
func (n *node) find(key []byte) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.items[mid].Key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.items) && bytes.Equal(n.items[lo].Key, key) {
		return lo, true
	}
	return lo, false
}

// Tree is a B-tree index handle. The zero value is an empty tree ready for
// use. The handle itself is not synchronized (single writer); use Snapshot
// to hand an immutable view to concurrent readers.
type Tree struct {
	root  *node
	size  int
	epoch uint64
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Snapshot returns an O(1) immutable view of the tree: a detached handle
// over the current root. Reads on the snapshot (Get, AscendFrom, Range,
// Min, Max, Len) are safe concurrently with any number of later Insert and
// Delete calls on the original handle, which never modify published nodes:
// Snapshot advances the handle's epoch, so every node the snapshot can
// reach carries an older epoch and is path-copied rather than mutated.
// Snapshot is a writer-side operation (it stamps the handle) and must be
// called under the same single-writer discipline as Insert/Delete.
// Mutating a snapshot is not supported (it would still be safe copy-on-write
// but forks history — the engine never does it).
func (t *Tree) Snapshot() *Tree {
	t.epoch++
	return &Tree{root: t.root, size: t.size, epoch: t.epoch}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Get returns the value stored for key.
func (t *Tree) Get(key []byte) (uint64, bool) {
	n := t.root
	for n != nil {
		i, eq := n.find(key)
		if eq {
			return n.items[i].Val, true
		}
		if n.leaf() {
			return 0, false
		}
		n = n.children[i]
	}
	return 0, false
}

// Insert stores val under key, returning the previous value and whether the
// key already existed. Previously snapshotted roots are untouched; nodes
// created since the last Snapshot are updated in place.
func (t *Tree) Insert(key []byte, val uint64) (prev uint64, replaced bool) {
	if t.root == nil {
		t.root = &node{ep: t.epoch, items: []Item{{Key: key, Val: val}}}
		t.size = 1
		return 0, false
	}
	root := t.root
	if len(root.items) == maxItems {
		nr := &node{ep: t.epoch, children: []*node{root}}
		nr.splitChild(0)
		root = nr
	}
	newRoot, prev, replaced := root.insert(t.epoch, key, val)
	t.root = newRoot
	if !replaced {
		t.size++
	}
	return prev, replaced
}

// splitChild splits n.children[i] (which must be full) around its median,
// replacing it with two freshly built halves. n must be mutable (a clone or
// a fresh node in the current epoch); the full child is left untouched.
func (n *node) splitChild(i int) {
	child := n.children[i]
	mid := maxItems / 2
	median := child.items[mid]

	left := &node{ep: n.ep, items: append([]Item(nil), child.items[:mid]...)}
	right := &node{ep: n.ep, items: append([]Item(nil), child.items[mid+1:]...)}
	if !child.leaf() {
		left.children = append([]*node(nil), child.children[:mid+1]...)
		right.children = append([]*node(nil), child.children[mid+1:]...)
	}

	n.items = append(n.items, Item{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median

	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i] = left
	n.children[i+1] = right
}

// insert is the path-copying descent: it returns a node standing in for n
// with key inserted somewhere below — n itself, mutated, when it already
// belongs to epoch ep, or a fresh copy otherwise.
func (n *node) insert(ep uint64, key []byte, val uint64) (*node, uint64, bool) {
	i, eq := n.find(key)
	if eq {
		nn := n.mut(ep)
		prev := nn.items[i].Val
		nn.items[i].Val = val
		return nn, prev, true
	}
	if n.leaf() {
		if n.ep == ep {
			n.items = append(n.items, Item{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = Item{Key: key, Val: val}
			return n, 0, false
		}
		nn := &node{ep: ep, items: make([]Item, len(n.items)+1)}
		copy(nn.items, n.items[:i])
		nn.items[i] = Item{Key: key, Val: val}
		copy(nn.items[i+1:], n.items[i:])
		return nn, 0, false
	}
	nn := n.mut(ep)
	if len(nn.children[i].items) == maxItems {
		nn.splitChild(i)
		if c := bytes.Compare(key, nn.items[i].Key); c == 0 {
			prev := nn.items[i].Val
			nn.items[i].Val = val
			return nn, prev, true
		} else if c > 0 {
			i++
		}
	}
	child, prev, replaced := nn.children[i].insert(ep, key, val)
	nn.children[i] = child
	return nn, prev, replaced
}

// Delete removes key, returning its value and whether it was present.
// Previously snapshotted roots are untouched; when the key is absent the
// tree's contents are unchanged (nodes created since the last Snapshot may
// have been rebalanced in place, which is invisible to Get/iteration).
func (t *Tree) Delete(key []byte) (uint64, bool) {
	if t.root == nil {
		return 0, false
	}
	newRoot, val, ok := t.root.remove(t.epoch, key)
	if !ok {
		return 0, false
	}
	if len(newRoot.items) == 0 {
		if newRoot.leaf() {
			newRoot = nil
		} else {
			newRoot = newRoot.children[0]
		}
	}
	t.root = newRoot
	t.size--
	return val, ok
}

// remove is the path-copying removal descent: on success it returns a node
// standing in for n with key removed below (n itself when it belongs to
// epoch ep). On a miss it returns n unchanged in content — speculative
// restructuring is either discarded (copied spine) or harmless (an
// in-place rebalance preserves the entry set).
func (n *node) remove(ep uint64, key []byte) (*node, uint64, bool) {
	i, eq := n.find(key)
	if n.leaf() {
		if !eq {
			return n, 0, false
		}
		val := n.items[i].Val
		if n.ep == ep {
			copy(n.items[i:], n.items[i+1:])
			n.items[len(n.items)-1] = Item{} // release the vacated slot's refs
			n.items = n.items[:len(n.items)-1]
			return n, val, true
		}
		nn := &node{ep: ep, items: make([]Item, len(n.items)-1)}
		copy(nn.items, n.items[:i])
		copy(nn.items[i:], n.items[i+1:])
		return nn, val, true
	}
	if eq {
		val := n.items[i].Val
		// Replace with predecessor (max of left subtree) or successor, then
		// delete that boundary key from the child — grow-first discipline
		// keeps the recursive removal from underflowing.
		if len(n.children[i].items) > minItems {
			pred := n.children[i].max()
			child, _, _ := n.children[i].remove(ep, pred.Key)
			nn := n.mut(ep)
			nn.items[i] = pred
			nn.children[i] = child
			return nn, val, true
		}
		if len(n.children[i+1].items) > minItems {
			succ := n.children[i+1].min()
			child, _, _ := n.children[i+1].remove(ep, succ.Key)
			nn := n.mut(ep)
			nn.items[i] = succ
			nn.children[i+1] = child
			return nn, val, true
		}
		nn := n.mut(ep)
		nn.mergeChildren(i)
		child, v, ok := nn.children[i].remove(ep, key)
		nn.children[i] = child
		return nn, v, ok
	}
	// Descending: ensure the target child has more than minItems first.
	if len(n.children[i].items) == minItems {
		nn, j := n.growChild(ep, i)
		child, v, ok := nn.children[j].remove(ep, key)
		if !ok {
			return n, 0, false // key absent: the rebalance changed no content
		}
		nn.children[j] = child
		return nn, v, ok
	}
	child, v, ok := n.children[i].remove(ep, key)
	if !ok {
		return n, 0, false
	}
	nn := n.mut(ep)
	nn.children[i] = child
	return nn, v, ok
}

func (n *node) max() Item {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

func (n *node) min() Item {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

// growChild returns a stand-in for n in which children[i] has more than
// minItems — by borrowing from a sibling or merging — plus the (possibly
// shifted) child index to descend into. Nodes from older epochs are never
// modified; the affected children are made mutable (in place or cloned)
// inside the returned node.
func (n *node) growChild(ep uint64, i int) (*node, int) {
	nn := n.mut(ep)
	switch {
	case i > 0 && len(nn.children[i-1].items) > minItems:
		// Borrow from left sibling through the separator.
		child, left := nn.children[i].mut(ep), nn.children[i-1].mut(ep)
		child.items = append(child.items, Item{})
		copy(child.items[1:], child.items)
		child.items[0] = nn.items[i-1]
		nn.items[i-1] = left.items[len(left.items)-1]
		left.items[len(left.items)-1] = Item{}
		left.items = left.items[:len(left.items)-1]
		if !left.leaf() {
			moved := left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = moved
		}
		nn.children[i-1] = left
		nn.children[i] = child
	case i < len(nn.children)-1 && len(nn.children[i+1].items) > minItems:
		// Borrow from right sibling through the separator.
		child, right := nn.children[i].mut(ep), nn.children[i+1].mut(ep)
		child.items = append(child.items, nn.items[i])
		nn.items[i] = right.items[0]
		copy(right.items, right.items[1:])
		right.items[len(right.items)-1] = Item{}
		right.items = right.items[:len(right.items)-1]
		if !right.leaf() {
			child.children = append(child.children, right.children[0])
			right.children = append(right.children[:0], right.children[1:]...)
		}
		nn.children[i] = child
		nn.children[i+1] = right
	default:
		if i == len(nn.children)-1 {
			i--
		}
		nn.mergeChildren(i)
	}
	return nn, i
}

// mergeChildren replaces children[i] and children[i+1] with a freshly built
// merge of children[i], items[i], and children[i+1]. n must be mutable (the
// current epoch); the merged-away children are left untouched.
func (n *node) mergeChildren(i int) {
	child, right := n.children[i], n.children[i+1]
	m := &node{ep: n.ep, items: make([]Item, 0, len(child.items)+1+len(right.items))}
	m.items = append(m.items, child.items...)
	m.items = append(m.items, n.items[i])
	m.items = append(m.items, right.items...)
	if !child.leaf() {
		m.children = make([]*node, 0, len(child.children)+len(right.children))
		m.children = append(m.children, child.children...)
		m.children = append(m.children, right.children...)
	}
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children[i] = m
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// AscendFrom calls fn for every entry with key ≥ start in ascending order,
// stopping early if fn returns false. A nil start iterates from the minimum.
func (t *Tree) AscendFrom(start []byte, fn func(Item) bool) {
	if t.root != nil {
		t.root.ascend(start, fn)
	}
}

func (n *node) ascend(start []byte, fn func(Item) bool) bool {
	i := 0
	if start != nil {
		i, _ = n.find(start)
	}
	for ; i < len(n.items); i++ {
		if !n.leaf() && !n.children[i].ascend(start, fn) {
			return false
		}
		if start != nil && bytes.Compare(n.items[i].Key, start) < 0 {
			continue
		}
		if !fn(n.items[i]) {
			return false
		}
		// Children right of a yielded item are all ≥ start.
		start = nil
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].ascend(start, fn)
	}
	return true
}

// Range calls fn for every entry with start ≤ key < end (end nil = +∞).
func (t *Tree) Range(start, end []byte, fn func(Item) bool) {
	t.AscendFrom(start, func(it Item) bool {
		if end != nil && bytes.Compare(it.Key, end) >= 0 {
			return false
		}
		return fn(it)
	})
}

// Min returns the smallest entry.
func (t *Tree) Min() (Item, bool) {
	if t.root == nil || t.size == 0 {
		return Item{}, false
	}
	return t.root.min(), true
}

// Max returns the largest entry.
func (t *Tree) Max() (Item, bool) {
	if t.root == nil || t.size == 0 {
		return Item{}, false
	}
	return t.root.max(), true
}
