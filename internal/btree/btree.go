// Package btree implements the in-memory B-tree index PrismDB keeps in DRAM
// to locate unsorted objects on NVM (§4.1). Each entry maps a key to a
// packed NVM address (slab ID + slot offset, encoded by the caller into a
// uint64). Only NVM-resident objects are indexed here; flash objects are
// found through per-SST index and filter blocks.
//
// The tree is not internally synchronized: in PrismDB's shared-nothing
// design each partition owns one tree guarded by the partition lock.
package btree

import "bytes"

const degree = 32 // minimum children of an internal node

const (
	maxItems = 2*degree - 1
	minItems = degree - 1
)

// Item is a key/value entry. Keys are treated as immutable after insert.
type Item struct {
	Key []byte
	Val uint64
}

type node struct {
	items    []Item
	children []*node
}

func (n *node) leaf() bool { return len(n.children) == 0 }

// find returns the index of the first item ≥ key and whether it equals key.
func (n *node) find(key []byte) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.items[mid].Key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.items) && bytes.Equal(n.items[lo].Key, key) {
		return lo, true
	}
	return lo, false
}

// Tree is a B-tree index. The zero value is an empty tree ready for use.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Get returns the value stored for key.
func (t *Tree) Get(key []byte) (uint64, bool) {
	n := t.root
	for n != nil {
		i, eq := n.find(key)
		if eq {
			return n.items[i].Val, true
		}
		if n.leaf() {
			return 0, false
		}
		n = n.children[i]
	}
	return 0, false
}

// Insert stores val under key, returning the previous value and whether the
// key already existed.
func (t *Tree) Insert(key []byte, val uint64) (prev uint64, replaced bool) {
	if t.root == nil {
		t.root = &node{items: []Item{{Key: key, Val: val}}}
		t.size = 1
		return 0, false
	}
	if len(t.root.items) == maxItems {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.root.splitChild(0)
	}
	prev, replaced = t.root.insertNonFull(key, val)
	if !replaced {
		t.size++
	}
	return prev, replaced
}

// splitChild splits n.children[i] (which must be full) around its median.
func (n *node) splitChild(i int) {
	child := n.children[i]
	mid := maxItems / 2
	median := child.items[mid]

	right := &node{items: append([]Item(nil), child.items[mid+1:]...)}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]

	n.items = append(n.items, Item{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median

	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (n *node) insertNonFull(key []byte, val uint64) (prev uint64, replaced bool) {
	for {
		i, eq := n.find(key)
		if eq {
			prev = n.items[i].Val
			n.items[i].Val = val
			return prev, true
		}
		if n.leaf() {
			n.items = append(n.items, Item{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = Item{Key: key, Val: val}
			return 0, false
		}
		if len(n.children[i].items) == maxItems {
			n.splitChild(i)
			if c := bytes.Compare(key, n.items[i].Key); c == 0 {
				prev = n.items[i].Val
				n.items[i].Val = val
				return prev, true
			} else if c > 0 {
				i++
			}
		}
		n = n.children[i]
	}
}

// Delete removes key, returning its value and whether it was present.
func (t *Tree) Delete(key []byte) (uint64, bool) {
	if t.root == nil {
		return 0, false
	}
	val, ok := t.root.remove(key)
	if len(t.root.items) == 0 {
		if t.root.leaf() {
			t.root = nil
		} else {
			t.root = t.root.children[0]
		}
	}
	if ok {
		t.size--
	}
	return val, ok
}

func (n *node) remove(key []byte) (uint64, bool) {
	i, eq := n.find(key)
	if n.leaf() {
		if !eq {
			return 0, false
		}
		val := n.items[i].Val
		n.items = append(n.items[:i], n.items[i+1:]...)
		return val, true
	}
	if eq {
		val := n.items[i].Val
		// Replace with predecessor (max of left subtree), then delete
		// that predecessor from the child. Grow the child first so the
		// recursive removal cannot underflow.
		if len(n.children[i].items) > minItems {
			pred := n.children[i].max()
			n.items[i] = pred
			n.children[i].remove(pred.Key)
			return val, true
		}
		if len(n.children[i+1].items) > minItems {
			succ := n.children[i+1].min()
			n.items[i] = succ
			n.children[i+1].remove(succ.Key)
			return val, true
		}
		n.mergeChildren(i)
		return n.children[i].remove(key)
	}
	// Descending: ensure the child has more than minItems first.
	if len(n.children[i].items) == minItems {
		i = n.growChild(i)
	}
	return n.children[i].remove(key)
}

func (n *node) max() Item {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

func (n *node) min() Item {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

// growChild ensures children[i] has more than minItems by borrowing from a
// sibling or merging. It returns the (possibly shifted) child index to
// descend into.
func (n *node) growChild(i int) int {
	switch {
	case i > 0 && len(n.children[i-1].items) > minItems:
		// Borrow from left sibling through the separator.
		child, left := n.children[i], n.children[i-1]
		child.items = append(child.items, Item{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !left.leaf() {
			moved := left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = moved
		}
	case i < len(n.children)-1 && len(n.children[i+1].items) > minItems:
		// Borrow from right sibling through the separator.
		child, right := n.children[i], n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		if !right.leaf() {
			child.children = append(child.children, right.children[0])
			right.children = append(right.children[:0], right.children[1:]...)
		}
	default:
		if i == len(n.children)-1 {
			i--
		}
		n.mergeChildren(i)
	}
	return i
}

// mergeChildren merges children[i], items[i], and children[i+1].
func (n *node) mergeChildren(i int) {
	child, right := n.children[i], n.children[i+1]
	child.items = append(child.items, n.items[i])
	child.items = append(child.items, right.items...)
	child.children = append(child.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// AscendFrom calls fn for every entry with key ≥ start in ascending order,
// stopping early if fn returns false. A nil start iterates from the minimum.
func (t *Tree) AscendFrom(start []byte, fn func(Item) bool) {
	if t.root != nil {
		t.root.ascend(start, fn)
	}
}

func (n *node) ascend(start []byte, fn func(Item) bool) bool {
	i := 0
	if start != nil {
		i, _ = n.find(start)
	}
	for ; i < len(n.items); i++ {
		if !n.leaf() && !n.children[i].ascend(start, fn) {
			return false
		}
		if start != nil && bytes.Compare(n.items[i].Key, start) < 0 {
			continue
		}
		if !fn(n.items[i]) {
			return false
		}
		// Children right of a yielded item are all ≥ start.
		start = nil
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].ascend(start, fn)
	}
	return true
}

// Range calls fn for every entry with start ≤ key < end (end nil = +∞).
func (t *Tree) Range(start, end []byte, fn func(Item) bool) {
	t.AscendFrom(start, func(it Item) bool {
		if end != nil && bytes.Compare(it.Key, end) >= 0 {
			return false
		}
		return fn(it)
	})
}

// Min returns the smallest entry.
func (t *Tree) Min() (Item, bool) {
	if t.root == nil || t.size == 0 {
		return Item{}, false
	}
	return t.root.min(), true
}

// Max returns the largest entry.
func (t *Tree) Max() (Item, bool) {
	if t.root == nil || t.size == 0 {
		return Item{}, false
	}
	return t.root.max(), true
}
