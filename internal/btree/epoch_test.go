package btree

import (
	"fmt"
	"testing"
)

// TestEpochInPlaceLeafMutation pins the transient contract the batched
// write path depends on: between two Snapshots, repeated inserts into the
// same leaf reuse the nodes built by the first insert (one spine copy per
// batch), instead of allocating a fresh spine per operation.
func TestEpochInPlaceLeafMutation(t *testing.T) {
	tr := New()
	tr.Insert(key(0), 0)
	tr.Snapshot() // seal epoch 0; subsequent writes are epoch 1 transients

	tr.Insert(key(1), 1)
	r1 := tr.root
	for i := 2; i < maxItems; i++ { // stay below a root split
		tr.Insert(key(i), uint64(i))
		if tr.root != r1 {
			t.Fatalf("insert %d replaced the same-epoch root", i)
		}
	}
	for i := 3; i < maxItems; i += 2 {
		tr.Delete(key(i))
		if tr.root != r1 {
			t.Fatalf("delete %d replaced the same-epoch root", i)
		}
	}
}

// TestEpochSnapshotSealsNodes verifies the flip side: after a Snapshot the
// very next write must copy the spine, never touch the sealed root.
func TestEpochSnapshotSealsNodes(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		tr.Insert(key(i), uint64(i))
	}
	snap := tr.Snapshot()
	sealed := tr.root
	tr.Insert(key(100), 100)
	if tr.root == sealed {
		t.Fatal("post-snapshot insert mutated the sealed root in place")
	}
	if snap.root != sealed {
		t.Fatal("snapshot root moved")
	}
}

// TestEpochBatchSnapshotIsolation drives interleaved batches — mutate a
// burst in place, snapshot, mutate again — and checks every frozen view
// against its model. This is the engine's publish-once-per-batch pattern.
func TestEpochBatchSnapshotIsolation(t *testing.T) {
	tr := New()
	model := map[string]uint64{}
	type frozen struct {
		snap  *Tree
		model map[string]uint64
	}
	var snaps []frozen
	n := 0
	for batch := 0; batch < 40; batch++ {
		for i := 0; i < 100; i++ {
			k := key((batch*37 + i*11) % 1500)
			if (batch+i)%4 == 0 {
				tr.Delete(k)
				delete(model, string(k))
			} else {
				v := uint64(batch*1000 + i)
				tr.Insert(k, v)
				model[string(k)] = v
			}
			n++
		}
		m := make(map[string]uint64, len(model))
		for k, v := range model {
			m[k] = v
		}
		snaps = append(snaps, frozen{tr.Snapshot(), m})
	}
	for i, f := range snaps {
		if f.snap.Len() != len(f.model) {
			t.Fatalf("snap%d: Len = %d, model %d", i, f.snap.Len(), len(f.model))
		}
		for k, want := range f.model {
			got, ok := f.snap.Get([]byte(k))
			if !ok || got != want {
				t.Fatalf("snap%d: Get(%q) = %d,%v want %d", i, k, got, ok, want)
			}
		}
		count := 0
		f.snap.AscendFrom(nil, func(it Item) bool {
			if want, ok := f.model[string(it.Key)]; !ok || it.Val != want {
				t.Fatalf("snap%d: ascend saw %q=%d, model %d,%v", i, it.Key, it.Val, want, ok)
			}
			count++
			return true
		})
		if count != len(f.model) {
			t.Fatalf("snap%d: ascend visited %d, want %d", i, count, len(f.model))
		}
	}
	_ = fmt.Sprintf("%d ops", n)
}

// TestEpochDeleteMissLeavesContent checks the miss path after in-place
// rebalancing: a Delete of an absent key may reshape same-epoch nodes but
// must leave the entry set (and every snapshot) intact.
func TestEpochDeleteMissLeavesContent(t *testing.T) {
	tr := New()
	const n = 500
	for i := 0; i < n; i += 2 {
		tr.Insert(key(i), uint64(i))
	}
	snap := tr.Snapshot()
	for i := 0; i < n; i += 2 { // rebuild a same-epoch spine
		tr.Insert(key(i), uint64(i)+1)
	}
	for i := 1; i < n; i += 2 { // absent keys: force grow/merge probes
		if _, ok := tr.Delete(key(i)); ok {
			t.Fatalf("deleted absent key %d", i)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), n/2)
	}
	for i := 0; i < n; i += 2 {
		if v, ok := tr.Get(key(i)); !ok || v != uint64(i)+1 {
			t.Fatalf("live Get(%d) = %d,%v", i, v, ok)
		}
		if v, ok := snap.Get(key(i)); !ok || v != uint64(i) {
			t.Fatalf("snap Get(%d) = %d,%v", i, v, ok)
		}
	}
}
