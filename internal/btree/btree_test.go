package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, ok := tr.Get([]byte("x")); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if _, ok := tr.Delete([]byte("x")); ok {
		t.Fatal("Delete on empty tree returned ok")
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree returned ok")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree returned ok")
	}
	called := false
	tr.AscendFrom(nil, func(Item) bool { called = true; return true })
	if called {
		t.Fatal("AscendFrom on empty tree called fn")
	}
}

func TestInsertGetSequential(t *testing.T) {
	tr := New()
	const n = 5000
	for i := 0; i < n; i++ {
		if _, replaced := tr.Insert(key(i), uint64(i)); replaced {
			t.Fatalf("unexpected replace at %d", i)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Get(key(i))
		if !ok || v != uint64(i) {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := tr.Get(key(n)); ok {
		t.Fatal("found absent key")
	}
}

func TestInsertReplace(t *testing.T) {
	tr := New()
	tr.Insert([]byte("a"), 1)
	prev, replaced := tr.Insert([]byte("a"), 2)
	if !replaced || prev != 1 {
		t.Fatalf("replace: prev=%d replaced=%v", prev, replaced)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after replace", tr.Len())
	}
	v, _ := tr.Get([]byte("a"))
	if v != 2 {
		t.Fatalf("value = %d", v)
	}
}

func TestDeleteRandomOrder(t *testing.T) {
	tr := New()
	const n = 3000
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(n)
	for _, i := range perm {
		tr.Insert(key(i), uint64(i))
	}
	perm2 := rng.Perm(n)
	for cnt, i := range perm2 {
		v, ok := tr.Delete(key(i))
		if !ok || v != uint64(i) {
			t.Fatalf("Delete(%d) = %d,%v", i, v, ok)
		}
		if tr.Len() != n-cnt-1 {
			t.Fatalf("Len = %d after %d deletes", tr.Len(), cnt+1)
		}
	}
	if _, ok := tr.Delete(key(0)); ok {
		t.Fatal("double delete returned ok")
	}
}

func TestAscendOrderAndRange(t *testing.T) {
	tr := New()
	const n = 1000
	rng := rand.New(rand.NewSource(7))
	for _, i := range rng.Perm(n) {
		tr.Insert(key(i), uint64(i))
	}
	var got [][]byte
	tr.AscendFrom(nil, func(it Item) bool {
		got = append(got, it.Key)
		return true
	})
	if len(got) != n {
		t.Fatalf("iterated %d items, want %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if bytes.Compare(got[i-1], got[i]) >= 0 {
			t.Fatalf("out of order at %d: %s >= %s", i, got[i-1], got[i])
		}
	}
	// AscendFrom a mid key yields exactly the tail.
	var tail []uint64
	tr.AscendFrom(key(500), func(it Item) bool {
		tail = append(tail, it.Val)
		return true
	})
	if len(tail) != 500 || tail[0] != 500 {
		t.Fatalf("tail len=%d first=%v", len(tail), tail)
	}
	// Early stop.
	count := 0
	tr.AscendFrom(nil, func(Item) bool { count++; return count < 10 })
	if count != 10 {
		t.Fatalf("early stop iterated %d", count)
	}
	// Range [100, 200).
	var rangeVals []uint64
	tr.Range(key(100), key(200), func(it Item) bool {
		rangeVals = append(rangeVals, it.Val)
		return true
	})
	if len(rangeVals) != 100 || rangeVals[0] != 100 || rangeVals[99] != 199 {
		t.Fatalf("range = len %d, bounds %v..%v", len(rangeVals), rangeVals[0], rangeVals[len(rangeVals)-1])
	}
}

func TestAscendFromBetweenKeys(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i += 2 {
		tr.Insert(key(i), uint64(i))
	}
	var first uint64 = 999
	tr.AscendFrom(key(51), func(it Item) bool { first = it.Val; return false })
	if first != 52 {
		t.Fatalf("first ≥ key(51) = %d, want 52", first)
	}
}

func TestMinMax(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(3))
	for _, i := range rng.Perm(500) {
		tr.Insert(key(i), uint64(i))
	}
	mn, _ := tr.Min()
	mx, _ := tr.Max()
	if !bytes.Equal(mn.Key, key(0)) || !bytes.Equal(mx.Key, key(499)) {
		t.Fatalf("min=%s max=%s", mn.Key, mx.Key)
	}
}

// modelOp is a scripted operation for model-based property testing.
type modelOp struct {
	Kind byte // 0 insert, 1 delete, 2 get
	Key  uint16
	Val  uint64
}

func TestQuickAgainstMapModel(t *testing.T) {
	// Property: a random op sequence leaves the tree equivalent to a map,
	// and iteration yields the sorted key set.
	f := func(ops []modelOp) bool {
		tr := New()
		model := map[string]uint64{}
		for _, op := range ops {
			k := []byte(fmt.Sprintf("%05d", op.Key%997))
			switch op.Kind % 3 {
			case 0:
				_, replaced := tr.Insert(k, op.Val)
				_, existed := model[string(k)]
				if replaced != existed {
					return false
				}
				model[string(k)] = op.Val
			case 1:
				v, ok := tr.Delete(k)
				mv, existed := model[string(k)]
				if ok != existed || (ok && v != mv) {
					return false
				}
				delete(model, string(k))
			case 2:
				v, ok := tr.Get(k)
				mv, existed := model[string(k)]
				if ok != existed || (ok && v != mv) {
					return false
				}
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		var keys []string
		tr.AscendFrom(nil, func(it Item) bool {
			keys = append(keys, string(it.Key))
			return true
		})
		if len(keys) != len(model) || !sort.StringsAreSorted(keys) {
			return false
		}
		for _, k := range keys {
			if _, ok := model[k]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeChurn(t *testing.T) {
	// Interleave inserts and deletes to exercise borrow/merge paths.
	tr := New()
	model := map[int]uint64{}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 30000; i++ {
		k := rng.Intn(2000)
		if rng.Intn(3) == 0 {
			_, ok := tr.Delete(key(k))
			_, existed := model[k]
			if ok != existed {
				t.Fatalf("delete mismatch at op %d key %d", i, k)
			}
			delete(model, k)
		} else {
			tr.Insert(key(k), uint64(i))
			model[k] = uint64(i)
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
	}
	for k, v := range model {
		got, ok := tr.Get(key(k))
		if !ok || got != v {
			t.Fatalf("Get(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New()
	keys := make([][]byte, b.N)
	for i := range keys {
		keys[i] = key(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(keys[i], uint64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Insert(key(i), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(key(i % n))
	}
}

// TestSnapshotIsolation pins the copy-on-write contract the engine's
// lock-free GET path depends on: a Snapshot taken at any point observes
// exactly the entries that were live at that point, bit-stable, no matter
// how much the original handle is mutated afterwards.
func TestSnapshotIsolation(t *testing.T) {
	tr := New()
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Insert(key(i), uint64(i))
	}
	snap := tr.Snapshot()

	// Churn the live tree hard: overwrite, delete, and insert far past the
	// snapshot, forcing splits, borrows, and merges at every level.
	for i := 0; i < n; i += 2 {
		tr.Delete(key(i))
	}
	for i := 0; i < n; i++ {
		tr.Insert(key(n+i), uint64(1000000+i))
	}
	for i := 1; i < n; i += 2 {
		tr.Insert(key(i), uint64(2000000+i))
	}

	if snap.Len() != n {
		t.Fatalf("snapshot Len = %d, want %d", snap.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := snap.Get(key(i))
		if !ok || v != uint64(i) {
			t.Fatalf("snapshot Get(%d) = %d,%v want %d", i, v, ok, i)
		}
	}
	if _, ok := snap.Get(key(n + 5)); ok {
		t.Fatal("snapshot sees a key inserted after it was taken")
	}
	count := 0
	var last []byte
	snap.AscendFrom(nil, func(it Item) bool {
		if last != nil && bytes.Compare(last, it.Key) >= 0 {
			t.Fatalf("snapshot out of order: %q after %q", it.Key, last)
		}
		last = append(last[:0], it.Key...)
		count++
		return true
	})
	if count != n {
		t.Fatalf("snapshot ascend visited %d entries, want %d", count, n)
	}
}

// TestSnapshotDeleteIsolation drives the delete restructuring paths (borrow
// left/right, merge, root collapse) against a model while holding snapshots,
// verifying both the live tree and the frozen views.
func TestSnapshotDeleteIsolation(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(42))
	model := map[int]uint64{}
	const span = 4000
	for i := 0; i < span; i++ {
		tr.Insert(key(i), uint64(i))
		model[i] = uint64(i)
	}
	type frozen struct {
		snap  *Tree
		model map[int]uint64
	}
	var snaps []frozen
	for round := 0; round < 6; round++ {
		m := make(map[int]uint64, len(model))
		for k, v := range model {
			m[k] = v
		}
		snaps = append(snaps, frozen{tr.Snapshot(), m})
		for i := 0; i < 1500; i++ {
			k := rng.Intn(span)
			if rng.Intn(3) == 0 {
				tr.Delete(key(k))
				delete(model, k)
			} else {
				v := uint64(round*10000 + i)
				tr.Insert(key(k), v)
				model[k] = v
			}
		}
	}
	check := func(name string, tr *Tree, model map[int]uint64) {
		if tr.Len() != len(model) {
			t.Fatalf("%s: Len = %d, model %d", name, tr.Len(), len(model))
		}
		for k, want := range model {
			got, ok := tr.Get(key(k))
			if !ok || got != want {
				t.Fatalf("%s: Get(%d) = %d,%v want %d", name, k, got, ok, want)
			}
		}
	}
	check("live", tr, model)
	for i, f := range snaps {
		check(fmt.Sprintf("snap%d", i), f.snap, f.model)
	}
}

// TestSnapshotConcurrentReads runs readers over snapshots while a single
// writer churns the handle — the engine's exact sharing pattern. Run under
// -race: any write to a reachable node is a detector hit.
func TestSnapshotConcurrentReads(t *testing.T) {
	tr := New()
	const n = 1024
	for i := 0; i < n; i++ {
		tr.Insert(key(i), uint64(i))
	}
	snapCh := make(chan *Tree, 64)
	done := make(chan struct{})
	go func() { // single writer
		defer close(snapCh)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 20000; i++ {
			k := rng.Intn(2 * n)
			if rng.Intn(4) == 0 {
				tr.Delete(key(k))
			} else {
				tr.Insert(key(k), uint64(i))
			}
			if i%256 == 0 {
				select {
				case snapCh <- tr.Snapshot():
				default:
				}
			}
		}
	}()
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for snap := range snapCh {
				var last []byte
				cnt := 0
				snap.AscendFrom(nil, func(it Item) bool {
					if last != nil && bytes.Compare(last, it.Key) >= 0 {
						t.Errorf("snapshot out of order: %q after %q", it.Key, last)
						return false
					}
					last = append(last[:0], it.Key...)
					cnt++
					return cnt < 4096
				})
				for i := 0; i < 64; i++ {
					snap.Get(key(i * 17 % (2 * n)))
				}
			}
		}()
	}
	readers.Wait()
	close(done)
	_ = done
}
