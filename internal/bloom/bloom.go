// Package bloom implements the bloom filters PrismDB keeps on NVM for every
// flash SST file (§4.1), preventing expensive flash I/O for absent keys.
//
// The implementation follows the standard partitioned double-hashing scheme
// (Kirsch–Mitzenmacher): two 64-bit FNV-derived hashes g1, g2 simulate k
// hash functions as g1 + i·g2.
package bloom

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Filter is a serializable bloom filter. The zero value is unusable; build
// with New or deserialize with FromBytes.
type Filter struct {
	bits []byte
	k    uint32
	m    uint64 // number of bits
	n    uint64 // keys added
}

// New creates a filter sized for the expected number of keys at the given
// false-positive rate. fpRate is clamped to [1e-6, 0.5].
func New(expectedKeys int, fpRate float64) *Filter {
	if expectedKeys < 1 {
		expectedKeys = 1
	}
	if fpRate < 1e-6 {
		fpRate = 1e-6
	}
	if fpRate > 0.5 {
		fpRate = 0.5
	}
	// m = -n·ln(p)/ln(2)^2 ; k = m/n·ln(2)
	m := uint64(math.Ceil(-float64(expectedKeys) * math.Log(fpRate) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := uint32(math.Round(float64(m) / float64(expectedKeys) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &Filter{bits: make([]byte, (m+7)/8), k: k, m: m}
}

// hash2 computes two independent 64-bit hashes of key using FNV-1a and a
// salted variant.
func hash2(key []byte) (uint64, uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h1 uint64 = offset64
	for _, b := range key {
		h1 ^= uint64(b)
		h1 *= prime64
	}
	// Second hash: run FNV over the first hash's bytes plus the key
	// length, which is independent enough for double hashing.
	var h2 uint64 = offset64 ^ 0x9e3779b97f4a7c15
	var lb [8]byte
	binary.LittleEndian.PutUint64(lb[:], h1^uint64(len(key)))
	for _, b := range lb {
		h2 ^= uint64(b)
		h2 *= prime64
	}
	if h2 == 0 {
		h2 = 1
	}
	return h1, h2
}

// Add inserts a key.
func (f *Filter) Add(key []byte) {
	h1, h2 := hash2(key)
	for i := uint32(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		f.bits[bit/8] |= 1 << (bit % 8)
	}
	f.n++
}

// MayContain reports whether the key may be present. False negatives are
// impossible.
func (f *Filter) MayContain(key []byte) bool {
	h1, h2 := hash2(key)
	for i := uint32(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		if f.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// Len returns the number of keys added.
func (f *Filter) Len() int { return int(f.n) }

// SizeBytes returns the in-memory/on-NVM footprint of the filter bits.
func (f *Filter) SizeBytes() int { return len(f.bits) + 16 }

// Bytes serializes the filter: [k u32][m u64][n u64][bits].
func (f *Filter) Bytes() []byte {
	out := make([]byte, 4+8+8+len(f.bits))
	binary.LittleEndian.PutUint32(out[0:], f.k)
	binary.LittleEndian.PutUint64(out[4:], f.m)
	binary.LittleEndian.PutUint64(out[12:], f.n)
	copy(out[20:], f.bits)
	return out
}

// FromBytes deserializes a filter produced by Bytes.
func FromBytes(data []byte) (*Filter, error) {
	if len(data) < 20 {
		return nil, fmt.Errorf("bloom: truncated filter (%d bytes)", len(data))
	}
	f := &Filter{
		k: binary.LittleEndian.Uint32(data[0:]),
		m: binary.LittleEndian.Uint64(data[4:]),
		n: binary.LittleEndian.Uint64(data[12:]),
	}
	if f.k == 0 || f.m == 0 {
		return nil, fmt.Errorf("bloom: corrupt header k=%d m=%d", f.k, f.m)
	}
	want := int((f.m + 7) / 8)
	if len(data)-20 < want {
		return nil, fmt.Errorf("bloom: bits truncated: have %d want %d", len(data)-20, want)
	}
	f.bits = make([]byte, want)
	copy(f.bits, data[20:20+want])
	return f, nil
}
