package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !f.MayContain([]byte(fmt.Sprintf("key-%d", i))) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
	if f.Len() != 1000 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := New(10000, 0.01)
	for i := 0; i < 10000; i++ {
		f.Add([]byte(fmt.Sprintf("present-%d", i)))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.MayContain([]byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("false positive rate %.4f, want ≲0.01", rate)
	}
}

func TestRoundTrip(t *testing.T) {
	f := New(100, 0.01)
	for i := 0; i < 100; i++ {
		f.Add([]byte{byte(i), byte(i >> 4)})
	}
	g, err := FromBytes(f.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !g.MayContain([]byte{byte(i), byte(i >> 4)}) {
			t.Fatalf("false negative after round trip, key %d", i)
		}
	}
	if g.Len() != f.Len() {
		t.Fatalf("Len mismatch %d vs %d", g.Len(), f.Len())
	}
}

func TestFromBytesErrors(t *testing.T) {
	if _, err := FromBytes(nil); err == nil {
		t.Fatal("nil input should fail")
	}
	if _, err := FromBytes(make([]byte, 10)); err == nil {
		t.Fatal("short input should fail")
	}
	f := New(10, 0.01)
	b := f.Bytes()
	if _, err := FromBytes(b[:len(b)-1]); err == nil {
		t.Fatal("truncated bits should fail")
	}
	corrupt := make([]byte, 20)
	if _, err := FromBytes(corrupt); err == nil {
		t.Fatal("zero header should fail")
	}
}

func TestClampedParameters(t *testing.T) {
	// Degenerate inputs must still produce a working filter.
	for _, tc := range []struct {
		n  int
		fp float64
	}{{0, 0.01}, {10, 0}, {10, 1.0}, {1, 1e-12}} {
		f := New(tc.n, tc.fp)
		f.Add([]byte("x"))
		if !f.MayContain([]byte("x")) {
			t.Fatalf("false negative with n=%d fp=%g", tc.n, tc.fp)
		}
	}
}

func TestQuickNoFalseNegatives(t *testing.T) {
	// Property: any set of random keys added is always reported present,
	// including after serialization.
	f := func(keys [][]byte) bool {
		fl := New(len(keys)+1, 0.01)
		for _, k := range keys {
			fl.Add(k)
		}
		rt, err := FromBytes(fl.Bytes())
		if err != nil {
			return false
		}
		for _, k := range keys {
			if !fl.MayContain(k) || !rt.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeScalesWithKeys(t *testing.T) {
	small := New(100, 0.01)
	big := New(100000, 0.01)
	if big.SizeBytes() <= small.SizeBytes() {
		t.Fatalf("size should grow with expected keys: %d vs %d",
			big.SizeBytes(), small.SizeBytes())
	}
}
