package mapper

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPaperWorkedExample(t *testing.T) {
	// §4.3: distribution like YCSB-B — 10% clock 3, 10% clock 2,
	// 30% clock 1, 50% clock 0; threshold 15%.
	m := New(0.15)
	d := m.NewDecider([4]int{500, 300, 100, 100})
	if p := d.PinProbability(3); p != 1 {
		t.Fatalf("clock 3 pin prob = %f, want 1 (always pinned)", p)
	}
	if p := d.PinProbability(2); p != 0.5 {
		t.Fatalf("clock 2 pin prob = %f, want 0.5", p)
	}
	if p := d.PinProbability(1); p != 0 {
		t.Fatalf("clock 1 pin prob = %f, want 0", p)
	}
	if p := d.PinProbability(0); p != 0 {
		t.Fatalf("clock 0 pin prob = %f, want 0", p)
	}
}

func TestThresholdBoundaries(t *testing.T) {
	dist := [4]int{100, 100, 100, 100}
	// Zero threshold pins nothing.
	d0 := New(0).NewDecider(dist)
	for v := 0; v < 4; v++ {
		if d0.PinProbability(v) != 0 {
			t.Fatalf("threshold 0 pins clock %d", v)
		}
	}
	// Threshold 1 pins everything tracked.
	d1 := New(1).NewDecider(dist)
	for v := 0; v < 4; v++ {
		if d1.PinProbability(v) != 1 {
			t.Fatalf("threshold 1 does not pin clock %d", v)
		}
	}
	// Out-of-range thresholds clamp.
	if New(-5).Threshold != 0 || New(5).Threshold != 1 {
		t.Fatal("threshold clamping failed")
	}
}

func TestEmptyDistribution(t *testing.T) {
	d := New(0.5).NewDecider([4]int{})
	for v := 0; v < 4; v++ {
		if d.PinProbability(v) != 0 {
			t.Fatal("empty distribution should pin nothing")
		}
	}
}

func TestUntrackedNeverPinned(t *testing.T) {
	d := New(1).NewDecider([4]int{10, 10, 10, 10})
	rng := rand.New(rand.NewSource(1))
	if d.ShouldPin(3, false, rng) {
		t.Fatal("untracked object pinned")
	}
	if d.PinProbability(-1) != 0 || d.PinProbability(4) != 0 {
		t.Fatal("out-of-range clock pinned")
	}
}

func TestShouldPinSampling(t *testing.T) {
	// Boundary clock value should be pinned with the exact fractional
	// probability, in expectation.
	m := New(0.15)
	d := m.NewDecider([4]int{500, 300, 100, 100})
	rng := rand.New(rand.NewSource(42))
	pinned := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if d.ShouldPin(2, true, rng) {
			pinned++
		}
	}
	got := float64(pinned) / trials
	if got < 0.47 || got > 0.53 {
		t.Fatalf("clock-2 pin rate = %f, want ≈0.5", got)
	}
}

func TestQuickExpectedPinnedMatchesThreshold(t *testing.T) {
	// Property: Σ dist[v]·prob[v] ≈ threshold·total (within rounding),
	// and probabilities are monotone in clock value.
	f := func(d0, d1, d2, d3 uint16, thRaw uint8) bool {
		dist := [4]int{int(d0) % 1000, int(d1) % 1000, int(d2) % 1000, int(d3) % 1000}
		total := dist[0] + dist[1] + dist[2] + dist[3]
		th := float64(thRaw%101) / 100
		dec := New(th).NewDecider(dist)
		var expected float64
		for v := 0; v < 4; v++ {
			p := dec.PinProbability(v)
			if p < 0 || p > 1 {
				return false
			}
			expected += p * float64(dist[v])
		}
		if total == 0 {
			return expected == 0
		}
		want := th * float64(total)
		if diff := expected - want; diff > 1e-6 || diff < -1e-6 {
			return false
		}
		// Monotone: higher clock value never less likely to be pinned
		// (among non-empty classes).
		last := 2.0
		for v := 3; v >= 0; v-- {
			if dist[v] == 0 {
				continue
			}
			p := dec.PinProbability(v)
			if p > last+1e-12 {
				return false
			}
			last = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
