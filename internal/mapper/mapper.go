// Package mapper implements PrismDB's pinning-threshold algorithm (§4.3):
// given the tracker's clock-value distribution, decide which objects are
// "popular enough" to stay on NVM. The mapper satisfies the threshold using
// the highest-ranked clock values by descending rank and, at the boundary
// clock value, randomly samples objects with the probability that exactly
// meets the threshold.
package mapper

import "math/rand"

// NumClockValues is the number of distinct clock values (2-bit clock).
const NumClockValues = 4

// Mapper converts a pinning threshold plus a clock distribution into
// per-object pin decisions.
type Mapper struct {
	// Threshold is the fraction of *tracked* objects that should be
	// pinned on NVM (the paper expresses it as a percentage of the
	// tracker size, §7.4).
	Threshold float64
}

// New creates a mapper with the given pinning threshold in [0, 1].
func New(threshold float64) *Mapper {
	if threshold < 0 {
		threshold = 0
	}
	if threshold > 1 {
		threshold = 1
	}
	return &Mapper{Threshold: threshold}
}

// Decider is a snapshot of pin probabilities per clock value, computed once
// per compaction pass from the current distribution.
type Decider struct {
	// probs[v] is the probability an object with clock value v is pinned.
	probs [NumClockValues]float64
}

// NewDecider computes the per-clock-value pin probabilities for the given
// distribution. Walking from the highest clock value down: fully pin values
// that fit in the threshold budget, take a random fraction of the boundary
// value, and demote everything below (§4.3's worked example).
func (m *Mapper) NewDecider(dist [NumClockValues]int) Decider {
	var d Decider
	total := 0
	for _, n := range dist {
		total += n
	}
	if total == 0 {
		return d
	}
	budget := m.Threshold * float64(total)
	for v := NumClockValues - 1; v >= 0; v-- {
		n := float64(dist[v])
		if n == 0 {
			continue
		}
		switch {
		case budget >= n:
			d.probs[v] = 1
			budget -= n
		case budget > 0:
			d.probs[v] = budget / n
			budget = 0
		default:
			d.probs[v] = 0
		}
	}
	return d
}

// PinProbability returns the probability an object with the given clock
// value is pinned. Untracked objects (clock < 0) are never pinned.
func (d Decider) PinProbability(clock int) float64 {
	if clock < 0 || clock >= NumClockValues {
		return 0
	}
	return d.probs[clock]
}

// ShouldPin decides whether to keep an object with the given clock value on
// NVM. tracked=false objects are always demoted (the tracker does not track
// all keys; untracked means cold). rng drives the random sampling at the
// boundary clock value.
func (d Decider) ShouldPin(clock int, tracked bool, rng *rand.Rand) bool {
	if !tracked {
		return false
	}
	p := d.PinProbability(clock)
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	return rng.Float64() < p
}
