package slab

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/prismdb/prismdb/internal/simdev"
)

func newManager(t *testing.T) (*Manager, *simdev.Device) {
	t.Helper()
	dev := simdev.New(simdev.NVMParams(256 << 20))
	m, err := NewManager(dev, simdev.NewPageCache(1<<20), "p0-slab", nil)
	if err != nil {
		t.Fatal(err)
	}
	return m, dev
}

func TestPutGetRoundTrip(t *testing.T) {
	m, _ := newManager(t)
	clk := simdev.NewClock()
	rec := Record{Key: []byte("alpha"), Value: []byte("beta"), Version: 7}
	loc, err := m.Put(clk, rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Get(clk, loc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Key, rec.Key) || !bytes.Equal(got.Value, rec.Value) ||
		got.Version != 7 || got.Tombstone {
		t.Fatalf("got %+v", got)
	}
	if m.LiveObjects() != 1 {
		t.Fatalf("LiveObjects = %d", m.LiveObjects())
	}
}

func TestZeroVersionRejected(t *testing.T) {
	m, _ := newManager(t)
	if _, err := m.Put(nil, Record{Key: []byte("k"), Version: 0}); err == nil {
		t.Fatal("zero version must be rejected (0 marks free slots)")
	}
}

func TestClassSelection(t *testing.T) {
	m, _ := newManager(t)
	// 128-byte class fits payloads up to 112 bytes.
	if ci := m.ClassOf(10, 100); ci != 0 {
		t.Fatalf("ClassOf(110) = %d, want 0", ci)
	}
	if ci := m.ClassOf(10, 103); ci != 1 {
		t.Fatalf("ClassOf(113) = %d, want 1", ci)
	}
	if ci := m.ClassOf(10, 4096); ci != -1 {
		t.Fatalf("oversize ClassOf = %d, want -1", ci)
	}
	loc, err := m.Put(nil, Record{Key: make([]byte, 10), Value: make([]byte, 500), Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 10+500+16 = 526 bytes: smallest fitting class is 768.
	if m.SlotSize(loc) != 768 {
		t.Fatalf("SlotSize = %d, want 768", m.SlotSize(loc))
	}
}

func TestInPlaceUpdate(t *testing.T) {
	m, _ := newManager(t)
	clk := simdev.NewClock()
	loc, _ := m.Put(clk, Record{Key: []byte("k"), Value: []byte("v1"), Version: 1})
	if err := m.Update(clk, loc, Record{Key: []byte("k"), Value: []byte("v2"), Version: 2}); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Get(clk, loc)
	if string(got.Value) != "v2" || got.Version != 2 {
		t.Fatalf("got %+v", got)
	}
	if m.LiveObjects() != 1 {
		t.Fatalf("LiveObjects = %d after in-place update", m.LiveObjects())
	}
	// Update that doesn't fit the class must fail.
	big := Record{Key: []byte("k"), Value: make([]byte, 300), Version: 3}
	if err := m.Update(clk, loc, big); err == nil {
		t.Fatal("oversized in-place update must fail")
	}
}

func TestDeleteFreesAndReuses(t *testing.T) {
	m, _ := newManager(t)
	loc1, _ := m.Put(nil, Record{Key: []byte("a"), Value: []byte("1"), Version: 1})
	if err := m.Delete(nil, loc1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(nil, loc1); !errors.Is(err, ErrSlotFree) {
		t.Fatalf("Get after delete = %v, want ErrSlotFree", err)
	}
	if m.LiveObjects() != 0 || m.LiveBytes() != 0 {
		t.Fatalf("live=%d bytes=%d", m.LiveObjects(), m.LiveBytes())
	}
	// Lowest free slot is reused first.
	loc2, _ := m.Put(nil, Record{Key: []byte("b"), Value: []byte("2"), Version: 2})
	if loc2 != loc1 {
		t.Fatalf("slot not reused: %v vs %v", loc2, loc1)
	}
}

func TestFreeSlotsSortedByLocation(t *testing.T) {
	// The tiny-object optimisation: freeing slots 5,1,3 must hand back
	// slot 1 first.
	m, _ := newManager(t)
	var locs []Loc
	for i := 0; i < 8; i++ {
		l, _ := m.Put(nil, Record{Key: []byte{byte(i)}, Value: []byte("v"), Version: uint64(i + 1)})
		locs = append(locs, l)
	}
	m.Delete(nil, locs[5])
	m.Delete(nil, locs[1])
	m.Delete(nil, locs[3])
	l, _ := m.Put(nil, Record{Key: []byte("x"), Value: []byte("v"), Version: 99})
	if l.Slot() != locs[1].Slot() {
		t.Fatalf("reused slot %d, want lowest free %d", l.Slot(), locs[1].Slot())
	}
}

func TestTombstone(t *testing.T) {
	m, _ := newManager(t)
	loc, _ := m.Put(nil, Record{Key: []byte("dead"), Version: 5, Tombstone: true})
	got, err := m.Get(nil, loc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Tombstone {
		t.Fatal("tombstone flag lost")
	}
}

func TestRecoverRebuildsState(t *testing.T) {
	dev := simdev.New(simdev.NVMParams(256 << 20))
	m1, _ := NewManager(dev, nil, "p0-slab", nil)
	type entry struct {
		loc Loc
		rec Record
	}
	var live []entry
	for i := 0; i < 200; i++ {
		rec := Record{
			Key:     []byte(fmt.Sprintf("key-%04d", i)),
			Value:   bytes.Repeat([]byte{byte(i)}, 50+i%500),
			Version: uint64(i + 1),
		}
		loc, err := m1.Put(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, entry{loc, rec})
	}
	// Delete every third object.
	want := map[string]entry{}
	for i, e := range live {
		if i%3 == 0 {
			m1.Delete(nil, e.loc)
		} else {
			want[string(e.rec.Key)] = e
		}
	}
	// "Crash": reopen the slabs from the same device files.
	m2, err := NewManager(dev, nil, "p0-slab", nil)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]Record{}
	if err := m2.Recover(simdev.NewClock(), func(loc Loc, rec Record) {
		got[string(rec.Key)] = rec
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for k, e := range want {
		r, ok := got[k]
		if !ok || !bytes.Equal(r.Value, e.rec.Value) || r.Version != e.rec.Version {
			t.Fatalf("key %q: got %+v want %+v", k, r, e.rec)
		}
	}
	if m2.LiveObjects() != len(want) {
		t.Fatalf("LiveObjects = %d, want %d", m2.LiveObjects(), len(want))
	}
	// Freed slots are reusable after recovery.
	if _, err := m2.Put(nil, Record{Key: []byte("new"), Value: []byte("v"), Version: 999}); err != nil {
		t.Fatal(err)
	}
}

func TestPutChargesDeviceWrite(t *testing.T) {
	m, dev := newManager(t)
	clk := simdev.NewClock()
	m.Put(clk, Record{Key: []byte("k"), Value: []byte("v"), Version: 1})
	st := dev.Stats()
	if st.WriteOps != 1 {
		t.Fatalf("WriteOps = %d, want 1 (synchronous slab write)", st.WriteOps)
	}
	if clk.Now() == 0 {
		t.Fatal("clock not advanced by synchronous write")
	}
}

func TestGetUsesPageCache(t *testing.T) {
	dev := simdev.New(simdev.NVMParams(256 << 20))
	cache := simdev.NewPageCache(1 << 20)
	m, _ := NewManager(dev, cache, "p0-slab", nil)
	clk := simdev.NewClock()
	loc, _ := m.Put(clk, Record{Key: []byte("k"), Value: []byte("v"), Version: 1})
	dev.ResetStats()
	// The write left the page resident, so this read is free.
	if _, err := m.Get(clk, loc); err != nil {
		t.Fatal(err)
	}
	if st := dev.Stats(); st.ReadOps != 0 {
		t.Fatalf("ReadOps = %d, want 0 (page-cache hit)", st.ReadOps)
	}
}

func TestLiveBytesAccounting(t *testing.T) {
	m, _ := newManager(t)
	loc, _ := m.Put(nil, Record{Key: []byte("a"), Value: make([]byte, 100), Version: 1})
	if m.LiveBytes() != 128 {
		t.Fatalf("LiveBytes = %d, want 128", m.LiveBytes())
	}
	m.Put(nil, Record{Key: []byte("b"), Value: make([]byte, 900), Version: 2})
	if m.LiveBytes() != 128+1024 {
		t.Fatalf("LiveBytes = %d, want %d", m.LiveBytes(), 128+1024)
	}
	m.Delete(nil, loc)
	if m.LiveBytes() != 1024 {
		t.Fatalf("LiveBytes = %d after delete, want 1024", m.LiveBytes())
	}
	if m.AllocatedBytes() <= m.LiveBytes() {
		t.Fatal("allocated should exceed live (slabs grow in extents)")
	}
}

func TestQuickSlabModel(t *testing.T) {
	// Property: random put/update/delete sequences keep the slab
	// equivalent to a map keyed by location.
	type op struct {
		Kind byte
		Idx  uint8
		Size uint16
	}
	f := func(ops []op) bool {
		dev := simdev.New(simdev.NVMParams(512 << 20))
		m, err := NewManager(dev, nil, "q-slab", nil)
		if err != nil {
			return false
		}
		model := map[Loc]Record{}
		var locs []Loc
		version := uint64(1)
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0: // put
				rec := Record{
					Key:     []byte(fmt.Sprintf("k%d", o.Idx)),
					Value:   make([]byte, int(o.Size)%2000),
					Version: version,
				}
				version++
				loc, err := m.Put(nil, rec)
				if err != nil {
					return false
				}
				if _, exists := model[loc]; exists {
					return false // double allocation!
				}
				model[loc] = rec
				locs = append(locs, loc)
			case 1: // delete random live loc
				if len(locs) == 0 {
					continue
				}
				loc := locs[int(o.Idx)%len(locs)]
				if _, live := model[loc]; !live {
					continue
				}
				if err := m.Delete(nil, loc); err != nil {
					return false
				}
				delete(model, loc)
			case 2: // verify random live loc
				if len(locs) == 0 {
					continue
				}
				loc := locs[int(o.Idx)%len(locs)]
				want, live := model[loc]
				got, err := m.Get(nil, loc)
				if live {
					if err != nil || !bytes.Equal(got.Value, want.Value) || got.Version != want.Version {
						return false
					}
				} else if !errors.Is(err, ErrSlotFree) {
					return false
				}
			}
		}
		return m.LiveObjects() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestManyObjectsAcrossGrowth(t *testing.T) {
	m, _ := newManager(t)
	rng := rand.New(rand.NewSource(1))
	locs := map[string]Loc{}
	for i := 0; i < 3000; i++ { // > growSlots to force extension
		k := fmt.Sprintf("key-%05d", i)
		v := make([]byte, rng.Intn(100))
		loc, err := m.Put(nil, Record{Key: []byte(k), Value: v, Version: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		locs[k] = loc
	}
	for k, loc := range locs {
		rec, err := m.Get(nil, loc)
		if err != nil || string(rec.Key) != k {
			t.Fatalf("key %s: rec %+v err %v", k, rec, err)
		}
	}
}

func TestBadClassConfig(t *testing.T) {
	dev := simdev.New(simdev.NVMParams(1 << 20))
	if _, err := NewManager(dev, nil, "x", []int{8}); err == nil {
		t.Fatal("class smaller than header must fail")
	}
	if _, err := NewManager(dev, nil, "y", []int{128, 128}); err == nil {
		t.Fatal("non-increasing classes must fail")
	}
}
