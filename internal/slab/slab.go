// Package slab implements PrismDB's NVM data layout (§4.1): a set of slab
// files, each dedicated to a size class, holding fixed-size slots. NVM
// supports fast random writes and in-place updates, so new data and updates
// go directly into slots; objects keep a small metadata header carrying a
// version (logical timestamp) and size information used for crash recovery.
//
// Free slots are kept sorted by disk location (a min-heap), implementing the
// paper's tiny-object optimisation: consecutive inserts land on the same OS
// page (§7.3).
package slab

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/prismdb/prismdb/internal/simdev"
)

// DefaultClasses is the default slot-size ladder. A record (header + key +
// value) is placed in the smallest class that fits. The paper's examples use
// 100 B…1 KB classes for ≤4 KB objects; the ladder below keeps internal
// fragmentation under ~25% across that range (a 1 KB object with key and
// header lands in the 1152 B class).
var DefaultClasses = []int{128, 192, 256, 384, 512, 768, 1024, 1152, 1536, 2048, 3072, 4096}

// headerSize is the per-slot metadata header:
//
//	version   uint64  logical timestamp (0 ⇒ slot free)
//	keyLen    uint16
//	valLen    uint16
//	flags     uint8   (bit 0: tombstone)
//	crc24     [3]byte integrity checksum (see slotCRC)
const headerSize = 16

// slotCRCTable is the Castagnoli polynomial used for slot checksums.
var slotCRCTable = crc32.MakeTable(crc32.Castagnoli)

// slotCRC computes the 24-bit integrity checksum stored in the header's
// last three bytes: a Castagnoli CRC over the header's first 13 bytes
// (version, lengths, flags) and the key+value payload, truncated to 24
// bits. 24 bits keep the slot layout — and so every capacity calculation —
// unchanged while still catching bit rot with ~1/16M odds of a silent miss,
// plenty for a scrubber whose job is detection, not correction.
func slotCRC(buf []byte, payload int) uint32 {
	crc := crc32.Update(0, slotCRCTable, buf[:13])
	crc = crc32.Update(crc, slotCRCTable, buf[headerSize:headerSize+payload])
	return crc & 0xffffff
}

// flagTombstone marks a slot holding a delete tombstone for a key that may
// still have an older version on flash.
const flagTombstone = 1

// ErrSlotFree is returned when reading a slot that holds no live object.
var ErrSlotFree = errors.New("slab: slot is free")

// Loc identifies an object's location: slab class index plus slot number,
// packed so the engine can store it in a B-tree uint64 value (the paper uses
// a 1-byte slab ID plus a 4-byte page offset).
type Loc uint64

// NewLoc packs a class index and slot number.
func NewLoc(class int, slot uint32) Loc {
	return Loc(uint64(class)<<32 | uint64(slot))
}

// Class returns the slab class index.
func (l Loc) Class() int { return int(uint64(l) >> 32) }

// Slot returns the slot number within the class's slab file.
func (l Loc) Slot() uint32 { return uint32(uint64(l)) }

// Record is a stored object.
type Record struct {
	Key       []byte
	Value     []byte
	Version   uint64
	Tombstone bool
}

// slotHeap is a min-heap of slot indices, so the lowest-address free slot is
// always reused first (keeps consecutive writes on the same OS page).
type slotHeap []uint32

func (h slotHeap) Len() int            { return len(h) }
func (h slotHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h slotHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x interface{}) { *h = append(*h, x.(uint32)) }
func (h *slotHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// slabFile is one size class's storage.
type slabFile struct {
	slotSize int
	file     *simdev.File
	nSlots   uint32   // slots allocated (file size / slotSize)
	free     slotHeap // free slot indices
	live     uint32   // slots in use
}

// growBytes is the extent size by which a slab file grows when it runs out
// of free slots (rounded up to at least 64 slots), keeping allocation
// granularity small relative to scaled-down NVM budgets.
const growBytes = 64 << 10

// Manager owns the slab files of one partition on one NVM device.
// It is not internally synchronized (partition-lock discipline).
type Manager struct {
	dev     *simdev.Device
	cache   *simdev.PageCache
	classes []int
	slabs   []*slabFile
	name    string // file-name prefix, e.g. "p3-slab"

	liveBytes int64 // sum of slot sizes currently in use

	// Epoch pinning (scan snapshots): while pins > 0, freed slots keep
	// their contents readable and are not reused — they queue on deferred
	// and are physically zeroed and recycled when the last pin releases.
	// The device write a free implies is still charged at free time (the
	// deferral stands in for the epoch-based reclamation a real engine
	// would use), so time accounting is identical with and without pins.
	pins     int
	deferred []Loc
	// handedOut counts slots released by UnpinEpochDeferred whose off-lock
	// zeroing has not yet been confirmed by RecycleSlots. Together with
	// len(deferred) it tells DeferredDirty whether the slab files are a
	// complete image of the logical state.
	handedOut int

	// scratch is the reused slot I/O buffer. The Manager is single-owner
	// (partition-lock discipline), so one buffer serves every read and
	// write; records returned by GetScratch alias it and are valid only
	// until the next Manager call.
	scratch []byte
}

// PinEpoch opens a reclamation epoch: until the matching UnpinEpoch, slots
// freed by Delete/FreeSlot stay readable at their old locations and are not
// handed back to Put. Iterators pin an epoch so a snapshot of (key, Loc)
// pairs taken under the partition lock stays dereferenceable for the whole
// scan, across concurrent deletes and compaction demotions. Pins nest.
func (m *Manager) PinEpoch() { m.pins++ }

// UnpinEpoch closes an epoch. When the last pin releases, every deferred
// slot is zeroed (crash safety: a recovery scan must not resurrect it) and
// returned to its class's free heap. The zero writes were already charged
// when the frees happened.
func (m *Manager) UnpinEpoch() {
	m.pins--
	if m.pins > 0 {
		return
	}
	if m.pins < 0 {
		panic("slab: UnpinEpoch without matching PinEpoch")
	}
	var hdr [headerSize]byte
	for _, loc := range m.deferred {
		sf := m.slabs[loc.Class()]
		off := int64(loc.Slot()) * int64(sf.slotSize)
		if err := sf.file.WriteAt(hdr[:], off); err != nil {
			panic(fmt.Sprintf("slab: deferred free of slot %d: %v", loc.Slot(), err))
		}
		heap.Push(&sf.free, loc.Slot())
	}
	m.deferred = m.deferred[:0]
}

// UnpinEpochDeferred closes an epoch like UnpinEpoch but hands the
// finishing work to the caller: when the last pin releases, the deferred
// slots are returned un-zeroed and un-recycled (and the deferred list is
// reset). The caller zeroes them with ZeroSlot — which is safe to call
// WITHOUT the owner's lock — and then returns them to the free heaps with
// RecycleSlots under the lock. Background compaction commits use this to
// keep the per-slot zeroing writes out of the partition's critical
// section. While pins remain (or nothing was deferred) it returns nil.
func (m *Manager) UnpinEpochDeferred() []Loc {
	m.pins--
	if m.pins > 0 {
		return nil
	}
	if m.pins < 0 {
		panic("slab: UnpinEpochDeferred without matching PinEpoch")
	}
	locs := m.deferred
	m.deferred = nil
	m.handedOut += len(locs)
	return locs
}

// ZeroSlot zeroes a freed slot's header (crash safety: a recovery scan
// must not resurrect it). It touches only the slab file, which is
// internally synchronized, so — unlike every other Manager method — it may
// run concurrently with foreground operations, PROVIDED the slot is
// logically free and unreachable (e.g. it came from UnpinEpochDeferred).
// The device-time charge for this write was already taken at free time.
func (m *Manager) ZeroSlot(loc Loc) error {
	// No nSlots bounds check: that field is mutated by (owner-locked)
	// grows this method must not race with; the loc's validity is the
	// caller's contract, and the file itself still bounds-checks.
	ci := loc.Class()
	if ci < 0 || ci >= len(m.slabs) {
		return fmt.Errorf("slab: bad class %d in loc", ci)
	}
	sf := m.slabs[ci]
	var hdr [headerSize]byte
	off := int64(loc.Slot()) * int64(sf.slotSize)
	return sf.file.WriteAt(hdr[:], off)
}

// RecycleSlots returns zeroed slots to their free heaps (owner-locked,
// like the rest of the Manager).
func (m *Manager) RecycleSlots(locs []Loc) {
	m.handedOut -= len(locs)
	for _, loc := range locs {
		heap.Push(&m.slabs[loc.Class()].free, loc.Slot())
	}
}

// DeferredDirty reports whether any freed slot's zeroing write has not yet
// been issued to the backing file: slots parked on the deferred list by an
// open reclamation epoch, plus slots handed out by UnpinEpochDeferred whose
// off-lock zeroing RecycleSlots has not yet confirmed. While true, the slab
// files are NOT a complete image of the logical state — an fsync of them
// does not make the WAL records covering those frees redundant, so a
// checkpoint must be refused (see core's syncSlabs).
func (m *Manager) DeferredDirty() bool {
	return len(m.deferred) > 0 || m.handedOut > 0
}

// ReadSlotInto reads the record at loc into buf (grown as needed),
// returning views into it. It deliberately avoids the Manager's shared
// scratch buffer and touches only internally-synchronized state (the slab
// file, the page cache, the device), so it may run concurrently with
// foreground operations on the same Manager — the background compactor's
// record reads use it off the partition lock. The caller must guarantee
// loc stays valid for the duration: an open reclamation epoch covering the
// slot (freed slots stay readable, updates go copy-on-write) is exactly
// that guarantee.
func (m *Manager) ReadSlotInto(clk *simdev.Clock, loc Loc, buf []byte) (Record, []byte, error) {
	// See ZeroSlot for why there is no nSlots bounds check here.
	ci := loc.Class()
	if ci < 0 || ci >= len(m.slabs) {
		return Record{}, buf, fmt.Errorf("slab: bad class %d in loc", ci)
	}
	sf := m.slabs[ci]
	if cap(buf) < sf.slotSize {
		buf = make([]byte, sf.slotSize)
	}
	buf = buf[:sf.slotSize]
	off := int64(loc.Slot()) * int64(sf.slotSize)
	if err := sf.file.ReadAt(buf, off); err != nil {
		return Record{}, buf, err
	}
	m.chargeRead(clk, sf, off, int64(sf.slotSize))
	rec, err := decodeView(buf)
	return rec, buf, err
}

// VerifySlot reads the slot at loc into buf (grown as needed) and checks
// its stored CRC against a recomputation — the scrubber's read. Like
// ReadSlotInto it touches only internally-synchronized state and so may run
// off the partition lock, provided an open reclamation epoch keeps loc
// valid; unlike it, no clock is charged and the page cache is not touched,
// so a scrub pass never perturbs the simulation's timing or cache state. A
// free slot verifies trivially. ok=false with a nil error means the slot is
// live but its contents no longer match the checksum — bit rot.
func (m *Manager) VerifySlot(loc Loc, buf []byte) (ok bool, _ []byte, err error) {
	ci := loc.Class()
	if ci < 0 || ci >= len(m.slabs) {
		return false, buf, fmt.Errorf("slab: bad class %d in loc", ci)
	}
	sf := m.slabs[ci]
	if cap(buf) < sf.slotSize {
		buf = make([]byte, sf.slotSize)
	}
	buf = buf[:sf.slotSize]
	off := int64(loc.Slot()) * int64(sf.slotSize)
	if err := sf.file.ReadAt(buf, off); err != nil {
		return false, buf, err
	}
	if binary.LittleEndian.Uint64(buf[0:]) == 0 {
		return true, buf, nil // free slot: nothing to protect
	}
	kl := int(binary.LittleEndian.Uint16(buf[8:]))
	vl := int(binary.LittleEndian.Uint16(buf[10:]))
	if headerSize+kl+vl > len(buf) {
		return false, buf, nil // lengths themselves are rotted
	}
	stored := uint32(buf[13]) | uint32(buf[14])<<8 | uint32(buf[15])<<16
	return slotCRC(buf, kl+vl) == stored, buf, nil
}

// Pinned reports whether a reclamation epoch is open. The engine's write
// path consults it to turn in-place updates into copy-on-write ones, so a
// pinned reader never observes a value written after its snapshot.
func (m *Manager) Pinned() bool { return m.pins > 0 }

// buf returns the scratch buffer sized to n bytes.
func (m *Manager) buf(n int) []byte {
	if cap(m.scratch) < n {
		m.scratch = make([]byte, n)
	}
	return m.scratch[:n]
}

// NewManager creates (or reopens) the slab files for a partition. The cache
// models the OS page cache; it may be shared across partitions. Existing
// files with matching names are reopened, which is how recovery works.
func NewManager(dev *simdev.Device, cache *simdev.PageCache, namePrefix string, classes []int) (*Manager, error) {
	if len(classes) == 0 {
		classes = DefaultClasses
	}
	m := &Manager{dev: dev, cache: cache, classes: classes, name: namePrefix}
	for i, sz := range classes {
		if sz < headerSize+1 {
			return nil, fmt.Errorf("slab: class %d size %d too small", i, sz)
		}
		if i > 0 && sz <= classes[i-1] {
			return nil, fmt.Errorf("slab: classes must be strictly increasing")
		}
		fname := fmt.Sprintf("%s-c%d", namePrefix, sz)
		f, err := dev.OpenFile(fname)
		if err != nil {
			f, err = dev.CreateFile(fname)
			if err != nil {
				return nil, err
			}
		}
		sf := &slabFile{slotSize: sz, file: f, nSlots: uint32(f.Size() / int64(sz))}
		m.slabs = append(m.slabs, sf)
	}
	return m, nil
}

// classFor returns the index of the smallest class fitting a record of
// keyLen+valLen payload bytes, or -1 if the object is too large.
func (m *Manager) classFor(payload int) int {
	need := payload + headerSize
	for i, sz := range m.classes {
		if sz >= need {
			return i
		}
	}
	return -1
}

// ClassOf exposes class selection for callers that need to know whether an
// in-place update is possible (same class ⇒ same slot).
func (m *Manager) ClassOf(keyLen, valLen int) int { return m.classFor(keyLen + valLen) }

// LiveBytes returns the bytes held by in-use slots; the engine's NVM
// watermark logic is driven by this.
func (m *Manager) LiveBytes() int64 { return m.liveBytes }

// AllocatedBytes returns the total size of all slab files.
func (m *Manager) AllocatedBytes() int64 {
	var n int64
	for _, s := range m.slabs {
		n += s.file.Size()
	}
	return n
}

// Sync flushes every slab file's backing store to stable storage (a no-op
// on in-memory devices). Unlike the rest of the Manager it is safe to call
// concurrently with slot writes: it only touches the files, which never
// change identity after NewManager, and a checkpoint that races a write is
// covered either by this fsync or by the write's WAL record.
func (m *Manager) Sync() error {
	for _, s := range m.slabs {
		if err := s.file.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// LiveObjects returns the number of in-use slots.
func (m *Manager) LiveObjects() int {
	var n int
	for _, s := range m.slabs {
		n += int(s.live)
	}
	return n
}

// encode serializes a record into a slot-size buffer.
func encode(buf []byte, rec Record) {
	binary.LittleEndian.PutUint64(buf[0:], rec.Version)
	binary.LittleEndian.PutUint16(buf[8:], uint16(len(rec.Key)))
	binary.LittleEndian.PutUint16(buf[10:], uint16(len(rec.Value)))
	var flags byte
	if rec.Tombstone {
		flags |= flagTombstone
	}
	buf[12] = flags
	copy(buf[headerSize:], rec.Key)
	copy(buf[headerSize+len(rec.Key):], rec.Value)
	crc := slotCRC(buf, len(rec.Key)+len(rec.Value))
	buf[13], buf[14], buf[15] = byte(crc), byte(crc>>8), byte(crc>>16)
}

// decodeView parses a slot buffer into a record whose Key and Value alias
// buf. A zero version means the slot is free.
func decodeView(buf []byte) (Record, error) {
	version := binary.LittleEndian.Uint64(buf[0:])
	if version == 0 {
		return Record{}, ErrSlotFree
	}
	kl := int(binary.LittleEndian.Uint16(buf[8:]))
	vl := int(binary.LittleEndian.Uint16(buf[10:]))
	if headerSize+kl+vl > len(buf) {
		return Record{}, fmt.Errorf("slab: corrupt slot header kl=%d vl=%d slot=%d", kl, vl, len(buf))
	}
	rec := Record{
		Key:       buf[headerSize : headerSize+kl],
		Value:     buf[headerSize+kl : headerSize+kl+vl],
		Version:   version,
		Tombstone: buf[12]&flagTombstone != 0,
	}
	return rec, nil
}

// decode parses a slot buffer into an owning record (fresh copies).
func decode(buf []byte) (Record, error) {
	rec, err := decodeView(buf)
	if err != nil {
		return rec, err
	}
	rec.Key = append([]byte(nil), rec.Key...)
	rec.Value = append([]byte(nil), rec.Value...)
	return rec, nil
}

// Put writes a record into a free slot of the right class and returns its
// location. Writes are synchronous (one page write to the NVM device), as
// PrismDB commits client writes to their slab locations for crash recovery
// instead of keeping a WAL (§6).
func (m *Manager) Put(clk *simdev.Clock, rec Record) (Loc, error) {
	if rec.Version == 0 {
		return 0, errors.New("slab: version must be non-zero")
	}
	ci := m.classFor(len(rec.Key) + len(rec.Value))
	if ci < 0 {
		return 0, fmt.Errorf("slab: object of %d bytes exceeds largest class %d",
			len(rec.Key)+len(rec.Value), m.classes[len(m.classes)-1])
	}
	sf := m.slabs[ci]
	var slot uint32
	if len(sf.free) > 0 {
		slot = heap.Pop(&sf.free).(uint32)
	} else if err := m.grow(sf); err != nil {
		return 0, err
	} else {
		slot = heap.Pop(&sf.free).(uint32)
	}
	if err := m.writeSlot(clk, sf, slot, rec); err != nil {
		heap.Push(&sf.free, slot)
		return 0, err
	}
	sf.live++
	m.liveBytes += int64(sf.slotSize)
	return NewLoc(ci, slot), nil
}

// Update rewrites the slot at loc in place. The record must fit the slot's
// class; callers use ClassOf to decide between Update and Delete+Put.
func (m *Manager) Update(clk *simdev.Clock, loc Loc, rec Record) error {
	if rec.Version == 0 {
		return errors.New("slab: version must be non-zero")
	}
	sf, err := m.slab(loc)
	if err != nil {
		return err
	}
	if headerSize+len(rec.Key)+len(rec.Value) > sf.slotSize {
		return fmt.Errorf("slab: record does not fit class %d for in-place update", sf.slotSize)
	}
	return m.writeSlot(clk, sf, loc.Slot(), rec)
}

func (m *Manager) writeSlot(clk *simdev.Clock, sf *slabFile, slot uint32, rec Record) error {
	// The scratch tail past the record is stale bytes from earlier ops;
	// decode never reads past keyLen+valLen, so they are harmless.
	buf := m.buf(sf.slotSize)
	encode(buf, rec)
	off := int64(slot) * int64(sf.slotSize)
	if err := sf.file.WriteAt(buf, off); err != nil {
		return err
	}
	// Synchronous page write: Optane writes 4 KB pages atomically.
	if clk != nil {
		m.dev.AccessClk(clk, simdev.OpWrite, int64(sf.slotSize))
	}
	if m.cache != nil {
		m.cache.Touch(sf.file.Name(), off, int64(sf.slotSize))
	}
	return nil
}

// Get reads the record at loc, returning owning copies of its key and
// value. Reads hit the OS page cache when resident; otherwise they cost one
// NVM page read per missed page.
func (m *Manager) Get(clk *simdev.Clock, loc Loc) (Record, error) {
	rec, err := m.GetScratch(clk, loc)
	if err != nil {
		return Record{}, err
	}
	rec.Key = append([]byte(nil), rec.Key...)
	rec.Value = append([]byte(nil), rec.Value...)
	return rec, nil
}

// GetScratch reads the record at loc without allocating: the returned
// record's Key and Value alias the Manager's scratch buffer and are valid
// only until the next Manager call. It is the engine's hot read path.
func (m *Manager) GetScratch(clk *simdev.Clock, loc Loc) (Record, error) {
	sf, err := m.slab(loc)
	if err != nil {
		return Record{}, err
	}
	off := int64(loc.Slot()) * int64(sf.slotSize)
	buf := m.buf(sf.slotSize)
	if err := sf.file.ReadAt(buf, off); err != nil {
		return Record{}, err
	}
	m.chargeRead(clk, sf, off, int64(sf.slotSize))
	return decodeView(buf)
}

func (m *Manager) chargeRead(clk *simdev.Clock, sf *slabFile, off, n int64) {
	if clk == nil {
		return
	}
	miss := int64(1 + (n-1)/simdev.PageSize)
	if m.cache != nil {
		miss = m.cache.Touch(sf.file.Name(), off, n)
	}
	for i := int64(0); i < miss; i++ {
		m.dev.AccessClk(clk, simdev.OpRead, simdev.PageSize)
	}
}

// Delete frees the slot at loc. The header is zeroed with a synchronous
// page write so a crash cannot resurrect the object. Inside a pinned epoch
// the zeroing and reuse are deferred (see PinEpoch) but the write is
// charged now, so pinned readers keep a consistent view at no accounting
// difference.
func (m *Manager) Delete(clk *simdev.Clock, loc Loc) error {
	sf, err := m.slab(loc)
	if err != nil {
		return err
	}
	if clk != nil {
		m.dev.AccessClk(clk, simdev.OpWrite, simdev.PageSize)
	}
	if m.pins > 0 {
		m.deferred = append(m.deferred, loc)
	} else {
		off := int64(loc.Slot()) * int64(sf.slotSize)
		var hdr [headerSize]byte
		if err := sf.file.WriteAt(hdr[:], off); err != nil {
			return err
		}
		heap.Push(&sf.free, loc.Slot())
	}
	sf.live--
	m.liveBytes -= int64(sf.slotSize)
	return nil
}

// grow extends a slab file by one extent and adds the new slots to the
// free heap.
func (m *Manager) grow(sf *slabFile) error {
	slots := uint32(growBytes / sf.slotSize)
	if slots < 64 {
		slots = 64
	}
	newSize := (int64(sf.nSlots) + int64(slots)) * int64(sf.slotSize)
	if err := sf.file.Truncate(newSize); err != nil {
		return err
	}
	for i := uint32(0); i < slots; i++ {
		heap.Push(&sf.free, sf.nSlots+i)
	}
	sf.nSlots += slots
	return nil
}

func (m *Manager) slab(loc Loc) (*slabFile, error) {
	ci := loc.Class()
	if ci < 0 || ci >= len(m.slabs) {
		return nil, fmt.Errorf("slab: bad class %d in loc", ci)
	}
	sf := m.slabs[ci]
	if loc.Slot() >= sf.nSlots {
		return nil, fmt.Errorf("slab: slot %d out of range (class %d has %d)", loc.Slot(), ci, sf.nSlots)
	}
	return sf, nil
}

// Recover scans every slot of every slab file and calls fn for each live
// record with its location. Used to rebuild the B-tree index after a crash;
// the caller resolves duplicate keys by keeping the highest version (§6).
// Recovery I/O is charged sequentially to the clock if non-nil.
func (m *Manager) Recover(clk *simdev.Clock, fn func(Loc, Record)) error {
	for ci, sf := range m.slabs {
		sf.free = sf.free[:0]
		sf.live = 0
		size := sf.file.Size()
		sf.nSlots = uint32(size / int64(sf.slotSize))
		if clk != nil && size > 0 {
			m.dev.AccessClk(clk, simdev.OpRead, size) // one sequential scan
		}
		buf := make([]byte, sf.slotSize)
		for s := uint32(0); s < sf.nSlots; s++ {
			off := int64(s) * int64(sf.slotSize)
			if err := sf.file.ReadAt(buf, off); err != nil {
				return err
			}
			rec, err := decode(buf)
			if errors.Is(err, ErrSlotFree) {
				heap.Push(&sf.free, s)
				continue
			}
			if err != nil {
				return err
			}
			sf.live++
			fn(NewLoc(ci, s), rec)
		}
	}
	m.liveBytes = 0
	for _, sf := range m.slabs {
		m.liveBytes += int64(sf.live) * int64(sf.slotSize)
	}
	return nil
}

// FreeSlot releases a slot's accounting after its record was migrated to
// flash by compaction, zeroing the header like Delete but charging the write
// to the provided (possibly background) clock.
func (m *Manager) FreeSlot(clk *simdev.Clock, loc Loc) error { return m.Delete(clk, loc) }

// SlotSize returns the slot size of the class holding loc.
func (m *Manager) SlotSize(loc Loc) int {
	ci := loc.Class()
	if ci < 0 || ci >= len(m.classes) {
		return 0
	}
	return m.classes[ci]
}

// Classes returns the configured class sizes.
func (m *Manager) Classes() []int { return append([]int(nil), m.classes...) }

// ClassSize returns the slot size of class ci (0 when out of range),
// without the defensive copy Classes makes — for per-op call sites.
func (m *Manager) ClassSize(ci int) int {
	if ci < 0 || ci >= len(m.classes) {
		return 0
	}
	return m.classes[ci]
}
