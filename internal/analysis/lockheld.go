package analysis

// lockheld enforces the *Locked suffix convention: a function named fooLocked
// asserts "the caller already holds the subject's mutex". Two rules follow:
//
//  1. A call to X.fooLocked(...) is legal only (a) inside another *Locked
//     function on the same subject, or (b) lexically inside a region where a
//     mutex of X (or of an object X is reachable from) is held — after
//     X.mu.Lock(), inside `if X.mu.TryLock() { ... }`, or after
//     `if !X.mu.TryLock() { return }`.
//  2. A *Locked function must never itself call recv.mu.Lock(): the caller
//     holds that mutex by contract, so the Lock is a self-deadlock.
//
// The analysis is lexical, per function, with simple alias resolution
// (`p := c.p` makes a lock on p.mu cover calls through c). Branches are
// merged conservatively: a mutex counts as held after an if/switch only if
// every surviving arm kept it held.

import (
	"go/ast"
	"go/token"
	"strings"
)

var lockheldAnalyzer = &Analyzer{
	Name: "lockheld",
	Doc:  "*Locked functions are called with the subject's mutex held and never self-lock",
	Run:  runLockheld,
}

func runLockheld(f *SrcFile) []Diagnostic {
	w := &lockheldWalker{f: f}
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		w.fnName = fd.Name.Name
		w.fnRecv = ""
		if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
			w.fnRecv = fd.Recv.List[0].Names[0].Name
		}
		w.aliases = aliases{}
		held := heldSet{}
		if isLockedName(w.fnName) {
			// The contract: the subject's mutex is held on entry.
			held[lockedContract] = true
		}
		w.walk(fd.Body.List, held)
	}
	return w.diags
}

// lockedContract is the pseudo-mutex representing "this function's *Locked
// contract": inside fooLocked, calls to barLocked on the same receiver are
// covered by the caller's lock, whichever mutex that is.
const lockedContract = "\x00contract"

type heldSet map[string]bool

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k := range h {
		c[k] = true
	}
	return c
}

// intersect keeps only mutexes held in both sets.
func (h heldSet) intersect(o heldSet) {
	for k := range h {
		if !o[k] {
			delete(h, k)
		}
	}
}

type lockheldWalker struct {
	f       *SrcFile
	fnName  string
	fnRecv  string
	aliases aliases
	diags   []Diagnostic
}

// walk processes a statement list in order, mutating held in place.
func (w *lockheldWalker) walk(list []ast.Stmt, held heldSet) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *lockheldWalker) stmt(s ast.Stmt, held heldSet) {
	switch v := s.(type) {
	case *ast.ExprStmt:
		w.checkExpr(v.X, held)
		w.applyLockOps(v.X, held)
	case *ast.AssignStmt:
		w.aliases.record(v)
		for _, e := range v.Rhs {
			w.checkExpr(e, held)
		}
		for _, e := range v.Lhs {
			w.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						w.checkExpr(val, held)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// defer X.mu.Unlock() leaves the region held through the rest of the
		// function; a deferred *Locked call is checked against the state at
		// registration (callers conventionally defer unlockers, not bodies).
		w.checkExpr(v.Call, held)
	case *ast.GoStmt:
		// A spawned goroutine starts with no locks of ours.
		if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
			w.walk(lit.Body.List, heldSet{})
			for _, arg := range v.Call.Args {
				w.checkExpr(arg, held) // args evaluate synchronously
			}
		} else {
			w.checkExpr(v.Call, heldSet{})
		}
	case *ast.ReturnStmt:
		for _, e := range v.Results {
			w.checkExpr(e, held)
		}
	case *ast.IfStmt:
		w.ifStmt(v, held)
	case *ast.ForStmt:
		if v.Init != nil {
			w.stmt(v.Init, held)
		}
		if v.Cond != nil {
			w.checkExpr(v.Cond, held)
		}
		body := held.clone()
		w.walk(v.Body.List, body)
		if v.Post != nil {
			w.stmt(v.Post, body)
		}
		held.intersect(body)
	case *ast.RangeStmt:
		w.checkExpr(v.X, held)
		body := held.clone()
		w.walk(v.Body.List, body)
		held.intersect(body)
	case *ast.BlockStmt:
		w.walk(v.List, held)
	case *ast.SwitchStmt:
		if v.Init != nil {
			w.stmt(v.Init, held)
		}
		if v.Tag != nil {
			w.checkExpr(v.Tag, held)
		}
		w.caseClauses(v.Body, held)
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			w.stmt(v.Init, held)
		}
		w.caseClauses(v.Body, held)
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				arm := held.clone()
				if cc.Comm != nil {
					w.stmt(cc.Comm, arm)
				}
				w.walk(cc.Body, arm)
				if !terminates(cc.Body) {
					held.intersect(arm)
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(v.Stmt, held)
	case *ast.IncDecStmt:
		w.checkExpr(v.X, held)
	case *ast.SendStmt:
		w.checkExpr(v.Chan, held)
		w.checkExpr(v.Value, held)
	}
}

func (w *lockheldWalker) caseClauses(body *ast.BlockStmt, held heldSet) {
	merged := false
	var acc heldSet
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		arm := held.clone()
		for _, e := range cc.List {
			w.checkExpr(e, arm)
		}
		w.walk(cc.Body, arm)
		if !terminates(cc.Body) {
			if !merged {
				acc, merged = arm, true
			} else {
				acc.intersect(arm)
			}
		}
	}
	if merged {
		held.intersect(acc)
	}
}

func (w *lockheldWalker) ifStmt(v *ast.IfStmt, held heldSet) {
	if v.Init != nil {
		w.stmt(v.Init, held)
	}
	w.checkExpr(v.Cond, held)

	body := held.clone()
	for _, chain := range tryLockChains(v.Cond, false) {
		body[w.aliases.canon(chain)] = true
	}
	w.walk(v.Body.List, body)

	var elseHeld heldSet
	if v.Else != nil {
		elseHeld = held.clone()
		w.stmt(v.Else, elseHeld)
	}

	// `if !X.TryLock() { return }` guards the rest of the function.
	if terminates(v.Body.List) {
		for _, chain := range tryLockChains(v.Cond, true) {
			held[w.aliases.canon(chain)] = true
		}
	}

	// Merge surviving arms conservatively. With an else present, control
	// definitely went through one of the arms, so the post-state is built
	// from the arm states alone; without one, the cond-false path carries
	// the pre-state through.
	bodyTerm := terminates(v.Body.List)
	elseTerm := v.Else != nil && stmtTerminates(v.Else)
	setTo := func(src heldSet) {
		for k := range held {
			delete(held, k)
		}
		for k := range src {
			held[k] = true
		}
	}
	switch {
	case bodyTerm && (v.Else == nil || elseTerm):
		// Only the fallthrough-from-cond path survives (no else: cond-false
		// path; with else: neither arm returns control, but code after is
		// unreachable anyway — keep held as-is).
	case bodyTerm:
		setTo(elseHeld)
	case elseTerm:
		setTo(body)
	case v.Else == nil:
		held.intersect(body)
	default:
		body.intersect(elseHeld)
		setTo(body)
	}
}

// tryLockChains extracts mutex chains from TryLock calls in a condition.
// negated selects `!X.TryLock()` occurrences instead of bare ones.
func tryLockChains(cond ast.Expr, negated bool) []string {
	var out []string
	var visit func(e ast.Expr, underNot bool)
	visit = func(e ast.Expr, underNot bool) {
		switch v := ast.Unparen(e).(type) {
		case *ast.UnaryExpr:
			if v.Op == token.NOT {
				visit(v.X, !underNot)
			}
		case *ast.BinaryExpr:
			if v.Op == token.LAND || v.Op == token.LOR {
				visit(v.X, underNot)
				visit(v.Y, underNot)
			}
		case *ast.CallExpr:
			if recv, name, ok := callee(v); ok && name == "TryLock" && recv != "" {
				if underNot == negated {
					out = append(out, recv)
				}
			}
		}
	}
	visit(cond, false)
	return out
}

// applyLockOps handles a top-level `X.mu.Lock()` / `X.mu.Unlock()`
// statement's effect on the held set.
func (w *lockheldWalker) applyLockOps(e ast.Expr, held heldSet) {
	c, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	recv, name, ok := callee(c)
	if !ok || recv == "" {
		return
	}
	chain := w.aliases.canon(recv)
	switch name {
	case "Lock", "RLock":
		held[chain] = true
	case "Unlock", "RUnlock":
		delete(held, chain)
	}
}

// checkExpr inspects an expression for *Locked calls (and self-deadlocking
// Lock calls), descending into function literals with a snapshot of the
// current held set (literals used as synchronous callbacks run under the
// caller's locks; spawned/deferred literals were peeled off in stmt).
func (w *lockheldWalker) checkExpr(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			w.walk(v.Body.List, held.clone())
			return false
		case *ast.CallExpr:
			w.checkCall(v, held)
		}
		return true
	})
}

func (w *lockheldWalker) checkCall(c *ast.CallExpr, held heldSet) {
	recv, name, ok := callee(c)
	if !ok {
		return
	}

	// Rule 2: self-deadlock inside a *Locked function.
	if name == "Lock" && isLockedName(w.fnName) && w.fnRecv != "" {
		if w.aliases.canon(recv) == w.fnRecv+".mu" {
			w.diags = append(w.diags, w.f.diag("lockheld", c.Pos(),
				"%s locks %s.mu: a *Locked function's caller already holds it (self-deadlock)",
				w.fnName, w.fnRecv))
		}
	}

	if !isLockedName(name) {
		return
	}

	chain := w.aliases.canon(recv)
	cbase := chainBase(chain)

	// Covered by the enclosing function's own *Locked contract when the
	// call stays on (or under) the same receiver.
	if held[lockedContract] && (recv == "" || w.fnRecv == "" || cbase == w.fnRecv) {
		return
	}
	for h := range held {
		if h == lockedContract {
			continue
		}
		// A held mutex covers the call when the call's subject owns it
		// (p.mu held, p.fooLocked called), is an ancestor of it (c.p.mu
		// held, c.barLocked called), or shares its root object.
		owner := chainOwner(h)
		if owner == chain || chainBase(owner) == cbase ||
			strings.HasPrefix(owner, chain+".") || strings.HasPrefix(chain, owner+".") {
			return
		}
	}
	subj := chain
	if subj == "" {
		subj = "the subject"
	}
	w.diags = append(w.diags, w.f.diag("lockheld", c.Pos(),
		"%s called without %s's mutex held: not inside a *Locked function and no Lock/TryLock of %s.mu is lexically in force",
		name, subj, subj))
}
