package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"testing"
)

// parseSrc parses an in-memory source string into a SrcFile for unit tests.
func parseSrc(fset *token.FileSet, src string) (*SrcFile, error) {
	astf, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return &SrcFile{Fset: fset, AST: astf, Path: "src.go"}, nil
}

func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// TestCleanTree is the zero-false-positive regression: the real source tree
// must produce no diagnostics. Every genuine violation has been fixed and
// every analyzer blind spot carries a reasoned //prismvet:ignore, so any
// diagnostic here is either a new violation or a new false positive — both
// block the build via make lint.
func TestCleanTree(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := CheckTree(root, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
