package analysis

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Golden protocol: a line in testdata/*.go carrying a trailing
// `// want:<analyzer> <substring>` comment must produce exactly one
// diagnostic from that analyzer whose message contains the substring;
// every other line must stay silent.

type wantMarker struct {
	file     string
	line     int
	analyzer string
	substr   string
	hit      bool
}

var wantRe = regexp.MustCompile(`// want:(\w+) (.+?)\s*$`)

func loadGolden(t *testing.T) ([]*SrcFile, []*wantMarker) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no golden files: %v", err)
	}
	fset := token.NewFileSet()
	var files []*SrcFile
	var wants []*wantMarker
	for _, p := range paths {
		f, err := ParseFile(fset, p)
		if err != nil {
			t.Fatalf("parse %s: %v", p, err)
		}
		files = append(files, f)
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				wants = append(wants, &wantMarker{file: p, line: i + 1, analyzer: m[1], substr: m[2]})
			}
		}
	}
	return files, wants
}

// matchGolden pairs diagnostics with markers; returns human-readable
// mismatches.
func matchGolden(diags []Diagnostic, wants []*wantMarker) []string {
	var problems []string
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && filepath.Base(w.file) == filepath.Base(d.File) && w.line == d.Line &&
				w.analyzer == d.Analyzer && strings.Contains(d.Message, w.substr) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.hit {
			problems = append(problems,
				fmt.Sprintf("missing diagnostic: %s:%d want [%s] %q", w.file, w.line, w.analyzer, w.substr))
		}
	}
	return problems
}

func runSuite(files []*SrcFile, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, f := range files {
		diags = append(diags, CheckFile(f, analyzers)...)
	}
	return diags
}

func TestGolden(t *testing.T) {
	files, wants := loadGolden(t)
	diags := runSuite(files, Analyzers())
	for _, p := range matchGolden(diags, wants) {
		t.Error(p)
	}
}

// Every analyzer must be exercised by the corpus: a suite member with no
// golden coverage could silently rot.
func TestGoldenCoversEveryAnalyzer(t *testing.T) {
	_, wants := loadGolden(t)
	covered := map[string]int{}
	for _, w := range wants {
		covered[w.analyzer]++
	}
	for _, a := range Analyzers() {
		if covered[a.Name] == 0 {
			t.Errorf("analyzer %s has no want-markers in testdata", a.Name)
		}
	}
}

// Disabling any single analyzer must make the golden corpus fail: this is
// the guard against an analyzer being wired out of the suite (or its Run
// gutted) without the tests noticing.
func TestGoldenFailsIfAnalyzerDisabled(t *testing.T) {
	for _, disabled := range Analyzers() {
		t.Run(disabled.Name, func(t *testing.T) {
			files, wants := loadGolden(t)
			var rest []*Analyzer
			for _, a := range Analyzers() {
				if a.Name != disabled.Name {
					rest = append(rest, a)
				}
			}
			diags := runSuite(files, rest)
			if problems := matchGolden(diags, wants); len(problems) == 0 {
				t.Errorf("corpus still passes with %s disabled — no golden coverage", disabled.Name)
			}
		})
	}
}
