package analysis

// refpair enforces acquire/release pairing on the refcounted and epoch-
// pinned resources: every `x := X.Acquire()` / `x := p.acquireView()` must
// be matched by `x.Release()` / `x.release()` on every path out of the
// function (a defer, or a release before each return including early error
// returns), and every `X.PinEpoch()` by an `X.UnpinEpoch()` /
// `X.UnpinEpochDeferred()` likewise.
//
// A handle that escapes the function — returned, stored into a struct or
// captured by a non-deferred closure, passed as an argument — transfers
// ownership and stops being tracked: the pairing obligation moved with it,
// which an intra-procedural analyzer cannot follow. Cross-function pairs
// (a cursor pinning in acquire() and unpinning in release()) are annotated
// at the pin site with //prismvet:ignore and the ownership argument.

import (
	"go/ast"
	"go/token"
)

var refpairAnalyzer = &Analyzer{
	Name: "refpair",
	Doc:  "snapshot/view Acquires and epoch Pins are Released/Unpinned on every path",
	Run:  runRefpair,
}

var acquireMethods = map[string]bool{"Acquire": true, "acquireView": true}
var releaseMethods = map[string]bool{"Release": true, "release": true}
var unpinMethods = map[string]bool{"UnpinEpoch": true, "UnpinEpochDeferred": true}

func runRefpair(f *SrcFile) []Diagnostic {
	w := &refpairWalker{f: f}
	for _, u := range funcUnits(f) {
		w.aliases = aliases{}
		w.reported = map[token.Pos]bool{}
		open := openSet{}
		w.walk(u.body.List, open)
		if !terminates(u.body.List) {
			w.reportOpen(open, u.body.Rbrace, "the function's end")
		}
	}
	return w.diags
}

// openTok is one live acquire obligation.
type openTok struct {
	pos     token.Pos
	what    string // "snapshot x" / "epoch pin on p.slabs"
	escaped bool
}

// openSet maps token keys (handle ident name, or "epoch:<chain>") to their
// obligations.
type openSet map[string]*openTok

func (o openSet) clone() openSet {
	c := make(openSet, len(o))
	for k, v := range o {
		c[k] = v
	}
	return c
}

type refpairWalker struct {
	f        *SrcFile
	aliases  aliases
	reported map[token.Pos]bool
	diags    []Diagnostic
}

func (w *refpairWalker) reportOpen(open openSet, at token.Pos, where string) {
	for _, tok := range open {
		if tok.escaped || w.reported[tok.pos] {
			continue
		}
		w.reported[tok.pos] = true
		w.diags = append(w.diags, w.f.diag("refpair", tok.pos,
			"%s acquired here is not released on the path reaching %s (line %d)",
			tok.what, where, w.f.pos(at).Line))
	}
}

func (w *refpairWalker) walk(list []ast.Stmt, open openSet) {
	for _, s := range list {
		w.stmt(s, open)
	}
}

func (w *refpairWalker) stmt(s ast.Stmt, open openSet) {
	switch v := s.(type) {
	case *ast.AssignStmt:
		w.aliases.record(v)
		// `x := X.Acquire()` opens an obligation on x; any other use of an
		// open handle on the RHS (aliasing, field store) escapes it.
		if len(v.Lhs) == 1 && len(v.Rhs) == 1 {
			if id, ok := v.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				if c, ok := ast.Unparen(v.Rhs[0]).(*ast.CallExpr); ok {
					if recv, name, ok := callee(c); ok && acquireMethods[name] && recv != "" {
						w.scanUses(v.Rhs[0], open) // args may use other handles
						// Re-acquiring into a name that still holds an open
						// handle leaks the old one.
						if tok, ok := open[id.Name]; ok && !tok.escaped {
							w.reportOpen(openSet{id.Name: tok}, v.Pos(), "its rebinding")
						}
						open[id.Name] = &openTok{pos: c.Pos(), what: "snapshot/view " + id.Name}
						return
					}
				}
				// Rebinding an ident that holds an open handle loses it.
				if tok, ok := open[id.Name]; ok && !tok.escaped {
					w.reportOpen(openSet{id.Name: tok}, v.Pos(), "its rebinding")
					delete(open, id.Name)
				}
			}
		}
		w.scanUses(v.Rhs[0], open)
		for _, e := range v.Rhs[1:] {
			w.scanUses(e, open)
		}
		w.applyCalls(s, open, false)
	case *ast.ExprStmt:
		w.scanUses(v.X, open)
		w.applyCalls(s, open, false)
	case *ast.DeferStmt:
		// A deferred release discharges the obligation for every path that
		// follows; defers registered before the acquire are out of scope
		// (real code defers right after acquiring).
		w.applyCalls(s, open, true)
		for _, arg := range v.Call.Args {
			w.scanUses(arg, open)
		}
	case *ast.GoStmt:
		// The handle now lives on another goroutine's schedule.
		w.escapeUses(v, open)
	case *ast.ReturnStmt:
		for _, e := range v.Results {
			w.escapeExprIdents(e, open)
		}
		w.reportOpen(open, v.Pos(), "this return")
	case *ast.IfStmt:
		if v.Init != nil {
			w.stmt(v.Init, open)
		}
		w.scanUses(v.Cond, open)
		body := open.clone()
		w.walk(v.Body.List, body)
		var elseSet openSet
		if v.Else != nil {
			elseSet = open.clone()
			w.stmt(v.Else, elseSet)
		}
		// A token survives the if when any surviving arm leaves it open.
		bodyTerm := terminates(v.Body.List)
		elseTerm := v.Else != nil && stmtTerminates(v.Else)
		merged := openSet{}
		add := func(set openSet) {
			for k, tok := range set {
				merged[k] = tok
			}
		}
		if !bodyTerm {
			add(body)
		}
		if v.Else != nil && !elseTerm {
			add(elseSet)
		}
		if v.Else == nil {
			add(open) // the cond-false path falls through unchanged
		}
		if bodyTerm && v.Else != nil && elseTerm {
			// No arm survives; keep state for the (unreachable) tail.
			add(open)
		}
		for k := range open {
			if _, ok := merged[k]; !ok {
				delete(open, k)
			}
		}
		for k, tok := range merged {
			open[k] = tok
		}
	case *ast.ForStmt:
		if v.Init != nil {
			w.stmt(v.Init, open)
		}
		if v.Cond != nil {
			w.scanUses(v.Cond, open)
		}
		w.walk(v.Body.List, open) // treat the body as running once
		if v.Post != nil {
			w.stmt(v.Post, open)
		}
	case *ast.RangeStmt:
		w.scanUses(v.X, open)
		w.walk(v.Body.List, open)
	case *ast.BlockStmt:
		w.walk(v.List, open)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Arms may release on terminating paths; walk each with a clone and
		// keep tokens open unless every surviving arm released them.
		w.switchLike(s, open)
	case *ast.LabeledStmt:
		w.stmt(v.Stmt, open)
	case *ast.SendStmt:
		w.escapeExprIdents(v.Value, open)
	}
}

func (w *refpairWalker) switchLike(s ast.Stmt, open openSet) {
	var body *ast.BlockStmt
	switch v := s.(type) {
	case *ast.SwitchStmt:
		if v.Init != nil {
			w.stmt(v.Init, open)
		}
		if v.Tag != nil {
			w.scanUses(v.Tag, open)
		}
		body = v.Body
	case *ast.TypeSwitchStmt:
		body = v.Body
	case *ast.SelectStmt:
		body = v.Body
	}
	survivors := []openSet{}
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			stmts = cc.Body
			if cc.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = cc.Body
		}
		arm := open.clone()
		w.walk(stmts, arm)
		if !terminates(stmts) {
			survivors = append(survivors, arm)
		}
	}
	// A switch with a default arm (and every select: it blocks until some
	// arm fires) always executes one arm, so the post-state is the union of
	// the surviving arms alone. Without a default the match may fall
	// through, and the pre-switch state survives too.
	if _, isSelect := s.(*ast.SelectStmt); isSelect {
		hasDefault = true
	}
	merged := openSet{}
	if !hasDefault {
		for k, tok := range open {
			merged[k] = tok
		}
	}
	for _, sv := range survivors {
		for k, tok := range sv {
			merged[k] = tok
		}
	}
	for k := range open {
		delete(open, k)
	}
	for k, tok := range merged {
		open[k] = tok
	}
}

// applyCalls scans a statement for release/unpin/pin calls and updates the
// open set. isDefer marks deferred statements, whose releases discharge the
// obligation for the rest of the function (including inside closures).
func (w *refpairWalker) applyCalls(s ast.Stmt, open openSet, isDefer bool) {
	ast.Inspect(s, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && !isDefer {
			_ = lit
			return false // non-deferred closures: handled as escapes
		}
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name, cok := callee(c)
		if !cok || recv == "" {
			return true
		}
		switch {
		case name == "PinEpoch":
			chain := w.aliases.canon(recv)
			if !isDefer {
				open["epoch:"+chain] = &openTok{pos: c.Pos(), what: "epoch pin on " + chain}
			}
		case unpinMethods[name]:
			delete(open, "epoch:"+w.aliases.canon(recv))
		case releaseMethods[name] && len(c.Args) == 0:
			// tok.Release(): recv must be exactly the tracked ident.
			delete(open, recv)
		}
		return true
	})
}

// scanUses marks open handles that escape through e: used as a call
// argument, in a composite literal, captured by a closure, or stored
// somewhere. Method calls ON a handle (snap.Find(k)) are reads, not escapes.
func (w *refpairWalker) scanUses(e ast.Expr, open openSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			// Captured by a closure whose schedule we can't see.
			w.escapeUses(v, open)
			return false
		case *ast.CallExpr:
			for _, arg := range v.Args {
				w.escapeExprIdents(arg, open)
			}
			// Keep descending: the receiver chain and nested calls.
			return true
		case *ast.CompositeLit:
			for _, el := range v.Elts {
				w.escapeExprIdents(el, open)
			}
			return true
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				w.escapeExprIdents(v.X, open)
			}
			return true
		}
		return true
	})
}

// escapeUses marks every open handle referenced anywhere under n as escaped.
func (w *refpairWalker) escapeUses(n ast.Node, open openSet) {
	ast.Inspect(n, func(nn ast.Node) bool {
		if id, ok := nn.(*ast.Ident); ok {
			if tok, ok := open[id.Name]; ok {
				tok.escaped = true
			}
		}
		return true
	})
}

// escapeExprIdents marks a handle escaped when e IS that handle (a bare
// identifier, possibly behind & or parens).
func (w *refpairWalker) escapeExprIdents(e ast.Expr, open openSet) {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if tok, ok := open[v.Name]; ok {
			tok.escaped = true
		}
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			w.escapeExprIdents(v.X, open)
		}
	case *ast.KeyValueExpr:
		w.escapeExprIdents(v.Value, open)
	case *ast.FuncLit:
		w.escapeUses(v, open)
	}
}
