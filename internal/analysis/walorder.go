package analysis

// walorder pins the durability ordering invariant from the storage design:
// within a critical section, every slab effect an operation implies must be
// issued BEFORE its WAL record is appended. The checkpoint scheme depends on
// it — checkpoint = fsync the slab files — so a WAL record appended before
// its slab write opens a window where a rotation-triggered checkpoint can
// prune the only durable trace of the op while the slab files still lack its
// bytes; a crash then resurrects the old state (the exact shape of the PR 6
// delete-resurrection bug).
//
// Lexical form of the rule: in any one function, no mutating call on a slab
// manager (`X.slabs.Update/Put/Delete/ZeroSlot/RecycleSlots`) may appear
// after an `AppendPut`/`AppendDel`/`AppendBatch` call. Branch arms merge
// conservatively (an append in either arm poisons the tail).

import (
	"go/ast"
	"go/token"
)

var walorderAnalyzer = &Analyzer{
	Name: "walorder",
	Doc:  "no slab effect is issued after the WAL append that describes it",
	Run:  runWalorder,
}

var walAppendMethods = map[string]bool{
	"AppendPut": true, "AppendDel": true, "AppendBatch": true,
}

// slabEffectMethods are the slab-manager mutations whose page-cache writes
// the WAL record describes.
var slabEffectMethods = map[string]bool{
	"Update": true, "Put": true, "Delete": true, "ZeroSlot": true, "RecycleSlots": true,
}

func runWalorder(f *SrcFile) []Diagnostic {
	w := &walorderWalker{f: f}
	for _, u := range funcUnits(f) {
		appended := token.NoPos
		w.walk(u.body.List, &appended)
	}
	return w.diags
}

type walorderWalker struct {
	f     *SrcFile
	diags []Diagnostic
}

// walk tracks the position of the first WAL append on the current path
// (NoPos when none yet) and flags slab effects after it.
func (w *walorderWalker) walk(list []ast.Stmt, appended *token.Pos) {
	for _, s := range list {
		w.stmt(s, appended)
	}
}

func (w *walorderWalker) stmt(s ast.Stmt, appended *token.Pos) {
	switch v := s.(type) {
	case *ast.IfStmt:
		if v.Init != nil {
			w.stmt(v.Init, appended)
		}
		w.scan(v.Cond, appended)
		bodyApp := *appended
		w.walk(v.Body.List, &bodyApp)
		elseApp := *appended
		if v.Else != nil {
			w.stmt(v.Else, &elseApp)
		}
		// Conservative merge: an append on any non-terminating arm poisons
		// the statements after the if.
		if bodyApp != token.NoPos && !terminates(v.Body.List) {
			*appended = bodyApp
		}
		if elseApp != token.NoPos && (v.Else == nil || !stmtTerminates(v.Else)) {
			if *appended == token.NoPos {
				*appended = elseApp
			}
		}
	case *ast.ForStmt:
		if v.Init != nil {
			w.stmt(v.Init, appended)
		}
		w.scan(v.Cond, appended)
		w.walk(v.Body.List, appended)
		if v.Post != nil {
			w.stmt(v.Post, appended)
		}
	case *ast.RangeStmt:
		w.scan(v.X, appended)
		w.walk(v.Body.List, appended)
	case *ast.BlockStmt:
		w.walk(v.List, appended)
	case *ast.SwitchStmt:
		if v.Init != nil {
			w.stmt(v.Init, appended)
		}
		w.scan(v.Tag, appended)
		w.clauses(v.Body, appended)
	case *ast.TypeSwitchStmt:
		w.clauses(v.Body, appended)
	case *ast.SelectStmt:
		w.clauses(v.Body, appended)
	case *ast.LabeledStmt:
		w.stmt(v.Stmt, appended)
	case *ast.GoStmt:
		// A new goroutine is a new critical-section story.
		fresh := token.NoPos
		if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
			w.walk(lit.Body.List, &fresh)
		}
	default:
		w.scanStmt(s, appended)
	}
}

func (w *walorderWalker) clauses(body *ast.BlockStmt, appended *token.Pos) {
	merged := token.NoPos
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			stmts = cc.Body
		case *ast.CommClause:
			stmts = cc.Body
		}
		arm := *appended
		w.walk(stmts, &arm)
		if arm != token.NoPos && !terminates(stmts) && merged == token.NoPos {
			merged = arm
		}
	}
	if merged != token.NoPos {
		*appended = merged
	}
}

// scanStmt applies scan to every expression in a simple statement.
func (w *walorderWalker) scanStmt(s ast.Stmt, appended *token.Pos) {
	ast.Inspect(s, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			// Deferred/assigned closures run on their own schedule relative
			// to the append; funcUnits analyzes their bodies independently.
			_ = lit
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok {
			w.checkCall(c, appended)
		}
		return true
	})
}

func (w *walorderWalker) scan(e ast.Expr, appended *token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok {
			w.checkCall(c, appended)
		}
		return true
	})
}

func (w *walorderWalker) checkCall(c *ast.CallExpr, appended *token.Pos) {
	recv, name, ok := callee(c)
	if !ok || recv == "" {
		return
	}
	if walAppendMethods[name] {
		if *appended == token.NoPos {
			*appended = c.Pos()
		}
		return
	}
	if slabEffectMethods[name] && isSlabChain(recv) && *appended != token.NoPos {
		w.diags = append(w.diags, w.f.diag("walorder", c.Pos(),
			"slab effect %s.%s issued after the WAL append at line %d: every slab write must precede the record that describes it (checkpoint = fsync the slabs)",
			recv, name, w.f.pos(*appended).Line))
	}
}

// isSlabChain reports whether the receiver chain names a slab manager
// ("p.slabs", "db.slabs", a local "slabs" or "mgr" of package slab).
func isSlabChain(chain string) bool {
	last := chain
	if i := lastDot(chain); i >= 0 {
		last = chain[i+1:]
	}
	return last == "slabs" || last == "slab" || last == "slabMgr"
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}
