package analysis

// shadowerr flags the `err` shadowing pattern that swallowed a WAL write
// error in an early revision of journal rotation:
//
//	err := doA()
//	if err := doB(); err != nil { ... }   // outer err never consulted again
//
// When an `if err := ...; err != nil` block neither terminates control flow
// (return/break/panic) nor mentions err in its body beyond the condition,
// the inner error is checked and then dropped on the floor — and because the
// name shadows the outer err, the code *looks* like it feeds the usual
// `if err != nil` handling downstream when it does not.
//
// The analyzer only fires when an outer `err` is actually in scope: shadowing
// is the aggravating factor that makes the dropped error invisible in review.

import (
	"go/ast"
	"go/token"
)

var shadowerrAnalyzer = &Analyzer{
	Name: "shadowerr",
	Doc:  "if-scoped err shadows an outer err and the block drops it",
	Run:  runShadowerr,
}

func runShadowerr(f *SrcFile) []Diagnostic {
	w := &shadowerrWalker{f: f}
	for _, u := range funcUnits(f) {
		// Parameters and named results can declare err too.
		depth := 0
		if u.decl != nil && u.decl.Type != nil {
			if declaresErrInFields(u.decl.Type.Params) || declaresErrInFields(u.decl.Type.Results) {
				depth = 1
			}
		}
		w.walkStmts(u.body.List, depth)
	}
	return w.diags
}

func declaresErrInFields(fl *ast.FieldList) bool {
	if fl == nil {
		return false
	}
	for _, f := range fl.List {
		for _, n := range f.Names {
			if n.Name == "err" {
				return true
			}
		}
	}
	return false
}

type shadowerrWalker struct {
	f     *SrcFile
	diags []Diagnostic
}

// walkStmts scans a statement list; errDepth counts how many `err`
// declarations are in scope from enclosing levels (0 = none, so an if-init
// `err :=` is a plain declaration, not a shadow).
func (w *shadowerrWalker) walkStmts(list []ast.Stmt, errDepth int) {
	declared := false // err declared at THIS level, visible to later stmts
	for _, s := range list {
		w.stmt(s, errDepth+boolToInt(declared))
		if declaresErr(s) {
			declared = true
		}
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// declaresErr reports whether s introduces `err` into the current scope.
func declaresErr(s ast.Stmt) bool {
	switch v := s.(type) {
	case *ast.AssignStmt:
		if v.Tok != token.DEFINE {
			return false
		}
		for _, lhs := range v.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "err" {
				return true
			}
		}
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, n := range vs.Names {
						if n.Name == "err" {
							return true
						}
					}
				}
			}
		}
	}
	return false
}

func (w *shadowerrWalker) stmt(s ast.Stmt, errDepth int) {
	switch v := s.(type) {
	case *ast.IfStmt:
		w.ifStmt(v, errDepth)
	case *ast.ForStmt:
		inner := errDepth
		if v.Init != nil && declaresErr(v.Init) {
			inner++
		}
		w.walkStmts(v.Body.List, inner)
	case *ast.RangeStmt:
		w.walkStmts(v.Body.List, errDepth)
	case *ast.BlockStmt:
		w.walkStmts(v.List, errDepth)
	case *ast.SwitchStmt:
		inner := errDepth
		if v.Init != nil && declaresErr(v.Init) {
			inner++
		}
		w.clauses(v.Body, inner)
	case *ast.TypeSwitchStmt:
		w.clauses(v.Body, errDepth)
	case *ast.SelectStmt:
		w.clauses(v.Body, errDepth)
	case *ast.LabeledStmt:
		w.stmt(v.Stmt, errDepth)
	case *ast.GoStmt:
		if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, errDepth)
		}
	case *ast.DeferStmt:
		if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, errDepth)
		}
	case *ast.ExprStmt, *ast.AssignStmt, *ast.ReturnStmt:
		// Function literals in expressions open their own scopes.
		ast.Inspect(s, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				inner := errDepth
				if declaresErrInFields(lit.Type.Params) || declaresErrInFields(lit.Type.Results) {
					inner++
				}
				w.walkStmts(lit.Body.List, inner)
				return false
			}
			return true
		})
	}
}

func (w *shadowerrWalker) clauses(body *ast.BlockStmt, errDepth int) {
	for _, c := range body.List {
		switch cc := c.(type) {
		case *ast.CaseClause:
			w.walkStmts(cc.Body, errDepth)
		case *ast.CommClause:
			w.walkStmts(cc.Body, errDepth)
		}
	}
}

func (w *shadowerrWalker) ifStmt(v *ast.IfStmt, errDepth int) {
	shadows := errDepth > 0 && v.Init != nil && declaresErr(v.Init)
	inner := errDepth
	if shadows {
		inner++
	}
	if shadows && !successGate(v.Cond) && !w.blockHandles(v) {
		w.diags = append(w.diags, w.f.diag("shadowerr", v.Init.Pos(),
			"err declared in if-init shadows an outer err and the block neither returns nor uses it: the inner error is silently dropped"))
	}
	w.walkStmts(v.Body.List, inner)
	if v.Else != nil {
		// The if-init scope covers both arms.
		w.stmt(v.Else, inner)
	}
}

// successGate reports whether the condition is `err == nil` (possibly
// conjoined with more checks): the body is the success path and the author
// visibly chose not to handle the failure, which is a different animal from
// an `err != nil` arm that looks like handling but drops the error.
func successGate(cond ast.Expr) bool {
	switch v := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if v.Op == token.LAND {
			return successGate(v.X) || successGate(v.Y)
		}
		if v.Op != token.EQL {
			return false
		}
		x, xok := ast.Unparen(v.X).(*ast.Ident)
		y, yok := ast.Unparen(v.Y).(*ast.Ident)
		return (xok && x.Name == "err" && yok && y.Name == "nil") ||
			(yok && y.Name == "err" && xok && x.Name == "nil")
	}
	return false
}

// blockHandles reports whether the if statement actually consumes the inner
// err: some path terminates control flow (return/branch/panic — the usual
// `return err` shape), or the body/else references err beyond the condition
// (logging it, storing it somewhere).
func (w *shadowerrWalker) blockHandles(v *ast.IfStmt) bool {
	for _, s := range v.Body.List {
		if containsTerminator(s) {
			return true
		}
	}
	if usesIdent(v.Body, "err") {
		return true
	}
	if v.Else != nil {
		if containsTerminator(v.Else) || usesIdent(v.Else, "err") {
			return true
		}
	}
	return false
}

// usesIdent reports whether the node references the identifier outside of
// redeclarations.
func usesIdent(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(nn ast.Node) bool {
		if found {
			return false
		}
		if id, ok := nn.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return true
	})
	return found
}
