package analysis

// Shared syntactic vocabulary for the analyzers. Everything here reasons
// about dotted identifier chains ("c.p.mu") and statement shape — the
// lexical skeleton the project's conventions are written in.

import (
	"go/ast"
	"go/token"
	"strings"
)

// chainOf flattens e into a dotted identifier chain ("c.p.mu") when e is an
// identifier or a pure field-selection chain rooted at one. Calls, indexing
// and anything else break the chain (ok=false): a chain is only meaningful
// as a stable name for one object across statements.
func chainOf(e ast.Expr) (string, bool) {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name, true
	case *ast.ParenExpr:
		return chainOf(v.X)
	case *ast.SelectorExpr:
		base, ok := chainOf(v.X)
		if !ok {
			return "", false
		}
		return base + "." + v.Sel.Name, true
	}
	return "", false
}

// callee splits a call into receiver chain and method name: p.mu.Lock() →
// ("p.mu", "Lock"); f() → ("", "f"). ok=false when the callee is not a pure
// chain (method values, IIFEs, calls on call results).
func callee(c *ast.CallExpr) (recv, name string, ok bool) {
	switch fun := ast.Unparen(c.Fun).(type) {
	case *ast.Ident:
		return "", fun.Name, true
	case *ast.SelectorExpr:
		r, rok := chainOf(fun.X)
		if !rok {
			return "", "", false
		}
		return r, fun.Sel.Name, true
	}
	return "", "", false
}

// chainBase returns the first component of a dotted chain ("c.p.mu" → "c").
func chainBase(chain string) string {
	if i := strings.IndexByte(chain, '.'); i >= 0 {
		return chain[:i]
	}
	return chain
}

// chainOwner returns the chain minus its final component ("p.mu" → "p",
// "mu" → "").
func chainOwner(chain string) string {
	if i := strings.LastIndexByte(chain, '.'); i >= 0 {
		return chain[:i]
	}
	return ""
}

// aliases tracks simple chain rebindings (`p := c.p`) so that a lock taken
// as p.mu and a call made through c resolve to the same object.
type aliases map[string]string

// record notes `ident := chain` definitions.
func (a aliases) record(s *ast.AssignStmt) {
	if s.Tok != token.DEFINE && s.Tok != token.ASSIGN {
		return
	}
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if chain, ok := chainOf(s.Rhs[i]); ok && strings.Contains(chain, ".") {
			a[id.Name] = chain
		}
	}
}

// canon rewrites chain's base through recorded aliases until it reaches a
// root identifier ("p.mu" with p := c.p → "c.p.mu"). Cycle-guarded.
func (a aliases) canon(chain string) string {
	for depth := 0; depth < 8; depth++ {
		base := chainBase(chain)
		target, ok := a[base]
		if !ok || target == chain {
			return chain
		}
		chain = target + strings.TrimPrefix(chain, base)
	}
	return chain
}

// terminatingCalls are function/method names that never return control to
// the enclosing statement list.
func callTerminates(c *ast.CallExpr) bool {
	recv, name, ok := callee(c)
	if !ok {
		return false
	}
	switch {
	case recv == "" && name == "panic":
		return true
	case strings.HasPrefix(name, "Fatal"): // t.Fatal/Fatalf, log.Fatalln, ...
		return true
	case strings.HasPrefix(name, "Skip") && recv != "": // t.Skip/Skipf end the test
		return true
	case recv == "os" && name == "Exit":
		return true
	case recv == "runtime" && name == "Goexit":
		return true
	}
	return false
}

// stmtTerminates reports whether s unconditionally leaves the enclosing
// statement list (return, branch, panic-like call, or a block/if whose
// every arm does).
func stmtTerminates(s ast.Stmt) bool {
	switch v := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto all leave the list
	case *ast.ExprStmt:
		if c, ok := v.X.(*ast.CallExpr); ok {
			return callTerminates(c)
		}
	case *ast.BlockStmt:
		return terminates(v.List)
	case *ast.IfStmt:
		if v.Else == nil {
			return false
		}
		if !terminates(v.Body.List) {
			return false
		}
		switch e := v.Else.(type) {
		case *ast.BlockStmt:
			return terminates(e.List)
		case *ast.IfStmt:
			return stmtTerminates(e)
		}
	case *ast.LabeledStmt:
		return stmtTerminates(v.Stmt)
	}
	return false
}

// terminates reports whether the statement list never falls off its end.
func terminates(list []ast.Stmt) bool {
	for _, s := range list {
		if stmtTerminates(s) {
			return true
		}
	}
	return false
}

// containsTerminator reports whether any statement anywhere inside s (at
// any nesting depth, including single-armed ifs) leaves the enclosing
// control flow. Weaker than terminates: used where the question is "did the
// author handle this path at all", not "does every path leave".
func containsTerminator(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // a nested function's returns are its own
		case *ast.ReturnStmt, *ast.BranchStmt:
			found = true
			return false
		case *ast.CallExpr:
			if callTerminates(v) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// funcUnits yields every function-like body in the file — declarations and
// function literals — as independent analysis units. Literals are also
// visited as part of their enclosing unit by analyzers that choose to; this
// helper is for analyzers that treat each body as its own scope.
type funcUnit struct {
	name string // "" for literals
	recv string // receiver identifier, "" when none
	body *ast.BlockStmt
	decl *ast.FuncDecl // nil for literals
}

func funcUnits(f *SrcFile) []funcUnit {
	var units []funcUnit
	for _, decl := range f.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		recv := ""
		if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
			recv = fd.Recv.List[0].Names[0].Name
		}
		units = append(units, funcUnit{name: fd.Name.Name, recv: recv, body: fd.Body, decl: fd})
		// Function literals nested inside: their bodies run on their own
		// schedule (goroutines, callbacks, defers), so resource-pairing
		// analyzers treat them as separate units too.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				units = append(units, funcUnit{body: lit.Body})
			}
			return true
		})
	}
	return units
}

// isLockedName reports whether a function name carries the convention
// suffix: "the caller must hold the subject's mutex".
func isLockedName(name string) bool {
	return strings.HasSuffix(name, "Locked") && name != "Locked"
}

// mutexChain reports whether the final component of a chain names a mutex
// by this repo's conventions (mu, lnMu, durMu, parkMu, ...).
func isMutexComponent(name string) bool {
	return name == "mu" || strings.HasSuffix(name, "Mu") || strings.HasSuffix(name, "Mutex")
}
