package analysis

// Invariant catalog
//
// Each analyzer encodes one convention this codebase relies on for
// correctness under concurrency or crashes. The conventions predate the
// linter; the linter exists because several of them have already been
// violated once, found only in review or by crash tests.
//
// # lockheld — the *Locked suffix contract
//
// A method named fooLocked asserts that its caller holds the subject's
// mutex. The convention appears throughout internal/core (putBodyLocked,
// drainReadsLocked, syncClockLocked, collectLocked, ...), internal/sst
// (commitLocked, unrefLocked), internal/storage (rotateLocked) and
// internal/simdev (readLocked, writeLocked). Two failure modes:
// calling a *Locked method without the lock (a silent data race), and a
// *Locked method taking the lock itself (an immediate self-deadlock with
// sync.Mutex). The second shape existed in-tree: putLocked/delLocked/
// getLocked acquired p.mu themselves despite the suffix — renamed to
// *Locking by this linter's first run.
//
// # refpair — refcount and epoch pairing
//
// Three refcounted protocols: manifest snapshots (Acquire/Release in
// internal/sst), partition read views (acquireView/release in
// internal/core/readview.go), and slab reclamation epochs
// (PinEpoch/UnpinEpoch[Deferred] in internal/slab). A leaked Acquire pins
// SSTs against deletion forever; a leaked PinEpoch wedges slab slot
// recycling repo-wide. The dangerous shape is the early error return
// between acquire and the deferred release. Handles that escape the
// function (returned, stored, captured) transfer ownership and exit the
// analysis; genuinely cross-function pairs (iterator cursors pin in
// acquire(), unpin in release()) carry //prismvet:ignore annotations that
// name the releasing function.
//
// # walorder — slab effects before their WAL record
//
// Checkpoint = fsync the slab files, then prune the WAL. If an op's WAL
// record lands before its slab write, a rotation-triggered checkpoint can
// prune the record while the slab bytes are still only in the page cache;
// a crash then silently loses the op (the PR 6 delete-resurrection bug had
// exactly this flavor). Within one function, no X.slabs.{Update,Put,
// Delete,ZeroSlot,RecycleSlots} may follow an AppendPut/AppendDel/
// AppendBatch.
//
// # pubsafe — copy-on-write publication
//
// The lock-free read path loads views and manifests through
// atomic.Pointer. Readers never take the partition mutex, so an object is
// immutable from the instant it is Stored. The write path must build a
// complete fresh object and publish it once; patching a published object
// (v.fields = ... after ptr.Store(v)) races every in-flight reader.
//
// # shadowerr — if-scoped err shadowing that drops the error
//
// `if err := f(); err != nil { ... }` where the block neither terminates
// nor mentions err again checks the inner error and discards it — and the
// shadowing makes the drop invisible: downstream `if err != nil` handling
// reads the OUTER err and passes. A WAL rotation bug of this exact shape
// (journal.rotateLocked's WriteAt error) was caught in PR 6 review.
//
// # The ignore contract
//
//	//prismvet:ignore <analyzer>[,<analyzer>|all] <reason...>
//
// placed on the flagged line or the line immediately above suppresses the
// named analyzers for that line. The reason is mandatory and should state
// why the invariant still holds even though the analyzer cannot see it
// (e.g. which function performs the matching release). A directive with no
// reason, or naming an unknown analyzer, is itself reported. Suppressions
// are deliberately loud in review: each one is a claim that a human
// re-verified the invariant by hand.
//
// # Limits
//
// The analyzers are purely syntactic and intra-procedural: they see dotted
// identifier chains and statement order, not types or the call graph.
// Aliasing beyond `p := c.p` style rebinding, locks passed as parameters,
// and pairs split across functions are out of scope — by design, those are
// also the shapes a human reviewer cannot verify locally, and the
// conventions exist precisely to keep the code in locally-checkable form.
