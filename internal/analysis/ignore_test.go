package analysis

import (
	"go/token"
	"strings"
	"testing"
)

func checkSrc(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	astf, err := parseSrc(fset, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return CheckFile(astf, Analyzers())
}

func hasDiag(diags []Diagnostic, analyzer, substr string) bool {
	for _, d := range diags {
		if d.Analyzer == analyzer && strings.Contains(d.Message, substr) {
			return true
		}
	}
	return false
}

const shadowBody = `package p
func step() error { return nil }
func probe() error { return nil }
var drops int
func f() error {
	err := step()
	%s
	if err := probe(); err != nil {
		drops++
	}
	return err
}
`

// A directive without a reason is itself a diagnostic AND does not
// suppress: silencing a machine check requires recording the argument.
func TestIgnoreMissingReason(t *testing.T) {
	diags := checkSrc(t, sprintf(shadowBody, "//prismvet:ignore shadowerr"))
	if !hasDiag(diags, "prismvet", "missing its reason") {
		t.Errorf("no missing-reason diagnostic: %v", diags)
	}
	if !hasDiag(diags, "shadowerr", "silently dropped") {
		t.Errorf("reasonless directive suppressed the finding: %v", diags)
	}
}

func TestIgnoreUnknownAnalyzer(t *testing.T) {
	diags := checkSrc(t, sprintf(shadowBody, "//prismvet:ignore shadower typo in the name"))
	if !hasDiag(diags, "prismvet", "unknown analyzer") {
		t.Errorf("no unknown-analyzer diagnostic: %v", diags)
	}
	if !hasDiag(diags, "shadowerr", "silently dropped") {
		t.Errorf("directive for an unknown analyzer suppressed the finding: %v", diags)
	}
}

func TestIgnoreBareDirective(t *testing.T) {
	diags := checkSrc(t, sprintf(shadowBody, "//prismvet:ignore"))
	if !hasDiag(diags, "prismvet", "malformed") {
		t.Errorf("no malformed-directive diagnostic: %v", diags)
	}
}

func TestIgnoreValidSuppresses(t *testing.T) {
	diags := checkSrc(t, sprintf(shadowBody, "//prismvet:ignore shadowerr probe errors are expected"))
	if len(diags) != 0 {
		t.Errorf("valid reasoned directive did not suppress: %v", diags)
	}
}

// An ignore naming a DIFFERENT analyzer must not suppress this one.
func TestIgnoreWrongAnalyzer(t *testing.T) {
	diags := checkSrc(t, sprintf(shadowBody, "//prismvet:ignore lockheld reason that belongs to another check"))
	if !hasDiag(diags, "shadowerr", "silently dropped") {
		t.Errorf("directive for another analyzer suppressed the finding: %v", diags)
	}
}

func TestIgnoreAllSuppresses(t *testing.T) {
	diags := checkSrc(t, sprintf(shadowBody, "//prismvet:ignore all corpus exercises the catch-all form"))
	if len(diags) != 0 {
		t.Errorf("'all' directive did not suppress: %v", diags)
	}
}
