// Package analysis is prismvet's engine: a suite of syntactic (AST-based)
// analyzers that machine-check the concurrency and durability conventions
// the compiler cannot see. Every invariant below was load-bearing in a past
// review — see doc.go for the catalog and the bugs each analyzer would have
// caught — and the suite runs on every push via `make lint`.
//
// The analyzers use only the standard library (go/parser, go/ast, go/token):
// files are parsed directly off disk by a hand-rolled module walker, no
// go/packages, no type-checking of dependencies, so the linter builds and
// runs anywhere the repo does and go.mod stays dependency-free. The price is
// that the checks are lexical: they reason about dotted identifier chains
// ("p.mu", "c.p.slabs") and statement order, not types. The conventions they
// enforce were chosen to be checkable that way, and the escape hatch
// (//prismvet:ignore) exists for the cases a lexical analyzer cannot follow —
// every use of which must state the human argument for why the invariant
// still holds.
package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run receives a parsed file and reports
// findings; suppression via //prismvet:ignore happens in the driver, so
// analyzers never need to know about the escape hatch.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(f *SrcFile) []Diagnostic
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		lockheldAnalyzer,
		refpairAnalyzer,
		walorderAnalyzer,
		pubsafeAnalyzer,
		shadowerrAnalyzer,
	}
}

// analyzerNames is the set of valid names an ignore directive may target.
func analyzerNames() map[string]bool {
	names := map[string]bool{"all": true}
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// SrcFile is one parsed source file handed to analyzers.
type SrcFile struct {
	Fset *token.FileSet
	AST  *ast.File
	Path string
}

func (f *SrcFile) pos(p token.Pos) token.Position { return f.Fset.Position(p) }

func (f *SrcFile) diag(analyzer string, p token.Pos, format string, args ...any) Diagnostic {
	pos := f.pos(p)
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      pos,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// ignoreDirective is one parsed //prismvet:ignore comment.
type ignoreDirective struct {
	line      int
	analyzers map[string]bool // names, or "all"
}

const ignorePrefix = "//prismvet:ignore"

// parseIgnores extracts the file's ignore directives. A directive names one
// analyzer (or a comma-separated list, or "all") and MUST carry a reason —
// an annotation that silences a machine check without recording the human
// argument is itself a diagnostic.
func parseIgnores(f *SrcFile) (map[int][]ignoreDirective, []Diagnostic) {
	dirs := map[int][]ignoreDirective{}
	var diags []Diagnostic
	valid := analyzerNames()
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, ignorePrefix)
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				diags = append(diags, f.diag("prismvet", c.Pos(),
					"malformed ignore: want //prismvet:ignore <analyzer> <reason>"))
				continue
			}
			names := map[string]bool{}
			bad := false
			for _, n := range strings.Split(fields[0], ",") {
				if !valid[n] {
					diags = append(diags, f.diag("prismvet", c.Pos(),
						"ignore names unknown analyzer %q", n))
					bad = true
					break
				}
				names[n] = true
			}
			if bad {
				continue
			}
			if len(fields) < 2 {
				diags = append(diags, f.diag("prismvet", c.Pos(),
					"ignore for %s is missing its reason: every suppression must document why the invariant still holds", fields[0]))
				continue
			}
			line := f.pos(c.Pos()).Line
			dirs[line] = append(dirs[line], ignoreDirective{line: line, analyzers: names})
		}
	}
	return dirs, diags
}

// suppressed reports whether d is covered by an ignore directive on its own
// line or on the line immediately above it.
func suppressed(d Diagnostic, dirs map[int][]ignoreDirective) bool {
	for _, line := range [2]int{d.Line, d.Line - 1} {
		for _, dir := range dirs[line] {
			if dir.analyzers["all"] || dir.analyzers[d.Analyzer] {
				return true
			}
		}
	}
	return false
}

// CheckFile runs the given analyzers over one parsed file, applying ignore
// directives. Malformed directives are reported as "prismvet" diagnostics.
func CheckFile(f *SrcFile, analyzers []*Analyzer) []Diagnostic {
	dirs, diags := parseIgnores(f)
	for _, a := range analyzers {
		for _, d := range a.Run(f) {
			if !suppressed(d, dirs) {
				diags = append(diags, d)
			}
		}
	}
	return diags
}

// ParseFile parses one file into a SrcFile (comments retained for the
// ignore directives).
func ParseFile(fset *token.FileSet, path string) (*SrcFile, error) {
	astf, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return &SrcFile{Fset: fset, AST: astf, Path: path}, nil
}

// LoadTree parses every .go file under root, skipping VCS metadata,
// vendored trees, and testdata corpora (golden files are intentionally
// buggy). includeTests controls whether _test.go files are analyzed; the
// default lint run includes them — test code takes the same locks and pins
// the same epochs as the code it exercises.
func LoadTree(root string, includeTests bool) ([]*SrcFile, error) {
	fset := token.NewFileSet()
	var files []*SrcFile
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" || name == "node_modules") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		if !includeTests && strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := ParseFile(fset, path)
		if perr != nil {
			return perr
		}
		files = append(files, f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return files, nil
}

// CheckTree runs the full suite over every file under root and returns the
// findings sorted by position.
func CheckTree(root string, includeTests bool) ([]Diagnostic, error) {
	files, err := LoadTree(root, includeTests)
	if err != nil {
		return nil, err
	}
	analyzers := Analyzers()
	var diags []Diagnostic
	for _, f := range files {
		diags = append(diags, CheckFile(f, analyzers)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		return diags[i].Col < diags[j].Col
	})
	return diags, nil
}

// ModuleRoot walks up from dir to the nearest directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}
