package analysis

// pubsafe enforces the copy-on-write publication rule the lock-free read
// path depends on: once a value has been handed to atomic.Pointer.Store (or
// Swap / CompareAndSwap), it is visible to readers running without the
// partition mutex, and any later field write through the same variable is a
// data race — readers may observe the mutation torn or half-applied. The
// write path must build a fresh object, finish every field, and only then
// publish; republication means a new object, never a patch.
//
// Lexically: inside one function, track every identifier passed to a
// Store/Swap/CompareAndSwap method (bare or behind &). A later assignment
// through a selector or index rooted at that identifier (v.f = ..., v.m[k] =
// ..., v.n++) is flagged. Rebinding the identifier (v = ...) starts a fresh,
// unpublished value and clears the taint.

import (
	"go/ast"
	"go/token"
)

var pubsafeAnalyzer = &Analyzer{
	Name: "pubsafe",
	Doc:  "no field writes through a value already published via atomic Store/Swap",
	Run:  runPubsafe,
}

var publishMethods = map[string]bool{
	"Store": true, "Swap": true, "CompareAndSwap": true,
}

func runPubsafe(f *SrcFile) []Diagnostic {
	w := &pubsafeWalker{f: f}
	for _, u := range funcUnits(f) {
		published := map[string]token.Pos{}
		w.walkStmts(u.body.List, published)
	}
	return w.diags
}

type pubsafeWalker struct {
	f     *SrcFile
	diags []Diagnostic
}

// walkStmts runs a flat, in-order scan. Branch structure is ignored on
// purpose: publishing in one arm and mutating in a later statement is
// exactly the bug, and publish-then-mutate confined to exclusive arms is
// rare enough that no real-tree false positives arise from flattening.
func (w *pubsafeWalker) walkStmts(list []ast.Stmt, published map[string]token.Pos) {
	for _, s := range list {
		w.stmt(s, published)
	}
}

func (w *pubsafeWalker) stmt(s ast.Stmt, published map[string]token.Pos) {
	switch v := s.(type) {
	case *ast.AssignStmt:
		for _, e := range v.Rhs {
			w.scanPublishes(e, published)
		}
		for _, lhs := range v.Lhs {
			w.checkWrite(lhs, published)
		}
		// Rebinding the root ident replaces the published object with a new
		// one; the taint no longer applies.
		for _, lhs := range v.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				delete(published, id.Name)
			}
		}
	case *ast.IncDecStmt:
		w.checkWrite(v.X, published)
	case *ast.ExprStmt:
		w.scanPublishes(v.X, published)
	case *ast.DeferStmt:
		w.scanPublishes(v.Call, published)
	case *ast.GoStmt:
		if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
			// The goroutine may run after any publication in this function:
			// check its body against the full final taint is impossible
			// lexically, so check against the current set (conservatively the
			// publishes seen so far).
			w.walkStmts(lit.Body.List, published)
		} else {
			w.scanPublishes(v.Call, published)
		}
	case *ast.IfStmt:
		if v.Init != nil {
			w.stmt(v.Init, published)
		}
		w.scanPublishes(v.Cond, published)
		w.walkStmts(v.Body.List, published)
		if v.Else != nil {
			w.stmt(v.Else, published)
		}
	case *ast.ForStmt:
		if v.Init != nil {
			w.stmt(v.Init, published)
		}
		if v.Cond != nil {
			w.scanPublishes(v.Cond, published)
		}
		w.walkStmts(v.Body.List, published)
		if v.Post != nil {
			w.stmt(v.Post, published)
		}
	case *ast.RangeStmt:
		w.scanPublishes(v.X, published)
		w.walkStmts(v.Body.List, published)
	case *ast.BlockStmt:
		w.walkStmts(v.List, published)
	case *ast.SwitchStmt:
		if v.Init != nil {
			w.stmt(v.Init, published)
		}
		if v.Tag != nil {
			w.scanPublishes(v.Tag, published)
		}
		w.walkClauses(v.Body, published)
	case *ast.TypeSwitchStmt:
		w.walkClauses(v.Body, published)
	case *ast.SelectStmt:
		w.walkClauses(v.Body, published)
	case *ast.LabeledStmt:
		w.stmt(v.Stmt, published)
	case *ast.ReturnStmt:
		for _, e := range v.Results {
			w.scanPublishes(e, published)
		}
	}
}

func (w *pubsafeWalker) walkClauses(body *ast.BlockStmt, published map[string]token.Pos) {
	for _, c := range body.List {
		switch cc := c.(type) {
		case *ast.CaseClause:
			w.walkStmts(cc.Body, published)
		case *ast.CommClause:
			if cc.Comm != nil {
				w.stmt(cc.Comm, published)
			}
			w.walkStmts(cc.Body, published)
		}
	}
}

// scanPublishes records identifiers passed to Store/Swap/CompareAndSwap.
// For Store the published value is the last argument; for CompareAndSwap the
// new value is also the last. &ident counts the same as ident — the pointer
// published IS the object the ident names.
func (w *pubsafeWalker) scanPublishes(e ast.Expr, published map[string]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name, cok := callee(c)
		if !cok || recv == "" || !publishMethods[name] || len(c.Args) == 0 {
			return true
		}
		arg := c.Args[len(c.Args)-1]
		if id := rootIdent(arg); id != "" {
			published[id] = c.Pos()
		}
		return true
	})
}

// rootIdent unwraps &x / (x) to a bare identifier name, or "".
func rootIdent(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return rootIdent(v.X)
		}
	}
	return ""
}

// checkWrite flags lhs when it writes through a published identifier:
// v.field = ..., v.m[k] = ..., v.field.sub = ... A write to the bare ident
// itself is a rebinding, handled by the caller.
func (w *pubsafeWalker) checkWrite(lhs ast.Expr, published map[string]token.Pos) {
	root, isDeref := writeRoot(lhs)
	if root == "" || !isDeref {
		return
	}
	if pubAt, ok := published[root]; ok {
		w.diags = append(w.diags, w.f.diag("pubsafe", lhs.Pos(),
			"write through %s after it was published via atomic Store/Swap at line %d: readers already see this object — build a fresh copy and re-publish instead",
			root, w.f.pos(pubAt).Line))
	}
}

// writeRoot returns the base identifier of an lvalue and whether the write
// goes through at least one selector/index (i.e. mutates the object rather
// than rebinding the name).
func writeRoot(e ast.Expr) (string, bool) {
	deref := false
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v.Name, deref
		case *ast.SelectorExpr:
			e, deref = v.X, true
		case *ast.IndexExpr:
			e, deref = v.X, true
		case *ast.StarExpr:
			e, deref = v.X, true
		default:
			return "", false
		}
	}
}
