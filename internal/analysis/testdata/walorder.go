// Golden corpus for the walorder analyzer: slab effects must precede the
// WAL append that describes them within one function.
package golden

type wal struct{}

func (w *wal) AppendPut(k, v []byte) uint64 { return 0 }
func (w *wal) AppendDel(k []byte) uint64    { return 0 }

type slabMgrT struct{}

func (s *slabMgrT) Put(k, v []byte) int  { return 0 }
func (s *slabMgrT) Delete(k []byte)      {}
func (s *slabMgrT) RecycleSlots(l []int) {}

type wpart struct {
	wal   *wal
	slabs *slabMgrT
}

func okOrder(p *wpart, key, value []byte) {
	loc := p.slabs.Put(key, value)
	p.wal.AppendPut(key, value)
	_ = loc
}

func badOrder(p *wpart, key, value []byte) {
	p.wal.AppendPut(key, value)
	p.slabs.Put(key, value) // want:walorder after the WAL append
}

// An append in either branch poisons the statements after the merge.
func badBranchOrder(p *wpart, key []byte, cond bool) {
	if cond {
		p.wal.AppendDel(key)
	}
	p.slabs.Delete(key) // want:walorder after the WAL append
}

// An append on a terminating arm does not reach the fallthrough path.
func okTerminatingArm(p *wpart, key, value []byte, cond bool) {
	if cond {
		p.wal.AppendPut(key, value)
		return
	}
	p.slabs.Put(key, value)
	p.wal.AppendPut(key, value)
}

// A goroutine body is its own critical-section story.
func okSeparateGoroutine(p *wpart, key, value []byte) {
	p.wal.AppendPut(key, value)
	go func() {
		p.slabs.RecycleSlots(nil)
	}()
}
