// Golden corpus for the pubsafe analyzer: no field writes through a value
// already handed to atomic.Pointer Store/Swap/CompareAndSwap.
package golden

import "sync/atomic"

type view struct {
	gen uint64
	n   int
}

type vpart struct {
	view atomic.Pointer[view]
	old  *view
}

func okPublishLast(p *vpart) {
	v := &view{}
	v.gen = 1
	p.view.Store(v)
}

func badPatchAfterStore(p *vpart) {
	v := &view{}
	p.view.Store(v)
	v.gen = 2 // want:pubsafe after it was published
}

// Rebinding the name starts a fresh, unpublished object.
func okRepublish(p *vpart) {
	v := &view{}
	p.view.Store(v)
	v = &view{}
	v.gen = 2
	p.view.Store(v)
}

func badPatchAfterSwap(p *vpart) {
	v := &view{}
	p.old = p.view.Swap(v)
	v.n++ // want:pubsafe after it was published
}

// &ident publishes the object the ident names.
func badPatchAfterAddrStore(p *vpart) {
	v := view{}
	p.view.Store(&v)
	v.gen = 3 // want:pubsafe after it was published
}

// Publication in a branch taints the statements after it.
func badPatchAfterBranchStore(p *vpart, cond bool) {
	v := &view{}
	if cond {
		p.view.Store(v)
	}
	v.n = 4 // want:pubsafe after it was published
}
