// Golden corpus for the ignore directive: every construct here would be
// flagged without its //prismvet:ignore, so this file asserts that valid,
// reasoned suppressions silence the analyzers. Malformed directives are
// exercised by unit tests (they must REPORT, so they cannot live in a
// zero-diagnostic golden file).
package golden

func probe() error { return nil }

func suppressedOnLineAbove() error {
	err := step()
	//prismvet:ignore shadowerr probe errors are expected and intentionally uncounted
	if err := probe(); err != nil {
		counters.drops++
	}
	return err
}

func suppressedSameLine() error {
	err := step()
	if err := probe(); err != nil { //prismvet:ignore shadowerr probe errors are expected here too
		counters.drops++
	}
	return err
}

func suppressedPin(p *pt, cond bool) {
	//prismvet:ignore refpair the matching UnpinEpoch lives in a paired release function
	p.slabs.PinEpoch()
	if cond {
		return
	}
	p.slabs.UnpinEpoch()
}

func suppressedList(p *part) {
	//prismvet:ignore lockheld,refpair exercised by the directive-list parser; callers hold the lock by construction
	p.bumpLocked()
}
