// Golden corpus for the shadowerr analyzer: if-init err declarations that
// shadow an outer err while the block drops the inner error.
package golden

type m struct{ drops int }

var counters m

func step() error             { return nil }
func step2() error            { return nil }
func flush() error            { return nil }
func logf(f string, a ...any) {}
func celebrate()              {}

// No outer err in scope: an if-init err is a plain declaration.
func okNoOuter() error {
	if err := step(); err != nil {
		return err
	}
	return nil
}

func badShadowDrop() error {
	err := step()
	if err := step2(); err != nil { // want:shadowerr silently dropped
		counters.drops++
	}
	return err
}

// Returning consumes the inner error.
func okReturns() error {
	err := step()
	if err := step2(); err != nil {
		return err
	}
	return err
}

// Referencing err in the body (logging) consumes it.
func okUses() error {
	err := step()
	if err := step2(); err != nil {
		logf("step2: %v", err)
	}
	return err
}

// err == nil success gates visibly choose to ignore the failure path.
func okSuccessGate() error {
	err := step()
	if err := flush(); err == nil {
		celebrate()
	}
	return err
}

// Named results put err in scope too.
func badNamedResult() (err error) {
	err = step()
	if err := step2(); err != nil { // want:shadowerr silently dropped
		counters.drops++
	}
	return
}
