// Golden corpus for the refpair analyzer: Acquire/Release, acquireView/
// release, PinEpoch/UnpinEpoch pairing on every path. Diagnostics anchor at
// the acquire site.
package golden

type manifest struct{}

type snapshot struct{}

func (m *manifest) Acquire() *snapshot { return &snapshot{} }
func (s *snapshot) Release()           {}
func (s *snapshot) Find(k []byte) bool { return false }

type slabs struct{}

func (s *slabs) PinEpoch()           {}
func (s *slabs) UnpinEpoch()         {}
func (s *slabs) UnpinEpochDeferred() {}

type pt struct{ slabs *slabs }

func work() {}

var errBoom error

func okDefer(m *manifest) {
	s := m.Acquire()
	defer s.Release()
	s.Find(nil)
}

func okAllPaths(m *manifest, cond bool) {
	s := m.Acquire()
	if cond {
		s.Release()
		return
	}
	s.Release()
}

func badEarlyReturn(m *manifest, cond bool) error {
	s := m.Acquire() // want:refpair not released
	if cond {
		return errBoom
	}
	s.Release()
	return nil
}

func badFallOff(m *manifest) {
	s := m.Acquire() // want:refpair not released
	s.Find(nil)
}

// Returning the handle transfers ownership out of the function.
func okEscapeReturn(m *manifest) *snapshot {
	s := m.Acquire()
	return s
}

type holder struct{ snap *snapshot }

// Storing straight into a field transfers ownership to the struct.
func okEscapeStore(h *holder, m *manifest) {
	h.snap = m.Acquire()
}

func okPin(p *pt) {
	p.slabs.PinEpoch()
	work()
	p.slabs.UnpinEpoch()
}

func okPinDefer(p *pt) {
	p.slabs.PinEpoch()
	defer p.slabs.UnpinEpochDeferred()
	work()
}

func badPinEarlyReturn(p *pt, cond bool) {
	p.slabs.PinEpoch() // want:refpair not released
	if cond {
		return
	}
	p.slabs.UnpinEpoch()
}

// Re-acquiring over a live handle leaks the first acquire.
func badRebind(m *manifest) {
	s := m.Acquire() // want:refpair not released
	s = m.Acquire()
	s.Release()
}

// Release on every switch arm discharges the obligation.
func okSwitchAllArms(m *manifest, n int) {
	s := m.Acquire()
	switch n {
	case 0:
		s.Release()
	default:
		s.Release()
	}
}
