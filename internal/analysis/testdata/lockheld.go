// Golden corpus for the lockheld analyzer. Lines carrying a
// `// want:<analyzer> <substring>` marker must produce exactly that
// diagnostic; unmarked lines must stay silent.
package golden

import "sync"

type part struct {
	mu    sync.Mutex
	count int
}

func (p *part) bumpLocked() { p.count++ }

func (p *part) okPlain() {
	p.mu.Lock()
	p.bumpLocked()
	p.mu.Unlock()
}

func (p *part) okDefer() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.bumpLocked()
}

func (p *part) okTryLock() {
	if p.mu.TryLock() {
		p.bumpLocked()
		p.mu.Unlock()
	}
}

func (p *part) okNegatedTryLock() {
	if !p.mu.TryLock() {
		return
	}
	defer p.mu.Unlock()
	p.bumpLocked()
}

// A *Locked function's contract covers further *Locked calls on the same
// receiver.
func (p *part) drainLocked() {
	p.bumpLocked()
}

func (p *part) badUnheld() {
	p.bumpLocked() // want:lockheld called without
}

func (p *part) badAfterUnlock() {
	p.mu.Lock()
	p.bumpLocked()
	p.mu.Unlock()
	p.bumpLocked() // want:lockheld called without
}

// A *Locked function taking its own receiver's lock deadlocks the caller.
func (p *part) resetLocked() {
	p.mu.Lock() // want:lockheld self-deadlock
	p.count = 0
}

type cursor struct{ p *part }

// Alias resolution: a lock taken through the alias covers calls through the
// original chain.
func (c *cursor) okAlias() {
	p := c.p
	p.mu.Lock()
	c.p.bumpLocked()
	p.mu.Unlock()
}

// A spawned goroutine does not inherit the spawner's locks.
func (p *part) badGoroutine() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		p.bumpLocked() // want:lockheld called without
	}()
}

// A lock taken in only one branch is not held after the merge.
func (p *part) badBranch(cond bool) {
	if cond {
		p.mu.Lock()
	}
	p.bumpLocked() // want:lockheld called without
	p.mu.Unlock()
}

// Both branches locking IS held after the merge.
func (p *part) okBothBranches(cond bool) {
	if cond {
		p.mu.Lock()
	} else {
		p.mu.Lock()
	}
	p.bumpLocked()
	p.mu.Unlock()
}
