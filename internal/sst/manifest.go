package sst

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"github.com/prismdb/prismdb/internal/simdev"
)

// Manifest tracks the live SST files of one partition's flash log, in the
// style of RocksDB's live-file tracking (§6): an on-device manifest file
// records the current file set for recovery, and in-memory reference counts
// guarantee a compaction never deletes an SST still in use by a concurrent
// Get or Scan iterator.
//
// Tables are kept sorted by smallest key; within a single-level log the key
// ranges are disjoint.
type Manifest struct {
	dev   *simdev.Device
	cache *simdev.PageCache
	name  string

	mu     sync.Mutex
	tables []*Table
}

// NewManifest creates an empty manifest backed by the named device file.
func NewManifest(dev *simdev.Device, cache *simdev.PageCache, name string) (*Manifest, error) {
	m := &Manifest{dev: dev, cache: cache, name: name}
	if _, err := dev.CreateFile(name); err != nil {
		return nil, err
	}
	if err := m.persist(); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadManifest reopens a manifest and all live tables it references,
// charging recovery I/O to clk.
func LoadManifest(dev *simdev.Device, cache *simdev.PageCache, name string, clk *simdev.Clock) (*Manifest, error) {
	f, err := dev.OpenFile(name)
	if err != nil {
		return nil, err
	}
	data := make([]byte, f.Size())
	if err := f.ReadAt(data, 0); err != nil {
		return nil, err
	}
	if clk != nil && len(data) > 0 {
		dev.AccessClk(clk, simdev.OpRead, int64(len(data)))
	}
	if len(data) < 4 {
		return nil, fmt.Errorf("sst: manifest %s truncated", name)
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	m := &Manifest{dev: dev, cache: cache, name: name}
	for i := 0; i < n; i++ {
		if len(data) < 2 {
			return nil, fmt.Errorf("sst: manifest %s truncated entry", name)
		}
		nl := int(binary.LittleEndian.Uint16(data))
		data = data[2:]
		if len(data) < nl {
			return nil, fmt.Errorf("sst: manifest %s truncated name", name)
		}
		fname := string(data[:nl])
		data = data[nl:]
		t, err := Open(dev, cache, fname, clk)
		if err != nil {
			return nil, fmt.Errorf("sst: manifest %s references %s: %v", name, fname, err)
		}
		t.refs = 1 // the manifest's own reference
		m.tables = append(m.tables, t)
	}
	m.sortTables()
	return m, nil
}

func (m *Manifest) sortTables() {
	sort.Slice(m.tables, func(i, j int) bool {
		return bytes.Compare(m.tables[i].smallest, m.tables[j].smallest) < 0
	})
}

// persist rewrites the manifest file. Caller holds m.mu (or is initialising).
func (m *Manifest) persist() error {
	var buf []byte
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(m.tables)))
	buf = append(buf, cnt[:]...)
	for _, t := range m.tables {
		var nl [2]byte
		binary.LittleEndian.PutUint16(nl[:], uint16(len(t.Name())))
		buf = append(buf, nl[:]...)
		buf = append(buf, t.Name()...)
	}
	// Rewrite in place: remove and recreate (the simulation's files don't
	// support truncating writes).
	m.dev.RemoveFile(m.name)
	f, err := m.dev.CreateFile(m.name)
	if err != nil {
		return err
	}
	_, err = f.Append(buf)
	return err
}

// Apply atomically installs added tables and removes old ones, persisting
// the new file set. Removed tables keep their files on the device until the
// last reader releases them. Added tables must already be finished.
func (m *Manifest) Apply(add, remove []*Table) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rm := make(map[*Table]bool, len(remove))
	for _, t := range remove {
		rm[t] = true
	}
	kept := m.tables[:0]
	for _, t := range m.tables {
		if rm[t] {
			continue
		}
		kept = append(kept, t)
	}
	m.tables = kept
	for _, t := range add {
		t.refs++ // the manifest's reference
		m.tables = append(m.tables, t)
	}
	m.sortTables()
	if err := m.persist(); err != nil {
		return err
	}
	for _, t := range remove {
		m.unrefLocked(t)
	}
	return nil
}

// Current returns a snapshot of the live tables, sorted by smallest key,
// with a reference taken on each. Callers must Release the snapshot.
func (m *Manifest) Current() []*Table {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := make([]*Table, len(m.tables))
	copy(snap, m.tables)
	for _, t := range snap {
		t.refs++
	}
	return snap
}

// Release drops the references taken by Current, deleting any table that
// was removed from the manifest while the snapshot was held.
func (m *Manifest) Release(snap []*Table) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range snap {
		m.unrefLocked(t)
	}
}

func (m *Manifest) unrefLocked(t *Table) {
	t.refs--
	if t.refs <= 0 {
		m.dev.RemoveFile(t.Name())
		if m.cache != nil {
			m.cache.InvalidateFile(t.Name())
		}
	}
}

// Tables returns the number of live tables.
func (m *Manifest) Tables() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.tables)
}

// TotalBytes returns the summed size of live tables.
func (m *Manifest) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, t := range m.tables {
		n += t.size
	}
	return n
}

// TotalCount returns the summed record count of live tables.
func (m *Manifest) TotalCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int
	for _, t := range m.tables {
		n += t.count
	}
	return n
}

// MetaBytes returns the summed NVM footprint of all tables' indices and
// filters.
func (m *Manifest) MetaBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, t := range m.tables {
		n += t.MetaBytes()
	}
	return n
}

// refsOf reports a table's current reference count (testing hook).
func (m *Manifest) refsOf(t *Table) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return t.refs
}
