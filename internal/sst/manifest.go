package sst

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/prismdb/prismdb/internal/simdev"
)

// Manifest tracks the live SST files of one partition's flash log, in the
// style of RocksDB's live-file tracking (§6): an on-device manifest file
// records the current file set for recovery, and reference counts guarantee
// a compaction never deletes an SST still in use by a concurrent Get or
// Scan iterator.
//
// The live file set is published as an immutable copy-on-write Snapshot
// behind an atomic pointer. Readers acquire the current snapshot with two
// atomic operations and no allocation; only Apply (rare: one call per
// compaction commit) takes the mutex and builds a new snapshot. Reference
// counting is per-snapshot rather than per-table-per-read: a snapshot holds
// one reference on each of its tables for its whole lifetime, so the
// foreground read path never touches table refcounts at all.
type Manifest struct {
	dev   *simdev.Device
	cache *simdev.PageCache
	name  string

	// In journaled (durable) mode, edits go to an external journal keyed
	// by partition instead of rewriting a per-partition manifest file in
	// place: the journal's framed appends make each compaction commit
	// crash-atomic, which the rewrite never was.
	journal Journal
	part    int

	// mu serializes Apply/persist and table refcount transitions. The
	// foreground read path never takes it.
	mu  sync.Mutex
	cur atomic.Pointer[Snapshot]
}

// Journal records SST add/remove edits durably. Implemented by the storage
// layer's manifest journal; defined here so sst does not depend on it.
type Journal interface {
	LogEdit(part int, add, remove []string) error
}

// Snapshot is an immutable view of a manifest's live tables, sorted by
// smallest key with disjoint ranges. Aggregate sizes are precomputed so the
// engine's per-op accounting (NVM usage, object counts) is O(1) and
// lock-free. Callers must Release every snapshot they Acquire.
type Snapshot struct {
	m      *Manifest
	tables []*Table

	totalBytes int64
	totalCount int
	metaBytes  int64

	// refs counts the manifest's own reference (until the snapshot is
	// superseded by Apply) plus one per outstanding Acquire. freed latches
	// the drop-to-zero transition so a racing Acquire that resurrects and
	// re-releases a dying snapshot cannot double-unref its tables.
	refs  atomic.Int64
	freed atomic.Bool
}

// newSnapshot builds a snapshot over tables (already sorted), taking one
// table reference each. Caller holds m.mu.
func (m *Manifest) newSnapshot(tables []*Table) *Snapshot {
	s := &Snapshot{m: m, tables: tables}
	for _, t := range tables {
		t.refs++
		s.totalBytes += t.size
		s.totalCount += t.count
		s.metaBytes += t.MetaBytes()
	}
	s.refs.Store(1) // the manifest's reference
	return s
}

// NewManifest creates an empty manifest backed by the named device file.
func NewManifest(dev *simdev.Device, cache *simdev.PageCache, name string) (*Manifest, error) {
	m := &Manifest{dev: dev, cache: cache, name: name}
	if _, err := dev.CreateFile(name); err != nil {
		return nil, err
	}
	m.cur.Store(m.newSnapshot(nil))
	if err := m.persist(nil); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadManifest reopens a manifest and all live tables it references,
// charging recovery I/O to clk.
func LoadManifest(dev *simdev.Device, cache *simdev.PageCache, name string, clk *simdev.Clock) (*Manifest, error) {
	f, err := dev.OpenFile(name)
	if err != nil {
		return nil, err
	}
	data := make([]byte, f.Size())
	if err := f.ReadAt(data, 0); err != nil {
		return nil, err
	}
	if clk != nil && len(data) > 0 {
		dev.AccessClk(clk, simdev.OpRead, int64(len(data)))
	}
	if len(data) < 4 {
		return nil, fmt.Errorf("sst: manifest %s truncated", name)
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	m := &Manifest{dev: dev, cache: cache, name: name}
	var tables []*Table
	for i := 0; i < n; i++ {
		if len(data) < 2 {
			return nil, fmt.Errorf("sst: manifest %s truncated entry", name)
		}
		nl := int(binary.LittleEndian.Uint16(data))
		data = data[2:]
		if len(data) < nl {
			return nil, fmt.Errorf("sst: manifest %s truncated name", name)
		}
		fname := string(data[:nl])
		data = data[nl:]
		t, err := Open(dev, cache, fname, clk)
		if err != nil {
			return nil, fmt.Errorf("sst: manifest %s references %s: %v", name, fname, err)
		}
		tables = append(tables, t)
	}
	sortTables(tables)
	m.cur.Store(m.newSnapshot(tables))
	return m, nil
}

// NewManifestJournaled builds a manifest whose edits are recorded in j
// under the partition's id, seeded with tables (already opened from the
// journal's live set during recovery; may be nil). No device-side manifest
// file exists in this mode and nothing is written at construction — the
// journal already describes exactly this state.
func NewManifestJournaled(dev *simdev.Device, cache *simdev.PageCache, j Journal, part int, tables []*Table) *Manifest {
	m := &Manifest{dev: dev, cache: cache, journal: j, part: part}
	sortTables(tables)
	m.cur.Store(m.newSnapshot(tables))
	return m
}

func sortTables(tables []*Table) {
	sort.Slice(tables, func(i, j int) bool {
		return bytes.Compare(tables[i].smallest, tables[j].smallest) < 0
	})
}

// persist rewrites the manifest file. Caller holds m.mu (or is initialising).
func (m *Manifest) persist(tables []*Table) error {
	var buf []byte
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(tables)))
	buf = append(buf, cnt[:]...)
	for _, t := range tables {
		var nl [2]byte
		binary.LittleEndian.PutUint16(nl[:], uint16(len(t.Name())))
		buf = append(buf, nl[:]...)
		buf = append(buf, t.Name()...)
	}
	// Rewrite in place: remove and recreate (the simulation's files don't
	// support truncating writes).
	m.dev.RemoveFile(m.name)
	f, err := m.dev.CreateFile(m.name)
	if err != nil {
		return err
	}
	_, err = f.Append(buf)
	return err
}

// Apply atomically installs added tables and removes old ones, persisting
// the new file set and publishing a fresh snapshot. Removed tables keep
// their files on the device until the last snapshot referencing them is
// released. Added tables must already be finished.
func (m *Manifest) Apply(add, remove []*Table) error {
	m.mu.Lock()
	old := m.cur.Load()
	rm := make(map[*Table]bool, len(remove))
	for _, t := range remove {
		rm[t] = true
	}
	tables := make([]*Table, 0, len(old.tables)-len(remove)+len(add))
	for _, t := range old.tables {
		if rm[t] {
			continue
		}
		tables = append(tables, t)
	}
	tables = append(tables, add...)
	sortTables(tables)
	next := m.newSnapshot(tables)
	if err := m.commitLocked(add, remove, tables); err != nil {
		// Roll back the new snapshot's table references.
		for _, t := range tables {
			m.unrefLocked(t)
		}
		m.mu.Unlock()
		return err
	}
	m.cur.Store(next)
	m.mu.Unlock()
	old.Release() // drop the manifest's reference on the superseded snapshot
	return nil
}

// commitLocked makes an Apply durable. In journaled mode the added tables'
// file contents are fsynced first — an SST must be fully on disk before
// the journal edit that makes it live — and then the edit is one framed,
// fsynced append. In simulation mode the per-partition manifest file is
// rewritten as before. Caller holds m.mu.
func (m *Manifest) commitLocked(add, remove, tables []*Table) error {
	if m.journal == nil {
		return m.persist(tables)
	}
	addN := make([]string, len(add))
	for i, t := range add {
		if err := t.file.Sync(); err != nil {
			return err
		}
		addN[i] = t.Name()
	}
	rmN := make([]string, len(remove))
	for i, t := range remove {
		rmN[i] = t.Name()
	}
	return m.journal.LogEdit(m.part, addN, rmN)
}

// Acquire returns the current snapshot with a reference taken. It is
// lock-free and allocation-free; callers must Release the snapshot.
func (m *Manifest) Acquire() *Snapshot {
	for {
		s := m.cur.Load()
		s.refs.Add(1)
		// Validate after incrementing: if the snapshot is still current,
		// the manifest's own reference was included in the count we
		// incremented from, so the snapshot is alive and ours. Otherwise
		// it may already be draining — undo and retry on the new one.
		if m.cur.Load() == s {
			return s
		}
		s.Release()
	}
}

// Release drops one reference. When the last reference goes, every table
// the snapshot pinned is unreferenced, deleting tables that are no longer
// in any snapshot.
func (s *Snapshot) Release() {
	if s.refs.Add(-1) > 0 {
		return
	}
	// A concurrent Acquire may briefly resurrect the count and release it
	// again; only the first drop-to-zero frees the tables.
	if !s.freed.CompareAndSwap(false, true) {
		return
	}
	s.m.mu.Lock()
	for _, t := range s.tables {
		s.m.unrefLocked(t)
	}
	s.m.mu.Unlock()
}

// Tables returns the snapshot's live tables, sorted by smallest key.
// Callers must not modify the returned slice.
func (s *Snapshot) Tables() []*Table { return s.tables }

// Len returns the number of live tables in the snapshot.
func (s *Snapshot) Len() int { return len(s.tables) }

// Find returns the table whose key range may contain key, or nil. Ranges
// are disjoint and sorted by smallest key, so at most one table qualifies
// and a binary search locates it.
func (s *Snapshot) Find(key []byte) *Table {
	i := sort.Search(len(s.tables), func(i int) bool {
		return bytes.Compare(s.tables[i].smallest, key) > 0
	})
	if i == 0 {
		return nil
	}
	t := s.tables[i-1]
	if bytes.Compare(t.largest, key) < 0 {
		return nil
	}
	return t
}

// SearchFrom returns the index of the first table whose largest key is ≥
// start (all tables for nil start): the scan cursor's starting table.
func (s *Snapshot) SearchFrom(start []byte) int {
	if start == nil {
		return 0
	}
	return sort.Search(len(s.tables), func(i int) bool {
		return bytes.Compare(s.tables[i].largest, start) >= 0
	})
}

// Quarantine removes t from the live set — the scrubber's response to a
// failed block CRC. The edit is journaled like a compaction commit, so the
// corrupt table stays gone across restarts; unlike a normal removal the
// file itself is left on the device for post-mortem inspection (the next
// recovery's orphan sweep clears it, since the journal no longer references
// it). Reads of keys the table covered fall through to whatever other tiers
// hold: an NVM copy still serves, a flash-only key reports not-found rather
// than returning rotted bytes.
func (m *Manifest) Quarantine(t *Table) error {
	m.mu.Lock()
	t.quarantined = true
	m.mu.Unlock()
	return m.Apply(nil, []*Table{t})
}

func (m *Manifest) unrefLocked(t *Table) {
	t.refs--
	if t.refs <= 0 {
		if !t.quarantined {
			m.dev.RemoveFile(t.Name())
		}
		if m.cache != nil {
			m.cache.InvalidateFile(t.Name())
		}
	}
}

// Tables returns the number of live tables.
func (m *Manifest) Tables() int { return len(m.cur.Load().tables) }

// TotalBytes returns the summed size of live tables.
func (m *Manifest) TotalBytes() int64 { return m.cur.Load().totalBytes }

// TotalCount returns the summed record count of live tables.
func (m *Manifest) TotalCount() int { return m.cur.Load().totalCount }

// MetaBytes returns the summed NVM footprint of all tables' indices and
// filters.
func (m *Manifest) MetaBytes() int64 { return m.cur.Load().metaBytes }

// refsOf reports a table's current reference count (testing hook).
func (m *Manifest) refsOf(t *Table) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return t.refs
}

// snapshotRefs reports a snapshot's current reference count (testing hook).
func (s *Snapshot) snapshotRefs() int64 { return s.refs.Load() }
