package sst

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"github.com/prismdb/prismdb/internal/simdev"
)

func testDev() (*simdev.Device, *simdev.PageCache) {
	return simdev.New(simdev.QLCParams(1 << 30)), simdev.NewPageCache(256 << 10)
}

func buildTable(t *testing.T, dev *simdev.Device, cache *simdev.PageCache, name string, n int) *Table {
	t.Helper()
	w := NewWriter(dev, cache, name, 0)
	for i := 0; i < n; i++ {
		err := w.Add(Record{
			Key:     []byte(fmt.Sprintf("key-%06d", i)),
			Value:   []byte(fmt.Sprintf("value-%06d", i)),
			Version: uint64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := w.Finish(nil)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestWriterRejectsOutOfOrder(t *testing.T) {
	dev, cache := testDev()
	w := NewWriter(dev, cache, "t1", 0)
	w.Add(Record{Key: []byte("b"), Version: 1})
	if err := w.Add(Record{Key: []byte("a"), Version: 2}); err == nil {
		t.Fatal("out-of-order key accepted")
	}
	if err := w.Add(Record{Key: []byte("b"), Version: 2}); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestEmptyTableRejected(t *testing.T) {
	dev, cache := testDev()
	w := NewWriter(dev, cache, "t1", 0)
	if _, err := w.Finish(nil); err == nil {
		t.Fatal("empty Finish must fail")
	}
}

func TestGetFound(t *testing.T) {
	dev, cache := testDev()
	tbl := buildTable(t, dev, cache, "t1", 1000)
	clk := simdev.NewClock()
	for _, i := range []int{0, 1, 499, 500, 998, 999} {
		key := []byte(fmt.Sprintf("key-%06d", i))
		rec, ok, err := tbl.Get(clk, key)
		if err != nil || !ok {
			t.Fatalf("Get(%s): ok=%v err=%v", key, ok, err)
		}
		if string(rec.Value) != fmt.Sprintf("value-%06d", i) || rec.Version != uint64(i+1) {
			t.Fatalf("Get(%s) = %+v", key, rec)
		}
	}
	if tbl.Count() != 1000 {
		t.Fatalf("Count = %d", tbl.Count())
	}
}

func TestGetAbsent(t *testing.T) {
	dev, cache := testDev()
	tbl := buildTable(t, dev, cache, "t1", 100)
	dev.ResetStats()
	misses := 0
	for i := 0; i < 1000; i++ {
		_, ok, err := tbl.Get(nil, []byte(fmt.Sprintf("nokey-%06d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatal("found absent key")
		}
		misses++
	}
	// Bloom filter should have stopped almost all flash reads.
	if st := dev.Stats(); st.ReadOps > int64(misses/10) {
		t.Fatalf("bloom filter ineffective: %d reads for %d absent keys", st.ReadOps, misses)
	}
}

func TestSmallestLargestOverlaps(t *testing.T) {
	dev, cache := testDev()
	tbl := buildTable(t, dev, cache, "t1", 100)
	if string(tbl.Smallest()) != "key-000000" || string(tbl.Largest()) != "key-000099" {
		t.Fatalf("bounds %q..%q", tbl.Smallest(), tbl.Largest())
	}
	cases := []struct {
		lo, hi string
		want   bool
	}{
		{"key-000050", "key-000060", true},
		{"key-000099", "key-000200", true},
		{"key-000100", "key-000200", false},
		{"a", "key-000000", true},
		{"a", "b", false},
	}
	for _, c := range cases {
		if got := tbl.Overlaps([]byte(c.lo), []byte(c.hi)); got != c.want {
			t.Fatalf("Overlaps(%s,%s) = %v", c.lo, c.hi, got)
		}
	}
	if !tbl.Overlaps(nil, nil) {
		t.Fatal("unbounded range must overlap")
	}
}

func TestOpenRoundTrip(t *testing.T) {
	dev, cache := testDev()
	buildTable(t, dev, cache, "t1", 500)
	clk := simdev.NewClock()
	tbl, err := Open(dev, cache, "t1", clk)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Count() != 500 {
		t.Fatalf("Count = %d", tbl.Count())
	}
	if string(tbl.Smallest()) != "key-000000" || string(tbl.Largest()) != "key-000499" {
		t.Fatalf("bounds %q..%q", tbl.Smallest(), tbl.Largest())
	}
	rec, ok, _ := tbl.Get(nil, []byte("key-000250"))
	if !ok || string(rec.Value) != "value-000250" {
		t.Fatalf("Get after open: %+v ok=%v", rec, ok)
	}
	if clk.Now() == 0 {
		t.Fatal("Open should charge metadata read I/O")
	}
}

func TestOpenErrors(t *testing.T) {
	dev, cache := testDev()
	if _, err := Open(dev, cache, "missing", nil); err == nil {
		t.Fatal("open of missing file must fail")
	}
	f, _ := dev.CreateFile("junk")
	f.Append(make([]byte, 100))
	if _, err := Open(dev, cache, "junk", nil); err == nil {
		t.Fatal("open of junk file must fail (bad magic)")
	}
}

func TestReadAllOrdered(t *testing.T) {
	dev, cache := testDev()
	tbl := buildTable(t, dev, cache, "t1", 777)
	clk := simdev.NewClock()
	var keys []string
	err := tbl.ReadAll(clk, func(r Record) error {
		keys = append(keys, string(r.Key))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 777 {
		t.Fatalf("ReadAll yielded %d", len(keys))
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatal("ReadAll out of order")
	}
	if clk.Now() == 0 {
		t.Fatal("ReadAll should charge sequential read")
	}
}

func TestIterSeekAndScan(t *testing.T) {
	dev, cache := testDev()
	tbl := buildTable(t, dev, cache, "t1", 1000)
	it := tbl.Iter(nil, []byte("key-000500"), false)
	var got []string
	for it.Valid() && len(got) < 5 {
		got = append(got, string(it.Record().Key))
		it.Next()
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	want := []string{"key-000500", "key-000501", "key-000502", "key-000503", "key-000504"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iter got %v", got)
		}
	}
	// Seek before the first key.
	it2 := tbl.Iter(nil, []byte("a"), false)
	if !it2.Valid() || string(it2.Record().Key) != "key-000000" {
		t.Fatal("seek before min failed")
	}
	// Seek past the last key.
	it3 := tbl.Iter(nil, []byte("z"), false)
	if it3.Valid() {
		t.Fatal("seek past max should be invalid")
	}
	// Full scan from nil.
	count := 0
	for it4 := tbl.Iter(nil, nil, false); it4.Valid(); it4.Next() {
		count++
	}
	if count != 1000 {
		t.Fatalf("full scan count = %d", count)
	}
}

func TestIterSeekBetweenBlocksBoundary(t *testing.T) {
	dev, cache := testDev()
	tbl := buildTable(t, dev, cache, "t1", 500)
	// Seek to a key that doesn't exist between two present keys.
	it := tbl.Iter(nil, []byte("key-000123x"), false)
	if !it.Valid() || string(it.Record().Key) != "key-000124" {
		t.Fatalf("boundary seek got %q valid=%v", it.Record().Key, it.Valid())
	}
}

func TestIterPrefetchFewerDeviceOps(t *testing.T) {
	dev, cache := testDev()
	tbl := buildTable(t, dev, cache, "big", 5000)
	dev.ResetStats()
	clk := simdev.NewClock()
	for it := tbl.Iter(clk, nil, false); it.Valid(); it.Next() {
	}
	noPrefetchOps := dev.Stats().ReadOps
	// Fresh identical table so the page cache state is comparable.
	tbl2 := buildTable(t, dev, cache, "big2", 5000)
	dev.ResetStats()
	clk2 := simdev.NewClock()
	for it := tbl2.Iter(clk2, nil, true); it.Valid(); it.Next() {
	}
	prefetchOps := dev.Stats().ReadOps
	if prefetchOps*4 > noPrefetchOps {
		t.Fatalf("prefetch ops %d not ≪ non-prefetch %d", prefetchOps, noPrefetchOps)
	}
}

func TestTombstonesSurvive(t *testing.T) {
	dev, cache := testDev()
	w := NewWriter(dev, cache, "t1", 0)
	w.Add(Record{Key: []byte("a"), Version: 1})
	w.Add(Record{Key: []byte("b"), Version: 2, Tombstone: true})
	tbl, err := w.Finish(nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok, _ := tbl.Get(nil, []byte("b"))
	if !ok || !rec.Tombstone {
		t.Fatalf("tombstone lost: %+v ok=%v", rec, ok)
	}
}

func TestQuickTableRoundTrip(t *testing.T) {
	// Property: any sorted unique key set written is fully readable, in
	// order, both by Get and by iteration.
	f := func(seed [][2][]byte) bool {
		m := map[string][]byte{}
		for _, kv := range seed {
			if len(kv[0]) == 0 {
				continue
			}
			m[string(kv[0])] = kv[1]
		}
		if len(m) == 0 {
			return true
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		dev, cache := testDev()
		w := NewWriter(dev, cache, "q", 64) // tiny blocks to force many
		for i, k := range keys {
			if err := w.Add(Record{Key: []byte(k), Value: m[k], Version: uint64(i + 1)}); err != nil {
				return false
			}
		}
		tbl, err := w.Finish(nil)
		if err != nil {
			return false
		}
		for _, k := range keys {
			rec, ok, err := tbl.Get(nil, []byte(k))
			if err != nil || !ok || !bytes.Equal(rec.Value, m[k]) {
				return false
			}
		}
		i := 0
		for it := tbl.Iter(nil, nil, false); it.Valid(); it.Next() {
			if string(it.Record().Key) != keys[i] {
				return false
			}
			i++
		}
		return i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestManifestApplyAndPersist(t *testing.T) {
	dev, cache := testDev()
	m, err := NewManifest(dev, cache, "MANIFEST")
	if err != nil {
		t.Fatal(err)
	}
	t1 := buildTable(t, dev, cache, "sst-1", 100)
	t2 := buildTable(t, dev, cache, "sst-2", 100)
	if err := m.Apply([]*Table{t1, t2}, nil); err != nil {
		t.Fatal(err)
	}
	if m.Tables() != 2 || m.TotalCount() != 200 {
		t.Fatalf("tables=%d count=%d", m.Tables(), m.TotalCount())
	}
	// Reload from device.
	m2, err := LoadManifest(dev, cache, "MANIFEST", simdev.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if m2.Tables() != 2 || m2.TotalCount() != 200 {
		t.Fatalf("reloaded tables=%d count=%d", m2.Tables(), m2.TotalCount())
	}
}

func TestManifestRefcountProtectsReaders(t *testing.T) {
	dev, cache := testDev()
	m, _ := NewManifest(dev, cache, "MANIFEST")
	t1 := buildTable(t, dev, cache, "sst-1", 50)
	m.Apply([]*Table{t1}, nil)

	snap := m.Acquire()
	if snap.Len() != 1 {
		t.Fatalf("snapshot size %d", snap.Len())
	}
	// Compaction removes t1 while the snapshot is live.
	if err := m.Apply(nil, []*Table{t1}); err != nil {
		t.Fatal(err)
	}
	// File must still exist for the snapshot holder.
	if _, err := dev.OpenFile("sst-1"); err != nil {
		t.Fatal("file deleted while referenced by a reader")
	}
	if _, ok, err := snap.Tables()[0].Get(nil, []byte("key-000010")); err != nil || !ok {
		t.Fatalf("read through snapshot failed: ok=%v err=%v", ok, err)
	}
	snap.Release()
	if _, err := dev.OpenFile("sst-1"); err == nil {
		t.Fatal("file not deleted after last reference released")
	}
}

func TestManifestTablesSortedDisjoint(t *testing.T) {
	dev, cache := testDev()
	m, _ := NewManifest(dev, cache, "MANIFEST")
	// Build tables out of order.
	w := NewWriter(dev, cache, "sst-b", 0)
	w.Add(Record{Key: []byte("m"), Version: 1})
	tb, _ := w.Finish(nil)
	w2 := NewWriter(dev, cache, "sst-a", 0)
	w2.Add(Record{Key: []byte("a"), Version: 1})
	ta, _ := w2.Finish(nil)
	m.Apply([]*Table{tb, ta}, nil)
	snap := m.Acquire()
	defer snap.Release()
	tabs := snap.Tables()
	if string(tabs[0].Smallest()) != "a" || string(tabs[1].Smallest()) != "m" {
		t.Fatalf("not sorted: %q, %q", tabs[0].Smallest(), tabs[1].Smallest())
	}
}

func TestSnapshotFind(t *testing.T) {
	dev, cache := testDev()
	m, _ := NewManifest(dev, cache, "MANIFEST")
	// Three disjoint tables: [b..d], [f..h], [m..p].
	mk := func(name string, keys ...string) *Table {
		w := NewWriter(dev, cache, name, 0)
		for i, k := range keys {
			if err := w.Add(Record{Key: []byte(k), Version: uint64(i + 1)}); err != nil {
				t.Fatal(err)
			}
		}
		tb, err := w.Finish(nil)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	m.Apply([]*Table{mk("sst-1", "b", "c", "d"), mk("sst-2", "f", "g", "h"), mk("sst-3", "m", "p")}, nil)
	snap := m.Acquire()
	defer snap.Release()
	for _, tc := range []struct {
		key  string
		want string // smallest key of the table expected, "" = no table
	}{
		{"a", ""}, {"b", "b"}, {"c", "b"}, {"d", "b"}, {"e", ""},
		{"f", "f"}, {"h", "f"}, {"i", ""}, {"m", "m"}, {"n", "m"},
		{"p", "m"}, {"q", ""},
	} {
		got := snap.Find([]byte(tc.key))
		switch {
		case tc.want == "" && got != nil:
			t.Fatalf("Find(%q) = table %q, want none", tc.key, got.Smallest())
		case tc.want != "" && got == nil:
			t.Fatalf("Find(%q) = none, want table %q", tc.key, tc.want)
		case tc.want != "" && string(got.Smallest()) != tc.want:
			t.Fatalf("Find(%q) = table %q, want %q", tc.key, got.Smallest(), tc.want)
		}
	}
	if got := snap.SearchFrom([]byte("e")); got != 1 {
		t.Fatalf("SearchFrom(e) = %d, want 1", got)
	}
	if got := snap.SearchFrom(nil); got != 0 {
		t.Fatalf("SearchFrom(nil) = %d, want 0", got)
	}
	if got := snap.SearchFrom([]byte("z")); got != 3 {
		t.Fatalf("SearchFrom(z) = %d, want 3", got)
	}
}

// TestSnapshotRefcountConcurrentApply hammers Acquire/Release against
// concurrent Apply calls: every superseded snapshot must drain to zero
// references exactly once, every removed table's file must be deleted when
// its last snapshot goes, and readers must never observe a deleted file.
// Run with -race.
func TestSnapshotRefcountConcurrentApply(t *testing.T) {
	dev, cache := testDev()
	m, _ := NewManifest(dev, cache, "MANIFEST")
	t0 := buildTable(t, dev, cache, "sst-gen0", 50)
	if err := m.Apply([]*Table{t0}, nil); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var readerErr atomic.Value
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := m.Acquire()
				for _, tb := range snap.Tables() {
					if _, _, err := tb.Get(nil, []byte("key-000010")); err != nil {
						readerErr.Store(err)
						snap.Release()
						return
					}
				}
				snap.Release()
			}
		}()
	}

	// Writer: repeatedly replace the whole table set.
	cur := t0
	for gen := 1; gen <= 60; gen++ {
		next := buildTable(t, dev, cache, fmt.Sprintf("sst-gen%d", gen), 50)
		if err := m.Apply([]*Table{next}, []*Table{cur}); err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	close(done)
	wg.Wait()
	if err := readerErr.Load(); err != nil {
		t.Fatalf("reader observed error: %v", err)
	}

	// Quiescent: only the final table remains, with exactly the current
	// snapshot's single reference; all superseded files are gone.
	if m.Tables() != 1 {
		t.Fatalf("live tables = %d, want 1", m.Tables())
	}
	if refs := m.refsOf(cur); refs != 1 {
		t.Fatalf("final table refs = %d, want 1", refs)
	}
	snap := m.Acquire()
	if got := snap.snapshotRefs(); got != 2 {
		t.Fatalf("acquired snapshot refs = %d, want 2", got)
	}
	snap.Release()
	for gen := 0; gen < 60; gen++ {
		if _, err := dev.OpenFile(fmt.Sprintf("sst-gen%d", gen)); err == nil {
			t.Fatalf("superseded file sst-gen%d not deleted", gen)
		}
	}
}

func TestManifestMetaBytes(t *testing.T) {
	dev, cache := testDev()
	m, _ := NewManifest(dev, cache, "MANIFEST")
	t1 := buildTable(t, dev, cache, "sst-1", 1000)
	m.Apply([]*Table{t1}, nil)
	if m.MetaBytes() <= 0 {
		t.Fatal("MetaBytes should be positive (index + filter on NVM)")
	}
	if m.MetaBytes() != t1.MetaBytes() {
		t.Fatalf("manifest meta %d != table meta %d", m.MetaBytes(), t1.MetaBytes())
	}
}
