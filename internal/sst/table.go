// Package sst implements the Sorted String Table files PrismDB stores on
// flash (§4.1): immutable files of sorted key-value records organised into
// blocks, with a per-file index and bloom filter. As in the paper, the index
// and filter are small enough to live on NVM; the engine accounts for their
// footprint there while this package keeps parsed copies in memory.
//
// SST files store disjoint key ranges within a partition's flash log, which
// makes point lookups a single block read.
package sst

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"github.com/prismdb/prismdb/internal/bloom"
	"github.com/prismdb/prismdb/internal/simdev"
)

// blockCRCTable is the Castagnoli polynomial used for data-block checksums.
var blockCRCTable = crc32.MakeTable(crc32.Castagnoli)

// DefaultBlockSize is the target data-block size. Flash reads happen at
// block granularity, so this matches the device page size.
const DefaultBlockSize = 4096

const footerMagic = 0x5052534d53535431 // "PRSMSST1"

// Record is one stored entry. Tombstones persist deletes of keys whose
// older versions may still exist in earlier flash data.
type Record struct {
	Key       []byte
	Value     []byte
	Version   uint64
	Tombstone bool
}

// blockHandle locates a data block within the file. crc is the Castagnoli
// checksum of the block's bytes, stored in the index (which lives on NVM)
// so the scrubber can detect flash bit rot without trusting the flash
// contents to checksum themselves.
type blockHandle struct {
	off, len int64
	crc      uint32
	lastKey  []byte // largest key in the block
}

// Table is an open, immutable SST file. The parsed index and bloom filter
// are retained in memory (their byte size is reported by MetaBytes so the
// engine can charge NVM capacity for them, per §4.1).
type Table struct {
	file   *simdev.File
	dev    *simdev.Device
	cache  *simdev.PageCache
	index  []blockHandle
	filter *bloom.Filter

	// Optional second-level cache tier (e.g. NVM as an L2 block cache in
	// the rocksdb-l2c baseline): block reads missing the primary cache
	// check tierCache; hits there cost a tierDev read instead of a dev
	// read, and misses are inserted.
	tierCache *simdev.PageCache
	tierDev   *simdev.Device

	smallest []byte
	largest  []byte
	count    int   // number of records
	size     int64 // file bytes
	refs     int   // guarded by the owning Manifest
	// quarantined marks a table the scrubber evicted for bit rot: its file
	// is preserved on the device when the last reference drops, instead of
	// being deleted (guarded by the owning Manifest's mu).
	quarantined bool
}

// SetTierCache installs a second-level block cache backed by tierDev.
func (t *Table) SetTierCache(c *simdev.PageCache, dev *simdev.Device) {
	t.tierCache = c
	t.tierDev = dev
}

// Device returns the device holding the table's file.
func (t *Table) Device() *simdev.Device { return t.dev }

// Name returns the underlying file name.
func (t *Table) Name() string { return t.file.Name() }

// Smallest returns the table's smallest key.
func (t *Table) Smallest() []byte { return t.smallest }

// Largest returns the table's largest key.
func (t *Table) Largest() []byte { return t.largest }

// Count returns the number of records.
func (t *Table) Count() int { return t.count }

// Size returns the file size in bytes.
func (t *Table) Size() int64 { return t.size }

// MetaBytes returns the bytes of index + filter the engine must account for
// on NVM.
func (t *Table) MetaBytes() int64 {
	var n int64
	for _, h := range t.index {
		n += int64(len(h.lastKey)) + 16
	}
	if t.filter != nil {
		n += int64(t.filter.SizeBytes())
	}
	return n
}

// Overlaps reports whether the table's key range intersects [lo, hi].
// A nil hi means +∞; a nil lo means -∞.
func (t *Table) Overlaps(lo, hi []byte) bool {
	if hi != nil && bytes.Compare(t.smallest, hi) > 0 {
		return false
	}
	if lo != nil && bytes.Compare(t.largest, lo) < 0 {
		return false
	}
	return true
}

// appendRecord serializes a record into buf:
// [version u64][keyLen u16][valLen u32][flags u8] key value
func appendRecord(buf []byte, r Record) []byte {
	var hdr [15]byte
	binary.LittleEndian.PutUint64(hdr[0:], r.Version)
	binary.LittleEndian.PutUint16(hdr[8:], uint16(len(r.Key)))
	binary.LittleEndian.PutUint32(hdr[10:], uint32(len(r.Value)))
	if r.Tombstone {
		hdr[14] = 1
	}
	buf = append(buf, hdr[:]...)
	buf = append(buf, r.Key...)
	buf = append(buf, r.Value...)
	return buf
}

// decodeRecord parses one record from data, returning a view whose Key and
// Value alias data, plus the remaining bytes. Callers that retain the
// record beyond the block buffer's lifetime must Clone it.
func decodeRecord(data []byte) (Record, []byte, error) {
	if len(data) < 15 {
		return Record{}, nil, errors.New("sst: truncated record header")
	}
	version := binary.LittleEndian.Uint64(data[0:])
	kl := int(binary.LittleEndian.Uint16(data[8:]))
	vl := int(binary.LittleEndian.Uint32(data[10:]))
	tomb := data[14] == 1
	data = data[15:]
	if len(data) < kl+vl {
		return Record{}, nil, errors.New("sst: truncated record body")
	}
	rec := Record{
		Key:       data[:kl:kl],
		Value:     data[kl : kl+vl : kl+vl],
		Version:   version,
		Tombstone: tomb,
	}
	return rec, data[kl+vl:], nil
}

// Clone returns a record owning fresh copies of its key and value.
func (r Record) Clone() Record {
	r.Key = append([]byte(nil), r.Key...)
	r.Value = append([]byte(nil), r.Value...)
	return r
}

// Writer builds an SST file. Records must be added in strictly increasing
// key order. The file is written with one large sequential device write at
// Finish, matching the paper's flash layout goal of large sequential writes.
type Writer struct {
	dev       *simdev.Device
	cache     *simdev.PageCache
	name      string
	blockSize int

	buf    []byte // current block
	blocks []blockHandle
	data   []byte // all finished blocks
	filter *bloom.Filter
	// Keys are collected for the filter in one flat buffer (offsets into
	// keyBuf) instead of one allocation per key.
	keyBuf   []byte
	keyOffs  []int
	firstKey []byte
	lastKey  []byte
	count    int
}

// NewWriter starts building a table in the named file on dev.
func NewWriter(dev *simdev.Device, cache *simdev.PageCache, name string, blockSize int) *Writer {
	return NewWriterSize(dev, cache, name, blockSize, 0)
}

// NewWriterSize is NewWriter with a hint of the output's data size, so the
// data buffer is allocated once instead of growing through doubling —
// compactions stream entire tables through writers, making that churn the
// largest allocation source in the engine.
func NewWriterSize(dev *simdev.Device, cache *simdev.PageCache, name string, blockSize, sizeHint int) *Writer {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	w := &Writer{dev: dev, cache: cache, name: name, blockSize: blockSize}
	if sizeHint > 0 {
		w.data = make([]byte, 0, sizeHint+blockSize)
		w.keyBuf = make([]byte, 0, sizeHint/32)
	}
	return w
}

// Add appends a record. Keys must arrive in strictly increasing order.
func (w *Writer) Add(r Record) error {
	if w.lastKey != nil && bytes.Compare(r.Key, w.lastKey) <= 0 {
		return fmt.Errorf("sst: keys out of order: %q after %q", r.Key, w.lastKey)
	}
	if w.firstKey == nil {
		w.firstKey = append([]byte(nil), r.Key...)
	}
	w.lastKey = append(w.lastKey[:0], r.Key...)
	w.buf = appendRecord(w.buf, r)
	w.keyOffs = append(w.keyOffs, len(w.keyBuf))
	w.keyBuf = append(w.keyBuf, r.Key...)
	w.count++
	if len(w.buf) >= w.blockSize {
		w.flushBlock()
	}
	return nil
}

func (w *Writer) flushBlock() {
	if len(w.buf) == 0 {
		return
	}
	w.blocks = append(w.blocks, blockHandle{
		off:     int64(len(w.data)),
		len:     int64(len(w.buf)),
		crc:     crc32.Checksum(w.buf, blockCRCTable),
		lastKey: append([]byte(nil), w.lastKey...),
	})
	w.data = append(w.data, w.buf...)
	w.buf = w.buf[:0]
}

// Count returns the records added so far.
func (w *Writer) Count() int { return w.count }

// EstimatedSize returns the bytes buffered so far, for size-based splits.
func (w *Writer) EstimatedSize() int64 { return int64(len(w.data) + len(w.buf)) }

// Finish writes the file and returns an open Table. The write is charged as
// one sequential flash write against clk (nil skips time accounting, e.g.
// during test setup).
func (w *Writer) Finish(clk *simdev.Clock) (*Table, error) {
	if w.count == 0 {
		return nil, errors.New("sst: cannot finish empty table")
	}
	w.flushBlock()

	// Index block.
	var idx []byte
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(w.blocks)))
	idx = append(idx, cnt[:]...)
	for _, b := range w.blocks {
		var h [18]byte
		binary.LittleEndian.PutUint64(h[0:], uint64(b.off))
		binary.LittleEndian.PutUint32(h[8:], uint32(b.len))
		binary.LittleEndian.PutUint32(h[12:], b.crc)
		binary.LittleEndian.PutUint16(h[16:], uint16(len(b.lastKey)))
		idx = append(idx, h[:]...)
		idx = append(idx, b.lastKey...)
	}
	// Smallest key, for reopening.
	var skl [2]byte
	binary.LittleEndian.PutUint16(skl[:], uint16(len(w.firstKey)))
	idx = append(idx, skl[:]...)
	idx = append(idx, w.firstKey...)

	// Bloom filter block.
	w.filter = bloom.New(len(w.keyOffs), 0.01)
	for i, off := range w.keyOffs {
		end := len(w.keyBuf)
		if i+1 < len(w.keyOffs) {
			end = w.keyOffs[i+1]
		}
		w.filter.Add(w.keyBuf[off:end])
	}
	fb := w.filter.Bytes()

	// Layout: data | index | filter | footer. Sections are appended to the
	// file directly (no intermediate assembly buffer); the device write is
	// still charged as one large sequential request below.
	idxOff := int64(len(w.data))
	fOff := idxOff + int64(len(idx))
	var footer [48]byte
	binary.LittleEndian.PutUint64(footer[0:], uint64(idxOff))
	binary.LittleEndian.PutUint64(footer[8:], uint64(len(idx)))
	binary.LittleEndian.PutUint64(footer[16:], uint64(fOff))
	binary.LittleEndian.PutUint64(footer[24:], uint64(len(fb)))
	binary.LittleEndian.PutUint64(footer[32:], uint64(w.count))
	binary.LittleEndian.PutUint64(footer[40:], footerMagic)
	total := fOff + int64(len(fb)) + 48

	f, err := w.dev.CreateFile(w.name)
	if err != nil {
		return nil, err
	}
	for _, part := range [][]byte{w.data, idx, fb, footer[:]} {
		if _, err := f.Append(part); err != nil {
			w.dev.RemoveFile(w.name)
			return nil, err
		}
	}
	if clk != nil {
		w.dev.AccessClk(clk, simdev.OpWrite, total)
	}
	return &Table{
		file:     f,
		dev:      w.dev,
		cache:    w.cache,
		index:    w.blocks,
		filter:   w.filter,
		smallest: w.firstKey,
		largest:  append([]byte(nil), w.lastKey...),
		count:    w.count,
		size:     total,
	}, nil
}

// Open loads an existing SST file's metadata (footer, index, filter). Used
// during recovery; charges one sequential read of the metadata if clk is
// non-nil.
func Open(dev *simdev.Device, cache *simdev.PageCache, name string, clk *simdev.Clock) (*Table, error) {
	f, err := dev.OpenFile(name)
	if err != nil {
		return nil, err
	}
	size := f.Size()
	if size < 48 {
		return nil, fmt.Errorf("sst: %s too small (%d bytes)", name, size)
	}
	var footer [48]byte
	if err := f.ReadAt(footer[:], size-48); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(footer[40:]) != footerMagic {
		return nil, fmt.Errorf("sst: %s bad magic", name)
	}
	idxOff := int64(binary.LittleEndian.Uint64(footer[0:]))
	idxLen := int64(binary.LittleEndian.Uint64(footer[8:]))
	fOff := int64(binary.LittleEndian.Uint64(footer[16:]))
	fLen := int64(binary.LittleEndian.Uint64(footer[24:]))
	count := int(binary.LittleEndian.Uint64(footer[32:]))
	if idxOff < 0 || idxOff+idxLen > size || fOff < 0 || fOff+fLen > size {
		return nil, fmt.Errorf("sst: %s corrupt footer", name)
	}

	idx := make([]byte, idxLen)
	if err := f.ReadAt(idx, idxOff); err != nil {
		return nil, err
	}
	if clk != nil {
		dev.AccessClk(clk, simdev.OpRead, idxLen+fLen)
	}
	if len(idx) < 4 {
		return nil, fmt.Errorf("sst: %s truncated index", name)
	}
	nBlocks := int(binary.LittleEndian.Uint32(idx))
	idx = idx[4:]
	blocks := make([]blockHandle, 0, nBlocks)
	for i := 0; i < nBlocks; i++ {
		if len(idx) < 18 {
			return nil, fmt.Errorf("sst: %s truncated index entry", name)
		}
		off := int64(binary.LittleEndian.Uint64(idx[0:]))
		blen := int64(binary.LittleEndian.Uint32(idx[8:]))
		crc := binary.LittleEndian.Uint32(idx[12:])
		kl := int(binary.LittleEndian.Uint16(idx[16:]))
		idx = idx[18:]
		if len(idx) < kl {
			return nil, fmt.Errorf("sst: %s truncated index key", name)
		}
		blocks = append(blocks, blockHandle{
			off: off, len: blen, crc: crc,
			lastKey: append([]byte(nil), idx[:kl]...),
		})
		idx = idx[kl:]
	}
	if len(idx) < 2 {
		return nil, fmt.Errorf("sst: %s missing smallest key", name)
	}
	skl := int(binary.LittleEndian.Uint16(idx))
	idx = idx[2:]
	if len(idx) < skl {
		return nil, fmt.Errorf("sst: %s truncated smallest key", name)
	}
	smallest := append([]byte(nil), idx[:skl]...)

	fb := make([]byte, fLen)
	if err := f.ReadAt(fb, fOff); err != nil {
		return nil, err
	}
	filter, err := bloom.FromBytes(fb)
	if err != nil {
		return nil, fmt.Errorf("sst: %s: %v", name, err)
	}
	if nBlocks == 0 {
		return nil, fmt.Errorf("sst: %s has no blocks", name)
	}
	return &Table{
		file:     f,
		dev:      dev,
		cache:    cache,
		index:    blocks,
		filter:   filter,
		smallest: smallest,
		largest:  blocks[len(blocks)-1].lastKey,
		count:    count,
		size:     size,
	}, nil
}

// MayContain consults the bloom filter (held on NVM; no flash I/O).
func (t *Table) MayContain(key []byte) bool {
	return t.filter.MayContain(key)
}

// blockBufPool recycles point-read block buffers: a Table.Get scans one
// block and materializes at most the hit, so the buffer never escapes.
var blockBufPool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, DefaultBlockSize)
		return &b
	},
}

// Get looks up key. A bloom-filter miss costs nothing; otherwise one data
// block is read from flash (through the page cache). Returns (rec, true) if
// found — including tombstones, which callers must check.
func (t *Table) Get(clk *simdev.Clock, key []byte) (Record, bool, error) {
	if !t.filter.MayContain(key) {
		return Record{}, false, nil
	}
	// Binary search for the first block whose lastKey ≥ key.
	lo, hi := 0, len(t.index)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(t.index[mid].lastKey, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(t.index) {
		return Record{}, false, nil
	}
	bp := blockBufPool.Get().(*[]byte)
	defer blockBufPool.Put(bp)
	blk, err := t.readBlockInto(clk, t.index[lo], bp)
	if err != nil {
		return Record{}, false, err
	}
	for len(blk) > 0 {
		rec, rest, err := decodeRecord(blk)
		if err != nil {
			return Record{}, false, err
		}
		switch bytes.Compare(rec.Key, key) {
		case 0:
			// Decode scans are views into the pooled buffer; only the hit
			// is materialized, into a single backing allocation.
			out := make([]byte, len(rec.Key)+len(rec.Value))
			copy(out, rec.Key)
			copy(out[len(rec.Key):], rec.Value)
			rec.Key = out[:len(rec.Key):len(rec.Key)]
			rec.Value = out[len(rec.Key):]
			return rec, true, nil
		case 1:
			return Record{}, false, nil
		}
		blk = rest
	}
	return Record{}, false, nil
}

// readBlock fetches a data block, charging flash I/O for page-cache misses.
func (t *Table) readBlock(clk *simdev.Clock, h blockHandle) ([]byte, error) {
	return t.readBlockInto(clk, h, nil)
}

// readBlockInto is readBlock reading into *bp's backing array when
// provided (growing it as needed).
func (t *Table) readBlockInto(clk *simdev.Clock, h blockHandle, bp *[]byte) ([]byte, error) {
	var buf []byte
	if bp != nil {
		if int64(cap(*bp)) < h.len {
			*bp = make([]byte, h.len)
		}
		buf = (*bp)[:h.len]
	} else {
		buf = make([]byte, h.len)
	}
	if err := t.file.ReadAt(buf, h.off); err != nil {
		return nil, err
	}
	if clk != nil {
		miss := int64(1 + (h.len-1)/simdev.PageSize)
		if t.cache != nil {
			miss = t.cache.Touch(t.file.Name(), h.off, h.len)
		}
		if miss > 0 {
			if t.tierCache != nil && t.tierDev != nil {
				// Pages absent from DRAM may still sit in the L2 tier.
				tierMiss := t.tierCache.Touch(t.file.Name(), h.off, h.len)
				if tierHits := miss - tierMiss; tierHits > 0 {
					t.tierDev.AccessClk(clk, simdev.OpRead, tierHits*simdev.PageSize)
				}
				if tierMiss > 0 {
					t.dev.AccessClk(clk, simdev.OpRead, tierMiss*simdev.PageSize)
					// Filling the L2 cache costs a tier write.
					t.tierDev.AccessClk(clk, simdev.OpWrite, tierMiss*simdev.PageSize)
				}
			} else {
				t.dev.AccessClk(clk, simdev.OpRead, miss*simdev.PageSize)
			}
		}
	}
	return buf, nil
}

// NumBlocks returns how many data blocks the table holds, so a scrubber
// can verify them one at a time with pacing in between.
func (t *Table) NumBlocks() int { return len(t.index) }

// VerifyBlock re-reads data block i and checks it against the CRC recorded
// in the index. The read bypasses the page cache and charges no clock — a
// scrub pass must not perturb the simulation's timing or cache state.
// ok=false with a nil error means the block's bytes no longer match their
// checksum: flash bit rot. Tables are immutable, so VerifyBlock is safe to
// call concurrently with reads as long as the caller holds a manifest
// snapshot reference keeping t alive.
func (t *Table) VerifyBlock(i int, buf []byte) (ok bool, _ []byte, err error) {
	if i < 0 || i >= len(t.index) {
		return false, buf, fmt.Errorf("sst: block %d out of range (table has %d)", i, len(t.index))
	}
	h := t.index[i]
	if int64(cap(buf)) < h.len {
		buf = make([]byte, h.len)
	}
	buf = buf[:h.len]
	if err := t.file.ReadAt(buf, h.off); err != nil {
		return false, buf, err
	}
	return crc32.Checksum(buf, blockCRCTable) == h.crc, buf, nil
}

// ReadAll streams every record to fn in key order, charging one sequential
// read of the data section. Compactions use this to merge tables. The
// records passed to fn are views into per-block buffers; retaining one
// keeps its whole block reachable (fine for merge-lifetime retention —
// Clone to hold a record longer than the table's data is worth pinning).
func (t *Table) ReadAll(clk *simdev.Clock, fn func(Record) error) error {
	if clk != nil {
		var dataLen int64
		for _, h := range t.index {
			dataLen += h.len
		}
		t.dev.AccessClk(clk, simdev.OpRead, dataLen)
	}
	for _, h := range t.index {
		buf := make([]byte, h.len)
		if err := t.file.ReadAt(buf, h.off); err != nil {
			return err
		}
		for len(buf) > 0 {
			rec, rest, err := decodeRecord(buf)
			if err != nil {
				return err
			}
			if err := fn(rec); err != nil {
				return err
			}
			buf = rest
		}
	}
	return nil
}

// Iter returns an iterator positioned at the first key ≥ start (nil = min).
// Block reads are charged lazily as the iterator crosses block boundaries;
// with prefetch enabled, sequential block reads are batched (modeling
// RocksDB's readahead, which PrismDB lacks — §7.2).
//
// Record views returned by an Iter built this way stay valid for the
// iterator's lifetime (each block batch gets a fresh buffer); callers that
// copy records out before advancing can use Reset instead to recycle the
// buffers.
func (t *Table) Iter(clk *simdev.Clock, start []byte, prefetch bool) *Iter {
	it := &Iter{}
	it.init(t, clk, start, prefetch, false)
	return it
}

// Reset repositions it onto table t at the first key ≥ start, reusing the
// iterator's block and record buffers (zero steady-state allocation for
// cursors that chain across a partition's disjoint tables). In exchange,
// advancing past a block batch — or Resetting again — invalidates every
// previously returned Record view; callers must copy out what they keep
// before calling Next. A zero-value Iter may be Reset directly.
func (it *Iter) Reset(t *Table, clk *simdev.Clock, start []byte, prefetch bool) {
	it.init(t, clk, start, prefetch, true)
}

func (it *Iter) init(t *Table, clk *simdev.Clock, start []byte, prefetch, reuse bool) {
	it.t, it.clk, it.prefetch, it.reuse = t, clk, prefetch, reuse
	it.blockIdx = -1
	it.err = nil
	it.seek(start)
}

// Iter iterates a table in key order.
type Iter struct {
	t        *Table
	clk      *simdev.Clock
	prefetch bool
	reuse    bool // recycle buf/recs across block loads (see Reset)

	blockIdx int
	buf      []byte // current block batch (reuse mode only)
	recs     []Record
	pos      int
	err      error
}

func (it *Iter) seek(start []byte) {
	idx := 0
	if start != nil {
		lo, hi := 0, len(it.t.index)
		for lo < hi {
			mid := (lo + hi) / 2
			if bytes.Compare(it.t.index[mid].lastKey, start) < 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		idx = lo
	}
	it.loadBlock(idx)
	if start != nil {
		for it.pos < len(it.recs) && bytes.Compare(it.recs[it.pos].Key, start) < 0 {
			it.pos++
		}
		if it.pos == len(it.recs) {
			it.loadBlock(it.blockIdx + 1)
		}
	}
}

func (it *Iter) loadBlock(idx int) {
	it.recs = it.recs[:0]
	it.pos = 0
	it.blockIdx = idx
	if idx >= len(it.t.index) {
		return
	}
	n := 1
	if it.prefetch {
		// Model readahead: fetch up to 8 blocks in one device request.
		if n = len(it.t.index) - idx; n > 8 {
			n = 8
		}
	}
	var total int64
	for i := 0; i < n; i++ {
		total += it.t.index[idx+i].len
	}
	var buf []byte
	if it.reuse {
		if int64(cap(it.buf)) < total {
			it.buf = make([]byte, total)
		}
		buf = it.buf[:total]
	} else {
		buf = make([]byte, total)
	}
	var off int64
	for i := 0; i < n; i++ {
		h := it.t.index[idx+i]
		if err := it.t.file.ReadAt(buf[off:off+h.len], h.off); err != nil {
			it.err = err
			return
		}
		if it.t.cache != nil {
			it.t.cache.Touch(it.t.file.Name(), h.off, h.len)
		}
		off += h.len
	}
	for len(buf) > 0 {
		rec, rest, err := decodeRecord(buf)
		if err != nil {
			it.err = err
			return
		}
		it.recs = append(it.recs, rec)
		buf = rest
	}
	it.blockIdx = idx + n - 1
	if it.clk != nil && total > 0 {
		it.t.dev.AccessClk(it.clk, simdev.OpRead, total)
	}
}

// Valid reports whether the iterator is positioned at a record.
func (it *Iter) Valid() bool { return it.err == nil && it.pos < len(it.recs) }

// Record returns the current record; only valid when Valid().
func (it *Iter) Record() Record { return it.recs[it.pos] }

// Next advances the iterator.
func (it *Iter) Next() {
	it.pos++
	if it.pos >= len(it.recs) && it.err == nil {
		it.loadBlock(it.blockIdx + 1)
	}
}

// Err returns any I/O error encountered.
func (it *Iter) Err() error { return it.err }
