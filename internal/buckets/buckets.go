// Package buckets implements the approx-MSC bookkeeping of §6: the key
// space is divided into fixed-size buckets (64 K keys by default, the
// average number of keys in an SST file), and each bucket maintains four
// fields — num_nvm_keys, pop_bitmap, nvm_bitmap, flash_bitmap — updated by
// puts, gets, tracker evictions, deletes, and compactions. The MSC metric
// for a candidate compaction key range is then estimated as a weighted sum
// of bucket parameters, where a bucket's weight is the fraction of its key
// span overlapped by the range.
//
// Buckets operate on dense key indices in [0, KeySpace); the engine maps
// byte-string keys to indices.
package buckets

import "math/bits"

// bitset is a fixed-size bit vector.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }
func (b bitset) popcount() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// popcountAnd returns |a ∧ b|.
func popcountAnd(a, b bitset) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] & b[i])
	}
	return n
}

// bucket holds the per-bucket fields of §6.
type bucket struct {
	numNVMKeys int
	pop        bitset // approximate key popularity (set on Get, cleared on eviction)
	nvm        bitset // keys present on NVM
	flash      bitset // keys with any version on flash
}

// Stats is the weighted estimate for a candidate compaction key range,
// feeding the MSC formula (Eq. 1).
type Stats struct {
	Tn       float64 // estimated NVM objects in range
	Tf       float64 // estimated flash objects in range
	HotNVM   float64 // estimated popular NVM objects in range
	Overlap  float64 // estimated keys present on both tiers
	HotFlash float64 // estimated popular flash objects in range (promotion targeting)
}

// P returns the fraction of popular objects in the NVM range.
func (s Stats) P() float64 {
	if s.Tn <= 0 {
		return 0
	}
	return s.HotNVM / s.Tn
}

// O returns the fraction of flash objects that also appear in the NVM range.
func (s Stats) O() float64 {
	if s.Tf <= 0 {
		return 0
	}
	return s.Overlap / s.Tf
}

// Benefit approximates the summed coldness of NVM objects in the range:
// cold keys (pop bit 0) contribute 1.0; hot keys contribute 1/(MaxClock+1),
// the coldness a fully-hot clock value would have (§6's binary
// approximation of the clock value).
func (s Stats) Benefit() float64 {
	return (s.Tn - s.HotNVM) + 0.25*s.HotNVM
}

// Map is a partition's bucket array.
type Map struct {
	bucketKeys int
	keySpace   uint64
	buckets    []bucket
}

// New creates buckets covering key indices [0, keySpace) with bucketKeys
// keys per bucket.
func New(keySpace uint64, bucketKeys int) *Map {
	if bucketKeys < 1 {
		bucketKeys = 1
	}
	n := int((keySpace + uint64(bucketKeys) - 1) / uint64(bucketKeys))
	if n < 1 {
		n = 1
	}
	m := &Map{bucketKeys: bucketKeys, keySpace: keySpace, buckets: make([]bucket, n)}
	for i := range m.buckets {
		m.buckets[i].pop = newBitset(bucketKeys)
		m.buckets[i].nvm = newBitset(bucketKeys)
		m.buckets[i].flash = newBitset(bucketKeys)
	}
	return m
}

// NumBuckets returns the bucket count.
func (m *Map) NumBuckets() int { return len(m.buckets) }

func (m *Map) locate(idx uint64) (*bucket, int) {
	b := int(idx) / m.bucketKeys
	if b >= len(m.buckets) {
		b = len(m.buckets) - 1
	}
	return &m.buckets[b], int(idx) % m.bucketKeys
}

// OnPut records a fresh insert of key idx to NVM. In-place updates of keys
// already on NVM are no-ops here (the bit is already set).
func (m *Map) OnPut(idx uint64) {
	b, bit := m.locate(idx)
	if !b.nvm.get(bit) {
		b.nvm.set(bit)
		b.numNVMKeys++
	}
}

// OnNVMDelete records removal of key idx from NVM (client delete).
func (m *Map) OnNVMDelete(idx uint64) {
	b, bit := m.locate(idx)
	if b.nvm.get(bit) {
		b.nvm.clear(bit)
		b.numNVMKeys--
	}
}

// OnDemote records a compaction moving key idx from NVM to flash.
func (m *Map) OnDemote(idx uint64) {
	b, bit := m.locate(idx)
	if b.nvm.get(bit) {
		b.nvm.clear(bit)
		b.numNVMKeys--
	}
	b.flash.set(bit)
}

// OnPromote records a compaction moving key idx from flash to NVM; the
// stale flash version dies in the merge.
func (m *Map) OnPromote(idx uint64) {
	b, bit := m.locate(idx)
	if !b.nvm.get(bit) {
		b.nvm.set(bit)
		b.numNVMKeys++
	}
	b.flash.clear(bit)
}

// OnFlashDelete records that no version of key idx remains on flash
// (tombstone merge or client delete of a flash key).
func (m *Map) OnFlashDelete(idx uint64) {
	b, bit := m.locate(idx)
	b.flash.clear(bit)
}

// OnHot marks key idx as popular (set by Gets, §6).
func (m *Map) OnHot(idx uint64) {
	b, bit := m.locate(idx)
	b.pop.set(bit)
}

// OnCold clears key idx's popularity (tracker eviction).
func (m *Map) OnCold(idx uint64) {
	b, bit := m.locate(idx)
	b.pop.clear(bit)
}

// Estimate computes the weighted bucket statistics for the candidate key
// range [lo, hi) in key-index space. Each overlapped bucket contributes its
// whole-bucket counters scaled by the overlapped fraction of its span —
// the paper's approximation, deliberately cheaper than exact per-key
// counting (§6's worked example with weights 0.75 and 0.25).
func (m *Map) Estimate(lo, hi uint64) Stats {
	var s Stats
	if hi <= lo {
		return s
	}
	bk := uint64(m.bucketKeys)
	first := int(lo / bk)
	last := int((hi - 1) / bk)
	if last >= len(m.buckets) {
		last = len(m.buckets) - 1
	}
	for bi := first; bi <= last; bi++ {
		bStart := uint64(bi) * bk
		bEnd := bStart + bk
		oLo, oHi := lo, hi
		if oLo < bStart {
			oLo = bStart
		}
		if oHi > bEnd {
			oHi = bEnd
		}
		w := float64(oHi-oLo) / float64(bk)
		b := &m.buckets[bi]
		s.Tn += w * float64(b.numNVMKeys)
		s.Tf += w * float64(b.flash.popcount())
		s.HotNVM += w * float64(popcountAnd(b.pop, b.nvm))
		s.Overlap += w * float64(popcountAnd(b.nvm, b.flash))
		s.HotFlash += w * float64(popcountAnd(b.pop, b.flash))
	}
	return s
}

// NVMKeyCount returns the total NVM keys tracked across all buckets
// (consistency checks in tests).
func (m *Map) NVMKeyCount() int {
	n := 0
	for i := range m.buckets {
		n += m.buckets[i].numNVMKeys
	}
	return n
}

// FlashKeyCount returns the total flash-resident keys across all buckets.
func (m *Map) FlashKeyCount() int {
	n := 0
	for i := range m.buckets {
		n += m.buckets[i].flash.popcount()
	}
	return n
}
