package buckets

import (
	"testing"
	"testing/quick"
)

func TestPutDemotePromoteCounts(t *testing.T) {
	m := New(1000, 100)
	if m.NumBuckets() != 10 {
		t.Fatalf("buckets = %d", m.NumBuckets())
	}
	m.OnPut(5)
	m.OnPut(5) // idempotent
	m.OnPut(150)
	if m.NVMKeyCount() != 2 {
		t.Fatalf("nvm count = %d", m.NVMKeyCount())
	}
	m.OnDemote(5)
	if m.NVMKeyCount() != 1 || m.FlashKeyCount() != 1 {
		t.Fatalf("after demote: nvm=%d flash=%d", m.NVMKeyCount(), m.FlashKeyCount())
	}
	m.OnPromote(5)
	if m.NVMKeyCount() != 2 || m.FlashKeyCount() != 0 {
		t.Fatalf("after promote: nvm=%d flash=%d", m.NVMKeyCount(), m.FlashKeyCount())
	}
	m.OnNVMDelete(5)
	m.OnNVMDelete(5) // idempotent
	if m.NVMKeyCount() != 1 {
		t.Fatalf("after delete: nvm=%d", m.NVMKeyCount())
	}
}

func TestEstimateWholeBucket(t *testing.T) {
	m := New(200, 100)
	for i := uint64(0); i < 50; i++ {
		m.OnPut(i)
	}
	for i := uint64(50); i < 80; i++ {
		m.OnDemote(i) // flash only
	}
	for i := uint64(0); i < 10; i++ {
		m.OnHot(i)
	}
	s := m.Estimate(0, 100)
	if s.Tn != 50 || s.Tf != 30 || s.HotNVM != 10 {
		t.Fatalf("stats = %+v", s)
	}
	if s.P() != 0.2 {
		t.Fatalf("P = %f", s.P())
	}
	if s.O() != 0 {
		t.Fatalf("O = %f (no key on both tiers)", s.O())
	}
	// Benefit: 40 cold ×1 + 10 hot ×0.25.
	if s.Benefit() != 42.5 {
		t.Fatalf("Benefit = %f", s.Benefit())
	}
}

func TestEstimateWeightedOverlap(t *testing.T) {
	// Paper's Fig 8 example: a range overlapping 75% of bucket 1 and
	// 25% of bucket 2 weights their counters accordingly.
	m := New(200, 100)
	for i := uint64(0); i < 100; i++ {
		m.OnPut(i) // bucket 0: 100 NVM keys
	}
	for i := uint64(100); i < 200; i++ {
		m.OnPut(i) // bucket 1: 100 NVM keys
	}
	s := m.Estimate(25, 126) // 75% of bucket 0, 26% of bucket 1
	want := 0.75*100 + 0.26*100
	if diff := s.Tn - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Tn = %f, want %f", s.Tn, want)
	}
}

func TestOverlapBothTiers(t *testing.T) {
	m := New(100, 100)
	m.OnPut(1)
	m.OnDemote(1) // flash
	m.OnPut(1)    // fresh write again: on both tiers now
	s := m.Estimate(0, 100)
	if s.Overlap != 1 {
		t.Fatalf("Overlap = %f, want 1", s.Overlap)
	}
	if s.O() != 1 {
		t.Fatalf("O = %f", s.O())
	}
	m.OnFlashDelete(1) // merge removed stale version
	s = m.Estimate(0, 100)
	if s.Overlap != 0 || s.Tf != 0 {
		t.Fatalf("after flash delete: %+v", s)
	}
}

func TestHotColdBits(t *testing.T) {
	m := New(100, 100)
	m.OnPut(7)
	m.OnHot(7)
	s := m.Estimate(0, 100)
	if s.HotNVM != 1 {
		t.Fatalf("HotNVM = %f", s.HotNVM)
	}
	m.OnCold(7) // tracker eviction
	s = m.Estimate(0, 100)
	if s.HotNVM != 0 {
		t.Fatalf("HotNVM after cold = %f", s.HotNVM)
	}
}

func TestEstimateEmptyAndInverted(t *testing.T) {
	m := New(100, 10)
	if s := m.Estimate(50, 50); s.Tn != 0 {
		t.Fatalf("empty range Tn = %f", s.Tn)
	}
	if s := m.Estimate(60, 50); s.Tn != 0 {
		t.Fatalf("inverted range Tn = %f", s.Tn)
	}
	// Stats helpers on zero stats.
	var z Stats
	if z.P() != 0 || z.O() != 0 || z.Benefit() != 0 {
		t.Fatal("zero stats helpers should return 0")
	}
}

func TestIndexBeyondKeySpaceClamped(t *testing.T) {
	m := New(100, 50) // 2 buckets
	m.OnPut(9999)     // clamps to last bucket rather than panicking
	if m.NVMKeyCount() != 1 {
		t.Fatalf("count = %d", m.NVMKeyCount())
	}
}

func TestQuickCountsConsistent(t *testing.T) {
	// Property: after a random op sequence, NVMKeyCount equals the model
	// set size, and every Estimate over the full space matches it.
	f := func(ops []uint16) bool {
		const space = 256
		m := New(space, 64)
		nvm := map[uint64]bool{}
		flash := map[uint64]bool{}
		for _, op := range ops {
			idx := uint64(op) % space
			switch (op / space) % 4 {
			case 0:
				m.OnPut(idx)
				nvm[idx] = true
			case 1:
				if nvm[idx] {
					m.OnDemote(idx)
					delete(nvm, idx)
					flash[idx] = true
				}
			case 2:
				if flash[idx] {
					m.OnPromote(idx)
					delete(flash, idx)
					nvm[idx] = true
				}
			case 3:
				if nvm[idx] {
					m.OnNVMDelete(idx)
					delete(nvm, idx)
				}
			}
		}
		if m.NVMKeyCount() != len(nvm) {
			return false
		}
		if m.FlashKeyCount() != len(flash) {
			return false
		}
		s := m.Estimate(0, space)
		return int(s.Tn+0.5) == len(nvm) && int(s.Tf+0.5) == len(flash)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
