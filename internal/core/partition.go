package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/prismdb/prismdb/internal/btree"
	"github.com/prismdb/prismdb/internal/buckets"
	"github.com/prismdb/prismdb/internal/mapper"
	"github.com/prismdb/prismdb/internal/simdev"
	"github.com/prismdb/prismdb/internal/slab"
	"github.com/prismdb/prismdb/internal/sst"
	"github.com/prismdb/prismdb/internal/storage"
	"github.com/prismdb/prismdb/internal/tracker"
)

// partition is one shared-nothing shard: a dedicated worker clock, NVM
// slabs indexed by an in-DRAM B-tree, a flash SST log, and the popularity
// machinery. Mutations are serialized by mu (the paper's partition lock);
// point reads never take it — they run against the published read view
// (see readview.go and get below).
type partition struct {
	id   int
	opts *Options

	mu  sync.Mutex
	clk *simdev.Clock

	slabs *slab.Manager
	index *btree.Tree
	man   *sst.Manifest
	trk   *tracker.Tracker
	mpr   *mapper.Mapper
	bkt   *buckets.Map
	rng   *rand.Rand

	nextVersion uint64
	nvmBudget   int64

	// wal, when the DB is durable, receives one record per client mutation,
	// appended under mu AFTER the slab write (the checkpoint invariant; see
	// durable.go). Nil for in-memory DBs and during WAL replay, making the
	// log machinery invisible to both. Acknowledgement-side durability
	// waits happen in the put/del wrappers, off the lock.
	wal *storage.WAL

	// Background-compaction overlap model: data-structure changes apply
	// atomically (reads stay consistent), but the SPACE a job reclaims
	// only becomes admissible when the job's virtual I/O completes.
	// spaceCredit is the admission budget: fresh inserts debit it, client
	// deletes credit it immediately, and each compaction job's freed
	// bytes mature at its compEndAt. Writes that outrun compaction
	// completions stall — the paper's rate limiting (§4.2).
	compEndAt   int64
	compQueue   []compJob
	spaceCredit int64

	rt readTriggerState

	// bg is the async-compaction worker state (CompactionAsync mode; the
	// conds are tied to mu, and every field is guarded by it). Triggers
	// set a pending flag and signal jobCond; the worker runs jobs in
	// prepare (locked) → execute (unlocked) → commit (locked) phases and
	// broadcasts commitCond after each round's commit and when it idles,
	// waking admission-stalled writers and drainers.
	bg struct {
		jobCond    *sync.Cond
		commitCond *sync.Cond

		demotePending  bool
		promotePending bool
		running        bool
		stopping       bool

		// Virtual trigger timestamps: an async job's background clock
		// starts where the sync job's would have — at the foreground
		// clock of the op that armed it — so virtual-time results do not
		// depend on how quickly the worker goroutine got scheduled.
		demoteTriggerNs  int64
		promoteTriggerNs int64

		// In-flight demotion merge key range [lo, hi) (nil = ±∞). While
		// active, a client delete inside it conservatively writes a
		// tombstone even when flash holds no older version: the merge may
		// be about to publish one (see del).
		rangeActive      bool
		rangeLo, rangeHi []byte

		done chan struct{} // closed when the worker goroutine exits
	}

	// scanBufs is a small free list of NVM-cursor entry buffers recycled
	// across iterators, and compArena the compactor's reusable
	// demote-record buffer (both guarded by mu, like everything else on
	// the partition). pinnedBuf and rangeBuf are likewise compaction
	// scratch (single compaction thread), reused so the worker's LOCKED
	// prepare phase allocates nothing per round.
	scanBufs  [][]nvmEntry
	compArena []byte
	pinnedBuf [][]byte
	rangeBuf  []candRange

	// Lock-free read substrate (readview.go): the published read view
	// (atomic.Pointer, republished under mu by tree/manifest mutations),
	// the virtual-clock frontier off-lock reads seed from and fold into,
	// sharded read counters and the popularity touch ring (drained into
	// stats/tracker/read-trigger state by whoever holds mu), the slot-read
	// buffer rack, and the readers' drain-cadence counter.
	view       atomic.Pointer[readView]
	vclock     atomic.Int64
	sink       [sinkShards]readShard
	touches    *touchRing
	readBufs   bufRack
	sinceDrain atomic.Int64

	// Owner-goroutine write path (Options.WriteMode == WriteAsync; see
	// writequeue.go). wq is nil in WriteSync mode, making the queue
	// machinery invisible to the legacy locked path. curBatch is non-nil
	// only inside applyBatch's critical section; putBodyLocked and
	// delBodyLocked route their WAL records and view republication through
	// it so the whole batch shares one append and one publish. wbHist is
	// the batch-size histogram (guarded by mu, bits.Len-bucketed like the
	// WAL's group-commit histogram).
	// wdrain (guarded by mu) is the write-side drain cadence: direct
	// (uncontended fast path) writes fold read state every drainEvery ops
	// or when the touch ring crowds, mirroring the reader cadence and the
	// owner's once-per-batch drain, instead of paying the full fold on
	// every op the way the legacy locked path does.
	wq           *writeQueue
	curBatch     *pendingBatch
	batchScratch pendingBatch
	wbHist       [16]int64
	wdrain       int

	// obs holds the DB-wide telemetry instruments (shared across
	// partitions; every instrument is lock-free or nil-safe).
	obs *engineObs

	// health is the DB-wide failure-domain state machine (set by Open right
	// after construction; nil only for partitions built directly in tests).
	// Client mutations gate on it, the write owners drain-fail queued
	// intents through it, and the compaction worker stands down when it
	// leaves Healthy.
	health *healthTracker

	// Hill-climbing threshold tuner state (§7.4 future work).
	pinThreshold float64
	tuneOps      int
	tuneLastT    int64   // clock at window start
	tuneLastRate float64 // ops/sec of the previous window
	tuneDir      float64 // +step or -step

	stats Stats
}

// chargeCPU charges CPU work to clk, through the shared core pool when one
// is configured. Partition workers and DB-level iterators share it.
func chargeCPU(pool *simdev.CPUPool, clk *simdev.Clock, d time.Duration) {
	if d <= 0 {
		return
	}
	if pool != nil {
		pool.Charge(clk, d)
	} else {
		clk.Advance(d)
	}
}

func (p *partition) chargeCPU(clk *simdev.Clock, d time.Duration) {
	chargeCPU(p.opts.CPUPool, clk, d)
}

// readTriggerState is the detection → invocation → monitoring machine of
// §5.3.
type readTriggerState struct {
	phase      rtPhase
	opsInPhase int
	reads      int64
	writes     int64
	nvmReads   int64 // reads served from DRAM/NVM this epoch
	flashReads int64
	lastRatio  float64
}

type rtPhase int

const (
	rtDetect rtPhase = iota
	rtActive
	rtCooldown
)

func newPartition(id int, opts *Options, dur *durable, eo *engineObs) (*partition, error) {
	p := &partition{
		id:        id,
		obs:       eo,
		opts:      opts,
		clk:       simdev.NewClock(),
		index:     btree.New(),
		mpr:       mapper.New(opts.PinningThreshold),
		rng:       rand.New(rand.NewSource(opts.Seed + int64(id)*7919)),
		nvmBudget: opts.NVMBudget / int64(opts.Partitions),
	}
	trkCap := opts.TrackerCapacity / opts.Partitions
	if trkCap < 16 {
		trkCap = 16
	}
	p.trk = tracker.New(trkCap)
	p.touches = newTouchRing()
	p.bkt = buckets.New(opts.KeySpace, opts.BucketKeys)
	p.pinThreshold = opts.PinningThreshold
	p.tuneDir = opts.AutoTuneStep
	p.bg.jobCond = sync.NewCond(&p.mu)
	p.bg.commitCond = sync.NewCond(&p.mu)

	var err error
	p.slabs, err = slab.NewManager(opts.NVM, opts.Cache, fmt.Sprintf("p%d-slab", id), opts.SlabClasses)
	if err != nil {
		return nil, err
	}
	if dur != nil {
		// Durable mode: the live SST set comes from the manifest journal,
		// and opening each table verifies its footer — a table the journal
		// committed but whose file is torn or missing fails Open loudly.
		var tables []*sst.Table
		for _, name := range dur.journal.Live(id) {
			t, terr := sst.Open(opts.Flash, opts.Cache, name, p.clk)
			if terr != nil {
				return nil, fmt.Errorf("manifest journal references %s: %w", name, terr)
			}
			tables = append(tables, t)
		}
		p.man = sst.NewManifestJournaled(opts.Flash, opts.Cache, dur.journal, id, tables)
	} else {
		manName := fmt.Sprintf("p%d-MANIFEST", id)
		if _, openErr := opts.Flash.OpenFile(manName); openErr == nil {
			p.man, err = sst.LoadManifest(opts.Flash, opts.Cache, manName, p.clk)
		} else {
			p.man, err = sst.NewManifest(opts.Flash, opts.Cache, manName)
		}
		if err != nil {
			return nil, err
		}
	}
	p.nextVersion = 1
	return p, nil
}

// recover rebuilds the B-tree index from the slab files (keeping the newest
// version per key and freeing stale duplicate slots), rebuilds bucket
// state, and restores the version counter. Partitions recover independently
// and in parallel in the paper; here each charges its own clock.
func (p *partition) recover() error {
	type liveEntry struct {
		loc slab.Loc
		ver uint64
	}
	seen := map[string]liveEntry{}
	var staleLocs []slab.Loc
	err := p.slabs.Recover(p.clk, func(loc slab.Loc, rec slab.Record) {
		if rec.Version >= p.nextVersion {
			p.nextVersion = rec.Version + 1
		}
		if old, ok := seen[string(rec.Key)]; ok {
			// Crash between new-slot write and old-slot free left two
			// versions; keep the newest.
			if rec.Version > old.ver {
				staleLocs = append(staleLocs, old.loc)
				seen[string(rec.Key)] = liveEntry{loc, rec.Version}
			} else {
				staleLocs = append(staleLocs, loc)
			}
			return
		}
		seen[string(rec.Key)] = liveEntry{loc, rec.Version}
	})
	if err != nil {
		return err
	}
	for _, l := range staleLocs {
		if err := p.slabs.FreeSlot(p.clk, l); err != nil {
			return err
		}
	}
	for k, e := range seen {
		p.index.Insert([]byte(k), uint64(e.loc))
		p.bkt.OnPut(p.opts.KeyIndex([]byte(k)))
	}
	p.spaceCredit = p.nvmBudget - p.usage()
	// Rebuild flash bucket bits from the SST log.
	snap := p.man.Acquire()
	defer snap.Release()
	for _, t := range snap.Tables() {
		err := t.ReadAll(p.clk, func(r sst.Record) error {
			p.bkt.OnDemote(p.opts.KeyIndex(r.Key))
			// OnDemote would clear the NVM bit; restore it if the key is
			// also NVM-resident.
			if _, ok := seen[string(r.Key)]; ok {
				p.bkt.OnPut(p.opts.KeyIndex(r.Key))
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// usage returns the partition's NVM consumption: live slab bytes plus the
// flash index/filter metadata PrismDB keeps on NVM (§4.1).
func (p *partition) usage() int64 {
	return p.slabs.LiveBytes() + p.man.MetaBytes()
}

// compJob records a background compaction whose reclaimed space matures at
// endAt.
type compJob struct {
	endAt int64
	freed int64
}

// admitWrite applies the rate-limiting model (§4.2): a space-consuming
// write debits the partition's space credit; compaction reclaim matures at
// each job's virtual completion. When credit runs dry the writer stalls
// until the next job completes — virtually when a committed job's reclaim
// is still maturing, and (async mode only) in host time when the reclaim
// is still inside an uncommitted background merge, so a writer can never
// outrun the worker unboundedly.
func (p *partition) admitWrite(slotSize int64) {
	p.matureCredit(p.clk.Now())
	hardStalled := false
	var stallStart time.Time
	for p.spaceCredit < slotSize {
		if len(p.compQueue) > 0 {
			p.stallTo(p.compQueue[0].endAt)
			p.matureCredit(p.clk.Now())
			continue
		}
		if (p.bg.running || p.bg.demotePending) && !p.bg.stopping {
			// A background job holds the space this write needs. Block
			// (releasing the partition lock) until its next commit banks
			// reclaim into compQueue, then stall virtually as usual. One
			// write counts as one hard stall however many chunk commits
			// it waits through.
			if !hardStalled {
				hardStalled = true
				stallStart = time.Now()
				p.stats.CompactionHardStalls++
			}
			t0 := time.Now()
			p.bg.commitCond.Wait()
			p.stats.CompactionHardStallTime += time.Since(t0)
			p.matureCredit(p.clk.Now())
			continue
		}
		// No job can free anything: the bookkept space is authoritative
		// (the watermark trigger will start a job on this very write if
		// needed).
		break
	}
	if hardStalled {
		p.obs.events.Emit("write_stall",
			"partition", p.id, "hard", true, "took_ms", time.Since(stallStart))
	}
	p.spaceCredit -= slotSize
}

// matureCredit banks the reclaim of every job completed by time now.
func (p *partition) matureCredit(now int64) {
	for len(p.compQueue) > 0 && p.compQueue[0].endAt <= now {
		p.spaceCredit += p.compQueue[0].freed
		p.compQueue = p.compQueue[1:]
	}
}

func (p *partition) stallTo(t int64) {
	stall := p.clk.AdvanceTo(t)
	if stall > 0 {
		p.stats.WriteStalls++
		p.stats.WriteStallTime += stall
	}
}

// put writes key=value (or a tombstone when value is nil and tomb is set).
// In WriteAsync mode client puts are handed to the partition's owner
// goroutine (writequeue.go), which applies them in arrival-order batches;
// otherwise — WriteSync mode, and internal writes either way — the mutation
// runs under the partition lock right here. Both paths then block off-lock
// (durable DBs in SyncEvery mode) until the write's WAL record is fsynced,
// so the group-commit wait never serializes the partition.
func (p *partition) put(key, value []byte, tomb, clientOp bool) (time.Duration, error) {
	if clientOp {
		if err := p.writeGate(); err != nil {
			return 0, err
		}
	}
	if p.wq != nil && clientOp && !tomb {
		// Uncontended fast path: with no intents queued and the lock free,
		// handing this op to the owner would buy nothing — the batch would
		// hold only us — and cost two scheduler handoffs. Become a batch of
		// one instead: apply directly under the lock we just got. Under
		// contention TryLock fails and the op takes the queue, where real
		// batches form.
		if p.wq.idle() && p.mu.TryLock() {
			lat, lsn, err := p.putDirectLocked(key, value)
			if err != nil {
				return lat, err
			}
			return lat, p.wal.WaitDurable(lsn)
		}
		return p.enqueueWait(intentPut, key, value, nil)
	}
	lat, lsn, err := p.putLocking(key, value, tomb, clientOp)
	if err != nil {
		return lat, err
	}
	if err := p.wal.WaitDurable(lsn); err != nil {
		return lat, err
	}
	return lat, nil
}

// putLocking acquires p.mu itself and runs the put body under it (the
// *Locking suffix marks "takes the lock", as opposed to *Locked's "caller
// already holds it"). clientOp distinguishes client Puts
// from internal writes (the tombstone a Delete routes through this path,
// WAL replay), so the Puts counter counts exactly the client operations
// issued, internal writes never touch the popularity tracker, and only
// client operations are WAL-logged (a tombstone is re-derived from its DEL
// record at replay; replayed records must not re-log). The WAL append
// happens at the end of the critical section, after the slab write it
// describes — the ordering the checkpoint scheme depends on (durable.go).
func (p *partition) putLocking(key, value []byte, tomb, clientOp bool) (time.Duration, uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.syncClockLocked()
	p.drainReadsLocked()
	defer func() { p.casMaxVclock(p.clk.Now()) }()
	return p.putBodyLocked(key, value, tomb, clientOp)
}

// putDirectLocked is the WriteAsync uncontended fast path's body: the caller
// already holds p.mu via TryLock. It differs from putLocking in one way: read
// state is folded on the write path's batch cadence (writerDrainLocked)
// rather than on every op — a batch of one still pays its own mutation in
// full, but shares the drain duty the way owner batches do.
func (p *partition) putDirectLocked(key, value []byte) (time.Duration, uint64, error) {
	defer p.mu.Unlock()
	p.syncClockLocked()
	p.writerDrainLocked()
	defer func() { p.casMaxVclock(p.clk.Now()) }()
	// A plain counter under the already-held lock, NOT an atomic histogram
	// observation: this is the write hot path, and the shared instrument's
	// cache-line traffic costs several percent of contended throughput. The
	// collector folds DirectWrites into prism_write_batch_ops as batches of
	// one at gather time.
	p.stats.DirectWrites++
	return p.putBodyLocked(key, value, false, true)
}

// putBodyLocked is the mutation body shared by putLocking and del's inline
// tombstone insert. The caller holds p.mu with the clock synced and reads
// drained; admission may briefly release and re-acquire the lock (see
// admitWrite), exactly as when entered through putLocking.
func (p *partition) putBodyLocked(key, value []byte, tomb, clientOp bool) (time.Duration, uint64, error) {
	// Republish the read view when this put changed the B-tree (fresh
	// insert, class-change move) or the manifest (a sync compaction inside
	// maybeCompact republishes itself, but the flag keeps the put's own
	// mutations covered even on early error paths). In-place slot updates
	// skip the republish: the published locations still resolve and readers
	// pick the new bytes straight off the slab file. The view goes out
	// BEFORE the latency is returned to the client, so a GET issued after a
	// PUT's reply always observes it (read-your-writes). Inside an owner
	// batch the publish is deferred to the batch boundary instead — still
	// before any of the batch's done signals, so the guarantee holds.
	republish := false
	defer func() {
		if !republish {
			return
		}
		if b := p.curBatch; b != nil {
			b.dirty = true
		} else {
			p.publishView()
		}
	}()
	start := p.clk.Now()
	cpu := p.opts.CPU
	p.chargeCPU(p.clk, cpu.OpBase+cpu.IndexOp)

	rec := slab.Record{Key: key, Value: value, Tombstone: tomb}
	ci := p.slabs.ClassOf(len(key), len(value))
	if ci < 0 {
		return 0, 0, fmt.Errorf("core: object of %d bytes too large", len(key)+len(value))
	}
	idx := p.opts.KeyIndex(key)
	fastInPlace := false
	if v, ok := p.index.Get(key); ok {
		loc := slab.Loc(v)
		if loc.Class() == ci && !p.slabs.Pinned() {
			// In-place updates reuse their slot: no new NVM space is
			// consumed, so they are never rate-limited (§4.1). With an
			// open scan epoch the update instead goes copy-on-write
			// below, so pinned iterators keep their snapshot value.
			rec.Version = p.takeVersion()
			if err := p.slabs.Update(p.clk, loc, rec); err != nil {
				return 0, 0, err
			}
			p.stats.InPlaceUpdates++
			fastInPlace = true
		}
	}
	if !fastInPlace {
		// A new slot will be consumed: class change, copy-on-write under a
		// pinned epoch, or fresh insert. Admission may release the
		// partition lock (async hard stall on an uncommitted merge), so
		// the index is re-consulted — and the version taken — only after
		// it returns: a background commit may have demoted, promoted, or
		// freed this key's slot while the writer was blocked, and stale
		// state here would double-free a recycled slot.
		p.admitWrite(int64(p.slabs.ClassSize(ci)))
		rec.Version = p.takeVersion()
		if v, ok := p.index.Get(key); ok {
			loc := slab.Loc(v)
			if loc.Class() == ci && !p.slabs.Pinned() {
				// Became updatable in place while stalled (e.g. the merge
				// holding the epoch pin committed): reuse the slot and
				// refund the admission debit for the slot we won't take.
				p.spaceCredit += int64(p.slabs.ClassSize(ci))
				if err := p.slabs.Update(p.clk, loc, rec); err != nil {
					return 0, 0, err
				}
				p.stats.InPlaceUpdates++
			} else {
				// Changed size class (or pinned epoch): delete + fresh
				// insert (§6). The old slot's space returns to the
				// admission credit immediately.
				oldSlot := int64(p.slabs.SlotSize(loc))
				if err := p.slabs.Delete(p.clk, loc); err != nil {
					return 0, 0, err
				}
				p.spaceCredit += oldSlot
				newLoc, err := p.slabs.Put(p.clk, rec)
				if err != nil {
					return 0, 0, err
				}
				p.index.Insert(key, uint64(newLoc))
				p.stats.SlabMoves++
				republish = true
			}
		} else {
			loc, err := p.slabs.Put(p.clk, rec)
			if err != nil {
				return 0, 0, err
			}
			// The index retains the key slice for the life of the entry
			// (iterator snapshots alias it), so a fresh insert takes a private
			// copy — network callers recycle their argument buffers between
			// commands. Existing-key paths replace only the stored value.
			p.index.Insert(append([]byte(nil), key...), uint64(loc))
			p.bkt.OnPut(idx)
			p.stats.FreshInserts++
			republish = true
		}
	}
	if clientOp {
		// Internal writes (the tombstone a Delete routes through here)
		// must NOT touch the popularity tracker: the delete just Forgot
		// the key, and re-inserting it would evict a live hot key, re-mark
		// the bucket hot, and let ShouldPin pin the tombstone in NVM so it
		// never demotes or annihilates.
		p.touch(key, idx, tracker.NVM)
		p.stats.Puts++
	}
	var lsn uint64
	if p.wal != nil && clientOp {
		// Inside an owner batch the record joins the batch's group append
		// (issued after every slab write in the batch — the checkpoint
		// invariant holds batch-wide); otherwise it is appended here, after
		// this op's own slab write.
		if b := p.curBatch; b != nil {
			b.recs = append(b.recs, storage.BatchEntry{Op: storage.OpPut, Key: key, Value: value})
		} else {
			var werr error
			if lsn, werr = p.wal.AppendPut(key, value); werr != nil {
				return 0, 0, werr
			}
		}
	}
	p.maybeCompact()
	p.rt.onOp(p, false)
	return time.Duration(p.clk.Now() - start), lsn, nil
}

// writeGate returns the sticky ErrReadOnly-wrapped error when the DB has
// degraded, nil while healthy (and for partitions built without a DB in
// tests). One atomic load on the healthy hot path.
func (p *partition) writeGate() error {
	if p.health == nil {
		return nil
	}
	return p.health.writeErr()
}

// takeVersion hands out the next slab-record version. Taken at write time
// (after any admission stall), so versions per key stay monotone in lock
// order — what crash recovery's keep-the-newest rule depends on.
func (p *partition) takeVersion() uint64 {
	v := p.nextVersion
	p.nextVersion++
	return v
}

// touch updates the tracker and popularity bitmap for an access. The
// tracker stores the key's index and returns the evicted entry's stored
// index, so no key bytes are re-derived (or allocated) on eviction.
func (p *partition) touch(key []byte, idx uint64, loc tracker.Location) {
	if evictedIdx, did := p.trk.Touch(key, idx, loc); did {
		p.bkt.OnCold(evictedIdx)
	}
	p.bkt.OnHot(idx)
}

// getViewRetries bounds how many stale views a lock-free GET burns through
// before falling back to the partition lock. Staleness is proven by slot
// validation (a freed/recycled slot under a view-resolved location); each
// retry re-acquires the then-current view, so only a writer churning the
// same key faster than the reader can re-read keeps failing — at which
// point queueing on the lock is the honest outcome anyway.
const getViewRetries = 4

// get returns the newest version of key and the tier that served it. The
// value is appended to dst (which may be nil): callers that pass a reused
// buffer get an allocation-free NVM read path.
//
// The fast path is lock-free: it never takes p.mu. It acquires the
// partition's published read view (copy-on-write B-tree root + refcounted
// manifest snapshot), seeds a private virtual clock from the partition's
// published frontier, charges all CPU and device time to it, and folds the
// end time back with one atomic max — so serial virtual-time sequencing is
// identical to the locked path, while concurrent GETs overlap in virtual
// time exactly as concurrent requests to a real device would. Read stats
// land in sharded atomic counters and popularity touches in a bounded
// lock-free ring, both drained into the guarded structures by whoever next
// holds the lock (see readview.go for the publication and validation
// rules).
func (p *partition) get(key, dst []byte) ([]byte, Tier, time.Duration, error) {
	idx := p.opts.KeyIndex(key)
	for attempt := 0; attempt < getViewRetries; attempt++ {
		val, tier, lat, err, ok := p.getLockFree(key, dst, idx)
		if ok {
			p.maybeDrainReads()
			return val, tier, lat, err
		}
		// Off the fast path already (stale view), so the retry counter's
		// atomic add costs nothing that matters.
		p.obs.viewRetries.Inc()
	}
	return p.getLocking(key, dst, idx)
}

// getLockFree is one attempt of the lock-free read. ok=false means the
// view was proven stale (the slot under its location was freed, recycled,
// or mid-move) and the caller should retry against a fresh view.
func (p *partition) getLockFree(key, dst []byte, idx uint64) (value []byte, tier Tier, lat time.Duration, err error, ok bool) {
	v := p.acquireView()
	defer v.release()
	var clk simdev.Clock
	start := p.vclock.Load()
	clk.AdvanceTo(start)
	cpu := p.opts.CPU
	p.chargeCPU(&clk, cpu.OpBase+cpu.IndexOp)
	sh := &p.sink[idx&(sinkShards-1)]

	if lv, found := v.tree.Get(key); found {
		h := p.readBufs.take()
		before := clk.Now()
		rec, buf, rerr := p.slabs.ReadSlotInto(&clk, slab.Loc(lv), h.b)
		h.b = buf
		if rerr != nil || !bytes.Equal(rec.Key, key) {
			// Freed (zeroed header), recycled to another key, or otherwise
			// unreadable: the view is stale. The aborted attempt's device
			// time is discarded with its private clock.
			p.readBufs.put(h)
			return nil, TierMiss, 0, nil, false
		}
		src := TierNVM
		if clk.Now() == before {
			src = TierDRAM // page-cache hit: no device time
		}
		if rec.Tombstone {
			p.readBufs.put(h)
			sh.gets.Add(1)
			sh.miss.Add(1)
			p.casMaxVclock(clk.Now())
			return nil, TierMiss, time.Duration(clk.Now() - start), nil, true
		}
		value = append(dst[:0], rec.Value...)
		p.readBufs.put(h)
		sh.gets.Add(1)
		if src == TierDRAM {
			sh.dram.Add(1)
		} else {
			sh.nvm.Add(1)
		}
		p.touches.push(key, idx, tracker.NVM)
		p.casMaxVclock(clk.Now())
		return value, src, time.Duration(clk.Now() - start), nil, true
	}

	// Flash lookup through the view's pinned SST snapshot: tables are
	// disjoint and sorted by smallest key, so a binary search finds the
	// single candidate table. The snapshot's tables cannot be deleted while
	// the view holds its reference.
	if t := v.snap.Find(key); t != nil {
		p.chargeCPU(&clk, cpu.BloomCheck)
		if t.MayContain(key) {
			before := clk.Now()
			rec, found, gerr := t.Get(&clk, key)
			if gerr != nil {
				// Count the GET (the locked path counts every GET at entry,
				// errored or not) and fold the time it consumed; no tier
				// counter, matching getLocking's error return.
				sh.gets.Add(1)
				p.casMaxVclock(clk.Now())
				return nil, TierMiss, 0, gerr, true
			}
			if found && !rec.Tombstone {
				src := TierFlash
				if clk.Now() == before {
					src = TierDRAM
				}
				value = append(dst[:0], rec.Value...)
				sh.gets.Add(1)
				if src == TierDRAM {
					sh.dram.Add(1)
				} else {
					sh.flash.Add(1)
				}
				p.touches.push(key, idx, tracker.Flash)
				p.casMaxVclock(clk.Now())
				return value, src, time.Duration(clk.Now() - start), nil, true
			}
			// The filter said maybe, the table said no (or only a
			// tombstone): a wasted flash probe.
			sh.bloomFP.Add(1)
		}
	}
	sh.gets.Add(1)
	sh.miss.Add(1)
	p.casMaxVclock(clk.Now())
	return nil, TierMiss, time.Duration(clk.Now() - start), nil, true
}

// getLocking is the fallback read under the partition lock: the pre-view
// code path, taken when repeated validation failures prove the key is being
// churned faster than an optimistic reader can keep up (or, transitively,
// while an inline sync compaction holds the lock and zeroes slots).
func (p *partition) getLocking(key, dst []byte, idx uint64) ([]byte, Tier, time.Duration, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.syncClockLocked()
	p.drainReadsLocked()
	defer func() { p.casMaxVclock(p.clk.Now()) }()
	start := p.clk.Now()
	cpu := p.opts.CPU
	p.chargeCPU(p.clk, cpu.OpBase+cpu.IndexOp)
	p.stats.Gets++

	if v, ok := p.index.Get(key); ok {
		before := p.clk.Now()
		rec, err := p.slabs.GetScratch(p.clk, slab.Loc(v))
		if err != nil {
			return nil, TierMiss, 0, err
		}
		src := TierNVM
		if p.clk.Now() == before {
			src = TierDRAM // page-cache hit: no device time
		}
		if rec.Tombstone {
			p.recordGet(TierMiss)
			p.rt.onOp(p, true)
			return nil, TierMiss, time.Duration(p.clk.Now() - start), nil
		}
		// Materialize the value before anything (promotion compactions in
		// rt.onOp, a later op) reuses the slab scratch under rec.
		value := append(dst[:0], rec.Value...)
		p.recordGet(src)
		p.touch(key, idx, tracker.NVM)
		p.rt.onOp(p, true)
		return value, src, time.Duration(p.clk.Now() - start), nil
	}

	// Flash lookup through the SST log: tables are disjoint and sorted by
	// smallest key, so a binary search finds the single candidate table.
	snap := p.man.Acquire()
	defer snap.Release()
	if t := snap.Find(key); t != nil {
		p.chargeCPU(p.clk, cpu.BloomCheck)
		if t.MayContain(key) {
			before := p.clk.Now()
			rec, found, err := t.Get(p.clk, key)
			if err != nil {
				return nil, TierMiss, 0, err
			}
			if found && !rec.Tombstone {
				src := TierFlash
				if p.clk.Now() == before {
					src = TierDRAM
				}
				value := append(dst[:0], rec.Value...)
				p.recordGet(src)
				p.touch(key, idx, tracker.Flash)
				p.rt.onOp(p, true)
				return value, src, time.Duration(p.clk.Now() - start), nil
			}
			p.stats.BloomFalsePositives++
		}
	}
	p.recordGet(TierMiss)
	p.rt.onOp(p, true)
	return nil, TierMiss, time.Duration(p.clk.Now() - start), nil
}

func (p *partition) recordGet(src Tier) {
	switch src {
	case TierDRAM:
		p.stats.GetDRAM++
		p.rt.nvmReads++
	case TierNVM:
		p.stats.GetNVM++
		p.rt.nvmReads++
	case TierFlash:
		p.stats.GetFlash++
		p.rt.flashReads++
	default:
		p.stats.GetMiss++
	}
}

// del removes key. NVM versions are deleted directly; if an older version
// may remain on flash a tombstone is inserted to NVM, to die in a later
// merge (§6). In WriteAsync mode client deletes ride the owner queue like
// puts; WAL replay and WriteSync mode go through delLocking directly.
func (p *partition) del(key []byte) (time.Duration, error) {
	if err := p.writeGate(); err != nil {
		return 0, err
	}
	if p.wq != nil {
		// Same uncontended fast path as put: a lone deleter is a batch of
		// one, applied directly; contended deleters ride the queue.
		if p.wq.idle() && p.mu.TryLock() {
			lat, lsn, err := p.delDirectLocked(key)
			if err != nil {
				return lat, err
			}
			return lat, p.wal.WaitDurable(lsn)
		}
		return p.enqueueWait(intentDel, key, nil, nil)
	}
	lat, lsn, err := p.delLocking(key)
	if err != nil {
		return lat, err
	}
	return lat, p.wal.WaitDurable(lsn)
}

// delLocking is the locked wrapper of delBodyLocked, mirroring putLocking.
func (p *partition) delLocking(key []byte) (time.Duration, uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.syncClockLocked()
	p.drainReadsLocked()
	defer func() { p.casMaxVclock(p.clk.Now()) }()
	return p.delBodyLocked(key)
}

// delDirectLocked mirrors putDirectLocked for deletes: p.mu already held,
// read state folded on the write-batch cadence.
func (p *partition) delDirectLocked(key []byte) (time.Duration, uint64, error) {
	defer p.mu.Unlock()
	p.syncClockLocked()
	p.writerDrainLocked()
	defer func() { p.casMaxVclock(p.clk.Now()) }()
	p.stats.DirectWrites++ // plain counter, not the histogram: see putDirectLocked
	return p.delBodyLocked(key)
}

// delBodyLocked is the delete mutation body shared by delLocking and the
// owner's applyBatch. The caller holds p.mu with the clock synced and reads
// drained.
func (p *partition) delBodyLocked(key []byte) (time.Duration, uint64, error) {
	republish := false
	defer func() {
		if !republish {
			return
		}
		if b := p.curBatch; b != nil {
			b.dirty = true
		} else {
			p.publishView()
		}
	}()
	start := p.clk.Now()
	cpu := p.opts.CPU
	p.chargeCPU(p.clk, cpu.OpBase+cpu.IndexOp)
	idx := p.opts.KeyIndex(key)

	if v, ok := p.index.Get(key); ok {
		oldSlot := int64(p.slabs.SlotSize(slab.Loc(v)))
		if err := p.slabs.Delete(p.clk, slab.Loc(v)); err != nil {
			return 0, 0, err
		}
		p.index.Delete(key)
		p.bkt.OnNVMDelete(idx)
		p.spaceCredit += oldSlot
		republish = true
	}
	// Does flash possibly hold an older version? (Disjoint sorted tables:
	// binary-search the one candidate.) While an async demotion merge
	// covering this key is in flight, the answer must be a conservative
	// yes: the merge may be about to publish an NVM version of the key to
	// flash, and only a tombstone keeps it from resurrecting after the
	// merge commits.
	flashMay := false
	snap := p.man.Acquire()
	if t := snap.Find(key); t != nil {
		p.chargeCPU(p.clk, cpu.BloomCheck)
		flashMay = t.MayContain(key)
	}
	snap.Release()
	if !flashMay && p.bg.rangeActive && inRange(key, p.bg.rangeLo, p.bg.rangeHi) {
		flashMay = true
	}
	p.trk.Forget(key)
	p.bkt.OnCold(idx)
	p.stats.Deletes++
	// The delete's reported latency is composed from its phases' durations:
	// phase 1 (index/slab removal) plus the tombstone insert below. Both run
	// in one critical section, so no interleaved client op can be billed to
	// this delete.
	lat := time.Duration(p.clk.Now() - start)
	if flashMay {
		// Fresh tombstone insert (the normal put path, but as an internal
		// write: it is part of the delete, not a client put, so it never
		// touches the Puts counter or the popularity tracker, and its
		// durability rides on this delete's DEL record rather than a log
		// entry of its own). It runs inline, in the SAME critical section
		// and BEFORE the DEL append: every slab write the delete implies
		// must be issued before its WAL record exists, or a checkpoint
		// racing the gap could prune the only durable trace of this delete
		// while the slab files still lack the tombstone — and a crash would
		// resurrect the key from flash.
		tombLat, _, err := p.putBodyLocked(key, nil, true, false)
		if err != nil {
			return 0, 0, err
		}
		lat += tombLat
	}
	// One DEL record covers the whole delete, tombstone included: replay
	// re-runs the delete, which re-derives the tombstone decision from the
	// recovered state. Logged after every slab write this delete issues
	// (put's slab-write-before-append ordering), so the log's per-key order
	// equals lock order; inside an owner batch the record joins the batch's
	// group append, which happens after the batch's last slab write. The
	// NVM slot free itself may still be deferred by a pinned epoch — the
	// DeferredDirty checkpoint barrier (durable.go) keeps this record alive
	// until the zeroing write is issued.
	var lsn uint64
	if p.wal != nil {
		if b := p.curBatch; b != nil {
			b.recs = append(b.recs, storage.BatchEntry{Op: storage.OpDel, Key: key})
		} else {
			var werr error
			if lsn, werr = p.wal.AppendDel(key); werr != nil {
				return 0, 0, werr
			}
		}
	}
	return lat, lsn, nil
}

// inRange reports whether key falls in [lo, hi), nil bounds meaning ±∞.
func inRange(key, lo, hi []byte) bool {
	return (lo == nil || bytes.Compare(key, lo) >= 0) &&
		(hi == nil || bytes.Compare(key, hi) < 0)
}

// KV is a scan result element.
type KV struct {
	Key   []byte
	Value []byte
}

// nvmEntry is one NVM-cursor element of the iterator's index snapshot.
type nvmEntry struct {
	key []byte
	loc slab.Loc
}

// takeScanBufLocked hands out a recycled NVM-cursor entry buffer (caller
// holds mu).
func (p *partition) takeScanBufLocked() []nvmEntry {
	if n := len(p.scanBufs); n > 0 {
		b := p.scanBufs[n-1]
		p.scanBufs = p.scanBufs[:n-1]
		return b[:0]
	}
	return make([]nvmEntry, 0, 64)
}

// putScanBufLocked returns an entry buffer to the free list (caller holds
// mu). The list is small: steady-state scan traffic reuses a handful of
// buffers, and anything beyond that is left to the GC.
func (p *partition) putScanBufLocked(b []nvmEntry) {
	if cap(b) > 0 && len(p.scanBufs) < 8 {
		p.scanBufs = append(p.scanBufs, b[:0])
	}
}

// objectCounts reports live objects per tier.
func (p *partition) objectCounts() (nvm, flash int64) {
	return int64(p.slabs.LiveObjects()), int64(p.man.TotalCount())
}
