package core

import (
	"errors"
	"testing"
)

// Close must make every subsequent operation fail with ErrClosed, fail open
// iterators on their next positioning call, and stay idempotent — the
// serving front end's graceful shutdown depends on racing requests draining
// deterministically instead of touching torn-down state.
func TestCloseFailsOpsDeterministically(t *testing.T) {
	db, err := Open(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := db.Put(key(i), val(i, 100)); err != nil {
			t.Fatal(err)
		}
	}

	open := db.NewIterator(nil, 0)
	if !open.Valid() {
		t.Fatal("iterator over live data must be valid")
	}

	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close must be idempotent, got %v", err)
	}

	if _, err := db.Put(key(1), val(1, 100)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: err = %v, want ErrClosed", err)
	}
	if _, _, _, err := db.Get(key(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close: err = %v, want ErrClosed", err)
	}
	if _, _, _, err := db.GetBuf(key(1), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("GetBuf after Close: err = %v, want ErrClosed", err)
	}
	if _, err := db.Delete(key(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after Close: err = %v, want ErrClosed", err)
	}
	if _, _, err := db.Scan(nil, 10); !errors.Is(err, ErrClosed) {
		t.Fatalf("Scan after Close: err = %v, want ErrClosed", err)
	}

	// The pre-Close iterator fails on its next positioning call but still
	// releases its pins through Close.
	if open.Next() {
		t.Fatal("Next on an iterator of a closed DB must report false")
	}
	if !errors.Is(open.Err(), ErrClosed) {
		t.Fatalf("open iterator Err = %v, want ErrClosed", open.Err())
	}
	if open.Seek(key(0)) {
		t.Fatal("Seek on a failed iterator must report false")
	}
	if err := open.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("open iterator Close = %v, want ErrClosed", err)
	}

	// Iterators created after Close are born failed.
	born := db.NewIterator(nil, 0)
	if born.Valid() {
		t.Fatal("iterator created after Close must not be valid")
	}
	if !errors.Is(born.Err(), ErrClosed) {
		t.Fatalf("born-failed iterator Err = %v, want ErrClosed", born.Err())
	}
	if born.Next() {
		t.Fatal("Next on a born-failed iterator must report false")
	}
	if err := born.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("born-failed iterator Close = %v, want ErrClosed", err)
	}

	// Read-only accessors keep working so a shutting-down server can report
	// final counters.
	if st := db.Stats(); st.Puts != 50 {
		t.Fatalf("Stats after Close: Puts = %d, want 50", st.Puts)
	}
	if db.Elapsed() <= 0 {
		t.Fatal("Elapsed after Close must still report virtual time")
	}
}
