package core

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestWriteQueueParkAndCloseWake unit-drives the lossless MPSC intent ring's
// backpressure and close handshake without a partition: producers that find
// the ring full must PARK (not drop, not spin-fail), and closing the queue
// must wake every parked producer and fail every queued intent with
// ErrClosed — the latent leak this PR fixes (satellite: a producer parked on
// a full ring when the partition closes mid-enqueue must not hang forever).
func TestWriteQueueParkAndCloseWake(t *testing.T) {
	q := newWriteQueue()

	// Fill the ring to capacity; every push must land without parking.
	queued := make([]*writeIntent, 0, writeRingSize)
	for i := 0; i < writeRingSize; i++ {
		it := getIntent()
		it.op = intentPut
		if !q.push(it) {
			t.Fatalf("push %d failed below capacity", i)
		}
		queued = append(queued, it)
	}
	if q.push(getIntent()) {
		t.Fatal("push succeeded on a full ring")
	}
	if !q.full() {
		t.Fatal("full() = false on a full ring")
	}

	// Producers beyond capacity park inside enqueue. Their intents are the
	// ones enqueue still owns — on ErrClosed they must NOT have been pushed.
	const parked = 8
	var wg sync.WaitGroup
	errs := make([]error, parked)
	for g := 0; g < parked; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			it := getIntent()
			it.op = intentPut
			errs[g] = q.enqueue(it)
		}(g)
	}
	deadline := time.Now().Add(5 * time.Second)
	for q.parks.Load() < parked {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d producers parked", q.parks.Load(), parked)
		}
		runtime.Gosched()
	}

	// Close: the owner's quit path in miniature. Every parked producer must
	// return ErrClosed, and failPending must fail the ring's contents.
	q.closed.Store(true)
	q.wakeProducers()
	q.failPending(nil)
	wg.Wait()
	for g, err := range errs {
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("parked producer %d: err = %v, want ErrClosed", g, err)
		}
	}
	for i, it := range queued {
		select {
		case <-it.done:
		default:
			t.Fatalf("queued intent %d never failed", i)
		}
		if !errors.Is(it.err, ErrClosed) {
			t.Fatalf("queued intent %d: err = %v, want ErrClosed", i, it.err)
		}
	}
	// Late arrivals bounce immediately.
	if err := q.enqueue(getIntent()); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close = %v, want ErrClosed", err)
	}
	if q.parks.Load() < parked {
		t.Fatalf("parks = %d, want >= %d", q.parks.Load(), parked)
	}
}

// Close must make every subsequent operation fail with ErrClosed, fail open
// iterators on their next positioning call, and stay idempotent — the
// serving front end's graceful shutdown depends on racing requests draining
// deterministically instead of touching torn-down state.
func TestCloseFailsOpsDeterministically(t *testing.T) {
	db, err := Open(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := db.Put(key(i), val(i, 100)); err != nil {
			t.Fatal(err)
		}
	}

	open := db.NewIterator(nil, 0)
	if !open.Valid() {
		t.Fatal("iterator over live data must be valid")
	}

	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close must be idempotent, got %v", err)
	}

	if _, err := db.Put(key(1), val(1, 100)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: err = %v, want ErrClosed", err)
	}
	if _, _, _, err := db.Get(key(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close: err = %v, want ErrClosed", err)
	}
	if _, _, _, err := db.GetBuf(key(1), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("GetBuf after Close: err = %v, want ErrClosed", err)
	}
	if _, err := db.Delete(key(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after Close: err = %v, want ErrClosed", err)
	}
	if _, _, err := db.Scan(nil, 10); !errors.Is(err, ErrClosed) {
		t.Fatalf("Scan after Close: err = %v, want ErrClosed", err)
	}

	// The pre-Close iterator fails on its next positioning call but still
	// releases its pins through Close.
	if open.Next() {
		t.Fatal("Next on an iterator of a closed DB must report false")
	}
	if !errors.Is(open.Err(), ErrClosed) {
		t.Fatalf("open iterator Err = %v, want ErrClosed", open.Err())
	}
	if open.Seek(key(0)) {
		t.Fatal("Seek on a failed iterator must report false")
	}
	if err := open.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("open iterator Close = %v, want ErrClosed", err)
	}

	// Iterators created after Close are born failed.
	born := db.NewIterator(nil, 0)
	if born.Valid() {
		t.Fatal("iterator created after Close must not be valid")
	}
	if !errors.Is(born.Err(), ErrClosed) {
		t.Fatalf("born-failed iterator Err = %v, want ErrClosed", born.Err())
	}
	if born.Next() {
		t.Fatal("Next on a born-failed iterator must report false")
	}
	if err := born.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("born-failed iterator Close = %v, want ErrClosed", err)
	}

	// Read-only accessors keep working so a shutting-down server can report
	// final counters.
	if st := db.Stats(); st.Puts != 50 {
		t.Fatalf("Stats after Close: Puts = %d, want 50", st.Puts)
	}
	if db.Elapsed() <= 0 {
		t.Fatal("Elapsed after Close must still report virtual time")
	}
}
