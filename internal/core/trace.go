package core

import "time"

// OpTrace receives the engine-side stage timings of one traced write. The
// server's sampled tracer passes one in through PutTraced/DeleteTraced;
// untraced ops pass nil and pay no time.Now calls beyond what the write
// path already makes.
//
// Stage semantics depend on which write path the op took:
//
//   - Direct (uncontended fast path, WriteSync mode, or in-memory): the op
//     applies under the partition lock with its WAL append inside the same
//     critical section, so QueueWait is zero and WALAppend is folded into
//     Apply. FsyncWait covers the off-lock durability barrier.
//   - Queued (owner-goroutine batch): QueueWait spans enqueue to the owner
//     picking the intent up, Apply is the op's own mutation inside the
//     batch's critical section, and WALAppend is the batch's one group
//     append (billed in full — group commit makes the whole append this
//     op's durability prerequisite). FsyncWait again covers WaitDurable.
type OpTrace struct {
	QueueWait time.Duration // ring wait before the owner applied the op
	Apply     time.Duration // mutation inside the critical section
	WALAppend time.Duration // WAL group append (queued path only)
	FsyncWait time.Duration // off-lock group-commit durability barrier

	// enqAt anchors the queued path's QueueWait measurement. It lives here
	// rather than in writeIntent so the untraced hot path's intent stays
	// small — every ring slot and pool entry would otherwise carry a dead
	// 24-byte timestamp.
	enqAt time.Time
}

// PutTraced is Put for sampled ops: identical semantics, with engine stage
// timings written into tr (which must be non-nil and zeroed).
func (db *DB) PutTraced(key, value []byte, tr *OpTrace) (time.Duration, error) {
	if db.closed.Load() {
		return 0, ErrClosed
	}
	return db.partitionOf(key).putTraced(key, value, tr)
}

// DeleteTraced is Delete for sampled ops, mirroring PutTraced.
func (db *DB) DeleteTraced(key []byte, tr *OpTrace) (time.Duration, error) {
	if db.closed.Load() {
		return 0, ErrClosed
	}
	return db.partitionOf(key).delTraced(key, tr)
}

// putTraced mirrors partition.put with stage timing. The branch structure is
// kept in lockstep with put — a change there belongs here too.
func (p *partition) putTraced(key, value []byte, tr *OpTrace) (time.Duration, error) {
	if p.wq != nil {
		if p.wq.idle() && p.mu.TryLock() {
			a0 := time.Now()
			lat, lsn, err := p.putDirectLocked(key, value)
			tr.Apply = time.Since(a0)
			if err != nil {
				return lat, err
			}
			f0 := time.Now()
			err = p.wal.WaitDurable(lsn)
			tr.FsyncWait = time.Since(f0)
			return lat, err
		}
		return p.enqueueWait(intentPut, key, value, tr)
	}
	a0 := time.Now()
	lat, lsn, err := p.putLocking(key, value, false, true)
	tr.Apply = time.Since(a0)
	if err != nil {
		return lat, err
	}
	f0 := time.Now()
	err = p.wal.WaitDurable(lsn)
	tr.FsyncWait = time.Since(f0)
	return lat, err
}

// delTraced mirrors partition.del with stage timing, as putTraced does put.
func (p *partition) delTraced(key []byte, tr *OpTrace) (time.Duration, error) {
	if p.wq != nil {
		if p.wq.idle() && p.mu.TryLock() {
			a0 := time.Now()
			lat, lsn, err := p.delDirectLocked(key)
			tr.Apply = time.Since(a0)
			if err != nil {
				return lat, err
			}
			f0 := time.Now()
			err = p.wal.WaitDurable(lsn)
			tr.FsyncWait = time.Since(f0)
			return lat, err
		}
		return p.enqueueWait(intentDel, key, nil, tr)
	}
	a0 := time.Now()
	lat, lsn, err := p.delLocking(key)
	tr.Apply = time.Since(a0)
	if err != nil {
		return lat, err
	}
	f0 := time.Now()
	err = p.wal.WaitDurable(lsn)
	tr.FsyncWait = time.Since(f0)
	return lat, err
}
