package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/prismdb/prismdb/internal/obs"
)

// ErrReadOnly is returned by every mutation issued while the DB is degraded:
// a sticky storage error (WAL append/fsync failure, manifest journal failure,
// checkpoint fsync failure, ENOSPC, a declared I/O stall) has made further
// writes unsafe to acknowledge, so the DB serves reads from its published
// views and refuses writes fast instead of hanging or lying. Serving front
// ends map it to a RESP -READONLY reply.
var ErrReadOnly = errors.New("prismdb: database is read-only (degraded)")

// HealthState is a DB's position in the failure-domain state machine.
// Transitions only move away from Healthy (sticky until the process reopens
// the data directory — recovery is a reopen, not an in-place retry):
//
//	Healthy ──storage write error──▶ Degraded ──unrecoverable data loss──▶ Failed
//	   └──────────────NVM bit rot (scrub)──────────────────────────────────┘
type HealthState int32

const (
	// StateHealthy: full service.
	StateHealthy HealthState = iota
	// StateDegraded: read-only. The durability substrate reported a sticky
	// error, so mutations fail fast with ErrReadOnly while lock-free reads
	// keep serving from the published views (whose backing pages and slab
	// reads are unaffected by the write-side failure). A clean reopen
	// recovers: acknowledged writes are on disk, unacknowledged ones were
	// never acked.
	StateDegraded
	// StateFailed: read-only AND the scrubber has proven unrecoverable data
	// loss (an NVM slab slot failed its CRC — unlike a rotted SST block,
	// which merely quarantines its table and falls back to other tiers,
	// a rotted slab slot has no redundant copy). Reads still serve what is
	// readable; the state advertises that a reopen will NOT restore the
	// lost objects.
	StateFailed
)

// String names the state (INFO/HEALTH spelling).
func (s HealthState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateFailed:
		return "failed"
	}
	return "unknown"
}

// Health is a point-in-time snapshot of the DB's failure-domain state.
type Health struct {
	State HealthState
	// Cause is the first sticky error that forced the transition out of
	// Healthy ("" while healthy). Later errors don't overwrite it: the
	// first failure is the diagnosis, the rest are symptoms.
	Cause string
	// Since is when the transition happened (zero while healthy).
	Since time.Time
	// ReadOnly reports whether mutations are currently refused.
	ReadOnly bool
}

// healthTracker is the DB's sticky failure-domain state machine. The state
// itself is an atomic (the write path's gate is one relaxed load on the hot
// path); cause/since and the degrade callbacks are guarded by mu. Transitions
// are monotone — degrade() and fail() only ever move the state away from
// Healthy, and the first transition's cause wins.
type healthTracker struct {
	state  atomic.Int32
	events *obs.EventLog

	mu    sync.Mutex
	cause string
	err   error // the wrapped ErrReadOnly handed to refused writers
	since time.Time

	// onDegrade callbacks run (once, on the transitioning goroutine, no
	// locks held) at the first transition out of Healthy: the DB uses them
	// to wake parked write-queue producers so nobody sleeps through the
	// read-only transition. Registered before serving starts; never mutated
	// after.
	onDegrade []func()
}

func newHealthTracker(events *obs.EventLog) *healthTracker {
	return &healthTracker{events: events}
}

// writeErr is the mutation gate: nil while healthy, the sticky wrapped
// ErrReadOnly otherwise. One atomic load on the hot path.
func (h *healthTracker) writeErr() error {
	if HealthState(h.state.Load()) == StateHealthy {
		return nil
	}
	h.mu.Lock()
	err := h.err
	h.mu.Unlock()
	if err == nil {
		// The state store won its race with the cause store; synthesize.
		err = ErrReadOnly
	}
	return err
}

// ok reports full service (background work uses it to stand down while
// degraded instead of churning a broken substrate).
func (h *healthTracker) ok() bool {
	return HealthState(h.state.Load()) == StateHealthy
}

// snapshot returns the current Health.
func (h *healthTracker) snapshot() Health {
	st := HealthState(h.state.Load())
	h.mu.Lock()
	defer h.mu.Unlock()
	return Health{
		State:    st,
		Cause:    h.cause,
		Since:    h.since,
		ReadOnly: st != StateHealthy,
	}
}

// degrade moves Healthy → Degraded with the given cause. Idempotent; only
// the first transition records its cause, emits the event, and runs the
// degrade callbacks. Safe to call from any goroutine (WAL flusher, watchdog,
// checkpoint path, compaction worker) — callbacks run without h.mu held.
func (h *healthTracker) degrade(source string, cause error) {
	h.transition(StateDegraded, source, cause)
}

// fail moves to Failed (from Healthy or Degraded): the scrubber's verdict
// that data is unrecoverably lost. The read-only cause (if any) is kept;
// the state escalates.
func (h *healthTracker) fail(source string, cause error) {
	h.transition(StateFailed, source, cause)
}

func (h *healthTracker) transition(to HealthState, source string, cause error) {
	for {
		cur := HealthState(h.state.Load())
		if cur >= to {
			return // already there or worse; first diagnosis stands
		}
		if !h.state.CompareAndSwap(int32(cur), int32(to)) {
			continue
		}
		first := cur == StateHealthy
		h.mu.Lock()
		if first {
			h.cause = fmt.Sprintf("%s: %v", source, cause)
			h.err = fmt.Errorf("%w: %s", ErrReadOnly, h.cause)
			h.since = time.Now()
		}
		h.mu.Unlock()
		h.events.Emit("health_transition",
			"from", cur.String(), "to", to.String(),
			"source", source, "cause", cause.Error())
		if first {
			for _, fn := range h.onDegrade {
				fn()
			}
		}
		return
	}
}

// Health reports the DB's failure-domain state: Healthy (full service),
// Degraded (read-only after a sticky storage error — see ErrReadOnly), or
// Failed (read-only with scrub-proven unrecoverable NVM loss). Callable at
// any time, including after Close.
func (db *DB) Health() Health { return db.health.snapshot() }
