// Package core implements the PrismDB engine: a partitioned, shared-nothing
// key-value store spanning an NVM tier (slab files, §4.1) and a flash tier
// (a sorted log of SST files), with multi-tiered storage compaction (§5)
// moving objects between them based on popularity and compaction cost.
package core

import (
	"fmt"
	"strings"
	"time"

	"github.com/prismdb/prismdb/internal/msc"
	"github.com/prismdb/prismdb/internal/obs"
	"github.com/prismdb/prismdb/internal/simdev"
	"github.com/prismdb/prismdb/internal/storage"
)

// CPUCosts models per-operation CPU time charged to worker and compaction
// clocks. The evaluation's CPU-vs-I/O breakdowns (§3, Fig 6) emerge from
// these charges; the defaults are loosely calibrated to the per-op costs of
// the C++ implementation's data structures.
type CPUCosts struct {
	// OpBase covers request dispatch, partition-lock handoff, and the
	// tracker update on the critical path.
	OpBase time.Duration
	// IndexOp is a B-tree lookup/insert/delete.
	IndexOp time.Duration
	// BloomCheck is one SST filter probe plus index-block navigation.
	BloomCheck time.Duration
	// MergePerKey is the per-record cost of compaction merge-sorting.
	MergePerKey time.Duration
	// PreciseScanPerObject is the per-object cost of precise-MSC scoring:
	// a mapper lookup plus B-tree and SST-index navigation (§5.3).
	PreciseScanPerObject time.Duration
	// ApproxPerBucket is the per-bucket cost of approx-MSC scoring.
	ApproxPerBucket time.Duration
}

// DefaultCPUCosts returns the standard cost model.
func DefaultCPUCosts() CPUCosts {
	return CPUCosts{
		OpBase:               500 * time.Nanosecond,
		IndexOp:              300 * time.Nanosecond,
		BloomCheck:           100 * time.Nanosecond,
		MergePerKey:          200 * time.Nanosecond,
		PreciseScanPerObject: 2 * time.Microsecond,
		ApproxPerBucket:      100 * time.Nanosecond,
	}
}

// ReadTriggerOptions configure read-triggered compactions (§5.3): the
// detection → invocation → monitoring state machine that promotes hot flash
// objects under read-heavy workloads.
type ReadTriggerOptions struct {
	// Enabled turns the mechanism on.
	Enabled bool
	// Epoch is the invocation window in client operations (paper default
	// 1 M; scale with dataset size).
	Epoch int
	// Cooldown is the pause after an unproductive epoch (paper default
	// 10 M operations).
	Cooldown int
	// ImproveDelta is the minimum NVM-read-ratio improvement per epoch to
	// keep compacting (paper default 1%).
	ImproveDelta float64
	// ReadHeavyFraction is the read share above which the workload counts
	// as read-dominated during detection.
	ReadHeavyFraction float64
	// MinFlashFraction is the fraction of tracked keys on flash above
	// which detection fires.
	MinFlashFraction float64
}

// DefaultReadTrigger returns the paper's defaults scaled by dataset size.
func DefaultReadTrigger(datasetKeys int) ReadTriggerOptions {
	epoch := datasetKeys / 10
	if epoch < 1000 {
		epoch = 1000
	}
	return ReadTriggerOptions{
		Enabled:           true,
		Epoch:             epoch,
		Cooldown:          epoch * 10,
		ImproveDelta:      0.01,
		ReadHeavyFraction: 0.80,
		MinFlashFraction:  0.25,
	}
}

// CompactionMode selects where compaction work runs relative to the
// foreground request path.
type CompactionMode int

const (
	// CompactionAsync (the default) runs demotion and read-triggered
	// compactions on a per-partition background worker: the trigger
	// (watermark crossing, read-trigger state machine) enqueues a job and
	// returns, so foreground operations only ever take short critical
	// sections. The worker pins a manifest snapshot and a slab reclamation
	// epoch, merges off-lock, and commits its index/bucket/tracker/manifest
	// mutations under the partition lock with version-checked
	// reconciliation (a key overwritten or deleted while the merge ran is
	// never clobbered by the commit). The virtual-time model is unchanged —
	// compaction I/O still runs on a background clock, its reclaimed space
	// still matures at the job's virtual completion, and writers that
	// outrun compaction still stall — but host wall-clock time no longer
	// charges a whole multi-SST merge to one unlucky foreground write.
	CompactionAsync CompactionMode = iota
	// CompactionSync runs the whole compaction inline under the partition
	// lock at the trigger point, exactly as before async compaction
	// existed. Virtual-time results are bit-reproducible run to run, which
	// is what the serial bench drivers and deterministic tests want.
	CompactionSync
)

// String names the mode.
func (m CompactionMode) String() string {
	if m == CompactionSync {
		return "sync"
	}
	return "async"
}

// WriteMode selects how client mutations reach the partition state.
type WriteMode int

const (
	// WriteAsync (the default) batches SET/DEL per partition. An
	// uncontended caller applies directly as a batch of one (ring empty +
	// TryLock — no handoff); contended callers frame write intents into a
	// bounded lock-free MPSC ring (producers park when it fills —
	// lossless, unlike the popularity ring) and the partition's owner
	// goroutine drains a batch, applies every mutation in one locked
	// critical section, issues one WAL group append for the whole batch
	// (batch = fsync group under SyncEvery), and republishes the read
	// view once per batch. Ack semantics, per-op virtual-time latency
	// composition, read-your-writes on the enqueuing goroutine, and the
	// slab-write-before-WAL-append durability ordering are all preserved,
	// so serial virtual-time results track WriteSync closely (see
	// writequeue.go).
	WriteAsync WriteMode = iota
	// WriteSync is the legacy locked write path: each mutation takes the
	// partition lock itself. Deterministic serial benches and the
	// async-vs-sync fidelity tests use it as the reference.
	WriteSync
)

// String names the mode.
func (m WriteMode) String() string {
	if m == WriteSync {
		return "sync"
	}
	return "async"
}

// ParseWriteMode parses the -write-mode flag spellings.
func ParseWriteMode(s string) (WriteMode, error) {
	switch strings.ToLower(s) {
	case "async", "queue", "owner":
		return WriteAsync, nil
	case "sync", "locked":
		return WriteSync, nil
	}
	return 0, fmt.Errorf("core: unknown write mode %q (want async or sync)", s)
}

// Options configure a DB. NVM and Flash are required; zero values elsewhere
// take the documented defaults.
type Options struct {
	// Partitions is the number of shared-nothing partitions, each with a
	// dedicated worker and compaction job (paper default: one per core).
	Partitions int

	// NVM and Flash are the two storage tiers.
	NVM   *simdev.Device
	Flash *simdev.Device

	// Cache models the OS page cache (DRAM). Shared by both tiers.
	Cache *simdev.PageCache

	// NVMBudget is the total NVM bytes the DB may use for slabs plus
	// flash index/filter metadata. Defaults to the NVM device capacity.
	NVMBudget int64

	// SlabClasses overrides the slot-size ladder.
	SlabClasses []int

	// TrackerCapacity bounds the popularity tracker (total across
	// partitions; the paper uses 10–20% of the database's keys).
	TrackerCapacity int

	// PinningThreshold is the fraction of tracked objects pinned to NVM
	// (paper default 0.7 of the tracker).
	PinningThreshold float64

	// HighWatermark / LowWatermark bound NVM usage: compaction triggers
	// at high (default 0.98) and demotes until usage falls below low
	// (default 0.95).
	HighWatermark float64
	LowWatermark  float64

	// RangeFiles is i, the number of consecutive SST files per candidate
	// compaction key range (§5.2, default 1).
	RangeFiles int

	// PowerK is the number of candidate ranges scored per compaction
	// (power-of-k choices, §5.3, default 8).
	PowerK int

	// Policy selects the compaction scoring policy (default approx-MSC).
	Policy msc.Policy

	// Promotions enables moving hot flash objects to NVM during
	// compactions (§5.3).
	Promotions bool

	// ReadTrigger configures read-triggered compactions.
	ReadTrigger ReadTriggerOptions

	// CompactionMode selects background (async, the default) or inline
	// (sync) compaction execution; see the constants for the trade-off.
	CompactionMode CompactionMode

	// WriteMode selects the owner-goroutine batched write path (async,
	// the default) or the legacy per-op locked path (sync); see the
	// constants for the trade-off.
	WriteMode WriteMode

	// KeyIndex maps a key to a dense index in [0, KeySpace), used for
	// bucket statistics and range partitioning. Defaults to parsing the
	// decimal digits embedded in the key.
	KeyIndex func([]byte) uint64

	// KeySpace is the size of the key-index domain (defaults 1<<20).
	KeySpace uint64

	// BucketKeys is the approx-MSC bucket size in keys (§6; the paper
	// default equals the average keys per SST file).
	BucketKeys int

	// TargetSSTBytes is the flash SST file size (default 4 MiB).
	TargetSSTBytes int64

	// BlockSize is the SST data-block size (default 4 KiB).
	BlockSize int

	// RangePartitioning routes keys to partitions by key order rather
	// than by hash (recommended for scan-heavy workloads, §4.1).
	RangePartitioning bool

	// ScanPrefetch enables SST readahead during scans. The paper leaves
	// a prefetcher as future work (§7.2, its one lost workload); this
	// implements the same block-readahead RocksDB ships with.
	ScanPrefetch bool

	// AutoTuneThreshold enables the hill-climbing pinning-threshold tuner
	// the paper sketches as future work (§7.4): each partition perturbs
	// its threshold every AutoTuneWindow operations and keeps the
	// direction that improved observed throughput.
	AutoTuneThreshold bool
	// AutoTuneWindow is the observation window in operations (default
	// 4096) and AutoTuneStep the perturbation size (default 0.1).
	AutoTuneWindow int
	AutoTuneStep   float64

	// DataDir selects the durable storage backend: when non-empty, slab
	// and SST bytes live in real files under this directory, every write
	// is logged to a write-ahead log, and Open recovers the directory's
	// state (see prismdb.go's Durability section). Empty (the default)
	// keeps the in-memory simdev backend — nothing survives the process,
	// and simulated results stay byte-identical run to run.
	DataDir string

	// WALSync selects when acknowledged writes are durable (DataDir mode
	// only): storage.SyncEvery (default; group-committed fsync before
	// every ack), storage.SyncGroup (background fsync every WALFsyncEvery
	// records or WALFsyncInterval), or storage.SyncNone.
	WALSync storage.SyncMode

	// WALFsyncEvery and WALFsyncInterval tune SyncGroup batching
	// (defaults 64 records, 2ms).
	WALFsyncEvery    int
	WALFsyncInterval time.Duration

	// WALSegmentBytes is the WAL segment rotation threshold (default
	// 8 MiB); each rotation checkpoints the slab files and prunes the
	// covered segments.
	WALSegmentBytes int64

	// IOStallDeadline, when positive, arms the WAL I/O stall watchdog
	// (DataDir mode only): a single WAL write, fsync, or checkpoint call
	// that stays in flight longer than the deadline is declared stalled,
	// waiters fail with storage.ErrIOStalled instead of hanging, and the
	// DB degrades to read-only. Zero (the default) disables the watchdog —
	// simulated and test workloads routinely sit idle for longer than any
	// sensible deadline.
	IOStallDeadline time.Duration

	// ScrubInterval, when positive, starts the background scrubber
	// (DataDir mode only): a low-priority goroutine that cycles through
	// every slab slot and SST block, verifying stored CRCs. A rotted SST
	// block quarantines its table (reads fall through to other tiers); a
	// rotted slab slot — unrecoverable — moves the DB to Failed. Zero (the
	// default) disables scrubbing.
	ScrubInterval time.Duration

	// Faults, when set, injects deterministic I/O failures into the file
	// backend (testing hook; DataDir mode only).
	Faults *storage.FaultInjector

	// Metrics, when set, is the obs registry the DB registers its
	// instruments and collectors into, so an embedding server can serve
	// engine and server series from one /metrics endpoint. Nil makes the
	// DB create a private registry (instruments are always live —
	// benchmark numbers include their cost); reach it via DB.Registry.
	Metrics *obs.Registry

	// Events, when set, receives the engine's structured events
	// (compaction rounds, checkpoints, WAL rotations, recovery outcomes,
	// write stalls). Nil makes the DB create a private bounded log;
	// reach it via DB.Events.
	Events *obs.EventLog

	// Seed drives the engine's random choices (candidate selection,
	// boundary-clock sampling).
	Seed int64

	// CPU is the CPU cost model.
	CPU CPUCosts

	// CPUPool, when set, routes all engine CPU charges through a shared
	// fixed-core pool so foreground requests and background compactions
	// contend for cores as they do on the paper's 10-core cgroup.
	CPUPool *simdev.CPUPool
}

// withDefaults validates opts and fills defaults.
func (o Options) withDefaults() (Options, error) {
	if o.NVM == nil || o.Flash == nil {
		return o, fmt.Errorf("core: Options.NVM and Options.Flash are required")
	}
	if o.Partitions <= 0 {
		o.Partitions = 1
	}
	if o.Cache == nil {
		o.Cache = simdev.NewPageCache(0)
	}
	if o.NVMBudget <= 0 {
		o.NVMBudget = o.NVM.Params().Capacity
	}
	if o.TrackerCapacity <= 0 {
		o.TrackerCapacity = 1 << 16
	}
	if o.PinningThreshold == 0 {
		o.PinningThreshold = 0.7
	}
	if o.HighWatermark == 0 {
		o.HighWatermark = 0.98
	}
	if o.LowWatermark == 0 {
		o.LowWatermark = 0.95
	}
	if o.LowWatermark >= o.HighWatermark {
		return o, fmt.Errorf("core: LowWatermark %v must be below HighWatermark %v",
			o.LowWatermark, o.HighWatermark)
	}
	if o.RangeFiles <= 0 {
		o.RangeFiles = 1
	}
	if o.PowerK <= 0 {
		o.PowerK = 8
	}
	if o.KeyIndex == nil {
		o.KeyIndex = DefaultKeyIndex
	}
	if o.KeySpace == 0 {
		o.KeySpace = 1 << 20
	}
	// The bucket map and range partitioner index dense arrays by the key
	// index, so results must stay inside [0, KeySpace). Harness keys are in
	// range by construction, but arbitrary client keys (digit overflow, the
	// FNV fallback, custom KeyIndex bugs) arrive over the network and must
	// fold instead of panicking.
	userIdx, space := o.KeyIndex, o.KeySpace
	o.KeyIndex = func(key []byte) uint64 {
		idx := userIdx(key)
		if idx >= space {
			idx %= space
		}
		return idx
	}
	if o.BucketKeys <= 0 {
		// Default: average keys per SST (paper §6). Assume ~1 KB objects.
		o.BucketKeys = int(o.TargetSSTBytesOrDefault() / 1024)
		if o.BucketKeys < 64 {
			o.BucketKeys = 64
		}
	}
	if o.TargetSSTBytes <= 0 {
		o.TargetSSTBytes = 4 << 20
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 4096
	}
	if o.CPU == (CPUCosts{}) {
		o.CPU = DefaultCPUCosts()
	}
	if o.AutoTuneWindow <= 0 {
		o.AutoTuneWindow = 4096
	}
	if o.AutoTuneStep <= 0 {
		o.AutoTuneStep = 0.1
	}
	return o, nil
}

// TargetSSTBytesOrDefault returns the SST size without mutating o.
func (o Options) TargetSSTBytesOrDefault() int64 {
	if o.TargetSSTBytes > 0 {
		return o.TargetSSTBytes
	}
	return 4 << 20
}

// DefaultKeyIndex extracts the decimal digits of a key into a uint64:
// "user000123" → 123. Keys without digits hash to a stable value derived
// from their bytes. Workload generators use fixed-width decimal keys, so
// lexicographic and numeric order coincide.
func DefaultKeyIndex(key []byte) uint64 {
	var n uint64
	sawDigit := false
	for _, b := range key {
		if b >= '0' && b <= '9' {
			n = n*10 + uint64(b-'0')
			sawDigit = true
		}
	}
	if sawDigit {
		return n
	}
	// FNV fallback for non-numeric keys.
	var h uint64 = 14695981039346656037
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}
