package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/prismdb/prismdb/internal/msc"
	"github.com/prismdb/prismdb/internal/simdev"
)

// testOptions builds a small two-tier configuration that compacts readily.
// Compaction runs in sync mode so every existing test stays deterministic:
// stats and tier placement are exact at every step. Async-mode behavior is
// covered separately in async_test.go.
func testOptions() Options {
	nvm := simdev.New(simdev.NVMParams(64 << 20))
	flash := simdev.New(simdev.QLCParams(512 << 20))
	return Options{
		CompactionMode:   CompactionSync,
		Partitions:       1,
		NVM:              nvm,
		Flash:            flash,
		Cache:            simdev.NewPageCache(256 << 10),
		NVMBudget:        512 << 10, // 512 KiB — fills after ~few hundred 1KB objects
		TrackerCapacity:  256,
		PinningThreshold: 0.7,
		KeySpace:         1 << 16,
		BucketKeys:       256,
		TargetSSTBytes:   16 << 10,
		Seed:             1,
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("user%08d", i)) }
func val(i, size int) []byte {
	v := bytes.Repeat([]byte{byte('a' + i%26)}, size)
	copy(v, fmt.Sprintf("v%d-", i))
	return v
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without devices must fail")
	}
	o := testOptions()
	o.LowWatermark = 0.99
	o.HighWatermark = 0.98
	if _, err := Open(o); err == nil {
		t.Fatal("low ≥ high watermark must fail")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	db, err := Open(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Put(key(i), val(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		v, tier, lat, err := db.Get(key(i))
		if err != nil {
			t.Fatal(err)
		}
		if tier == TierMiss {
			t.Fatalf("key %d missing", i)
		}
		if !bytes.Equal(v, val(i, 100)) {
			t.Fatalf("key %d value mismatch", i)
		}
		if lat <= 0 {
			t.Fatal("latency not positive")
		}
	}
	if _, tier, _, _ := db.Get(key(999)); tier != TierMiss {
		t.Fatalf("absent key tier = %v", tier)
	}
	st := db.Stats()
	if st.Puts != 100 || st.Gets != 101 || st.GetMiss != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestUpdateInPlaceVsMove(t *testing.T) {
	db, _ := Open(testOptions())
	db.Put(key(1), val(1, 100))
	db.Put(key(1), val(2, 95)) // key 12B + value ≤ 100B stays in the 128 B class
	st := db.Stats()
	if st.InPlaceUpdates != 1 {
		t.Fatalf("in-place updates = %d; stats %+v", st.InPlaceUpdates, st)
	}
	db.Put(key(1), val(3, 900)) // jumps to the 1024 class
	st = db.Stats()
	if st.SlabMoves != 1 {
		t.Fatalf("slab moves = %d", st.SlabMoves)
	}
	v, _, _, _ := db.Get(key(1))
	if !bytes.Equal(v, val(3, 900)) {
		t.Fatal("value after class move wrong")
	}
	if st.NVMObjects != 1 {
		t.Fatalf("NVMObjects = %d", st.NVMObjects)
	}
}

func TestGetSourceDRAMAfterWrite(t *testing.T) {
	db, _ := Open(testOptions())
	db.Put(key(1), val(1, 100))
	// The synchronous write left the page cache warm.
	_, tier, _, _ := db.Get(key(1))
	if tier != TierDRAM {
		t.Fatalf("tier = %v, want dram (page-cache hit)", tier)
	}
}

func TestDeleteSimple(t *testing.T) {
	db, _ := Open(testOptions())
	db.Put(key(1), val(1, 100))
	if _, err := db.Delete(key(1)); err != nil {
		t.Fatal(err)
	}
	_, tier, _, _ := db.Get(key(1))
	if tier != TierMiss {
		t.Fatalf("tier after delete = %v", tier)
	}
	st := db.Stats()
	if st.Deletes != 1 || st.NVMObjects != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// fillUntilCompaction loads enough data to force demotions.
func fillUntilCompaction(t *testing.T, db *DB, n, vsize int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := db.Put(key(i), val(i, vsize)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if db.Stats().Compactions == 0 {
		t.Fatal("no compaction triggered; grow n")
	}
}

func TestCompactionDemotesAndDataSurvives(t *testing.T) {
	db, _ := Open(testOptions())
	const n = 2000
	fillUntilCompaction(t, db, n, 400)
	st := db.Stats()
	if st.Demoted == 0 {
		t.Fatal("nothing demoted")
	}
	if st.FlashObjects == 0 {
		t.Fatal("no objects on flash")
	}
	used, budget := db.NVMUsage()
	if used > budget {
		t.Fatalf("NVM over budget: %d > %d", used, budget)
	}
	// Every key still readable with correct value.
	flashHits := 0
	for i := 0; i < n; i++ {
		v, tier, _, err := db.Get(key(i))
		if err != nil || tier == TierMiss {
			t.Fatalf("key %d: tier=%v err=%v", i, tier, err)
		}
		if !bytes.Equal(v, val(i, 400)) {
			t.Fatalf("key %d corrupted after compaction", i)
		}
		if tier == TierFlash {
			flashHits++
		}
	}
	if flashHits == 0 {
		t.Fatal("no reads served from flash despite demotions")
	}
}

func TestCompactionPinsHotKeys(t *testing.T) {
	o := testOptions()
	o.PinningThreshold = 0.5
	db, _ := Open(o)
	// Heat a working set repeatedly while cold keys pour in.
	for i := 0; i < 3000; i++ {
		db.Put(key(i), val(i, 400))
		for h := 0; h < 3; h++ {
			hot := i % 20 // keys 0..19 stay hot
			db.Get(key(hot))
		}
	}
	st := db.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compactions")
	}
	// Hot keys should still be NVM-resident.
	nvmHot := 0
	for i := 0; i < 20; i++ {
		_, tier, _, _ := db.Get(key(i))
		if tier == TierDRAM || tier == TierNVM {
			nvmHot++
		}
	}
	if nvmHot < 15 {
		t.Fatalf("only %d/20 hot keys on NVM/DRAM", nvmHot)
	}
}

func TestUpdateAfterDemotionShadowsFlash(t *testing.T) {
	db, _ := Open(testOptions())
	const n = 2000
	fillUntilCompaction(t, db, n, 400)
	// Rewrite key 0 (likely demoted by now).
	db.Put(key(0), val(777, 50))
	v, tier, _, _ := db.Get(key(0))
	if tier == TierFlash {
		t.Fatalf("fresh write served from flash")
	}
	if !bytes.Equal(v, val(777, 50)) {
		t.Fatal("NVM version does not shadow flash")
	}
	// After further compactions the stale flash version must die, never
	// resurrect.
	for i := n; i < n+1500; i++ {
		db.Put(key(i), val(i, 400))
	}
	v, _, _, _ = db.Get(key(0))
	if !bytes.Equal(v, val(777, 50)) {
		t.Fatal("stale flash version resurrected")
	}
}

func TestDeleteWithFlashVersionTombstones(t *testing.T) {
	db, _ := Open(testOptions())
	const n = 2000
	fillUntilCompaction(t, db, n, 400)
	st0 := db.Stats()
	if st0.FlashObjects == 0 {
		t.Fatal("setup: nothing on flash")
	}
	// Delete everything; flash-resident keys need tombstones.
	for i := 0; i < n; i++ {
		if _, err := db.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		_, tier, _, _ := db.Get(key(i))
		if tier != TierMiss {
			t.Fatalf("key %d alive after delete (tier %v)", i, tier)
		}
	}
	// Force compactions to churn tombstones through the merge.
	for i := n; i < n+2000; i++ {
		db.Put(key(i), val(i, 400))
	}
	for i := 0; i < n; i++ {
		_, tier, _, _ := db.Get(key(i))
		if tier != TierMiss {
			t.Fatalf("key %d resurrected after tombstone merge", i)
		}
	}
	if st := db.Stats(); st.DroppedTombstones == 0 {
		t.Fatal("no tombstones annihilated")
	}
}

func TestScanMergedOrder(t *testing.T) {
	db, _ := Open(testOptions())
	const n = 2000
	fillUntilCompaction(t, db, n, 400) // spread across both tiers
	kvs, lat, err := db.Scan(key(100), 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 50 {
		t.Fatalf("scan returned %d", len(kvs))
	}
	if lat <= 0 {
		t.Fatal("scan latency not positive")
	}
	for i, kv := range kvs {
		want := key(100 + i)
		if !bytes.Equal(kv.Key, want) {
			t.Fatalf("scan[%d] = %q, want %q", i, kv.Key, want)
		}
		if !bytes.Equal(kv.Value, val(100+i, 400)) {
			t.Fatalf("scan[%d] wrong value", i)
		}
	}
}

func TestScanSkipsDeleted(t *testing.T) {
	db, _ := Open(testOptions())
	for i := 0; i < 20; i++ {
		db.Put(key(i), val(i, 100))
	}
	db.Delete(key(5))
	kvs, _, _ := db.Scan(key(0), 10)
	for _, kv := range kvs {
		if bytes.Equal(kv.Key, key(5)) {
			t.Fatal("deleted key in scan")
		}
	}
	if len(kvs) != 10 {
		t.Fatalf("scan len = %d", len(kvs))
	}
}

func TestMultiPartitionHashAndRange(t *testing.T) {
	for _, rangePart := range []bool{false, true} {
		o := testOptions()
		o.Partitions = 4
		o.NVMBudget = 2 << 20
		o.RangePartitioning = rangePart
		db, err := Open(o)
		if err != nil {
			t.Fatal(err)
		}
		const n = 1000
		for i := 0; i < n; i++ {
			db.Put(key(i), val(i, 100))
		}
		for i := 0; i < n; i++ {
			v, tier, _, _ := db.Get(key(i))
			if tier == TierMiss || !bytes.Equal(v, val(i, 100)) {
				t.Fatalf("range=%v key %d bad", rangePart, i)
			}
		}
		// Global scan order must hold under both partitionings.
		kvs, _, err := db.Scan(key(0), 200)
		if err != nil {
			t.Fatal(err)
		}
		if len(kvs) != 200 {
			t.Fatalf("scan len = %d", len(kvs))
		}
		for i := 1; i < len(kvs); i++ {
			if bytes.Compare(kvs[i-1].Key, kvs[i].Key) >= 0 {
				t.Fatalf("range=%v scan out of order at %d", rangePart, i)
			}
		}
	}
}

func TestRecoveryAfterCrash(t *testing.T) {
	o := testOptions()
	db, _ := Open(o)
	const n = 2000
	for i := 0; i < n; i++ {
		db.Put(key(i), val(i, 400))
	}
	// Overwrite some keys so recovery must pick newest versions.
	for i := 0; i < 100; i++ {
		db.Put(key(i), val(i+5000, 200))
	}
	db.Delete(key(50))
	stBefore := db.Stats()
	if stBefore.Compactions == 0 {
		t.Fatal("setup: want compactions before crash")
	}

	// "Crash": discard the DB; reopen from the same devices.
	db2, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := val(i, 400)
		if i < 100 {
			want = val(i+5000, 200)
		}
		v, tier, _, err := db2.Get(key(i))
		if i == 50 {
			if tier != TierMiss {
				t.Fatal("deleted key resurrected by recovery")
			}
			continue
		}
		if err != nil || tier == TierMiss {
			t.Fatalf("key %d lost in crash: tier=%v err=%v", i, tier, err)
		}
		if !bytes.Equal(v, want) {
			t.Fatalf("key %d: recovered stale version", i)
		}
	}
	// Recovered DB must keep working (slots reusable, compactions fire).
	for i := n; i < n+1000; i++ {
		if _, err := db2.Put(key(i), val(i, 400)); err != nil {
			t.Fatalf("post-recovery put: %v", err)
		}
	}
}

func TestWriteStallsUnderPressure(t *testing.T) {
	// A flood of fresh inserts into a tiny NVM budget: admission is
	// capped at (headroom + bytes the in-flight compaction frees), so
	// inserts that outrun the compaction must stall (§4.2).
	o := testOptions()
	o.NVMBudget = 128 << 10
	db, _ := Open(o)
	for i := 0; i < 4000; i++ {
		db.Put(key(i), val(i, 2000)) // distinct keys: every put consumes a slot
	}
	st := db.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compactions under pressure")
	}
	if st.WriteStalls == 0 {
		t.Fatal("no write stalls recorded")
	}
	if st.WriteStallTime <= 0 {
		t.Fatal("stall time not accounted")
	}
}

func TestPromotionsBringHotDataBack(t *testing.T) {
	o := testOptions()
	o.Promotions = true
	o.ReadTrigger = ReadTriggerOptions{
		Enabled: true, Epoch: 2000, Cooldown: 4000,
		ImproveDelta: 0.01, ReadHeavyFraction: 0.8, MinFlashFraction: 0.05,
	}
	db, _ := Open(o)
	const n = 2000
	fillUntilCompaction(t, db, n, 400)
	// Read-only phase hammering a flash-resident working set.
	hotStart := 0
	for i := 0; i < 200; i++ {
		// Find some flash-resident hot keys.
		_, tier, _, _ := db.Get(key(i))
		if tier == TierFlash {
			hotStart = i
			break
		}
	}
	for round := 0; round < 20000; round++ {
		db.Get(key(hotStart + round%50))
	}
	st := db.Stats()
	if st.Promoted == 0 {
		t.Fatalf("no promotions despite hot flash reads; stats %+v", st)
	}
	if st.ReadTriggeredComps == 0 {
		t.Fatal("read-triggered compactions never fired")
	}
	// The hot keys should now be fast again.
	fast := 0
	for i := 0; i < 50; i++ {
		_, tier, _, _ := db.Get(key(hotStart + i))
		if tier != TierFlash {
			fast++
		}
	}
	if fast < 25 {
		t.Fatalf("only %d/50 hot keys promoted to NVM/DRAM", fast)
	}
}

func TestPoliciesAllFunctional(t *testing.T) {
	for _, pol := range []msc.Policy{msc.Approx, msc.Precise, msc.Random} {
		o := testOptions()
		o.Policy = pol
		db, _ := Open(o)
		const n = 1500
		for i := 0; i < n; i++ {
			db.Put(key(i), val(i, 400))
		}
		st := db.Stats()
		if st.Compactions == 0 {
			t.Fatalf("%v: no compactions", pol)
		}
		for i := 0; i < n; i += 37 {
			v, tier, _, _ := db.Get(key(i))
			if tier == TierMiss || !bytes.Equal(v, val(i, 400)) {
				t.Fatalf("%v: key %d bad", pol, i)
			}
		}
	}
}

func TestPreciseSelectionCostsMoreTime(t *testing.T) {
	run := func(pol msc.Policy) (sel int64) {
		o := testOptions()
		o.Policy = pol
		o.Seed = 7
		db, _ := Open(o)
		for i := 0; i < 3000; i++ {
			db.Put(key(i), val(i, 400))
		}
		return int64(db.Stats().SelectionTime)
	}
	precise := run(msc.Precise)
	approx := run(msc.Approx)
	if precise <= approx*2 {
		t.Fatalf("precise selection %d ns not ≫ approx %d ns", precise, approx)
	}
}

func TestObjectTooLarge(t *testing.T) {
	db, _ := Open(testOptions())
	if _, err := db.Put(key(1), make([]byte, 8192)); err == nil {
		t.Fatal("oversized object accepted")
	}
}

func TestStatsReset(t *testing.T) {
	db, _ := Open(testOptions())
	db.Put(key(1), val(1, 100))
	db.ResetStats()
	st := db.Stats()
	if st.Puts != 0 {
		t.Fatalf("puts after reset = %d", st.Puts)
	}
	if st.NVMObjects != 1 {
		t.Fatalf("object counts must survive reset: %d", st.NVMObjects)
	}
}

func TestElapsedAdvances(t *testing.T) {
	db, _ := Open(testOptions())
	if db.Elapsed() != 0 {
		t.Fatal("fresh DB elapsed != 0")
	}
	db.Put(key(1), val(1, 100))
	if db.Elapsed() <= 0 {
		t.Fatal("elapsed did not advance")
	}
	before := db.Elapsed()
	db.AdvanceAll()
	if db.Elapsed() < before {
		t.Fatal("AdvanceAll went backward")
	}
}

func TestDefaultKeyIndex(t *testing.T) {
	if DefaultKeyIndex([]byte("user000123")) != 123 {
		t.Fatal("digit parse failed")
	}
	if DefaultKeyIndex([]byte("k9x8")) != 98 {
		t.Fatal("interleaved digits")
	}
	a := DefaultKeyIndex([]byte("abc"))
	b := DefaultKeyIndex([]byte("abd"))
	if a == b {
		t.Fatal("non-numeric keys should hash distinctly")
	}
}

// TestModelBasedChurn runs a random op mix against a map model with heavy
// compaction churn and verifies the DB agrees at every step's read.
func TestModelBasedChurn(t *testing.T) {
	o := testOptions()
	o.Partitions = 2
	o.NVMBudget = 256 << 10
	o.Promotions = true
	db, _ := Open(o)
	model := map[string][]byte{}
	rng := rand.New(rand.NewSource(42))
	const keys = 600
	for step := 0; step < 12000; step++ {
		k := key(rng.Intn(keys))
		switch rng.Intn(10) {
		case 0: // delete
			db.Delete(k)
			delete(model, string(k))
		case 1, 2, 3, 4: // put
			v := val(rng.Intn(100000), 50+rng.Intn(800))
			if _, err := db.Put(k, v); err != nil {
				t.Fatalf("step %d put: %v", step, err)
			}
			model[string(k)] = v
		default: // get
			v, tier, _, err := db.Get(k)
			if err != nil {
				t.Fatalf("step %d get: %v", step, err)
			}
			want, exists := model[string(k)]
			if exists != (tier != TierMiss) {
				t.Fatalf("step %d: key %s exists=%v tier=%v", step, k, exists, tier)
			}
			if exists && !bytes.Equal(v, want) {
				t.Fatalf("step %d: key %s value mismatch", step, k)
			}
		}
	}
	if db.Stats().Compactions == 0 {
		t.Fatal("churn test never compacted")
	}
	// Final sweep.
	for i := 0; i < keys; i++ {
		k := key(i)
		v, tier, _, _ := db.Get(k)
		want, exists := model[string(k)]
		if exists != (tier != TierMiss) || (exists && !bytes.Equal(v, want)) {
			t.Fatalf("final sweep: key %d inconsistent", i)
		}
	}
}

func TestEveryKeyOnExactlyOneAuthoritativeTier(t *testing.T) {
	// Invariant: after heavy churn, a Get never returns a stale version,
	// i.e. the NVM copy (if any) is always the newest.
	db, _ := Open(testOptions())
	versions := map[string]int{}
	rng := rand.New(rand.NewSource(9))
	for step := 0; step < 8000; step++ {
		i := rng.Intn(400)
		versions[string(key(i))] = step
		db.Put(key(i), val(step, 400))
	}
	for i := 0; i < 400; i++ {
		k := key(i)
		want, ok := versions[string(k)]
		if !ok {
			continue
		}
		v, tier, _, _ := db.Get(k)
		if tier == TierMiss {
			t.Fatalf("key %d lost", i)
		}
		if !bytes.Equal(v, val(want, 400)) {
			t.Fatalf("key %d returned stale version", i)
		}
	}
}
