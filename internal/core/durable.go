package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/prismdb/prismdb/internal/storage"
)

// durable is the DB's persistence state when Options.DataDir is set: the
// locked data directory, the manifest journal, and the write-ahead log.
//
// The durability scheme leans on one invariant the write path maintains:
// an operation's slab write is issued (reaches the OS page cache) before
// its WAL record is appended, both under the partition lock — for deletes
// that includes the inline tombstone insert, and the one write that CAN
// lag (a slot-zeroing free deferred by a pinned epoch) blocks checkpoints
// via the DeferredDirty barrier in syncSlabs. Consequently a checkpoint —
// fsync every slab backing file — makes every WAL record appended so far
// redundant, and all rotated segments can be pruned. There
// is no memtable to flush and no slab-state serialization: the WAL only
// has to cover the window since the last checkpoint, and recovery replays
// it through the ordinary put/del paths (idempotently — the slab state is
// always at least as new as the log, and replay converges on the final
// record per key).
type durable struct {
	dir     *storage.Dir
	journal *storage.Journal
	wal     *storage.WAL

	openedAt     time.Time
	recovery     storage.RecoveryStats
	recoveryTime time.Duration
	orphans      int
}

// PersistenceStats reports the durability layer's counters; Durable is
// false (and everything zero) for an in-memory DB.
type PersistenceStats struct {
	Durable             bool
	WALBytes            int64
	WALRecords          int64
	WALFsyncs           int64
	WALSegments         int
	GroupCommitBatchP50 int64
	GroupCommitBatchP99 int64
	Checkpoints         int64

	// Fsync latency quantiles from the flusher's lock-free histogram
	// (ROADMAP item 2: data for -wal-sync group tuning).
	FsyncP50 time.Duration
	FsyncP99 time.Duration

	RecoveryDuration           time.Duration
	RecoveryRecords            int64
	RecoverySegments           int
	LastRecoveryTruncatedBytes int64
	OrphanSSTsRemoved          int
}

// PersistenceStats snapshots the persistence counters.
func (db *DB) PersistenceStats() PersistenceStats {
	if db.dur == nil {
		return PersistenceStats{}
	}
	ws := db.dur.wal.Stats()
	fsync := db.obs.fsyncLatency.Snapshot()
	batch := db.obs.walBatch.Snapshot()
	return PersistenceStats{
		Durable:                    true,
		WALBytes:                   ws.Bytes,
		WALRecords:                 ws.Records,
		WALFsyncs:                  ws.Fsyncs,
		WALSegments:                ws.Segments,
		GroupCommitBatchP50:        ws.BatchP50,
		GroupCommitBatchP99:        int64(batch.Quantile(0.99)),
		Checkpoints:                ws.Checkpoints,
		FsyncP50:                   fsync.Quantile(0.5),
		FsyncP99:                   fsync.Quantile(0.99),
		RecoveryDuration:           db.dur.recoveryTime,
		RecoveryRecords:            db.dur.recovery.Records,
		RecoverySegments:           db.dur.recovery.Segments,
		LastRecoveryTruncatedBytes: db.dur.recovery.TruncatedBytes,
		OrphanSSTsRemoved:          db.dur.orphans,
	}
}

// openDurable locks the data directory and rebuilds the durable metadata
// that partition construction needs: the manifest journal's live SST sets
// (with orphan SSTs — written but never committed — removed before the
// flash backing adopts them) and real-file backings attached to both
// devices so slab and SST recovery reads come off disk.
func (db *DB) openDurable() error {
	d := &durable{openedAt: time.Now()}
	dir, err := storage.OpenDir(db.opts.DataDir, db.opts.Faults)
	if err != nil {
		return err
	}
	d.dir = dir
	journal, err := storage.OpenJournal(dir)
	if err != nil {
		dir.Close()
		return err
	}
	d.journal = journal
	orphans, err := dir.RemoveExtraFiles(storage.DirFlash, journal.LiveAll())
	if err != nil {
		dir.Close()
		return err
	}
	d.orphans = len(orphans)
	wal, err := storage.OpenWAL(dir, storage.WALOptions{
		Mode:          db.opts.WALSync,
		FsyncEvery:    db.opts.WALFsyncEvery,
		FsyncInterval: db.opts.WALFsyncInterval,
		SegmentBytes:  db.opts.WALSegmentBytes,
		StallDeadline: db.opts.IOStallDeadline,
		OnIOError:     db.onWALIOError,
		FsyncLatency:  db.obs.fsyncLatency,
		BatchRecords:  db.obs.walBatch,
		Events:        db.obs.events,
	})
	if err != nil {
		dir.Close()
		return err
	}
	d.wal = wal
	if err := db.opts.NVM.AttachBacking(dir.Backing(storage.DirNVM)); err != nil {
		dir.Close()
		return err
	}
	if err := db.opts.Flash.AttachBacking(dir.Backing(storage.DirFlash)); err != nil {
		dir.Close()
		return err
	}
	db.dur = d
	return nil
}

// finishDurable completes recovery after the partitions have rebuilt their
// in-memory state from the recovered files: replay the WAL tail through
// the ordinary write paths, checkpoint so the replayed segments go away,
// and only then attach the WAL to the partitions — replay itself must not
// re-log. Counters touched by replay are zeroed; an Open returns a DB with
// fresh stats either way.
func (db *DB) finishDurable() error {
	d := db.dur
	_, err := d.wal.Replay(func(op byte, key, value []byte) error {
		p := db.partitionOf(key)
		switch op {
		case storage.OpPut:
			_, _, perr := p.putLocking(key, value, false, false)
			return perr
		case storage.OpDel:
			_, _, derr := p.delLocking(key)
			return derr
		}
		return fmt.Errorf("core: wal replay: unknown op %d", op)
	})
	d.recovery = d.wal.Stats().Recovery
	if err != nil {
		return err
	}
	if err := d.wal.Start(db.syncSlabs); err != nil {
		return err
	}
	for _, p := range db.parts {
		p.wal = d.wal
	}
	db.ResetStats()
	d.recoveryTime = time.Since(d.openedAt)
	db.obs.events.Emit("recovery",
		"segments", d.recovery.Segments,
		"records", d.recovery.Records,
		"truncated_bytes", d.recovery.TruncatedBytes,
		"orphan_ssts", d.orphans,
		"took_ms", d.recoveryTime)
	return nil
}

// onWALIOError is the WAL's sticky-error hook (storage.WALOptions.OnIOError):
// invoked exactly once, with the first error that poisoned the log, after
// every durability waiter has been woken with that error. The WAL refuses
// all further appends on its own; this hook widens the refusal to the whole
// DB — writes go read-only so clients see a typed, immediate ErrReadOnly
// instead of per-op storage errors — and counts declared I/O stalls.
func (db *DB) onWALIOError(err error) {
	if errors.Is(err, storage.ErrIOStalled) {
		db.obs.ioStalls.Inc()
	}
	db.health.degrade("wal", err)
}

// errCheckpointBusy reports a checkpoint that had to be skipped: some
// partition's slab files are not a complete image of its logical state,
// because freed slots are still awaiting their zeroing writes (an open
// reclamation epoch — a live iterator — or a background commit's deferred
// batch mid-zeroing). The WAL retains its segments and retries at the next
// rotation; Close skips pruning and lets the next open replay instead.
var errCheckpointBusy = errors.New("core: checkpoint skipped: slab frees deferred by an open epoch")

// errCheckpointDegraded reports a checkpoint refused because the DB has
// left Healthy. Once degraded, the WAL is the one durable artifact still
// trusted end to end — a failed compaction commit may have left records
// whose only crash-safe copy is their WAL entry — so checkpoints must stop
// declaring records redundant. Like errCheckpointBusy this is a benign
// skip, not a Close error: the segments are retained and the recovering
// reopen replays them.
var errCheckpointDegraded = errors.New("core: checkpoint refused: database is degraded, WAL records must be retained for recovery")

// syncSlabs is the WAL's checkpoint callback: fsync every partition's slab
// backing files, making all previously appended WAL records redundant.
//
// The redundancy argument needs every record's slab effects to be in the
// page cache before the fsync. Puts issue their writes synchronously under
// the partition lock before appending, but a delete's slot-zeroing write is
// DEFERRED while an epoch is pinned — so if any partition still owes
// zeroing writes, fsyncing would declare DEL records redundant whose
// effects never reached the files, and a crash would resurrect acknowledged
// deletes. Refuse the checkpoint instead (errCheckpointBusy); records
// appended after a partition's check land in the active segment, which no
// checkpoint prunes, so the check-then-sync is race-free.
func (db *DB) syncSlabs() error {
	if db.health != nil && !db.health.ok() {
		return errCheckpointDegraded
	}
	for _, p := range db.parts {
		p.mu.Lock()
		dirty := p.slabs.DeferredDirty()
		p.mu.Unlock()
		if dirty {
			return errCheckpointBusy
		}
		if err := p.slabs.Sync(); err != nil {
			// A real checkpoint failure (not the benign busy skip above): a
			// slab file's fsync failed, so the page cache's contents can no
			// longer be trusted to reach disk. The WAL retries checkpoints on
			// its own cadence, but further acks would be promises the storage
			// can't keep — degrade to read-only.
			db.health.degrade("checkpoint", err)
			return err
		}
	}
	return nil
}

// closeDurable flushes and fsyncs the WAL, checkpoints the slabs, and —
// only if both succeeded, making every WAL record redundant — prunes the
// segments so the next open replays an empty tail. Then it releases the
// directory lock. A busy checkpoint (an iterator still open at Close, its
// epoch deferring slot frees) is not an error: the WAL is already fsync'd,
// so the segments are simply retained and the next open replays them.
func (db *DB) closeDurable() error {
	d := db.dur
	err := d.wal.Close()
	serr := db.syncSlabs()
	switch {
	case errors.Is(serr, errCheckpointBusy), errors.Is(serr, errCheckpointDegraded):
		// Keep the segments; replay-on-open covers the un-issued frees
		// (busy) or the whole degraded tail (degraded).
	case serr != nil:
		if err == nil {
			err = serr
		}
	case err == nil:
		err = d.wal.Prune()
	}
	if derr := d.dir.Close(); err == nil {
		err = derr
	}
	return err
}

// crashDurable is the test hook simulating kill -9 from inside the
// process: stop the background workers (a real kill would stop them too,
// only less politely — a worker's commit is crash-atomic through the
// journal either way), drop the WAL's unflushed buffer, and release the
// directory without syncing anything. Everything already written sits in
// the OS page cache, exactly as after a real kill -9.
func (db *DB) crashDurable() {
	if db.closed.Swap(true) {
		return
	}
	db.stopScrubber()
	// Stop the write owners first (pending intents fail with ErrClosed —
	// they were never acknowledged); producers blocked in WaitDurable are
	// woken by the WAL Kill below. Owner-before-worker order matters, as
	// in Close: an in-flight batch may be stalled on the worker's commit.
	for _, p := range db.parts {
		p.stopWriteOwner()
	}
	for _, p := range db.parts {
		if p.bg.done != nil {
			p.stopWorker()
		}
	}
	for _, p := range db.parts {
		if p.bg.done != nil {
			<-p.bg.done
		}
	}
	db.dur.wal.Kill()
	db.dur.dir.Close()
}
