package core

import (
	"bytes"
	"fmt"
	"time"

	"github.com/prismdb/prismdb/internal/btree"
	"github.com/prismdb/prismdb/internal/msc"
	"github.com/prismdb/prismdb/internal/simdev"
	"github.com/prismdb/prismdb/internal/slab"
	"github.com/prismdb/prismdb/internal/sst"
	"github.com/prismdb/prismdb/internal/tracker"
)

// Async compaction (Options.CompactionMode == CompactionAsync).
//
// The sync path runs the whole demotion merge inline under the partition
// lock, so one unlucky foreground write pays the entire multi-SST
// read/merge/write in host wall-clock time before its reply — and every
// other client on the partition queues behind it. Here the trigger only
// flags a per-partition worker goroutine; the worker splits each merge
// round into three phases:
//
//   - prepare (locked, short): select the range, classify its NVM objects,
//     and pin a slab reclamation epoch so foreground overwrites of in-range
//     keys go copy-on-write (PR 2's scan substrate, reused as the merge's
//     conflict detector: an unchanged B-tree loc at commit proves an
//     unchanged record).
//   - execute (unlocked): read the demoting slab records and the
//     overlapping SSTs, merge, and write the output SSTs. The device,
//     page-cache, slab-file, and SST layers are all safe for concurrent
//     use — the same concurrency iterators already exercise — so
//     foreground gets/puts/scans proceed in parallel, and the worker
//     yields its core at a fine cadence (bgYield) so they actually do on
//     CPU-constrained hosts.
//   - commit (locked, chunked): install the manifest, then reconcile every
//     planned mutation against the live index in small chunks. A key
//     overwritten or deleted while the merge ran keeps its newer
//     foreground version (the plan's drop/demote bookkeeping for it is
//     skipped and counted in CommitConflicts); everything else flips
//     exactly as the inline path would, and each chunk's reclaim is banked
//     as a compJob maturing at the round's virtual completion.
//
// The virtual-time model is identical to sync compaction: jobs run on a
// background clock serialized by compEndAt, their I/O uses the background
// device lanes, and reclaimed space matures through the same compQueue
// that admitWrite stalls on. The only new coupling is host-time
// backpressure: a writer whose space credit runs dry while the reclaim is
// still inside an uncommitted merge blocks on commitCond until the next
// commit (admitWrite), so foreground writes can never outrun the worker
// unboundedly.

// startWorker launches the partition's background compaction worker.
func (p *partition) startWorker() {
	p.bg.done = make(chan struct{})
	go p.compactionWorker()
}

// stopWorker asks the worker to exit after its current job and wakes every
// waiter; the caller then waits on bg.done.
func (p *partition) stopWorker() {
	p.mu.Lock()
	p.bg.stopping = true
	p.bg.jobCond.Broadcast()
	p.bg.commitCond.Broadcast()
	p.mu.Unlock()
}

// drainLocked waits until the worker has no pending or running job. Caller
// holds p.mu. No-op in sync mode (the flags are never set).
func (p *partition) drainLocked() {
	for (p.bg.running || p.bg.demotePending || p.bg.promotePending) && !p.bg.stopping {
		p.bg.commitCond.Wait()
	}
}

// compactionWorker is the partition's background compaction loop: wait for
// a trigger, run the job(s), broadcast, repeat. It owns the partition's
// single compaction "thread" — demotion and promotion jobs serialize here
// exactly as they serialize on compEndAt in virtual time.
func (p *partition) compactionWorker() {
	defer close(p.bg.done)
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		for !p.bg.demotePending && !p.bg.promotePending && !p.bg.stopping {
			p.bg.jobCond.Wait()
		}
		if p.bg.stopping {
			p.bg.demotePending, p.bg.promotePending = false, false
			p.bg.commitCond.Broadcast()
			return
		}
		demote, promote := p.bg.demotePending, p.bg.promotePending
		p.bg.demotePending, p.bg.promotePending = false, false
		p.bg.running = true
		// A degraded DB refuses writes, so compaction has nothing to make
		// room for — and its commits would churn a substrate (manifest
		// journal, slab files) already known broken. Stand down: consume
		// the triggers without running the jobs.
		healthy := p.health == nil || p.health.ok()
		if demote && healthy {
			p.asyncDemotionJob()
		}
		if promote && healthy && !p.bg.stopping {
			p.asyncPromotionJob()
		}
		p.bg.running = false
		p.bg.commitCond.Broadcast()
	}
}

// asyncDemotionJob is runDemotionCompaction's background twin: rounds of
// select → three-phase merge until usage falls below the low watermark.
// Entered and left with p.mu held; each round drops the lock during its
// execute phase.
func (p *partition) asyncDemotionJob() {
	compClk := simdev.NewBGClock()
	compClk.AdvanceTo(p.bg.demoteTriggerNs) // the arming op's clock, as sync would
	compClk.AdvanceTo(p.compEndAt)          // serial with the previous job
	start := compClk.Now()
	low := int64(float64(p.nvmBudget) * p.opts.LowWatermark)

	noProgress := 0
	for round := 0; round < maxCompactionRounds && p.usage() > low && !p.bg.stopping; round++ {
		r := p.selectRange(compClk)
		force := noProgress >= 2
		// The round banks its reclaim into compQueue itself, commit chunk
		// by commit chunk, waking admission-stalled writers as it goes;
		// freed here only drives the progress check.
		freed := p.asyncCompactRange(compClk, r, true, p.opts.Promotions && !force, force)
		p.stats.Compactions++
		if freed > 0 {
			noProgress = 0
		} else {
			noProgress++
			if force {
				break // even forced demotion freed nothing; give up
			}
		}
		if compClk.Now() > p.compEndAt {
			p.compEndAt = compClk.Now()
		}
		p.bg.commitCond.Broadcast()
		// Round boundary: without this the worker would hold the lock
		// straight through from one round's commit into the next round's
		// selection and classify. Park briefly so queued foreground ops
		// (and the netpoller) run first; see bgYield.
		p.mu.Unlock()
		bgYield()
		p.mu.Lock()
	}
	p.stats.CompactionTime += time.Duration(compClk.Now() - start)
	if compClk.Now() > p.compEndAt {
		p.compEndAt = compClk.Now()
	}
}

// asyncPromotionJob is runPromotionCompaction's background twin. Entered
// and left with p.mu held.
func (p *partition) asyncPromotionJob() {
	compClk := simdev.NewBGClock()
	compClk.AdvanceTo(p.bg.promoteTriggerNs) // the arming op's clock, as sync would
	start := compClk.Now()
	compClk.AdvanceTo(p.compEndAt)

	snap := p.man.Acquire()
	if snap.Len() == 0 {
		snap.Release()
		return
	}
	ranges := p.buildRanges(snap.Tables())
	cand := pickPromotionRange(p, compClk, ranges)
	if cand < 0 {
		snap.Release()
		return
	}
	r := p.retainRange(ranges[cand])
	snap.Release()
	p.asyncCompactRange(compClk, r, false, true, false)
	p.stats.Compactions++
	p.stats.ReadTriggeredComps++
	p.stats.CompactionTime += time.Duration(compClk.Now() - start)
	if compClk.Now() > p.compEndAt {
		p.compEndAt = compClk.Now()
	}
}

// pickPromotionRange scores candidate ranges by hot-flash estimate and
// returns the best index, or -1, charging scoring CPU to compClk. Caller
// holds p.mu. Shared by the sync and async promotion paths.
func pickPromotionRange(p *partition, compClk *simdev.Clock, ranges []candRange) int {
	cand := msc.PickCandidates(len(ranges), p.opts.PowerK, p.rng)
	bestIdx, bestHot := -1, 0.0
	for _, ci := range cand {
		lo, hi := p.keyIdxBounds(ranges[ci])
		s := p.bkt.Estimate(lo, hi)
		nBuckets := int((hi-lo)/uint64(p.opts.BucketKeys)) + 1
		p.chargeCPU(compClk, time.Duration(nBuckets)*p.opts.CPU.ApproxPerBucket)
		if s.HotFlash > bestHot {
			bestIdx, bestHot = ci, s.HotFlash
		}
	}
	return bestIdx
}

// commitActionKind classifies a planned NVM-side mutation of a background
// merge.
type commitActionKind uint8

const (
	// actDemote: the record was emitted to the output SSTs; at commit its
	// NVM slot frees and the popularity metadata flips to flash.
	actDemote commitActionKind = iota
	// actDropTombstone: an NVM-only tombstone with no flash version dies.
	actDropTombstone
	// actDropTombstoneShadow: a tombstone annihilates its flash version
	// (which the merge did not emit).
	actDropTombstoneShadow
)

// commitAction is one planned mutation, validated against the live index
// at commit time: the key must still map to loc. Under the pinned epoch
// every concurrent overwrite is copy-on-write (new loc) and no freed slot
// recycles, so loc equality is a strict superset of comparing slab-record
// versions — same loc ⟺ bit-identical record; version rides along as the
// captured evidence.
type commitAction struct {
	kind    commitActionKind
	key     []byte // aliases the compaction arena
	loc     slab.Loc
	version uint64
}

// bgYield cedes the processor from the worker's execute phase. A plain
// runtime.Gosched is not enough on a CPU-starved host: it leaves the
// worker runnable, so the scheduler never finds an empty run queue and
// never drains the netpoller — socket-ready foreground connections would
// sit out entire merge rounds (until sysmon's forced poll) behind a
// "background" job. Parking for even a microsecond empties the run queue,
// lets the netpoller deliver waiting foreground work, and stretches the
// merge's host duration slightly — the classic compaction throttling
// trade (rate-limit background work to protect foreground tails), and one
// only the async mode can make: the inline path holds the partition lock,
// where sleeping would be strictly worse.
func bgYield() {
	time.Sleep(time.Microsecond)
}

// addYield is sstSplitter.add plus a worker yield whenever the add
// finished (cut) an SST — table finalization (bloom, index, flush) is the
// merge's longest unyielding CPU stretch, and a foreground goroutine
// parked on a shared mutex (or a ready socket) would otherwise wait it
// out.
func addYield(out *sstSplitter, rec sst.Record) {
	before := len(out.tables)
	out.add(rec)
	if len(out.tables) != before {
		bgYield()
	}
}

// asyncCompactRange runs one background merge round over r. It is entered
// and left with p.mu held and returns the NVM bytes the committed round
// freed (net of promotions), tallied action by action so concurrent
// foreground writes don't pollute the figure. The partition lock is held
// only for short bookkeeping sections: classify, the batched promotion
// decisions, and chunked commit passes — the record reads, flash reads,
// merge, SST writes, and freed-slot zeroing all run off-lock against
// internally-synchronized layers.
func (p *partition) asyncCompactRange(compClk *simdev.Clock, r candRange, allowDemote, allowPromote, forceAll bool) int64 {
	host0 := time.Now()
	defer func() {
		// Host wall time of the whole round (prepare+execute+commit),
		// including the yields — the foreground-visible cost of background
		// work, as opposed to CompactionTime's virtual-clock figure.
		d := time.Since(host0)
		p.obs.compRound.Record(d)
		p.obs.events.Emit("compaction_round",
			"partition", p.id, "demote", allowDemote, "promote", allowPromote,
			"took_ms", d)
	}()
	cpu := p.opts.CPU
	decider := p.pinDecider()
	promoteWM := p.opts.HighWatermark
	if allowDemote {
		promoteWM = p.opts.LowWatermark
	}

	// ---- Phase 1 (prepare, lock held, short): classify the range's NVM
	// objects. Keys alias the B-tree's immutable stored slices, so the
	// list stays valid off-lock; the slot CONTENTS are frozen too, because
	// the epoch pin taken below forces every concurrent overwrite
	// copy-on-write and defers every free — which is also what lets the
	// commit detect conflicts by loc equality and keeps captured locs
	// unambiguous (no recycling while pinned). The in-flight range tells
	// deletes to write conservative tombstones (see del).
	type nvmObj struct {
		key []byte
		loc slab.Loc
	}
	var demoteObjs []nvmObj
	// pinnedKeys is in ascending key order (index.Range order), aliasing
	// the B-tree's immutable key slices: the merge consumes it with a
	// moving cursor instead of a map, so classify allocates nothing
	// per-key while the partition lock is held.
	pinnedKeys := p.pinnedBuf[:0]
	p.index.Range(r.lo, r.hi, func(it btree.Item) bool {
		if !allowDemote {
			pinnedKeys = append(pinnedKeys, it.Key)
			return true
		}
		if !forceAll {
			clock, tracked := p.trk.Clock(it.Key)
			if decider.ShouldPin(clock, tracked, p.rng) {
				pinnedKeys = append(pinnedKeys, it.Key)
				return true
			}
		}
		demoteObjs = append(demoteObjs, nvmObj{it.Key, slab.Loc(it.Val)})
		return true
	})
	p.pinnedBuf = pinnedKeys
	if allowDemote {
		//prismvet:ignore refpair pin is conditional on allowDemote; the demote loop below unpins via UnpinEpochDeferred on every allowDemote path, and the early !allowDemote return never pinned
		p.slabs.PinEpoch()
		p.obs.epochPins.Inc()
		p.bg.rangeActive = true
		p.bg.rangeLo, p.bg.rangeHi = r.lo, r.hi
	}
	// The arena is compaction-private state (one worker; sync and async
	// never mix), so carrying it through the unlocked phase is safe.
	arena := p.compArena[:0]
	var local Stats
	p.mu.Unlock()

	// ---- Phase 1b (execute, unlocked): read the demoting records through
	// the slab manager's concurrent-read path (the epoch pin guarantees
	// the slots stay readable and unchanged). Same virtual-time model as
	// the inline path: independent random NVM pages, issued concurrently,
	// the round advancing to the slowest read's completion.
	type demoteRef struct {
		keyOff, keyLen, valLen int
		version                uint64
		tomb                   bool
		loc                    slab.Loc
	}
	refs := make([]demoteRef, 0, len(demoteObjs))
	var slotBuf []byte
	readStart := compClk.Now()
	maxEnd := readStart
	for i, o := range demoteObjs {
		tmp := simdev.NewBGClock()
		tmp.AdvanceTo(readStart)
		var rec slab.Record
		var err error
		rec, slotBuf, err = p.slabs.ReadSlotInto(tmp, o.loc, slotBuf)
		if tmp.Now() > maxEnd {
			maxEnd = tmp.Now()
		}
		if err != nil {
			continue // unreadable slot; skip (the commit re-validates anyway)
		}
		refs = append(refs, demoteRef{len(arena), len(rec.Key), len(rec.Value), rec.Version, rec.Tombstone, o.loc})
		arena = append(arena, rec.Key...)
		arena = append(arena, rec.Value...)
		if i%16 == 15 {
			bgYield() // cede the core to foreground work
		}
	}
	demoteRecs := make([]sst.Record, len(refs))
	demoteLocs := make([]slab.Loc, len(refs))
	for i, rf := range refs {
		demoteRecs[i] = sst.Record{
			Key:       arena[rf.keyOff : rf.keyOff+rf.keyLen : rf.keyOff+rf.keyLen],
			Value:     arena[rf.keyOff+rf.keyLen : rf.keyOff+rf.keyLen+rf.valLen : rf.keyOff+rf.keyLen+rf.valLen],
			Version:   rf.version,
			Tombstone: rf.tomb,
		}
		demoteLocs[i] = rf.loc
	}
	compClk.AdvanceTo(maxEnd)

	// ---- Phase 2 (execute, unlocked): read the overlapping SSTs.
	var flashRecs []sst.Record
	for _, t := range r.tables {
		local.FlashBytesRead += t.Size()
		t.ReadAll(compClk, func(rec sst.Record) error {
			// Views pin their (per-call, GC-owned) block buffers for the
			// job's lifetime — no per-record copies.
			flashRecs = append(flashRecs, rec)
			if len(flashRecs)%32 == 0 {
				// A real compaction thread blocks on device I/O, ceding
				// its core; the simulated read is one long memcpy+decode
				// that never would. Cede so foreground work isn't
				// stranded behind a whole table decode on CPU-constrained
				// hosts (same below; see bgYield).
				bgYield()
			}
			return nil
		})
		bgYield()
	}

	// Promotion decisions need the tracker, the partition RNG, and current
	// usage: one short lock for the whole batch. The projection starts
	// from usage NET of the slots this round is about to free — a
	// demotion round's mid-merge usage is still above the trigger, and
	// projecting from it would veto promotions sync's incremental
	// (free-as-you-go) check admits. The commit re-checks room against
	// live usage before every insert, so this pre-filter only has to be
	// approximately right.
	var promote []bool
	if allowPromote && len(flashRecs) > 0 {
		promote = make([]bool, len(flashRecs))
		var plannedFree int64
		for _, loc := range demoteLocs {
			plannedFree += int64(p.slabs.SlotSize(loc))
		}
		p.mu.Lock()
		dec := p.pinDecider()
		proj := p.usage() - plannedFree
		wmBytes := int64(float64(p.nvmBudget) * promoteWM)
		for i, rec := range flashRecs {
			ci := p.slabs.ClassOf(len(rec.Key), len(rec.Value))
			if ci < 0 {
				continue
			}
			slot := int64(p.slabs.ClassSize(ci))
			if proj+slot >= wmBytes {
				continue
			}
			clock, tracked := p.trk.Clock(rec.Key)
			if dec.ShouldPin(clock, tracked, p.rng) {
				promote[i] = true
				proj += slot
			}
		}
		p.mu.Unlock()
	}

	// ---- Phase 3 (execute, unlocked): merge and write the output SSTs.
	out := newSSTSplitter(p, compClk, &local)
	var actions []commitAction
	var flashDropIdx []uint64 // bucket indexes of stale flash drops
	var promos []sst.Record
	ni, fi, pi := 0, 0, 0
	mergedKeys := 0
	emitFlash := func(i int) {
		rec := flashRecs[i]
		if promote != nil && promote[i] {
			// Unlike the inline path's move, a background promotion ALSO
			// emits the record to the output SSTs: if the commit later
			// skips the NVM insert (conflict, device full), the record is
			// still durable on flash, never lost. The duplicate flash copy
			// is shadowed by the NVM version and dies as stale in a later
			// merge.
			promos = append(promos, rec)
		}
		addYield(out, rec)
	}
	for ni < len(demoteRecs) || fi < len(flashRecs) {
		if mergedKeys%16 == 15 {
			bgYield() // merge+SST-build is pure CPU; stay polite
		}
		mergedKeys++
		var cmp int
		switch {
		case ni >= len(demoteRecs):
			cmp = 1
		case fi >= len(flashRecs):
			cmp = -1
		default:
			cmp = bytes.Compare(demoteRecs[ni].Key, flashRecs[fi].Key)
		}
		switch {
		case cmp < 0: // NVM-only
			rec, loc := demoteRecs[ni], demoteLocs[ni]
			ni++
			if rec.Tombstone {
				// No flash version: the tombstone dies at commit.
				actions = append(actions, commitAction{actDropTombstone, rec.Key, loc, rec.Version})
				continue
			}
			addYield(out, rec)
			actions = append(actions, commitAction{actDemote, rec.Key, loc, rec.Version})
		case cmp > 0: // flash-only
			i := fi
			fi++
			for pi < len(pinnedKeys) && bytes.Compare(pinnedKeys[pi], flashRecs[i].Key) < 0 {
				pi++
			}
			if pi < len(pinnedKeys) && bytes.Equal(pinnedKeys[pi], flashRecs[i].Key) {
				// A newer pinned NVM version shadows this one.
				flashDropIdx = append(flashDropIdx, p.opts.KeyIndex(flashRecs[i].Key))
				local.DroppedStale++
				continue
			}
			emitFlash(i)
		default: // same key on both tiers: NVM is newer (§6)
			rec, loc := demoteRecs[ni], demoteLocs[ni]
			ni++
			fi++
			local.DroppedStale++
			if rec.Tombstone {
				actions = append(actions, commitAction{actDropTombstoneShadow, rec.Key, loc, rec.Version})
				continue
			}
			addYield(out, rec)
			actions = append(actions, commitAction{actDemote, rec.Key, loc, rec.Version})
		}
	}
	p.chargeCPU(compClk, time.Duration(mergedKeys)*cpu.MergePerKey)
	newTables := out.finish()
	bgYield()

	// The manifest installs BEFORE the partition lock is re-taken: Apply
	// publishes lock-free to readers (atomic snapshot swap), and with the
	// output SSTs already containing every record the commit will drop
	// from NVM, any interleaved read is served correctly from whichever
	// side it finds first — NVM entries are still intact and shadow their
	// fresh flash copies. Keeping the (table-count-proportional) snapshot
	// rebuild and manifest persist out of the critical section is worth
	// hundreds of microseconds of foreground tail per round.
	if len(newTables) > 0 || len(r.tables) > 0 {
		if err := p.man.Apply(newTables, r.tables); err != nil {
			if p.health == nil {
				// Manifest persistence cannot fail in the simulation unless
				// the flash device is full; surface loudly in development.
				panic(fmt.Sprintf("core: manifest apply: %v", err))
			}
			// Durable mode: the manifest journal's LogEdit (or an output
			// SST's fsync) failed, and Apply rolled the new snapshot back —
			// nothing was installed, so nothing may be reconciled. The old
			// tables keep serving, the written output SSTs become orphans
			// the next recovery sweeps, and the DB degrades: a compaction
			// commit that cannot be made durable means no further write
			// (foreground or background) can be either. Abort the round,
			// releasing the epoch pin so deferred frees don't wedge
			// checkpoints forever.
			p.health.degrade("compaction commit", err)
			p.obs.events.Emit("compaction_abort", "partition", p.id, "cause", err.Error())
			p.mu.Lock()
			p.compArena = arena
			if allowDemote {
				p.bg.rangeActive = false
				p.bg.rangeLo, p.bg.rangeHi = nil, nil
				p.finishEpochLocked()
			}
			return 0
		}
	}

	// ---- Commit (lock re-held on return): install the manifest, then
	// reconcile the planned mutations in short chunks so foreground ops
	// interleave instead of waiting out one long critical section. The
	// manifest goes FIRST: once a chunked pass starts dropping NVM
	// entries, the demoted records must already be readable from the new
	// tables (between chunks, a Get of a not-yet-dropped key is served
	// from NVM, which shadows its new flash copy — either way the newest
	// version wins). Per-key re-validation makes each chunk independently
	// safe against whatever the foreground did in the gaps.
	var freed int64
	p.mu.Lock()
	p.compArena = arena
	// Pair the just-installed manifest with the current tree for lock-free
	// readers before any NVM entries drop: a new-view reader finds demoted
	// keys on whichever side it reaches first, and both hold the newest
	// version (NVM entries still shadow their fresh flash copies).
	p.publishView()
	for _, t := range r.tables {
		freed += t.MetaBytes()
	}
	for _, t := range newTables {
		freed -= t.MetaBytes()
	}
	const commitChunk = 8
	chunkFreed, banked := int64(0), int64(0)
	// debt is NVM consumed by this round before any slot frees: flash
	// metadata growth (freed starts negative) and promotion inserts.
	// Chunks repay it before banking credit, so the total banked can
	// never exceed the round's true net reclaim.
	debt := int64(0)
	if freed < 0 {
		debt = -freed
	}
	bankChunk := func() {
		if chunkFreed <= debt {
			debt -= chunkFreed
			freed += chunkFreed
			chunkFreed = 0
			return
		}
		net := chunkFreed - debt
		debt = 0
		p.compQueue = append(p.compQueue, compJob{endAt: compClk.Now(), freed: net})
		freed += chunkFreed
		banked += net
		chunkFreed = 0
		p.bg.commitCond.Broadcast()
	}
	for pn, rec := range promos {
		if pn > 0 && pn%commitChunk == 0 {
			// Same breather discipline as the action loop below: a hot
			// promotion batch must not hold the partition lock for
			// hundreds of inserts. Each chunk's tree growth is published
			// before the lock drops.
			p.publishView()
			p.mu.Unlock()
			bgYield()
			p.mu.Lock()
		}
		if _, ok := p.index.Get(rec.Key); ok {
			// A foreground write landed a newer NVM version meanwhile; it
			// already shadows the flash copy the merge re-emitted.
			local.CommitConflicts++
			continue
		}
		if !p.nvmHasRoom(rec, promoteWM) {
			// Usage moved under the merge (foreground burst): the
			// authoritative room check happens here, against live usage,
			// exactly like sync's emitFlash gate. Skipping is always safe
			// — the record is in the output SSTs.
			continue
		}
		if !p.promoteToNVM(compClk, rec) {
			continue // no room; the record is safe in the output SSTs
		}
		ci := p.slabs.ClassOf(len(rec.Key), len(rec.Value))
		slot := int64(p.slabs.ClassSize(ci))
		p.spaceCredit -= slot
		freed -= slot
		debt += slot
		p.bkt.OnPromote(p.opts.KeyIndex(rec.Key))
		p.trk.SetLocation(rec.Key, tracker.NVM)
		local.Promoted++
	}
	// Chunked reconciliation. Each chunk's freed slot bytes are banked as
	// a compJob (the round's virtual end is already final on compClk) and
	// commitCond broadcast immediately: an admission-stalled writer gets
	// its credit at chunk cadence instead of waiting out the whole round.
	for i, a := range actions {
		if i > 0 && i%commitChunk == 0 {
			bankChunk()
			// Breather: a bare unlock/lock would let the worker barge
			// straight back in before any queued foreground op gets
			// scheduled; parking for a microsecond hands the core (and
			// the netpoller) to the foreground first. The chunk's index
			// drops are published so new readers stop resolving freed
			// slots (their deferred contents stay readable regardless).
			p.publishView()
			p.mu.Unlock()
			bgYield()
			p.mu.Lock()
		}
		v, ok := p.index.Get(a.key)
		if !ok || slab.Loc(v) != a.loc {
			// The key was overwritten (copy-on-write under the pinned
			// epoch ⇒ new loc) or deleted while the merge ran. The newer
			// foreground state wins; skip this key's bookkeeping. If the
			// merge emitted a now-stale version to the output SSTs, the
			// NVM version shadows it until a later merge drops it.
			local.CommitConflicts++
			continue
		}
		idx := p.opts.KeyIndex(a.key)
		chunkFreed += int64(p.slabs.SlotSize(a.loc))
		p.slabs.FreeSlot(compClk, a.loc)
		p.index.Delete(a.key)
		switch a.kind {
		case actDemote:
			p.bkt.OnDemote(idx)
			p.trk.SetLocation(a.key, tracker.Flash)
			local.Demoted++
		case actDropTombstone, actDropTombstoneShadow:
			p.bkt.OnNVMDelete(idx)
			p.trk.Forget(a.key)
			if a.kind == actDropTombstoneShadow {
				p.bkt.OnFlashDelete(idx)
			}
			local.DroppedTombstones++
		}
	}
	bankChunk()
	// Whatever the chunks didn't bank (the flash-metadata footprint delta,
	// net of promotion debits) matures like any other reclaim.
	if residual := freed - banked; residual > 0 {
		p.compQueue = append(p.compQueue, compJob{endAt: compClk.Now(), freed: residual})
		p.bg.commitCond.Broadcast()
	}
	for _, idx := range flashDropIdx {
		p.bkt.OnFlashDelete(idx)
	}
	p.stats.add(local)
	// Final publication for the round: the last chunk's mutations.
	p.publishView()
	if !allowDemote {
		return freed
	}
	// Close the merge window, then finish the epoch's deferred frees with
	// the zeroing writes (one per slot) off-lock.
	p.bg.rangeActive = false
	p.bg.rangeLo, p.bg.rangeHi = nil, nil
	p.finishEpochLocked()
	return freed
}

// finishEpochLocked closes a merge round's reclamation epoch: unpin, issue
// the deferred zeroing writes (one per slot) off-lock, then recycle the
// zeroed slots. Entered and left with p.mu held; the lock is dropped around
// the zeroing writes exactly as the round's execute phase drops it. A
// zeroing write that fails degrades the DB and leaks the remaining slots
// instead of recycling them: an un-zeroed slot still holds its old record
// bytes, and handing it back out would let crash recovery resurrect data the
// engine already freed. (Without a health tracker — partitions built
// directly in tests — the failure stays a loud panic, as before.)
func (p *partition) finishEpochLocked() {
	zeroLocs := p.slabs.UnpinEpochDeferred()
	if len(zeroLocs) == 0 {
		return
	}
	p.mu.Unlock()
	zeroed := 0
	for i, loc := range zeroLocs {
		if err := p.slabs.ZeroSlot(loc); err != nil {
			if p.health == nil {
				panic(fmt.Sprintf("core: deferred free: %v", err))
			}
			p.health.degrade("slab free", err)
			break
		}
		zeroed++
		if i%64 == 63 {
			bgYield()
		}
	}
	//prismvet:ignore lockheld re-acquire of the caller's hold, dropped above to issue the zeroing writes off-lock; entered-and-left-held is this function's contract
	p.mu.Lock()
	p.slabs.RecycleSlots(zeroLocs[:zeroed])
}
