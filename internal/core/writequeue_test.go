package core

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/prismdb/prismdb/internal/simdev"
)

// TestOwnerBatchCoalescing proves the tentpole's economics deterministically:
// writes that arrive while the owner is busy coalesce into ONE critical
// section with ONE view republication. The test holds the partition lock to
// stall the owner mid-batch, queues 15 more puts behind it, and releases —
// exactly two batches (the stalled single and the coalesced 15) may result.
func TestOwnerBatchCoalescing(t *testing.T) {
	o := testOptions()
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	p := db.parts[0]

	p.mu.Lock()
	base := p.stats.WriteBatches
	baseRepub := p.stats.ViewRepublishes

	var wg sync.WaitGroup
	putAsync := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := db.Put(key(i), val(i, 256)); err != nil {
				t.Errorf("put %d: %v", i, err)
			}
		}()
	}

	// One put: the owner wakes, drains it, and stalls on p.mu (held here).
	putAsync(0)
	deadline := time.Now().Add(5 * time.Second)
	for !(p.wq.tail.Load() == p.wq.head.Load() && p.wq.tail.Load() > 0) {
		if time.Now().After(deadline) {
			t.Fatal("owner never drained the first intent")
		}
		runtime.Gosched()
	}
	// 15 more: they can only accumulate in the ring while the owner is
	// stalled, so they MUST form one batch.
	for i := 1; i < 16; i++ {
		putAsync(i)
	}
	for p.wq.depth() < 15 {
		if time.Now().After(deadline) {
			t.Fatalf("ring depth = %d, want 15", p.wq.depth())
		}
		runtime.Gosched()
	}
	p.mu.Unlock()
	wg.Wait()

	st := db.Stats()
	if got := st.WriteBatches - base; got != 2 {
		t.Fatalf("WriteBatches delta = %d, want 2 (stalled single + coalesced 15)", got)
	}
	if got := st.ViewRepublishes - baseRepub; got != 2 {
		t.Fatalf("ViewRepublishes delta = %d, want 2 — one per batch, not one per op", got)
	}
	// The coalesced batch of 15 lands in the size-8..15 histogram bucket,
	// so the p99 representative must be at least 8.
	if st.WriteBatchP99 < 8 {
		t.Fatalf("WriteBatchP99 = %d, want >= 8 after a 15-op batch", st.WriteBatchP99)
	}
	// All 16 writes are readable (read-your-writes survived coalescing).
	for i := 0; i < 16; i++ {
		_, tier, _, err := db.Get(key(i))
		if err != nil || tier == TierMiss {
			t.Fatalf("get %d after coalesced batch: tier=%v err=%v", i, tier, err)
		}
	}
}

// TestReadYourWrites pins the ack contract the owner path must preserve: the
// moment Put returns, a lock-free GET on the same goroutine observes the
// value; the moment Delete returns, it observes the miss.
func TestReadYourWrites(t *testing.T) {
	db, err := Open(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 200; i++ {
		k, v := key(i), val(i, 300)
		if _, err := db.Put(k, v); err != nil {
			t.Fatal(err)
		}
		got, tier, _, err := db.Get(k)
		if err != nil || tier == TierMiss {
			t.Fatalf("get %d right after put: tier=%v err=%v", i, tier, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("get %d = %q, want %q", i, got[:16], v[:16])
		}
		if i%3 == 0 {
			if _, err := db.Delete(k); err != nil {
				t.Fatal(err)
			}
			if _, tier, _, _ := db.Get(k); tier != TierMiss {
				t.Fatalf("get %d right after delete: tier=%v, want miss", i, tier)
			}
		}
	}
}

// TestWriteModeVirtualTimeFidelity runs one serial mixed workload under both
// write modes: the owner path must bill each op its own virtual-time
// interval (batching is a wall-clock optimization, not a virtual-time one),
// so total elapsed virtual time stays within 15% of the legacy locked path.
func TestWriteModeVirtualTimeFidelity(t *testing.T) {
	run := func(mode WriteMode) time.Duration {
		o := testOptions()
		o.WriteMode = mode
		db, err := Open(o)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		for i := 0; i < 2000; i++ {
			if _, err := db.Put(key(i%600), val(i, 700)); err != nil {
				t.Fatal(err)
			}
			if i%4 == 0 {
				if _, _, _, err := db.Get(key(i % 600)); err != nil {
					t.Fatal(err)
				}
			}
			if i%17 == 0 {
				if _, err := db.Delete(key(i % 600)); err != nil {
					t.Fatal(err)
				}
			}
		}
		return db.Elapsed()
	}
	sync := run(WriteSync)
	async := run(WriteAsync)
	ratio := float64(async) / float64(sync)
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("virtual time diverged: sync=%v async=%v (ratio %.3f, want within 15%%)",
			sync, async, ratio)
	}
}

// TestPutBatch covers the batch entry point directly: correctness across
// partitions, latency summing, the empty batch, the sync-mode fallback, and
// post-Close failure.
func TestPutBatch(t *testing.T) {
	for _, mode := range []WriteMode{WriteAsync, WriteSync} {
		t.Run(mode.String(), func(t *testing.T) {
			o := testOptions()
			o.Partitions = 2
			o.WriteMode = mode
			db, err := Open(o)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			if lat, err := db.PutBatch(nil); err != nil || lat != 0 {
				t.Fatalf("empty batch = (%v, %v), want (0, nil)", lat, err)
			}
			const n = 64
			pairs := make([]KV, n)
			for i := range pairs {
				pairs[i] = KV{Key: key(i), Value: val(i, 400)}
			}
			lat, err := db.PutBatch(pairs)
			if err != nil {
				t.Fatal(err)
			}
			if lat <= 0 {
				t.Fatal("batch latency must be positive (summed per-op virtual time)")
			}
			for i := 0; i < n; i++ {
				v, tier, _, err := db.Get(key(i))
				if err != nil || tier == TierMiss {
					t.Fatalf("get %d: tier=%v err=%v", i, tier, err)
				}
				if !bytes.Equal(v, val(i, 400)) {
					t.Fatalf("get %d mismatch", i)
				}
			}
			if st := db.Stats(); st.Puts != n {
				t.Fatalf("Puts = %d, want %d", st.Puts, n)
			}
			db.Close()
			if _, err := db.PutBatch(pairs[:2]); !errors.Is(err, ErrClosed) {
				t.Fatalf("PutBatch after Close = %v, want ErrClosed", err)
			}
		})
	}
}

// TestPutBatchCrashDurability extends the acknowledged-write contract to
// batches: once PutBatch returns under SyncEvery, kill -9 must lose nothing
// — the batch's records share one WAL group append, and each intent's
// durability barrier covers its own LSN within the group.
func TestPutBatchCrashDurability(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	const rounds, per = 20, 8
	for r := 0; r < rounds; r++ {
		pairs := make([]KV, per)
		for i := range pairs {
			pairs[i] = KV{Key: key(r*per + i), Value: val(r*per+i, 1024)}
		}
		if _, err := db.PutBatch(pairs); err != nil {
			t.Fatal(err)
		}
	}
	// A batched delete mix: tombstone-before-DEL ordering must hold within
	// the group too.
	if _, err := db.Delete(key(7)); err != nil {
		t.Fatal(err)
	}
	db.crashDurable()

	db, err = Open(durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if ps := db.PersistenceStats(); ps.RecoveryRecords == 0 {
		t.Fatal("crash recovery replayed no WAL records")
	}
	for i := 0; i < rounds*per; i++ {
		v, tier, _, err := db.Get(key(i))
		if err != nil {
			t.Fatal(err)
		}
		if i == 7 {
			if tier != TierMiss {
				t.Fatalf("deleted key %d resurfaced after recovery", i)
			}
			continue
		}
		if tier == TierMiss {
			t.Fatalf("acknowledged batched put %d lost after crash", i)
		}
		if !bytes.Equal(v, val(i, 1024)) {
			t.Fatalf("key %d recovered with wrong value", i)
		}
	}
}

// TestWriteQueueRacesMutators is the owner write path's -race stress
// (satellite): 8 producers hammer SET/DEL/PutBatch through the intent
// queues while lock-free GETs validate key-prefixed values, an open
// iterator holds a reclamation epoch, async compaction commits churn the
// view under a tight NVM budget, and finally Close races one last producer
// wave — every op must succeed or fail with ErrClosed, never hang, never
// serve another key's bytes.
func TestWriteQueueRacesMutators(t *testing.T) {
	o := testOptions()
	o.CompactionMode = CompactionAsync
	o.Partitions = 2
	o.NVMBudget = 1 << 20
	o.CPUPool = simdev.NewCPUPool(4)
	o.Promotions = true
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 1600
	const vsize = 512
	for i := 0; i < keys; i++ {
		k := key(i)
		if _, err := db.Put(k, prefixedVal(k, vsize)); err != nil {
			t.Fatal(err)
		}
	}
	it := db.NewIterator(nil, 0) // pins an epoch across the whole churn
	if !it.Valid() {
		t.Fatal("iterator over preload must be valid")
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 8; g++ { // producers: single puts, deletes, and batches
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 1500; i++ {
				switch {
				case i%11 == 0:
					k := key((seed*577 + i*13) % keys)
					if _, err := db.Delete(k); err != nil {
						errCh <- err
						return
					}
				case i%5 == 0:
					pairs := make([]KV, 4)
					for j := range pairs {
						k := key((seed*131 + i*7 + j) % keys)
						pairs[j] = KV{Key: k, Value: prefixedVal(k, vsize)}
					}
					if _, err := db.PutBatch(pairs); err != nil {
						errCh <- err
						return
					}
				default:
					k := key((seed*911 + i*31) % keys)
					if _, err := db.Put(k, prefixedVal(k, vsize)); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(g)
	}
	for g := 0; g < 3; g++ { // lock-free readers validating prefixes
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			buf := make([]byte, 0, 1024)
			for i := 0; i < 4000; i++ {
				k := key((seed*101 + i*17) % keys)
				v, tier, _, err := db.GetBuf(k, buf)
				if err != nil {
					errCh <- err
					return
				}
				if tier != TierMiss {
					if !bytes.HasPrefix(v, k) {
						errCh <- fmt.Errorf("GET %q returned another key's value %q", k, v[:min(len(v), 24)])
						return
					}
					buf = v[:0]
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Compactions == 0 {
		t.Fatal("stress never compacted; the commit-vs-write race lost its bite")
	}
	if st.WriteBatches == 0 {
		t.Fatal("no write batches recorded; the owner path never ran")
	}
	// The pinned iterator must still walk its snapshot after the churn.
	seen := 0
	for it.Valid() && seen < 50 {
		if !bytes.HasPrefix(it.Value(), it.Key()) {
			t.Fatalf("iterator pair %q/%q lost prefix invariant", it.Key(), it.Value()[:24])
		}
		seen++
		it.Next()
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}

	// Close wave: producers race teardown. Each op either completes (it won
	// the closed check) or fails with ErrClosed — never hangs on a done
	// signal, never leaks a parked producer.
	var cw sync.WaitGroup
	var closedSeen atomic.Int64
	closeErrs := make(chan error, 8)
	for g := 0; g < 6; g++ {
		cw.Add(1)
		go func(seed int) {
			defer cw.Done()
			for i := 0; i < 2000; i++ {
				k := key((seed*67 + i) % keys)
				var err error
				if i%6 == 0 {
					_, err = db.PutBatch([]KV{{Key: k, Value: prefixedVal(k, vsize)}})
				} else if i%13 == 0 {
					_, err = db.Delete(k)
				} else {
					_, err = db.Put(k, prefixedVal(k, vsize))
				}
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						closeErrs <- err
					} else {
						closedSeen.Add(1)
					}
					return
				}
			}
		}(g)
	}
	cw.Add(1)
	go func() {
		defer cw.Done()
		db.Close()
	}()
	cw.Wait()
	close(closeErrs)
	for err := range closeErrs {
		t.Fatal(err)
	}
	if _, err := db.Put(key(1), prefixedVal(key(1), vsize)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
}
