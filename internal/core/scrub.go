package core

import (
	"fmt"
	"time"

	"github.com/prismdb/prismdb/internal/btree"
	"github.com/prismdb/prismdb/internal/slab"
)

// Background scrub (Options.ScrubInterval > 0, durable mode).
//
// Bit rot is the failure the WAL cannot help with: a block that was written
// correctly, fsynced, acknowledged — and then silently changed under the
// engine. Every slab slot carries a 24-bit header CRC and every SST block's
// handle stores a CRC32 in the (NVM-resident) index, so rot is detectable;
// this goroutine is what actually goes looking for it before a client read
// does.
//
// The scrubber is strictly lower priority than foreground work:
//
//   - Slab slots are verified in small batches. Each batch pins a
//     reclamation epoch and collects ≤ scrubSlabBatch (key, loc) pairs from
//     the B-tree under the partition lock (with a resume cursor, so the lock
//     hold is O(batch) however big the tree is), then verifies the slots
//     OFF the lock — the epoch pin freezes slot contents exactly as it does
//     for compaction merges: overwrites go copy-on-write and frees defer,
//     so a CRC mismatch can only mean the bytes changed under a slot the
//     engine believes intact.
//   - SST blocks are verified against a refcounted manifest snapshot, raw
//     file reads only: no page-cache population, no clock charge, no cache
//     pollution.
//   - Pacing sleeps between batches keep the scrub's I/O and CPU in the
//     noise floor of a loaded server.
//
// Verdicts: a rotted SST block quarantines its table from the manifest
// (journaled like a compaction commit; reads fall through to other tiers —
// an NVM copy still serves, a flash-only key reports not-found rather than
// returning rotted bytes). A rotted slab slot is unrecoverable — NVM is the
// newest tier, there is no redundant copy — so the DB moves to Failed.
const (
	// scrubSlabBatch bounds (key, loc) pairs collected per partition-lock
	// hold, and therefore the epoch-pin span.
	scrubSlabBatch = 256
	// scrubPace is the sleep between verification batches.
	scrubPace = 2 * time.Millisecond
)

// scrubber is the DB's background scrub goroutine.
type scrubber struct {
	db   *DB
	quit chan struct{}
	done chan struct{}
}

// startScrubber launches the scrub loop (Open, after recovery: the scrubbed
// state must be the recovered state).
func (db *DB) startScrubber() *scrubber {
	s := &scrubber{db: db, quit: make(chan struct{}), done: make(chan struct{})}
	go s.loop()
	return s
}

// stopScrubber stops the scrub goroutine and waits it out. Nil-safe and
// idempotent (Close and crashDurable both call it).
func (db *DB) stopScrubber() {
	if db.scrub == nil {
		return
	}
	close(db.scrub.quit)
	<-db.scrub.done
	db.scrub = nil
}

func (s *scrubber) loop() {
	defer close(s.done)
	t := time.NewTicker(s.db.opts.ScrubInterval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
		}
		s.db.scrubPass(s.quit)
	}
}

// scrubPass runs one full verification cycle over every partition's slab
// slots and SST blocks. quit (may be nil for a synchronous call from tests)
// aborts between batches. It runs even while Degraded: reads are still
// serving, so rot detection still matters — and a slab hit escalates the
// state to Failed.
func (db *DB) scrubPass(quit chan struct{}) {
	start := time.Now()
	var slots, blocks int64
	for _, p := range db.parts {
		if stopRequested(quit) {
			return
		}
		slots += p.scrubSlabs(quit)
		blocks += p.scrubSSTs(quit)
	}
	db.obs.events.Emit("scrub_cycle",
		"slots", slots, "blocks", blocks, "took_ms", time.Since(start))
}

func stopRequested(quit chan struct{}) bool {
	select {
	case <-quit:
		return true
	default:
		return false
	}
}

// scrubEntry is one (key, loc) pair captured under the partition lock. The
// key aliases the B-tree's immutable stored slice (valid off-lock; tree
// nodes are copy-on-write) and is only used for diagnostics.
type scrubEntry struct {
	key []byte
	loc slab.Loc
}

// scrubSlabs verifies every NVM slot the partition's index references, in
// epoch-pinned batches, returning the number verified.
func (p *partition) scrubSlabs(quit chan struct{}) int64 {
	var verified int64
	var buf []byte
	batch := make([]scrubEntry, 0, scrubSlabBatch)
	var cursor []byte // resume key: scan restarts here each batch
	for {
		if stopRequested(quit) {
			return verified
		}
		batch = batch[:0]
		p.mu.Lock()
		//prismvet:ignore refpair batch-scoped pin: finishEpochLocked below unpins (via UnpinEpochDeferred) after the off-lock verification, on every path — stopRequested can only return before the pin or after the finish
		p.slabs.PinEpoch()
		p.obs.epochPins.Inc()
		p.index.AscendFrom(cursor, func(it btree.Item) bool {
			if len(batch) == scrubSlabBatch {
				// One past the batch: the resume point for the next lock hold.
				cursor = it.Key
				return false
			}
			batch = append(batch, scrubEntry{it.Key, slab.Loc(it.Val)})
			return true
		})
		last := len(batch) < scrubSlabBatch // tree exhausted before the cutoff
		p.mu.Unlock()

		// Verify off-lock: the pinned epoch freezes these slots (overwrites
		// copy-on-write, frees defer), so raw reads see exactly the bytes the
		// engine believes are there.
		for _, e := range batch {
			ok, b, err := p.slabs.VerifySlot(e.loc, buf)
			buf = b
			verified++
			p.obs.scrubSlots.Inc()
			switch {
			case err != nil:
				p.obs.events.Emit("scrub_error",
					"partition", p.id, "tier", "nvm", "key", string(e.key), "err", err.Error())
			case !ok:
				// NVM bit rot: no redundant copy exists (NVM holds the newest
				// version), so this object is lost. Count it, shout, and move
				// the DB to Failed — reads keep serving what is readable, but
				// a reopen will not bring the object back.
				p.obs.scrubBitRot.Inc()
				p.obs.events.Emit("scrub_bitrot",
					"partition", p.id, "tier", "nvm", "key", string(e.key))
				if p.health != nil {
					p.health.fail("scrub", fmt.Errorf("nvm slab slot CRC mismatch (partition %d, key %q)", p.id, e.key))
				}
			}
		}

		p.mu.Lock()
		p.finishEpochLocked()
		p.mu.Unlock()
		if last {
			return verified
		}
		time.Sleep(scrubPace)
	}
}

// scrubSSTs verifies every block of every live SST in the partition's
// manifest against the CRC its (NVM-resident) index entry recorded at build
// time, returning the number of blocks verified. Tables that fail are
// quarantined: journaled out of the live set, file preserved on disk for
// post-mortem, reads falling through to whatever other tiers hold.
func (p *partition) scrubSSTs(quit chan struct{}) int64 {
	var verified int64
	var buf []byte
	snap := p.man.Acquire()
	defer snap.Release()
	for _, t := range snap.Tables() {
		bad := false
	blockLoop:
		for i := 0; i < t.NumBlocks(); i++ {
			if stopRequested(quit) {
				return verified
			}
			ok, b, err := t.VerifyBlock(i, buf)
			buf = b
			verified++
			p.obs.scrubBlocks.Inc()
			switch {
			case err != nil:
				p.obs.events.Emit("scrub_error",
					"partition", p.id, "tier", "flash", "sst", t.Name(), "block", i, "err", err.Error())
			case !ok:
				p.obs.scrubBitRot.Inc()
				bad = true
				break blockLoop // one rotted block condemns the table
			}
			if i%8 == 7 {
				time.Sleep(scrubPace)
			}
		}
		if !bad {
			continue
		}
		// Quarantine: a journaled removal (crash-durable like a compaction
		// commit) that leaves the file on disk. Keys the table covered fall
		// through — NVM copies still serve; flash-only keys report not-found
		// rather than rotted bytes. The view republish hands lock-free
		// readers the new snapshot.
		if err := p.man.Quarantine(t); err != nil {
			// The quarantine edit itself could not be journaled: the removal
			// would not survive a restart. Degrade — the same verdict as any
			// other journal write failure.
			if p.health != nil {
				p.health.degrade("scrub quarantine", err)
			}
			p.obs.events.Emit("scrub_error",
				"partition", p.id, "tier", "flash", "sst", t.Name(), "err", err.Error())
			continue
		}
		p.obs.scrubQuarantine.Inc()
		p.obs.events.Emit("scrub_quarantine",
			"partition", p.id, "sst", t.Name())
		p.mu.Lock()
		p.publishView()
		p.mu.Unlock()
	}
	return verified
}
