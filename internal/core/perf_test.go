package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/prismdb/prismdb/internal/simdev"
)

// TestGetNVMHitZeroAlloc pins the read path's perf property on what is now
// the LOCK-FREE fast path: an NVM/DRAM-hit GetBuf with a reused value
// buffer performs zero heap allocations and takes no lock — the read view
// acquire is two atomics, the slab read lands in a recycled slot buffer
// from the partition's rack, the private virtual clock lives on the stack,
// the popularity touch goes to the bounded ring, and the read counters are
// plain atomic adds. (TestGetZeroAllocAfterConcurrentChurn in
// lockfree_test.go re-pins the same bound after concurrent contention.)
func TestGetNVMHitZeroAlloc(t *testing.T) {
	o := testOptions()
	o.NVMBudget = 64 << 20 // everything stays NVM-resident: no compactions
	o.Cache = simdev.NewPageCache(32 << 20)
	o.TrackerCapacity = 4096 // all keys tracked: no CLOCK evictions
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	const n = 512
	keys := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = key(i)
		if _, err := db.Put(keys[i], val(i, 512)); err != nil {
			t.Fatal(err)
		}
	}
	// Warm everything: tracker entries, bucket bitsets, page cache, value
	// buffer capacity.
	buf := make([]byte, 0, 1024)
	for _, k := range keys {
		v, tier, _, err := db.GetBuf(k, buf)
		if err != nil || tier == TierMiss {
			t.Fatalf("warm get: tier=%v err=%v", tier, err)
		}
		buf = v[:0]
	}

	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		v, tier, _, err := db.GetBuf(keys[i%n], buf)
		if err != nil || tier == TierMiss {
			t.Fatalf("get: tier=%v err=%v", tier, err)
		}
		buf = v[:0]
		i++
	})
	if allocs != 0 {
		t.Fatalf("NVM-hit GetBuf allocates %.1f objects/op, want 0", allocs)
	}
}

// TestIteratorNextZeroAlloc pins the scan tentpole's perf property: once an
// iterator is warm, Next over NVM-resident data performs zero heap
// allocations — keys alias the B-tree snapshot, values land in the
// iterator's reused buffer, the slab read uses the manager scratch, and the
// cursor heap holds pointers (no interface boxing).
func TestIteratorNextZeroAlloc(t *testing.T) {
	o := testOptions()
	o.Partitions = 4
	o.NVMBudget = 64 << 20 // everything NVM-resident: no compactions
	o.Cache = simdev.NewPageCache(32 << 20)
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1024
	for i := 0; i < n; i++ {
		if _, err := db.Put(key(i), val(i, 512)); err != nil {
			t.Fatal(err)
		}
	}
	it := db.NewIterator(nil, 0)
	defer it.Close()
	// Warm one full pass: buffer capacities, page cache.
	for it.Valid() {
		it.Next()
	}
	it.Seek(nil)
	allocs := testing.AllocsPerRun(4000, func() {
		if !it.Valid() {
			if !it.Seek(nil) {
				t.Fatal("seek to start found nothing")
			}
		}
		if len(it.Key()) == 0 || len(it.Value()) == 0 {
			t.Fatal("empty entry")
		}
		it.Next()
	})
	if allocs != 0 {
		t.Fatalf("warm Iterator.Next allocates %.2f objects/op, want 0", allocs)
	}
}

// TestConcurrentScansUnderWrites is the scan-heavy -race stress: iterators
// (bounded and unbounded) stream across all partitions while every
// partition's data is concurrently written, deleted, and compacted. It
// guards the epoch-pinning, snapshot refcounting, and the rule that scans
// only ever lock one foreign partition at a time.
func TestConcurrentScansUnderWrites(t *testing.T) {
	o := testOptions()
	o.Partitions = 4
	o.NVMBudget = 1 << 20 // tight: writes keep triggering demotions
	o.CPUPool = simdev.NewCPUPool(4)
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 3000
	for i := 0; i < keys; i++ {
		if _, err := db.Put(key(i), val(i, 512)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 4; w++ { // writers
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := key((seed*811 + i*13) % keys)
				var err error
				if i%19 == 0 {
					_, err = db.Delete(k)
				} else {
					_, err = db.Put(k, val(i, 512))
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ { // scanners
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				limit := 0
				if i%2 == 0 {
					limit = 50
				}
				it := db.NewIterator(key((seed*577+i*101)%keys), limit)
				var last []byte
				for cnt := 0; it.Valid() && cnt < 200; cnt++ {
					if last != nil && bytes.Compare(last, it.Key()) >= 0 {
						errCh <- fmt.Errorf("scan order violated: %q after %q", it.Key(), last)
						it.Close()
						return
					}
					last = append(last[:0], it.Key()...)
					it.Next()
				}
				if err := it.Close(); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if db.Stats().Compactions == 0 {
		t.Fatal("workload never compacted; scan stress lost its bite")
	}
}

// TestConcurrentOpsAcrossPartitions drives concurrent Get/Put/Delete/Scan
// workers against a multi-partition DB sized to compact continuously, the
// pattern the parallel bench driver produces. Run with -race: it guards
// the lock-free manifest snapshots, shared devices, page cache, and CPU
// pool against unsynchronized access.
func TestConcurrentOpsAcrossPartitions(t *testing.T) {
	o := testOptions()
	o.Partitions = 4
	o.NVMBudget = 1 << 20 // tight: writes keep triggering demotions
	o.CPUPool = simdev.NewCPUPool(4)
	o.Promotions = true
	o.ReadTrigger = DefaultReadTrigger(2000)
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 2000
	for i := 0; i < keys; i++ {
		if _, err := db.Put(key(i), val(i, 512)); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	const opsPerWorker = 1500
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			buf := make([]byte, 0, 1024)
			rng := uint64(seed)*2654435761 + 1
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}
			for i := 0; i < opsPerWorker; i++ {
				k := key(next(keys))
				switch next(10) {
				case 0, 1, 2:
					if _, err := db.Put(k, val(i, 512)); err != nil {
						errCh <- err
						return
					}
				case 3:
					if i%100 == 0 {
						if _, _, err := db.Scan(k, 10); err != nil {
							errCh <- err
							return
						}
					}
				case 4:
					if i%50 == 0 {
						if _, err := db.Delete(k); err != nil {
							errCh <- err
							return
						}
					}
				default:
					v, tier, _, err := db.GetBuf(k, buf)
					if err != nil {
						errCh <- err
						return
					}
					if tier != TierMiss {
						buf = v[:0]
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Compactions == 0 {
		t.Fatal("workload never compacted; concurrency test lost its bite")
	}
	if st.NVMObjects+st.FlashObjects == 0 {
		t.Fatal("no live objects after concurrent run")
	}
}

// TestPartitionOfMatchesRouting pins the O(1) PartitionOf satellite: the
// reported index must be the partition that actually serves the key, under
// both hash and range partitioning.
func TestPartitionOfMatchesRouting(t *testing.T) {
	for _, rangePart := range []bool{false, true} {
		o := testOptions()
		o.Partitions = 8
		o.RangePartitioning = rangePart
		db, err := Open(o)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			k := key(i)
			idx := db.PartitionOf(k)
			if idx < 0 || idx >= db.Partitions() {
				t.Fatalf("PartitionOf(%q) = %d out of range", k, idx)
			}
			if db.parts[idx] != db.partitionOf(k) {
				t.Fatalf("PartitionOf(%q) = %d does not match routing (range=%v)", k, idx, rangePart)
			}
		}
	}
}
