package core

import "time"

// Tier identifies where a read was served from (Fig 2b, Fig 14a).
type Tier int

const (
	// TierDRAM means the OS page cache absorbed the read.
	TierDRAM Tier = iota
	// TierNVM means the fast device served it.
	TierNVM
	// TierFlash means the slow device served it.
	TierFlash
	// TierMiss means the key does not exist.
	TierMiss
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierDRAM:
		return "dram"
	case TierNVM:
		return "nvm"
	case TierFlash:
		return "flash"
	case TierMiss:
		return "miss"
	}
	return "unknown"
}

// Stats aggregates engine activity. All counters are cumulative since Open
// (or the last ResetStats).
type Stats struct {
	Puts    int64
	Gets    int64
	Deletes int64
	Scans   int64

	// Read sources.
	GetDRAM  int64
	GetNVM   int64
	GetFlash int64
	GetMiss  int64

	// BloomFalsePositives counts flash probes where the SST bloom filter
	// said the key might be present but the table read found nothing (or
	// only a tombstone) — the wasted block I/O a filter exists to avoid.
	// The filters target a 1% false-positive rate; a ratio far above that
	// against GetMiss+GetFlash traffic means undersized filters or a
	// pathological key mix.
	BloomFalsePositives int64

	// Write paths.
	InPlaceUpdates int64
	FreshInserts   int64
	SlabMoves      int64 // update changed size class: delete + fresh insert

	// Compaction activity.
	Compactions        int64
	ReadTriggeredComps int64
	CompactionTime     time.Duration
	SelectionTime      time.Duration // time spent scoring candidates
	Demoted            int64
	Promoted           int64
	DroppedStale       int64 // obsolete flash versions removed by merges
	DroppedTombstones  int64
	FlashBytesRead     int64 // compaction reads from flash
	FlashBytesWritten  int64 // compaction writes to flash

	// Foreground write stalls caused by NVM rate limiting (§4.2).
	WriteStalls    int64
	WriteStallTime time.Duration

	// Async-compaction activity (CompactionAsync mode; all zero under
	// CompactionSync).
	//
	// CompactionBacklog is a gauge: background jobs currently pending or
	// running across partitions at the moment Stats was taken.
	CompactionBacklog int64
	// CommitConflicts counts per-key commit skips: a key the background
	// merge demoted (or whose tombstone it annihilated) that was
	// overwritten or deleted by a foreground op while the merge ran, so
	// the commit's reconciliation left the newer foreground version alone.
	CommitConflicts int64
	// CompactionHardStalls counts foreground writes that exhausted the
	// space-admission credit with no matured reclaim available and
	// host-blocked until the background worker's next commit.
	// CompactionHardStallTime is the total host (wall-clock, not virtual)
	// time those writes spent blocked.
	CompactionHardStalls    int64
	CompactionHardStallTime time.Duration

	// Owner-goroutine write path (Options.WriteMode == WriteAsync; all
	// zero under WriteSync).
	//
	// WriteBatches counts owner batch applications; ViewRepublishes counts
	// read-view publications (one per mutating batch rather than one per
	// mutating op — the batching win the write path exists for).
	// ProducerParks counts enqueuers that found the intent ring full and
	// parked. WriteQueueDepth is a gauge: intents queued across partitions
	// at the moment Stats was taken.
	// DirectWrites counts mutations applied on the uncontended direct fast
	// path — batches of one that never visited the intent ring. Counted as
	// a plain field under the partition lock (the direct path is the write
	// hot path; it must not pay shared atomic instrument traffic), and
	// folded into the prism_write_batch_ops histogram at gather time.
	WriteBatches    int64
	DirectWrites    int64
	ViewRepublishes int64
	ProducerParks   int64
	WriteQueueDepth int64
	// WriteBatchP50/P99 are representative batch sizes at those
	// percentiles, computed by DB.Stats from the merged histogram (not
	// summed in add — a percentile of percentiles would be meaningless).
	WriteBatchP50 int64
	WriteBatchP99 int64

	// Objects currently resident per tier.
	NVMObjects   int64
	FlashObjects int64
}

// add merges two stats (for per-partition aggregation).
func (s *Stats) add(o Stats) {
	s.Puts += o.Puts
	s.Gets += o.Gets
	s.Deletes += o.Deletes
	s.Scans += o.Scans
	s.GetDRAM += o.GetDRAM
	s.GetNVM += o.GetNVM
	s.GetFlash += o.GetFlash
	s.GetMiss += o.GetMiss
	s.BloomFalsePositives += o.BloomFalsePositives
	s.InPlaceUpdates += o.InPlaceUpdates
	s.FreshInserts += o.FreshInserts
	s.SlabMoves += o.SlabMoves
	s.Compactions += o.Compactions
	s.ReadTriggeredComps += o.ReadTriggeredComps
	s.CompactionTime += o.CompactionTime
	s.SelectionTime += o.SelectionTime
	s.Demoted += o.Demoted
	s.Promoted += o.Promoted
	s.DroppedStale += o.DroppedStale
	s.DroppedTombstones += o.DroppedTombstones
	s.FlashBytesRead += o.FlashBytesRead
	s.FlashBytesWritten += o.FlashBytesWritten
	s.WriteStalls += o.WriteStalls
	s.WriteStallTime += o.WriteStallTime
	s.CompactionBacklog += o.CompactionBacklog
	s.CommitConflicts += o.CommitConflicts
	s.CompactionHardStalls += o.CompactionHardStalls
	s.CompactionHardStallTime += o.CompactionHardStallTime
	s.WriteBatches += o.WriteBatches
	s.DirectWrites += o.DirectWrites
	s.ViewRepublishes += o.ViewRepublishes
	s.ProducerParks += o.ProducerParks
	s.WriteQueueDepth += o.WriteQueueDepth
	s.NVMObjects += o.NVMObjects
	s.FlashObjects += o.FlashObjects
}

// NVMReadRatio returns the fraction of successful reads served from DRAM or
// NVM rather than flash.
func (s Stats) NVMReadRatio() float64 {
	total := s.GetDRAM + s.GetNVM + s.GetFlash
	if total == 0 {
		return 0
	}
	return float64(s.GetDRAM+s.GetNVM) / float64(total)
}
