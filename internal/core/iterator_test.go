package core

import (
	"bytes"
	"testing"
)

// collectIter drains an iterator into owned KV copies.
func collectIter(t *testing.T, it *Iterator, max int) []KV {
	t.Helper()
	var out []KV
	for it.Valid() && (max <= 0 || len(out) < max) {
		out = append(out, KV{
			Key:   append([]byte(nil), it.Key()...),
			Value: append([]byte(nil), it.Value()...),
		})
		it.Next()
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iterator error: %v", err)
	}
	return out
}

// TestIteratorMergedOrder drives the two-level iterator over a dataset
// spanning both tiers (the small budget forces demotions) and checks the
// stream is exactly the sorted live key set, values intact.
func TestIteratorMergedOrder(t *testing.T) {
	for _, parts := range []int{1, 4} {
		o := testOptions()
		o.Partitions = parts
		db, err := Open(o)
		if err != nil {
			t.Fatal(err)
		}
		const n = 800
		for i := 0; i < n; i++ {
			if _, err := db.Put(key(i), val(i, 512)); err != nil {
				t.Fatal(err)
			}
		}
		st := db.Stats()
		if st.FlashObjects == 0 {
			t.Fatal("dataset never demoted; iterator test lost its flash half")
		}
		it := db.NewIterator(nil, 0)
		kvs := collectIter(t, it, 0)
		it.Close()
		if len(kvs) != n {
			t.Fatalf("parts=%d: iterator yielded %d keys, want %d", parts, len(kvs), n)
		}
		for i, kv := range kvs {
			if want := key(i); !bytes.Equal(kv.Key, want) {
				t.Fatalf("parts=%d: kv[%d].Key = %q, want %q", parts, i, kv.Key, want)
			}
			if !bytes.Equal(kv.Value, val(i, 512)) {
				t.Fatalf("parts=%d: kv[%d] wrong value", parts, i)
			}
		}
	}
}

// TestIteratorSeek exercises forward and backward seeks: within the pinned
// snapshot, to arbitrary non-key byte strings, and past the end.
func TestIteratorSeek(t *testing.T) {
	o := testOptions()
	o.Partitions = 2
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	for i := 0; i < n; i++ {
		if _, err := db.Put(key(i), val(i, 256)); err != nil {
			t.Fatal(err)
		}
	}
	it := db.NewIterator(key(100), 0)
	if !it.Valid() || !bytes.Equal(it.Key(), key(100)) {
		t.Fatalf("positioned at %q, want %q", it.Key(), key(100))
	}
	if !it.Seek(key(350)) || !bytes.Equal(it.Key(), key(350)) {
		t.Fatalf("seek forward landed on %q", it.Key())
	}
	// Backward seek (before the creation start key): re-reads the live
	// index for the new range but must still be correct.
	if !it.Seek(key(5)) || !bytes.Equal(it.Key(), key(5)) {
		t.Fatalf("seek backward landed on %q", it.Key())
	}
	// A non-canonical byte string between keys: "user00000010!" sorts
	// after key(10) and before key(11).
	target := append(append([]byte(nil), key(10)...), '!')
	if !it.Seek(target) || !bytes.Equal(it.Key(), key(11)) {
		t.Fatalf("seek %q landed on %q, want %q", target, it.Key(), key(11))
	}
	if it.Seek([]byte("zzzz")) {
		t.Fatalf("seek past the end still valid at %q", it.Key())
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIteratorTombstoneShadowing deletes keys whose older versions live on
// flash: the NVM tombstone must shadow the flash version at the iterator's
// merge point, before and after compaction annihilates the pair.
func TestIteratorTombstoneShadowing(t *testing.T) {
	o := testOptions()
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	const n = 800
	for i := 0; i < n; i++ {
		if _, err := db.Put(key(i), val(i, 512)); err != nil {
			t.Fatal(err)
		}
	}
	if db.Stats().FlashObjects == 0 {
		t.Fatal("nothing on flash; shadowing test needs demoted keys")
	}
	// Delete every 7th key — many will have flash-resident versions, so
	// the deletes leave NVM tombstones behind.
	deleted := map[string]bool{}
	for i := 0; i < n; i += 7 {
		if _, err := db.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
		deleted[string(key(i))] = true
	}
	check := func(when string) {
		it := db.NewIterator(nil, 0)
		defer it.Close()
		seen := map[string]bool{}
		for kvs := collectIter(t, it, 0); len(kvs) > 0; kvs = kvs[1:] {
			k := string(kvs[0].Key)
			if deleted[k] {
				t.Fatalf("%s: deleted key %q resurfaced in scan", when, k)
			}
			if seen[k] {
				t.Fatalf("%s: key %q yielded twice", when, k)
			}
			seen[k] = true
		}
		if want := n - len(deleted); len(seen) != want {
			t.Fatalf("%s: scan yielded %d keys, want %d", when, len(seen), want)
		}
	}
	check("before compaction")
	// Force a full demotion pass so tombstones meet their flash versions
	// and annihilate, then re-check.
	for _, p := range db.parts {
		p.mu.Lock()
		p.runDemotionCompaction()
		p.mu.Unlock()
	}
	check("after compaction")
}

// TestIteratorMidScanCompaction pins the snapshot-consistency property the
// iterator exists for: a compaction that demotes (and with promotions,
// re-promotes) keys mid-scan must not change what the iterator observes —
// no missing keys, no duplicates, no resurrected deletes, values as of
// iterator creation.
func TestIteratorMidScanCompaction(t *testing.T) {
	o := testOptions()
	o.Promotions = true
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	const n = 700
	for i := 0; i < n; i++ {
		if _, err := db.Put(key(i), val(i, 512)); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot of what a consistent scan must observe.
	want, _, err := db.Scan(nil, n+10)
	if err != nil {
		t.Fatal(err)
	}

	it := db.NewIterator(nil, 0)
	var got []KV
	for len(got) < 50 && it.Valid() {
		got = append(got, KV{
			Key:   append([]byte(nil), it.Key()...),
			Value: append([]byte(nil), it.Value()...),
		})
		it.Next()
	}

	// Mid-scan chaos: overwrite values in the unscanned range (these must
	// NOT surface — the iterator pinned its epoch), delete some, insert
	// new keys, and force a demotion compaction on every partition.
	for i := 100; i < 400; i += 3 {
		if _, err := db.Put(key(i), val(i+100000, 512)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 101; i < 400; i += 17 {
		if _, err := db.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := n; i < n+50; i++ {
		if _, err := db.Put(key(i), val(i, 512)); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range db.parts {
		p.mu.Lock()
		p.runDemotionCompaction()
		p.mu.Unlock()
	}

	got = append(got, collectIter(t, it, 0)...)
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("mid-scan compaction changed the view: got %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Key, want[i].Key) {
			t.Fatalf("kv[%d].Key = %q, want %q", i, got[i].Key, want[i].Key)
		}
		if !bytes.Equal(got[i].Value, want[i].Value) {
			t.Fatalf("kv[%d] (%q): value changed mid-scan", i, got[i].Key)
		}
	}
	// Sanity: the post-close view DOES include the mutations.
	after, _, err := db.Scan(nil, n+100)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) == len(want) {
		t.Fatal("post-scan view identical to snapshot; chaos phase was a no-op")
	}
}

// TestScanNonCanonicalStartRangePartitioned pins the startIdx routing fix:
// under range partitioning, a Scan whose start key carries no canonical
// key index (KeyIndex falls back to an FNV hash) must still visit every
// partition holding keys ≥ start instead of skipping ahead.
func TestScanNonCanonicalStartRangePartitioned(t *testing.T) {
	o := testOptions()
	o.Partitions = 8
	o.RangePartitioning = true
	o.KeySpace = 1 << 10
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	const n = 512
	for i := 0; i < n; i++ {
		if _, err := db.Put(key(i), val(i, 256)); err != nil {
			t.Fatal(err)
		}
	}
	for _, start := range [][]byte{
		nil,                     // -∞
		[]byte("user"),          // prefix of every key, no digits: FNV fallback index
		[]byte("a"),             // before every key, non-canonical
		[]byte("user00000100x"), // between key(100) and key(101)
	} {
		kvs, _, err := db.Scan(start, 64)
		if err != nil {
			t.Fatalf("scan %q: %v", start, err)
		}
		if len(kvs) != 64 {
			t.Fatalf("scan %q returned %d keys, want 64 (partitions skipped?)", start, len(kvs))
		}
		wantFirst := key(0)
		if bytes.Compare(start, key(100)) > 0 {
			wantFirst = key(101)
		}
		if !bytes.Equal(kvs[0].Key, wantFirst) {
			t.Fatalf("scan %q starts at %q, want %q", start, kvs[0].Key, wantFirst)
		}
		for i := 1; i < len(kvs); i++ {
			if bytes.Compare(kvs[i-1].Key, kvs[i].Key) >= 0 {
				t.Fatalf("scan %q out of order at %d", start, i)
			}
		}
	}
}

// TestStatsCountClientOps pins the op-accounting invariant: Puts, Gets,
// Deletes, and Scans count exactly the client operations issued — internal
// writes (delete tombstones routed through the put path) must not leak
// into Puts.
func TestStatsCountClientOps(t *testing.T) {
	o := testOptions()
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	var puts, gets, dels, scans int64
	const n = 800
	for i := 0; i < n; i++ {
		if _, err := db.Put(key(i), val(i, 512)); err != nil {
			t.Fatal(err)
		}
		puts++
	}
	if db.Stats().FlashObjects == 0 {
		t.Fatal("no flash objects: deletes would never need tombstones")
	}
	// Deletes across both tiers; flash-resident victims insert tombstones
	// through the internal put path.
	for i := 0; i < n; i += 5 {
		if _, err := db.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
		dels++
	}
	for i := 0; i < 200; i++ {
		if _, _, _, err := db.Get(key(i)); err != nil {
			t.Fatal(err)
		}
		gets++
	}
	for i := 0; i < 10; i++ {
		if _, _, err := db.Scan(key(i*37), 20); err != nil {
			t.Fatal(err)
		}
		scans++
	}
	st := db.Stats()
	if st.Puts != puts || st.Gets != gets || st.Deletes != dels || st.Scans != scans {
		t.Fatalf("stats drifted from issued ops: Puts %d/%d Gets %d/%d Deletes %d/%d Scans %d/%d",
			st.Puts, puts, st.Gets, gets, st.Deletes, dels, st.Scans, scans)
	}
	if got, want := st.Puts+st.Gets+st.Deletes+st.Scans, puts+gets+dels+scans; got != want {
		t.Fatalf("op total %d, want %d", got, want)
	}
}

// TestIteratorLimitHintRefill checks a limitHint-bounded iterator is a
// hint, not a truncation: draining past the hint refills from the live
// index and yields the full key range.
func TestIteratorLimitHintRefill(t *testing.T) {
	o := testOptions()
	o.NVMBudget = 64 << 20 // all NVM-resident: the snapshot cap must refill
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		if _, err := db.Put(key(i), val(i, 256)); err != nil {
			t.Fatal(err)
		}
	}
	it := db.NewIterator(nil, 10) // hint far below the drain below
	kvs := collectIter(t, it, 0)
	it.Close()
	if len(kvs) != n {
		t.Fatalf("bounded iterator truncated: %d keys, want %d", len(kvs), n)
	}
	for i, kv := range kvs {
		if !bytes.Equal(kv.Key, key(i)) {
			t.Fatalf("kv[%d].Key = %q, want %q", i, kv.Key, key(i))
		}
	}
}

// TestIteratorClockOwnership pins the accounting fix the iterator was built
// for: a scan issued against one partition's key space must advance only
// the issuing partition's clock, no matter how many foreign partitions its
// merge reads through.
func TestIteratorClockOwnership(t *testing.T) {
	o := testOptions()
	o.Partitions = 4
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	for i := 0; i < n; i++ {
		if _, err := db.Put(key(i), val(i, 512)); err != nil {
			t.Fatal(err)
		}
	}
	db.AdvanceAll()
	before := make([]int64, db.Partitions())
	for i := range before {
		before[i] = int64(db.PartitionClock(i))
	}
	start := key(7)
	home := db.PartitionOf(start)
	if _, _, err := db.Scan(start, 100); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		after := int64(db.PartitionClock(i))
		if i == home {
			if after <= before[i] {
				t.Fatalf("issuing partition %d clock did not advance", i)
			}
			continue
		}
		if after != before[i] {
			t.Fatalf("foreign partition %d clock moved %d → %d during a scan issued on partition %d",
				i, before[i], after, home)
		}
	}
}
