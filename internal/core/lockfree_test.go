package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/prismdb/prismdb/internal/simdev"
	"github.com/prismdb/prismdb/internal/tracker"
)

// prefixedVal builds a value that embeds its key, so concurrent readers can
// prove a GET never returns another key's bytes — the exact hazard the
// lock-free read path's slot validation exists to rule out (a view-resolved
// slot freed and recycled to a different key mid-read).
func prefixedVal(k []byte, size int) []byte {
	v := make([]byte, 0, size)
	v = append(v, k...)
	for len(v) < size {
		v = append(v, byte('p'))
	}
	return v
}

// TestLockFreeGetRacesMutators is the lock-free read path's -race stress:
// concurrent GETs and MGET-shaped batched reads race puts, deletes,
// async-compaction commits, and finally Close. Every hit's value must carry
// its key's prefix (stale-view retries may serve a slightly older value of
// the RIGHT key; never another key's), and after the close wave every
// operation must fail with ErrClosed rather than touching torn state.
func TestLockFreeGetRacesMutators(t *testing.T) {
	o := testOptions()
	o.CompactionMode = CompactionAsync
	o.Partitions = 2
	o.NVMBudget = 1 << 20 // tight: background merge commits churn the view
	o.CPUPool = simdev.NewCPUPool(4)
	o.Promotions = true
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 1500
	const vsize = 512
	for i := 0; i < keys; i++ {
		k := key(i)
		if _, err := db.Put(k, prefixedVal(k, vsize)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	checkHit := func(k, v []byte) bool {
		if !bytes.HasPrefix(v, k) {
			errCh <- fmt.Errorf("GET %q returned another key's value %q", k, v[:min(len(v), 24)])
			return false
		}
		return true
	}

	for g := 0; g < 3; g++ { // point readers
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			buf := make([]byte, 0, 1024)
			for i := 0; i < 4000; i++ {
				k := key((seed*911 + i*31) % keys)
				v, tier, _, err := db.GetBuf(k, buf)
				if err != nil {
					errCh <- err
					return
				}
				if tier != TierMiss {
					if !checkHit(k, v) {
						return
					}
					buf = v[:0]
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // MGET-shaped batches: one scratch buffer, many keys per "command"
		defer wg.Done()
		buf := make([]byte, 0, 1024)
		for i := 0; i < 600; i++ {
			for j := 0; j < 8; j++ {
				k := key((i*131 + j*17) % keys)
				v, tier, _, err := db.GetBuf(k, buf)
				if err != nil {
					errCh <- err
					return
				}
				if tier != TierMiss {
					if !checkHit(k, v) {
						return
					}
					buf = v[:0]
				}
			}
		}
	}()
	for g := 0; g < 2; g++ { // writers: overwrites force class-stable updates and COW moves
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				k := key((seed*577 + i*13) % keys)
				if _, err := db.Put(k, prefixedVal(k, vsize)); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // deleter: frees + recycles slots under in-flight reads
		defer wg.Done()
		for i := 0; i < 1200; i++ {
			k := key((i * 37) % keys)
			if _, err := db.Delete(k); err != nil {
				errCh <- err
				return
			}
			if i%3 == 0 { // re-insert so readers keep finding live keys
				if _, err := db.Put(k, prefixedVal(k, vsize)); err != nil {
					errCh <- err
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if db.Stats().Compactions == 0 {
		t.Fatal("stress never compacted; the commit-vs-read race lost its bite")
	}

	// Close wave: readers race teardown. Each GET either completes normally
	// (it won the db.closed check) or fails with ErrClosed — never panics,
	// never returns foreign bytes.
	var cw sync.WaitGroup
	closeErrs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		cw.Add(1)
		go func(seed int) {
			defer cw.Done()
			buf := make([]byte, 0, 1024)
			for i := 0; i < 2000; i++ {
				k := key((seed*101 + i) % keys)
				v, tier, _, err := db.GetBuf(k, buf)
				if err != nil {
					if err != ErrClosed {
						closeErrs <- err
					}
					return
				}
				if tier != TierMiss {
					if !bytes.HasPrefix(v, k) {
						closeErrs <- fmt.Errorf("GET %q after-close race returned %q", k, v[:min(len(v), 24)])
						return
					}
					buf = v[:0]
				}
			}
		}(g)
	}
	cw.Add(1)
	go func() {
		defer cw.Done()
		db.Close()
	}()
	cw.Wait()
	close(closeErrs)
	for err := range closeErrs {
		t.Fatal(err)
	}
	if _, _, _, err := db.Get(key(1)); err != ErrClosed {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
}

// TestGetZeroAllocAfterConcurrentChurn re-pins the 0 allocs/op guard AFTER
// the lock-free machinery has been exercised concurrently: the buffer rack,
// touch ring, and view refcounts must return to an allocation-free steady
// state once contention subsides (e.g. no holder was leaked to the GC and
// re-allocated per op).
func TestGetZeroAllocAfterConcurrentChurn(t *testing.T) {
	o := testOptions()
	o.NVMBudget = 64 << 20 // everything NVM-resident: no compactions
	o.Cache = simdev.NewPageCache(32 << 20)
	o.TrackerCapacity = 4096
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	const n = 512
	keys := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = key(i)
		if _, err := db.Put(keys[i], val(i, 512)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ { // churn the rack and ring from many goroutines
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			buf := make([]byte, 0, 1024)
			for i := 0; i < 2000; i++ {
				v, tier, _, err := db.GetBuf(keys[(seed+i)%n], buf)
				if err != nil || tier == TierMiss {
					t.Errorf("churn get: tier=%v err=%v", tier, err)
					return
				}
				buf = v[:0]
			}
		}(g)
	}
	wg.Wait()

	buf := make([]byte, 0, 1024)
	for _, k := range keys { // rewarm single-threaded
		v, _, _, err := db.GetBuf(k, buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = v[:0]
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		v, tier, _, err := db.GetBuf(keys[i%n], buf)
		if err != nil || tier == TierMiss {
			t.Fatalf("get: tier=%v err=%v", tier, err)
		}
		buf = v[:0]
		i++
	})
	if allocs != 0 {
		t.Fatalf("lock-free GetBuf allocates %.2f objects/op after churn, want 0", allocs)
	}
}

// TestBloomFalsePositiveCounter pins the new Stats.BloomFalsePositives
// satellite: after demoting a key range to flash, probing absent keys that
// fall inside the tables' ranges must (a) count every filter pass that the
// table read then rejects and (b) leave hits and true misses uncounted.
// Bloom hashing is deterministic, so the count is stable for a fixed key
// set; with a 1% target FP rate over thousands of probes, zero would mean
// the counter (or the filter) is broken.
func TestBloomFalsePositiveCounter(t *testing.T) {
	o := testOptions()
	o.NVMBudget = 256 << 10 // tiny: most of the preload demotes to flash
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 1200
	for i := 0; i < keys; i++ {
		if _, err := db.Put(key(i), val(i, 512)); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.FlashObjects == 0 {
		t.Fatal("preload never demoted; shrink the budget")
	}
	if st.BloomFalsePositives != 0 {
		// Possible in principle (hash collisions during preload reads), but
		// the preload does no reads at all.
		t.Fatalf("BloomFalsePositives = %d before any reads", st.BloomFalsePositives)
	}

	// Probe absent keys interleaved between real ones (odd offsets in a
	// dense decimal keyspace stay inside table ranges, so Find locates a
	// candidate table and the filter is actually consulted).
	misses := 0
	for i := 0; i < 6000; i++ {
		k := []byte(fmt.Sprintf("user%08dx", i%keys))
		_, tier, _, err := db.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if tier == TierMiss {
			misses++
		}
	}
	st = db.Stats()
	if misses == 0 {
		t.Fatal("probe keys unexpectedly exist")
	}
	if st.BloomFalsePositives == 0 {
		t.Fatalf("no bloom false positives counted over %d misses against %d flash objects",
			misses, st.FlashObjects)
	}
	if st.BloomFalsePositives > int64(misses) {
		t.Fatalf("BloomFalsePositives = %d exceeds total misses %d", st.BloomFalsePositives, misses)
	}
}

// TestTouchRing unit-tests the bounded MPSC touch ring: publication order,
// inline key copies, wrap-around reuse, and drop-don't-block when full.
func TestTouchRing(t *testing.T) {
	r := newTouchRing()
	var got []string
	drain := func() {
		r.drain(func(k []byte, idx uint64, loc tracker.Location) {
			got = append(got, fmt.Sprintf("%s/%d/%d", k, idx, loc))
		})
	}
	// Fill beyond capacity: the overflow must be dropped, not block.
	dropped := 0
	for i := 0; i < touchRingSize+100; i++ {
		if !r.push([]byte(fmt.Sprintf("k%04d", i)), uint64(i), tracker.NVM) {
			dropped++
		}
	}
	if dropped != 100 {
		t.Fatalf("dropped %d pushes, want 100", dropped)
	}
	drain()
	if len(got) != touchRingSize {
		t.Fatalf("drained %d entries, want %d", len(got), touchRingSize)
	}
	if got[0] != "k0000/0/0" || got[touchRingSize-1] != fmt.Sprintf("k%04d/%d/0", touchRingSize-1, touchRingSize-1) {
		t.Fatalf("order violated: first=%q last=%q", got[0], got[len(got)-1])
	}
	// Wrap-around: the ring must be fully reusable after a drain.
	got = got[:0]
	for lap := 0; lap < 3; lap++ {
		for i := 0; i < touchRingSize/2; i++ {
			if !r.push([]byte("wrap"), uint64(lap), tracker.Flash) {
				t.Fatalf("push failed on lap %d entry %d", lap, i)
			}
		}
		drain()
	}
	if len(got) != 3*touchRingSize/2 {
		t.Fatalf("wrap drains = %d entries, want %d", len(got), 3*touchRingSize/2)
	}
	// Oversized keys are skipped (popularity approximation, never an alloc).
	if r.push(bytes.Repeat([]byte{'k'}, touchKeyMax+1), 1, tracker.NVM) {
		t.Fatal("oversized key accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
