package core

import (
	"bytes"
	"fmt"
	"time"

	"github.com/prismdb/prismdb/internal/btree"
	"github.com/prismdb/prismdb/internal/mapper"
	"github.com/prismdb/prismdb/internal/msc"
	"github.com/prismdb/prismdb/internal/simdev"
	"github.com/prismdb/prismdb/internal/slab"
	"github.com/prismdb/prismdb/internal/sst"
	"github.com/prismdb/prismdb/internal/tracker"
)

// maxCompactionRounds bounds one triggered compaction to avoid livelock
// when everything is pinned or the tracker is degenerate.
const maxCompactionRounds = 24

// candRange is a candidate compaction key range: the key span of
// RangeFiles consecutive SST files (§5.2). nil bounds are ±∞.
type candRange struct {
	lo, hi []byte // [lo, hi); nil = unbounded
	tables []*sst.Table
}

// keyIdxBounds maps a candidate range to key-index space for the buckets.
func (p *partition) keyIdxBounds(r candRange) (uint64, uint64) {
	lo := uint64(0)
	hi := p.opts.KeySpace
	if r.lo != nil {
		lo = p.opts.KeyIndex(r.lo)
	}
	if r.hi != nil {
		hi = p.opts.KeyIndex(r.hi)
	}
	if hi > p.opts.KeySpace {
		hi = p.opts.KeySpace
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// buildRanges tiles the key space into candidate ranges from the current
// SST snapshot: window i spans from table i's smallest key (window 0 from
// -∞) to table i+RangeFiles's smallest key (last window to +∞).
// The returned slice aliases the partition's reusable scratch: callers
// must copy out (retainRange) anything they keep past the next call.
func (p *partition) buildRanges(snap []*sst.Table) []candRange {
	rf := p.opts.RangeFiles
	out := p.rangeBuf[:0]
	defer func() { p.rangeBuf = out }()
	if len(snap) == 0 {
		out = append(out, candRange{})
		return out
	}
	if rf > len(snap) {
		rf = len(snap)
	}
	n := len(snap) - rf + 1
	for i := 0; i < n; i++ {
		var r candRange
		if i > 0 {
			r.lo = snap[i].Smallest()
		}
		if i+rf < len(snap) {
			r.hi = snap[i+rf].Smallest()
		}
		r.tables = snap[i : i+rf]
		out = append(out, r)
	}
	return out
}

// maybeCompact triggers a demotion compaction when NVM usage crosses the
// high watermark (§4.2). Called with the partition lock held. In sync mode
// the whole merge runs inline; in async mode the trigger just flags the
// background worker and returns — the foreground op's critical section
// stays short.
func (p *partition) maybeCompact() {
	if p.usage() < int64(float64(p.nvmBudget)*p.opts.HighWatermark) {
		return
	}
	if p.opts.CompactionMode == CompactionSync {
		p.runDemotionCompaction()
		return
	}
	if !p.bg.demotePending && !p.bg.stopping {
		p.bg.demotePending = true
		p.bg.demoteTriggerNs = p.clk.Now()
		p.bg.jobCond.Signal()
	}
}

// triggerPromotion is the read-trigger machine's invocation hook: inline in
// sync mode, enqueued to the background worker in async mode. Called with
// the partition lock held.
func (p *partition) triggerPromotion() {
	if p.opts.CompactionMode == CompactionSync {
		p.runPromotionCompaction()
		return
	}
	if !p.bg.promotePending && !p.bg.stopping {
		p.bg.promotePending = true
		p.bg.promoteTriggerNs = p.clk.Now()
		p.bg.jobCond.Signal()
	}
}

// runDemotionCompaction frees NVM down to the low watermark. The job runs
// on its own clock starting at the partition's current time; its I/O
// occupies device channels (delaying foreground requests), and writes
// admitted before its completion are rate-limited through admitWrite.
func (p *partition) runDemotionCompaction() {
	compClk := simdev.NewBGClock()
	compClk.AdvanceTo(p.clk.Now())
	// The partition's single compaction thread is serial: a new job
	// cannot start before the previous one finished.
	compClk.AdvanceTo(p.compEndAt)
	start := compClk.Now()
	low := int64(float64(p.nvmBudget) * p.opts.LowWatermark)

	// If the pinned set itself exceeds the NVM budget (possible when the
	// pinning threshold is generous relative to the tier split), normal
	// rounds cannot free space; after two no-progress rounds we demote
	// regardless of popularity — space safety beats placement quality.
	noProgress := 0
	for round := 0; round < maxCompactionRounds && p.usage() > low; round++ {
		before := p.usage()
		r := p.selectRange(compClk)
		force := noProgress >= 2
		p.compactRange(compClk, r, true, p.opts.Promotions && !force, force)
		p.stats.Compactions++
		// Each range merge commits independently: its reclaimed space
		// matures at the round's completion, not the whole chain's.
		if freed := before - p.usage(); freed > 0 {
			p.compQueue = append(p.compQueue, compJob{endAt: compClk.Now(), freed: freed})
			noProgress = 0
		} else {
			noProgress++
			if force {
				break // even forced demotion freed nothing; give up
			}
		}
	}
	dur := time.Duration(compClk.Now() - start)
	p.stats.CompactionTime += dur
	if compClk.Now() > p.compEndAt {
		p.compEndAt = compClk.Now()
	}
	// The merge rewrote B-tree entries and the manifest wholesale; hand
	// lock-free readers the post-compaction pairing.
	p.publishView()
}

// selectRange picks the compaction key range per the configured policy,
// charging scoring CPU to the compaction clock (Fig 6's contrast).
func (p *partition) selectRange(compClk *simdev.Clock) candRange {
	selStart := compClk.Now()
	defer func() {
		p.stats.SelectionTime += time.Duration(compClk.Now() - selStart)
	}()
	snap := p.man.Acquire()
	defer snap.Release()
	ranges := p.buildRanges(snap.Tables())
	if len(ranges) == 1 {
		return p.retainRange(ranges[0])
	}

	if p.opts.Policy == msc.Random {
		return p.retainRange(ranges[p.rng.Intn(len(ranges))])
	}
	cand := msc.PickCandidates(len(ranges), p.opts.PowerK, p.rng)
	stats := make([]msc.RangeStats, len(cand))
	for i, ci := range cand {
		switch p.opts.Policy {
		case msc.Precise:
			stats[i] = p.preciseStats(compClk, ranges[ci])
		default:
			stats[i] = p.approxStats(compClk, ranges[ci])
		}
	}
	best, _ := msc.Best(stats)
	if best < 0 {
		best = 0
	}
	return p.retainRange(ranges[cand[best]])
}

// retainRange copies a candidate out of the snapshot's lifetime. The tables
// themselves stay alive because compactRange runs before any concurrent
// manifest change (partition-lock discipline), so holding the pointers is
// safe.
func (p *partition) retainRange(r candRange) candRange {
	tables := make([]*sst.Table, len(r.tables))
	copy(tables, r.tables)
	r.tables = tables
	return r
}

// approxStats estimates range statistics from the buckets (§6).
func (p *partition) approxStats(compClk *simdev.Clock, r candRange) msc.RangeStats {
	lo, hi := p.keyIdxBounds(r)
	nBuckets := int((hi-lo)/uint64(p.opts.BucketKeys)) + 1
	p.chargeCPU(compClk, time.Duration(nBuckets)*p.opts.CPU.ApproxPerBucket)
	s := p.bkt.Estimate(lo, hi)
	return msc.RangeStats{Tn: s.Tn, Tf: s.Tf, P: s.P(), O: s.O(), Benefit: s.Benefit()}
}

// preciseStats walks every object in the range: each NVM object costs a
// B-tree + mapper navigation, and each flash object an SST-index check
// (§5.3 — this is what made precise-MSC's compactions take 25 s).
func (p *partition) preciseStats(compClk *simdev.Clock, r candRange) msc.RangeStats {
	decider := p.pinDecider()
	var s msc.RangeStats
	var popular float64
	overlap := 0
	p.index.Range(r.lo, r.hi, func(it btree.Item) bool {
		s.Tn++
		clock, tracked := p.trk.Clock(it.Key)
		s.Benefit += p.trk.Coldness(it.Key)
		if tracked {
			popular += decider.PinProbability(clock)
		}
		for _, t := range r.tables {
			if t.MayContain(it.Key) {
				overlap++
				break
			}
		}
		return true
	})
	for _, t := range r.tables {
		s.Tf += float64(t.Count())
	}
	p.chargeCPU(compClk, time.Duration(s.Tn+s.Tf)*p.opts.CPU.PreciseScanPerObject)
	if s.Tn > 0 {
		s.P = popular / s.Tn
	}
	if s.Tf > 0 {
		s.O = float64(overlap) / s.Tf
	}
	return s
}

// compactRange merges the NVM objects of a key range with its overlapping
// SST files (§4.2, §6): unpinned NVM objects demote to flash, stale flash
// versions die, tombstones annihilate, and (when enabled) hot flash objects
// promote to NVM. forceAll ignores pinning (space-safety demotion).
// Data-structure changes apply atomically under the partition lock; I/O
// time accrues on compClk.
func (p *partition) compactRange(compClk *simdev.Clock, r candRange, allowDemote, allowPromote, forceAll bool) (demoted, promoted int) {
	cpu := p.opts.CPU
	decider := p.pinDecider()
	// Demotion compactions exist to free space: only promote into room
	// below the low watermark, or the job undoes its own work and the
	// partition thrashes between tiers. Read-triggered (promotion-only)
	// jobs may fill up to the high watermark.
	promoteWM := p.opts.HighWatermark
	if allowDemote {
		promoteWM = p.opts.LowWatermark
	}

	// Phase 1: classify NVM objects in the range.
	type nvmObj struct {
		key []byte
		loc slab.Loc
	}
	var demoteObjs []nvmObj
	pinnedKeys := map[string]bool{}
	p.index.Range(r.lo, r.hi, func(it btree.Item) bool {
		key := it.Key
		if !allowDemote {
			pinnedKeys[string(key)] = true
			return true
		}
		if !forceAll {
			clock, tracked := p.trk.Clock(key)
			if decider.ShouldPin(clock, tracked, p.rng) {
				pinnedKeys[string(key)] = true
				return true
			}
		}
		demoteObjs = append(demoteObjs, nvmObj{key, slab.Loc(it.Val)})
		return true
	})

	// Read the records being demoted from the slabs. The reads are
	// independent random NVM pages (the tiny-object pain point of §7.3),
	// so the job issues them concurrently: the round advances to the
	// completion of the slowest read, not their sum. Record bytes land in
	// the partition's reusable arena (one flat buffer) instead of two
	// allocations per record; the views are built after the arena stops
	// growing.
	type demoteRef struct {
		keyOff, keyLen, valLen int
		version                uint64
		tomb                   bool
	}
	arena := p.compArena[:0]
	refs := make([]demoteRef, 0, len(demoteObjs))
	readStart := compClk.Now()
	maxEnd := readStart
	for _, o := range demoteObjs {
		tmp := simdev.NewBGClock()
		tmp.AdvanceTo(readStart)
		rec, err := p.slabs.GetScratch(tmp, o.loc)
		if tmp.Now() > maxEnd {
			maxEnd = tmp.Now()
		}
		if err != nil {
			continue // slot raced free; skip
		}
		refs = append(refs, demoteRef{len(arena), len(rec.Key), len(rec.Value), rec.Version, rec.Tombstone})
		arena = append(arena, rec.Key...)
		arena = append(arena, rec.Value...)
	}
	p.compArena = arena
	demoteRecs := make([]sst.Record, len(refs))
	for i, rf := range refs {
		demoteRecs[i] = sst.Record{
			Key:       arena[rf.keyOff : rf.keyOff+rf.keyLen : rf.keyOff+rf.keyLen],
			Value:     arena[rf.keyOff+rf.keyLen : rf.keyOff+rf.keyLen+rf.valLen : rf.keyOff+rf.keyLen+rf.valLen],
			Version:   rf.version,
			Tombstone: rf.tomb,
		}
	}
	compClk.AdvanceTo(maxEnd)

	// Phase 2: read all overlapping SST objects (sequential flash reads).
	var flashRecs []sst.Record
	for _, t := range r.tables {
		p.stats.FlashBytesRead += t.Size()
		t.ReadAll(compClk, func(rec sst.Record) error {
			// The views pin their per-block buffers for the merge's
			// lifetime — no per-record copies.
			flashRecs = append(flashRecs, rec)
			return nil
		})
	}

	// Phase 3: merge. Both inputs are sorted; NVM versions win ties.
	out := newSSTSplitter(p, compClk, &p.stats)
	ni, fi := 0, 0
	emitFlash := func(rec sst.Record) {
		idx := p.opts.KeyIndex(rec.Key)
		if allowPromote {
			clock, tracked := p.trk.Clock(rec.Key)
			if decider.ShouldPin(clock, tracked, p.rng) && p.nvmHasRoom(rec, promoteWM) {
				if p.promoteToNVM(compClk, rec) {
					ci := p.slabs.ClassOf(len(rec.Key), len(rec.Value))
					p.spaceCredit -= int64(p.slabs.ClassSize(ci))
					p.bkt.OnPromote(idx)
					p.trk.SetLocation(rec.Key, tracker.NVM)
					promoted++
					return
				}
			}
		}
		out.add(rec)
	}
	mergedKeys := 0
	for ni < len(demoteRecs) || fi < len(flashRecs) {
		mergedKeys++
		var cmp int
		switch {
		case ni >= len(demoteRecs):
			cmp = 1
		case fi >= len(flashRecs):
			cmp = -1
		default:
			cmp = bytes.Compare(demoteRecs[ni].Key, flashRecs[fi].Key)
		}
		switch {
		case cmp < 0: // NVM-only
			rec := demoteRecs[ni]
			ni++
			if rec.Tombstone {
				// No flash version: the tombstone dies here.
				p.dropNVM(compClk, rec.Key, true)
				p.stats.DroppedTombstones++
				continue
			}
			out.add(rec)
			p.demoteBookkeeping(compClk, rec)
			demoted++
		case cmp > 0: // flash-only
			rec := flashRecs[fi]
			fi++
			if pinnedKeys[string(rec.Key)] {
				// A newer pinned NVM version shadows this one.
				p.bkt.OnFlashDelete(p.opts.KeyIndex(rec.Key))
				p.stats.DroppedStale++
				continue
			}
			emitFlash(rec)
		default: // same key on both tiers: NVM is newer (§6)
			rec := demoteRecs[ni]
			ni++
			fi++
			p.stats.DroppedStale++
			if rec.Tombstone {
				p.dropNVM(compClk, rec.Key, true)
				p.bkt.OnFlashDelete(p.opts.KeyIndex(rec.Key))
				p.stats.DroppedTombstones++
				continue
			}
			out.add(rec)
			p.demoteBookkeeping(compClk, rec)
			demoted++
		}
	}
	p.chargeCPU(compClk, time.Duration(mergedKeys)*cpu.MergePerKey)
	newTables := out.finish()
	if len(newTables) > 0 || len(r.tables) > 0 {
		if err := p.man.Apply(newTables, r.tables); err != nil {
			// The journal edit could not be made durable, so the manifest
			// rolled the commit back — but this inline merge has already
			// freed the demoted records' slab slots, so the round's output
			// tables are now their only copy and they are not reachable
			// through the (unchanged) live set. Degrade: writes stop, the
			// checkpoint guard in syncSlabs keeps their WAL records in the
			// log, and the reopen that recovers from Degraded replays them
			// (the un-journaled SSTs are removed as orphans).
			if p.health != nil {
				p.health.degrade("compaction commit", err)
				p.obs.events.Emit("compaction_commit_failed",
					"partition", p.id, "err", err.Error())
				return demoted, promoted
			}
			// In-memory simulation (no health tracking): manifest
			// persistence cannot fail unless the flash device is full;
			// surface loudly in development.
			panic(fmt.Sprintf("core: manifest apply: %v", err))
		}
	}
	p.stats.Demoted += int64(demoted)
	p.stats.Promoted += int64(promoted)
	return demoted, promoted
}

// demoteBookkeeping frees the slab slot and flips all metadata after a
// record moved to flash.
func (p *partition) demoteBookkeeping(compClk *simdev.Clock, rec sst.Record) {
	p.dropNVM(compClk, rec.Key, false)
	idx := p.opts.KeyIndex(rec.Key)
	p.bkt.OnDemote(idx)
	p.trk.SetLocation(rec.Key, tracker.Flash)
}

// dropNVM removes a key's NVM presence (slot + index); forget=true also
// clears popularity state (tombstones).
func (p *partition) dropNVM(compClk *simdev.Clock, key []byte, forget bool) {
	if v, ok := p.index.Get(key); ok {
		p.slabs.FreeSlot(compClk, slab.Loc(v))
		p.index.Delete(key)
	}
	if forget {
		p.bkt.OnNVMDelete(p.opts.KeyIndex(key))
		p.trk.Forget(key)
	}
}

// nvmHasRoom checks the promotion headroom against a watermark: promotions
// are expensive — they take up space a compaction may have just freed
// (§5.3).
func (p *partition) nvmHasRoom(rec sst.Record, watermark float64) bool {
	ci := p.slabs.ClassOf(len(rec.Key), len(rec.Value))
	if ci < 0 {
		return false
	}
	slotSize := int64(p.slabs.ClassSize(ci))
	return p.usage()+slotSize < int64(float64(p.nvmBudget)*watermark)
}

// pinDecider builds the mapper's pin decider with the effective threshold
// capped so the expected pinned bytes never exceed ~80% of the NVM budget:
// with a generous threshold and a small fast tier, pinning more than NVM
// can hold would make every compaction fight the mapper for space.
func (p *partition) pinDecider() mapper.Decider {
	thr := p.pinThreshold
	// The pinned set must fit comfortably BELOW the low watermark, or
	// every compaction ends up force-demoting hot objects just to make
	// space — a demote/re-insert thrash cycle.
	capFrac := p.opts.LowWatermark - 0.15
	if capFrac < 0.3 {
		capFrac = 0.3
	}
	if n := p.trk.Len(); n > 0 {
		avg := int64(1024)
		if lo := p.slabs.LiveObjects(); lo > 0 {
			avg = p.slabs.LiveBytes() / int64(lo)
		}
		if avg > 0 {
			maxPinnable := float64(p.nvmBudget) * capFrac / float64(avg)
			if c := maxPinnable / float64(n); c < thr {
				thr = c
			}
		}
	}
	return mapper.New(thr).NewDecider(p.trk.Distribution())
}

// promoteToNVM writes a flash record into the slabs.
func (p *partition) promoteToNVM(compClk *simdev.Clock, rec sst.Record) bool {
	loc, err := p.slabs.Put(compClk, slab.Record{
		Key: rec.Key, Value: rec.Value, Version: rec.Version, Tombstone: rec.Tombstone,
	})
	if err != nil {
		return false
	}
	p.index.Insert(rec.Key, uint64(loc))
	return true
}

// sstSplitter writes merged output into SSTs of at most TargetSSTBytes.
// Write-volume counters go to stats — the partition's own Stats for inline
// (sync) compactions, a job-local Stats for background ones (the async
// worker only touches p.stats under the partition lock, at commit).
type sstSplitter struct {
	p       *partition
	compClk *simdev.Clock
	stats   *Stats
	w       *sst.Writer
	tables  []*sst.Table
}

func newSSTSplitter(p *partition, compClk *simdev.Clock, stats *Stats) *sstSplitter {
	return &sstSplitter{p: p, compClk: compClk, stats: stats}
}

func (s *sstSplitter) add(rec sst.Record) {
	if s.w == nil {
		name := s.p.opts.Flash.NextFileName(fmt.Sprintf("p%d-sst", s.p.id))
		s.w = sst.NewWriterSize(s.p.opts.Flash, s.p.opts.Cache, name, s.p.opts.BlockSize, int(s.p.opts.TargetSSTBytes))
	}
	if err := s.w.Add(rec); err != nil {
		panic(fmt.Sprintf("core: sst writer: %v", err)) // merge emits sorted unique keys
	}
	if s.w.EstimatedSize() >= s.p.opts.TargetSSTBytes {
		s.cut()
	}
}

func (s *sstSplitter) cut() {
	if s.w == nil || s.w.Count() == 0 {
		return
	}
	t, err := s.w.Finish(s.compClk)
	if err != nil {
		panic(fmt.Sprintf("core: sst finish: %v", err))
	}
	s.stats.FlashBytesWritten += t.Size()
	s.tables = append(s.tables, t)
	s.w = nil
}

func (s *sstSplitter) finish() []*sst.Table {
	s.cut()
	return s.tables
}

// runPromotionCompaction is the invocation step of read-triggered
// compactions: pick the range with the most hot flash objects and promote.
func (p *partition) runPromotionCompaction() {
	compClk := simdev.NewBGClock()
	compClk.AdvanceTo(p.clk.Now())
	start := compClk.Now()

	compClk.AdvanceTo(p.compEndAt) // serial with the demotion job
	snap := p.man.Acquire()
	if snap.Len() == 0 {
		// Nothing on flash: nothing to promote. Checked before building
		// candidate ranges, which would be pure wasted work here.
		snap.Release()
		return
	}
	ranges := p.buildRanges(snap.Tables())
	bestIdx := pickPromotionRange(p, compClk, ranges)
	if bestIdx < 0 {
		snap.Release()
		return
	}
	r := p.retainRange(ranges[bestIdx])
	snap.Release()
	_, promoted := p.compactRange(compClk, r, false, true, false)
	p.stats.Compactions++
	p.stats.ReadTriggeredComps++
	p.stats.CompactionTime += time.Duration(compClk.Now() - start)
	if compClk.Now() > p.compEndAt {
		p.compEndAt = compClk.Now()
	}
	p.publishView()
	_ = promoted
}

// autoTune is the hill-climbing pinning-threshold tuner the paper leaves
// as future work (§7.4): measure the window's throughput, keep walking the
// threshold in the current direction while throughput improves, reverse
// otherwise. Called with the partition lock held.
func (p *partition) autoTune() {
	p.tuneOps++
	if p.tuneOps < p.opts.AutoTuneWindow {
		return
	}
	now := p.clk.Now()
	window := now - p.tuneLastT
	p.tuneOps = 0
	p.tuneLastT = now
	if window <= 0 {
		return
	}
	rate := float64(p.opts.AutoTuneWindow) / (float64(window) / 1e9)
	if p.tuneLastRate > 0 && rate < p.tuneLastRate {
		p.tuneDir = -p.tuneDir // got worse: reverse direction
	}
	p.tuneLastRate = rate
	p.pinThreshold += p.tuneDir
	if p.pinThreshold < 0.05 {
		p.pinThreshold = 0.05
		p.tuneDir = p.opts.AutoTuneStep
	}
	if p.pinThreshold > 0.95 {
		p.pinThreshold = 0.95
		p.tuneDir = -p.opts.AutoTuneStep
	}
}

// onOp advances the read-trigger state machine (§5.3). Called with the
// partition lock held, after the operation's own bookkeeping.
func (rt *readTriggerState) onOp(p *partition, isRead bool) {
	if p.opts.AutoTuneThreshold {
		p.autoTune()
	}
	o := p.opts.ReadTrigger
	if !o.Enabled {
		return
	}
	rt.opsInPhase++
	if isRead {
		rt.reads++
	} else {
		rt.writes++
	}
	switch rt.phase {
	case rtDetect:
		window := o.Epoch / 10
		if window < 100 {
			window = 100
		}
		if rt.opsInPhase < window {
			return
		}
		total := rt.reads + rt.writes
		readFrac := float64(rt.reads) / float64(total)
		if readFrac >= o.ReadHeavyFraction && p.trk.FlashFraction() >= o.MinFlashFraction {
			rt.phase = rtActive
			rt.lastRatio = rt.ratio()
			rt.resetWindow()
			p.triggerPromotion()
		} else {
			rt.resetWindow()
		}
	case rtActive:
		interval := o.Epoch / 4
		if interval < 1 {
			interval = 1
		}
		if rt.opsInPhase%interval == 0 && rt.opsInPhase < o.Epoch {
			p.triggerPromotion()
		}
		if rt.opsInPhase >= o.Epoch {
			newRatio := rt.ratio()
			if newRatio-rt.lastRatio >= o.ImproveDelta {
				rt.lastRatio = newRatio
				rt.resetWindow() // keep compacting next epoch
				p.triggerPromotion()
			} else {
				rt.phase = rtCooldown
				rt.resetWindow()
			}
		}
	case rtCooldown:
		if rt.opsInPhase >= o.Cooldown {
			rt.phase = rtDetect
			rt.resetWindow()
		}
	}
}

func (rt *readTriggerState) ratio() float64 {
	total := rt.nvmReads + rt.flashReads
	if total == 0 {
		return 0
	}
	return float64(rt.nvmReads) / float64(total)
}

func (rt *readTriggerState) resetWindow() {
	rt.opsInPhase = 0
	rt.reads, rt.writes = 0, 0
	rt.nvmReads, rt.flashReads = 0, 0
}
