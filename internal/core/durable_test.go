package core

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/prismdb/prismdb/internal/storage"
)

// durableOptions is testOptions with a real data directory behind the
// devices. Every call builds fresh devices — reopening a DB always goes
// through new simdev instances adopting the on-disk files, like a new
// process would.
func durableOptions(dir string) Options {
	o := testOptions()
	o.DataDir = dir
	return o
}

func mustPut(t *testing.T, db *DB, k, v []byte) {
	t.Helper()
	if _, err := db.Put(k, v); err != nil {
		t.Fatal(err)
	}
}

// checkKeys verifies keys [0,n) hold their expected values, except those in
// deleted, which must be absent.
func checkKeys(t *testing.T, db *DB, n, size int, deleted map[int]bool) {
	t.Helper()
	for i := 0; i < n; i++ {
		v, _, _, err := db.Get(key(i))
		if err != nil {
			t.Fatalf("get key %d: %v", i, err)
		}
		if deleted[i] {
			if v != nil {
				t.Fatalf("deleted key %d resurrected with %d bytes", i, len(v))
			}
			continue
		}
		if !bytes.Equal(v, val(i, size)) {
			t.Fatalf("key %d: got %d bytes, want val(%d, %d)", i, len(v), i, size)
		}
	}
}

func TestDurableReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	const n = 400 // ~400 KB of objects: close to the NVM budget, so SSTs exist
	deleted := map[int]bool{7: true, 130: true, 388: true}
	for i := 0; i < n; i++ {
		mustPut(t, db, key(i), val(i, 1024))
	}
	for i := range deleted {
		if _, err := db.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	ps := db.PersistenceStats()
	if !ps.Durable || ps.WALRecords == 0 || ps.WALFsyncs == 0 {
		t.Fatalf("persistence stats while open = %+v", ps)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = Open(durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	checkKeys(t, db, n, 1024, deleted)
	ps = db.PersistenceStats()
	if ps.RecoveryRecords != 0 {
		// A clean Close checkpoints, so nothing is left in the WAL tail.
		t.Fatalf("clean shutdown replayed %d WAL records", ps.RecoveryRecords)
	}
	if ps.LastRecoveryTruncatedBytes != 0 || ps.OrphanSSTsRemoved != 0 {
		t.Fatalf("clean shutdown recovery = %+v", ps)
	}
}

func TestDurableCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	deleted := map[int]bool{3: true, 150: true, 299: true}
	for i := 0; i < n; i++ {
		mustPut(t, db, key(i), val(i, 1024))
	}
	for i := range deleted {
		if _, err := db.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Every one of those operations was acknowledged, and the default mode
	// is SyncEvery: acknowledgement implies an fdatasync covered it. kill -9
	// now — no flush, no checkpoint, no clean close.
	db.crashDurable()

	db, err = Open(durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	checkKeys(t, db, n, 1024, deleted)
	ps := db.PersistenceStats()
	if ps.RecoveryRecords == 0 {
		t.Fatal("crash recovery replayed no WAL records")
	}
	if ps.RecoveryDuration <= 0 {
		t.Fatalf("recovery duration = %v", ps.RecoveryDuration)
	}

	// Recover-then-recover: crash again with no intervening writes. The
	// first recovery checkpointed and pruned the replayed segments, so the
	// second replays an empty tail and converges on the same state.
	db.crashDurable()
	db, err = Open(durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	checkKeys(t, db, n, 1024, deleted)
	if ps := db.PersistenceStats(); ps.RecoveryRecords != 0 {
		t.Fatalf("second crash recovery replayed %d records, want 0 (checkpointed)", ps.RecoveryRecords)
	}
}

func TestDurableCrashAfterMoreWrites(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		mustPut(t, db, key(i), val(i, 512))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Overwrite half the keys after a clean reopen, then crash: recovery
	// must apply the WAL on top of the recovered slab/SST state and keep the
	// *newest* version of every key.
	db, err = Open(durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 2 {
		mustPut(t, db, key(i), val(i+1000, 512))
	}
	db.crashDurable()

	db, err = Open(durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < n; i++ {
		want := val(i, 512)
		if i%2 == 0 {
			want = val(i+1000, 512)
		}
		v, _, _, err := db.Get(key(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(v, want) {
			t.Fatalf("key %d: stale version after crash recovery", i)
		}
	}
}

func TestDurableTornWALTail(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		mustPut(t, db, key(i), val(i, 512))
	}
	db.crashDurable()

	// Simulate the torn final append kill -9 leaves behind: a partial frame
	// at the tail of the last WAL segment.
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("wal segments: %v, err %v", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{200, 1, 0, 0, 0xaa, 0xbb}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db, err = Open(durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	checkKeys(t, db, n, 512, nil)
	if ps := db.PersistenceStats(); ps.LastRecoveryTruncatedBytes != 6 {
		t.Fatalf("LastRecoveryTruncatedBytes = %d, want 6", ps.LastRecoveryTruncatedBytes)
	}
}

func TestDurableOrphanSSTRemoved(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		mustPut(t, db, key(i), val(i, 1024))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// An SST written by a compaction that crashed before its journal commit:
	// present in flash/, absent from the manifest journal. Recovery must
	// delete it before the device adopts the directory.
	orphan := filepath.Join(dir, "flash", "999999-orphan.sst")
	if err := os.WriteFile(orphan, []byte("never committed"), 0o644); err != nil {
		t.Fatal(err)
	}

	db, err = Open(durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if ps := db.PersistenceStats(); ps.OrphanSSTsRemoved != 1 {
		t.Fatalf("OrphanSSTsRemoved = %d, want 1", ps.OrphanSSTsRemoved)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan SST still on disk (stat err %v)", err)
	}
	checkKeys(t, db, n, 1024, nil)
}

func TestDurableLockExclusion(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := Open(durableOptions(dir)); err == nil || !strings.Contains(err.Error(), "locked") {
		t.Fatalf("second Open on a held data dir: %v, want lock error", err)
	}
}

func TestDurableSyncModes(t *testing.T) {
	for _, mode := range []storage.SyncMode{storage.SyncEvery, storage.SyncGroup, storage.SyncNone} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			o := durableOptions(dir)
			o.WALSync = mode
			o.WALFsyncEvery = 16
			db, err := Open(o)
			if err != nil {
				t.Fatal(err)
			}
			const n = 150
			for i := 0; i < n; i++ {
				mustPut(t, db, key(i), val(i, 512))
			}
			// A clean Close flushes and fsyncs in every mode.
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			o2 := durableOptions(dir)
			o2.WALSync = mode
			db, err = Open(o2)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			checkKeys(t, db, n, 512, nil)
		})
	}
}

func TestDurableAsyncCompactionCrash(t *testing.T) {
	dir := t.TempDir()
	o := durableOptions(dir)
	o.CompactionMode = CompactionAsync
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		mustPut(t, db, key(i), val(i, 1024))
	}
	// Crash with background compactions potentially mid-flight: a merge
	// round either committed through the journal (crash-atomic) or left
	// orphan SSTs that recovery removes.
	db.crashDurable()

	o2 := durableOptions(dir)
	o2.CompactionMode = CompactionAsync
	db, err = Open(o2)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	checkKeys(t, db, n, 1024, nil)
}

func TestInMemoryPathUnchanged(t *testing.T) {
	run := func() (Stats, string) {
		db, err := Open(testOptions())
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		for i := 0; i < 500; i++ {
			mustPut(t, db, key(i%200), val(i, 1024))
		}
		for i := 0; i < 200; i++ {
			if _, _, _, err := db.Get(key(i)); err != nil {
				t.Fatal(err)
			}
		}
		if ps := db.PersistenceStats(); ps.Durable {
			t.Fatal("in-memory DB claims to be durable")
		}
		return db.Stats(), db.Elapsed().String()
	}
	// With DataDir unset nothing touches the filesystem, and the simulation
	// stays deterministic: two identical runs agree bit for bit.
	s1, e1 := run()
	s2, e2 := run()
	if s1 != s2 || e1 != e2 {
		t.Fatalf("in-memory runs diverged:\n%+v @ %s\n%+v @ %s", s1, e1, s2, e2)
	}
}

func TestDurableFaultPoisonsWrites(t *testing.T) {
	dir := t.TempDir()
	o := durableOptions(dir)
	fi := &storage.FaultInjector{}
	o.Faults = fi
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		mustPut(t, db, key(i), val(i, 512))
	}
	// Fail the next WAL fsync (or slab write — whichever I/O comes first,
	// the write path must surface an error rather than acknowledge).
	fi.Arm(1, storage.FaultError)
	sawErr := false
	for i := 20; i < 40 && !sawErr; i++ {
		// Only THAT a Put failed matters here; name the error perr so it
		// cannot shadow the Open error above.
		if _, perr := db.Put(key(i), val(i, 512)); perr != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("no Put failed after arming a fault")
	}
	db.crashDurable()

	fi.Reset()
	o2 := durableOptions(dir)
	o2.Faults = fi
	db, err = Open(o2)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// The 20 pre-fault writes were acknowledged durably and must survive.
	checkKeys(t, db, 20, 512, nil)
}

// TestDurableFailedOpenDoesNotDestroyWAL covers the failed-recovery abort
// path: when Open fails mid-WAL-replay (corruption), the un-replayed
// segments must survive, so the failure stays loud on every retry. The bug
// this pins down: aborting via the clean-shutdown path pruned the WAL, and
// a second Open silently succeeded with the acknowledged writes gone.
func TestDurableFailedOpenDoesNotDestroyWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		mustPut(t, db, key(i), val(i, 64))
	}
	db.crashDurable()

	// Corrupt the first record's payload in the oldest segment: a checksum
	// mismatch on a complete mid-log record is a hard replay error.
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "*"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("wal segments after crash: %v (err %v)", segs, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, 10); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := Open(durableOptions(dir)); err == nil {
		t.Fatal("open succeeded over a corrupt WAL record")
	}
	// The failed open must not have consumed the WAL: retrying fails just
	// as loudly, and the segments are still on disk for forensics.
	if _, err := Open(durableOptions(dir)); err == nil {
		t.Fatal("second open silently succeeded: the failed open destroyed the WAL")
	}
	left, _ := filepath.Glob(filepath.Join(dir, "wal", "*"))
	if len(left) == 0 {
		t.Fatal("failed opens removed the WAL segments")
	}
}

// TestDurableDeleteUnderPinnedEpochSurvivesCheckpoint covers the
// delete-vs-checkpoint ordering: while an iterator pins the reclamation
// epoch, a delete's slot-zeroing write is deferred, so its DEL record is
// the only durable trace. Checkpoints must refuse to declare that record
// redundant; pre-fix, a rotation-triggered checkpoint pruned it and a
// crash resurrected the acknowledged delete from the un-zeroed slab slot.
func TestDurableDeleteUnderPinnedEpochSurvivesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	o := durableOptions(dir)
	o.WALSegmentBytes = 4096 // rotate (and attempt a checkpoint) every ~4 puts
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mustPut(t, db, key(i), val(i, 1024))
	}
	it := db.NewIterator(nil, 0) // pins the epoch; deliberately never closed
	_ = it
	if _, err := db.Delete(key(1)); err != nil {
		t.Fatal(err)
	}
	// Filler writes force several segment rotations, each of which tries to
	// checkpoint; the pinned epoch must refuse every one.
	for i := 0; i < 30; i++ {
		mustPut(t, db, key(100+i), val(100+i, 1024))
	}
	deadline := time.Now().Add(5 * time.Second)
	for db.PersistenceStats().WALSegments < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no WAL rotation under filler load: %+v", db.PersistenceStats())
		}
		time.Sleep(time.Millisecond)
	}
	if ps := db.PersistenceStats(); ps.Checkpoints != 0 {
		t.Fatalf("checkpoint ran with a pinned epoch deferring the delete's free: %+v", ps)
	}
	db.crashDurable()

	db2, err := Open(durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, _, _, err := db2.Get(key(1))
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("deleted key resurrected after crash with %d bytes", len(v))
	}
	for _, i := range []int{0, 2} {
		v, _, _, err := db2.Get(key(i))
		if err != nil || !bytes.Equal(v, val(i, 1024)) {
			t.Fatalf("key %d after recovery: %d bytes, err %v", i, len(v), err)
		}
	}
}
