package core

import (
	"testing"
)

// The paper leaves a scan prefetcher as future work (§7.2); with it on,
// sequential scans over flash-resident data should cost far fewer device
// round-trips.
func TestScanPrefetchReducesScanTime(t *testing.T) {
	run := func(prefetch bool) (total int64) {
		o := testOptions()
		o.ScanPrefetch = prefetch
		o.Seed = 5
		db, _ := Open(o)
		for i := 0; i < 2500; i++ {
			db.Put(key(i), val(i, 400)) // most of it demotes to flash
		}
		for s := 0; s < 40; s++ {
			_, lat, err := db.Scan(key(s*50), 60)
			if err != nil {
				t.Fatal(err)
			}
			total += int64(lat)
		}
		return total
	}
	slow := run(false)
	fast := run(true)
	if fast*2 > slow {
		t.Fatalf("prefetch scan time %d not ≪ non-prefetch %d", fast, slow)
	}
}

// The hill-climbing tuner (§7.4 future work) must move thresholds somewhere
// and keep them in bounds; under a write-only flood the low-threshold side
// of Fig 14c is the profitable direction.
func TestAutoTuneThresholdMovesAndStaysBounded(t *testing.T) {
	o := testOptions()
	o.AutoTuneThreshold = true
	o.AutoTuneWindow = 500
	o.AutoTuneStep = 0.1
	o.PinningThreshold = 0.7
	db, _ := Open(o)
	for i := 0; i < 20000; i++ {
		db.Put(key(i%3000), val(i, 400))
	}
	ths := db.PinThresholds()
	moved := false
	for _, th := range ths {
		if th < 0.05-1e-9 || th > 0.95+1e-9 {
			t.Fatalf("threshold %f out of bounds", th)
		}
		if th != 0.7 {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("auto-tuner never adjusted thresholds: %v", ths)
	}
}

// Without auto-tuning the threshold must stay exactly where configured.
func TestThresholdStableWithoutAutoTune(t *testing.T) {
	o := testOptions()
	o.PinningThreshold = 0.6
	db, _ := Open(o)
	for i := 0; i < 5000; i++ {
		db.Put(key(i%1000), val(i, 400))
	}
	for _, th := range db.PinThresholds() {
		if th != 0.6 {
			t.Fatalf("threshold drifted to %f", th)
		}
	}
}
