package core

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/prismdb/prismdb/internal/storage"
)

// waitForState polls Health until the wanted state appears. Degrade
// transitions run on whichever goroutine hit the error (the WAL flusher,
// the watchdog, the checkpoint caller), so a writer that just saw its Put
// fail may observe the state store a beat later.
func waitForState(t *testing.T, db *DB, want HealthState) Health {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		h := db.Health()
		if h.State == want {
			return h
		}
		if time.Now().After(deadline) {
			t.Fatalf("health = %+v, want state %v", h, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFaultMatrix drives the health state machine through every sticky
// storage failure the issue's matrix names: WAL append, WAL fsync, manifest
// journal write, checkpoint fsync, ENOSPC, and a watchdog-declared I/O
// stall. Every row must end in the same place — Degraded, writes refused
// fast with ErrReadOnly, reads still serving, no write acknowledged after
// its durability failed, and a clean reopen back to Healthy with every
// acknowledged write intact.
func TestFaultMatrix(t *testing.T) {
	const base = 20 // keys written (and acked) before the fault is armed

	// putUntil writes key(base+j) until one fails, returning how many of
	// them were acknowledged and the error that stopped the loop.
	putUntil := func(limit int) func(*DB) (int, error) {
		return func(db *DB) (int, error) {
			for j := 0; j < limit; j++ {
				if _, err := db.Put(key(base+j), val(base+j, 1024)); err != nil {
					return j, err
				}
			}
			return limit, nil
		}
	}

	rows := []struct {
		name string
		tune func(o *Options)
		arm  func(fi *storage.FaultInjector)
		// trigger provokes the armed fault, returning how many additional
		// keys (key(base)...) were acknowledged and the error observed.
		trigger func(db *DB) (int, error)
		// check, optional, inspects the triggering error.
		check func(t *testing.T, err error)
		// lossyReads: degraded reads must not error, but may miss — the
		// journal row's failed inline commit leaves the round's demoted
		// records reachable only through their WAL entries until reopen.
		lossyReads bool
	}{
		{
			// The very next WAL I/O is the segment append: the record never
			// reaches disk and the writer is failed before acknowledgement.
			name:    "wal-append-error",
			arm:     func(fi *storage.FaultInjector) { fi.ArmScoped(storage.ScopeWAL, 1, storage.FaultError) },
			trigger: putUntil(20),
		},
		{
			// WAL I/O #1 is the append write, #2 the fdatasync covering it:
			// the record is on disk but its durability was never proven, so
			// the write must still fail — never ack after a failed fsync.
			name:    "wal-fsync-error",
			arm:     func(fi *storage.FaultInjector) { fi.ArmScoped(storage.ScopeWAL, 2, storage.FaultError) },
			trigger: putUntil(20),
		},
		{
			// Journal-scoped: the first MANIFEST write after arming is the
			// inline (CompactionSync) compaction commit once the writes
			// below fill the 512 KiB NVM budget. The commit aborts, the DB
			// degrades, and the next put bounces off the gate.
			name:       "journal-logedit-error",
			arm:        func(fi *storage.FaultInjector) { fi.ArmScoped(storage.ScopeJournal, 1, storage.FaultError) },
			trigger:    putUntil(800),
			lossyReads: true,
		},
		{
			// Checkpoint fsync: with no concurrent writes the first
			// slab-scoped I/O is syncSlabs' per-partition fsync itself.
			name: "checkpoint-fsync-error",
			arm:  func(fi *storage.FaultInjector) { fi.ArmScoped(storage.ScopeSlab, 1, storage.FaultError) },
			trigger: func(db *DB) (int, error) {
				err := db.syncSlabs()
				if err == nil {
					return 0, nil
				}
				return 0, err
			},
		},
		{
			// A full disk is indistinguishable from FaultError to the state
			// machine, but the error chain must still say ENOSPC.
			name:    "enospc",
			arm:     func(fi *storage.FaultInjector) { fi.ArmScoped(storage.ScopeWAL, 1, storage.FaultENOSPC) },
			trigger: putUntil(20),
			check: func(t *testing.T, err error) {
				if !errors.Is(err, syscall.ENOSPC) {
					t.Fatalf("enospc row error = %v, want errors.Is ENOSPC", err)
				}
			},
		},
		{
			// The stall row: the I/O succeeds eventually, but 400ms late.
			// The watchdog (50ms deadline) must declare the stall and fail
			// the waiter long before the device comes back.
			name: "io-stall",
			tune: func(o *Options) { o.IOStallDeadline = 50 * time.Millisecond },
			arm: func(fi *storage.FaultInjector) {
				fi.ArmStall(storage.ScopeWAL, 1, 400*time.Millisecond)
			},
			trigger: putUntil(20),
			check: func(t *testing.T, err error) {
				if !errors.Is(err, storage.ErrIOStalled) {
					t.Fatalf("stall row error = %v, want errors.Is ErrIOStalled", err)
				}
			},
		},
	}

	for _, row := range rows {
		t.Run(row.name, func(t *testing.T) {
			dir := t.TempDir()
			fi := &storage.FaultInjector{}
			o := durableOptions(dir)
			o.Faults = fi
			if row.tune != nil {
				row.tune(&o)
			}
			db, err := Open(o)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < base; i++ {
				mustPut(t, db, key(i), val(i, 1024))
			}
			if h := db.Health(); h.State != StateHealthy || h.ReadOnly || h.Cause != "" {
				t.Fatalf("pre-fault health = %+v", h)
			}

			row.arm(fi)
			extra, ferr := row.trigger(db)
			if ferr == nil {
				t.Fatal("no operation failed after arming the fault")
			}
			if row.check != nil {
				row.check(t, ferr)
			}
			if !fi.Fired() {
				t.Fatalf("fault never fired; trigger error was %v", ferr)
			}

			h := waitForState(t, db, StateDegraded)
			if !h.ReadOnly || h.Cause == "" || h.Since.IsZero() {
				t.Fatalf("degraded health = %+v, want read-only with a cause and timestamp", h)
			}
			// Mutations fail fast with the typed error — no hang, no retry.
			if _, err := db.Put(key(9000), val(9000, 64)); !errors.Is(err, ErrReadOnly) {
				t.Fatalf("Put while degraded = %v, want ErrReadOnly", err)
			}
			if _, err := db.Delete(key(0)); !errors.Is(err, ErrReadOnly) {
				t.Fatalf("Delete while degraded = %v, want ErrReadOnly", err)
			}
			if _, err := db.PutBatch([]KV{{Key: key(9001), Value: val(9001, 64)}}); !errors.Is(err, ErrReadOnly) {
				t.Fatalf("PutBatch while degraded = %v, want ErrReadOnly", err)
			}
			// Lock-free reads keep serving the published views.
			if row.lossyReads {
				for i := 0; i < base; i++ {
					if _, _, _, err := db.Get(key(i)); err != nil {
						t.Fatalf("get key %d while degraded: %v", i, err)
					}
				}
			} else {
				checkKeys(t, db, base, 1024, nil)
			}
			it := db.NewIterator(nil, 0)
			seen := 0
			for it.Next() {
				seen++
			}
			if err := it.Close(); err != nil {
				t.Fatalf("iterator while degraded: %v", err)
			}
			if seen == 0 {
				t.Fatal("iterator while degraded saw nothing")
			}

			// Crash (the stall row's wedged flusher is joined by Kill), lift
			// the fault, reopen: recovery is a reopen, and every write that
			// was acknowledged must be there.
			db.crashDurable()
			fi.Reset()
			db2, err := Open(durableOptions(dir))
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			if h := db2.Health(); h.State != StateHealthy || h.ReadOnly {
				t.Fatalf("health after reopen = %+v, want healthy", h)
			}
			checkKeys(t, db2, base+extra, 1024, nil)
			// And the reopened DB accepts writes again.
			mustPut(t, db2, key(base+extra), val(base+extra, 1024))
		})
	}
}

// TestDegradeWakesParkedProducers pins the satellite bugfix: a producer
// parked on a full intent ring when the DB degrades must be woken and fail
// fast with the gate's ErrReadOnly — not sleep until some consumer drains
// a ring that no healthy apply will ever drain again.
func TestDegradeWakesParkedProducers(t *testing.T) {
	q := newWriteQueue()
	gateErr := errors.New("gate closed")
	var degraded sync.Map // simulate the health gate flipping
	q.gate = func() error {
		if _, ok := degraded.Load("x"); ok {
			return gateErr
		}
		return nil
	}

	for i := 0; i < writeRingSize; i++ {
		it := getIntent()
		it.op = intentPut
		if !q.push(it) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}

	const parked = 8
	var wg sync.WaitGroup
	errs := make([]error, parked)
	for g := 0; g < parked; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			it := getIntent()
			it.op = intentPut
			errs[g] = q.enqueue(it)
		}(g)
	}
	deadline := time.Now().Add(5 * time.Second)
	for q.parks.Load() < parked {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d producers parked", q.parks.Load(), parked)
		}
		runtime.Gosched()
	}

	// The degrade transition in miniature: flip the gate, then broadcast —
	// exactly what healthTracker's onDegrade callback does per partition.
	degraded.Store("x", true)
	q.wakeProducers()
	wg.Wait()
	for g, err := range errs {
		if !errors.Is(err, gateErr) {
			t.Fatalf("parked producer %d: err = %v, want the gate error", g, err)
		}
	}
}

// TestScrubSlabBitRotFails corrupts live NVM slab slots on disk under a
// running DB and asserts one scrub pass proves the loss: the CRC sweep
// must find the rot and move the DB to Failed — there is no redundant copy
// of an NVM-resident object, so this is not a quarantine-and-carry-on.
func TestScrubSlabBitRotFails(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		mustPut(t, db, key(i), val(i, 512))
	}

	// Flip bytes across a 4 KiB window in the middle of the fullest slab
	// class file. Slots are allocated densely from the front and nothing
	// has been demoted (the working set is far under the NVM budget), so
	// the window is covered with live slots; the 37-byte stride is smaller
	// than any payload, so at least one flip lands in CRC-protected bytes.
	slabs, err := filepath.Glob(filepath.Join(dir, "nvm", "*"))
	if err != nil || len(slabs) == 0 {
		t.Fatalf("slab files: %v (err %v)", slabs, err)
	}
	target, size := "", int64(0)
	for _, f := range slabs {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() > size {
			target, size = f, st.Size()
		}
	}
	f, err := os.OpenFile(target, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	start := size / 4
	for off := start; off < start+4096 && off < size; off += 37 {
		var b [1]byte
		if _, err := f.ReadAt(b[:], off); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0xff
		if _, err := f.WriteAt(b[:], off); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	db.scrubPass(nil)

	h := db.Health()
	if h.State != StateFailed || !h.ReadOnly || h.Cause == "" {
		t.Fatalf("health after slab rot scrub = %+v, want failed", h)
	}
	if got := db.obs.scrubBitRot.Value(); got == 0 {
		t.Fatal("scrub found rot but the bitrot counter is zero")
	}
	if _, err := db.Put(key(n), val(n, 512)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Put on a failed DB = %v, want ErrReadOnly", err)
	}
	db.crashDurable()
}

// TestScrubQuarantinesRottedSST corrupts a flash table on disk and asserts
// the scrub verdict for the redundant tier: the table is quarantined out of
// the manifest (journaled, so the removal is crash-durable), the file is
// preserved for post-mortem, reads fall through without erroring, and the
// DB stays Healthy — flash rot costs coverage, not the write path.
func TestScrubQuarantinesRottedSST(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	const n = 600 // ~600 KiB: past the 512 KiB NVM budget, so compaction built SSTs
	for i := 0; i < n; i++ {
		mustPut(t, db, key(i), val(i, 1024))
	}
	ssts, err := filepath.Glob(filepath.Join(dir, "flash", "*"))
	if err != nil || len(ssts) == 0 {
		t.Fatalf("no SSTs on disk to corrupt: %v (err %v)", ssts, err)
	}
	// Byte 16 of the file is inside data block 0 (blocks are written from
	// offset 0; the index trailer follows them).
	victim := ssts[0]
	f, err := os.OpenFile(victim, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], 16); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], 16); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db.scrubPass(nil)

	if got := db.obs.scrubQuarantine.Value(); got != 1 {
		t.Fatalf("quarantined tables = %d, want 1", got)
	}
	if h := db.Health(); h.State != StateHealthy || h.ReadOnly {
		t.Fatalf("health after SST quarantine = %+v, want healthy (flash rot is redundant-tier loss)", h)
	}
	if _, err := os.Stat(victim); err != nil {
		t.Fatalf("quarantined SST removed from disk (want preserved): %v", err)
	}
	// Reads fall through: every key either serves its true value (an NVM
	// or surviving-SST copy) or reports a clean miss — never an error,
	// never rotted bytes.
	misses := 0
	for i := 0; i < n; i++ {
		v, _, _, err := db.Get(key(i))
		if err != nil {
			t.Fatalf("get key %d after quarantine: %v", i, err)
		}
		if v == nil {
			misses++
			continue
		}
		want := val(i, 1024)
		if string(v) != string(want) {
			t.Fatalf("key %d served wrong bytes after quarantine", i)
		}
	}
	// Writes still work — and a clean close/reopen honors the journaled
	// quarantine rather than resurrecting the rotted table.
	mustPut(t, db, key(n), val(n, 1024))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(durableOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if h := db2.Health(); h.State != StateHealthy {
		t.Fatalf("health after reopen = %+v", h)
	}
	for i := 0; i <= n; i++ {
		if _, _, _, err := db2.Get(key(i)); err != nil {
			t.Fatalf("get key %d after reopen: %v", i, err)
		}
	}
}
