package core

import (
	"bytes"
	"container/heap"
	"sort"
	"time"

	"github.com/prismdb/prismdb/internal/btree"
	"github.com/prismdb/prismdb/internal/simdev"
	"github.com/prismdb/prismdb/internal/slab"
	"github.com/prismdb/prismdb/internal/sst"
)

// Iterator streams live objects in global key order: the paper's two-level
// iterator (§6) — a B-tree cursor over each partition's NVM index merged
// with block-streaming cursors over its flash SST log, NVM versions
// shadowing flash on ties and tombstones annihilating at the merge point —
// lifted to the DB level with a k-way heap across partitions, so it works
// identically under range and hash partitioning.
//
// Consistency: creation pins, per partition, one manifest snapshot (the
// flash file set, refcounted so compactions cannot delete tables under the
// scan) and one slab epoch (freed NVM slots stay readable and unrecycled,
// and in-place updates go copy-on-write, until the pin releases). The
// iterator therefore observes every key exactly once with the value it had
// at creation, across concurrent puts, deletes, and compaction
// demotions/promotions. Partitions are pinned sequentially, so the
// cross-partition consistency point is creation-ordered per partition, not
// a single global instant — the usual per-shard snapshot semantics.
// Cursors with nothing to contribute (partitions wholly below the start
// key) drop their pins immediately; the rest hold them until Close, during
// which their in-place updates run copy-on-write and their freed slots
// defer reclamation — keep iterators short-lived under write-heavy load.
//
// Clock ownership: the iterator owns a private virtual clock seeded from
// the issuing partition (the partition owning the start key), charges every
// device read and CPU cost of the scan to it, and folds it back into the
// issuing partition's clock at Close. Foreign partitions' worker clocks are
// never advanced — a scan's cost lands entirely on the clock of the worker
// that issued it, which is what lets the parallel bench driver run
// scan-heavy workloads without cross-partition time corruption.
//
// Key and Value return views valid until the next positioning call (Next,
// Seek, Close); callers that retain them must copy. An Iterator is not safe
// for concurrent use, but any number of Iterators may run concurrently with
// each other and with foreground operations.
type Iterator struct {
	db   *DB
	home *partition
	clk  *simdev.Clock

	curs []*partCursor
	pq   cursorPQ

	// limit, when non-zero, caps each partition's NVM index snapshot at
	// that many entries (Scan's n): bounded scans then copy O(n) instead
	// of O(NVM-resident tail) entries. Exhausting a capped snapshot
	// refills from the live index, so results are never truncated; keys
	// inserted after creation may appear past the cap (documented
	// read-committed tail). limit == 0 snapshots the full tail and is
	// fully consistent.
	limit int

	keyBuf, valBuf []byte
	key, val       []byte
	valid          bool
	err            error
	closed         bool
	startNs        int64
}

// NewIterator returns an iterator positioned at the first live key ≥ start
// (nil = the minimum key). limitHint, when > 0, tells the iterator the
// caller will consume at most that many entries, letting it bound its
// per-partition snapshot work (see Iterator.limit); pass 0 for an unbounded,
// fully snapshot-consistent scan. Callers must Close the iterator to
// release its snapshot pins and to charge the scan's virtual time to the
// issuing partition's clock.
func (db *DB) NewIterator(start []byte, limitHint int) *Iterator {
	if limitHint < 0 {
		limitHint = 0
	}
	if db.closed.Load() {
		// Born failed: Valid is false, Err and Close report ErrClosed, and
		// no pins were taken so Close has nothing to release.
		return &Iterator{db: db, clk: simdev.NewClock(), err: ErrClosed, closed: true}
	}
	it := &Iterator{db: db, limit: limitHint, clk: simdev.NewClock()}
	home := db.parts[0]
	if start != nil {
		home = db.partitionOf(start)
	}
	it.home = home
	home.mu.Lock()
	home.syncClockLocked() // include completed lock-free reads in the seed
	it.clk.AdvanceTo(home.clk.Now())
	it.startNs = it.clk.Now()
	home.stats.Scans++
	home.mu.Unlock()
	db.chargeCPU(it.clk, db.opts.CPU.OpBase)

	it.curs = make([]*partCursor, 0, len(db.parts))
	it.pq = make(cursorPQ, 0, len(db.parts))
	for _, p := range db.parts {
		c := newPartCursor(p, it, start)
		it.curs = append(it.curs, c)
		if c.position() {
			it.pq = append(it.pq, c)
		} else {
			c.release()
		}
	}
	heap.Init(&it.pq)
	it.advance()
	return it
}

// chargeCPU charges CPU work to clk through the shared core pool when one
// is configured (see partition.go's package-level helper).
func (db *DB) chargeCPU(clk *simdev.Clock, d time.Duration) {
	chargeCPU(db.opts.CPUPool, clk, d)
}

// Valid reports whether the iterator is positioned at a live entry.
func (it *Iterator) Valid() bool { return it.valid }

// Key returns the current key; valid until the next positioning call.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value; valid until the next positioning call.
func (it *Iterator) Value() []byte { return it.val }

// Err returns the first error the iterator encountered, if any.
func (it *Iterator) Err() error { return it.err }

// Next advances to the next live key in global order, reporting whether the
// iterator is still positioned at an entry.
func (it *Iterator) Next() bool {
	if it.closed || it.err != nil {
		return false
	}
	if it.db.closed.Load() {
		it.fail(ErrClosed)
		return false
	}
	return it.advance()
}

// Seek repositions the iterator at the first live key ≥ start and reports
// whether such a key exists. Seeking within an unbounded iterator's
// original range is a pure snapshot operation; seeking before the creation
// start key (or within a limitHint-bounded iterator) re-reads the live NVM
// index for the new range, while the flash view and slab epoch stay pinned.
func (it *Iterator) Seek(start []byte) bool {
	if it.closed || it.err != nil {
		return false
	}
	if it.db.closed.Load() {
		it.fail(ErrClosed)
		return false
	}
	it.pq = it.pq[:0]
	for _, c := range it.curs {
		c.seek(start)
		if c.position() {
			it.pq = append(it.pq, c)
		} else {
			c.release()
		}
	}
	heap.Init(&it.pq)
	return it.advance()
}

// fail poisons the iterator with err (first error wins), invalidating the
// position. Pins stay held until Close, which releases them as usual — a DB
// closing under an open iterator fails the scan, it does not leak epochs.
func (it *Iterator) fail(err error) {
	it.valid = false
	if it.err == nil {
		it.err = err
	}
}

// advance pops merged entries off the cursor heap until a live one
// surfaces, skipping tombstones (each still costs its merge step).
func (it *Iterator) advance() bool {
	it.valid = false
	cpu := it.db.opts.CPU
	for len(it.pq) > 0 {
		c := it.pq[0]
		key, val, live, err := c.emit()
		it.db.chargeCPU(it.clk, cpu.MergePerKey)
		if err != nil {
			it.err = err
			return false
		}
		if c.position() {
			heap.Fix(&it.pq, 0)
		} else {
			heap.Pop(&it.pq)
		}
		if live {
			it.key, it.val = key, val
			it.valid = true
			return true
		}
	}
	return false
}

// Latency returns the virtual time the scan has consumed so far on the
// issuing clock (creation costs included).
func (it *Iterator) Latency() time.Duration {
	return time.Duration(it.clk.Now() - it.startNs)
}

// Close releases every partition's snapshot pins, recycles the cursor
// buffers, and folds the iterator's virtual clock back into the issuing
// partition's worker clock. It is idempotent and returns Err.
func (it *Iterator) Close() error {
	if it.closed {
		return it.err
	}
	it.closed = true
	it.valid = false
	for _, c := range it.curs {
		c.release()
	}
	h := it.home
	h.mu.Lock()
	h.clk.AdvanceTo(it.clk.Now())
	h.casMaxVclock(h.clk.Now()) // lock-free reads issued next seed past the scan
	h.mu.Unlock()
	return it.err
}

// partCursor is one partition's half of the two-level iterator: a snapshot
// of the NVM index tail (keys alias the B-tree's immutable key slices; the
// slab epoch pin keeps their slots dereferenceable) merged with a chain of
// block-streaming cursors over the pinned manifest snapshot's disjoint
// tables.
type partCursor struct {
	p  *partition
	it *Iterator

	snap *sst.Snapshot

	entries   []nvmEntry
	ni        int
	truncated bool   // entries capped at it.limit; the live index may hold more
	snapFrom  []byte // first key the entry snapshot covers (nil = -∞)
	fromNil   bool   // snapshot taken from the minimum key

	tables []*sst.Table
	tblIdx int
	fIt    sst.Iter
	fOK    bool // fIt holds a table of the current chain

	released bool // pins dropped (exhausted cursor); Seek re-acquires

	cur []byte // current merged key, for heap ordering
}

func newPartCursor(p *partition, it *Iterator, start []byte) *partCursor {
	c := &partCursor{p: p, it: it}
	c.acquire(start)
	return c
}

// acquire takes the cursor's pins (slab epoch + manifest snapshot) and
// positions both levels at the first key ≥ start.
func (c *partCursor) acquire(start []byte) {
	p := c.p
	p.mu.Lock()
	//prismvet:ignore refpair cursor-scoped pin: partCursor.release (called by Iterator.Close and by the merge loop when the cursor is exhausted) is the matching UnpinEpoch
	p.slabs.PinEpoch()
	p.obs.epochPins.Inc()
	c.snap = p.man.Acquire()
	c.collectLocked(start)
	p.mu.Unlock()
	c.released = false
	c.tables = c.snap.Tables()
	c.seekFlash(start)
}

// release drops the cursor's pins early. Iterators release cursors that
// turn out to have nothing to contribute (a partition wholly below the
// start key, or empty), so an open scan only freezes reclamation — and
// only forces copy-on-write updates — on partitions it actually reads.
// Idempotent; Close releases whatever is left.
func (c *partCursor) release() {
	if c.released {
		return
	}
	c.released = true
	p := c.p
	p.mu.Lock()
	p.slabs.UnpinEpoch()
	p.putScanBufLocked(c.entries)
	p.mu.Unlock()
	c.snap.Release()
	c.snap = nil
	c.entries = nil
	c.tables = nil
	c.fOK = false
	c.truncated = false
}

// collectLocked snapshots the NVM index entries ≥ start (capped at
// it.limit when bounded). Caller holds p.mu.
func (c *partCursor) collectLocked(start []byte) {
	limit := c.it.limit
	entries := c.p.takeScanBufLocked()
	if cap(c.entries) > cap(entries) {
		// Re-collections (Seek) keep the buffer they already grew.
		c.p.putScanBufLocked(entries)
		entries = c.entries[:0]
	}
	c.p.index.AscendFrom(start, func(item btree.Item) bool {
		entries = append(entries, nvmEntry{item.Key, slab.Loc(item.Val)})
		return limit == 0 || len(entries) < limit
	})
	c.entries = entries
	c.ni = 0
	c.truncated = limit > 0 && len(entries) == limit
	c.fromNil = start == nil
	c.snapFrom = append(c.snapFrom[:0], start...)
}

// seek repositions both levels at the first key ≥ start. A covered seek
// (unbounded snapshot, start within its range) is a binary search in the
// snapshot; otherwise the NVM entries are re-collected from the live
// index. A cursor whose pins were released (it had nothing to contribute)
// re-pins against the partition's then-current state.
func (c *partCursor) seek(start []byte) {
	if c.released {
		c.acquire(start)
		return
	}
	covered := c.it.limit == 0 &&
		(c.fromNil || (start != nil && bytes.Compare(start, c.snapFrom) >= 0))
	if covered {
		c.ni = sort.Search(len(c.entries), func(i int) bool {
			return bytes.Compare(c.entries[i].key, start) >= 0
		})
	} else {
		c.p.mu.Lock()
		c.collectLocked(start)
		c.p.mu.Unlock()
	}
	c.seekFlash(start)
}

// seekFlash restarts the flash chain at the first table that can hold a
// key ≥ start.
func (c *partCursor) seekFlash(start []byte) {
	c.tblIdx = c.snap.SearchFrom(start)
	c.fOK = false
	c.advanceFlash(start)
}

// advanceFlash chains the block cursor across the snapshot's disjoint
// sorted tables until it is positioned on a record (or the chain ends).
func (c *partCursor) advanceFlash(start []byte) {
	for {
		if c.fOK && (c.fIt.Valid() || c.fIt.Err() != nil) {
			return
		}
		if c.tblIdx >= len(c.tables) {
			c.fOK = false
			return
		}
		c.fIt.Reset(c.tables[c.tblIdx], c.it.clk, start, c.p.opts.ScanPrefetch)
		c.fOK = true
		c.tblIdx++
	}
}

// nvmKey returns the current NVM-side key, refilling a truncated snapshot
// from the live index when it runs dry.
func (c *partCursor) nvmKey() []byte {
	for {
		if c.ni < len(c.entries) {
			return c.entries[c.ni].key
		}
		if !c.truncated {
			return nil
		}
		c.refill()
	}
}

// refill re-snapshots the next batch of NVM entries strictly after the last
// consumed key. Only reachable on limitHint-bounded iterators.
func (c *partCursor) refill() {
	last := c.entries[len(c.entries)-1].key
	limit := c.it.limit
	p := c.p
	p.mu.Lock()
	c.entries = c.entries[:0]
	c.ni = 0
	p.index.AscendFrom(last, func(item btree.Item) bool {
		if bytes.Equal(item.Key, last) {
			return true
		}
		c.entries = append(c.entries, nvmEntry{item.Key, slab.Loc(item.Val)})
		return len(c.entries) < limit
	})
	c.truncated = len(c.entries) == limit
	p.mu.Unlock()
}

func (c *partCursor) flashKey() []byte {
	if c.fOK && c.fIt.Valid() {
		return c.fIt.Record().Key
	}
	return nil
}

func (c *partCursor) flashErr() error {
	if c.fOK {
		return c.fIt.Err()
	}
	return nil
}

// position computes the cursor's current merged key (NVM wins ties),
// reporting whether the cursor still has entries.
func (c *partCursor) position() bool {
	if err := c.flashErr(); err != nil {
		// Surface the error through the next emit.
		c.cur = nil
		return true
	}
	nk := c.nvmKey()
	fk := c.flashKey()
	switch {
	case nk == nil && fk == nil:
		c.cur = nil
		return false
	case fk == nil || (nk != nil && bytes.Compare(nk, fk) <= 0):
		c.cur = nk
	default:
		c.cur = fk
	}
	return true
}

// emit resolves the current position into (key, value, live) and advances
// past the key. A tombstone — or a flash version shadowed by a newer NVM
// one — consumes the key with live=false. Returned slices are either
// B-tree-aliased keys (stable for the cursor's lifetime) or copies in the
// iterator's reusable buffers (stable until the next positioning call).
func (c *partCursor) emit() (key, val []byte, live bool, err error) {
	if ferr := c.flashErr(); ferr != nil {
		return nil, nil, false, ferr
	}
	it := c.it
	nk := c.nvmKey()
	fk := c.flashKey()
	if nk == nil && fk == nil {
		return nil, nil, false, nil
	}
	if fk == nil || (nk != nil && bytes.Compare(nk, fk) <= 0) {
		// NVM side; an equal flash key holds an older version (§6) and is
		// consumed alongside, shadowed by value or tombstone alike.
		if fk != nil && bytes.Equal(nk, fk) {
			c.fIt.Next()
			c.advanceFlash(nil)
		}
		ent := c.entries[c.ni]
		c.ni++
		it.db.chargeCPU(it.clk, c.p.opts.CPU.IndexOp)
		p := c.p
		p.mu.Lock()
		rec, rerr := p.slabs.GetScratch(it.clk, ent.loc)
		if rerr != nil {
			p.mu.Unlock()
			return nil, nil, false, rerr
		}
		if rec.Tombstone {
			p.mu.Unlock()
			return nil, nil, false, nil
		}
		it.valBuf = append(it.valBuf[:0], rec.Value...)
		p.mu.Unlock()
		return ent.key, it.valBuf, true, nil
	}
	r := c.fIt.Record()
	if r.Tombstone {
		c.fIt.Next()
		c.advanceFlash(nil)
		return nil, nil, false, c.flashErr()
	}
	// Views into the block buffer die when the cursor advances: copy out.
	it.keyBuf = append(it.keyBuf[:0], r.Key...)
	it.valBuf = append(it.valBuf[:0], r.Value...)
	c.fIt.Next()
	c.advanceFlash(nil)
	return it.keyBuf, it.valBuf, true, c.flashErr()
}

// cursorPQ is a min-heap of partition cursors ordered by current key.
// Cursors are pointers, so heap.Pop's interface boxing never allocates.
type cursorPQ []*partCursor

func (h cursorPQ) Len() int { return len(h) }
func (h cursorPQ) Less(i, j int) bool {
	return bytes.Compare(h[i].cur, h[j].cur) < 0
}
func (h cursorPQ) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cursorPQ) Push(x interface{}) { *h = append(*h, x.(*partCursor)) }
func (h *cursorPQ) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
