package core

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/prismdb/prismdb/internal/storage"
)

// This file holds the owner-goroutine write path (Options.WriteMode ==
// WriteAsync, the default). It is a hybrid:
//
//   - Uncontended, a SET/DEL is a batch of one: the caller finds the
//     intent ring empty, TryLocks the partition, and applies directly
//     (partition.putDirectLocked) — no handoff, no parking, read-state
//     drains on the batch cadence instead of per op. On a lone writer
//     this path costs what the legacy locked path costs, minus the
//     per-op drain.
//   - Contended (TryLock lost, or intents already queued), callers frame
//     their mutation as a writeIntent, enqueue it into a bounded
//     lock-free MPSC ring, and block on a per-intent done signal. The
//     partition's owner goroutine drains a batch, applies every mutation
//     in ONE locked critical section, appends ONE WAL record group for
//     the whole batch (so the engine batch and the group-commit fsync
//     are the same unit), republishes the read view once per batch, and
//     only then releases the waiters — preserving read-your-writes on
//     the enqueuing goroutine and the slab-write-before-WAL-append
//     durability ordering.
//
// Either way a concurrent burst pays the partition's fixed costs once per
// batch rather than once per op, which is what lets the write ceiling
// beat the locked path at every width (bench/contended_test.go).
//
// The ring is the same Vyukov MPSC shape as readview.go's popularity touch
// ring, but lossless: where a full touch ring drops the entry (popularity
// is a heuristic), a full intent ring parks the producer on a condition
// variable until the owner frees slots. Virtual-time latency composition
// is untouched — the owner applies intents in arrival order on the
// partition clock, so each op's reported latency is exactly what the
// locked path would have billed it, and a serial caller (whose next op is
// only issued after the previous done signal) produces batches of one.

const (
	// writeRingSize bounds the per-partition intent ring (power of two).
	writeRingSize = 1024
	// maxWriteBatch caps how many intents the owner applies per critical
	// section, bounding the lock hold and the WAL group a single fsync
	// must cover.
	maxWriteBatch = 128
)

// Write intent opcodes.
const (
	intentPut byte = iota
	intentDel
)

// writeIntent is one framed mutation travelling from an enqueuing client
// goroutine to the partition owner. The producer owns key/value until the
// done signal arrives; the owner never touches the intent after sending it,
// so the producer can recycle it through intentPool.
type writeIntent struct {
	op    byte
	key   []byte
	value []byte

	// Tracing, set only for sampled ops (obs tracer): the owner fills
	// tr's queue-wait / apply / WAL-append stages (tr.enqAt anchors the
	// queue wait). nil on the untraced hot path.
	tr *OpTrace

	// Results, written by the owner before the done send. rec is the
	// intent's record index within its batch's WAL group (-1 when the op
	// logged nothing: an error path, or an in-memory DB).
	lat time.Duration
	lsn uint64
	rec int
	err error

	done chan struct{} // buffered(1): the owner's send never blocks
}

var intentPool = sync.Pool{New: func() any {
	return &writeIntent{done: make(chan struct{}, 1)}
}}

func getIntent() *writeIntent { return intentPool.Get().(*writeIntent) }

func putIntent(it *writeIntent) {
	it.key, it.value = nil, nil // drop caller-buffer refs before pooling
	it.tr = nil
	it.lat, it.lsn, it.rec, it.err = 0, 0, 0, nil
	intentPool.Put(it)
}

// wqSlot is one ring slot. seq is the Vyukov sequencer: slot i accepts
// producer position pos when seq == pos, publishes at seq == pos+1, and is
// handed to the next lap by the consumer at seq == pos + ring size.
type wqSlot struct {
	seq atomic.Uint64
	it  *writeIntent
}

// writeQueue is the bounded lossless MPSC intent ring plus the producer
// parking and close machinery.
type writeQueue struct {
	ents []wqSlot
	mask uint64
	tail atomic.Uint64 // next producer position
	head atomic.Uint64 // next consumer position (owner only)

	// closed + inflight form the close handshake. Producers increment
	// inflight before checking closed and decrement on the way out, so
	// once the owner observes closed set AND inflight == 0, every intent
	// that will ever be pushed is in the ring — the final drain can fail
	// them all with ErrClosed and no producer is left parked or waiting on
	// a done signal that never comes.
	inflight atomic.Int64
	closed   atomic.Bool

	parks    atomic.Int64 // producers that found the ring full (cumulative)
	parkMu   sync.Mutex
	parkCond *sync.Cond

	// gate, when set (before the owner starts; never mutated after), vetoes
	// new enqueues with a typed error — the DB's read-only degradation
	// check. A parked producer re-evaluates it after every wakeProducers
	// broadcast, so the degrade transition unparks writers the same way
	// Close does instead of leaving them asleep on a ring nobody will
	// drain into a healthy apply again.
	gate func() error

	work chan struct{} // cap 1: owner wakeup
	quit chan struct{}
	done chan struct{} // closed when the owner goroutine exits
}

func newWriteQueue() *writeQueue {
	q := &writeQueue{
		ents: make([]wqSlot, writeRingSize),
		mask: writeRingSize - 1,
		work: make(chan struct{}, 1),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	for i := range q.ents {
		q.ents[i].seq.Store(uint64(i))
	}
	q.parkCond = sync.NewCond(&q.parkMu)
	return q
}

// push enqueues an intent, returning false when the ring is full. Never
// blocks, never allocates (compare touchRing.push, which drops on full).
func (q *writeQueue) push(it *writeIntent) bool {
	pos := q.tail.Load()
	for {
		e := &q.ents[pos&q.mask]
		seq := e.seq.Load()
		switch {
		case seq == pos:
			if q.tail.CompareAndSwap(pos, pos+1) {
				e.it = it
				e.seq.Store(pos + 1)
				return true
			}
			pos = q.tail.Load()
		case seq < pos:
			return false // a full lap behind: ring is full
		default:
			pos = q.tail.Load()
		}
	}
}

// full reports whether the next producer slot is still owned by a previous
// lap — the park predicate, re-checked under parkMu to pair with the
// owner's broadcast-after-drain.
func (q *writeQueue) full() bool {
	pos := q.tail.Load()
	return q.ents[pos&q.mask].seq.Load() < pos
}

// depth approximates the number of queued intents (stats gauge).
func (q *writeQueue) depth() int64 {
	return int64(q.tail.Load() - q.head.Load())
}

// idle reports an empty ring — the gate for the direct (uncontended) write
// fast path. Racy by design: a push landing right after the check just means
// that op takes the lock the slow way or the fast writer and the owner split
// the work, both fine — no ordering guarantee exists between concurrent
// client writes anyway.
func (q *writeQueue) idle() bool {
	return q.tail.Load() == q.head.Load()
}

// enqueue pushes it, parking (not spinning, not dropping) while the ring is
// full. Returns ErrClosed — without having pushed — once the queue closes,
// or the gate's error once the DB degrades; a parked producer is woken by
// the close/degrade broadcast, never leaked.
func (q *writeQueue) enqueue(it *writeIntent) error {
	q.inflight.Add(1)
	defer q.inflight.Add(-1)
	for {
		if q.closed.Load() {
			return ErrClosed
		}
		if err := q.gateErr(); err != nil {
			return err
		}
		if q.push(it) {
			q.wake()
			return nil
		}
		q.parks.Add(1)
		q.parkMu.Lock()
		for !q.closed.Load() && q.gateErr() == nil && q.full() {
			q.parkCond.Wait()
		}
		q.parkMu.Unlock()
	}
}

// gateErr evaluates the enqueue gate (nil gate = always open).
func (q *writeQueue) gateErr() error {
	if q.gate == nil {
		return nil
	}
	return q.gate()
}

// wake nudges the owner (non-blocking; the channel holds one token).
func (q *writeQueue) wake() {
	select {
	case q.work <- struct{}{}:
	default:
	}
}

// wakeProducers releases every parked producer. Broadcasting under parkMu
// closes the missed-wakeup window: a producer that saw the ring full either
// parks before this broadcast (and is woken) or re-checks its predicate
// after it (and sees the drained ring / the closed flag).
func (q *writeQueue) wakeProducers() {
	q.parkMu.Lock()
	q.parkCond.Broadcast()
	q.parkMu.Unlock()
}

// drainInto pops up to max published intents (owner only).
func (q *writeQueue) drainInto(batch []*writeIntent, max int) []*writeIntent {
	head := q.head.Load()
	for len(batch) < max {
		e := &q.ents[head&q.mask]
		if e.seq.Load() != head+1 {
			break
		}
		batch = append(batch, e.it)
		e.it = nil
		e.seq.Store(head + uint64(len(q.ents)))
		head++
	}
	q.head.Store(head)
	return batch
}

// failPending completes the close handshake (closed is already set): wake
// and wait out every producer still inside enqueue, then fail everything
// left in the ring with ErrClosed so no waiter hangs on its done signal.
func (q *writeQueue) failPending(batch []*writeIntent) {
	for q.inflight.Load() > 0 {
		q.wakeProducers()
		runtime.Gosched()
	}
	for {
		batch = q.drainInto(batch[:0], maxWriteBatch)
		if len(batch) == 0 {
			return
		}
		for _, it := range batch {
			it.err = ErrClosed
			it.done <- struct{}{}
		}
	}
}

// startWriteOwner creates the partition's intent queue and owner goroutine
// (WriteAsync mode; called once during Open, before client traffic).
func (p *partition) startWriteOwner() {
	p.wq = newWriteQueue()
	p.wq.gate = p.writeGate
	go p.writeOwner()
}

// stopWriteOwner closes the queue and waits for the owner to fail every
// pending intent and exit. Must run BEFORE the compaction worker stops: a
// batch mid-apply may be hard-stalled on the worker's next commit
// (admitWrite), and stopping the worker first would strand it.
func (p *partition) stopWriteOwner() {
	if p.wq == nil {
		return
	}
	q := p.wq
	q.closed.Store(true)
	q.wakeProducers()
	close(q.quit)
	<-q.done
}

// writeOwner is the partition's single-writer loop: drain a batch, apply
// it, release any producers parked on the full ring, repeat.
func (p *partition) writeOwner() {
	q := p.wq
	defer close(q.done)
	batch := make([]*writeIntent, 0, maxWriteBatch)
	for {
		select {
		case <-q.quit:
			q.failPending(batch[:0])
			return
		case <-q.work:
		}
		// Yield once before draining. The wake send schedules the owner
		// ahead of other runnable goroutines, so draining immediately would
		// collect exactly the one intent of the producer that woke us — a
		// batch of one, forever, with every producer paying a full park and
		// the batch amortizations (one spine copy, one republish, one WAL
		// group) buying nothing. One yield lets the other runnable producers
		// publish their intents first, so the drain below sees a real batch.
		runtime.Gosched()
		for {
			batch = q.drainInto(batch[:0], maxWriteBatch)
			if len(batch) == 0 {
				break
			}
			p.applyBatch(batch)
			q.wakeProducers()
		}
	}
}

// pendingBatch accumulates one applied batch's side effects that are
// deferred to the batch boundary: the WAL records (one AppendBatch instead
// of per-op appends) and the republish flag (one publishView instead of one
// per mutating op). putBodyLocked and delBodyLocked route through it when
// partition.curBatch is set.
type pendingBatch struct {
	recs  []storage.BatchEntry
	dirty bool
}

// applyBatch applies a drained batch as one critical section: clock sync
// and read drain once, every mutation in arrival order on the partition
// clock, one WAL group append (after every slab write it describes — the
// checkpoint invariant holds batch-wide), one view republication, then the
// done signals. Latency composition is per-op: each intent is billed
// exactly the clock interval its own mutation consumed.
func (p *partition) applyBatch(batch []*writeIntent) {
	if err := p.writeGate(); err != nil {
		// The DB degraded while these intents sat in the ring: fail them
		// fast with the typed read-only error, before any slab or WAL state
		// is touched. None were acknowledged, so refusing them is exactly as
		// correct as Close's ErrClosed drain — and unlike letting the batch
		// run into the poisoned WAL, it costs no mutation work.
		for _, it := range batch {
			it.rec = -1
			it.err = err
			it.done <- struct{}{}
		}
		return
	}
	p.mu.Lock()
	p.syncClockLocked()
	p.drainReadsLocked()
	b := &p.batchScratch
	b.recs = b.recs[:0]
	b.dirty = false
	p.curBatch = b
	anyTraced := false
	for _, it := range batch {
		n0 := len(b.recs)
		var a0 time.Time
		if it.tr != nil {
			// Sampled op: bill the ring wait up to now, then time the apply.
			anyTraced = true
			a0 = time.Now()
			it.tr.QueueWait = a0.Sub(it.tr.enqAt)
		}
		switch it.op {
		case intentPut:
			it.lat, _, it.err = p.putBodyLocked(it.key, it.value, false, true)
		default:
			it.lat, _, it.err = p.delBodyLocked(it.key)
		}
		if it.tr != nil {
			it.tr.Apply = time.Since(a0)
		}
		if len(b.recs) > n0 {
			it.rec = n0
		} else {
			it.rec = -1
		}
	}
	p.curBatch = nil
	var first uint64
	var aerr error
	var walDur time.Duration
	if len(b.recs) > 0 {
		// One group append for the batch: in SyncEvery mode the whole batch
		// shares one fsync, and each intent's WaitDurable barrier is its
		// record's LSN within the group.
		if anyTraced {
			w0 := time.Now()
			first, aerr = p.wal.AppendBatch(b.recs)
			walDur = time.Since(w0)
		} else {
			first, aerr = p.wal.AppendBatch(b.recs)
		}
	}
	if b.dirty {
		// Republished before any done signal: a GET issued after an
		// enqueuer's op returns always observes it (read-your-writes).
		p.publishView()
	}
	p.stats.WriteBatches++
	p.obs.writeBatch.Observe(int64(len(batch)))
	bb := bits.Len64(uint64(len(batch)))
	if bb >= len(p.wbHist) {
		bb = len(p.wbHist) - 1
	}
	p.wbHist[bb]++
	for i := range b.recs {
		b.recs[i] = storage.BatchEntry{} // drop caller-buffer refs
	}
	p.casMaxVclock(p.clk.Now())
	p.mu.Unlock()
	for _, it := range batch {
		switch {
		case it.err != nil:
		case aerr != nil && it.rec >= 0:
			it.err = aerr
		case it.rec >= 0:
			it.lsn = first + uint64(it.rec)
		}
		if it.tr != nil && it.rec >= 0 {
			// The group append is one syscall shared by the batch; a traced
			// intent is billed its full duration (group commit makes the
			// whole append its op's durability prerequisite).
			it.tr.WALAppend = walDur
		}
		it.done <- struct{}{}
	}
}

// enqueueWait runs one client mutation through the owner: enqueue, wait
// for the apply, then wait out durability off every lock (the group-commit
// barrier, exactly as the legacy path waits after putLocking). tr is non-nil
// only for sampled ops: the owner fills the queue-wait/apply/WAL stages and
// the fsync wait is timed here around the durability barrier.
func (p *partition) enqueueWait(op byte, key, value []byte, tr *OpTrace) (time.Duration, error) {
	it := getIntent()
	it.op, it.key, it.value = op, key, value
	if tr != nil {
		it.tr, tr.enqAt = tr, time.Now()
	}
	if err := p.wq.enqueue(it); err != nil {
		putIntent(it)
		return 0, err
	}
	<-it.done
	lat, lsn, err := it.lat, it.lsn, it.err
	putIntent(it)
	if err != nil {
		return lat, err
	}
	if tr != nil {
		f0 := time.Now()
		err = p.wal.WaitDurable(lsn)
		tr.FsyncWait = time.Since(f0)
		return lat, err
	}
	return lat, p.wal.WaitDurable(lsn)
}
