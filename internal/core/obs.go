package core

import (
	"github.com/prismdb/prismdb/internal/metrics"
	"github.com/prismdb/prismdb/internal/obs"
)

// engineObs bundles the engine's live telemetry instruments. Every DB has
// one — Options.Metrics/Options.Events only choose whether the registry and
// event log are shared with an embedding server or private — so benchmark
// numbers always include the instrumentation cost. Hot-path instruments
// (the histograms and counters below) are lock-free obs types recorded
// directly; everything already counted in Stats/PersistenceStats is
// exported through one registry collector instead of a second counter, so
// each subsystem keeps a single source of truth.
type engineObs struct {
	reg    *obs.Registry
	events *obs.EventLog

	fsyncLatency *obs.Histogram // WAL segment fdatasync wall time
	walBatch     *obs.Histogram // records covered per fsync (group commit)
	writeBatch   *obs.Histogram // ops per owner-goroutine write batch
	compRound    *obs.Histogram // async compaction round wall time
	viewRetries  *obs.Counter   // lock-free GET view-validation retries
	epochPins    *obs.Counter   // slab reclamation epochs pinned

	ioStalls        *obs.Counter // WAL I/O stalls declared by the watchdog
	scrubSlots      *obs.Counter // slab slots CRC-verified by the scrubber
	scrubBlocks     *obs.Counter // SST blocks CRC-verified by the scrubber
	scrubBitRot     *obs.Counter // CRC mismatches found (both tiers)
	scrubQuarantine *obs.Counter // SSTs quarantined from the manifest
}

func newEngineObs(reg *obs.Registry, events *obs.EventLog) *engineObs {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if events == nil {
		events = obs.NewEventLog(256)
	}
	return &engineObs{
		reg:    reg,
		events: events,
		fsyncLatency: reg.Histogram("prism_wal_fsync_seconds",
			"Wall duration of WAL segment fdatasync calls.", obs.UnitSeconds),
		walBatch: reg.Histogram("prism_wal_group_commit_records",
			"Records covered by each WAL fsync (group-commit batch size).", obs.UnitCount),
		// Deliberately unregistered: only the owner goroutine's applyBatch
		// records into it (amortized once per batch). The direct fast path
		// counts Stats.DirectWrites under the partition lock instead — a
		// per-op atomic instrument there costs measurable contended write
		// throughput — and the collector merges both into the single
		// prism_write_batch_ops series at gather time.
		writeBatch: obs.NewHistogram("prism_write_batch_ops",
			"Mutations applied per write-path batch (owner-goroutine drains and direct batches of one).", obs.UnitCount),
		compRound: reg.Histogram("prism_compaction_round_seconds",
			"Wall duration of async compaction merge rounds (prepare+execute+commit).", obs.UnitSeconds),
		viewRetries: reg.Counter("prism_read_view_retries_total",
			"Lock-free GET attempts that failed slot validation and retried against a fresh view."),
		epochPins: reg.Counter("prism_epoch_pins_total",
			"Slab reclamation epochs pinned (iterators and async compaction jobs)."),
		ioStalls: reg.Counter("prism_io_stall_total",
			"WAL I/O operations declared stalled by the watchdog (each degrades the DB)."),
		scrubSlots: reg.Counter("prism_scrub_slots_total",
			"NVM slab slots CRC-verified by the background scrubber."),
		scrubBlocks: reg.Counter("prism_scrub_blocks_total",
			"Flash SST blocks CRC-verified by the background scrubber."),
		scrubBitRot: reg.Counter("prism_scrub_bitrot_total",
			"CRC mismatches the scrubber found (slab slots and SST blocks)."),
		scrubQuarantine: reg.Counter("prism_scrub_quarantined_ssts_total",
			"SST files quarantined from the manifest after a failed block CRC."),
	}
}

// Registry returns the DB's metrics registry (Options.Metrics, or the
// private one created at Open).
func (db *DB) Registry() *obs.Registry { return db.obs.reg }

// Events returns the DB's structured event log (Options.Events, or the
// private one created at Open).
func (db *DB) Events() *obs.EventLog { return db.obs.events }

// registerCollector wires the engine's existing stats sweeps into the
// registry: one Gather pulls Stats() and PersistenceStats() and renders
// them as Prometheus series, so /metrics and INFO read identical numbers
// from identical code.
func (db *DB) registerCollector() {
	db.obs.reg.Collect(func(g *obs.Gathered) {
		s := db.Stats()
		const opsHelp = "Engine operations completed, by op."
		g.Counter(`prism_engine_ops_total{op="put"}`, opsHelp, s.Puts)
		g.Counter(`prism_engine_ops_total{op="get"}`, opsHelp, s.Gets)
		g.Counter(`prism_engine_ops_total{op="delete"}`, opsHelp, s.Deletes)
		g.Counter(`prism_engine_ops_total{op="scan"}`, opsHelp, s.Scans)
		const tierHelp = "Reads served, by tier."
		g.Counter(`prism_engine_reads_total{tier="dram"}`, tierHelp, s.GetDRAM)
		g.Counter(`prism_engine_reads_total{tier="nvm"}`, tierHelp, s.GetNVM)
		g.Counter(`prism_engine_reads_total{tier="flash"}`, tierHelp, s.GetFlash)
		g.Counter(`prism_engine_reads_total{tier="miss"}`, tierHelp, s.GetMiss)
		g.Gauge("prism_engine_nvm_read_ratio",
			"Fraction of successful reads served from DRAM or NVM.", s.NVMReadRatio())
		g.Counter("prism_engine_bloom_false_positives_total",
			"Flash probes the SST bloom filter failed to reject.", s.BloomFalsePositives)
		g.Counter("prism_engine_write_stalls_total",
			"Foreground writes stalled by NVM space admission.", s.WriteStalls)
		g.Counter("prism_engine_compactions_total",
			"Compaction jobs completed.", s.Compactions)
		g.Counter("prism_engine_compaction_commit_conflicts_total",
			"Per-key commit skips: foreground overwrote a key mid-merge.", s.CommitConflicts)
		g.Counter("prism_engine_compaction_hard_stalls_total",
			"Writes that host-blocked waiting for a background commit.", s.CompactionHardStalls)
		g.Counter("prism_engine_compaction_hard_stall_seconds_total",
			"Host seconds writes spent hard-stalled.", int64(s.CompactionHardStallTime.Seconds()))
		g.Gauge("prism_engine_compaction_backlog",
			"Background compaction jobs pending or running.", float64(s.CompactionBacklog))
		g.Counter("prism_write_batches_total",
			"Owner-goroutine write batches applied.", s.WriteBatches)
		g.Counter("prism_write_direct_total",
			"Mutations applied on the uncontended direct fast path (batches of one).",
			s.DirectWrites)
		// The write-batch histogram: owner batches recorded live, plus the
		// direct path's batches of one folded in from the locked counter.
		wb := db.obs.writeBatch.Snapshot()
		if s.DirectWrites > 0 {
			counts := make([]int64, metrics.NumBuckets)
			counts[metrics.BucketIndex(1)] = s.DirectWrites
			wb.Merge(metrics.FromBuckets(counts, s.DirectWrites, 1, 1))
		}
		g.Histogram("prism_write_batch_ops",
			"Mutations applied per write-path batch (owner-goroutine drains and direct batches of one).",
			obs.UnitCount, wb)
		g.Counter("prism_write_view_republishes_total",
			"Read-view publications (one per mutating batch).", s.ViewRepublishes)
		g.Counter("prism_write_producer_parks_total",
			"Writers that parked on a full intent ring.", s.ProducerParks)
		g.Gauge("prism_write_queue_depth",
			"Intents waiting in the owner queues.", float64(s.WriteQueueDepth))
		g.Gauge("prism_engine_objects{tier=\"nvm\"}", "Live objects resident, by tier.", float64(s.NVMObjects))
		g.Gauge("prism_engine_objects{tier=\"flash\"}", "Live objects resident, by tier.", float64(s.FlashObjects))

		if ps := db.PersistenceStats(); ps.Durable {
			g.Counter("prism_wal_appended_bytes_total", "WAL record bytes appended.", ps.WALBytes)
			g.Counter("prism_wal_records_total", "WAL records appended.", ps.WALRecords)
			g.Counter("prism_wal_fsyncs_total", "WAL segment fdatasync calls.", ps.WALFsyncs)
			g.Counter("prism_wal_checkpoints_total", "Checkpoint + prune cycles completed.", ps.Checkpoints)
			g.Gauge("prism_wal_segments", "WAL segment files on disk.", float64(ps.WALSegments))
		}

		h := db.Health()
		g.Gauge("prism_health_state",
			"Failure-domain state: 0 healthy, 1 degraded (read-only), 2 failed.",
			float64(h.State))

		g.Counter("prism_events_total", "Structured events emitted.", db.obs.events.Total())
	})
}
