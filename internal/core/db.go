package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/prismdb/prismdb/internal/tracker"
)

// ErrClosed is returned by every operation issued after Close, and surfaced
// through Err/Close by iterators that outlive the DB. Serving front ends
// rely on it for graceful shutdown: once the DB is closed, racing requests
// fail deterministically instead of touching torn-down state.
var ErrClosed = errors.New("prismdb: database closed")

// DB is a PrismDB instance: Options.Partitions shared-nothing partitions
// over one NVM device and one flash device. Methods are safe for concurrent
// use. Mutations serialize on their partition's lock, as in the paper's
// worker-thread-per-partition design; point reads (Get/GetBuf) are
// lock-free against each partition's published read view, so concurrent
// GETs on one hot partition scale with cores instead of queueing on its
// mutex (see the package docs' Concurrency notes in prismdb.go).
type DB struct {
	opts   Options
	parts  []*partition
	dur    *durable // nil without Options.DataDir
	obs    *engineObs
	health *healthTracker
	scrub  *scrubber // nil unless Options.ScrubInterval > 0 (durable mode)
	closed atomic.Bool
}

// Open creates or recovers a DB. If the devices already hold this DB's
// files (slabs, manifests, SSTs), state is rebuilt from them — slab writes
// are synchronous and carry version timestamps, so recovery is a scan per
// partition (§6). With Options.DataDir set, the files are real files: Open
// locks the directory, replays the manifest journal, rebuilds each
// partition from its recovered slab and SST files, replays the WAL tail
// (tolerating a torn final record), and checkpoints — see durable.go.
func Open(opts Options) (*DB, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	db := &DB{opts: opts, obs: newEngineObs(opts.Metrics, opts.Events)}
	db.health = newHealthTracker(db.obs.events)
	if opts.DataDir != "" {
		if err := db.openDurable(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < opts.Partitions; i++ {
		p, err := newPartition(i, &db.opts, db.dur, db.obs)
		if err != nil {
			db.abortOpen()
			return nil, fmt.Errorf("core: partition %d: %w", i, err)
		}
		p.health = db.health
		if err := p.recover(); err != nil {
			db.abortOpen()
			return nil, fmt.Errorf("core: recover partition %d: %w", i, err)
		}
		// First view publication: lock-free GETs are served from the moment
		// Open returns. (Single-threaded here, so no lock is needed.)
		p.publishView()
		db.parts = append(db.parts, p)
	}
	if opts.CompactionMode == CompactionAsync {
		// Workers start before WAL replay: replayed writes go through the
		// ordinary admission path, which may need a background commit to
		// free space.
		for _, p := range db.parts {
			p.startWorker()
		}
	}
	if opts.WriteMode == WriteAsync {
		// Owner goroutines idle until client traffic arrives: WAL replay
		// bypasses the queue (putLocking/delLocking), so start order against
		// finishDurable is immaterial.
		for _, p := range db.parts {
			p.startWriteOwner()
		}
	}
	// A degrade transition must reach producers parked on a full intent
	// ring (their park predicate now fails through the health gate) and the
	// owners themselves, so intents already queued are drain-failed with
	// ErrReadOnly promptly instead of at the next client push. Registered
	// before the WAL flusher starts (finishDurable) — the first sticky I/O
	// error can arrive the moment traffic does.
	db.health.onDegrade = append(db.health.onDegrade, func() {
		for _, p := range db.parts {
			if p.wq != nil {
				p.wq.wake()
				p.wq.wakeProducers()
			}
		}
	})
	if db.dur != nil {
		if err := db.finishDurable(); err != nil {
			db.abortOpen()
			return nil, err
		}
	}
	if db.dur != nil && opts.ScrubInterval > 0 {
		db.scrub = db.startScrubber()
	}
	db.registerCollector()
	return db, nil
}

// abortOpen releases whatever a failed Open acquired (the data-directory
// lock, most importantly). It must NOT go through db.Close: closeDurable
// checkpoints the slabs and prunes the WAL, and after a failed replay that
// would delete segments whose records were never applied — the first Open
// fails loudly and the second would silently succeed with acknowledged
// writes gone. Kill drops the WAL without flushing; the segments stay on
// disk for the next Open to replay (or fail on again).
func (db *DB) abortOpen() {
	db.closed.Store(true)
	// Write owners stop before compaction workers: a batch mid-apply may
	// be hard-stalled on the worker's next commit (see stopWriteOwner).
	for _, p := range db.parts {
		p.stopWriteOwner()
	}
	for _, p := range db.parts {
		if p.bg.done != nil {
			p.stopWorker()
			<-p.bg.done
		}
	}
	if db.dur != nil {
		db.dur.wal.Kill()
		db.dur.dir.Close()
	}
}

// partitionIndex routes a key to its partition index: range partitioning
// splits the key-index domain evenly; hash partitioning uses an FNV hash
// (for skewed/load-imbalanced workloads, §4.1).
func (db *DB) partitionIndex(key []byte) int {
	n := uint64(len(db.parts))
	if n == 1 {
		return 0
	}
	if db.opts.RangePartitioning {
		idx := db.opts.KeyIndex(key)
		p := idx * n / db.opts.KeySpace
		if p >= n {
			p = n - 1
		}
		return int(p)
	}
	var h uint64 = 14695981039346656037
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return int(h % n)
}

func (db *DB) partitionOf(key []byte) *partition {
	return db.parts[db.partitionIndex(key)]
}

// Put writes key=value and returns the simulated operation latency. While
// the DB is degraded (see Health) it fails fast with ErrReadOnly.
func (db *DB) Put(key, value []byte) (time.Duration, error) {
	if db.closed.Load() {
		return 0, ErrClosed
	}
	if err := db.health.writeErr(); err != nil {
		return 0, err
	}
	return db.partitionOf(key).put(key, value, false, true)
}

// PutBatch writes every pair and returns the summed simulated latency of
// the individual writes (the MSET latency model: one batch is billed what
// its ops would have cost serially). In WriteAsync mode the pairs are
// enqueued together, so a single-partition batch is applied as one owner
// batch — one critical section, one WAL group append, one view
// republication — which is the RESP pipelined-write fast path's whole
// point. On error the batch may be partially applied (each pair is an
// independent write, exactly as if the caller had looped over Put); the
// first error is returned after every enqueued intent has completed.
func (db *DB) PutBatch(pairs []KV) (time.Duration, error) {
	if db.closed.Load() {
		return 0, ErrClosed
	}
	if err := db.health.writeErr(); err != nil {
		return 0, err
	}
	if len(pairs) == 0 {
		return 0, nil
	}
	var total time.Duration
	if db.opts.WriteMode != WriteAsync {
		for _, kv := range pairs {
			lat, err := db.partitionOf(kv.Key).put(kv.Key, kv.Value, false, true)
			if err != nil {
				return total, err
			}
			total += lat
		}
		return total, nil
	}
	intents := make([]*writeIntent, 0, len(pairs))
	parts := make([]*partition, 0, len(pairs))
	var firstErr error
	for _, kv := range pairs {
		p := db.partitionOf(kv.Key)
		it := getIntent()
		it.op, it.key, it.value = intentPut, kv.Key, kv.Value
		if err := p.wq.enqueue(it); err != nil {
			putIntent(it)
			firstErr = err
			break
		}
		intents = append(intents, it)
		parts = append(parts, p)
	}
	// Wait out every enqueued intent even after an error: the owner still
	// holds references to their buffers until the done signals.
	for i, it := range intents {
		<-it.done
		total += it.lat
		if it.err != nil {
			if firstErr == nil {
				firstErr = it.err
			}
		} else if err := parts[i].wal.WaitDurable(it.lsn); err != nil && firstErr == nil {
			firstErr = err
		}
		putIntent(it)
	}
	return total, firstErr
}

// Get returns the value for key, the tier that served the read, and the
// simulated latency. A missing key returns (nil, TierMiss, lat, nil).
func (db *DB) Get(key []byte) ([]byte, Tier, time.Duration, error) {
	return db.GetBuf(key, nil)
}

// GetBuf is Get with a caller-provided value buffer: the value is appended
// to buf[:0] and the resulting slice returned (it aliases buf when buf has
// capacity). Callers that reuse buf across calls make the NVM-hit read path
// allocation-free.
func (db *DB) GetBuf(key, buf []byte) ([]byte, Tier, time.Duration, error) {
	if db.closed.Load() {
		return nil, TierMiss, 0, ErrClosed
	}
	return db.partitionOf(key).get(key, buf)
}

// Delete removes key, writing a flash tombstone when needed (§6). While the
// DB is degraded it fails fast with ErrReadOnly.
func (db *DB) Delete(key []byte) (time.Duration, error) {
	if db.closed.Load() {
		return 0, ErrClosed
	}
	if err := db.health.writeErr(); err != nil {
		return 0, err
	}
	return db.partitionOf(key).del(key)
}

// Scan returns up to n live objects with keys ≥ start in global key order:
// a thin wrapper draining an Iterator (which see for the consistency and
// clock-ownership model). The start partition is never guessed from
// KeyIndex — every partition's cursor positions itself from its actual
// data, so non-canonical start keys (arbitrary bytes, no embedded index)
// cannot skip partitions under range partitioning.
func (db *DB) Scan(start []byte, n int) ([]KV, time.Duration, error) {
	if n <= 0 {
		return nil, 0, nil
	}
	it := db.NewIterator(start, n)
	out := make([]KV, 0, n)
	for it.Valid() && len(out) < n {
		out = append(out, KV{
			Key:   append([]byte(nil), it.Key()...),
			Value: append([]byte(nil), it.Value()...),
		})
		it.Next()
	}
	err := it.Close()
	if err != nil {
		return nil, 0, err
	}
	return out, it.Latency(), nil
}

// Stats aggregates all partitions' counters plus live object counts and
// the current background-compaction backlog. Taking stats drains the
// lock-free read path's sharded counters and popularity touches into each
// partition, so the returned figures include every completed GET.
func (db *DB) Stats() Stats {
	var s Stats
	var wbHist [16]int64
	for _, p := range db.parts {
		p.mu.Lock()
		p.syncClockLocked()
		p.drainReadsLocked()
		p.casMaxVclock(p.clk.Now())
		ps := p.stats
		nvm, flash := p.objectCounts()
		ps.NVMObjects, ps.FlashObjects = nvm, flash
		ps.CompactionBacklog = 0
		if p.bg.running {
			ps.CompactionBacklog++
		}
		if p.bg.demotePending {
			ps.CompactionBacklog++
		}
		if p.bg.promotePending {
			ps.CompactionBacklog++
		}
		if p.wq != nil {
			ps.WriteQueueDepth = p.wq.depth()
			ps.ProducerParks = p.wq.parks.Load()
		}
		for i, c := range p.wbHist {
			wbHist[i] += c
		}
		p.mu.Unlock()
		s.add(ps)
	}
	s.WriteBatchP50 = histPercentile(wbHist[:], 50)
	s.WriteBatchP99 = histPercentile(wbHist[:], 99)
	return s
}

// histPercentile returns the representative value (1 << (i-1), matching
// the WAL's group-commit BatchP50 convention) of the bucket holding the
// pct-th percentile of a bits.Len-bucketed histogram.
func histPercentile(hist []int64, pct int64) int64 {
	var total int64
	for _, c := range hist {
		total += c
	}
	if total == 0 {
		return 0
	}
	var cum int64
	for i, c := range hist {
		cum += c
		if cum*100 >= total*pct {
			if i == 0 {
				return 0
			}
			return 1 << (i - 1)
		}
	}
	return 0
}

// ResetStats zeroes all partition counters (between warm-up and
// measurement).
func (db *DB) ResetStats() {
	for _, p := range db.parts {
		p.mu.Lock()
		p.syncClockLocked()
		p.drainReadsLocked() // flush, then zero: pending reads don't leak into the next phase
		p.casMaxVclock(p.clk.Now())
		p.stats = Stats{}
		p.wbHist = [16]int64{}
		if p.wq != nil {
			p.wq.parks.Store(0)
		}
		p.mu.Unlock()
	}
}

// Elapsed returns the simulation's wall clock: the maximum published
// frontier across partitions — each partition's worker clock joined with
// the fold-backs of its completed lock-free reads. In-flight background
// compactions are not included — their effect on foreground time is
// already modeled through device/CPU contention and write admission (a
// workload that outruns compaction stalls on admission, slowing the worker
// clocks themselves).
func (db *DB) Elapsed() time.Duration {
	var maxNs int64
	for _, p := range db.parts {
		if t := p.frontier(); t > maxNs {
			maxNs = t
		}
	}
	return time.Duration(maxNs)
}

// DrainCompactions blocks (in host time) until every partition's
// background compaction worker is idle with nothing queued. Under
// CompactionSync it returns immediately. Tests and harnesses use it to
// reach a settled state; it is safe to call after Close.
func (db *DB) DrainCompactions() {
	for _, p := range db.parts {
		p.mu.Lock()
		p.drainLocked()
		p.mu.Unlock()
	}
}

// AdvanceAll moves every partition clock to at least the global maximum,
// including the completion of all in-flight background compactions (async
// workers are drained first), and matures their reclaimed space. Harnesses
// call this between phases so measurement starts from a settled state with
// a common time origin.
func (db *DB) AdvanceAll() {
	db.DrainCompactions()
	now := int64(db.Elapsed())
	for _, p := range db.parts {
		p.mu.Lock()
		if p.compEndAt > now {
			now = p.compEndAt
		}
		p.mu.Unlock()
	}
	for _, p := range db.parts {
		p.mu.Lock()
		p.clk.AdvanceTo(now)
		p.casMaxVclock(now)
		p.matureCredit(now)
		p.mu.Unlock()
	}
}

// PartitionOf returns the index of the partition serving key. Harnesses
// use it to route operations to per-partition streams (for the parallel
// driver) or to drive partitions in virtual-time order (discrete-event
// style, which keeps shared-resource queueing causally consistent).
func (db *DB) PartitionOf(key []byte) int {
	return db.partitionIndex(key)
}

// PartitionClock returns partition i's current published frontier (worker
// clock joined with completed lock-free reads).
func (db *DB) PartitionClock(i int) time.Duration {
	return time.Duration(db.parts[i].frontier())
}

// PartitionClocks returns each partition's published frontier and
// compaction horizon (diagnostics: load imbalance, compaction overhang).
func (db *DB) PartitionClocks() (clocks, compEnds []time.Duration) {
	for _, p := range db.parts {
		clocks = append(clocks, time.Duration(p.frontier()))
		p.mu.Lock()
		compEnds = append(compEnds, time.Duration(p.compEndAt))
		p.mu.Unlock()
	}
	return clocks, compEnds
}

// PinThresholds reports each partition's current (possibly auto-tuned)
// pinning threshold.
func (db *DB) PinThresholds() []float64 {
	out := make([]float64, 0, len(db.parts))
	for _, p := range db.parts {
		p.mu.Lock()
		out = append(out, p.pinThreshold)
		p.mu.Unlock()
	}
	return out
}

// ClockDistribution sums the tracker clock-value histograms across
// partitions (Fig 5).
func (db *DB) ClockDistribution() [tracker.MaxClock + 1]int {
	var d [tracker.MaxClock + 1]int
	for _, p := range db.parts {
		p.mu.Lock()
		pd := p.trk.Distribution()
		p.mu.Unlock()
		for i, n := range pd {
			d[i] += n
		}
	}
	return d
}

// NVMUsage returns the DB's current NVM consumption in bytes and its
// budget.
func (db *DB) NVMUsage() (used, budget int64) {
	for _, p := range db.parts {
		p.mu.Lock()
		used += p.usage()
		p.mu.Unlock()
	}
	return used, db.opts.NVMBudget
}

// Partitions returns the partition count.
func (db *DB) Partitions() int { return len(db.parts) }

// Options returns the effective (defaulted) options.
func (db *DB) Options() Options { return db.opts }

// Close marks the DB closed and stops the background compaction workers
// (async mode): each worker finishes the merge round it is in — a round
// always commits or never started, so no half-applied state is left — then
// exits; Close returns once all have. On an in-memory DB there is nothing
// to flush — all state is already "durable" on the simulated devices. On a
// durable DB (Options.DataDir) Close then flushes and fsyncs the WAL,
// checkpoints the slab files, and releases the data directory's lock, so
// a clean shutdown reopens with an empty WAL tail. Either way, after
// Close every operation fails with ErrClosed, new iterators are born
// failed, and open iterators fail on their next positioning call (their
// Close still releases pins normally). Stats, Elapsed, and the other
// read-only accessors keep working, so a shutting-down server can still
// report final counters. Close is idempotent.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	// The scrubber stops first: it pins reclamation epochs and takes
	// partition locks, and must not race the teardown below.
	db.stopScrubber()
	// Write owners stop first: each fails its pending intents with
	// ErrClosed (no enqueuer is left parked or waiting forever) and must
	// outlive-stop the compaction worker its in-flight batch may be
	// hard-stalled on. Producers already past their apply and blocked in
	// WaitDurable resolve when closeDurable's final WAL drain fsyncs.
	for _, p := range db.parts {
		p.stopWriteOwner()
	}
	for _, p := range db.parts {
		if p.bg.done != nil {
			p.stopWorker()
		}
	}
	for _, p := range db.parts {
		if p.bg.done != nil {
			<-p.bg.done
		}
	}
	if db.dur != nil {
		return db.closeDurable()
	}
	return nil
}
