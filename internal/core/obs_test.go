package core

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/prismdb/prismdb/internal/obs"
)

// TestObsRegistryAlwaysLive verifies that a DB opened with nil
// Options.Metrics/Events still records into private instruments (the
// benchmark-honesty property: instrument cost is always paid), and that a
// caller-supplied registry receives the engine series.
func TestObsRegistryAlwaysLive(t *testing.T) {
	reg := obs.NewRegistry()
	ev := obs.NewEventLog(64)
	o := testOptions()
	o.Metrics = reg
	o.Events = ev
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Registry() != reg || db.Events() != ev {
		t.Fatal("DB must adopt the caller's registry and event log")
	}
	for i := 0; i < 200; i++ {
		if _, err := db.Put(key(i), val(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		if _, _, _, err := db.Get(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	g := db.Registry().Gather()
	p, ok := g.Find(`prism_engine_ops_total{op="put"}`)
	if !ok || p.Value != 200 {
		t.Fatalf("put counter = %+v, want 200", p)
	}
	h := g.FindHist("prism_write_batch_ops")
	if h == nil || h.Count() != 200 {
		t.Fatalf("write batch hist count = %v, want 200", h)
	}
	// Same numbers as Stats(): the collector is a view over it.
	if s := db.Stats(); s.Puts != 200 || s.Gets != 200 {
		t.Fatalf("stats disagree with registry: %+v", s)
	}
}

// TestObsPrivateRegistry: nil Metrics still yields a live, gatherable
// registry on the DB.
func TestObsPrivateRegistry(t *testing.T) {
	db, err := Open(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Put(key(1), val(1, 64)); err != nil {
		t.Fatal(err)
	}
	g := db.Registry().Gather()
	if p, ok := g.Find(`prism_engine_ops_total{op="put"}`); !ok || p.Value != 1 {
		t.Fatalf("private registry missing put counter: %+v", p)
	}
	if db.Events() == nil {
		t.Fatal("private event log missing")
	}
}

// TestOpTraceStages drives traced writes down both write paths and checks
// the stage accounting documented on OpTrace.
func TestOpTraceStages(t *testing.T) {
	o := testOptions()
	o.WriteMode = WriteAsync
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var tr OpTrace
	if _, err := db.PutTraced(key(1), val(1, 100), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Apply <= 0 {
		t.Fatalf("uncontended traced put must bill Apply, got %+v", tr)
	}
	tr = OpTrace{}
	if _, err := db.DeleteTraced(key(1), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Apply <= 0 {
		t.Fatalf("traced delete must bill Apply, got %+v", tr)
	}

	// Contended: spin writers so traced ops ride the owner queue; at least
	// some should report queue wait. (Not asserted per-op — the direct fast
	// path is legal any time the ring drains — only that stages stay sane.)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				db.Put(key(1000+w*100+i%50), val(i, 64))
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		var qtr OpTrace
		if _, err := db.PutTraced(key(2000+i), val(i, 64), &qtr); err != nil {
			t.Fatal(err)
		}
		if qtr.QueueWait < 0 || qtr.Apply < 0 {
			t.Fatalf("negative stage: %+v", qtr)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestObsRaceStress races the tracer sampler, registry Gather, event-log
// writers/readers, and Prometheus exposition against live GET/SET/MSET/
// DELETE/iterator/compaction traffic and a concluding Close. Run under
// -race this is the telemetry subsystem's data-race gate.
func TestObsRaceStress(t *testing.T) {
	reg := obs.NewRegistry()
	ev := obs.NewEventLog(128)
	tracer := obs.NewTracer(4, 16, 32) // sample 1 in 4
	o := asyncTestOptions()
	o.WriteMode = WriteAsync
	o.Partitions = 2
	o.Metrics = reg
	o.Events = ev
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	worker := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				fn(i)
			}
		}()
	}
	// Mutators: plain puts, traced puts, deletes, batches.
	worker(func(i int) { db.Put(key(i%512), val(i, 128)) })
	worker(func(i int) {
		if sp := tracer.Sample(); sp != nil {
			sp.SetOp("set", key(i%512))
			var tr OpTrace
			db.PutTraced(key(i%512), val(i, 128), &tr)
			sp.Stage(obs.StageApply, tr.Apply)
			sp.Stage(obs.StageQueueWait, tr.QueueWait)
			tracer.Finish(sp)
		} else {
			db.Put(key(i%512), val(i, 128))
		}
	})
	worker(func(i int) { db.Delete(key(i % 1024)) })
	worker(func(i int) {
		pairs := []KV{
			{Key: key(3000 + i%64), Value: val(i, 64)},
			{Key: key(4000 + i%64), Value: val(i, 64)},
		}
		db.PutBatch(pairs)
	})
	// Readers: gets, scans.
	worker(func(i int) { db.Get(key(i % 1024)) })
	worker(func(i int) { db.Scan(key(i%256), 16) })
	// Telemetry consumers: Gather + render, event tail, slowlog reads.
	worker(func(i int) {
		g := reg.Gather()
		var sb strings.Builder
		obs.WriteProm(&sb, g)
		if sb.Len() == 0 {
			t.Error("empty exposition")
		}
	})
	worker(func(i int) { ev.Tail(32) })
	worker(func(i int) { tracer.Slow(8); tracer.Recent(8); tracer.SlowLen() })

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Post-close: gathering must still be safe (collector reads zeroed DB).
	reg.Gather()
}
