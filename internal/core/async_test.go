package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// asyncTestOptions is testOptions with background compaction enabled (the
// default mode) and a couple of partitions, so commits race real
// foreground traffic.
func asyncTestOptions() Options {
	o := testOptions()
	o.CompactionMode = CompactionAsync
	return o
}

// TestAsyncCompactionCorrectness drives a single-threaded workload in
// async mode and checks the invariants the sync suite checks: demotions
// happen, every key stays readable with its newest value, and NVM ends
// within budget once the worker drains.
func TestAsyncCompactionCorrectness(t *testing.T) {
	db, err := Open(asyncTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 3000
	for i := 0; i < n; i++ {
		if _, err := db.Put(key(i), val(i, 400)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Overwrite a slice of keys so the merge races newer versions.
	for i := 0; i < 300; i++ {
		db.Put(key(i), val(i+7000, 200))
	}
	db.DrainCompactions()
	st := db.Stats()
	if st.Compactions == 0 || st.Demoted == 0 {
		t.Fatalf("no background compaction ran: %+v", st)
	}
	used, budget := db.NVMUsage()
	if used > budget {
		t.Fatalf("NVM over budget after drain: %d > %d", used, budget)
	}
	for i := 0; i < n; i++ {
		want := val(i, 400)
		if i < 300 {
			want = val(i+7000, 200)
		}
		v, tier, _, err := db.Get(key(i))
		if err != nil || tier == TierMiss {
			t.Fatalf("key %d: tier=%v err=%v", i, tier, err)
		}
		if !bytes.Equal(v, want) {
			t.Fatalf("key %d stale after async compaction", i)
		}
	}
}

// TestAsyncModelBasedChurn is the sync model-based churn test in async
// mode: a single-threaded client races the background worker's commits,
// and every read must still return exactly the model's value — the
// commit's version-checked reconciliation must never clobber or resurrect
// a key.
func TestAsyncModelBasedChurn(t *testing.T) {
	o := asyncTestOptions()
	o.Partitions = 2
	o.NVMBudget = 256 << 10
	o.Promotions = true
	db, _ := Open(o)
	defer db.Close()
	model := map[string][]byte{}
	rng := rand.New(rand.NewSource(43))
	const keys = 600
	for step := 0; step < 12000; step++ {
		k := key(rng.Intn(keys))
		switch rng.Intn(10) {
		case 0:
			db.Delete(k)
			delete(model, string(k))
		case 1, 2, 3, 4:
			v := val(rng.Intn(100000), 50+rng.Intn(800))
			if _, err := db.Put(k, v); err != nil {
				t.Fatalf("step %d put: %v", step, err)
			}
			model[string(k)] = v
		default:
			v, tier, _, err := db.Get(k)
			if err != nil {
				t.Fatalf("step %d get: %v", step, err)
			}
			want, exists := model[string(k)]
			if exists != (tier != TierMiss) {
				t.Fatalf("step %d: key %s exists=%v tier=%v", step, k, exists, tier)
			}
			if exists && !bytes.Equal(v, want) {
				t.Fatalf("step %d: key %s value mismatch", step, k)
			}
		}
	}
	db.DrainCompactions()
	if db.Stats().Compactions == 0 {
		t.Fatal("async churn never compacted")
	}
	for i := 0; i < keys; i++ {
		k := key(i)
		v, tier, _, _ := db.Get(k)
		want, exists := model[string(k)]
		if exists != (tier != TierMiss) || (exists && !bytes.Equal(v, want)) {
			t.Fatalf("final sweep: key %d inconsistent", i)
		}
	}
}

// TestAsyncConcurrentOpsRaceMergeCommit is the -race stress for the
// tentpole: concurrent writers, readers, scanners, and deleters on every
// partition while background merges prepare, execute, and commit. Each
// goroutine owns a disjoint key stripe so it can model-check its own data.
func TestAsyncConcurrentOpsRaceMergeCommit(t *testing.T) {
	o := asyncTestOptions()
	o.Partitions = 4
	o.NVMBudget = 1 << 20
	o.Promotions = true
	db, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const (
		workers = 6
		stripe  = 500
		steps   = 4000
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			model := map[string][]byte{}
			base := w * stripe
			for step := 0; step < steps; step++ {
				k := key(base + rng.Intn(stripe))
				switch rng.Intn(10) {
				case 0:
					if _, err := db.Delete(k); err != nil {
						errs <- fmt.Errorf("worker %d del: %w", w, err)
						return
					}
					delete(model, string(k))
				case 1, 2, 3, 4:
					v := val(rng.Intn(100000), 50+rng.Intn(700))
					if _, err := db.Put(k, v); err != nil {
						errs <- fmt.Errorf("worker %d put: %w", w, err)
						return
					}
					model[string(k)] = v
				case 5:
					it := db.NewIterator(k, 20)
					for n := 0; it.Valid() && n < 20; n++ {
						it.Next()
					}
					if err := it.Close(); err != nil {
						errs <- fmt.Errorf("worker %d scan: %w", w, err)
						return
					}
				default:
					v, tier, _, err := db.Get(k)
					if err != nil {
						errs <- fmt.Errorf("worker %d get: %w", w, err)
						return
					}
					want, exists := model[string(k)]
					if exists != (tier != TierMiss) {
						errs <- fmt.Errorf("worker %d: key %s exists=%v tier=%v", w, k, exists, tier)
						return
					}
					if exists && !bytes.Equal(v, want) {
						errs <- fmt.Errorf("worker %d: key %s stale value", w, k)
						return
					}
				}
			}
			// Final per-stripe sweep against the private model.
			for i := base; i < base+stripe; i++ {
				k := key(i)
				v, tier, _, err := db.Get(k)
				if err != nil {
					errs <- fmt.Errorf("worker %d sweep get: %w", w, err)
					return
				}
				want, exists := model[string(k)]
				if exists != (tier != TierMiss) || (exists && !bytes.Equal(v, want)) {
					errs <- fmt.Errorf("worker %d: key %d inconsistent at sweep", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	db.DrainCompactions()
	st := db.Stats()
	if st.Compactions == 0 {
		t.Fatal("stress never compacted in background")
	}
	used, budget := db.NVMUsage()
	if used > budget {
		t.Fatalf("NVM over budget after drain: %d > %d", used, budget)
	}
}

// TestAsyncCloseRacesMergeCommit closes the DB while merges are in flight
// and foreground goroutines hammer it: ops must either succeed or fail
// with ErrClosed, Close must return (worker exits after its round), and
// nothing may deadlock or panic.
func TestAsyncCloseRacesMergeCommit(t *testing.T) {
	for round := 0; round < 5; round++ {
		o := asyncTestOptions()
		o.Partitions = 2
		o.NVMBudget = 256 << 10
		db, err := Open(o)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					k := key(rng.Intn(2000))
					var err error
					switch i % 4 {
					case 0:
						_, err = db.Put(k, val(i, 400))
					case 1:
						_, _, _, err = db.Get(k)
					case 2:
						it := db.NewIterator(k, 10)
						for it.Valid() {
							if !it.Next() {
								break
							}
						}
						err = it.Close()
					default:
						_, err = db.Delete(k)
					}
					if err != nil && err != ErrClosed {
						t.Errorf("op error: %v", err)
						return
					}
				}
			}(w)
		}
		// Let compactions start, then slam the door.
		time.Sleep(5 * time.Millisecond)
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		close(stop)
		wg.Wait()
		if _, err := db.Put(key(1), val(1, 100)); err != ErrClosed {
			t.Fatalf("put after close: %v", err)
		}
		// Post-close accessors must keep working.
		_ = db.Stats()
		db.DrainCompactions()
	}
}

// TestAsyncWriteBackpressure floods a tiny NVM budget with fresh inserts:
// writers must stall (virtually via matured reclaim, and in host time on
// uncommitted merges) rather than blow past the budget unboundedly. In
// this degenerate config (the budget is a few hundred objects and its
// flash-metadata floor grows toward the budget itself) neither mode can
// hold usage strictly under budget — the compactor legitimately gives up
// when force rounds free nothing — so the property pinned here is that
// the backpressure engages (stalls recorded, most writes host-blocking on
// the worker) and the overshoot stays bounded near the budget rather than
// tracking the 12 MB the flood offered.
func TestAsyncWriteBackpressure(t *testing.T) {
	o := asyncTestOptions()
	o.NVMBudget = 128 << 10
	db, _ := Open(o)
	defer db.Close()
	for i := 0; i < 4000; i++ {
		if _, err := db.Put(key(i), val(i, 2000)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	db.DrainCompactions()
	st := db.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compactions under pressure")
	}
	if st.WriteStalls == 0 && st.CompactionHardStalls == 0 {
		t.Fatalf("no stalls recorded under a flooded budget: %+v", st)
	}
	// The bound is about convergence, not an instantaneous snapshot: under
	// whole-repo (-race) load the first drain can return with one more merge
	// round still worth running, leaving usage a few objects above the 1.5x
	// line. Give the compactor extra drain rounds toward the tight bound and
	// enforce 2x as the hard cap — still ~50x below the 12 MB the flood
	// offered, so real backpressure loss would blow through it regardless of
	// scheduling noise.
	used, budget := db.NVMUsage()
	for r := 0; r < 3 && used > budget+budget/2; r++ {
		db.DrainCompactions()
		used, _ = db.NVMUsage()
	}
	if used > 2*budget {
		t.Fatalf("usage %d far over budget %d despite backpressure", used, budget)
	}
}

// TestAsyncIteratorDuringMerge pins a scan before heavy churn and verifies
// it still sees exactly its creation-time snapshot while background merges
// demote and delete beneath it.
func TestAsyncIteratorDuringMerge(t *testing.T) {
	o := asyncTestOptions()
	db, _ := Open(o)
	defer db.Close()
	const n = 1000
	for i := 0; i < n; i++ {
		db.Put(key(i), val(i, 300))
	}
	db.DrainCompactions()
	it := db.NewIterator(nil, 0)
	// Churn: overwrite and delete everything while the scan is open.
	for i := 0; i < n; i++ {
		db.Put(key(i), val(i+9000, 100))
	}
	for i := 0; i < n; i += 2 {
		db.Delete(key(i))
	}
	seen := 0
	for ; it.Valid(); it.Next() {
		want := val(seen, 300)
		if !bytes.Equal(it.Value(), want) {
			t.Fatalf("scan[%d] observed post-snapshot value", seen)
		}
		seen++
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Fatalf("snapshot scan saw %d/%d keys", seen, n)
	}
}

// TestAsyncSerialVirtualFidelity runs the same serial workload in sync and
// async modes and checks the simulated elapsed time agrees within a loose
// band — the virtual-time model (BG clock, compEndAt serialization, space
// maturation) must be preserved by the async split, with divergence only
// from job start times and selection state.
func TestAsyncSerialVirtualFidelity(t *testing.T) {
	run := func(mode CompactionMode) time.Duration {
		o := testOptions()
		o.CompactionMode = mode
		db, err := Open(o)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 3000; i++ {
			db.Put(key(i), val(i, 400))
		}
		for i := 0; i < 6000; i++ {
			if rng.Intn(2) == 0 {
				db.Get(key(rng.Intn(3000)))
			} else {
				db.Put(key(rng.Intn(3000)), val(i, 400))
			}
		}
		db.AdvanceAll()
		return db.Elapsed()
	}
	sync := run(CompactionSync)
	async := run(CompactionAsync)
	ratio := float64(async) / float64(sync)
	if ratio < 0.75 || ratio > 1.25 {
		t.Fatalf("async virtual time diverges from sync: sync=%v async=%v (ratio %.2f)",
			sync, async, ratio)
	}
}

// TestAsyncCommitConflictDetection forces a conflict: pause-free but
// deterministic enough — run heavy overwrite traffic during async merges
// and require that the engine recorded at least some commit conflicts
// across rounds, proving the reconciliation path actually fires. (The
// model-based tests prove it fires *correctly*.)
func TestAsyncCommitConflictDetection(t *testing.T) {
	o := asyncTestOptions()
	o.NVMBudget = 256 << 10
	db, _ := Open(o)
	defer db.Close()
	rng := rand.New(rand.NewSource(11))
	var st Stats
	for round := 0; round < 60; round++ {
		for i := 0; i < 2000; i++ {
			db.Put(key(rng.Intn(1200)), val(i+round*2000, 400))
		}
		if st = db.Stats(); st.CommitConflicts > 0 {
			break
		}
	}
	db.DrainCompactions()
	st = db.Stats()
	if st.Compactions == 0 {
		t.Fatal("no background compactions ran")
	}
	if st.CommitConflicts == 0 {
		t.Skip("no commit conflict surfaced on this schedule (timing-dependent); correctness is pinned by the model tests")
	}
}

// TestCompactionModeString pins the flag/INFO rendering of the modes.
func TestCompactionModeString(t *testing.T) {
	if CompactionAsync.String() != "async" || CompactionSync.String() != "sync" {
		t.Fatal("CompactionMode.String mismatch")
	}
	var zero CompactionMode
	if zero != CompactionAsync {
		t.Fatal("zero value must be async (the default mode)")
	}
}

// TestAsyncBacklogGauge checks Stats.CompactionBacklog reports in-flight
// background work and settles to zero after a drain.
func TestAsyncBacklogGauge(t *testing.T) {
	o := asyncTestOptions()
	o.NVMBudget = 256 << 10
	db, _ := Open(o)
	defer db.Close()
	sawBacklog := false
	for i := 0; i < 4000 && !sawBacklog; i++ {
		db.Put(key(i), val(i, 800))
		if i%50 == 0 && db.Stats().CompactionBacklog > 0 {
			sawBacklog = true
		}
	}
	db.DrainCompactions()
	if db.Stats().CompactionBacklog != 0 {
		t.Fatal("backlog gauge nonzero after drain")
	}
	if !sawBacklog {
		t.Skip("worker drained every job between polls (fast host); gauge path still covered by drain assertion")
	}
}

// ---- Satellite regressions ----

// TestDeletedKeyNeverReentersTracker is the tombstone-resurrection
// regression: partition.del Forgets the key, and the internal tombstone
// write that follows must NOT touch it back into the tracker (the old
// unconditional touch re-inserted it, evicted a live hot key, and let
// ShouldPin pin the tombstone in NVM forever).
func TestDeletedKeyNeverReentersTracker(t *testing.T) {
	db, _ := Open(testOptions()) // sync mode: deterministic
	const n = 2000
	for i := 0; i < n; i++ {
		db.Put(key(i), val(i, 400))
	}
	if db.Stats().FlashObjects == 0 {
		t.Fatal("setup: nothing demoted to flash")
	}
	// Delete keys that have flash versions → tombstones route through put.
	var deletedKeys [][]byte
	for i := 0; i < n && len(deletedKeys) < 200; i++ {
		_, tier, _, _ := db.Get(key(i))
		if tier != TierFlash {
			continue
		}
		if _, err := db.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
		p := db.parts[0]
		p.mu.Lock()
		_, tracked := p.trk.Clock(key(i))
		p.mu.Unlock()
		if tracked {
			t.Fatalf("deleted key %d re-entered the popularity tracker via its tombstone write", i)
		}
		deletedKeys = append(deletedKeys, key(i))
	}
	if len(deletedKeys) == 0 {
		t.Fatal("setup: no flash-resident keys to delete")
	}
	// Under continued churn the tombstones must drain, not pin.
	for i := n; i < n+3000; i++ {
		db.Put(key(i), val(i, 400))
	}
	st := db.Stats()
	if st.DroppedTombstones == 0 {
		t.Fatalf("tombstones never annihilated under churn: %+v", st)
	}
	// The deleted keys must have stayed out of the tracker and dead.
	p := db.parts[0]
	for _, k := range deletedKeys {
		p.mu.Lock()
		_, tracked := p.trk.Clock(k)
		p.mu.Unlock()
		if tracked {
			t.Fatalf("deleted key %q crept back into the tracker", k)
		}
		if _, tier, _, _ := db.Get(k); tier != TierMiss {
			t.Fatalf("deleted key %q resurrected (tier %v)", k, tier)
		}
	}
}

// TestDelLatencyComposedFromPhases pins the del-latency fix: in a
// single-client run the reported latency must equal the partition clock
// advance attributable to the delete itself (phase 1 + tombstone put),
// with and without a flash-resident older version.
func TestDelLatencyComposedFromPhases(t *testing.T) {
	db, _ := Open(testOptions())
	const n = 2000
	for i := 0; i < n; i++ {
		db.Put(key(i), val(i, 400))
	}
	db.AdvanceAll()
	// NVM-only delete: no tombstone phase.
	freshKey := key(n + 1)
	db.Put(freshKey, val(1, 100))
	before := db.PartitionClock(0)
	lat, err := db.Delete(freshKey)
	if err != nil {
		t.Fatal(err)
	}
	after := db.PartitionClock(0)
	if lat != after-before {
		t.Fatalf("NVM-only del latency %v != clock advance %v", lat, after-before)
	}
	// Flash-resident delete: phase 1 + tombstone put must compose exactly.
	flashKey := []byte(nil)
	for i := 0; i < n; i++ {
		if _, tier, _, _ := db.Get(key(i)); tier == TierFlash {
			flashKey = key(i)
			break
		}
	}
	if flashKey == nil {
		t.Fatal("setup: no flash-resident key")
	}
	before = db.PartitionClock(0)
	lat, err = db.Delete(flashKey)
	if err != nil {
		t.Fatal(err)
	}
	after = db.PartitionClock(0)
	if lat <= 0 || lat > after-before {
		t.Fatalf("flash del latency %v outside (0, %v]", lat, after-before)
	}
	// The tombstone write may trigger a compaction whose stall time is
	// part of the delete; in the absence of one, the composition is exact.
	if db.Stats().WriteStalls == 0 && lat != after-before {
		t.Fatalf("flash del latency %v != clock advance %v", lat, after-before)
	}
}

// TestPromotionCompactionEmptyManifest pins the reordered early-out:
// invoking the promotion step with nothing on flash must do no candidate
// work and no compaction, in both modes.
func TestPromotionCompactionEmptyManifest(t *testing.T) {
	for _, mode := range []CompactionMode{CompactionSync, CompactionAsync} {
		o := testOptions()
		o.CompactionMode = mode
		o.Promotions = true
		db, _ := Open(o)
		for i := 0; i < 20; i++ {
			db.Put(key(i), val(i, 100)) // stays well under the watermark
		}
		p := db.parts[0]
		p.mu.Lock()
		if mode == CompactionSync {
			p.runPromotionCompaction()
		} else {
			p.asyncPromotionJob()
		}
		st := p.stats
		p.mu.Unlock()
		if st.Compactions != 0 || st.ReadTriggeredComps != 0 {
			t.Fatalf("mode %v: promotion on empty manifest compacted: %+v", mode, st)
		}
		db.Close()
	}
}
