package core

import (
	"sync/atomic"

	"github.com/prismdb/prismdb/internal/btree"
	"github.com/prismdb/prismdb/internal/sst"
	"github.com/prismdb/prismdb/internal/tracker"
)

// This file holds the lock-free GET fast path's substrate: the published
// read view, the partition's atomically published virtual-clock frontier,
// the sharded read counters, the bounded popularity touch ring, and the
// slot-read buffer rack. partition.get (partition.go) is the consumer.
//
// The publication rule: every partition mutation that changes what a reader
// could observe structurally — a B-tree insert/delete or a manifest change —
// republishes the view under p.mu before the operation returns, pairing the
// copy-on-write B-tree root with a refcounted manifest snapshot. In-place
// slab updates do NOT republish: the view's locations still resolve, and a
// reader picks up the new bytes directly from the (internally synchronized)
// slab file. Within a commit that moves keys between tiers, the manifest
// always installs BEFORE the B-tree entries drop, so any published pairing
// satisfies "tree version ≤ manifest version": a key missing from the
// view's tree is already readable from its snapshot's tables, and a key
// still in the tree shadows whatever the snapshot holds.
//
// Readers never take p.mu. Their safety against slab reclamation is
// validation, not pinning: a slot read through the concurrent slab path is
// trusted only if the decoded record's key equals the requested key. A slot
// freed (zeroed header), recycled to another key, or moved mid-read fails
// validation, which proves the view is stale — the reader re-acquires the
// current view and retries, falling back to the partition lock after a few
// attempts (churn that hot is already serializing on the writer side). A
// recycled slot that holds the SAME key again is, by definition, that key's
// newer value — returning it is linearizable. Slot writes and reads go
// through the slab file's lock, so a reader sees a whole old record or a
// whole new one, never a torn mix.

// readView is one partition's published read view: an immutable
// copy-on-write B-tree snapshot paired with a refcounted manifest snapshot,
// swapped atomically by writers. Acquire/release mirrors sst.Manifest's
// snapshot protocol: the publisher holds one reference until the view is
// superseded, each reader holds one for the duration of a single GET.
type readView struct {
	tree *btree.Tree
	snap *sst.Snapshot

	refs  atomic.Int64
	freed atomic.Bool
}

// acquireView returns the current view with a reference taken. Lock-free
// and allocation-free; pair with view.release.
func (p *partition) acquireView() *readView {
	for {
		v := p.view.Load()
		v.refs.Add(1)
		// Validate after incrementing: while the view is still current the
		// publisher's own reference was included in the count we incremented
		// from, so the view is alive and ours. Otherwise it may already be
		// draining — undo and retry on the successor.
		if p.view.Load() == v {
			return v
		}
		v.release()
	}
}

// release drops one reference; the last one releases the manifest snapshot.
// Safe to call from any goroutine without locks (Snapshot.Release is
// internally synchronized), so readers can retire views off-lock.
func (v *readView) release() {
	if v.refs.Add(-1) > 0 {
		return
	}
	// A concurrent acquireView may briefly resurrect the count and release
	// it again; only the first drop-to-zero frees the snapshot.
	if !v.freed.CompareAndSwap(false, true) {
		return
	}
	v.snap.Release()
}

// publishView swaps in a fresh view over the partition's current B-tree
// root and manifest snapshot and retires the old one. Called under p.mu by
// every mutation that changes the tree or the manifest (see the publication
// rule above).
func (p *partition) publishView() {
	nv := &readView{tree: p.index.Snapshot(), snap: p.man.Acquire()}
	nv.refs.Store(1) // the publisher's reference
	p.stats.ViewRepublishes++
	old := p.view.Swap(nv)
	if old != nil {
		old.release()
	}
}

// casMaxVclock publishes t as the partition's virtual-time frontier if it
// is ahead of it. vclock is the partition's monotone published clock: the
// maximum of the worker clock (p.clk, published by lock holders on their
// way out) and every completed off-lock read's private clock. Lock-free
// GETs seed from it and fold their end time back into it, which is what
// keeps serial virtual-time sequencing identical to the locked path: each
// op begins where the previous one ended.
func (p *partition) casMaxVclock(t int64) {
	for {
		cur := p.vclock.Load()
		if t <= cur || p.vclock.CompareAndSwap(cur, t) {
			return
		}
	}
}

// frontier returns the partition's published virtual-time frontier: the
// worker clock joined with every completed lock-free read's fold-back.
// It takes the lock briefly for a consistent worker-clock read; the vclock
// join happens after release (vclock is monotone, so the result is a valid
// frontier at some point during the call).
func (p *partition) frontier() int64 {
	p.mu.Lock()
	t := p.clk.Now()
	p.mu.Unlock()
	if v := p.vclock.Load(); v > t {
		t = v
	}
	return t
}

// syncClockLocked pulls the worker clock up to the published frontier.
// Called on lock entry by every path that charges time to p.clk, so a write
// issued after an off-lock read starts no earlier than that read ended.
func (p *partition) syncClockLocked() {
	p.clk.AdvanceTo(p.vclock.Load())
}

// sinkShards is the number of read-counter shards per partition. Off-lock
// readers pick a shard by key index, spreading the atomic traffic of a hot
// partition across cache lines; the owner drains all shards under p.mu.
const sinkShards = 4

// readShard is one shard of the off-lock read counters. The trailing pad
// keeps shards on separate cache lines so contended GETs don't false-share.
type readShard struct {
	gets    atomic.Int64
	dram    atomic.Int64
	nvm     atomic.Int64
	flash   atomic.Int64
	miss    atomic.Int64
	bloomFP atomic.Int64
	_       [128 - 6*8]byte
}

// drainReadsLocked folds the off-lock read state into the owner's guarded
// structures: counters into p.stats, tier counts into the read-trigger
// accumulators, queued popularity touches into the tracker and buckets, and
// finally one read-trigger step per drained read — so the §5.3 state
// machine advances exactly as if each GET had run it inline, just in
// batches. Caller holds p.mu.
func (p *partition) drainReadsLocked() {
	// Any drain restarts the readers' cadence: without this, a writer-heavy
	// phase (where writers win every drain) would leave sinceDrain
	// saturated and every subsequent GET would burn a TryLock CAS on the
	// contended mutex line. The write-side cadence restarts too.
	p.sinceDrain.Store(0)
	p.wdrain = 0
	var gets, dram, nvm, flash, miss, fp int64
	for i := range p.sink {
		s := &p.sink[i]
		gets += s.gets.Swap(0)
		dram += s.dram.Swap(0)
		nvm += s.nvm.Swap(0)
		flash += s.flash.Swap(0)
		miss += s.miss.Swap(0)
		fp += s.bloomFP.Swap(0)
	}
	p.touches.drain(func(key []byte, idx uint64, loc tracker.Location) {
		p.touch(key, idx, loc)
	})
	if gets == 0 {
		return
	}
	p.stats.Gets += gets
	p.stats.GetDRAM += dram
	p.stats.GetNVM += nvm
	p.stats.GetFlash += flash
	p.stats.GetMiss += miss
	p.stats.BloomFalsePositives += fp
	p.rt.nvmReads += dram + nvm
	p.rt.flashReads += flash
	for i := int64(0); i < gets; i++ {
		p.rt.onOp(p, true)
	}
}

// writerDrainLocked is the write path's cadence-driven fold, used by the
// WriteAsync direct (uncontended) fast path: a batch of one drains read
// state every drainEvery writes or when the touch ring crowds, the same
// bounded staleness the reader cadence and the owner's once-per-batch drain
// already accept. The legacy WriteSync path keeps its deterministic
// fold-on-every-op behavior. Caller holds p.mu.
func (p *partition) writerDrainLocked() {
	p.wdrain++
	if p.wdrain >= drainEvery || p.touches.crowded() {
		p.drainReadsLocked()
	}
}

// maybeDrainReads opportunistically drains the read-side state from a
// lock-free GET: every drainEvery reads (or when the touch ring is filling
// up) it TRIES the partition lock and drains if nobody holds it. TryLock
// never blocks, so a reader's worst case is skipping the drain — bounding
// counter and popularity staleness at roughly drainEvery reads per reader
// plus one ring, without ever making a GET wait. Writers drain on every
// locked operation, so any write traffic at all keeps staleness near zero.
func (p *partition) maybeDrainReads() {
	if p.sinceDrain.Add(1) < drainEvery && !p.touches.crowded() {
		return
	}
	if !p.mu.TryLock() {
		return
	}
	p.syncClockLocked()
	p.drainReadsLocked()
	p.casMaxVclock(p.clk.Now())
	p.mu.Unlock()
}

// drainEvery is the reader-side drain cadence in operations. Small enough
// that read-trigger decisions lag by at most a few dozen ops on read-only
// workloads, large enough that the uncontended TryLock cost is noise.
const drainEvery = 16

// touchKeyMax is the largest key the touch ring stores inline. Longer keys
// skip popularity tracking on the lock-free path (the next LOCKED touch of
// the key records it as usual); keeping the entry fixed-size is what keeps
// the GET path allocation-free.
const touchKeyMax = 48

// touchRingSize bounds the ring (power of two). A full ring drops new
// touches rather than blocking a read: popularity is a heuristic, and the
// drain cadence keeps the ring far from full in practice.
const touchRingSize = 512

// touchEntry is one queued popularity touch. seq is the Vyukov-queue slot
// sequencer: slot i accepts producer position pos when seq == pos, publishes
// at seq == pos+1, and is handed back to the next lap by the consumer at
// seq == pos + ring size.
type touchEntry struct {
	seq  atomic.Uint64
	idx  uint64
	loc  tracker.Location
	klen uint8
	key  [touchKeyMax]byte
}

// touchRing is a bounded MPSC ring buffer: lock-free GETs push popularity
// touches from any goroutine; whoever holds p.mu drains them into
// tracker.Touch / buckets.OnHot. Based on the classic bounded MPMC queue
// (Vyukov), specialised to a mutex-serialized consumer.
type touchRing struct {
	ents []touchEntry
	mask uint64
	tail atomic.Uint64 // next producer position
	head atomic.Uint64 // next consumer position (written only under p.mu)
}

func newTouchRing() *touchRing {
	r := &touchRing{ents: make([]touchEntry, touchRingSize), mask: touchRingSize - 1}
	for i := range r.ents {
		r.ents[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues a touch, returning false (dropping it) when the ring is
// full or the key is too long to store inline. Never blocks, never
// allocates.
func (r *touchRing) push(key []byte, idx uint64, loc tracker.Location) bool {
	if len(key) > touchKeyMax {
		return false
	}
	pos := r.tail.Load()
	for {
		e := &r.ents[pos&r.mask]
		seq := e.seq.Load()
		switch {
		case seq == pos:
			if r.tail.CompareAndSwap(pos, pos+1) {
				e.idx = idx
				e.loc = loc
				e.klen = uint8(len(key))
				copy(e.key[:], key)
				e.seq.Store(pos + 1)
				return true
			}
			pos = r.tail.Load()
		case seq < pos:
			return false // a full lap behind: ring is full
		default:
			pos = r.tail.Load()
		}
	}
}

// drain consumes every published entry. Caller holds p.mu (the consumer
// side is single-threaded by the lock; the atomics only synchronize with
// producers).
func (r *touchRing) drain(fn func(key []byte, idx uint64, loc tracker.Location)) {
	head := r.head.Load()
	for {
		e := &r.ents[head&r.mask]
		if e.seq.Load() != head+1 {
			break
		}
		fn(e.key[:e.klen], e.idx, e.loc)
		e.seq.Store(head + uint64(len(r.ents)))
		head++
	}
	r.head.Store(head)
}

// crowded reports whether the ring is at least half full — the reader-side
// signal to attempt an early drain.
func (r *touchRing) crowded() bool {
	return r.tail.Load()-r.head.Load() >= uint64(len(r.ents))/2
}

// readBuf is a slot-read buffer plus its rack holder. The holder travels
// with the buffer through take/put, so recycling it requires no allocation.
type readBuf struct {
	b []byte
}

// bufRack is a small lock-free rack of slot-read buffers for off-lock GETs
// (the slab manager's own scratch is partition-lock property). Steady state
// serves up to rackSlots concurrent readers allocation-free; beyond that,
// take falls back to a fresh buffer the put side may then drop for the GC.
type bufRack struct {
	slots [rackSlots]atomic.Pointer[readBuf]
}

const rackSlots = 8

func (r *bufRack) take() *readBuf {
	for i := range r.slots {
		if h := r.slots[i].Swap(nil); h != nil {
			return h
		}
	}
	return &readBuf{}
}

func (r *bufRack) put(h *readBuf) {
	for i := range r.slots {
		if r.slots[i].CompareAndSwap(nil, h) {
			return
		}
	}
	// Rack full: let the GC have it.
}
