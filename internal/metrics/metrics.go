// Package metrics provides log-bucketed latency histograms and counters for
// the experiment harness: p50/p99 latencies (Figs 10, 11, 13), full CDFs
// (Fig 14a), and throughput accounting.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram records durations in logarithmic buckets (HdrHistogram-style:
// ~4% relative error), cheap enough to sit on the critical path of a
// simulated worker.
type Histogram struct {
	buckets []int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// bucketCount covers 1ns..~18s with 16 sub-buckets per power of two.
const (
	subBucketBits = 4
	subBuckets    = 1 << subBucketBits
	bucketCount   = 64 * subBuckets
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]int64, bucketCount), min: math.MaxInt64}
}

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v int64) int {
	if v < 1 {
		v = 1
	}
	exp := 63 - leadingZeros(uint64(v))
	var sub int64
	if exp >= subBucketBits {
		sub = (v >> (exp - subBucketBits)) & (subBuckets - 1)
	} else {
		sub = (v << (subBucketBits - exp)) & (subBuckets - 1)
	}
	idx := exp*subBuckets + int(sub)
	if idx >= bucketCount {
		idx = bucketCount - 1
	}
	return idx
}

func leadingZeros(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// bucketValue returns a representative value for bucket idx (its lower bound).
func bucketValue(idx int) int64 {
	exp := idx / subBuckets
	sub := int64(idx % subBuckets)
	if exp >= subBucketBits {
		return (1 << exp) + (sub << (exp - subBucketBits))
	}
	return (1 << exp) + (sub >> (subBucketBits - exp))
}

// NumBuckets is the number of log buckets a Histogram carries. Exported so
// lock-free recorders (internal/obs) can accumulate per-bucket counts in
// atomic arrays with the same geometry and fold them back via FromBuckets.
const NumBuckets = bucketCount

// BucketIndex maps a value (nanoseconds for durations, raw units otherwise)
// to its log bucket, 0 ≤ idx < NumBuckets.
func BucketIndex(v int64) int { return bucketIndex(v) }

// BucketBound returns bucket idx's lower bound — the representative value
// Quantile and CDF report for observations in that bucket.
func BucketBound(idx int) int64 { return bucketValue(idx) }

// FromBuckets builds a Histogram from externally accumulated per-bucket
// counts (len must be NumBuckets, indexed by BucketIndex) plus the exact
// sum/min/max tracked alongside them. The counts are copied.
func FromBuckets(counts []int64, sum, min, max int64) *Histogram {
	if len(counts) != bucketCount {
		panic("metrics: FromBuckets counts length mismatch")
	}
	h := NewHistogram()
	var n int64
	for i, c := range counts {
		h.buckets[i] = c
		n += c
	}
	h.count = n
	h.sum = sum
	if n > 0 {
		h.min = min
		h.max = max
	}
	return h
}

// Record adds one duration observation.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the average observation.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Min returns the smallest observation.
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.max)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1), e.g. 0.5 for the median.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			v := bucketValue(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Merge adds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.count > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Latency  time.Duration
	Fraction float64
}

// CDF returns the cumulative distribution over the recorded observations,
// one point per non-empty bucket.
func (h *Histogram) CDF() []CDFPoint {
	if h.count == 0 {
		return nil
	}
	var out []CDFPoint
	var seen int64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		seen += c
		out = append(out, CDFPoint{
			Latency:  time.Duration(bucketValue(i)),
			Fraction: float64(seen) / float64(h.count),
		})
	}
	return out
}

// BucketCount is one non-empty bucket of a cumulative distribution: the
// bucket's upper bound and the count of observations ≤ it.
type BucketCount struct {
	Bound int64
	Cum   int64
}

// CumulativeBuckets returns (upper bound, cumulative count) pairs, one per
// non-empty bucket — the shape Prometheus histogram exposition wants.
func (h *Histogram) CumulativeBuckets() []BucketCount {
	if h.count == 0 {
		return nil
	}
	var out []BucketCount
	var seen int64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		seen += c
		bound := bucketValue(i)
		if i+1 < bucketCount {
			bound = bucketValue(i+1) // upper edge: next bucket's lower bound
		}
		out = append(out, BucketCount{Bound: bound, Cum: seen})
	}
	return out
}

// Sum returns the sum of all observations in nanoseconds/raw units.
func (h *Histogram) Sum() int64 { return h.sum }

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Sample keeps raw values for small exact distributions (used in tests to
// validate Histogram accuracy). Values are sorted lazily: the first
// Quantile after a Record sorts in place, and subsequent Quantiles are
// O(1), instead of re-copying and re-sorting every call.
type Sample struct {
	vals   []time.Duration
	sorted bool
}

// Record adds an observation, invalidating the sorted order.
func (s *Sample) Record(d time.Duration) {
	s.vals = append(s.vals, d)
	s.sorted = false
}

// Count returns the number of observations.
func (s *Sample) Count() int { return len(s.vals) }

// Quantile returns the exact q-quantile.
func (s *Sample) Quantile(q float64) time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Slice(s.vals, func(i, j int) bool { return s.vals[i] < s.vals[j] })
		s.sorted = true
	}
	idx := int(q * float64(len(s.vals)))
	if idx >= len(s.vals) {
		idx = len(s.vals) - 1
	}
	return s.vals[idx]
}
