package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	if h.CDF() != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Record(100 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 100*time.Microsecond || h.Max() != 100*time.Microsecond {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	q := h.Quantile(0.5)
	if q != 100*time.Microsecond {
		t.Fatalf("p50 = %v (clamped to min/max)", q)
	}
}

func TestQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	s := &Sample{}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100000; i++ {
		// Log-uniform from 1µs to ~100ms.
		v := time.Duration(float64(time.Microsecond) * float64(uint64(1)<<uint(rng.Intn(17))) * (1 + rng.Float64()))
		h.Record(v)
		s.Record(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := float64(h.Quantile(q))
		want := float64(s.Quantile(q))
		ratio := got / want
		if ratio < 0.85 || ratio > 1.15 {
			t.Fatalf("q=%.2f: histogram %v vs exact %v (ratio %.3f)",
				q, h.Quantile(q), s.Quantile(q), ratio)
		}
	}
}

func TestNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5 * time.Second)
	if h.Count() != 1 || h.Min() != 0 {
		t.Fatalf("negative record: count=%d min=%v", h.Count(), h.Min())
	}
}

func TestMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 100; i++ {
		a.Record(time.Duration(i) * time.Microsecond)
	}
	for i := 101; i <= 200; i++ {
		b.Record(time.Duration(i) * time.Microsecond)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != time.Microsecond || a.Max() != 200*time.Microsecond {
		t.Fatalf("merged min=%v max=%v", a.Min(), a.Max())
	}
	p50 := a.Quantile(0.5)
	if p50 < 80*time.Microsecond || p50 > 125*time.Microsecond {
		t.Fatalf("merged p50 = %v, want ≈100µs", p50)
	}
}

func TestCDFMonotone(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		h.Record(time.Duration(rng.Intn(1000000)))
	}
	cdf := h.CDF()
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	prev := CDFPoint{}
	for _, p := range cdf {
		if p.Latency < prev.Latency || p.Fraction < prev.Fraction {
			t.Fatalf("CDF not monotone: %+v after %+v", p, prev)
		}
		prev = p
	}
	if last := cdf[len(cdf)-1].Fraction; last != 1.0 {
		t.Fatalf("CDF ends at %f", last)
	}
}

func TestQuickQuantileBounds(t *testing.T) {
	// Property: quantiles are within [min, max] and monotone in q.
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Record(time.Duration(v))
		}
		last := time.Duration(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
			val := h.Quantile(q)
			if val < h.Min() || val > h.Max() || val < last {
				return false
			}
			last = val
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAndString(t *testing.T) {
	h := NewHistogram()
	h.Record(10 * time.Microsecond)
	h.Record(20 * time.Microsecond)
	if h.Mean() != 15*time.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestSampleLazySortInvalidation(t *testing.T) {
	s := &Sample{}
	if s.Quantile(0.5) != 0 {
		t.Fatal("empty sample quantile")
	}
	s.Record(30)
	s.Record(10)
	s.Record(20)
	if got := s.Quantile(0); got != 10 {
		t.Fatalf("q0 = %v, want 10", got)
	}
	if got := s.Quantile(1); got != 30 {
		t.Fatalf("q1 = %v, want 30", got)
	}
	// A Record after a Quantile must invalidate the sorted order.
	s.Record(5)
	if got := s.Quantile(0); got != 5 {
		t.Fatalf("q0 after insert = %v, want 5", got)
	}
	if got := s.Quantile(1); got != 30 {
		t.Fatalf("q1 after insert = %v, want 30", got)
	}
	if s.Count() != 4 {
		t.Fatalf("count = %d", s.Count())
	}
}
