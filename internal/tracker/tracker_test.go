package tracker

import (
	"fmt"
	"testing"
	"testing/quick"
)

func k(i int) []byte { return []byte(fmt.Sprintf("key-%05d", i)) }

func TestInsertAndTouch(t *testing.T) {
	tr := New(10)
	tr.Touch(k(1), 1, NVM)
	if c, ok := tr.Clock(k(1)); !ok || c != 0 {
		t.Fatalf("fresh insert clock = %d,%v want 0,true", c, ok)
	}
	tr.Touch(k(1), 1, NVM)
	if c, _ := tr.Clock(k(1)); c != MaxClock {
		t.Fatalf("re-access clock = %d, want %d", c, MaxClock)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, ok := tr.Clock(k(2)); ok {
		t.Fatal("untracked key reported tracked")
	}
}

func TestDistributionMaintained(t *testing.T) {
	tr := New(100)
	for i := 0; i < 10; i++ {
		tr.Touch(k(i), uint64(i), NVM) // all clock 0
	}
	d := tr.Distribution()
	if d[0] != 10 || d[3] != 0 {
		t.Fatalf("dist = %v", d)
	}
	for i := 0; i < 4; i++ {
		tr.Touch(k(i), uint64(i), NVM) // 4 keys jump to clock 3
	}
	d = tr.Distribution()
	if d[0] != 6 || d[3] != 4 {
		t.Fatalf("dist = %v", d)
	}
	total := 0
	for _, n := range d {
		total += n
	}
	if total != tr.Len() {
		t.Fatalf("dist total %d != len %d", total, tr.Len())
	}
}

func TestClockEviction(t *testing.T) {
	tr := New(4)
	for i := 0; i < 4; i++ {
		tr.Touch(k(i), uint64(i), NVM)
	}
	// Heat up keys 0 and 1.
	tr.Touch(k(0), 0, NVM)
	tr.Touch(k(1), 1, NVM)
	// Inserting a 5th key must evict one of the cold keys (2 or 3),
	// never the hot ones.
	evicted, did := tr.Touch(k(9), 9, NVM)
	if !did {
		t.Fatal("no eviction at capacity")
	}
	if evicted != 2 && evicted != 3 {
		t.Fatalf("evicted hot key idx %d", evicted)
	}
	if _, ok := tr.Clock(k(0)); !ok {
		t.Fatal("hot key 0 lost")
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestEvictionDecrementsClocks(t *testing.T) {
	tr := New(2)
	tr.Touch(k(0), 0, NVM)
	tr.Touch(k(0), 0, NVM) // clock 3
	tr.Touch(k(1), 1, NVM)
	tr.Touch(k(1), 1, NVM) // clock 3
	// Insert forces the hand to decrement both hot keys until one hits 0.
	tr.Touch(k(2), 2, NVM)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// One of 0/1 was evicted after decrements; survivor's clock < 3.
	survivors := 0
	for _, key := range [][]byte{k(0), k(1)} {
		if c, ok := tr.Clock(key); ok {
			survivors++
			if c >= MaxClock {
				t.Fatalf("survivor clock %d not decremented", c)
			}
		}
	}
	if survivors != 1 {
		t.Fatalf("survivors = %d, want 1", survivors)
	}
}

func TestLocationTracking(t *testing.T) {
	tr := New(10)
	tr.Touch(k(0), 0, NVM)
	tr.Touch(k(1), 1, Flash)
	if f := tr.FlashFraction(); f != 0.5 {
		t.Fatalf("FlashFraction = %f", f)
	}
	tr.SetLocation(k(0), Flash)
	if f := tr.FlashFraction(); f != 1.0 {
		t.Fatalf("FlashFraction = %f after demotion", f)
	}
	tr.SetLocation(k(0), NVM)
	tr.SetLocation(k(1), NVM)
	if f := tr.FlashFraction(); f != 0 {
		t.Fatalf("FlashFraction = %f after promotions", f)
	}
	// SetLocation on untracked key is a no-op.
	tr.SetLocation(k(99), Flash)
	if f := tr.FlashFraction(); f != 0 {
		t.Fatalf("untracked SetLocation changed fraction: %f", f)
	}
}

func TestForget(t *testing.T) {
	tr := New(10)
	tr.Touch(k(0), 0, Flash)
	tr.Forget(k(0))
	if tr.Len() != 0 || tr.FlashFraction() != 0 {
		t.Fatalf("len=%d flash=%f after forget", tr.Len(), tr.FlashFraction())
	}
	d := tr.Distribution()
	if d[0] != 0 {
		t.Fatalf("dist = %v after forget", d)
	}
	tr.Forget(k(1)) // no-op
	// Slot must be reusable.
	for i := 0; i < 10; i++ {
		tr.Touch(k(i), uint64(i), NVM)
	}
	if tr.Len() != 10 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestColdness(t *testing.T) {
	tr := New(10)
	if c := tr.Coldness(k(0)); c != 1.0 {
		t.Fatalf("untracked coldness = %f, want 1", c)
	}
	tr.Touch(k(0), 0, NVM) // clock 0
	if c := tr.Coldness(k(0)); c != 1.0 {
		t.Fatalf("clock-0 coldness = %f, want 1", c)
	}
	tr.Touch(k(0), 0, NVM) // clock 3
	if c := tr.Coldness(k(0)); c != 0.25 {
		t.Fatalf("clock-3 coldness = %f, want 0.25", c)
	}
}

func TestQuickInvariants(t *testing.T) {
	// Property: under random touch sequences, size ≤ capacity, the
	// distribution sums to size, and flash count matches entries.
	f := func(ops []uint16, capRaw uint8) bool {
		capacity := int(capRaw)%32 + 1
		tr := New(capacity)
		for _, op := range ops {
			key := k(int(op) % 64)
			loc := NVM
			if op%2 == 0 {
				loc = Flash
			}
			tr.Touch(key, uint64(op)%64, loc)
		}
		if tr.Len() > tr.Capacity() {
			return false
		}
		d := tr.Distribution()
		total := 0
		for _, n := range d {
			if n < 0 {
				return false
			}
			total += n
		}
		if total != tr.Len() {
			return false
		}
		ff := tr.FlashFraction()
		return ff >= 0 && ff <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityOne(t *testing.T) {
	tr := New(0) // raised to 1
	if tr.Capacity() != 1 {
		t.Fatalf("capacity = %d", tr.Capacity())
	}
	tr.Touch(k(0), 7, NVM)
	tr.Touch(k(0), 7, NVM) // clock 3
	evicted, did := tr.Touch(k(1), 1, NVM)
	if !did || evicted != 7 {
		t.Fatalf("evicted %d,%v", evicted, did)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}
