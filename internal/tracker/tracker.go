// Package tracker implements PrismDB's lightweight object-popularity
// tracker (§4.3): a capacity-bounded map from keys to a 1-byte metadata
// value — two clock bits plus one location bit (NVM or flash) — evicted with
// the classic CLOCK algorithm. The tracker deliberately covers only a
// fraction of the database's keys (10–20 % in the paper); untracked keys are
// treated as cold.
//
// The tracker also maintains the clock-value distribution (the paper's
// mapper state): four counters, one per clock value, updated incrementally.
package tracker

// Location records which tier currently holds a key's latest version.
type Location uint8

const (
	// NVM marks a key resident on the fast tier.
	NVM Location = iota
	// Flash marks a key resident on the slow tier.
	Flash
)

// MaxClock is the largest clock value (2 bits).
const MaxClock = 3

type entry struct {
	key   string
	idx   uint64 // caller-supplied key index, returned on eviction
	clock uint8
	loc   Location
	used  bool
}

// Tracker approximates LRU over a bounded key set. It is not internally
// synchronized: in PrismDB each partition owns one tracker guarded by the
// partition lock.
type Tracker struct {
	capacity int
	entries  []entry        // circular buffer for the clock hand
	index    map[string]int // key -> entries slot
	hand     int
	size     int
	dist     [MaxClock + 1]int // clock-value distribution (the mapper's input)
	flashCnt int               // tracked keys whose location is Flash
}

// New creates a tracker bounded to capacity keys. Capacity below 1 is
// raised to 1.
func New(capacity int) *Tracker {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracker{
		capacity: capacity,
		entries:  make([]entry, capacity),
		index:    make(map[string]int, capacity),
	}
}

// Len returns the number of tracked keys.
func (t *Tracker) Len() int { return t.size }

// Capacity returns the configured bound.
func (t *Tracker) Capacity() int { return t.capacity }

// Distribution returns the current clock-value histogram: dist[v] is the
// number of tracked keys with clock value v.
func (t *Tracker) Distribution() [MaxClock + 1]int { return t.dist }

// FlashFraction returns the fraction of tracked keys whose latest version
// lives on flash. Read-triggered compaction detection (§5.3) uses this.
func (t *Tracker) FlashFraction() float64 {
	if t.size == 0 {
		return 0
	}
	return float64(t.flashCnt) / float64(t.size)
}

// Touch records an access to key, which currently resides at loc. idx is an
// opaque caller-supplied key index stored with the entry and handed back on
// eviction, so callers never have to re-derive it from the evicted key (the
// hot read path stays allocation-free). Already tracked keys jump to the
// maximum clock value (§6); new keys are inserted with clock 0, evicting via
// the CLOCK algorithm when full. It returns the index of the key evicted to
// make room, if any.
func (t *Tracker) Touch(key []byte, idx uint64, loc Location) (evictedIdx uint64, didEvict bool) {
	if i, ok := t.index[string(key)]; ok {
		e := &t.entries[i]
		t.dist[e.clock]--
		e.clock = MaxClock
		t.dist[MaxClock]++
		e.idx = idx
		t.setLoc(e, loc)
		return 0, false
	}
	return t.insert(string(key), idx, loc)
}

// insert places a new key with clock 0, running the clock hand if full.
func (t *Tracker) insert(key string, idx uint64, loc Location) (evictedIdx uint64, didEvict bool) {
	slot := -1
	if t.size < t.capacity {
		// Find the next unused slot from the hand.
		for t.entries[t.hand].used {
			t.advance()
		}
		slot = t.hand
		t.advance()
	} else {
		// CLOCK eviction: decrement until a zero-clock victim appears.
		for {
			e := &t.entries[t.hand]
			if e.clock == 0 {
				slot = t.hand
				t.advance()
				break
			}
			t.dist[e.clock]--
			e.clock--
			t.dist[e.clock]++
			t.advance()
		}
		victim := &t.entries[slot]
		evictedIdx, didEvict = victim.idx, true
		delete(t.index, victim.key)
		t.dist[victim.clock]--
		if victim.loc == Flash {
			t.flashCnt--
		}
		t.size--
	}
	e := &t.entries[slot]
	*e = entry{key: key, idx: idx, clock: 0, loc: loc, used: true}
	t.index[key] = slot
	t.dist[0]++
	if loc == Flash {
		t.flashCnt++
	}
	t.size++
	return evictedIdx, didEvict
}

func (t *Tracker) advance() {
	t.hand++
	if t.hand == t.capacity {
		t.hand = 0
	}
}

func (t *Tracker) setLoc(e *entry, loc Location) {
	if e.loc == loc {
		return
	}
	if loc == Flash {
		t.flashCnt++
	} else {
		t.flashCnt--
	}
	e.loc = loc
}

// Clock returns a key's clock value and whether it is tracked. Untracked
// keys are treated by callers as clock 0 (coldness 1), per §5.2.
func (t *Tracker) Clock(key []byte) (int, bool) {
	i, ok := t.index[string(key)]
	if !ok {
		return 0, false
	}
	return int(t.entries[i].clock), true
}

// SetLocation updates the tier of a tracked key without touching its clock.
// Compactions call this when demoting or promoting objects.
func (t *Tracker) SetLocation(key []byte, loc Location) {
	if i, ok := t.index[string(key)]; ok {
		t.setLoc(&t.entries[i], loc)
	}
}

// Forget drops a key (e.g. after a client Delete).
func (t *Tracker) Forget(key []byte) {
	i, ok := t.index[string(key)]
	if !ok {
		return
	}
	e := &t.entries[i]
	delete(t.index, e.key)
	t.dist[e.clock]--
	if e.loc == Flash {
		t.flashCnt--
	}
	*e = entry{}
	t.size--
}

// Coldness returns the paper's coldness score for a key: 1/(clock+1) for
// tracked keys, 1.0 for untracked keys (§5.2).
func (t *Tracker) Coldness(key []byte) float64 {
	c, ok := t.Clock(key)
	if !ok {
		return 1.0
	}
	return 1.0 / float64(c+1)
}
