package lsm

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/prismdb/prismdb/internal/simdev"
	"github.com/prismdb/prismdb/internal/sst"
	"github.com/prismdb/prismdb/internal/tracker"
)

// Mode selects the tiered-placement policy (the baselines of §7).
type Mode int

const (
	// Single places everything (WAL, all levels) on one device.
	Single Mode = iota
	// Het maps the top NVMLevels levels plus WAL and memtable flushes to
	// NVM and the rest to flash — the multi-tier RocksDB of §3 and
	// SpanDB's data layout.
	Het
	// L2Cache places all data on flash and uses NVM purely as a
	// second-level block cache (MyNVM / SQL Server / Orthus style, §2).
	L2Cache
	// RA is the authors' read-aware prototype (§3): Het plus pinned
	// compactions that retain popular objects in the NVM levels.
	RA
	// MutantMode tracks per-SST popularity and migrates whole files
	// between tiers (Mutant, §2).
	MutantMode
	// SpanDBMode is Het with SPDK-style parallel WAL logging on NVM.
	SpanDBMode
)

// String names the mode as in the paper's figures.
func (m Mode) String() string {
	switch m {
	case Single:
		return "rocksdb"
	case Het:
		return "rocksdb-het"
	case L2Cache:
		return "rocksdb-l2c"
	case RA:
		return "rocksdb-RA"
	case MutantMode:
		return "mutant"
	case SpanDBMode:
		return "spandb"
	}
	return "unknown"
}

// Config parameterizes an LSM DB.
type Config struct {
	Mode Mode

	// Primary is the sole device for Single mode.
	Primary *simdev.Device
	// NVM and Flash are the two tiers for multi-tier modes.
	NVM   *simdev.Device
	Flash *simdev.Device

	// Levels is the total level count (default 5: L0–L4, as in §3).
	Levels int
	// NVMLevels maps levels [0, NVMLevels) to NVM in Het/RA/SpanDB modes
	// (§3 uses L0–L3 on NVM, L4 on QLC).
	NVMLevels int
	// LevelRatio is the size ratio between adjacent levels (default 10).
	LevelRatio int
	// L1TargetBytes is L1's target size (default 4×TargetSSTBytes).
	L1TargetBytes int64
	// L0CompactionTrigger is the L0 file count that triggers compaction
	// (default 4); L0StallLimit stalls writes (default 12).
	L0CompactionTrigger int
	L0StallLimit        int

	// MemtableBytes bounds the memtable (default 1 MiB scaled).
	MemtableBytes int64
	// TargetSSTBytes is the SST size (default 4 MiB).
	TargetSSTBytes int64
	// BlockSize is the SST block size (default 4 KiB).
	BlockSize int

	// BlockCacheBytes is the DRAM block cache (the paper gives LSMs 20%
	// of DRAM as block cache).
	BlockCacheBytes int64
	// NVMCacheBytes is the L2 cache capacity for L2Cache mode (defaults
	// to the NVM device capacity).
	NVMCacheBytes int64

	// FsyncWAL persists every write's WAL entry before acknowledging
	// (Fig 13). Non-fsync WAL writes are buffered and flushed in 1 MiB
	// batches in the background, as RocksDB does by default.
	FsyncWAL bool

	// Clients is the number of concurrent client threads, each with its
	// own virtual clock (paper: 8 clients).
	Clients int

	// Prefetch enables the scan readahead RocksDB ships with (§7.2).
	Prefetch bool

	// RA mode: objects with tracker clock ≥ RAPinClock are pinned to the
	// NVM levels during boundary compactions.
	TrackerCapacity int
	RAPinClock      int

	// MutantMode: ops between file-temperature migration passes.
	MigrateEvery int

	// CPU cost knobs.
	OpBase      time.Duration
	MergePerKey time.Duration
	SPDKPollOp  time.Duration // SpanDB's busy-poll CPU tax per op

	// CPUPool, when set, routes all CPU charges (foreground ops and
	// compaction merging) through a shared fixed-core pool, modeling the
	// paper's 10-core cgroup.
	CPUPool *simdev.CPUPool

	Seed int64
}

func (c Config) withDefaults() (Config, error) {
	switch c.Mode {
	case Single:
		if c.Primary == nil {
			return c, fmt.Errorf("lsm: Single mode requires Primary device")
		}
		c.NVM, c.Flash = c.Primary, c.Primary
	default:
		if c.NVM == nil || c.Flash == nil {
			return c, fmt.Errorf("lsm: multi-tier modes require NVM and Flash devices")
		}
	}
	if c.Levels <= 0 {
		c.Levels = 5
	}
	if c.NVMLevels <= 0 {
		c.NVMLevels = c.Levels - 1 // paper: L0–L3 on NVM, L4 on flash
	}
	if c.NVMLevels > c.Levels {
		c.NVMLevels = c.Levels
	}
	if c.LevelRatio <= 1 {
		c.LevelRatio = 10
	}
	if c.TargetSSTBytes <= 0 {
		c.TargetSSTBytes = 4 << 20
	}
	if c.L1TargetBytes <= 0 {
		c.L1TargetBytes = 4 * c.TargetSSTBytes
	}
	if c.L0CompactionTrigger <= 0 {
		c.L0CompactionTrigger = 4
	}
	if c.L0StallLimit <= 0 {
		c.L0StallLimit = 12
	}
	if c.MemtableBytes <= 0 {
		c.MemtableBytes = 1 << 20
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 4096
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.TrackerCapacity <= 0 {
		c.TrackerCapacity = 1 << 14
	}
	if c.RAPinClock <= 0 {
		c.RAPinClock = 1
	}
	if c.MigrateEvery <= 0 {
		c.MigrateEvery = 10000
	}
	if c.OpBase <= 0 {
		c.OpBase = 500 * time.Nanosecond
	}
	if c.MergePerKey <= 0 {
		c.MergePerKey = 200 * time.Nanosecond
	}
	if c.SPDKPollOp <= 0 {
		c.SPDKPollOp = 2 * time.Microsecond
	}
	if c.Mode == L2Cache && c.NVMCacheBytes <= 0 {
		c.NVMCacheBytes = c.NVM.Params().Capacity
	}
	return c, nil
}

// levelFile wraps a table with placement and temperature metadata.
type levelFile struct {
	t     *sst.Table
	dev   *simdev.Device
	reads int64 // Mutant temperature
}

// Stats aggregates engine activity.
type Stats struct {
	Puts, Gets, Scans int64

	// Read sources (Fig 2b): memtable, block cache, then level index.
	ReadsMemtable   int64
	ReadsBlockCache int64
	ReadsPerLevel   []int64
	ReadsMiss       int64
	ReadsNVMCache   int64 // L2Cache tier hits (approximate, via device)

	Flushes     int64
	Compactions int64
	// Compaction wall time split by output tier (Fig 2a).
	CompactionTimeNVM   time.Duration
	CompactionTimeFlash time.Duration
	CompactionKeys      int64

	Migrations     int64 // Mutant file moves
	MigrationBytes int64

	PinnedKeys int64 // RA keys retained in NVM levels

	WALBytes    int64
	WriteStalls int64
	StallTime   time.Duration
}

// DB is a leveled LSM instance.
type DB struct {
	cfg Config

	mu      sync.Mutex
	clients []*simdev.Clock

	mem        *skiplist
	levels     [][]*levelFile // levels[0] newest-last; levels[1+] sorted, disjoint
	seq        uint64
	blockCache *simdev.PageCache
	nvmCache   *simdev.PageCache
	trk        *tracker.Tracker
	cursor     []int // round-robin compaction cursor per level

	walNextFree int64
	walBuf      int64
	compEndAt   int64
	opsCount    int64

	// Background thread pool model: one dedicated flush thread plus
	// NumBGThreads compaction threads (RocksDB-style). Jobs chain on
	// their thread's clock, so background work cannot exceed the pool's
	// real-time capacity; writers stall when flushing falls behind.
	flushThread int64
	bgThreads   []int64

	stats Stats
}

// Open creates an LSM DB.
func Open(cfg Config) (*DB, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	db := &DB{
		cfg:        cfg,
		mem:        newSkiplist(cfg.Seed),
		levels:     make([][]*levelFile, cfg.Levels),
		blockCache: simdev.NewPageCache(cfg.BlockCacheBytes),
		cursor:     make([]int, cfg.Levels),
		trk:        tracker.New(cfg.TrackerCapacity),
	}
	if cfg.Mode == L2Cache {
		db.nvmCache = simdev.NewPageCache(cfg.NVMCacheBytes)
	}
	for i := 0; i < cfg.Clients; i++ {
		db.clients = append(db.clients, simdev.NewClock())
	}
	db.stats.ReadsPerLevel = make([]int64, cfg.Levels)
	db.bgThreads = make([]int64, 4)
	return db, nil
}

// deviceForLevel maps a level to its tier per the placement mode.
func (db *DB) deviceForLevel(level int) *simdev.Device {
	switch db.cfg.Mode {
	case Single:
		return db.cfg.Primary
	case L2Cache:
		return db.cfg.Flash // all data on flash; NVM is cache only
	case MutantMode:
		// Mutant writes new files to fast storage while it has room;
		// the migration pass later rebalances by temperature.
		if level < db.cfg.Levels-1 && db.cfg.NVM.Free() > 2*db.cfg.TargetSSTBytes {
			return db.cfg.NVM
		}
		return db.cfg.Flash
	default: // Het, RA, SpanDB
		if level < db.cfg.NVMLevels {
			return db.cfg.NVM
		}
		return db.cfg.Flash
	}
}

// walDevice is where the log lives.
func (db *DB) walDevice() *simdev.Device {
	switch db.cfg.Mode {
	case Single:
		return db.cfg.Primary
	case L2Cache:
		return db.cfg.Flash
	default:
		return db.cfg.NVM
	}
}

// chargeCPU charges CPU work to clk, through the shared core pool when one
// is configured.
func (db *DB) chargeCPU(clk *simdev.Clock, d time.Duration) {
	if d <= 0 {
		return
	}
	if db.cfg.CPUPool != nil {
		db.cfg.CPUPool.Charge(clk, d)
	} else {
		clk.Advance(d)
	}
}

// nextClock picks the client whose clock is furthest behind — the client
// thread that would physically issue the next request. Driving clients in
// virtual-time order keeps device and CPU queueing causally consistent.
func (db *DB) nextClock() *simdev.Clock {
	best := db.clients[0]
	for _, c := range db.clients[1:] {
		if c.Now() < best.Now() {
			best = c
		}
	}
	return best
}

// walAppend charges WAL I/O per the logging policy (Fig 13).
func (db *DB) walAppend(clk *simdev.Clock, n int64) {
	db.stats.WALBytes += n
	dev := db.walDevice()
	if !db.cfg.FsyncWAL {
		// Buffered logging: flushed asynchronously in 1 MiB batches.
		db.walBuf += n
		if db.walBuf >= 1<<20 {
			dev.AccessAsync(clk.Now(), simdev.OpWrite, db.walBuf)
			db.walBuf = 0
		}
		return
	}
	if db.cfg.Mode == SpanDBMode {
		// SPDK logging: parallel, low-latency syncs straight to NVM,
		// paid for with busy-poll CPU.
		db.chargeCPU(clk, db.cfg.SPDKPollOp)
		dev.AccessClk(clk, simdev.OpWrite, n)
		return
	}
	// RocksDB group commit: a single WAL writer serializes all clients,
	// and each committed group pays the fdatasync/coordination overhead
	// on top of the device write.
	const fsyncOverhead = 20 * time.Microsecond
	start := clk.Now()
	if db.walNextFree > start {
		start = db.walNextFree
	}
	done := dev.Access(start, simdev.OpWrite, n) + int64(fsyncOverhead)
	db.walNextFree = done
	clk.AdvanceTo(done)
}

// Put writes key=value.
func (db *DB) Put(key, value []byte) (time.Duration, error) {
	return db.write(key, value, false)
}

// Delete writes a tombstone.
func (db *DB) Delete(key []byte) (time.Duration, error) {
	return db.write(key, nil, true)
}

func (db *DB) write(key, value []byte, tomb bool) (time.Duration, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	clk := db.nextClock()
	start := clk.Now()
	db.chargeCPU(clk, db.cfg.OpBase)

	// Stall if the flush thread is still busy with the previous memtable
	// (max_write_buffer_number-style backpressure) when this one is full,
	// or if L0 is saturated while compactions lag.
	if db.mem.sizeBytes() >= db.cfg.MemtableBytes && db.flushThread > clk.Now() {
		stall := clk.AdvanceTo(db.flushThread)
		db.stats.WriteStalls++
		db.stats.StallTime += stall
	}
	if len(db.levels[0]) >= db.cfg.L0StallLimit {
		minBG := db.bgThreads[0]
		for _, t := range db.bgThreads[1:] {
			if t < minBG {
				minBG = t
			}
		}
		if minBG > clk.Now() {
			stall := clk.AdvanceTo(minBG)
			db.stats.WriteStalls++
			db.stats.StallTime += stall
		}
	}

	db.walAppend(clk, int64(len(key)+len(value)+16))
	db.seq++
	db.mem.put(skipEntry{
		key:       append([]byte(nil), key...),
		value:     append([]byte(nil), value...),
		seq:       db.seq,
		tombstone: tomb,
	})
	db.stats.Puts++
	db.opsCount++
	db.background(clk)
	db.backgroundMutant(clk)
	return time.Duration(clk.Now() - start), nil
}

// Get returns the newest value for key and the serving level.
func (db *DB) Get(key []byte) ([]byte, bool, time.Duration, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	clk := db.nextClock()
	start := clk.Now()
	db.chargeCPU(clk, db.cfg.OpBase)
	db.stats.Gets++
	db.opsCount++
	db.trk.Touch(key, 0, tracker.NVM)
	db.backgroundMutant(clk)

	if e, ok := db.mem.get(key); ok {
		db.stats.ReadsMemtable++
		if e.tombstone {
			return nil, false, time.Duration(clk.Now() - start), nil
		}
		return e.value, true, time.Duration(clk.Now() - start), nil
	}
	// L0: newest file first.
	for i := len(db.levels[0]) - 1; i >= 0; i-- {
		lf := db.levels[0][i]
		if !lf.t.Overlaps(key, key) || !lf.t.MayContain(key) {
			continue
		}
		if v, found, done := db.tableGet(clk, lf, key, 0, start); done {
			return v, found, time.Duration(clk.Now() - start), nil
		}
	}
	for level := 1; level < len(db.levels); level++ {
		files := db.levels[level]
		idx := sort.Search(len(files), func(i int) bool {
			return bytes.Compare(files[i].t.Largest(), key) >= 0
		})
		if idx == len(files) || !files[idx].t.Overlaps(key, key) {
			continue
		}
		lf := files[idx]
		if !lf.t.MayContain(key) {
			continue
		}
		if v, found, done := db.tableGet(clk, lf, key, level, start); done {
			return v, found, time.Duration(clk.Now() - start), nil
		}
	}
	db.stats.ReadsMiss++
	return nil, false, time.Duration(clk.Now() - start), nil
}

// tableGet probes one table; done=false means "key not here, keep looking".
func (db *DB) tableGet(clk *simdev.Clock, lf *levelFile, key []byte, level int, opStart int64) ([]byte, bool, bool) {
	before := clk.Now()
	rec, found, err := lf.t.Get(clk, key)
	if err != nil || !found {
		return nil, false, false
	}
	lf.reads++
	if clk.Now() == before {
		db.stats.ReadsBlockCache++
	} else {
		db.stats.ReadsPerLevel[level]++
	}
	if rec.Tombstone {
		return nil, false, true
	}
	return rec.Value, true, true
}

// Scan returns up to n live records with keys ≥ start in order.
func (db *DB) Scan(start []byte, n int) ([]ScanKV, time.Duration, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	clk := db.nextClock()
	t0 := clk.Now()
	db.chargeCPU(clk, db.cfg.OpBase)
	db.stats.Scans++
	db.opsCount++

	// Gather per-source sorted streams, then k-way merge by (key, seq).
	type cursor struct {
		recs []sst.Record
		pos  int
	}
	var cursors []*cursor
	memC := &cursor{}
	db.mem.iterate(start, func(e skipEntry) bool {
		memC.recs = append(memC.recs, sst.Record{
			Key: e.key, Value: e.value, Version: e.seq, Tombstone: e.tombstone,
		})
		return len(memC.recs) < n*2
	})
	cursors = append(cursors, memC)
	collect := func(lf *levelFile, limit int) *cursor {
		c := &cursor{}
		for it := lf.t.Iter(clk, start, db.cfg.Prefetch); it.Valid() && len(c.recs) < limit; it.Next() {
			c.recs = append(c.recs, it.Record())
		}
		return c
	}
	for _, lf := range db.levels[0] {
		if bytes.Compare(lf.t.Largest(), start) >= 0 {
			cursors = append(cursors, collect(lf, n*2))
		}
	}
	for level := 1; level < len(db.levels); level++ {
		c := &cursor{}
		taken := 0
		for _, lf := range db.levels[level] {
			if bytes.Compare(lf.t.Largest(), start) < 0 {
				continue
			}
			sub := collect(lf, n*2-taken)
			c.recs = append(c.recs, sub.recs...)
			taken += len(sub.recs)
			if taken >= n*2 {
				break
			}
		}
		cursors = append(cursors, c)
	}

	var out []ScanKV
	for len(out) < n {
		// Find smallest key; among equals, newest seq wins.
		bestI := -1
		for i, c := range cursors {
			if c.pos >= len(c.recs) {
				continue
			}
			if bestI < 0 {
				bestI = i
				continue
			}
			cmp := bytes.Compare(c.recs[c.pos].Key, cursors[bestI].recs[cursors[bestI].pos].Key)
			if cmp < 0 || (cmp == 0 && c.recs[c.pos].Version > cursors[bestI].recs[cursors[bestI].pos].Version) {
				bestI = i
			}
		}
		if bestI < 0 {
			break
		}
		best := cursors[bestI].recs[cursors[bestI].pos]
		// Skip shadowed duplicates across all cursors.
		for _, c := range cursors {
			for c.pos < len(c.recs) && bytes.Equal(c.recs[c.pos].Key, best.Key) {
				c.pos++
			}
		}
		db.chargeCPU(clk, db.cfg.MergePerKey)
		if !best.Tombstone {
			out = append(out, ScanKV{best.Key, best.Value})
		}
	}
	return out, time.Duration(clk.Now() - t0), nil
}

// ScanKV is a scan result element.
type ScanKV struct {
	Key   []byte
	Value []byte
}

// Stats returns a snapshot of counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := db.stats
	s.ReadsPerLevel = append([]int64(nil), db.stats.ReadsPerLevel...)
	return s
}

// ResetStats zeroes counters between warm-up and measurement.
func (db *DB) ResetStats() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.stats = Stats{ReadsPerLevel: make([]int64, db.cfg.Levels)}
}

// Elapsed returns the maximum client clock (plus compaction tail).
func (db *DB) Elapsed() time.Duration {
	db.mu.Lock()
	defer db.mu.Unlock()
	var maxNs int64
	for _, c := range db.clients {
		if c.Now() > maxNs {
			maxNs = c.Now()
		}
	}
	return time.Duration(maxNs)
}

// AdvanceAll aligns every client clock (and the compaction horizon) to the
// global maximum, so measurement phases start from a common time origin.
func (db *DB) AdvanceAll() {
	now := int64(db.Elapsed())
	db.mu.Lock()
	for _, c := range db.clients {
		c.AdvanceTo(now)
	}
	db.mu.Unlock()
}

// LevelFileCounts reports files per level (tests, debugging).
func (db *DB) LevelFileCounts() []int {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]int, len(db.levels))
	for i, l := range db.levels {
		out[i] = len(l)
	}
	return out
}

// LevelBytes reports bytes per level.
func (db *DB) LevelBytes() []int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]int64, len(db.levels))
	for i, l := range db.levels {
		for _, f := range l {
			out[i] += f.t.Size()
		}
	}
	return out
}
