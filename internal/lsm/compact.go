package lsm

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"github.com/prismdb/prismdb/internal/simdev"
	"github.com/prismdb/prismdb/internal/sst"
)

// maxBackgroundRounds bounds compaction work per trigger to avoid livelock
// (notably under RA pinning, which deliberately re-compacts pinned data).
const maxBackgroundRounds = 32

// levelTarget returns level i's target size in bytes (L0 is count-based).
func (db *DB) levelTarget(level int) int64 {
	t := db.cfg.L1TargetBytes
	for i := 1; i < level; i++ {
		t *= int64(db.cfg.LevelRatio)
	}
	return t
}

func (db *DB) levelBytes(level int) int64 {
	var n int64
	for _, f := range db.levels[level] {
		n += f.t.Size()
	}
	return n
}

// background runs flushes and compactions on a job clock starting at the
// caller's time; its I/O delays foreground requests through device queueing
// and, when L0 saturates, through explicit write stalls.
func (db *DB) background(clk *simdev.Clock) {
	memFull := db.mem.sizeBytes() >= db.cfg.MemtableBytes
	if !memFull && db.pickCompactionLevel() < 0 {
		return
	}
	if memFull {
		// The dedicated flush thread runs the flush; it chains after its
		// previous job.
		fClk := simdev.NewBGClock()
		fClk.AdvanceTo(clk.Now())
		fClk.AdvanceTo(db.flushThread)
		db.flush(fClk)
		db.flushThread = fClk.Now()
		if fClk.Now() > db.compEndAt {
			db.compEndAt = fClk.Now()
		}
	}
	// Compaction rounds run on a bounded pool of background threads; each
	// round chains onto the least-busy thread.
	for round := 0; round < maxBackgroundRounds; round++ {
		level := db.pickCompactionLevel()
		if level < 0 {
			break
		}
		ti := 0
		for i := 1; i < len(db.bgThreads); i++ {
			if db.bgThreads[i] < db.bgThreads[ti] {
				ti = i
			}
		}
		compClk := simdev.NewBGClock()
		compClk.AdvanceTo(clk.Now())
		compClk.AdvanceTo(db.bgThreads[ti])
		db.compactLevel(compClk, level)
		db.bgThreads[ti] = compClk.Now()
		if compClk.Now() > db.compEndAt {
			db.compEndAt = compClk.Now()
		}
	}
}

// flush writes the memtable as a new L0 SST.
func (db *DB) flush(compClk *simdev.Clock) {
	if db.mem.len() == 0 {
		return
	}
	dev := db.deviceForLevel(0)
	w := sst.NewWriter(dev, db.blockCache, dev.NextFileName("lsm-l0"), db.cfg.BlockSize)
	db.mem.iterate(nil, func(e skipEntry) bool {
		w.Add(sst.Record{Key: e.key, Value: e.value, Version: e.seq, Tombstone: e.tombstone})
		return true
	})
	t, err := w.Finish(compClk)
	if err != nil {
		panic(fmt.Sprintf("lsm: flush: %v", err))
	}
	db.installTable(t, dev, 0)
	db.mem = newSkiplist(db.cfg.Seed + int64(db.stats.Flushes))
	db.stats.Flushes++
}

// installTable appends/inserts a table into a level, keeping L1+ sorted.
func (db *DB) installTable(t *sst.Table, dev *simdev.Device, level int) {
	if db.cfg.Mode == L2Cache {
		t.SetTierCache(db.nvmCache, db.cfg.NVM)
	}
	lf := &levelFile{t: t, dev: dev}
	db.levels[level] = append(db.levels[level], lf)
	if level > 0 {
		sort.Slice(db.levels[level], func(i, j int) bool {
			return bytes.Compare(db.levels[level][i].t.Smallest(), db.levels[level][j].t.Smallest()) < 0
		})
	}
}

// pickCompactionLevel returns the level most in need of compaction, or -1.
func (db *DB) pickCompactionLevel() int {
	if len(db.levels[0]) >= db.cfg.L0CompactionTrigger {
		return 0
	}
	for level := 1; level < db.cfg.Levels-1; level++ {
		if db.levelBytes(level) > db.levelTarget(level) {
			return level
		}
	}
	return -1
}

// compactLevel merges inputs from level into level+1 (classic leveled
// compaction). In RA mode, compactions that cross the NVM→flash boundary
// pin popular keys back into the source level (§3's pinned compactions).
func (db *DB) compactLevel(compClk *simdev.Clock, level int) {
	target := level + 1
	compStart := compClk.Now()
	var inputs []*levelFile
	if level == 0 {
		inputs = append(inputs, db.levels[0]...)
	} else {
		files := db.levels[level]
		if len(files) == 0 {
			return
		}
		db.cursor[level] = (db.cursor[level] + 1) % len(files)
		inputs = append(inputs, files[db.cursor[level]])
	}
	lo, hi := keySpan(inputs)
	var overlaps []*levelFile
	for _, f := range db.levels[target] {
		if f.t.Overlaps(lo, hi) {
			overlaps = append(overlaps, f)
		}
	}

	// Read every input record (sequential I/O on each file's device).
	type src struct {
		recs []sst.Record
		pos  int
	}
	newest := map[string]sst.Record{}
	order := []string{}
	readAll := func(fs []*levelFile, newestFirst bool) {
		seq := fs
		if newestFirst {
			seq = make([]*levelFile, len(fs))
			for i := range fs {
				seq[i] = fs[len(fs)-1-i]
			}
		}
		for _, f := range seq {
			f.t.ReadAll(compClk, func(r sst.Record) error {
				// Views pin their block buffers until the merge finishes.
				if _, ok := newest[string(r.Key)]; !ok {
					newest[string(r.Key)] = r
					order = append(order, string(r.Key))
				} else if newest[string(r.Key)].Version < r.Version {
					newest[string(r.Key)] = r
				}
				return nil
			})
			// Compaction reads stream through the same buffered-I/O
			// path as foreground reads, evicting hot entries — the
			// DRAM pollution the paper attributes to LSM compactions
			// (§7.2).
			db.blockCache.Touch(f.t.Name(), 0, f.t.Size())
		}
	}
	readAll(inputs, level == 0) // L0: newest file wins; disjoint otherwise
	readAll(overlaps, false)
	sort.Strings(order)
	db.chargeCPU(compClk, time.Duration(len(order))*db.cfg.MergePerKey)
	db.stats.CompactionKeys += int64(len(order))

	// RA pinning applies when data would cross NVM → flash — and only
	// while the NVM device has room for the retained files (pinning
	// cannot grow the fast tier).
	raBoundary := db.cfg.Mode == RA &&
		db.deviceForLevel(level) == db.cfg.NVM &&
		db.deviceForLevel(target) == db.cfg.Flash &&
		db.cfg.NVM.Free() > 4*db.cfg.TargetSSTBytes

	targetDev := db.deviceForLevel(target)
	outW := newLevelWriter(db, compClk, targetDev, target)
	var pinW *levelWriter
	if raBoundary {
		pinW = newLevelWriter(db, compClk, db.cfg.NVM, level)
	}
	lastLevel := target == db.cfg.Levels-1
	for _, k := range order {
		rec := newest[k]
		if rec.Tombstone && lastLevel {
			continue // tombstones die at the bottom
		}
		if raBoundary {
			if clock, tracked := db.trk.Clock(rec.Key); tracked && clock >= db.cfg.RAPinClock {
				pinW.add(rec)
				db.stats.PinnedKeys++
				continue
			}
		}
		outW.add(rec)
	}

	newOut := outW.finish()
	var pinned []*sst.Table
	if pinW != nil {
		pinned = pinW.finish()
	}

	// Swap in outputs, drop inputs.
	db.removeFiles(level, inputs)
	db.removeFiles(target, overlaps)
	for _, t := range newOut {
		db.installTable(t, t.Device(), target)
	}
	for _, t := range pinned {
		db.installTable(t, db.cfg.NVM, level)
	}
	for _, f := range append(append([]*levelFile{}, inputs...), overlaps...) {
		db.dropFile(f)
	}

	db.stats.Compactions++
	dur := time.Duration(compClk.Now() - compStart)
	// Attribute the whole compaction's time by output tier (Fig 2a).
	if targetDev == db.cfg.NVM {
		db.stats.CompactionTimeNVM += dur
	} else {
		db.stats.CompactionTimeFlash += dur
	}
}

// keySpan returns the min/max keys across files.
func keySpan(fs []*levelFile) (lo, hi []byte) {
	for _, f := range fs {
		if lo == nil || bytes.Compare(f.t.Smallest(), lo) < 0 {
			lo = f.t.Smallest()
		}
		if hi == nil || bytes.Compare(f.t.Largest(), hi) > 0 {
			hi = f.t.Largest()
		}
	}
	return lo, hi
}

func (db *DB) removeFiles(level int, rm []*levelFile) {
	rmSet := map[*levelFile]bool{}
	for _, f := range rm {
		rmSet[f] = true
	}
	kept := db.levels[level][:0]
	for _, f := range db.levels[level] {
		if !rmSet[f] {
			kept = append(kept, f)
		}
	}
	db.levels[level] = kept
}

// dropFile deletes a dead SST from its device and caches.
func (db *DB) dropFile(f *levelFile) {
	db.blockCache.InvalidateFile(f.t.Name())
	if db.nvmCache != nil {
		db.nvmCache.InvalidateFile(f.t.Name())
	}
	f.dev.RemoveFile(f.t.Name())
}

// levelWriter splits merged output into target-size SSTs.
type levelWriter struct {
	db      *DB
	compClk *simdev.Clock
	dev     *simdev.Device
	curDev  *simdev.Device // device of the file currently being written
	level   int
	w       *sst.Writer
	out     []*sst.Table
}

func newLevelWriter(db *DB, compClk *simdev.Clock, dev *simdev.Device, level int) *levelWriter {
	return &levelWriter{db: db, compClk: compClk, dev: dev, level: level}
}

func (lw *levelWriter) add(rec sst.Record) {
	if lw.w == nil {
		// Placement is re-evaluated per output file: Mutant's dynamic
		// placement may run out of NVM mid-compaction and must spill
		// subsequent files to flash.
		dev := lw.dev
		if lw.db.cfg.Mode == MutantMode {
			dev = lw.db.deviceForLevel(lw.level)
		}
		lw.curDev = dev
		name := dev.NextFileName(fmt.Sprintf("lsm-l%d", lw.level))
		lw.w = sst.NewWriterSize(dev, lw.db.blockCache, name, lw.db.cfg.BlockSize, int(lw.db.cfg.TargetSSTBytes))
	}
	if err := lw.w.Add(rec); err != nil {
		panic(fmt.Sprintf("lsm: compaction writer: %v", err))
	}
	if lw.w.EstimatedSize() >= lw.db.cfg.TargetSSTBytes {
		lw.cut()
	}
}

func (lw *levelWriter) cut() {
	if lw.w == nil || lw.w.Count() == 0 {
		return
	}
	t, err := lw.w.Finish(lw.compClk)
	if err != nil {
		panic(fmt.Sprintf("lsm: compaction finish: %v", err))
	}
	// Output writes pass through the page cache as well (pollution).
	lw.db.blockCache.Touch(t.Name(), 0, t.Size())
	lw.out = append(lw.out, t)
	lw.w = nil
}

func (lw *levelWriter) finish() []*sst.Table {
	lw.cut()
	return lw.out
}

// backgroundMutant runs Mutant's periodic file-temperature migration
// (§2: Mutant migrates cold LSM files to slow storage, hot files to NVM).
func (db *DB) backgroundMutant(clk *simdev.Clock) {
	if db.cfg.Mode != MutantMode || db.opsCount%int64(db.cfg.MigrateEvery) != 0 || db.opsCount == 0 {
		return
	}
	compClk := simdev.NewBGClock()
	compClk.AdvanceTo(clk.Now())

	// Rank every file by temperature; hottest files claim NVM capacity.
	type scored struct {
		f     *levelFile
		level int
	}
	var all []scored
	for level := range db.levels {
		for _, f := range db.levels[level] {
			all = append(all, scored{f, level})
		}
	}
	for _, s := range all {
		s.f.reads /= 2 // exponential decay, so temperature is recent
	}
	sort.Slice(all, func(i, j int) bool { return all[i].f.reads > all[j].f.reads })
	budget := db.cfg.NVM.Params().Capacity * 9 / 10
	wantNVM := map[*levelFile]bool{}
	var used int64
	for _, s := range all {
		if used+s.f.t.Size() > budget {
			break
		}
		wantNVM[s.f] = true
		used += s.f.t.Size()
	}
	// Demote cold files first so the fast tier has room, then promote.
	for i := len(all) - 1; i >= 0; i-- {
		s := all[i]
		if !wantNVM[s.f] && s.f.dev == db.cfg.NVM {
			db.migrateFile(compClk, s.f, s.level, db.cfg.Flash)
		}
	}
	for _, s := range all {
		if wantNVM[s.f] && s.f.dev != db.cfg.NVM &&
			db.cfg.NVM.Free() > s.f.t.Size()+db.cfg.TargetSSTBytes {
			db.migrateFile(compClk, s.f, s.level, db.cfg.NVM)
		}
	}
	if compClk.Now() > db.compEndAt {
		db.compEndAt = compClk.Now()
	}
}

// migrateFile copies an SST to another tier (read whole file + write whole
// file) and swaps the placement, as Mutant does at file granularity.
func (db *DB) migrateFile(compClk *simdev.Clock, f *levelFile, level int, dst *simdev.Device) {
	w := sst.NewWriter(dst, db.blockCache, dst.NextFileName(fmt.Sprintf("lsm-mig-l%d", level)), db.cfg.BlockSize)
	err := f.t.ReadAll(compClk, func(r sst.Record) error { return w.Add(r) })
	if err != nil {
		panic(fmt.Sprintf("lsm: migrate read: %v", err))
	}
	nt, err := w.Finish(compClk)
	if err != nil {
		panic(fmt.Sprintf("lsm: migrate write: %v", err))
	}
	db.stats.Migrations++
	db.stats.MigrationBytes += f.t.Size()
	db.removeFiles(level, []*levelFile{f})
	reads := f.reads
	db.dropFile(f)
	db.installTable(nt, dst, level)
	// Preserve temperature on the migrated copy.
	for _, lf := range db.levels[level] {
		if lf.t == nt {
			lf.reads = reads
		}
	}
}
