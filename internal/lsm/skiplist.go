// Package lsm implements a leveled log-structured merge tree in the style
// of RocksDB, used as the baseline family in the paper's evaluation:
// single-tier RocksDB, multi-tier "het" RocksDB (levels mapped to devices,
// like SpanDB's layout), RocksDB with an NVM L2 cache, read-aware RocksDB
// with pinned compactions (the authors' year-one prototype, §3), Mutant's
// file-granularity placement, and SpanDB's SPDK-backed WAL. All variants
// share this one engine, differing only in placement/logging policy, so
// comparisons against PrismDB isolate data-structure and compaction design.
package lsm

import (
	"bytes"
	"math/rand"
)

// skipEntry is one memtable record. Tombstone deletes shadow older versions
// in lower levels.
type skipEntry struct {
	key       []byte
	value     []byte
	seq       uint64
	tombstone bool
}

const maxHeight = 12

type skipNode struct {
	entry skipEntry
	next  [maxHeight]*skipNode
}

// skiplist is the memtable: a probabilistic balanced list with O(log n)
// insert and lookup, as in LevelDB/RocksDB.
type skiplist struct {
	head   *skipNode
	height int
	rng    *rand.Rand
	n      int
	bytes  int64
}

func newSkiplist(seed int64) *skiplist {
	return &skiplist{
		head:   &skipNode{},
		height: 1,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

func (s *skiplist) randomHeight() int {
	h := 1
	for h < maxHeight && s.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// findGE returns the first node with key ≥ k, filling prev with the
// predecessors at each level when prev is non-nil.
func (s *skiplist) findGE(k []byte, prev *[maxHeight]*skipNode) *skipNode {
	x := s.head
	for level := s.height - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].entry.key, k) < 0 {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// put inserts or replaces key. Replacement keeps the memtable's latest-only
// semantics (the WAL holds history; levels hold older versions).
func (s *skiplist) put(e skipEntry) {
	var prev [maxHeight]*skipNode
	if n := s.findGE(e.key, &prev); n != nil && bytes.Equal(n.entry.key, e.key) {
		s.bytes += int64(len(e.value) - len(n.entry.value))
		n.entry = e
		return
	}
	h := s.randomHeight()
	if h > s.height {
		for level := s.height; level < h; level++ {
			prev[level] = s.head
		}
		s.height = h
	}
	node := &skipNode{entry: e}
	for level := 0; level < h; level++ {
		node.next[level] = prev[level].next[level]
		prev[level].next[level] = node
	}
	s.n++
	s.bytes += int64(len(e.key) + len(e.value) + 24)
}

// get returns the entry for key.
func (s *skiplist) get(k []byte) (skipEntry, bool) {
	n := s.findGE(k, nil)
	if n != nil && bytes.Equal(n.entry.key, k) {
		return n.entry, true
	}
	return skipEntry{}, false
}

// iterate calls fn for every entry with key ≥ start, in order, until fn
// returns false.
func (s *skiplist) iterate(start []byte, fn func(skipEntry) bool) {
	var n *skipNode
	if start == nil {
		n = s.head.next[0]
	} else {
		n = s.findGE(start, nil)
	}
	for n != nil {
		if !fn(n.entry) {
			return
		}
		n = n.next[0]
	}
}

// len returns the entry count; sizeBytes the approximate memory footprint.
func (s *skiplist) len() int         { return s.n }
func (s *skiplist) sizeBytes() int64 { return s.bytes }
