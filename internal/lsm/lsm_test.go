package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/prismdb/prismdb/internal/simdev"
)

func key(i int) []byte { return []byte(fmt.Sprintf("user%08d", i)) }
func val(i, size int) []byte {
	v := bytes.Repeat([]byte{byte('a' + i%26)}, size)
	copy(v, fmt.Sprintf("v%d-", i))
	return v
}

func singleCfg() Config {
	return Config{
		Mode:            Single,
		Primary:         simdev.New(simdev.NVMParams(1 << 30)),
		MemtableBytes:   32 << 10,
		TargetSSTBytes:  32 << 10,
		L1TargetBytes:   64 << 10,
		BlockCacheBytes: 64 << 10,
		Clients:         2,
		Seed:            1,
	}
}

func hetCfg() Config {
	c := singleCfg()
	c.Mode = Het
	c.Primary = nil
	c.NVM = simdev.New(simdev.NVMParams(64 << 20))
	c.Flash = simdev.New(simdev.QLCParams(1 << 30))
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := Open(Config{Mode: Single}); err == nil {
		t.Fatal("Single without Primary must fail")
	}
	if _, err := Open(Config{Mode: Het}); err == nil {
		t.Fatal("Het without devices must fail")
	}
}

func TestSkiplistBasics(t *testing.T) {
	s := newSkiplist(1)
	for _, i := range rand.New(rand.NewSource(2)).Perm(500) {
		s.put(skipEntry{key: key(i), value: val(i, 10), seq: uint64(i)})
	}
	if s.len() != 500 {
		t.Fatalf("len = %d", s.len())
	}
	for i := 0; i < 500; i++ {
		e, ok := s.get(key(i))
		if !ok || !bytes.Equal(e.value, val(i, 10)) {
			t.Fatalf("get(%d) failed", i)
		}
	}
	// Replace updates in place.
	s.put(skipEntry{key: key(7), value: val(999, 20), seq: 1000})
	if s.len() != 500 {
		t.Fatalf("len after replace = %d", s.len())
	}
	e, _ := s.get(key(7))
	if e.seq != 1000 {
		t.Fatal("replace did not update")
	}
	// Ordered iteration.
	var prev []byte
	count := 0
	s.iterate(nil, func(e skipEntry) bool {
		if prev != nil && bytes.Compare(prev, e.key) >= 0 {
			t.Fatal("skiplist out of order")
		}
		prev = e.key
		count++
		return true
	})
	if count != 500 {
		t.Fatalf("iterated %d", count)
	}
	// Iterate from a start key.
	first := true
	s.iterate(key(250), func(e skipEntry) bool {
		if first && !bytes.Equal(e.key, key(250)) {
			t.Fatalf("iterate start = %q", e.key)
		}
		first = false
		return false
	})
}

func TestPutGetAcrossFlushes(t *testing.T) {
	db, err := Open(singleCfg())
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for i := 0; i < n; i++ {
		if _, err := db.Put(key(i), val(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.Flushes == 0 {
		t.Fatal("no memtable flushes")
	}
	if st.Compactions == 0 {
		t.Fatal("no compactions")
	}
	for i := 0; i < n; i++ {
		v, ok, lat, err := db.Get(key(i))
		if err != nil || !ok {
			t.Fatalf("key %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(v, val(i, 100)) {
			t.Fatalf("key %d wrong value", i)
		}
		if lat <= 0 {
			t.Fatal("non-positive latency")
		}
	}
	if _, ok, _, _ := db.Get(key(n + 5)); ok {
		t.Fatal("absent key found")
	}
}

func TestUpdatesShadowOldVersions(t *testing.T) {
	db, _ := Open(singleCfg())
	const n = 2000
	for i := 0; i < n; i++ {
		db.Put(key(i%200), val(i, 100)) // 10 versions per key
	}
	for i := 0; i < 200; i++ {
		v, ok, _, _ := db.Get(key(i))
		if !ok {
			t.Fatalf("key %d missing", i)
		}
		// Latest version of key i is n-200+i.
		if !bytes.Equal(v, val(n-200+i, 100)) {
			t.Fatalf("key %d returned stale version", i)
		}
	}
}

func TestDeleteTombstones(t *testing.T) {
	db, _ := Open(singleCfg())
	for i := 0; i < 1000; i++ {
		db.Put(key(i), val(i, 100))
	}
	for i := 0; i < 500; i++ {
		db.Delete(key(i))
	}
	// Churn to push tombstones down the tree.
	for i := 1000; i < 2500; i++ {
		db.Put(key(i), val(i, 100))
	}
	for i := 0; i < 500; i++ {
		if _, ok, _, _ := db.Get(key(i)); ok {
			t.Fatalf("deleted key %d alive", i)
		}
	}
	for i := 500; i < 1000; i++ {
		if _, ok, _, _ := db.Get(key(i)); !ok {
			t.Fatalf("key %d lost", i)
		}
	}
}

func TestScanOrderedAndShadowed(t *testing.T) {
	db, _ := Open(singleCfg())
	for i := 0; i < 1500; i++ {
		db.Put(key(i), val(i, 100))
	}
	db.Put(key(100), val(9999, 50)) // newer version in memtable
	db.Delete(key(101))
	kvs, lat, err := db.Scan(key(100), 20)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatal("scan latency")
	}
	if !bytes.Equal(kvs[0].Key, key(100)) || !bytes.Equal(kvs[0].Value, val(9999, 50)) {
		t.Fatalf("scan[0] = %q (stale version?)", kvs[0].Key)
	}
	if bytes.Equal(kvs[1].Key, key(101)) {
		t.Fatal("deleted key in scan")
	}
	for i := 1; i < len(kvs); i++ {
		if bytes.Compare(kvs[i-1].Key, kvs[i].Key) >= 0 {
			t.Fatal("scan out of order")
		}
	}
	if len(kvs) != 20 {
		t.Fatalf("scan len = %d", len(kvs))
	}
}

func TestLevelsDisjointInvariant(t *testing.T) {
	db, _ := Open(singleCfg())
	for i := 0; i < 5000; i++ {
		db.Put(key(rand.Intn(2000)), val(i, 100))
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for level := 1; level < len(db.levels); level++ {
		files := db.levels[level]
		for i := 1; i < len(files); i++ {
			if bytes.Compare(files[i-1].t.Largest(), files[i].t.Smallest()) >= 0 {
				t.Fatalf("L%d files overlap: %q ≥ %q", level,
					files[i-1].t.Largest(), files[i].t.Smallest())
			}
		}
	}
}

func TestHetPlacement(t *testing.T) {
	cfg := hetCfg()
	db, _ := Open(cfg)
	for i := 0; i < 8000; i++ {
		db.Put(key(i), val(i, 100))
	}
	db.mu.Lock()
	for level, files := range db.levels {
		for _, f := range files {
			wantNVM := level < db.cfg.NVMLevels
			isNVM := f.dev == db.cfg.NVM
			if wantNVM != isNVM {
				t.Fatalf("L%d file on wrong tier", level)
			}
		}
	}
	db.mu.Unlock()
	// Data must survive on both tiers.
	for i := 0; i < 8000; i += 53 {
		if _, ok, _, _ := db.Get(key(i)); !ok {
			t.Fatalf("key %d lost", i)
		}
	}
	st := db.Stats()
	if st.CompactionTimeNVM == 0 {
		t.Fatal("no NVM compaction time attributed")
	}
}

func TestReadSourceStats(t *testing.T) {
	db, _ := Open(singleCfg())
	for i := 0; i < 3000; i++ {
		db.Put(key(i), val(i, 100))
	}
	for i := 0; i < 3000; i++ {
		db.Get(key(i))
	}
	st := db.Stats()
	var fromLevels int64
	for _, n := range st.ReadsPerLevel {
		fromLevels += n
	}
	total := st.ReadsMemtable + st.ReadsBlockCache + fromLevels + st.ReadsMiss
	if total != 3000 {
		t.Fatalf("read sources sum to %d, want 3000 (%+v)", total, st)
	}
	if fromLevels == 0 {
		t.Fatal("no reads attributed to levels")
	}
}

func TestL2CacheMode(t *testing.T) {
	cfg := hetCfg()
	cfg.Mode = L2Cache
	cfg.NVMCacheBytes = 8 << 20
	db, _ := Open(cfg)
	for i := 0; i < 4000; i++ {
		db.Put(key(i), val(i, 100))
	}
	// All data files must be on flash.
	db.mu.Lock()
	for level, files := range db.levels {
		for _, f := range files {
			if f.dev != db.cfg.Flash {
				t.Fatalf("L2Cache mode placed L%d file on NVM", level)
			}
		}
	}
	db.mu.Unlock()
	for i := 0; i < 4000; i += 7 {
		if _, ok, _, _ := db.Get(key(i)); !ok {
			t.Fatalf("key %d lost", i)
		}
	}
	// Repeated reads should hit the NVM cache (cheaper than flash).
	nvmReadsBefore := cfg.NVM.Stats().ReadOps
	for r := 0; r < 3; r++ {
		for i := 0; i < 100; i++ {
			db.Get(key(i))
		}
	}
	if cfg.NVM.Stats().ReadOps == nvmReadsBefore {
		t.Fatal("NVM L2 cache never served reads")
	}
}

func TestRAPinsPopularKeys(t *testing.T) {
	// Boundary at L1→L2 (size-triggered), so pinned bytes keep L1 over
	// target and force re-compactions — the §3 tension.
	run := func(mode Mode) Stats {
		cfg := hetCfg()
		cfg.Mode = mode
		cfg.NVMLevels = 2
		db, _ := Open(cfg)
		for i := 0; i < 12000; i++ {
			db.Put(key(i), val(i, 100))
			db.Get(key(i % 500)) // hot set comparable to the L1 target
		}
		return db.Stats()
	}
	ra := run(RA)
	het := run(Het)
	if ra.PinnedKeys == 0 {
		t.Fatal("RA mode never pinned keys")
	}
	if ra.Compactions <= het.Compactions {
		t.Fatalf("RA compactions %d not > het %d (pinning tension, §3)",
			ra.Compactions, het.Compactions)
	}
}

func TestMutantMigration(t *testing.T) {
	cfg := hetCfg()
	cfg.Mode = MutantMode
	cfg.MigrateEvery = 2000
	// NVM smaller than the dataset so temperature decides placement.
	cfg.NVM = simdev.New(simdev.NVMParams(512 << 10))
	db, _ := Open(cfg)
	for i := 0; i < 6000; i++ {
		db.Put(key(i), val(i, 100))
		db.Get(key(i % 100))
	}
	st := db.Stats()
	if st.Migrations == 0 {
		t.Fatal("Mutant never migrated files")
	}
	for i := 0; i < 6000; i += 97 {
		if _, ok, _, _ := db.Get(key(i)); !ok {
			t.Fatalf("key %d lost after migration", i)
		}
	}
}

func TestWALModes(t *testing.T) {
	elapsed := func(cfg Config) float64 {
		db, _ := Open(cfg)
		for i := 0; i < 2000; i++ {
			db.Put(key(i), val(i, 100))
		}
		return db.Elapsed().Seconds()
	}
	buffered := singleCfg()
	fsynced := singleCfg()
	fsynced.FsyncWAL = true
	tBuf := elapsed(buffered)
	tSync := elapsed(fsynced)
	if tSync <= tBuf {
		t.Fatalf("fsync WAL (%f s) not slower than buffered (%f s)", tSync, tBuf)
	}
	// SpanDB's parallel SPDK logging beats group commit.
	span := hetCfg()
	span.Mode = SpanDBMode
	span.FsyncWAL = true
	rocksHet := hetCfg()
	rocksHet.FsyncWAL = true
	tSpan := elapsed(span)
	tRocks := elapsed(rocksHet)
	if tSpan >= tRocks {
		t.Fatalf("spandb fsync (%f s) not faster than rocksdb group commit (%f s)", tSpan, tRocks)
	}
}

func TestWriteStallsUnderL0Pressure(t *testing.T) {
	cfg := singleCfg()
	cfg.Primary = simdev.New(simdev.QLCParams(1 << 30)) // slow device
	cfg.MemtableBytes = 8 << 10
	cfg.L0CompactionTrigger = 2
	cfg.L0StallLimit = 3
	db, _ := Open(cfg)
	for i := 0; i < 20000; i++ {
		db.Put(key(i), val(i, 200))
	}
	if st := db.Stats(); st.WriteStalls == 0 {
		t.Skip("no stalls at this scale; acceptable — compaction keeps up")
	}
}

func TestModelBasedChurn(t *testing.T) {
	db, _ := Open(singleCfg())
	model := map[string][]byte{}
	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 10000; step++ {
		k := key(rng.Intn(500))
		switch rng.Intn(10) {
		case 0:
			db.Delete(k)
			delete(model, string(k))
		case 1, 2, 3, 4:
			v := val(rng.Intn(99999), 50+rng.Intn(200))
			db.Put(k, v)
			model[string(k)] = v
		default:
			v, ok, _, err := db.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			want, exists := model[string(k)]
			if ok != exists || (ok && !bytes.Equal(v, want)) {
				t.Fatalf("step %d: key %s mismatch (ok=%v exists=%v)", step, k, ok, exists)
			}
		}
	}
	if db.Stats().Compactions == 0 {
		t.Fatal("churn never compacted")
	}
}

func TestElapsedAndReset(t *testing.T) {
	db, _ := Open(singleCfg())
	db.Put(key(1), val(1, 100))
	if db.Elapsed() <= 0 {
		t.Fatal("elapsed not advancing")
	}
	db.ResetStats()
	if db.Stats().Puts != 0 {
		t.Fatal("reset failed")
	}
	if db.LevelFileCounts() == nil || db.LevelBytes() == nil {
		t.Fatal("level introspection broken")
	}
}

func TestModeStrings(t *testing.T) {
	names := map[Mode]string{
		Single: "rocksdb", Het: "rocksdb-het", L2Cache: "rocksdb-l2c",
		RA: "rocksdb-RA", MutantMode: "mutant", SpanDBMode: "spandb",
	}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	if Mode(99).String() != "unknown" {
		t.Fatal("unknown mode string")
	}
}
