// Package msc implements PrismDB's multi-tiered storage compaction metric
// (§5.2, Eq. 1): the ratio of compaction benefit (summed coldness of the
// NVM objects a key range would demote) to cost (flash I/O per migrated
// object). It also provides the power-of-k candidate selection of §5.3.
package msc

import "math/rand"

// Policy selects how candidate ranges are scored (Fig 6).
type Policy int

const (
	// Approx scores ranges from bucket estimates (the default; §5.3).
	Approx Policy = iota
	// Precise scores ranges by walking every object (accurate, CPU-heavy).
	Precise
	// Random picks a candidate range uniformly (the strawman baseline).
	Random
)

// String returns the policy's name as used in the paper's figures.
func (p Policy) String() string {
	switch p {
	case Approx:
		return "approx-MSC"
	case Precise:
		return "precise-MSC"
	case Random:
		return "random-selection"
	}
	return "unknown"
}

// RangeStats are the inputs to the MSC formula for one candidate range.
// Counts may be in objects or (for variable-sized workloads) bytes; the
// formula is scale-free as long as all fields use the same unit.
type RangeStats struct {
	Tn      float64 // objects in the candidate NVM key range
	Tf      float64 // objects in the overlapping flash SST file(s)
	P       float64 // fraction of popular (pinned) objects in the NVM range
	O       float64 // fraction of SST objects also present in the NVM range
	Benefit float64 // Σ coldness(j) over NVM objects in the range
}

// Cost returns the flash I/O per migrated object: F·(2−o)/(1−p) + 1, where
// F = tf/tn is the fanout (§5.2).
func Cost(s RangeStats) float64 {
	if s.Tn <= 0 {
		return 0
	}
	f := s.Tf / s.Tn
	p := s.P
	if p < 0 {
		p = 0
	}
	if p > 0.999 {
		p = 0.999 // a fully-pinned range would demote nothing
	}
	o := s.O
	if o < 0 {
		o = 0
	}
	if o > 1 {
		o = 1
	}
	return f*(2-o)/(1-p) + 1
}

// Score returns the MSC metric: benefit / cost. Ranges with no NVM objects
// score zero (nothing to demote).
func Score(s RangeStats) float64 {
	if s.Tn <= 0 || s.Benefit <= 0 {
		return 0
	}
	return s.Benefit / Cost(s)
}

// PickCandidates returns min(k, n) distinct indices drawn uniformly from
// [0, n), implementing power-of-k-choices candidate selection (§5.3,
// default k = 8). Enumerating all possible ranges is impractical for large
// databases; scoring a random subset gets most of the benefit.
func PickCandidates(n, k int, rng *rand.Rand) []int {
	if n <= 0 {
		return nil
	}
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	// Partial Fisher-Yates over a sparse permutation.
	chosen := make(map[int]int, k)
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		vi, vj := i, j
		if v, ok := chosen[i]; ok {
			vi = v
		}
		if v, ok := chosen[j]; ok {
			vj = v
		}
		out = append(out, vj)
		chosen[j] = vi
	}
	return out
}

// Best returns the index of the highest-scoring candidate and its score.
// Ties go to the earliest index, keeping selection deterministic for a
// given candidate order.
func Best(stats []RangeStats) (int, float64) {
	best, bestScore := -1, -1.0
	for i, s := range stats {
		if sc := Score(s); sc > bestScore {
			best, bestScore = i, sc
		}
	}
	return best, bestScore
}
