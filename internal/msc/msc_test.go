package msc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCostFormula(t *testing.T) {
	// F=1, o=0, p=0: cost = 1·2/1 + 1 = 3.
	s := RangeStats{Tn: 100, Tf: 100, P: 0, O: 0}
	if c := Cost(s); c != 3 {
		t.Fatalf("Cost = %f, want 3", c)
	}
	// Full overlap halves the flash term: 1·1/1 + 1 = 2.
	s.O = 1
	if c := Cost(s); c != 2 {
		t.Fatalf("Cost with o=1 = %f, want 2", c)
	}
	// Higher fanout costs more.
	low := Cost(RangeStats{Tn: 100, Tf: 100})
	high := Cost(RangeStats{Tn: 100, Tf: 1000})
	if high <= low {
		t.Fatalf("fanout 10 cost %f not > fanout 1 cost %f", high, low)
	}
}

func TestScoreZeroCases(t *testing.T) {
	if Score(RangeStats{Tn: 0, Benefit: 10}) != 0 {
		t.Fatal("empty NVM range must score 0")
	}
	if Score(RangeStats{Tn: 10, Benefit: 0}) != 0 {
		t.Fatal("zero benefit must score 0")
	}
}

func TestScoreMonotoneInColdness(t *testing.T) {
	base := RangeStats{Tn: 100, Tf: 100, P: 0.2, O: 0.3, Benefit: 50}
	colder := base
	colder.Benefit = 80
	if Score(colder) <= Score(base) {
		t.Fatal("more coldness must score higher")
	}
}

func TestScoreDecreasesWithPinningAndFanout(t *testing.T) {
	base := RangeStats{Tn: 100, Tf: 100, P: 0.1, O: 0.3, Benefit: 50}
	pinned := base
	pinned.P = 0.8
	if Score(pinned) >= Score(base) {
		t.Fatal("high pin ratio must lower score (sparser demotions)")
	}
	fanout := base
	fanout.Tf = 800
	if Score(fanout) >= Score(base) {
		t.Fatal("high fanout must lower score")
	}
	overlap := base
	overlap.O = 0.9
	if Score(overlap) <= Score(base) {
		t.Fatal("high overlap must raise score (less non-overlapping rewrite)")
	}
}

func TestExtremePClamped(t *testing.T) {
	s := RangeStats{Tn: 100, Tf: 100, P: 1.0, O: 0, Benefit: 10}
	if c := Cost(s); c <= 0 || c != c { // NaN check
		t.Fatalf("Cost with p=1 = %f, must be finite positive", c)
	}
	s.P = 5 // nonsense input clamps
	if c := Cost(s); c <= 0 {
		t.Fatalf("Cost with p>1 = %f", c)
	}
	s.O = -3
	if c := Cost(s); c <= 0 {
		t.Fatalf("Cost with o<0 = %f", c)
	}
}

func TestPickCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// k ≥ n returns all indices.
	got := PickCandidates(3, 8, rng)
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	// k < n returns k distinct indices in range.
	got = PickCandidates(100, 8, rng)
	if len(got) != 8 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, i := range got {
		if i < 0 || i >= 100 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
	if PickCandidates(0, 8, rng) != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestQuickPickCandidatesDistinct(t *testing.T) {
	f := func(nRaw, kRaw uint8, seed int64) bool {
		n := int(nRaw)%200 + 1
		k := int(kRaw)%20 + 1
		rng := rand.New(rand.NewSource(seed))
		got := PickCandidates(n, k, rng)
		want := k
		if n < k {
			want = n
		}
		if len(got) != want {
			return false
		}
		seen := map[int]bool{}
		for _, i := range got {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPickCandidatesUniform(t *testing.T) {
	// Rough uniformity: every index of a small space is eventually chosen.
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, 10)
	for trial := 0; trial < 2000; trial++ {
		for _, i := range PickCandidates(10, 3, rng) {
			counts[i]++
		}
	}
	for i, c := range counts {
		if c < 400 || c > 800 { // expected 600
			t.Fatalf("index %d chosen %d times, want ≈600", i, c)
		}
	}
}

func TestBest(t *testing.T) {
	stats := []RangeStats{
		{Tn: 100, Tf: 100, Benefit: 10},
		{Tn: 100, Tf: 100, Benefit: 90},
		{Tn: 100, Tf: 100, Benefit: 50},
	}
	i, sc := Best(stats)
	if i != 1 || sc <= 0 {
		t.Fatalf("Best = %d, %f", i, sc)
	}
	if i, _ := Best(nil); i != -1 {
		t.Fatalf("Best(nil) = %d", i)
	}
}

func TestPolicyString(t *testing.T) {
	if Approx.String() != "approx-MSC" || Precise.String() != "precise-MSC" ||
		Random.String() != "random-selection" || Policy(9).String() != "unknown" {
		t.Fatal("policy names wrong")
	}
}
