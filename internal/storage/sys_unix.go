//go:build unix

package storage

import (
	"os"
	"syscall"
)

// fdatasync flushes file data (not necessarily metadata) to stable storage.
// On Linux this is the cheap variant the WAL wants: record frames only ever
// grow the file, and the one metadata field that matters for replay — the
// file size — is covered by fdatasync's contract.
func fdatasync(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}

// flockExclusive takes a non-blocking exclusive advisory lock on f. It
// returns errLocked if another descriptor (any process, including this one)
// holds the lock.
func flockExclusive(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if err == syscall.EWOULDBLOCK {
		return errLocked
	}
	return err
}

// funlock releases the advisory lock held on f.
func funlock(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
