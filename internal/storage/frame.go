package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// WAL segments and the manifest journal share one frame format:
//
//	[u32 payload length][u32 CRC-32C of payload][payload]
//
// Frames are appended sequentially and written with positional writes, so a
// crash can only leave a *prefix* of the intended bytes: a torn tail is an
// incomplete final frame, never a hole in the middle. That asymmetry drives
// the scan rules below — an incomplete frame at end-of-file is truncated
// and forgiven, while a complete frame with a bad checksum is corruption
// and fails loudly.

const frameHeaderLen = 8

// maxFrameBytes bounds a frame's payload. Real records are tiny (the
// engine caps objects well below this); a "length" beyond the bound is
// garbage, not data.
const maxFrameBytes = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one framed payload to buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// scanFrames walks the frames in data, invoking fn on each payload. It
// returns the offset just past the last whole frame, the number of frames
// decoded, and — when the data ends mid-frame — the count of dangling tail
// bytes.
//
// An incomplete final frame is tolerated only when last is true (the final
// file of a log): a crash tears tails, it does not punch holes, so the same
// shape in an earlier file is corruption. A complete frame whose checksum
// does not match is corruption regardless of position — that data was
// acknowledged as written and is now wrong, and silently skipping it would
// drop updates.
func scanFrames(name string, data []byte, last bool, fn func(payload []byte) error) (end int64, frames int64, torn int64, err error) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		bad := ""
		length := 0
		if len(rest) < frameHeaderLen {
			bad = "incomplete frame header"
		} else if length = int(binary.LittleEndian.Uint32(rest[0:4])); length == 0 || length > maxFrameBytes {
			// A zero length can only come from zero fill (every real
			// payload has at least an opcode); an absurd one from garbage.
			// Either way no frame starts here.
			bad = fmt.Sprintf("bad frame length %d", length)
		} else if len(rest) < frameHeaderLen+length {
			bad = "frame payload past end of file"
		}
		if bad != "" {
			if last {
				return int64(off), frames, int64(len(data) - off), nil
			}
			return 0, 0, 0, fmt.Errorf("storage: %s: frame at offset %d: %s in non-final file", name, off, bad)
		}
		payload := rest[frameHeaderLen : frameHeaderLen+length]
		want := binary.LittleEndian.Uint32(rest[4:8])
		if got := crc32.Checksum(payload, crcTable); got != want {
			return 0, 0, 0, fmt.Errorf("storage: %s: frame at offset %d: checksum mismatch (got %08x want %08x)", name, off, got, want)
		}
		if err := fn(payload); err != nil {
			return 0, 0, 0, err
		}
		off += frameHeaderLen + length
		frames++
	}
	return int64(off), frames, 0, nil
}
