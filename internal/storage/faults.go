package storage

import (
	"errors"
	"sync"
)

// ErrInjected is returned by file operations that a FaultInjector failed on
// purpose. Recovery tests match on it to distinguish injected faults from
// real I/O errors.
var ErrInjected = errors.New("storage: injected fault")

// FaultMode selects what happens when an armed FaultInjector fires.
type FaultMode int

const (
	// FaultError fails the I/O without touching the file.
	FaultError FaultMode = iota
	// FaultShortWrite persists only the first half of the buffer and
	// reports ErrInjected, like a write interrupted by an error.
	FaultShortWrite
	// FaultTornWrite persists only the first half of the buffer but
	// reports success, then fails every subsequent I/O — the classic
	// power-cut shape: the caller believes the write landed, the tail of
	// it never did, and the machine is gone an instant later.
	FaultTornWrite
)

// FaultInjector makes the file backend fail deterministically. Every write,
// truncate, and sync issued through a Dir counts as one I/O; Arm(n, mode)
// makes the nth-from-now I/O fail in the given mode. A torn write leaves
// the injector "dead": all later I/O through the same Dir returns
// ErrInjected until Reset, simulating the crash that follows the tear.
//
// The zero value is an inert injector that counts I/O but never fires.
type FaultInjector struct {
	mu     sync.Mutex
	ops    int64 // I/Os observed so far
	fireAt int64 // fire when ops reaches this value; 0 = disarmed
	mode   FaultMode
	fired  bool
	dead   bool
}

// Arm schedules a fault on the nth I/O from now (n=1 is the very next one).
func (fi *FaultInjector) Arm(n int64, mode FaultMode) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.fireAt = fi.ops + n
	fi.mode = mode
	fi.fired = false
	fi.dead = false
}

// Reset disarms the injector and revives a dead one.
func (fi *FaultInjector) Reset() {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.fireAt = 0
	fi.fired = false
	fi.dead = false
}

// Ops reports how many I/Os the injector has observed.
func (fi *FaultInjector) Ops() int64 {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.ops
}

// Fired reports whether the armed fault has gone off.
func (fi *FaultInjector) Fired() bool {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.fired
}

// onIO accounts one I/O of n payload bytes and decides its fate: allow is
// how many bytes may actually be written (n for reads/syncs, which pass 0),
// and err is what the operation must return. A nil fi allows everything.
func (fi *FaultInjector) onIO(n int) (allow int, err error) {
	if fi == nil {
		return n, nil
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.ops++
	if fi.dead {
		return 0, ErrInjected
	}
	if fi.fireAt == 0 || fi.ops != fi.fireAt {
		return n, nil
	}
	fi.fired = true
	switch fi.mode {
	case FaultShortWrite:
		return n / 2, ErrInjected
	case FaultTornWrite:
		fi.dead = true
		return n / 2, nil
	default:
		return 0, ErrInjected
	}
}
