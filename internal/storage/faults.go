package storage

import (
	"errors"
	"fmt"
	"sync"
	"syscall"
	"time"
)

// ErrInjected is returned by file operations that a FaultInjector failed on
// purpose. Recovery tests match on it to distinguish injected faults from
// real I/O errors.
var ErrInjected = errors.New("storage: injected fault")

// errENOSPC is what a FaultENOSPC firing returns: it matches both
// ErrInjected (so fault harnesses recognise it) and syscall.ENOSPC (so the
// layers above treat it exactly like a real full disk).
var errENOSPC = fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC)

// FaultMode selects what happens when an armed FaultInjector fires.
type FaultMode int

const (
	// FaultError fails the I/O without touching the file.
	FaultError FaultMode = iota
	// FaultShortWrite persists only the first half of the buffer and
	// reports ErrInjected, like a write interrupted by an error.
	FaultShortWrite
	// FaultTornWrite persists only the first half of the buffer but
	// reports success, then fails every subsequent I/O — the classic
	// power-cut shape: the caller believes the write landed, the tail of
	// it never did, and the machine is gone an instant later.
	FaultTornWrite
	// FaultENOSPC fails the I/O with an error that wraps syscall.ENOSPC,
	// simulating a full disk. Unlike FaultError the error is
	// indistinguishable from the real condition by errors.Is.
	FaultENOSPC
	// FaultStall delays the I/O by the armed duration and then lets it
	// succeed, simulating a wedged device or a controller pause. The I/O
	// stall watchdog — not an error return — is what surfaces it.
	FaultStall
)

// FaultScope names one failure domain of the data directory, so a fault can
// be armed against exactly one path family. The zero value ScopeAny matches
// every I/O (the pre-scoping behavior).
type FaultScope string

const (
	ScopeAny     FaultScope = ""
	ScopeWAL     FaultScope = "wal"     // wal/ segments
	ScopeJournal FaultScope = "journal" // MANIFEST-* and CURRENT at the root
	ScopeSlab    FaultScope = "slab"    // nvm/ slab class files
	ScopeSST     FaultScope = "sst"     // flash/ sorted tables
)

// scopeOf maps a Dir subdirectory to its fault scope.
func scopeOf(sub string) FaultScope {
	switch sub {
	case DirWAL:
		return ScopeWAL
	case DirNVM:
		return ScopeSlab
	case DirFlash:
		return ScopeSST
	default: // root: manifest journal + CURRENT
		return ScopeJournal
	}
}

// ParseFaultScope resolves a scope name ("wal", "journal", "slab", "sst",
// or "any"/"" for unscoped) — the debug-hook and chaos-harness spelling.
func ParseFaultScope(s string) (FaultScope, error) {
	switch s {
	case "", "any":
		return ScopeAny, nil
	case "wal":
		return ScopeWAL, nil
	case "journal":
		return ScopeJournal, nil
	case "slab":
		return ScopeSlab, nil
	case "sst":
		return ScopeSST, nil
	}
	return ScopeAny, fmt.Errorf("storage: unknown fault scope %q", s)
}

// ParseFaultMode resolves a mode name ("error", "short", "torn", "enospc",
// "stall") — the debug-hook and chaos-harness spelling.
func ParseFaultMode(s string) (FaultMode, error) {
	switch s {
	case "error":
		return FaultError, nil
	case "short":
		return FaultShortWrite, nil
	case "torn":
		return FaultTornWrite, nil
	case "enospc":
		return FaultENOSPC, nil
	case "stall":
		return FaultStall, nil
	}
	return FaultError, fmt.Errorf("storage: unknown fault mode %q", s)
}

// FaultInjector makes the file backend fail deterministically. Every write,
// truncate, and sync issued through a Dir counts as one I/O; Arm(n, mode)
// makes the nth-from-now I/O fail in the given mode, and ArmScoped counts
// only I/Os of one failure domain (wal/journal/slab/sst) so a fault lands
// on a chosen path regardless of interleaved traffic elsewhere. A torn
// write leaves the injector "dead": all later I/O through the same Dir
// returns ErrInjected until Reset, simulating the crash that follows the
// tear.
//
// The zero value is an inert injector that counts I/O but never fires.
type FaultInjector struct {
	mu       sync.Mutex
	ops      int64                // I/Os observed so far, all scopes
	scopeOps map[FaultScope]int64 // per-scope I/O counts

	scope     FaultScope // armed scope; ScopeAny matches everything
	fireAt    int64      // fire when armedSeen reaches this; 0 = disarmed
	armedSeen int64      // matching I/Os observed since Arm
	mode      FaultMode
	stall     time.Duration // FaultStall: how long the I/O wedges
	fired     bool
	dead      bool
}

// Arm schedules a fault on the nth I/O from now (n=1 is the very next one),
// regardless of which path it lands on.
func (fi *FaultInjector) Arm(n int64, mode FaultMode) {
	fi.ArmScoped(ScopeAny, n, mode)
}

// ArmScoped schedules a fault on the nth I/O from now that touches the
// given scope; I/O outside the scope passes through and does not advance
// the countdown.
func (fi *FaultInjector) ArmScoped(scope FaultScope, n int64, mode FaultMode) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.scope = scope
	fi.fireAt = n
	fi.armedSeen = 0
	fi.mode = mode
	fi.stall = 0
	fi.fired = false
	fi.dead = false
}

// ArmStall schedules a FaultStall of duration d on the nth in-scope I/O:
// that I/O blocks for d and then succeeds. Concurrent I/O on other files is
// not blocked — only the unlucky operation wedges, like a single stuck
// request in a device queue.
func (fi *FaultInjector) ArmStall(scope FaultScope, n int64, d time.Duration) {
	fi.ArmScoped(scope, n, FaultStall)
	fi.mu.Lock()
	fi.stall = d
	fi.mu.Unlock()
}

// Reset disarms the injector and revives a dead one.
func (fi *FaultInjector) Reset() {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.fireAt = 0
	fi.armedSeen = 0
	fi.scope = ScopeAny
	fi.stall = 0
	fi.fired = false
	fi.dead = false
}

// Ops reports how many I/Os the injector has observed.
func (fi *FaultInjector) Ops() int64 {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.ops
}

// ScopeOps reports how many I/Os the injector has observed in one scope.
func (fi *FaultInjector) ScopeOps(scope FaultScope) int64 {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.scopeOps[scope]
}

// Fired reports whether the armed fault has gone off.
func (fi *FaultInjector) Fired() bool {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.fired
}

// onIO accounts one I/O of n payload bytes in the given scope and decides
// its fate: allow is how many bytes may actually be written (n for
// reads/syncs, which pass 0), and err is what the operation must return. A
// nil fi allows everything.
func (fi *FaultInjector) onIO(scope FaultScope, n int) (allow int, err error) {
	if fi == nil {
		return n, nil
	}
	fi.mu.Lock()
	fi.ops++
	if fi.scopeOps == nil {
		fi.scopeOps = make(map[FaultScope]int64)
	}
	fi.scopeOps[scope]++
	if fi.dead {
		fi.mu.Unlock()
		return 0, ErrInjected
	}
	if fi.fireAt == 0 || (fi.scope != ScopeAny && scope != fi.scope) {
		fi.mu.Unlock()
		return n, nil
	}
	fi.armedSeen++
	if fi.armedSeen != fi.fireAt {
		fi.mu.Unlock()
		return n, nil
	}
	fi.fired = true
	mode, stall := fi.mode, fi.stall
	switch mode {
	case FaultShortWrite:
		fi.mu.Unlock()
		return n / 2, ErrInjected
	case FaultTornWrite:
		fi.dead = true
		fi.mu.Unlock()
		return n / 2, nil
	case FaultENOSPC:
		fi.mu.Unlock()
		return 0, errENOSPC
	case FaultStall:
		// Sleep off-lock so only this operation wedges; everything else
		// keeps flowing, which is what makes the stall watchdog — not
		// global unavailability — the detection mechanism.
		fi.mu.Unlock()
		time.Sleep(stall)
		return n, nil
	default:
		fi.mu.Unlock()
		return 0, ErrInjected
	}
}
