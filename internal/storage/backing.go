package storage

import (
	"github.com/prismdb/prismdb/internal/simdev"
)

// Backing returns a simdev.Backing that stores a device's files as real
// files under one subdirectory of the data dir (DirNVM for the slab tier,
// DirFlash for SSTs). Engine file names contain no separators, so names
// map 1:1 onto directory entries.
func (d *Dir) Backing(sub string) simdev.Backing {
	return &dirBacking{d: d, sub: sub}
}

type dirBacking struct {
	d   *Dir
	sub string
}

func (b *dirBacking) Create(name string) (simdev.BackingFile, error) {
	f, err := b.d.create(b.sub, name)
	if err != nil {
		return nil, err
	}
	if err := b.d.syncDir(b.sub); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func (b *dirBacking) Open(name string) (simdev.BackingFile, int64, error) {
	return b.d.openExisting(b.sub, name)
}

func (b *dirBacking) Remove(name string) error {
	if err := b.d.remove(b.sub, name); err != nil {
		return err
	}
	return b.d.syncDir(b.sub)
}

func (b *dirBacking) List() ([]simdev.BackingInfo, error) {
	names, sizes, err := b.d.list(b.sub)
	if err != nil {
		return nil, err
	}
	infos := make([]simdev.BackingInfo, len(names))
	for i := range names {
		infos[i] = simdev.BackingInfo{Name: names[i], Size: sizes[i]}
	}
	return infos, nil
}
