//go:build unix

package storage

import (
	"errors"
	"testing"
)

// The flock is only real on unix; elsewhere flockExclusive is a no-op and
// double-opening is (knowingly) not excluded.
func TestDirLockExclusion(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir, nil); !errors.Is(err, errLocked) {
		t.Fatalf("second OpenDir returned %v, want lock error", err)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	// Close releases the flock: the directory can be reopened.
	d2, err := OpenDir(dir, nil)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	d2.Close()
}
