package storage

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Journal is the manifest journal: an append-only log of SST add/remove
// edits, one per compaction commit, named by the CURRENT pointer file.
// Because each edit is a single framed append followed by an fdatasync, a
// compaction commit is crash-atomic: after a crash the journal either
// contains the whole edit or — if the final frame is torn — none of it, and
// a torn final edit is safe to drop because the commit it described was
// never acknowledged to the engine.
//
// When the journal grows past rotateBytes, it is compacted: a fresh
// MANIFEST-NNNNNN is written containing one snapshot edit per partition,
// fsynced, and CURRENT is atomically swung to it before the old journal is
// deleted.
type Journal struct {
	d *Dir

	mu    sync.Mutex
	f     *file
	seq   uint64
	size  int64
	live  map[int]map[string]bool // partition → live SST file names
	edits int64
	err   error // sticky: CURRENT's on-disk referent can no longer be proven

	rotateBytes int64
}

const journalRotateBytes = 1 << 20

func journalName(seq uint64) string { return fmt.Sprintf("MANIFEST-%06d", seq) }

// OpenJournal replays (or creates) the manifest journal of d. A CURRENT
// file that names a missing journal is a loud error — that state is not
// reachable by crashing, only by losing data.
func OpenJournal(d *Dir) (*Journal, error) {
	j := &Journal{
		d:           d,
		live:        make(map[int]map[string]bool),
		rotateBytes: journalRotateBytes,
	}
	cur, err := d.ReadCurrent()
	if err != nil {
		return nil, err
	}
	// Remove manifest journals CURRENT does not name: leftovers of a crash
	// mid-rotation (an old journal whose removal didn't land, or a new one
	// whose CURRENT swing didn't) — or, with no CURRENT at all, a crash
	// during the very first open. They are unreferenced garbage, but a
	// surviving next-sequence file would collide with a later O_EXCL create
	// and wedge the journal.
	if names, _, lerr := d.list(""); lerr == nil {
		removed := false
		for _, n := range names {
			if _, ok := parseJournalName(n); ok && n != cur {
				if d.remove("", n) == nil {
					removed = true
				}
			}
		}
		if removed {
			d.syncDir("")
		}
	}
	if cur == "" {
		// Fresh directory: create MANIFEST-000001 and point CURRENT at it.
		j.seq = 1
		f, err := d.create("", journalName(j.seq))
		if err != nil {
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		if err := d.syncDir(""); err != nil {
			f.Close()
			return nil, err
		}
		if err := d.SetCurrent(journalName(j.seq)); err != nil {
			f.Close()
			return nil, err
		}
		j.f = f
		return j, nil
	}
	seq, ok := parseJournalName(cur)
	if !ok {
		return nil, fmt.Errorf("storage: CURRENT names %q, not a manifest journal", cur)
	}
	f, size, err := d.openExisting("", cur)
	if err != nil {
		return nil, fmt.Errorf("storage: CURRENT points at missing manifest journal %s: %w", cur, err)
	}
	data := make([]byte, size)
	if size > 0 {
		if err := f.ReadAt(data, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: %s: %w", cur, err)
		}
	}
	end, frames, torn, err := scanFrames(cur, data, true, j.applyEdit)
	if err != nil {
		f.Close()
		return nil, err
	}
	if torn > 0 {
		// The torn edit's compaction was never acknowledged; cut it.
		if err := f.Truncate(end); err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: %s: truncating torn edit: %w", cur, err)
		}
	}
	j.f, j.seq, j.size, j.edits = f, seq, end, frames
	return j, nil
}

func parseJournalName(name string) (uint64, bool) {
	var seq uint64
	n, err := fmt.Sscanf(name, "MANIFEST-%d", &seq)
	return seq, err == nil && n == 1
}

// Edit payload: [uvarint partition][uvarint nAdd][names][uvarint nRemove][names],
// each name length-prefixed with a uvarint.
func appendEdit(buf []byte, part int, add, remove []string) []byte {
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	putUvarint(uint64(part))
	putUvarint(uint64(len(add)))
	for _, s := range add {
		putUvarint(uint64(len(s)))
		buf = append(buf, s...)
	}
	putUvarint(uint64(len(remove)))
	for _, s := range remove {
		putUvarint(uint64(len(s)))
		buf = append(buf, s...)
	}
	return buf
}

// applyEdit decodes one edit payload into the live set.
func (j *Journal) applyEdit(payload []byte) error {
	u := func() (uint64, bool) {
		v, n := binary.Uvarint(payload)
		if n <= 0 {
			return 0, false
		}
		payload = payload[n:]
		return v, true
	}
	str := func() (string, bool) {
		l, ok := u()
		if !ok || uint64(len(payload)) < l {
			return "", false
		}
		s := string(payload[:l])
		payload = payload[l:]
		return s, true
	}
	part, ok := u()
	if !ok {
		return fmt.Errorf("storage: manifest edit: bad partition")
	}
	set := j.live[int(part)]
	if set == nil {
		set = make(map[string]bool)
		j.live[int(part)] = set
	}
	nAdd, ok := u()
	if !ok {
		return fmt.Errorf("storage: manifest edit: bad add count")
	}
	for i := uint64(0); i < nAdd; i++ {
		s, ok := str()
		if !ok {
			return fmt.Errorf("storage: manifest edit: bad add name")
		}
		set[s] = true
	}
	nRm, ok := u()
	if !ok {
		return fmt.Errorf("storage: manifest edit: bad remove count")
	}
	for i := uint64(0); i < nRm; i++ {
		s, ok := str()
		if !ok {
			return fmt.Errorf("storage: manifest edit: bad remove name")
		}
		delete(set, s)
	}
	return nil
}

// LogEdit durably records one SST add/remove edit for a partition. It
// satisfies sst.Journal. The edit is on disk (fdatasync'd) when LogEdit
// returns; on error nothing may be assumed and the caller must fail the
// commit.
func (j *Journal) LogEdit(part int, add, remove []string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	frame := appendFrame(nil, appendEdit(nil, part, add, remove))
	if err := j.f.WriteAt(frame, j.size); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.size += int64(len(frame))
	j.edits++
	// Mirror the edit into the live set only after it is durable.
	j.applyEdit(frame[frameHeaderLen:])
	if j.size >= j.rotateBytes {
		// Rotation is opportunistic: the edit above is already durable in
		// the live journal, so a cleanly-aborted rotation (partial file
		// removed, CURRENT untouched) must not fail the commit it rode on —
		// the journal just stays big and the next LogEdit retries. Only an
		// ambiguous CURRENT swing (j.err latched) fails this edit too: its
		// home journal can no longer be proven to be the one recovery reads.
		if rerr := j.rotateLocked(); rerr != nil && j.err != nil {
			return j.err
		}
	}
	return nil
}

// rotateLocked compacts the journal to one snapshot edit per partition in
// a fresh file, swings CURRENT, and removes the old file. A crash anywhere
// in between leaves a usable journal: CURRENT flips atomically, and until
// it flips the old journal remains complete.
//
// Failure discipline: every path that aborts with CURRENT provably still on
// the old journal removes the half-written MANIFEST-(seq+1) — leaving it
// would wedge the journal permanently, since the O_EXCL create of the same
// name fails on every retry while j.seq never advances. Only a SetCurrent
// failure whose outcome cannot be proven latches j.err: appending further
// edits to a file that recovery might not read would silently lose commits.
func (j *Journal) rotateLocked() error {
	nextSeq := j.seq + 1
	nf, err := j.d.create("", journalName(nextSeq))
	if err != nil {
		return err
	}
	var buf []byte
	parts := make([]int, 0, len(j.live))
	for p := range j.live {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	for _, p := range parts {
		names := make([]string, 0, len(j.live[p]))
		for n := range j.live[p] {
			names = append(names, n)
		}
		sort.Strings(names)
		buf = appendFrame(buf, appendEdit(nil, p, names, nil))
	}
	werr := nf.WriteAt(buf, 0)
	if werr == nil {
		werr = nf.Sync()
	}
	if werr == nil {
		werr = j.d.syncDir("")
	}
	if werr != nil {
		// Clean abort: CURRENT was never touched, the new file is garbage.
		nf.Close()
		j.d.remove("", journalName(nextSeq))
		return werr
	}
	if err := j.d.SetCurrent(journalName(nextSeq)); err != nil {
		// SetCurrent renames before its directory fsync, so the pointer may
		// or may not have swung. Read the live view back to find out.
		cur, rerr := j.d.ReadCurrent()
		switch {
		case rerr == nil && cur == journalName(j.seq):
			// The rename never happened: the new file is unreferenced.
			nf.Close()
			j.d.remove("", journalName(nextSeq))
			return err
		case rerr == nil && cur == journalName(nextSeq):
			// Renamed, but the rename's durability is unknown (the directory
			// fsync failed). Future edits must go where the live pointer
			// points, and the swing must be durable before any of them is
			// acknowledged: retry the full SetCurrent (idempotent — rewrite
			// tmp, rename, fsync dir) and adopt the new journal on success.
			if serr := j.d.SetCurrent(journalName(nextSeq)); serr != nil {
				nf.Close()
				j.err = fmt.Errorf("storage: manifest rotation left CURRENT ambiguous: %w", serr)
				return j.err
			}
		default:
			nf.Close()
			j.err = fmt.Errorf("storage: manifest rotation left CURRENT ambiguous: %w", err)
			return j.err
		}
	}
	old, oldSeq := j.f, j.seq
	j.f, j.seq, j.size, j.edits = nf, nextSeq, int64(len(buf)), int64(len(parts))
	old.Close()
	j.d.remove("", journalName(oldSeq))
	j.d.syncDir("")
	return nil
}

// Live returns the sorted live SST names of one partition.
func (j *Journal) Live(part int) []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	names := make([]string, 0, len(j.live[part]))
	for n := range j.live[part] {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LiveAll returns the union of live SST names across partitions, for
// orphan cleanup.
func (j *Journal) LiveAll() map[string]bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	all := make(map[string]bool)
	for _, set := range j.live {
		for n := range set {
			all[n] = true
		}
	}
	return all
}

// Edits reports the number of edits in the current journal file (testing
// and stats hook).
func (j *Journal) Edits() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.edits
}
