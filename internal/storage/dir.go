// Package storage is the real-file persistence layer behind the simulated
// devices: a locked data directory, a group-commit write-ahead log, and a
// journaled manifest with an atomic CURRENT pointer. It holds everything
// that must survive a crash; the engine above it keeps talking to simdev
// files and never touches the filesystem directly.
//
// Layout of a data directory:
//
//	LOCK            flock'd while a process has the directory open
//	CURRENT         name of the live manifest journal
//	MANIFEST-NNNNNN append-only journal of SST add/remove edits
//	wal/NNNNNN.wal  write-ahead log segments
//	nvm/...         slab class files (the NVM tier's backing store)
//	flash/...       SST files (the flash tier's backing store)
package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

var errLocked = errors.New("storage: data directory is locked by another process")

const (
	lockName    = "LOCK"
	currentName = "CURRENT"

	// DirWAL, DirNVM, and DirFlash are the subdirectories of a data dir.
	DirWAL   = "wal"
	DirNVM   = "nvm"
	DirFlash = "flash"
)

// Dir is an exclusively-locked data directory. All file I/O under it flows
// through one optional FaultInjector, and every file opened through the Dir
// is tracked so Close can drop the descriptors in one sweep.
type Dir struct {
	path   string
	faults *FaultInjector
	lockf  *os.File

	mu   sync.Mutex
	open map[*file]struct{}
}

// OpenDir creates (if needed) and locks a data directory. faults may be nil.
// It fails with a "locked" error if any other Dir — in this or another
// process — currently has the same directory open.
func OpenDir(path string, faults *FaultInjector) (*Dir, error) {
	for _, sub := range []string{"", DirWAL, DirNVM, DirFlash} {
		if err := os.MkdirAll(filepath.Join(path, sub), 0o755); err != nil {
			return nil, err
		}
	}
	lockf, err := os.OpenFile(filepath.Join(path, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := flockExclusive(lockf); err != nil {
		lockf.Close()
		if err == errLocked {
			return nil, fmt.Errorf("storage: %s: %w", path, errLocked)
		}
		return nil, err
	}
	// Best-effort breadcrumb for humans; the flock is the actual exclusion.
	lockf.Truncate(0)
	fmt.Fprintf(lockf, "%d\n", os.Getpid())
	return &Dir{
		path:   path,
		faults: faults,
		lockf:  lockf,
		open:   make(map[*file]struct{}),
	}, nil
}

// Path returns the directory's root path.
func (d *Dir) Path() string { return d.path }

// Close drops every descriptor opened through the Dir and releases the
// directory lock. It does not flush anything: durability is the caller's
// business (the WAL fsyncs on its own Close; slab files are fsynced at
// checkpoints). Crash-simulation tests rely on that — Close after a
// skipped flush behaves like kill -9 with a warm page cache.
func (d *Dir) Close() error {
	d.mu.Lock()
	files := make([]*file, 0, len(d.open))
	for f := range d.open {
		files = append(files, f)
	}
	d.open = make(map[*file]struct{})
	d.mu.Unlock()
	var first error
	for _, f := range files {
		if err := f.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	if d.lockf != nil {
		funlock(d.lockf)
		if err := d.lockf.Close(); err != nil && first == nil {
			first = err
		}
		d.lockf = nil
	}
	return first
}

// create opens a new injected file under sub, failing if it exists.
func (d *Dir) create(sub, name string) (*file, error) {
	osf, err := os.OpenFile(d.join(sub, name), os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	return d.track(sub, osf), nil
}

// openExisting opens an injected file under sub, returning its size.
func (d *Dir) openExisting(sub, name string) (*file, int64, error) {
	osf, err := os.OpenFile(d.join(sub, name), os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, err
	}
	st, err := osf.Stat()
	if err != nil {
		osf.Close()
		return nil, 0, err
	}
	return d.track(sub, osf), st.Size(), nil
}

func (d *Dir) track(sub string, osf *os.File) *file {
	f := &file{d: d, f: osf, scope: scopeOf(sub)}
	d.mu.Lock()
	d.open[f] = struct{}{}
	d.mu.Unlock()
	return f
}

func (d *Dir) untrack(f *file) {
	d.mu.Lock()
	delete(d.open, f)
	d.mu.Unlock()
}

func (d *Dir) join(sub, name string) string {
	if sub == "" {
		return filepath.Join(d.path, name)
	}
	return filepath.Join(d.path, sub, name)
}

// remove deletes a file under sub.
func (d *Dir) remove(sub, name string) error {
	return os.Remove(d.join(sub, name))
}

// list returns the names and sizes of regular files under sub, sorted by
// name.
func (d *Dir) list(sub string) (names []string, sizes []int64, err error) {
	ents, err := os.ReadDir(d.join(sub, ""))
	if err != nil {
		return nil, nil, err
	}
	for _, e := range ents {
		if !e.Type().IsRegular() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, nil, err
		}
		names = append(names, e.Name())
		sizes = append(sizes, info.Size())
	}
	sort.Sort(&byName{names, sizes})
	return names, sizes, nil
}

type byName struct {
	names []string
	sizes []int64
}

func (s *byName) Len() int           { return len(s.names) }
func (s *byName) Less(i, j int) bool { return s.names[i] < s.names[j] }
func (s *byName) Swap(i, j int) {
	s.names[i], s.names[j] = s.names[j], s.names[i]
	s.sizes[i], s.sizes[j] = s.sizes[j], s.sizes[i]
}

// syncDir fsyncs the directory itself so created/removed/renamed names are
// durable.
func (d *Dir) syncDir(sub string) error {
	df, err := os.Open(d.join(sub, ""))
	if err != nil {
		return err
	}
	defer df.Close()
	return df.Sync()
}

// ReadCurrent returns the manifest journal name recorded in CURRENT, or ""
// if no CURRENT file exists yet.
func (d *Dir) ReadCurrent() (string, error) {
	b, err := os.ReadFile(d.join("", currentName))
	if err != nil {
		if os.IsNotExist(err) {
			return "", nil
		}
		return "", err
	}
	return strings.TrimSpace(string(b)), nil
}

// SetCurrent atomically points CURRENT at name: write a temp file, fsync
// it, rename over CURRENT, fsync the directory. A crash leaves either the
// old pointer or the new one, never a torn file.
func (d *Dir) SetCurrent(name string) error {
	tmp := d.join("", currentName+".tmp")
	os.Remove(tmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(name + "\n"); err == nil {
		err = f.Sync()
	} else {
		f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, d.join("", currentName)); err != nil {
		return err
	}
	return d.syncDir("")
}

// RemoveExtraFiles deletes every regular file under sub whose name is not
// in keep, returning the removed names. Recovery uses it to clear SSTs
// that were written but never committed to the manifest journal.
func (d *Dir) RemoveExtraFiles(sub string, keep map[string]bool) ([]string, error) {
	names, _, err := d.list(sub)
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, n := range names {
		if keep[n] {
			continue
		}
		if err := d.remove(sub, n); err != nil {
			return removed, err
		}
		removed = append(removed, n)
	}
	if len(removed) > 0 {
		if err := d.syncDir(sub); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// file is an os.File that routes writes, truncates, and syncs through the
// Dir's fault injector, tagged with the fault scope of the subdirectory it
// lives in so scoped arming can target one failure domain. It satisfies
// simdev.BackingFile.
type file struct {
	d     *Dir
	f     *os.File
	scope FaultScope
}

func (f *file) ReadAt(p []byte, off int64) error {
	_, err := f.f.ReadAt(p, off)
	return err
}

func (f *file) WriteAt(p []byte, off int64) error {
	allow, ferr := f.d.faults.onIO(f.scope, len(p))
	if allow < len(p) {
		if allow > 0 {
			f.f.WriteAt(p[:allow], off)
		}
		if ferr == nil {
			// Torn write: the caller sees success, the tail is gone.
			return nil
		}
		return ferr
	}
	if ferr != nil {
		return ferr
	}
	_, err := f.f.WriteAt(p, off)
	return err
}

func (f *file) Truncate(size int64) error {
	if _, ferr := f.d.faults.onIO(f.scope, 0); ferr != nil {
		return ferr
	}
	return f.f.Truncate(size)
}

func (f *file) Sync() error {
	if _, ferr := f.d.faults.onIO(f.scope, 0); ferr != nil {
		return ferr
	}
	return fdatasync(f.f)
}

func (f *file) Close() error {
	f.d.untrack(f)
	return f.f.Close()
}
