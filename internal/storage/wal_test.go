package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// openTestDir opens a locked Dir over a fresh (or reused) path.
func openTestDir(t *testing.T, path string, faults *FaultInjector) *Dir {
	t.Helper()
	d, err := OpenDir(path, faults)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

type walRec struct {
	op    byte
	key   string
	value string
}

// replayAll opens the WAL of d and collects every replayed record.
func replayAll(t *testing.T, d *Dir, opts WALOptions) (*WAL, []walRec) {
	t.Helper()
	w, err := OpenWAL(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	var recs []walRec
	_, err = w.Replay(func(op byte, key, value []byte) error {
		recs = append(recs, walRec{op, string(key), string(value)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, recs
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := openTestDir(t, dir, nil)
	w, recs := replayAll(t, d, WALOptions{Mode: SyncEvery})
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(recs))
	}
	if err := w.Start(nil); err != nil {
		t.Fatal(err)
	}
	var want []walRec
	for i := 0; i < 50; i++ {
		k, v := fmt.Sprintf("key%03d", i), fmt.Sprintf("value-%d", i)
		lsn, err := w.AppendPut([]byte(k), []byte(v))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
		want = append(want, walRec{OpPut, k, v})
	}
	lsn, err := w.AppendDel([]byte("key007"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	want = append(want, walRec{OpDel, "key007", ""})
	st := w.Stats()
	if st.Records != 51 || st.Bytes == 0 || st.Fsyncs == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d = openTestDir(t, dir, nil)
	defer d.Close()
	w2, got := replayAll(t, d, WALOptions{})
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if st := w2.Stats(); st.Recovery.TruncatedBytes != 0 {
		t.Fatalf("clean shutdown recovered with truncation: %+v", st.Recovery)
	}
}

func TestWALEmptyDirectory(t *testing.T) {
	d := openTestDir(t, t.TempDir(), nil)
	defer d.Close()
	w, recs := replayAll(t, d, WALOptions{})
	if len(recs) != 0 {
		t.Fatalf("empty dir replayed %d records", len(recs))
	}
	if st := w.Stats(); st.Recovery.Segments != 0 || st.Recovery.Records != 0 {
		t.Fatalf("recovery stats on empty dir = %+v", st.Recovery)
	}
	if err := w.Start(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// activeSegPath returns the path of the highest-numbered WAL segment.
func activeSegPath(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, DirWAL))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("no WAL segments")
	}
	return filepath.Join(dir, DirWAL, ents[len(ents)-1].Name())
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	d := openTestDir(t, dir, nil)
	w, _ := replayAll(t, d, WALOptions{})
	if err := w.Start(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		lsn, err := w.AppendPut([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a prefix of an eleventh frame (a header
	// claiming 100 payload bytes, but only 3 present) at the segment's tail.
	seg := activeSegPath(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{100, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 'x', 'y', 'z'}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d = openTestDir(t, dir, nil)
	w2, recs := replayAll(t, d, WALOptions{})
	if len(recs) != 10 {
		t.Fatalf("replayed %d records through torn tail, want 10", len(recs))
	}
	if st := w2.Stats(); st.Recovery.TruncatedBytes != int64(len(torn)) {
		t.Fatalf("TruncatedBytes = %d, want %d", st.Recovery.TruncatedBytes, len(torn))
	}
	if err := w2.Start(nil); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover-then-recover: the tail was truncated on disk, so a second
	// recovery sees a clean log and the same records.
	d = openTestDir(t, dir, nil)
	defer d.Close()
	w3, recs := replayAll(t, d, WALOptions{})
	if len(recs) != 10 {
		t.Fatalf("second recovery replayed %d records, want 10", len(recs))
	}
	if st := w3.Stats(); st.Recovery.TruncatedBytes != 0 {
		t.Fatalf("second recovery still truncating: %+v", st.Recovery)
	}
}

func TestWALCorruptRecordFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	d := openTestDir(t, dir, nil)
	w, _ := replayAll(t, d, WALOptions{})
	if err := w.Start(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		lsn, _ := w.AppendPut([]byte(fmt.Sprintf("k%d", i)), []byte("abcdefgh"))
		if err := w.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte in the middle of the first record: a complete
	// frame whose checksum no longer matches. That is corruption, not a torn
	// tail, and recovery must refuse to proceed.
	seg := activeSegPath(t, dir)
	f, err := os.OpenFile(seg, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, frameHeaderLen+5); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d = openTestDir(t, dir, nil)
	defer d.Close()
	w2, err := OpenWAL(d, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = w2.Replay(func(op byte, key, value []byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupt record replayed without a checksum error: %v", err)
	}
}

func TestWALTornNonFinalSegmentFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	d := openTestDir(t, dir, nil)
	w, _ := replayAll(t, d, WALOptions{SegmentBytes: 256})
	// nil checkpoint: rotated segments are never pruned, so several
	// accumulate.
	if err := w.Start(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		lsn, err := w.AppendPut([]byte(fmt.Sprintf("key%04d", i)), []byte("0123456789abcdef"))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	ents, err := os.ReadDir(filepath.Join(dir, DirWAL))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) < 3 {
		t.Fatalf("expected several segments, got %d", len(ents))
	}
	// Chop the FIRST segment mid-frame. A crash cannot produce that shape —
	// later segments only exist because this one was complete — so recovery
	// must fail loudly rather than silently drop the records after the cut.
	first := filepath.Join(dir, DirWAL, ents[0].Name())
	st, err := os.Stat(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(first, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	d = openTestDir(t, dir, nil)
	defer d.Close()
	w2, err := OpenWAL(d, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = w2.Replay(func(op byte, key, value []byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "non-final") {
		t.Fatalf("torn non-final segment replayed without error: %v", err)
	}
}

func TestWALSyncModesAllSurviveClose(t *testing.T) {
	for _, mode := range []SyncMode{SyncEvery, SyncGroup, SyncNone} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			d := openTestDir(t, dir, nil)
			w, _ := replayAll(t, d, WALOptions{Mode: mode, FsyncEvery: 8, FsyncInterval: time.Millisecond})
			if err := w.Start(nil); err != nil {
				t.Fatal(err)
			}
			const n = 200
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < n/4; i++ {
						lsn, err := w.AppendPut([]byte(fmt.Sprintf("g%d-k%03d", g, i)), []byte("v"))
						if err != nil {
							t.Error(err)
							return
						}
						if err := w.WaitDurable(lsn); err != nil {
							t.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			// Close fsyncs in every mode: a clean shutdown loses nothing.
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}

			d = openTestDir(t, dir, nil)
			defer d.Close()
			_, recs := replayAll(t, d, WALOptions{})
			if len(recs) != n {
				t.Fatalf("mode %v: replayed %d records, want %d", mode, len(recs), n)
			}
		})
	}
}

func TestWALKillKeepsAcknowledgedWrites(t *testing.T) {
	dir := t.TempDir()
	d := openTestDir(t, dir, nil)
	w, _ := replayAll(t, d, WALOptions{Mode: SyncEvery})
	if err := w.Start(nil); err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		lsn, err := w.AppendPut([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	// Kill skips the final flush and fsync — but every one of these writes
	// was acknowledged only after its fsync, so nothing may be lost.
	w.Kill()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d = openTestDir(t, dir, nil)
	defer d.Close()
	_, recs := replayAll(t, d, WALOptions{})
	if len(recs) != n {
		t.Fatalf("replayed %d records after Kill, want %d", len(recs), n)
	}
}

func TestWALRotationCheckpointsAndPrunes(t *testing.T) {
	dir := t.TempDir()
	d := openTestDir(t, dir, nil)
	defer d.Close()
	w, _ := replayAll(t, d, WALOptions{SegmentBytes: 512})
	var checkpoints int
	if err := w.Start(func() error { checkpoints++; return nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		lsn, err := w.AppendPut([]byte(fmt.Sprintf("key%04d", i)), []byte("0123456789abcdef0123456789abcdef"))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if st.Checkpoints == 0 {
		t.Fatal("no checkpoints after many rotations")
	}
	if checkpoints == 0 {
		t.Fatal("checkpoint callback never ran")
	}
	// Rotated-and-checkpointed segments are pruned: only the active segment
	// (plus at most one not-yet-pruned predecessor) remains.
	names, _, err := d.list(DirWAL)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) > 2 {
		t.Fatalf("%d segments on disk after checkpoints: %v", len(names), names)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALCheckpointFailureRetainsSegments(t *testing.T) {
	dir := t.TempDir()
	d := openTestDir(t, dir, nil)
	defer d.Close()
	w, _ := replayAll(t, d, WALOptions{SegmentBytes: 512})
	ckErr := errors.New("checkpoint refused")
	fail := true
	if err := w.Start(func() error {
		if fail {
			return ckErr
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	write := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			lsn, err := w.AppendPut([]byte(fmt.Sprintf("key%06d", i)), []byte("0123456789abcdef0123456789abcdef"))
			if err != nil {
				t.Fatal(err)
			}
			if err := w.WaitDurable(lsn); err != nil {
				t.Fatal(err)
			}
		}
	}
	write(100)
	if st := w.Stats(); st.Checkpoints != 0 || st.Segments < 2 {
		t.Fatalf("failing checkpoint: stats = %+v", st)
	}
	// Once the checkpoint succeeds, the retained backlog is pruned in one go.
	fail = false
	write(100)
	if st := w.Stats(); st.Checkpoints == 0 {
		t.Fatalf("checkpoint never succeeded: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALTornWriteFault(t *testing.T) {
	dir := t.TempDir()
	fi := &FaultInjector{}
	d := openTestDir(t, dir, fi)
	w, _ := replayAll(t, d, WALOptions{Mode: SyncEvery})
	if err := w.Start(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		lsn, err := w.AppendPut([]byte(fmt.Sprintf("good%d", i)), []byte("value"))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the very next I/O: the flusher's WriteAt persists only half the
	// frame and reports success, then the fsync (injector now dead) fails, so
	// the append is never acknowledged.
	fi.Arm(1, FaultTornWrite)
	lsn, err := w.AppendPut([]byte("doomed"), []byte("never-acked"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(lsn); err == nil {
		t.Fatal("write after torn fault was acknowledged")
	}
	w.Kill()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// The machine "comes back": recovery truncates the torn half-frame and
	// keeps every acknowledged record.
	fi.Reset()
	d = openTestDir(t, dir, fi)
	defer d.Close()
	w2, recs := replayAll(t, d, WALOptions{})
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want the 5 acknowledged ones", len(recs))
	}
	for i, r := range recs {
		if r.key != fmt.Sprintf("good%d", i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if st := w2.Stats(); st.Recovery.TruncatedBytes == 0 {
		t.Fatal("torn write left no truncated bytes")
	}
}

// TestWALRotationSyncsOutgoingSegment pins the rotation fsync: in SyncGroup
// (and nosync) modes records can sit written-but-unsynced when the active
// segment fills, and after rotation every later fdatasync covers only the
// new file. The rotation itself must therefore sync the outgoing segment —
// otherwise its tail stays volatile while the WAL reports those LSNs
// durable, and a power cut could tear a NON-final segment, which recovery
// treats as hard corruption instead of a truncatable crash artifact.
func TestWALRotationSyncsOutgoingSegment(t *testing.T) {
	dir := t.TempDir()
	d := openTestDir(t, dir, nil)
	defer d.Close()
	w, _ := replayAll(t, d, WALOptions{
		Mode:          SyncGroup,
		FsyncEvery:    1 << 30,   // batch threshold never reached
		FsyncInterval: time.Hour, // ticker never fires
		SegmentBytes:  256,
	})
	if err := w.Start(nil); err != nil {
		t.Fatal(err)
	}
	var lastLSN uint64
	for i := 0; i < 40; i++ {
		lsn, err := w.AppendPut([]byte(fmt.Sprintf("key%04d", i)), []byte("0123456789abcdef0123456789abcdef"))
		if err != nil {
			t.Fatal(err)
		}
		lastLSN = lsn
	}
	// Segments flips under the mutex before the rotation's fsync lands, so
	// wait for both: a rotation that never syncs is exactly the bug.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := w.Stats(); st.Segments >= 2 && st.Fsyncs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no synced rotation after 40 appends: %+v", w.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	// Everything in rotated segments is genuinely durable now, so the
	// durable frontier must cover at least the rotated records (the last
	// few may still sit in the active segment unsynced — that is the
	// SyncGroup contract, not a rotation leak).
	if got := w.durable.Load(); got == 0 || got > lastLSN {
		t.Fatalf("durable LSN %d after rotation, want in (0, %d]", got, lastLSN)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALPruneRefusedWithoutCleanClose pins the Prune guard: after a failed
// (or never-finished) replay the segments hold the only copy of un-applied
// records, and a confused caller must not be able to delete them.
func TestWALPruneRefusedWithoutCleanClose(t *testing.T) {
	dir := t.TempDir()
	d := openTestDir(t, dir, nil)
	w, _ := replayAll(t, d, WALOptions{})
	if err := w.Start(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendPut([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen but never replay or start: Prune must refuse.
	d = openTestDir(t, dir, nil)
	defer d.Close()
	w2, err := OpenWAL(d, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Prune(); err == nil {
		t.Fatal("Prune succeeded on a never-replayed WAL")
	}
	if names, _, err := d.list(DirWAL); err != nil || len(names) == 0 {
		t.Fatalf("segments gone after refused prune: %v, err %v", names, err)
	}
	// After a replay that stops at Kill (crash), Prune must still refuse.
	w3, _ := replayAll(t, d, WALOptions{})
	if err := w3.Start(nil); err != nil {
		t.Fatal(err)
	}
	w3.Kill()
	if err := w3.Prune(); err == nil {
		t.Fatal("Prune succeeded after Kill")
	}
	if names, _, err := d.list(DirWAL); err != nil || len(names) == 0 {
		t.Fatalf("segments gone after refused prune: %v, err %v", names, err)
	}
}

// TestWALAppendBatch pins the batch framing contract: contiguous LSNs from
// the returned first, one WaitDurable barrier covering the whole batch,
// mutation order preserved across replay, and caller buffers free for reuse
// the moment AppendBatch returns.
func TestWALAppendBatch(t *testing.T) {
	dir := t.TempDir()
	d := openTestDir(t, dir, nil)
	w, _ := replayAll(t, d, WALOptions{Mode: SyncEvery})
	if err := w.Start(nil); err != nil {
		t.Fatal(err)
	}
	if lsn, err := w.AppendBatch(nil); lsn != 0 || err != nil {
		t.Fatalf("empty batch = %d,%v", lsn, err)
	}
	first0, err := w.AppendPut([]byte("solo"), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("reused-key")
	val := []byte("reused-val")
	var want []walRec
	want = append(want, walRec{OpPut, "solo", "v"})
	var lastFirst uint64
	for b := 0; b < 8; b++ {
		var entries []BatchEntry
		for i := 0; i < 5; i++ {
			copy(key[7:], fmt.Sprintf("%d%d", b, i))
			copy(val[7:], fmt.Sprintf("%d%d", b, i))
			if i == 4 {
				entries = append(entries, BatchEntry{Op: OpDel, Key: append([]byte(nil), key...)})
				want = append(want, walRec{OpDel, string(key), ""})
			} else {
				entries = append(entries, BatchEntry{Op: OpPut, Key: append([]byte(nil), key...), Value: append([]byte(nil), val...)})
				want = append(want, walRec{OpPut, string(key), string(val)})
			}
		}
		// Hand the WAL aliases of the scratch buffers to prove it copies.
		aliased := make([]BatchEntry, len(entries))
		for i, e := range entries {
			copy(key[7:], fmt.Sprintf("%d%d", b, i))
			copy(val[7:], fmt.Sprintf("%d%d", b, i))
			aliased[i] = BatchEntry{Op: e.Op, Key: key, Value: e.Value}
			if e.Op == OpDel {
				aliased[i].Value = nil
			}
			first, err := w.AppendBatch(aliased[i : i+1])
			if err != nil {
				t.Fatal(err)
			}
			if b == 0 && i == 0 && first != first0+1 {
				t.Fatalf("first batch LSN = %d, want %d", first, first0+1)
			}
			lastFirst = first
		}
	}
	if err := w.WaitDurable(lastFirst); err != nil {
		t.Fatal(err)
	}
	// One true multi-entry batch: contiguous LSNs, one durability barrier.
	multi := []BatchEntry{
		{Op: OpPut, Key: []byte("m1"), Value: []byte("x")},
		{Op: OpPut, Key: []byte("m2"), Value: []byte("y")},
		{Op: OpDel, Key: []byte("m1")},
	}
	first, err := w.AppendBatch(multi)
	if err != nil {
		t.Fatal(err)
	}
	if first != lastFirst+1 {
		t.Fatalf("multi-batch first LSN = %d, want %d", first, lastFirst+1)
	}
	if err := w.WaitDurable(first + 2); err != nil {
		t.Fatal(err)
	}
	want = append(want,
		walRec{OpPut, "m1", "x"},
		walRec{OpPut, "m2", "y"},
		walRec{OpDel, "m1", ""})
	if st := w.Stats(); st.Records != int64(len(want)) {
		t.Fatalf("Records = %d, want %d", st.Records, len(want))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-open WITHOUT pruning so the segments replay.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d = openTestDir(t, dir, nil)
	defer d.Close()
	_, got := replayAll(t, d, WALOptions{})
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
