//go:build !unix

package storage

import "os"

// Non-unix fallbacks: full fsync instead of fdatasync, and no advisory
// locking (the LOCK file still exists, it just doesn't exclude).

func fdatasync(f *os.File) error { return f.Sync() }

func flockExclusive(f *os.File) error { return nil }

func funlock(f *os.File) error { return nil }
