package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFaultError(t *testing.T) {
	fi := &FaultInjector{}
	d := openTestDir(t, t.TempDir(), fi)
	defer d.Close()
	f, err := d.create(DirNVM, "victim")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAt([]byte("before"), 0); err != nil {
		t.Fatal(err)
	}
	fi.Arm(1, FaultError)
	if err := f.WriteAt([]byte("doomed"), 6); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed write returned %v, want ErrInjected", err)
	}
	if !fi.Fired() {
		t.Fatal("injector did not record firing")
	}
	// FaultError touches nothing: the file still holds only the first write.
	if err := f.WriteAt([]byte("after"), 6); err != nil {
		t.Fatalf("injector stayed hot after firing: %v", err)
	}
}

func TestFaultShortWrite(t *testing.T) {
	fi := &FaultInjector{}
	dir := t.TempDir()
	d := openTestDir(t, dir, fi)
	defer d.Close()
	f, err := d.create(DirNVM, "victim")
	if err != nil {
		t.Fatal(err)
	}
	fi.Arm(1, FaultShortWrite)
	payload := []byte("0123456789")
	if err := f.WriteAt(payload, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("short write returned %v, want ErrInjected", err)
	}
	got, err := os.ReadFile(filepath.Join(dir, DirNVM, "victim"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[:len(payload)/2]) {
		t.Fatalf("file holds %q after short write, want first half of %q", got, payload)
	}
}

func TestFaultTornWrite(t *testing.T) {
	fi := &FaultInjector{}
	dir := t.TempDir()
	d := openTestDir(t, dir, fi)
	defer d.Close()
	f, err := d.create(DirNVM, "victim")
	if err != nil {
		t.Fatal(err)
	}
	fi.Arm(1, FaultTornWrite)
	payload := []byte("0123456789")
	// The tear is invisible to the writer: success is reported.
	if err := f.WriteAt(payload, 0); err != nil {
		t.Fatalf("torn write reported %v, want success", err)
	}
	got, err := os.ReadFile(filepath.Join(dir, DirNVM, "victim"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[:len(payload)/2]) {
		t.Fatalf("file holds %q after torn write, want first half of %q", got, payload)
	}
	// ...and then the machine dies: every later I/O through the Dir fails.
	if err := f.WriteAt([]byte("x"), 20); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after tear returned %v, want ErrInjected", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync after tear returned %v, want ErrInjected", err)
	}
	fi.Reset()
	if err := f.WriteAt([]byte("revived"), 0); err != nil {
		t.Fatalf("write after Reset: %v", err)
	}
}

func TestFaultInjectorCountsSyncsAndTruncates(t *testing.T) {
	fi := &FaultInjector{}
	d := openTestDir(t, t.TempDir(), fi)
	defer d.Close()
	f, err := d.create(DirNVM, "victim")
	if err != nil {
		t.Fatal(err)
	}
	base := fi.Ops()
	if err := f.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(1); err != nil {
		t.Fatal(err)
	}
	if got := fi.Ops() - base; got != 3 {
		t.Fatalf("injector counted %d I/Os for write+sync+truncate, want 3", got)
	}
}
