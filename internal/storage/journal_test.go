package storage

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := openTestDir(t, dir, nil)
	j, err := OpenJournal(d)
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.LogEdit(0, []string{"a.sst", "b.sst"}, nil))
	must(j.LogEdit(1, []string{"c.sst"}, nil))
	must(j.LogEdit(0, []string{"d.sst"}, []string{"a.sst"}))
	if got := j.Live(0); !reflect.DeepEqual(got, []string{"b.sst", "d.sst"}) {
		t.Fatalf("Live(0) = %v", got)
	}
	must(d.Close())

	d = openTestDir(t, dir, nil)
	defer d.Close()
	j2, err := OpenJournal(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := j2.Live(0); !reflect.DeepEqual(got, []string{"b.sst", "d.sst"}) {
		t.Fatalf("recovered Live(0) = %v", got)
	}
	if got := j2.Live(1); !reflect.DeepEqual(got, []string{"c.sst"}) {
		t.Fatalf("recovered Live(1) = %v", got)
	}
	if all := j2.LiveAll(); len(all) != 3 {
		t.Fatalf("LiveAll = %v", all)
	}
}

// currentJournalPath resolves CURRENT to the live journal file's path.
func currentJournalPath(t *testing.T, dir string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, "CURRENT"))
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, strings.TrimSpace(string(b)))
}

func TestJournalTornEditDropped(t *testing.T) {
	dir := t.TempDir()
	d := openTestDir(t, dir, nil)
	j, err := OpenJournal(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.LogEdit(0, []string{"committed.sst"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// A crash mid-LogEdit leaves a prefix of the edit's frame. The commit it
	// described was never acknowledged, so recovery drops it silently.
	path := currentJournalPath(t, dir)
	pre, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	sizeBefore := pre.Size()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{50, 0, 0, 0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d = openTestDir(t, dir, nil)
	defer d.Close()
	j2, err := OpenJournal(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := j2.Live(0); !reflect.DeepEqual(got, []string{"committed.sst"}) {
		t.Fatalf("Live(0) after torn edit = %v", got)
	}
	if j2.Edits() != 1 {
		t.Fatalf("edits = %d, want 1", j2.Edits())
	}
	// The tear was truncated away on disk, not just skipped in memory.
	st, err := os.Stat(currentJournalPath(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != sizeBefore {
		t.Fatalf("journal is %d bytes after recovery, want %d (tear truncated)", st.Size(), sizeBefore)
	}
}

func TestJournalCorruptEditFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	d := openTestDir(t, dir, nil)
	j, err := OpenJournal(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.LogEdit(0, []string{"one-table-name.sst"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	path := currentJournalPath(t, dir)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, frameHeaderLen+3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d = openTestDir(t, dir, nil)
	defer d.Close()
	if _, err := OpenJournal(d); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupt journal edit opened without a checksum error: %v", err)
	}
}

func TestJournalCurrentPointsAtMissingFile(t *testing.T) {
	dir := t.TempDir()
	d := openTestDir(t, dir, nil)
	j, err := OpenJournal(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.LogEdit(0, []string{"x.sst"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(currentJournalPath(t, dir)); err != nil {
		t.Fatal(err)
	}

	// CURRENT naming a journal that does not exist is unreachable by
	// crashing (CURRENT swings only after the new journal is fsync'd); it
	// means lost data and must not be silently "recovered" as empty.
	d = openTestDir(t, dir, nil)
	defer d.Close()
	if _, err := OpenJournal(d); err == nil || !strings.Contains(err.Error(), "missing manifest journal") {
		t.Fatalf("missing journal opened without error: %v", err)
	}
}

func TestJournalRotation(t *testing.T) {
	dir := t.TempDir()
	d := openTestDir(t, dir, nil)
	j, err := OpenJournal(d)
	if err != nil {
		t.Fatal(err)
	}
	j.rotateBytes = 512 // force rotation quickly
	for i := 0; i < 100; i++ {
		add := []string{nameFor(i)}
		var rm []string
		if i >= 10 {
			rm = []string{nameFor(i - 10)}
		}
		if err := j.LogEdit(i%2, add, rm); err != nil {
			t.Fatal(err)
		}
	}
	wantLive := j.LiveAll()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.Close())

	// Rotation compacted: exactly one MANIFEST file remains and CURRENT
	// points at it, with a sequence well past the first.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var manifests []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "MANIFEST-") {
			manifests = append(manifests, e.Name())
		}
	}
	if len(manifests) != 1 {
		t.Fatalf("manifest files on disk = %v, want exactly one", manifests)
	}
	if manifests[0] == journalName(1) {
		t.Fatal("journal never rotated")
	}

	d = openTestDir(t, dir, nil)
	defer d.Close()
	j2, err := OpenJournal(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := j2.LiveAll(); !reflect.DeepEqual(got, wantLive) {
		t.Fatalf("live set changed across rotation+reopen:\ngot  %v\nwant %v", got, wantLive)
	}
}

func nameFor(i int) string {
	return "table-" + string([]byte{byte('0' + i/100), byte('0' + i/10%10), byte('0' + i%10)}) + ".sst"
}

func TestJournalRotationFailureDoesNotWedge(t *testing.T) {
	dir := t.TempDir()
	fi := &FaultInjector{}
	d := openTestDir(t, dir, fi)
	j, err := OpenJournal(d) // fresh dir: create+sync = I/O #1 (sync)
	if err != nil {
		t.Fatal(err)
	}
	j.rotateBytes = 1 // every edit triggers a rotation attempt

	// LogEdit costs WriteAt (#1) + Sync (#2); the rotation's snapshot
	// WriteAt is #3. Fail it: the rotation must abort cleanly — the edit
	// itself is already durable, so LogEdit must NOT report an error.
	fi.Arm(3, FaultError)
	if err := j.LogEdit(0, []string{"a.sst"}, nil); err != nil {
		t.Fatalf("LogEdit failed on an aborted opportunistic rotation: %v", err)
	}
	if !fi.Fired() {
		t.Fatal("fault never fired; the test is not exercising rotation failure")
	}
	// The half-written next journal must be gone, or the O_EXCL create of
	// the same name wedges every later rotation.
	if _, err := os.Stat(filepath.Join(dir, journalName(2))); !os.IsNotExist(err) {
		t.Fatalf("aborted rotation left %s behind (stat err %v)", journalName(2), err)
	}

	// The next edit retries the rotation and must succeed.
	if err := j.LogEdit(0, []string{"b.sst"}, nil); err != nil {
		t.Fatalf("LogEdit after aborted rotation: %v", err)
	}
	if got := currentJournalPath(t, dir); filepath.Base(got) == journalName(1) {
		t.Fatal("journal never rotated after the injected failure was cleared")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openTestDir(t, dir, nil)
	defer d2.Close()
	j2, err := OpenJournal(d2)
	if err != nil {
		t.Fatal(err)
	}
	if got := j2.Live(0); !reflect.DeepEqual(got, []string{"a.sst", "b.sst"}) {
		t.Fatalf("recovered Live(0) = %v", got)
	}
}

func TestJournalStaleManifestRemovedAtOpen(t *testing.T) {
	dir := t.TempDir()
	d := openTestDir(t, dir, nil)
	j, err := OpenJournal(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.LogEdit(0, []string{"a.sst"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// A crash between a rotation's O_EXCL create and its abort cleanup
	// leaves an unreferenced next-sequence file on disk.
	stale := filepath.Join(dir, journalName(2))
	if err := os.WriteFile(stale, []byte("half-written snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	d = openTestDir(t, dir, nil)
	defer d.Close()
	j2, err := OpenJournal(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale %s survived open (stat err %v)", journalName(2), err)
	}
	// With the stale file gone, the next rotation's create must not collide.
	j2.rotateBytes = 1
	if err := j2.LogEdit(0, []string{"b.sst"}, nil); err != nil {
		t.Fatalf("rotation after stale-manifest cleanup: %v", err)
	}
	if got := filepath.Base(currentJournalPath(t, dir)); got != journalName(2) {
		t.Fatalf("CURRENT = %s, want %s", got, journalName(2))
	}
	if got := j2.Live(0); !reflect.DeepEqual(got, []string{"a.sst", "b.sst"}) {
		t.Fatalf("Live(0) = %v", got)
	}
}
