package storage

import (
	"errors"
	"testing"
	"time"
)

// TestWaitDurableWokenByPoison pins the satellite bugfix: a writer parked
// in WaitDurable when the flusher latches a sticky I/O error must be woken
// with that error immediately — fail() broadcasts to the durability
// waiters. Pre-fix, the poisoned flusher stopped advancing the durable LSN
// without waking anyone, and every in-flight SyncEvery writer hung until
// Close.
func TestWaitDurableWokenByPoison(t *testing.T) {
	dir := t.TempDir()
	fi := &FaultInjector{}
	d := openTestDir(t, dir, fi)
	defer d.Close()
	w, _ := replayAll(t, d, WALOptions{Mode: SyncEvery})
	if err := w.Start(nil); err != nil {
		t.Fatal(err)
	}
	defer w.Kill()

	// Prove the happy path first, so the armed fault below is the only
	// variable.
	lsn, err := w.AppendPut([]byte("k0"), []byte("v0"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}

	// The next WAL I/O — the segment write for the record appended below —
	// fails. The appender is already parked (or about to park) in
	// WaitDurable when the flusher poisons the log on its own goroutine;
	// either way it must observe the error within the deadline, not hang.
	fi.ArmScoped(ScopeWAL, 1, FaultError)
	lsn, err = w.AppendPut([]byte("k1"), []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- w.WaitDurable(lsn) }()
	select {
	case err := <-waitErr:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("WaitDurable after poison = %v, want ErrInjected", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitDurable still parked 5s after the flusher poisoned the log")
	}

	// The poison is sticky: later appends and waits fail fast, and group-
	// mode-style non-waiting callers see the same error through Err().
	if _, err := w.AppendPut([]byte("k2"), []byte("v2")); err == nil {
		if err := w.WaitDurable(lsn + 1); err == nil {
			t.Fatal("poisoned WAL acknowledged a later write")
		}
	}
	if err := w.Err(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Err() on a poisoned WAL = %v, want ErrInjected", err)
	}
}

// TestWaitDurableSyncGroupReportsPoison covers the non-parking modes: in
// SyncGroup, WaitDurable never blocks for durability, but once the flusher
// has latched a sticky error the call must report it instead of letting a
// caller acknowledge a write the log can no longer promise.
func TestWaitDurableSyncGroupReportsPoison(t *testing.T) {
	dir := t.TempDir()
	fi := &FaultInjector{}
	d := openTestDir(t, dir, fi)
	defer d.Close()
	w, _ := replayAll(t, d, WALOptions{Mode: SyncGroup, FsyncEvery: 4, FsyncInterval: time.Millisecond})
	if err := w.Start(nil); err != nil {
		t.Fatal(err)
	}
	defer w.Kill()

	fi.ArmScoped(ScopeWAL, 1, FaultError)
	lsn, err := w.AppendPut([]byte("k"), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := w.WaitDurable(lsn); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("WaitDurable = %v, want ErrInjected", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sticky error never surfaced through SyncGroup WaitDurable")
		}
		time.Sleep(time.Millisecond)
	}
}
