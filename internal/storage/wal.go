package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/prismdb/prismdb/internal/obs"
)

// WAL record opcodes.
const (
	OpPut byte = 1
	OpDel byte = 2
)

// SyncMode controls when WAL appends become durable relative to the
// acknowledgement the client sees.
type SyncMode int

const (
	// SyncEvery acknowledges a write only after its record is fdatasync'd.
	// Concurrent writers that arrive while a sync is in flight are batched
	// into the next one — group commit — so the per-op cost collapses from
	// one fsync each to one fsync per batch.
	SyncEvery SyncMode = iota
	// SyncGroup acknowledges immediately and fdatasyncs in the background
	// every FsyncEvery records or FsyncInterval, whichever comes first. A
	// crash can lose up to that window of acknowledged writes.
	SyncGroup
	// SyncNone never fdatasyncs during operation (Close still flushes).
	// Records reach the OS promptly, so only an OS/power failure — not a
	// process crash — loses acknowledged writes.
	SyncNone
)

// String returns the flag spelling of the mode.
func (m SyncMode) String() string {
	switch m {
	case SyncEvery:
		return "sync"
	case SyncGroup:
		return "group"
	case SyncNone:
		return "nosync"
	}
	return fmt.Sprintf("SyncMode(%d)", int(m))
}

// ParseSyncMode parses the -wal-sync flag spellings.
func ParseSyncMode(s string) (SyncMode, error) {
	switch strings.ToLower(s) {
	case "sync", "every", "always":
		return SyncEvery, nil
	case "group", "batch":
		return SyncGroup, nil
	case "nosync", "none", "off":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("storage: unknown WAL sync mode %q (want sync, group, or nosync)", s)
}

// WALOptions tunes the log. The zero value means SyncEvery with defaults.
type WALOptions struct {
	Mode SyncMode
	// FsyncEvery is the SyncGroup batch size in records (default 64).
	FsyncEvery int
	// FsyncInterval is the SyncGroup maximum delay before a pending batch
	// is forced out (default 2ms).
	FsyncInterval time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 8 MiB). Rotation triggers a checkpoint, which prunes every
	// segment the checkpoint covers.
	SegmentBytes int64

	// StallDeadline, when positive, starts an I/O stall watchdog: the
	// flusher records a heartbeat before every segment write, fdatasync,
	// and checkpoint, and a monitor goroutine poisons the log with
	// ErrIOStalled once an in-flight operation exceeds the deadline — so
	// WaitDurable callers fail fast instead of hanging on a wedged device.
	// Zero (the default) disables the watchdog.
	StallDeadline time.Duration

	// OnIOError, if non-nil, is invoked exactly once with the first sticky
	// I/O error (including a watchdog-declared stall), after every waiter
	// has been woken. It runs on the flusher or watchdog goroutine and must
	// not call back into the WAL.
	OnIOError func(error)

	// Telemetry hooks, all optional (nil disables each — the obs types are
	// nil-receiver-safe, so the flusher records unconditionally).
	//
	// FsyncLatency observes the wall duration of each segment fdatasync.
	FsyncLatency *obs.Histogram
	// BatchRecords observes the records covered by each fsync — the
	// group-commit batch size.
	BatchRecords *obs.Histogram
	// Events receives wal_rotate and checkpoint events.
	Events *obs.EventLog
}

func (o *WALOptions) withDefaults() WALOptions {
	w := *o
	if w.FsyncEvery <= 0 {
		w.FsyncEvery = 64
	}
	if w.FsyncInterval <= 0 {
		w.FsyncInterval = 2 * time.Millisecond
	}
	if w.SegmentBytes <= 0 {
		w.SegmentBytes = 8 << 20
	}
	return w
}

// RecoveryStats describes what Replay found.
type RecoveryStats struct {
	Segments       int   // segment files replayed
	Records        int64 // records re-applied
	TruncatedBytes int64 // torn tail bytes cut from the final segment
}

// WALStats is a point-in-time view of the log's counters.
type WALStats struct {
	Bytes       int64 // record bytes appended (framing included)
	Records     int64 // records appended
	Fsyncs      int64 // fdatasync calls on segment files
	Checkpoints int64 // checkpoint + prune cycles completed
	Stalls      int64 // I/O stalls declared by the watchdog
	Segments    int   // segment files currently on disk
	BatchP50    int64 // median records per fsync (group-commit batch size)
	Recovery    RecoveryStats
}

var errWALClosed = errors.New("storage: wal is closed")

// ErrIOStalled is the sticky error the stall watchdog latches when a
// flusher-side write, fdatasync, or checkpoint exceeds the configured
// deadline. The operation may still complete afterwards, but nothing it
// covers is acknowledged: once latched, the log is poisoned like any other
// I/O failure and the engine degrades to read-only.
var ErrIOStalled = errors.New("storage: I/O stalled")

// WAL is a write-ahead log of put/del records across append-only segment
// files, with a single flusher goroutine providing group commit: appenders
// frame records into an in-memory buffer under a short mutex and the
// flusher turns whatever accumulated into one write and (mode permitting)
// one fdatasync. In SyncEvery mode appenders then block in WaitDurable
// until the fsync covering their LSN lands — the classic group-commit
// barrier.
//
// The engine guarantees that the slab write for an operation is issued
// (reaches the OS page cache) before the operation's WAL append. A
// checkpoint therefore only has to fsync the slab backing files to make
// every record appended so far redundant, at which point all rotated
// segments are pruned.
type WAL struct {
	d    *Dir
	opts WALOptions

	mu         sync.Mutex
	buf        []byte // records framed but not yet handed to the flusher
	spare      []byte // recycled flush buffer
	bufRecs    int
	bufLastLSN uint64
	nextLSN    uint64
	ioErr      error // sticky: first write/sync failure poisons the log
	started    bool  // flusher goroutine launched
	stopped    bool
	dropOnExit bool // Kill: the final drain discards instead of flushing

	seg     *file
	segSeq  uint64
	segSize int64    // bytes written (or buffered for write) to seg
	oldSegs []uint64 // rotated segments awaiting the next checkpoint

	recoveredSegs []uint64 // segments found at open, pruned after Start
	recovery      RecoveryStats
	replayed      bool

	durable    atomic.Uint64 // highest fdatasync-covered LSN
	flushedLSN uint64        // highest LSN written to the OS (flusher only)
	durMu      sync.Mutex
	durCond    *sync.Cond

	// ioOpStart is the watchdog heartbeat: unix-nanos of the in-flight
	// flusher I/O operation (segment write, fdatasync, or checkpoint), or 0
	// when none is in flight.
	ioOpStart atomic.Int64
	stStalls  atomic.Int64

	work chan struct{}
	quit chan struct{}
	done chan struct{}

	checkpoint func() error

	stBytes       int64 // guarded by mu
	stRecords     int64
	stFsyncs      atomic.Int64
	stCheckpoints atomic.Int64
	// batchHist[i] counts fsyncs that covered a batch of 2^(i-1)..2^i-1
	// records, indexed by bits.Len.
	batchHist [24]int64 // guarded by durMu
}

func segName(seq uint64) string { return fmt.Sprintf("%08d.wal", seq) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(name, ".wal"), 10, 64)
	return n, err == nil
}

// OpenWAL finds the existing segments of d's log. The caller must Replay
// (even on a fresh directory) and then Start before appending.
func OpenWAL(d *Dir, opts WALOptions) (*WAL, error) {
	w := &WAL{d: d, opts: opts.withDefaults(), nextLSN: 1}
	w.durCond = sync.NewCond(&w.durMu)
	w.work = make(chan struct{}, 1)
	w.quit = make(chan struct{})
	w.done = make(chan struct{})
	names, _, err := d.list(DirWAL)
	if err != nil {
		return nil, err
	}
	for _, n := range names {
		if seq, ok := parseSegName(n); ok {
			w.recoveredSegs = append(w.recoveredSegs, seq)
		}
	}
	sort.Slice(w.recoveredSegs, func(i, j int) bool { return w.recoveredSegs[i] < w.recoveredSegs[j] })
	return w, nil
}

// Replay feeds every record in the recovered segments, oldest first, to fn.
// A torn final record (a crash mid-append) is truncated away and counted;
// a bad checksum on a complete record anywhere, or an incomplete record in
// a non-final segment, fails loudly. Replay must be called exactly once,
// before Start.
func (w *WAL) Replay(fn func(op byte, key, value []byte) error) (RecoveryStats, error) {
	if w.replayed {
		return RecoveryStats{}, errors.New("storage: wal already replayed")
	}
	w.replayed = true
	for i, seq := range w.recoveredSegs {
		name := segName(seq)
		f, size, err := w.d.openExisting(DirWAL, name)
		if err != nil {
			return w.recovery, err
		}
		data := make([]byte, size)
		if size > 0 {
			if err := f.ReadAt(data, 0); err != nil {
				f.Close()
				return w.recovery, fmt.Errorf("storage: %s: %w", name, err)
			}
		}
		last := i == len(w.recoveredSegs)-1
		end, frames, torn, err := scanFrames(name, data, last, func(payload []byte) error {
			op, key, value, err := decodeRecord(payload)
			if err != nil {
				return fmt.Errorf("storage: %s: %w", name, err)
			}
			return fn(op, key, value)
		})
		if err != nil {
			f.Close()
			return w.recovery, err
		}
		w.recovery.Records += frames
		w.recovery.Segments++
		if torn > 0 {
			w.recovery.TruncatedBytes += torn
			if err := f.Truncate(end); err == nil {
				err = f.Sync()
			}
			if err != nil {
				f.Close()
				return w.recovery, fmt.Errorf("storage: %s: truncating torn tail: %w", name, err)
			}
		}
		f.Close()
	}
	return w.recovery, nil
}

// Start opens a fresh active segment and launches the flusher. checkpoint
// (may be nil) is invoked after each rotation to make the rotated segments
// redundant; only on its success are they pruned. If recovery replayed any
// segments, Start checkpoints immediately so the replayed state is durable
// and the old segments go away.
func (w *WAL) Start(checkpoint func() error) error {
	if !w.replayed {
		return errors.New("storage: wal must be replayed before Start")
	}
	w.checkpoint = checkpoint
	seq := uint64(1)
	if n := len(w.recoveredSegs); n > 0 {
		seq = w.recoveredSegs[n-1] + 1
	}
	seg, err := w.d.create(DirWAL, segName(seq))
	if err != nil {
		return err
	}
	if err := w.d.syncDir(DirWAL); err != nil {
		return err
	}
	w.seg, w.segSeq = seg, seq
	w.oldSegs = append(w.oldSegs, w.recoveredSegs...)
	w.mu.Lock()
	w.started = true
	w.mu.Unlock()
	go w.flusher()
	if w.opts.StallDeadline > 0 {
		go w.watchdog()
	}
	if len(w.oldSegs) > 0 {
		w.checkpointAndPrune()
	}
	return nil
}

// watchdog monitors the flusher heartbeat and declares an I/O stall once an
// in-flight operation exceeds StallDeadline: it latches ErrIOStalled so
// every WaitDurable caller fails fast instead of hanging on a wedged
// device, emits an io_stall event, and exits (the log is poisoned; there is
// nothing further to watch).
func (w *WAL) watchdog() {
	period := w.opts.StallDeadline / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-w.quit:
			return
		case <-t.C:
		}
		start := w.ioOpStart.Load()
		if start == 0 {
			continue
		}
		stalled := time.Since(time.Unix(0, start))
		if stalled < w.opts.StallDeadline {
			continue
		}
		w.stStalls.Add(1)
		w.opts.Events.Emit("io_stall", "stalled_ms", stalled.Milliseconds(),
			"deadline_ms", w.opts.StallDeadline.Milliseconds())
		w.fail(fmt.Errorf("%w: wal I/O in flight for %v (deadline %v)",
			ErrIOStalled, stalled.Round(time.Millisecond), w.opts.StallDeadline))
		return
	}
}

// beginIO and endIO bracket every flusher-side I/O operation with the
// watchdog heartbeat.
func (w *WAL) beginIO() { w.ioOpStart.Store(time.Now().UnixNano()) }
func (w *WAL) endIO()   { w.ioOpStart.Store(0) }

// AppendPut frames a put record. It returns the record's LSN; the record
// is durable only once WaitDurable(lsn) returns (SyncEvery) or the next
// background fsync lands (SyncGroup).
func (w *WAL) AppendPut(key, value []byte) (uint64, error) {
	return w.append(OpPut, key, value)
}

// AppendDel frames a delete record.
func (w *WAL) AppendDel(key []byte) (uint64, error) {
	return w.append(OpDel, key, nil)
}

// BatchEntry is one record of an AppendBatch. Key and Value are copied
// into the WAL's frame buffer before AppendBatch returns, so the caller may
// reuse the slices immediately.
type BatchEntry struct {
	Op         byte
	Key, Value []byte
}

// AppendBatch frames a batch of records under one mutex hold and one
// flusher wakeup, returning the LSN of the first record; entry i has LSN
// first+i. The whole batch lands in a single flush, so in SyncEvery mode
// the batch shares one group-commit fsync — the engine's write batch and
// the WAL's fsync group become the same unit. An empty batch returns (0,
// nil), the "nothing was logged" LSN WaitDurable ignores.
func (w *WAL) AppendBatch(entries []BatchEntry) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return 0, errWALClosed
	}
	if w.ioErr != nil {
		err := w.ioErr
		w.mu.Unlock()
		return 0, err
	}
	first := w.nextLSN
	before := len(w.buf)
	for _, e := range entries {
		w.buf = appendRecord(w.buf, e.Op, e.Key, e.Value)
	}
	n := int64(len(w.buf) - before)
	w.nextLSN += uint64(len(entries))
	w.bufRecs += len(entries)
	w.bufLastLSN = first + uint64(len(entries)) - 1
	w.segSize += n
	w.stBytes += n
	w.stRecords += int64(len(entries))
	w.mu.Unlock()
	select {
	case w.work <- struct{}{}:
	default:
	}
	return first, nil
}

func (w *WAL) append(op byte, key, value []byte) (uint64, error) {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return 0, errWALClosed
	}
	if w.ioErr != nil {
		err := w.ioErr
		w.mu.Unlock()
		return 0, err
	}
	lsn := w.nextLSN
	w.nextLSN++
	before := len(w.buf)
	w.buf = appendRecord(w.buf, op, key, value)
	n := int64(len(w.buf) - before)
	w.bufRecs++
	w.bufLastLSN = lsn
	w.segSize += n
	w.stBytes += n
	w.stRecords++
	w.mu.Unlock()
	select {
	case w.work <- struct{}{}:
	default:
	}
	return lsn, nil
}

// appendRecord frames one record into buf without intermediate allocation.
func appendRecord(buf []byte, op byte, key, value []byte) []byte {
	var kl [binary.MaxVarintLen64]byte
	kn := binary.PutUvarint(kl[:], uint64(len(key)))
	plen := 1 + kn + len(key) + len(value)
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(plen))
	buf = append(buf, hdr[:]...)
	start := len(buf)
	buf = append(buf, op)
	buf = append(buf, kl[:kn]...)
	buf = append(buf, key...)
	buf = append(buf, value...)
	crc := crc32.Checksum(buf[start:], crcTable)
	binary.LittleEndian.PutUint32(buf[start-4:start], crc)
	return buf
}

func decodeRecord(payload []byte) (op byte, key, value []byte, err error) {
	if len(payload) < 1 {
		return 0, nil, nil, errors.New("empty record")
	}
	op = payload[0]
	if op != OpPut && op != OpDel {
		return 0, nil, nil, fmt.Errorf("unknown record op %d", op)
	}
	klen, n := binary.Uvarint(payload[1:])
	if n <= 0 || uint64(len(payload)-1-n) < klen {
		return 0, nil, nil, errors.New("record key length out of range")
	}
	key = payload[1+n : 1+n+int(klen)]
	value = payload[1+n+int(klen):]
	return op, key, value, nil
}

// WaitDurable blocks until the record at lsn is covered by an fdatasync.
// In SyncGroup and SyncNone modes it only reports a pending sticky error:
// acknowledgement does not wait for durability there. Nil receivers and
// zero LSNs (no record was logged) return immediately, so callers can be
// oblivious to whether a WAL is attached at all.
func (w *WAL) WaitDurable(lsn uint64) error {
	if w == nil || lsn == 0 {
		return nil
	}
	if w.opts.Mode != SyncEvery {
		w.mu.Lock()
		err := w.ioErr
		w.mu.Unlock()
		return err
	}
	if w.durable.Load() >= lsn {
		return nil
	}
	w.durMu.Lock()
	defer w.durMu.Unlock()
	for w.durable.Load() < lsn {
		w.mu.Lock()
		err, stopped := w.ioErr, w.stopped
		w.mu.Unlock()
		if err != nil {
			return err
		}
		if stopped {
			return errWALClosed
		}
		w.durCond.Wait()
	}
	return nil
}

// flusher is the single goroutine that moves buffered records to the OS
// and schedules fdatasyncs.
func (w *WAL) flusher() {
	defer close(w.done)
	var tickC <-chan time.Time
	if w.opts.Mode == SyncGroup {
		t := time.NewTicker(w.opts.FsyncInterval)
		defer t.Stop()
		tickC = t.C
	}
	var groupPending int // records written but not yet fsynced (SyncGroup)
	for {
		force := false
		select {
		case <-w.quit:
			// Final drain: flush whatever is buffered and always fsync —
			// Close's contract — unless Kill asked for a crash.
			w.mu.Lock()
			drop := w.dropOnExit
			w.mu.Unlock()
			if !drop {
				w.flushOnce(true, &groupPending)
			}
			return
		case <-w.work:
		case <-tickC:
			force = true
		}
		w.flushOnce(force, &groupPending)
		w.maybeRotate(&groupPending)
	}
}

// flushOnce writes the buffered records and applies the mode's fsync
// policy. force requests an fsync even below the group batch threshold.
func (w *WAL) flushOnce(force bool, groupPending *int) {
	w.mu.Lock()
	if w.ioErr != nil {
		w.mu.Unlock()
		// Broadcast under durMu (wakeWaiters), not bare: a waiter that has
		// checked its condition but not yet parked must not miss the wake.
		w.wakeWaiters()
		return
	}
	buf, recs, last := w.buf, w.bufRecs, w.bufLastLSN
	w.buf = w.spare[:0]
	w.spare = nil
	w.bufRecs = 0
	seg := w.seg
	off := w.segSize - int64(len(buf)) // segSize includes the buffered bytes
	w.mu.Unlock()

	if len(buf) > 0 {
		w.beginIO()
		err := seg.WriteAt(buf, off)
		w.endIO()
		if err != nil {
			w.fail(err)
			return
		}
		w.flushedLSN = last
	}
	w.mu.Lock()
	w.spare = buf[:0]
	w.mu.Unlock()

	switch w.opts.Mode {
	case SyncEvery:
		if recs > 0 || force {
			if w.fsyncSeg(seg, recs) {
				w.advanceDurable(w.flushedLSN)
			}
		}
	case SyncGroup:
		*groupPending += recs
		if *groupPending >= w.opts.FsyncEvery || (force && *groupPending > 0) {
			if w.fsyncSeg(seg, *groupPending) {
				w.advanceDurable(w.flushedLSN)
				*groupPending = 0
			}
		}
	case SyncNone:
		if force { // only the final drain forces in nosync mode
			if w.fsyncSeg(seg, recs) {
				w.advanceDurable(w.flushedLSN)
			}
		} else {
			w.advanceDurable(w.flushedLSN)
		}
	}
}

// fsyncSeg fdatasyncs seg and records a group-commit batch of n records.
func (w *WAL) fsyncSeg(seg *file, n int) bool {
	t0 := time.Now()
	w.beginIO()
	err := seg.Sync()
	w.endIO()
	if err != nil {
		w.fail(err)
		return false
	}
	w.opts.FsyncLatency.Record(time.Since(t0))
	w.stFsyncs.Add(1)
	if n > 0 {
		w.opts.BatchRecords.Observe(int64(n))
	}
	if n > 0 {
		w.durMu.Lock()
		b := bits.Len64(uint64(n))
		if b >= len(w.batchHist) {
			b = len(w.batchHist) - 1
		}
		w.batchHist[b]++
		w.durMu.Unlock()
	}
	return true
}

func (w *WAL) advanceDurable(lsn uint64) {
	if lsn == 0 || w.durable.Load() >= lsn {
		return
	}
	// Never advance a poisoned log: if the watchdog latched ErrIOStalled
	// while an fsync was wedged, the waiters it covers were already failed —
	// an eventual "success" of that fsync must not retroactively
	// acknowledge anything. (The narrow race where the latch lands after
	// this check is benign: the I/O did complete, so the records ARE
	// durable and acknowledging them is correct.)
	w.mu.Lock()
	poisoned := w.ioErr != nil
	w.mu.Unlock()
	if poisoned {
		w.wakeWaiters()
		return
	}
	w.durable.Store(lsn)
	w.wakeWaiters()
}

// wakeWaiters broadcasts to WaitDurable callers. Taking durMu around the
// broadcast closes the window where a waiter has checked its condition but
// not yet parked: it either sees the new state or is inside Wait.
func (w *WAL) wakeWaiters() {
	w.durMu.Lock()
	w.durCond.Broadcast()
	w.durMu.Unlock()
}

// fail latches the first I/O error, wakes every waiter, and — on the
// latching call only — notifies the OnIOError hook so the engine can
// transition to read-only immediately rather than on the next append.
func (w *WAL) fail(err error) {
	w.mu.Lock()
	latched := w.ioErr == nil
	if latched {
		w.ioErr = err
	}
	w.mu.Unlock()
	w.wakeWaiters()
	if latched && w.opts.OnIOError != nil {
		w.opts.OnIOError(err)
	}
}

// maybeRotate swaps in a fresh segment once the active one is full, then
// checkpoints and prunes.
func (w *WAL) maybeRotate(groupPending *int) {
	w.mu.Lock()
	if w.segSize < w.opts.SegmentBytes || w.bufRecs > 0 || w.ioErr != nil {
		// Rotate only between flushes so a flush buffer never spans two
		// segments.
		w.mu.Unlock()
		return
	}
	prevSeq, prev := w.segSeq, w.seg
	seg, err := w.d.create(DirWAL, segName(prevSeq+1))
	if err != nil {
		w.mu.Unlock()
		w.fail(err)
		return
	}
	w.seg = seg
	w.segSeq = prevSeq + 1
	w.segSize = 0
	w.oldSegs = append(w.oldSegs, prevSeq)
	w.mu.Unlock()
	// The outgoing segment must be made durable before the flusher abandons
	// it: in group/nosync modes it can still hold written-but-unsynced
	// records, and every later fsync covers only the new active file — so
	// without this sync those LSNs would be reported durable while still
	// volatile, and a power cut could leave a torn tail in a NON-final
	// segment, which recovery treats as hard corruption rather than a
	// truncatable crash artifact. (In SyncEvery mode everything written is
	// already synced and this fdatasync is a cheap no-op.)
	if !w.fsyncSeg(prev, *groupPending) {
		prev.Close()
		return
	}
	w.advanceDurable(w.flushedLSN)
	*groupPending = 0
	if err := w.d.syncDir(DirWAL); err != nil {
		prev.Close()
		w.fail(err)
		return
	}
	prev.Close()
	w.opts.Events.Emit("wal_rotate", "segment", prevSeq, "next", prevSeq+1)
	w.checkpointAndPrune()
}

// checkpointAndPrune makes everything in the rotated segments redundant
// (by fsyncing the slab backing files via the checkpoint callback) and
// then deletes them. On checkpoint failure the segments are retained and
// the next rotation retries.
func (w *WAL) checkpointAndPrune() {
	if w.checkpoint == nil {
		return
	}
	t0 := time.Now()
	w.beginIO()
	err := w.checkpoint()
	w.endIO()
	if err != nil {
		w.opts.Events.Emit("checkpoint", "ok", false, "err", err)
		return
	}
	w.mu.Lock()
	segs := w.oldSegs
	w.oldSegs = nil
	w.mu.Unlock()
	for _, seq := range segs {
		w.d.remove(DirWAL, segName(seq))
	}
	if len(segs) > 0 {
		w.d.syncDir(DirWAL)
	}
	w.stCheckpoints.Add(1)
	w.opts.Events.Emit("checkpoint", "ok", true, "pruned_segments", len(segs), "took_ms", time.Since(t0))
}

// Close flushes buffered records, fdatasyncs the active segment (in every
// mode — a clean shutdown leaves nothing volatile), and stops the flusher.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.stopped || !w.started {
		w.stopped = true
		started := w.started
		w.mu.Unlock()
		if started {
			<-w.done
		}
		return nil
	}
	w.stopped = true
	w.mu.Unlock()
	close(w.quit)
	<-w.done
	w.wakeWaiters()
	w.mu.Lock()
	err := w.ioErr
	w.mu.Unlock()
	return err
}

// Prune removes every segment file on disk. Valid only after Close has
// returned cleanly and the caller has checkpointed (fsynced the slab
// files), which makes every record redundant: a clean shutdown leaves an
// empty WAL directory, so the next open replays nothing. Prune refuses to
// run in any other state — in particular after a failed or partial replay,
// when the segments still hold the only copy of un-applied records — so a
// confused caller cannot turn a recoverable log into silent data loss.
func (w *WAL) Prune() error {
	w.mu.Lock()
	clean := w.replayed && w.started && w.stopped && !w.dropOnExit && w.ioErr == nil
	w.mu.Unlock()
	if !clean {
		return errors.New("storage: prune refused: wal was not replayed, started, and cleanly closed")
	}
	names, _, err := w.d.list(DirWAL)
	if err != nil {
		return err
	}
	removed := false
	for _, n := range names {
		if _, ok := parseSegName(n); !ok {
			continue
		}
		if err := w.d.remove(DirWAL, n); err != nil {
			return err
		}
		removed = true
	}
	if removed {
		return w.d.syncDir(DirWAL)
	}
	return nil
}

// Kill stops the flusher without flushing or syncing — the in-process
// stand-in for kill -9. Buffered (unacknowledged) records are dropped;
// records already written sit in the OS page cache exactly as they would
// after a real crash.
func (w *WAL) Kill() {
	w.mu.Lock()
	if w.stopped || !w.started {
		w.stopped = true
		started := w.started
		w.mu.Unlock()
		if started {
			<-w.done
		}
		return
	}
	w.stopped = true
	w.dropOnExit = true
	w.buf = nil
	w.bufRecs = 0
	w.mu.Unlock()
	close(w.quit)
	<-w.done
	w.wakeWaiters()
}

// Err reports the sticky I/O error, if any.
func (w *WAL) Err() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ioErr
}

// Stats snapshots the log's counters.
func (w *WAL) Stats() WALStats {
	if w == nil {
		return WALStats{}
	}
	w.mu.Lock()
	s := WALStats{
		Bytes:    w.stBytes,
		Records:  w.stRecords,
		Segments: len(w.oldSegs),
		Recovery: w.recovery,
	}
	if w.seg != nil {
		s.Segments++
	}
	w.mu.Unlock()
	s.Fsyncs = w.stFsyncs.Load()
	s.Checkpoints = w.stCheckpoints.Load()
	s.Stalls = w.stStalls.Load()
	w.durMu.Lock()
	var total, cum int64
	for _, c := range w.batchHist {
		total += c
	}
	for i, c := range w.batchHist {
		cum += c
		if total > 0 && cum*2 >= total {
			if i > 0 {
				s.BatchP50 = 1 << (i - 1)
			}
			break
		}
	}
	w.durMu.Unlock()
	return s
}
