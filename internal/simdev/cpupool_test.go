package simdev

import (
	"testing"
	"time"
)

func TestCPUPoolSerializesWhenSaturated(t *testing.T) {
	p := NewCPUPool(2)
	// Three concurrent 10µs charges at t=0 on 2 cores: the third queues.
	d1 := p.Occupy(0, 10*time.Microsecond)
	d2 := p.Occupy(0, 10*time.Microsecond)
	d3 := p.Occupy(0, 10*time.Microsecond)
	if d1 != 10000 || d2 != 10000 {
		t.Fatalf("first two charges should run in parallel: %d, %d", d1, d2)
	}
	if d3 != 20000 {
		t.Fatalf("third charge should queue: %d, want 20000", d3)
	}
	if p.BusyTime() != 30*time.Microsecond {
		t.Fatalf("busy = %v", p.BusyTime())
	}
}

func TestCPUPoolBackgroundSelfClocked(t *testing.T) {
	p := NewCPUPool(1)
	// Saturate the foreground core far into the future.
	p.Occupy(0, time.Second)
	// A background charge must not queue behind it: compactions model a
	// dedicated thread that burns its own duration.
	done := p.OccupyBG(0, 5*time.Microsecond)
	if done != 5000 {
		t.Fatalf("background charge queued: done=%d, want 5000", done)
	}
}

func TestCPUPoolChargeRoutesByClockPriority(t *testing.T) {
	p := NewCPUPool(1)
	fg := NewClock()
	bg := NewBGClock()
	p.Charge(fg, 10*time.Microsecond)
	p.Charge(bg, 10*time.Microsecond) // must not wait behind fg's booking
	if bg.Now() != 10000 {
		t.Fatalf("bg clock = %d, want 10000", bg.Now())
	}
	// Second fg charge queues behind the first.
	fg2 := NewClock()
	p.Charge(fg2, 10*time.Microsecond)
	if fg2.Now() != 20000 {
		t.Fatalf("fg2 clock = %d, want 20000 (queued)", fg2.Now())
	}
}

func TestCPUPoolNilCharge(t *testing.T) {
	var p *CPUPool
	clk := NewClock()
	p.Charge(clk, 7*time.Microsecond) // nil pool degrades to plain advance
	if clk.Now() != 7000 {
		t.Fatalf("nil pool charge: %d", clk.Now())
	}
}

func TestCPUPoolZeroAndNegative(t *testing.T) {
	p := NewCPUPool(0) // clamped to 1 core
	if got := p.Occupy(100, 0); got != 100 {
		t.Fatalf("zero charge moved time: %d", got)
	}
	if got := p.Occupy(100, -time.Second); got != 100 {
		t.Fatalf("negative charge moved time: %d", got)
	}
}

func TestBGDeviceLanesIsolatedFromForeground(t *testing.T) {
	d := New(Params{Name: "x", ReadLatency: 100 * time.Microsecond, Channels: 1, Capacity: 1 << 20})
	// Background job books its lane far ahead.
	d.AccessBG(0, OpRead, 4096)
	d.AccessBG(0, OpRead, 4096)
	// Foreground access at t=0 must not queue behind background lanes.
	done := d.Access(0, OpRead, 4096)
	if done > int64(150*time.Microsecond) {
		t.Fatalf("foreground queued behind background: %d", done)
	}
	// A background clock routed through AccessClk queues on the bg lane
	// (already busy until 200µs from the two bookings above).
	bg := NewBGClock()
	d.AccessClk(bg, OpRead, 4096)
	if bg.Now() <= int64(200*time.Microsecond) {
		t.Fatalf("bg access should queue on bg lanes: %d", bg.Now())
	}
}
