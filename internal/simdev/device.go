package simdev

import (
	"fmt"
	"sync"
	"time"
)

// PageSize is the I/O granularity of the simulated devices. The paper's
// PrismDB relies on the OS page cache reading and writing NVM at 4 KB
// granularity, and Optane drives write 4 KB pages atomically.
const PageSize = 4096

// Params describes a simulated NVMe device. The default parameter sets
// mirror Table 1 of the paper plus the public data sheets it cites.
type Params struct {
	Name string

	// ReadLatency and WriteLatency are the fixed per-request costs of a
	// 4 KB random access (device time, excluding queueing).
	ReadLatency  time.Duration
	WriteLatency time.Duration

	// ReadBandwidth and WriteBandwidth are sequential throughputs in
	// bytes/second; requests larger than one page pay size/bandwidth on
	// top of the fixed latency.
	ReadBandwidth  int64
	WriteBandwidth int64

	// Channels is the device's internal parallelism: how many requests
	// can be in service simultaneously before queueing begins.
	Channels int

	// Capacity is the usable size in bytes.
	Capacity int64

	// DWPD (drive writes per day) is the endurance rating used for the
	// lifetime model (Fig 12), quoted over WarrantyYears.
	DWPD          float64
	WarrantyYears float64

	// CostPerGB in dollars, for the cost model (Table 2, Fig 9).
	CostPerGB float64
}

// Device characteristics from Table 1 of the paper and the devices used in
// its evaluation (Intel Optane SSD P5800X, Intel 760p TLC, Intel 660p QLC).

// NVMParams returns parameters modeling the Intel Optane SSD P5800X.
func NVMParams(capacity int64) Params {
	return Params{
		Name:           "nvm",
		ReadLatency:    6 * time.Microsecond,
		WriteLatency:   7 * time.Microsecond,
		ReadBandwidth:  6_400 << 20, // ~6.4 GB/s
		WriteBandwidth: 5_500 << 20,
		Channels:       16,
		Capacity:       capacity,
		DWPD:           200,
		WarrantyYears:  5,
		CostPerGB:      2.5,
	}
}

// QLCParams returns parameters modeling the Intel 660p (QLC NAND).
func QLCParams(capacity int64) Params {
	return Params{
		Name:           "qlc",
		ReadLatency:    391 * time.Microsecond,
		WriteLatency:   30 * time.Microsecond, // SLC write cache absorbs bursts
		ReadBandwidth:  1_800 << 20,
		WriteBandwidth: 400 << 20, // sustained post-cache QLC program rate
		Channels:       32,        // NVMe queue parallelism: ~80K read IOPS
		Capacity:       capacity,
		DWPD:           0.1,
		WarrantyYears:  5,
		CostPerGB:      0.1,
	}
}

// TLCParams returns parameters modeling the Intel 760p (TLC NAND), the
// "standard datacenter flash" single-tier baseline in Fig 9.
func TLCParams(capacity int64) Params {
	return Params{
		Name:           "tlc",
		ReadLatency:    120 * time.Microsecond,
		WriteLatency:   30 * time.Microsecond,
		ReadBandwidth:  3_000 << 20,
		WriteBandwidth: 800 << 20,
		Channels:       32,
		Capacity:       capacity,
		DWPD:           1,
		WarrantyYears:  5,
		CostPerGB:      0.31,
	}
}

// OpKind distinguishes reads from writes for accounting.
type OpKind int

const (
	// OpRead is a device read.
	OpRead OpKind = iota
	// OpWrite is a device write.
	OpWrite
)

// Stats aggregates device activity since creation (or the last Reset).
type Stats struct {
	ReadOps    int64
	WriteOps   int64
	ReadBytes  int64
	WriteBytes int64
	// BusyTime is total channel-occupancy time, for utilisation metrics.
	BusyTime time.Duration
	// QueueTime is total time requests spent waiting for a free channel.
	QueueTime time.Duration
}

// Device is a simulated NVMe device: a queueing model plus an in-memory
// backing store of named files. All methods are safe for concurrent use.
type Device struct {
	params Params

	mu sync.Mutex
	// Foreground and background I/O are scheduled on separate planes of
	// equal width. The split exists to keep virtual-time causality: a
	// background job that runs ahead in virtual time must not reserve
	// the lanes a foreground request issued "earlier" will need (real
	// devices prioritize foreground I/O over compaction traffic).
	channels   laneSet
	bgChannels laneSet
	stats      Stats
	wearB      int64 // lifetime bytes written (never reset)
	files      map[string]*File
	backing    Backing // nil = in-memory extents (the default)
	used       int64   // bytes allocated across files
	seq        int64   // for generated file names
}

// New creates a device with the given parameters.
func New(p Params) *Device {
	if p.Channels <= 0 {
		p.Channels = 1
	}
	return &Device{
		params:     p,
		channels:   newLaneSet(p.Channels),
		bgChannels: newLaneSet(p.Channels),
		files:      make(map[string]*File),
	}
}

// maxLaneGaps bounds the idle intervals each lane remembers for
// backfilling. A few slots recover most of the capacity a bursty arrival
// pattern fragments; the arrays stay fixed-size so scheduling never
// allocates.
const maxLaneGaps = 8

// gap is one remembered idle interval [s, e) behind a lane's frontier.
type gap struct{ s, e int64 }

// lane is one service channel of a device or CPU pool: the time it next
// falls idle, plus recent idle gaps left behind its reservations. Gaps
// enable backfilling when requests arrive with out-of-order logical
// timestamps: a request arriving "in the past" relative to the lane's
// frontier may occupy idle time the frontier reservation skipped over,
// instead of queueing behind work that is logically later. Two arrival
// patterns produce such timestamps — concurrent partition workers (the
// parallel bench driver), and background compaction jobs, whose clocks
// start at their own partition's time even under the serial driver.
// Serial FOREGROUND arrivals have nondecreasing timestamps, for which
// gaps are provably never feasible (a gap ends at the arrival time of the
// request that created it), so lockstep foreground schedules are
// unchanged; background-lane schedules gain idle-time utilization they
// previously lost to false queueing, which shifts compaction-heavy
// simulated results slightly versus the pre-backfill model.
type lane struct {
	freeAt int64
	gaps   [maxLaneGaps]gap
}

// laneSet is a set of lanes plus an upper bound on any live gap's end, so
// the common case — a request arriving after every remembered gap closed,
// which is every request of a serial lockstep driver — skips the backfill
// scan with one comparison.
type laneSet struct {
	lanes   []lane
	maxGapE int64
}

func newLaneSet(n int) laneSet { return laneSet{lanes: make([]lane, n)} }

// schedule places a request of duration svc arriving at logical time now
// on the lane set and returns its start time.
func schedule(ls *laneSet, now, svc int64) (start int64) {
	lanes := ls.lanes
	// Backfill pass: the earliest-starting gap that fits the request.
	// Skipped entirely when every remembered gap closed before now — the
	// invariant of serial lockstep arrivals.
	gl, gi := -1, -1
	var giStart int64
	if now < ls.maxGapE {
		for i := range lanes {
			for j := range lanes[i].gaps {
				g := lanes[i].gaps[j]
				if g.e <= g.s {
					continue
				}
				s := now
				if g.s > s {
					s = g.s
				}
				if s+svc <= g.e && (gl < 0 || s < giStart) {
					gl, gi, giStart = i, j, s
				}
			}
		}
	}
	// Frontier pass: the lane that frees up earliest.
	fi := 0
	for i := 1; i < len(lanes); i++ {
		if lanes[i].freeAt < lanes[fi].freeAt {
			fi = i
		}
	}
	fStart := now
	if lanes[fi].freeAt > fStart {
		fStart = lanes[fi].freeAt
	}
	if gl >= 0 && giStart <= fStart {
		// Consume the gap's front; keep the tail for later arrivals
		// (timestamps are roughly increasing within the driver's window).
		lanes[gl].gaps[gi].s = giStart + svc
		return giStart
	}
	l := &lanes[fi]
	if fStart > l.freeAt {
		// Arrived at an idle lane: remember the skipped idle interval in
		// the slot holding the smallest gap, if this one is larger.
		small := 0
		for j := 1; j < maxLaneGaps; j++ {
			if l.gaps[j].e-l.gaps[j].s < l.gaps[small].e-l.gaps[small].s {
				small = j
			}
		}
		if fStart-l.freeAt > l.gaps[small].e-l.gaps[small].s {
			l.gaps[small] = gap{l.freeAt, fStart}
			if fStart > ls.maxGapE {
				ls.maxGapE = fStart
			}
		}
	}
	l.freeAt = fStart + svc
	return fStart
}

// Params returns the device's configuration.
func (d *Device) Params() Params { return d.params }

// Stats returns a snapshot of accumulated statistics.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the running statistics (wear accounting is preserved, as
// it models physical cell wear). Harnesses call this between the warm-up and
// measurement phases.
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// WearBytes returns lifetime bytes written to the device, for the endurance
// model. Unlike Stats, it survives ResetStats.
func (d *Device) WearBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.wearB
}

// Used returns the bytes currently allocated on the device.
func (d *Device) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Free returns the unallocated capacity in bytes.
func (d *Device) Free() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.params.Capacity - d.used
}

// serviceTime computes how long a request of n bytes occupies a channel.
func (d *Device) serviceTime(kind OpKind, n int64) time.Duration {
	if n < PageSize {
		n = PageSize
	}
	var lat time.Duration
	var bw int64
	switch kind {
	case OpRead:
		lat, bw = d.params.ReadLatency, d.params.ReadBandwidth
	default:
		lat, bw = d.params.WriteLatency, d.params.WriteBandwidth
	}
	if bw <= 0 {
		return lat
	}
	return lat + time.Duration(n*int64(time.Second)/bw)
}

// Access schedules a request of n bytes issued at logical time now and
// returns its completion time. Queueing across the device's channels is the
// only cross-worker interaction, which keeps the model composable: any
// number of partition workers and background compaction jobs can share a
// device.
func (d *Device) Access(now int64, kind OpKind, n int64) (completion int64) {
	return d.access(now, kind, n, false)
}

// AccessBG schedules background-priority I/O on the reserved lanes.
func (d *Device) AccessBG(now int64, kind OpKind, n int64) (completion int64) {
	return d.access(now, kind, n, true)
}

func (d *Device) access(now int64, kind OpKind, n int64, bg bool) (completion int64) {
	svc := int64(d.serviceTime(kind, n))
	d.mu.Lock()
	lanes := &d.channels
	if bg {
		lanes = &d.bgChannels
	}
	start := schedule(lanes, now, svc)
	completion = start + svc
	d.stats.BusyTime += time.Duration(svc)
	d.stats.QueueTime += time.Duration(start - now)
	if kind == OpRead {
		d.stats.ReadOps++
		d.stats.ReadBytes += n
	} else {
		d.stats.WriteOps++
		d.stats.WriteBytes += n
		d.wearB += n
	}
	d.mu.Unlock()
	return completion
}

// AccessClk issues a request and advances the worker's clock to completion,
// returning the request latency.
func (d *Device) AccessClk(clk *Clock, kind OpKind, n int64) time.Duration {
	start := clk.Now()
	done := d.access(start, kind, n, clk.Background())
	clk.AdvanceTo(done)
	return time.Duration(done - start)
}

// AccessAsync issues a request at time now without blocking the caller's
// clock: it occupies channel time (delaying later requests) and returns the
// completion time. Background compaction jobs use this to overlap their I/O
// with foreground work.
func (d *Device) AccessAsync(now int64, kind OpKind, n int64) int64 {
	return d.Access(now, kind, n)
}

// CPUPool models a fixed set of CPU cores as occupancy channels: work
// charged through Occupy queues when all cores are busy, reproducing the
// paper's 10-core cgroup bottleneck (§7) where foreground requests and
// background compactions contend for the same cores.
type CPUPool struct {
	mu    sync.Mutex
	cores laneSet // foreground cores
	busy  time.Duration
}

// NewCPUPool creates a pool with the given core count. Foreground requests
// contend for the full pool; background (compaction) CPU advances its own
// job clock without queueing here — each compaction models a dedicated
// thread whose CPU time extends the job's duration, while cross-job core
// oversubscription is second-order for these I/O-dominated jobs.
func NewCPUPool(cores int) *CPUPool {
	if cores < 1 {
		cores = 1
	}
	return &CPUPool{cores: newLaneSet(cores)}
}

// Occupy schedules dur of CPU work starting no earlier than now and returns
// its completion time.
func (c *CPUPool) Occupy(now int64, dur time.Duration) int64 {
	return c.occupy(now, dur, false)
}

// OccupyBG schedules background CPU work on the background cores.
func (c *CPUPool) OccupyBG(now int64, dur time.Duration) int64 {
	return c.occupy(now, dur, true)
}

func (c *CPUPool) occupy(now int64, dur time.Duration, bg bool) int64 {
	if dur <= 0 {
		return now
	}
	if bg {
		// Background jobs burn their own thread's time; see NewCPUPool.
		c.mu.Lock()
		c.busy += dur
		c.mu.Unlock()
		return now + int64(dur)
	}
	c.mu.Lock()
	start := schedule(&c.cores, now, int64(dur))
	done := start + int64(dur)
	c.busy += dur
	c.mu.Unlock()
	return done
}

// Charge occupies CPU time (on the lane class matching the clock's
// priority) and advances the clock to completion.
func (c *CPUPool) Charge(clk *Clock, dur time.Duration) {
	if c == nil {
		clk.Advance(dur)
		return
	}
	clk.AdvanceTo(c.occupy(clk.Now(), dur, clk.Background()))
}

// BusyTime returns total CPU time consumed.
func (c *CPUPool) BusyTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.busy
}

// TotalWriteBudget returns the device's rated lifetime write budget in
// bytes (TBW): capacity × DWPD × 365 × warranty years.
func (d *Device) TotalWriteBudget() float64 {
	p := d.params
	return float64(p.Capacity) * p.DWPD * 365 * p.WarrantyYears
}

// LifetimeYears estimates how long the device lasts if the application
// writes bytesPerDay to it, capped at none (callers may cap at warranty).
func (d *Device) LifetimeYears(bytesPerDay float64) float64 {
	if bytesPerDay <= 0 {
		return d.params.WarrantyYears
	}
	return d.TotalWriteBudget() / bytesPerDay / 365
}

// Cost returns the device's capital cost in dollars.
func (d *Device) Cost() float64 {
	return float64(d.params.Capacity) / (1 << 30) * d.params.CostPerGB
}

// allocate reserves n bytes of capacity, failing when the device is full.
func (d *Device) allocate(n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.used+n > d.params.Capacity {
		return fmt.Errorf("simdev: device %s full: used %d + %d > capacity %d",
			d.params.Name, d.used, n, d.params.Capacity)
	}
	d.used += n
	return nil
}

// release returns n bytes of capacity.
func (d *Device) release(n int64) {
	d.mu.Lock()
	d.used -= n
	if d.used < 0 {
		d.used = 0
	}
	d.mu.Unlock()
}
