package simdev

import (
	"container/list"
	"sync"
)

// PageCache models the OS page cache: an LRU of (file, page) entries.
// PrismDB relies on the kernel page cache instead of a userspace DRAM
// object cache (§4.1), so cache residency determines whether a slab access
// costs a device I/O. The LSM baselines use the same structure for their
// block caches.
//
// Only cache residency is tracked, not page contents: the backing store in
// File always holds current data, so a hit simply skips the device charge.
type PageCache struct {
	mu       sync.Mutex
	capacity int // pages
	lru      *list.List
	entries  map[pageKey]*list.Element
	hits     int64
	misses   int64
}

type pageKey struct {
	file string
	page int64
}

// NewPageCache creates a cache holding capacityBytes worth of pages.
// A non-positive capacity yields a cache that always misses.
func NewPageCache(capacityBytes int64) *PageCache {
	pages := int(capacityBytes / PageSize)
	return &PageCache{
		capacity: pages,
		lru:      list.New(),
		entries:  make(map[pageKey]*list.Element),
	}
}

// Touch records an access to the page range [off, off+n) of file. It
// returns the number of pages that missed (must be read from the device).
// All touched pages become resident, evicting LRU pages as needed.
func (c *PageCache) Touch(file string, off, n int64) (missPages int64) {
	if n <= 0 {
		return 0
	}
	first := off / PageSize
	last := (off + n - 1) / PageSize
	c.mu.Lock()
	defer c.mu.Unlock()
	for p := first; p <= last; p++ {
		k := pageKey{file, p}
		if el, ok := c.entries[k]; ok {
			c.lru.MoveToFront(el)
			c.hits++
			continue
		}
		c.misses++
		missPages++
		if c.capacity <= 0 {
			continue
		}
		for c.lru.Len() >= c.capacity {
			back := c.lru.Back()
			c.lru.Remove(back)
			delete(c.entries, back.Value.(pageKey))
		}
		c.entries[k] = c.lru.PushFront(k)
	}
	return missPages
}

// Contains reports whether a single page is resident, without touching it.
func (c *PageCache) Contains(file string, off int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[pageKey{file, off / PageSize}]
	return ok
}

// InvalidateFile drops every resident page of the named file, as the kernel
// does when a file is deleted. Compactions call this when removing SSTs so
// dead files don't keep polluting the cache.
func (c *PageCache) InvalidateFile(file string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if el.Value.(pageKey).file == file {
			c.lru.Remove(el)
			delete(c.entries, el.Value.(pageKey))
		}
		el = next
	}
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *PageCache) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Stats returns raw hit and miss counts.
func (c *PageCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of resident pages.
func (c *PageCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
