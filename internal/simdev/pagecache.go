package simdev

import (
	"sync"
)

// PageCache models the OS page cache: an LRU of (file, page) entries.
// PrismDB relies on the kernel page cache instead of a userspace DRAM
// object cache (§4.1), so cache residency determines whether a slab access
// costs a device I/O. The LSM baselines use the same structure for their
// block caches.
//
// Only cache residency is tracked, not page contents: the backing store in
// File always holds current data, so a hit simply skips the device charge.
//
// The LRU is an intrusive doubly-linked list over a slab of nodes indexed
// by int32, so steady-state hits and evict+insert cycles allocate nothing —
// this structure sits on the engine's per-op read path.
type PageCache struct {
	mu       sync.Mutex
	capacity int // pages
	nodes    []pcNode
	entries  map[pageKey]int32
	head     int32 // most recently used, -1 when empty
	tail     int32 // least recently used, -1 when empty
	free     int32 // free-list head (linked through next), -1 when exhausted
	hits     int64
	misses   int64
}

type pcNode struct {
	key        pageKey
	prev, next int32
}

type pageKey struct {
	file string
	page int64
}

const pcNil = int32(-1)

// NewPageCache creates a cache holding capacityBytes worth of pages.
// A non-positive capacity yields a cache that always misses.
func NewPageCache(capacityBytes int64) *PageCache {
	pages := int(capacityBytes / PageSize)
	return &PageCache{
		capacity: pages,
		entries:  make(map[pageKey]int32),
		head:     pcNil,
		tail:     pcNil,
		free:     pcNil,
	}
}

// unlink removes node i from the LRU list. Caller holds c.mu.
func (c *PageCache) unlink(i int32) {
	n := &c.nodes[i]
	if n.prev != pcNil {
		c.nodes[n.prev].next = n.next
	} else {
		c.head = n.next
	}
	if n.next != pcNil {
		c.nodes[n.next].prev = n.prev
	} else {
		c.tail = n.prev
	}
}

// pushFront links node i at the MRU end. Caller holds c.mu.
func (c *PageCache) pushFront(i int32) {
	n := &c.nodes[i]
	n.prev, n.next = pcNil, c.head
	if c.head != pcNil {
		c.nodes[c.head].prev = i
	}
	c.head = i
	if c.tail == pcNil {
		c.tail = i
	}
}

// alloc returns a node index from the free list, growing the slab while
// below capacity. Caller holds c.mu and guarantees room (evicts first).
func (c *PageCache) alloc() int32 {
	if c.free != pcNil {
		i := c.free
		c.free = c.nodes[i].next
		return i
	}
	c.nodes = append(c.nodes, pcNode{})
	return int32(len(c.nodes) - 1)
}

// Touch records an access to the page range [off, off+n) of file. It
// returns the number of pages that missed (must be read from the device).
// All touched pages become resident, evicting LRU pages as needed.
func (c *PageCache) Touch(file string, off, n int64) (missPages int64) {
	if n <= 0 {
		return 0
	}
	first := off / PageSize
	last := (off + n - 1) / PageSize
	c.mu.Lock()
	defer c.mu.Unlock()
	for p := first; p <= last; p++ {
		k := pageKey{file, p}
		if i, ok := c.entries[k]; ok {
			if c.head != i {
				c.unlink(i)
				c.pushFront(i)
			}
			c.hits++
			continue
		}
		c.misses++
		missPages++
		if c.capacity <= 0 {
			continue
		}
		for len(c.entries) >= c.capacity {
			lru := c.tail
			c.unlink(lru)
			delete(c.entries, c.nodes[lru].key)
			c.nodes[lru].next = c.free
			c.free = lru
		}
		i := c.alloc()
		c.nodes[i].key = k
		c.pushFront(i)
		c.entries[k] = i
	}
	return missPages
}

// Contains reports whether a single page is resident, without touching it.
func (c *PageCache) Contains(file string, off int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[pageKey{file, off / PageSize}]
	return ok
}

// InvalidateFile drops every resident page of the named file, as the kernel
// does when a file is deleted. Compactions call this when removing SSTs so
// dead files don't keep polluting the cache.
func (c *PageCache) InvalidateFile(file string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := c.head; i != pcNil; {
		next := c.nodes[i].next
		if c.nodes[i].key.file == file {
			c.unlink(i)
			delete(c.entries, c.nodes[i].key)
			c.nodes[i].next = c.free
			c.free = i
		}
		i = next
	}
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *PageCache) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Stats returns raw hit and miss counts.
func (c *PageCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of resident pages.
func (c *PageCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
