package simdev

import "fmt"

// A Backing gives a Device's files real storage. Without one, file bytes
// live in in-memory extents and vanish with the process — the simulation's
// default, which keeps tests deterministic. With one attached, every file
// created on the device delegates its bytes to a BackingFile (in practice
// an os.File under the engine's data directory), so slab and SST contents
// survive restarts while all of the device's *timing* behaviour — lanes,
// queueing, virtual-time charging — stays exactly the same. The layers
// above keep calling the same File methods either way.
type Backing interface {
	// Create makes a new empty backing file. It fails if name exists.
	Create(name string) (BackingFile, error)
	// Open returns an existing backing file and its current size.
	Open(name string) (BackingFile, int64, error)
	// Remove deletes a backing file by name.
	Remove(name string) error
	// List enumerates existing backing files, for adoption at attach time.
	List() ([]BackingInfo, error)
}

// BackingFile is the I/O surface a backed File delegates to. Reads and
// writes are full-buffer-or-error, mirroring File's contract.
type BackingFile interface {
	ReadAt(p []byte, off int64) error
	WriteAt(p []byte, off int64) error
	Truncate(size int64) error
	Sync() error
	Close() error
}

// BackingInfo describes one existing backing file.
type BackingInfo struct {
	Name string
	Size int64
}

// AttachBacking plugs real storage into the device and adopts every file
// the backing already holds (a recovery-time reopen sees its slab and SST
// files again). It must be called before any file is created on the
// device: mixing in-memory and backed files on one device would make
// "what survives a crash" ambiguous.
func (d *Device) AttachBacking(b Backing) error {
	infos, err := b.List()
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.backing != nil {
		return fmt.Errorf("simdev: device %s already has a backing", d.params.Name)
	}
	if len(d.files) > 0 {
		return fmt.Errorf("simdev: device %s already has files; attach the backing before use", d.params.Name)
	}
	d.backing = b
	for _, info := range infos {
		bf, size, err := b.Open(info.Name)
		if err != nil {
			return err
		}
		d.files[info.Name] = &File{dev: d, name: info.Name, size: size, back: bf}
		d.used += size
		// Adopted names came from NextFileName in a previous incarnation of
		// this device; advance the sequence past them so new names never
		// collide with recovered files.
		if n, ok := nameSeq(info.Name); ok && n > d.seq {
			d.seq = n
		}
	}
	return nil
}

// nameSeq extracts the numeric suffix of a NextFileName-generated name.
func nameSeq(name string) (int64, bool) {
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	if i == len(name) || i == 0 || name[i-1] != '-' {
		return 0, false
	}
	var n int64
	for _, c := range name[i:] {
		n = n*10 + int64(c-'0')
	}
	return n, true
}
