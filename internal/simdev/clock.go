// Package simdev provides a virtual-time simulation of NVMe storage devices.
//
// The PrismDB paper evaluates on real Intel Optane (NVM) and QLC NAND
// hardware. This package substitutes a discrete queueing model: each device
// has a fixed per-request latency, sequential bandwidth, and a number of
// internal channels that serve requests in parallel. Workers carry logical
// clocks; issuing an I/O against a device advances the worker's clock by the
// service time plus any queueing delay caused by other requests occupying
// the device's channels. Because all results in the paper derive from the
// relative latency/bandwidth/endurance gap between tiers, the simulation
// preserves the shape of every experiment while running in virtual time.
package simdev

import "time"

// Clock is a logical clock owned by a single worker goroutine. It is not
// safe for concurrent use; each partition worker and each simulated
// background job owns its own Clock.
type Clock struct {
	now int64 // nanoseconds since simulation start
	bg  bool  // background priority: device I/O uses the background lanes
}

// NewClock returns a clock starting at time zero.
func NewClock() *Clock { return &Clock{} }

// NewBGClock returns a background-priority clock. Device accesses issued
// against it are served from a reserved slice of the device's channels, so
// a background job running ahead in virtual time cannot monopolize the
// lanes foreground requests use — mirroring the I/O prioritization real
// engines apply to compaction traffic.
func NewBGClock() *Clock { return &Clock{bg: true} }

// Background reports whether this is a background-priority clock.
func (c *Clock) Background() bool { return c.bg }

// Now returns the current logical time in nanoseconds.
func (c *Clock) Now() int64 { return c.now }

// Advance moves the clock forward by d. Negative durations are ignored so
// cost models may safely produce zero or rounded-down charges.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += int64(d)
	}
}

// AdvanceTo moves the clock forward to t if t is in the future. It returns
// the stall duration (zero if t was not in the future). Engines use this to
// model waiting on a background compaction or on space to become available.
func (c *Clock) AdvanceTo(t int64) time.Duration {
	if t > c.now {
		d := t - c.now
		c.now = t
		return time.Duration(d)
	}
	return 0
}

// Elapsed returns the time since simulation start as a Duration.
func (c *Clock) Elapsed() time.Duration { return time.Duration(c.now) }
