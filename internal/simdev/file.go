package simdev

import (
	"fmt"
	"sort"
	"sync"
)

// File is a named byte store on a Device. It persists across engine
// restarts (the simulation's notion of durability), so crash-recovery tests
// reopen an engine against the same device and rebuild state from its files.
//
// File separates data movement from time accounting: the Read/Write methods
// move bytes and charge capacity, while callers charge device time through
// Device.Access with whatever clock-and-batching policy fits their layer
// (e.g. the slab layer charges one page write per Put; the SST layer charges
// one large sequential write per flush).
type File struct {
	dev  *Device
	name string

	mu   sync.RWMutex
	data []byte
}

// CreateFile creates an empty file. It fails if the name exists.
func (d *Device) CreateFile(name string) (*File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; ok {
		return nil, fmt.Errorf("simdev: file %q already exists on %s", name, d.params.Name)
	}
	f := &File{dev: d, name: name}
	d.files[name] = f
	return f, nil
}

// NextFileName returns a device-unique generated file name with the prefix.
func (d *Device) NextFileName(prefix string) string {
	d.mu.Lock()
	d.seq++
	n := d.seq
	d.mu.Unlock()
	return fmt.Sprintf("%s-%06d", prefix, n)
}

// OpenFile returns the named file, or an error if absent.
func (d *Device) OpenFile(name string) (*File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("simdev: file %q not found on %s", name, d.params.Name)
	}
	return f, nil
}

// RemoveFile deletes a file and releases its capacity.
func (d *Device) RemoveFile(name string) error {
	d.mu.Lock()
	f, ok := d.files[name]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("simdev: file %q not found on %s", name, d.params.Name)
	}
	delete(d.files, name)
	d.mu.Unlock()
	f.mu.Lock()
	n := int64(len(f.data))
	f.data = nil
	f.mu.Unlock()
	d.release(n)
	return nil
}

// ListFiles returns the names of all files on the device, sorted. Recovery
// scans use this to discover slabs, SSTs, and manifests.
func (d *Device) ListFiles() []string {
	d.mu.Lock()
	names := make([]string, 0, len(d.files))
	for n := range d.files {
		names = append(names, n)
	}
	d.mu.Unlock()
	sort.Strings(names)
	return names
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Size returns the file's current length in bytes.
func (f *File) Size() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int64(len(f.data))
}

// Truncate grows the file to n bytes (zero-filled), reserving capacity.
// Slab files preallocate their full extent this way. Shrinking is not
// supported; n smaller than the current size is a no-op.
func (f *File) Truncate(n int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	grow := n - int64(len(f.data))
	if grow <= 0 {
		return nil
	}
	if err := f.dev.allocate(grow); err != nil {
		return err
	}
	f.data = append(f.data, make([]byte, grow)...)
	return nil
}

// Append adds data to the end of the file and returns the offset where it
// was written. It reserves capacity and fails when the device is full.
func (f *File) Append(data []byte) (off int64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.dev.allocate(int64(len(data))); err != nil {
		return 0, err
	}
	off = int64(len(f.data))
	f.data = append(f.data, data...)
	return off, nil
}

// WriteAt overwrites len(data) bytes at off. The range must lie within the
// file's current size (in-place slab updates never extend the file).
func (f *File) WriteAt(data []byte, off int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if off < 0 || off+int64(len(data)) > int64(len(f.data)) {
		return fmt.Errorf("simdev: WriteAt [%d,%d) out of range for %q (size %d)",
			off, off+int64(len(data)), f.name, len(f.data))
	}
	copy(f.data[off:], data)
	return nil
}

// ReadAt fills buf from offset off. Short reads return an error; callers
// always know exact object extents from their indices.
func (f *File) ReadAt(buf []byte, off int64) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if off < 0 || off+int64(len(buf)) > int64(len(f.data)) {
		return fmt.Errorf("simdev: ReadAt [%d,%d) out of range for %q (size %d)",
			off, off+int64(len(buf)), f.name, len(f.data))
	}
	copy(buf, f.data[off:])
	return nil
}

// Device returns the device holding this file.
func (f *File) Device() *Device { return f.dev }
