package simdev

import (
	"fmt"
	"sort"
	"sync"
)

// File is a named byte store on a Device. It persists across engine
// restarts (the simulation's notion of durability), so crash-recovery tests
// reopen an engine against the same device and rebuild state from its files.
//
// File separates data movement from time accounting: the Read/Write methods
// move bytes and charge capacity, while callers charge device time through
// Device.Access with whatever clock-and-batching policy fits their layer
// (e.g. the slab layer charges one page write per Put; the SST layer charges
// one large sequential write per flush).
//
// Storage is a list of fixed-size extents rather than one contiguous
// buffer: growing a file allocates new extents and never moves existing
// bytes. With a single backing slice, the append that extended a multi-MB
// slab file would periodically reallocate-and-copy the whole file — a
// multi-millisecond stall billed to whichever foreground write triggered
// the grow, which is exactly the class of latency artifact the simulation
// exists to measure honestly.
type File struct {
	dev  *Device
	name string

	mu      sync.RWMutex
	size    int64
	extents [][]byte    // in-memory storage when back == nil
	back    BackingFile // real storage when the device has a Backing
}

// extentBytes is the file extent size. Slab files grow in 64 KiB steps and
// SSTs flush in one append, so 256 KiB keeps the extent count small while
// bounding any single allocation.
const extentBytes = 256 << 10

// ensure grows the extent list (zero-filled) to cover n bytes. Caller
// holds f.mu.
func (f *File) ensure(n int64) {
	need := int((n + extentBytes - 1) / extentBytes)
	for len(f.extents) < need {
		f.extents = append(f.extents, make([]byte, extentBytes))
	}
}

// readLocked copies [off, off+len(buf)) into buf. Caller holds f.mu and
// has bounds-checked.
func (f *File) readLocked(buf []byte, off int64) {
	for len(buf) > 0 {
		ext := f.extents[off/extentBytes]
		n := copy(buf, ext[off%extentBytes:])
		buf = buf[n:]
		off += int64(n)
	}
}

// writeLocked copies data into [off, off+len(data)). Caller holds f.mu and
// has bounds-checked; extents must already cover the range.
func (f *File) writeLocked(data []byte, off int64) {
	for len(data) > 0 {
		ext := f.extents[off/extentBytes]
		n := copy(ext[off%extentBytes:], data)
		data = data[n:]
		off += int64(n)
	}
}

// CreateFile creates an empty file. It fails if the name exists.
func (d *Device) CreateFile(name string) (*File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; ok {
		return nil, fmt.Errorf("simdev: file %q already exists on %s", name, d.params.Name)
	}
	f := &File{dev: d, name: name}
	if d.backing != nil {
		bf, err := d.backing.Create(name)
		if err != nil {
			return nil, err
		}
		f.back = bf
	}
	d.files[name] = f
	return f, nil
}

// NextFileName returns a device-unique generated file name with the prefix.
func (d *Device) NextFileName(prefix string) string {
	d.mu.Lock()
	d.seq++
	n := d.seq
	d.mu.Unlock()
	return fmt.Sprintf("%s-%06d", prefix, n)
}

// OpenFile returns the named file, or an error if absent.
func (d *Device) OpenFile(name string) (*File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("simdev: file %q not found on %s", name, d.params.Name)
	}
	return f, nil
}

// RemoveFile deletes a file and releases its capacity.
func (d *Device) RemoveFile(name string) error {
	d.mu.Lock()
	f, ok := d.files[name]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("simdev: file %q not found on %s", name, d.params.Name)
	}
	delete(d.files, name)
	backing := d.backing
	d.mu.Unlock()
	f.mu.Lock()
	n := f.size
	f.size = 0
	f.extents = nil
	if f.back != nil {
		f.back.Close()
		f.back = nil
		backing.Remove(name)
	}
	f.mu.Unlock()
	d.release(n)
	return nil
}

// ListFiles returns the names of all files on the device, sorted. Recovery
// scans use this to discover slabs, SSTs, and manifests.
func (d *Device) ListFiles() []string {
	d.mu.Lock()
	names := make([]string, 0, len(d.files))
	for n := range d.files {
		names = append(names, n)
	}
	d.mu.Unlock()
	sort.Strings(names)
	return names
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Size returns the file's current length in bytes.
func (f *File) Size() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.size
}

// Truncate grows the file to n bytes (zero-filled), reserving capacity.
// Slab files preallocate their full extent this way. Shrinking is not
// supported; n smaller than the current size is a no-op.
func (f *File) Truncate(n int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	grow := n - f.size
	if grow <= 0 {
		return nil
	}
	if err := f.dev.allocate(grow); err != nil {
		return err
	}
	if f.back != nil {
		if err := f.back.Truncate(n); err != nil {
			f.dev.release(grow)
			return err
		}
	} else {
		f.ensure(n)
	}
	f.size = n
	return nil
}

// Append adds data to the end of the file and returns the offset where it
// was written. It reserves capacity and fails when the device is full.
func (f *File) Append(data []byte) (off int64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.dev.allocate(int64(len(data))); err != nil {
		return 0, err
	}
	off = f.size
	if f.back != nil {
		if err := f.back.WriteAt(data, off); err != nil {
			f.dev.release(int64(len(data)))
			return 0, err
		}
	} else {
		f.ensure(off + int64(len(data)))
		f.writeLocked(data, off)
	}
	f.size = off + int64(len(data))
	return off, nil
}

// WriteAt overwrites len(data) bytes at off. The range must lie within the
// file's current size (in-place slab updates never extend the file).
func (f *File) WriteAt(data []byte, off int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if off < 0 || off+int64(len(data)) > f.size {
		return fmt.Errorf("simdev: WriteAt [%d,%d) out of range for %q (size %d)",
			off, off+int64(len(data)), f.name, f.size)
	}
	if f.back != nil {
		return f.back.WriteAt(data, off)
	}
	f.writeLocked(data, off)
	return nil
}

// ReadAt fills buf from offset off. Short reads return an error; callers
// always know exact object extents from their indices.
func (f *File) ReadAt(buf []byte, off int64) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if off < 0 || off+int64(len(buf)) > f.size {
		return fmt.Errorf("simdev: ReadAt [%d,%d) out of range for %q (size %d)",
			off, off+int64(len(buf)), f.name, f.size)
	}
	if f.back != nil {
		return f.back.ReadAt(buf, off)
	}
	f.readLocked(buf, off)
	return nil
}

// Sync flushes the file's backing store to stable storage. It is a no-op
// for in-memory files: the simulation's durability is the process's
// lifetime. Checkpoints fsync slab files through this.
func (f *File) Sync() error {
	f.mu.RLock()
	back := f.back
	f.mu.RUnlock()
	if back == nil {
		return nil
	}
	return back.Sync()
}

// Device returns the device holding this file.
func (f *File) Device() *Device { return f.dev }
