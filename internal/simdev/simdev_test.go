package simdev

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %d, want 0", c.Now())
	}
	c.Advance(5 * time.Microsecond)
	if got := c.Now(); got != 5000 {
		t.Fatalf("Now = %d, want 5000", got)
	}
	c.Advance(-time.Second) // negative ignored
	if got := c.Now(); got != 5000 {
		t.Fatalf("Now after negative advance = %d, want 5000", got)
	}
	if stall := c.AdvanceTo(4000); stall != 0 {
		t.Fatalf("AdvanceTo(past) stalled %v, want 0", stall)
	}
	if stall := c.AdvanceTo(9000); stall != 4000 {
		t.Fatalf("AdvanceTo(future) stalled %v, want 4000ns", stall)
	}
	if c.Elapsed() != 9000 {
		t.Fatalf("Elapsed = %v, want 9µs", c.Elapsed())
	}
}

func TestDeviceServiceTime(t *testing.T) {
	d := New(Params{
		Name: "t", ReadLatency: 10 * time.Microsecond, WriteLatency: 20 * time.Microsecond,
		ReadBandwidth: 1 << 30, WriteBandwidth: 1 << 30, Channels: 1, Capacity: 1 << 30,
	})
	// 4KB read: latency + 4096/1GiB sec ≈ 10µs + 3.8µs
	svc := d.serviceTime(OpRead, 4096)
	want := 10*time.Microsecond + time.Duration(4096*int64(time.Second)/(1<<30))
	if svc != want {
		t.Fatalf("serviceTime read = %v, want %v", svc, want)
	}
	// Sub-page request rounds up to one page.
	if got := d.serviceTime(OpRead, 100); got != want {
		t.Fatalf("sub-page serviceTime = %v, want %v", got, want)
	}
	// Writes use write latency/bandwidth.
	if got := d.serviceTime(OpWrite, 4096); got <= svc {
		t.Fatalf("write serviceTime %v not slower than read %v", got, svc)
	}
}

func TestDeviceQueueing(t *testing.T) {
	// One channel: second concurrent request must wait for the first.
	d := New(Params{
		Name: "q", ReadLatency: 100 * time.Microsecond, Channels: 1, Capacity: 1 << 30,
	})
	c1 := d.Access(0, OpRead, 4096)
	c2 := d.Access(0, OpRead, 4096)
	if c2 <= c1 {
		t.Fatalf("second request completed at %d, not after first at %d", c2, c1)
	}
	if c2 != 2*c1 {
		t.Fatalf("second request at %d, want %d (serialized)", c2, 2*c1)
	}
	st := d.Stats()
	if st.QueueTime != time.Duration(c1) {
		t.Fatalf("QueueTime = %v, want %v", st.QueueTime, time.Duration(c1))
	}
}

func TestDeviceParallelChannels(t *testing.T) {
	d := New(Params{
		Name: "p", ReadLatency: 100 * time.Microsecond, Channels: 4, Capacity: 1 << 30,
	})
	var completions []int64
	for i := 0; i < 4; i++ {
		completions = append(completions, d.Access(0, OpRead, 4096))
	}
	for i, c := range completions {
		if c != completions[0] {
			t.Fatalf("request %d completed at %d, want all parallel at %d", i, c, completions[0])
		}
	}
	// Fifth request queues.
	if c := d.Access(0, OpRead, 4096); c <= completions[0] {
		t.Fatalf("5th request at %d should queue past %d", c, completions[0])
	}
}

func TestDeviceChannelTimesMonotonic(t *testing.T) {
	// Property: a request issued at time now never completes before
	// now + service, and stats count every operation.
	d := New(Params{Name: "m", ReadLatency: time.Microsecond, Channels: 3, Capacity: 1 << 30})
	f := func(nowRaw uint32, sizeRaw uint16, write bool) bool {
		now := int64(nowRaw)
		size := int64(sizeRaw) + 1
		kind := OpRead
		if write {
			kind = OpWrite
		}
		done := d.Access(now, kind, size)
		return done >= now+int64(d.serviceTime(kind, size))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceStatsAndWear(t *testing.T) {
	d := New(NVMParams(1 << 30))
	clk := NewClock()
	d.AccessClk(clk, OpWrite, 8192)
	d.AccessClk(clk, OpRead, 4096)
	st := d.Stats()
	if st.WriteOps != 1 || st.WriteBytes != 8192 {
		t.Fatalf("write stats = %+v", st)
	}
	if st.ReadOps != 1 || st.ReadBytes != 4096 {
		t.Fatalf("read stats = %+v", st)
	}
	if d.WearBytes() != 8192 {
		t.Fatalf("wear = %d, want 8192", d.WearBytes())
	}
	d.ResetStats()
	if got := d.Stats(); got.WriteOps != 0 || got.ReadOps != 0 {
		t.Fatalf("stats after reset = %+v", got)
	}
	if d.WearBytes() != 8192 {
		t.Fatalf("wear must survive ResetStats, got %d", d.WearBytes())
	}
}

func TestDeviceLifetimeModel(t *testing.T) {
	d := New(QLCParams(600 << 30)) // 600 GB, 0.1 DWPD, 5y warranty
	tbw := d.TotalWriteBudget()
	want := float64(600<<30) * 0.1 * 365 * 5
	if tbw != want {
		t.Fatalf("TBW = %g, want %g", tbw, want)
	}
	// Writing exactly one drive-capacity per day at 0.1 DWPD lasts 0.5y.
	years := d.LifetimeYears(float64(600 << 30))
	if diff := years - 0.5; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("LifetimeYears = %g, want 0.5", years)
	}
	if d.LifetimeYears(0) != 5 {
		t.Fatalf("zero write rate should return warranty years")
	}
}

func TestDeviceCost(t *testing.T) {
	d := New(QLCParams(100 << 30))
	if got := d.Cost(); got != 10.0 {
		t.Fatalf("Cost = %g, want $10 for 100GB at $0.1/GB", got)
	}
}

func TestFileCreateAppendRead(t *testing.T) {
	d := New(NVMParams(1 << 20))
	f, err := d.CreateFile("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateFile("a"); err == nil {
		t.Fatal("duplicate create should fail")
	}
	off, err := f.Append([]byte("hello"))
	if err != nil || off != 0 {
		t.Fatalf("append: off=%d err=%v", off, err)
	}
	off2, _ := f.Append([]byte("world"))
	if off2 != 5 {
		t.Fatalf("second append off=%d, want 5", off2)
	}
	buf := make([]byte, 10)
	if err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "helloworld" {
		t.Fatalf("read %q", buf)
	}
	if err := f.ReadAt(buf, 5); err == nil {
		t.Fatal("out-of-range read should fail")
	}
	if d.Used() != 10 {
		t.Fatalf("used = %d, want 10", d.Used())
	}
}

func TestFileWriteAtInPlace(t *testing.T) {
	d := New(NVMParams(1 << 20))
	f, _ := d.CreateFile("slab")
	if err := f.Truncate(4096); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAt([]byte("xyz"), 100); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if err := f.ReadAt(buf, 100); err != nil || string(buf) != "xyz" {
		t.Fatalf("got %q err %v", buf, err)
	}
	if err := f.WriteAt([]byte("abc"), 4095); err == nil {
		t.Fatal("write past end must fail (in-place only)")
	}
	// Truncate shrink is a no-op.
	if err := f.Truncate(10); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 4096 {
		t.Fatalf("size = %d after shrink attempt, want 4096", f.Size())
	}
}

func TestDeviceCapacityEnforced(t *testing.T) {
	d := New(Params{Name: "tiny", Capacity: 100, Channels: 1})
	f, _ := d.CreateFile("f")
	if _, err := f.Append(make([]byte, 60)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append(make([]byte, 60)); err == nil {
		t.Fatal("append past capacity must fail")
	}
	if err := d.RemoveFile("f"); err != nil {
		t.Fatal(err)
	}
	if d.Used() != 0 {
		t.Fatalf("used after remove = %d", d.Used())
	}
	f2, _ := d.CreateFile("g")
	if _, err := f2.Append(make([]byte, 100)); err != nil {
		t.Fatalf("space not reclaimed: %v", err)
	}
}

func TestDeviceListAndRemove(t *testing.T) {
	d := New(NVMParams(1 << 20))
	d.CreateFile("b")
	d.CreateFile("a")
	d.CreateFile("c")
	got := d.ListFiles()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("ListFiles = %v", got)
	}
	if err := d.RemoveFile("nope"); err == nil {
		t.Fatal("removing missing file should fail")
	}
	if _, err := d.OpenFile("b"); err != nil {
		t.Fatal(err)
	}
	d.RemoveFile("b")
	if _, err := d.OpenFile("b"); err == nil {
		t.Fatal("open after remove should fail")
	}
}

func TestNextFileNameUnique(t *testing.T) {
	d := New(NVMParams(1 << 20))
	seen := map[string]bool{}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				n := d.NextFileName("sst")
				mu.Lock()
				if seen[n] {
					t.Errorf("duplicate name %s", n)
				}
				seen[n] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestPageCacheBasics(t *testing.T) {
	c := NewPageCache(4 * PageSize)
	if miss := c.Touch("f", 0, PageSize); miss != 1 {
		t.Fatalf("first touch misses = %d, want 1", miss)
	}
	if miss := c.Touch("f", 0, PageSize); miss != 0 {
		t.Fatalf("second touch misses = %d, want 0", miss)
	}
	// Range spanning 3 pages.
	if miss := c.Touch("f", PageSize-1, 2*PageSize); miss != 2 {
		t.Fatalf("range touch misses = %d, want 2 (page 0 resident)", miss)
	}
	if !c.Contains("f", 2*PageSize) {
		t.Fatal("page 2 should be resident")
	}
}

func TestPageCacheEviction(t *testing.T) {
	c := NewPageCache(2 * PageSize)
	c.Touch("f", 0, PageSize)          // page 0
	c.Touch("f", PageSize, PageSize)   // page 1
	c.Touch("f", 0, PageSize)          // page 0 now MRU
	c.Touch("f", 2*PageSize, PageSize) // page 2 evicts page 1
	if c.Contains("f", PageSize) {
		t.Fatal("page 1 should be evicted (LRU)")
	}
	if !c.Contains("f", 0) {
		t.Fatal("page 0 should survive (was MRU)")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestPageCacheInvalidateFile(t *testing.T) {
	c := NewPageCache(8 * PageSize)
	c.Touch("a", 0, 2*PageSize)
	c.Touch("b", 0, 2*PageSize)
	c.InvalidateFile("a")
	if c.Contains("a", 0) || c.Contains("a", PageSize) {
		t.Fatal("file a pages should be gone")
	}
	if !c.Contains("b", 0) {
		t.Fatal("file b pages should remain")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestPageCacheZeroCapacity(t *testing.T) {
	c := NewPageCache(0)
	if miss := c.Touch("f", 0, PageSize); miss != 1 {
		t.Fatalf("zero-cap cache must always miss, got %d", miss)
	}
	if miss := c.Touch("f", 0, PageSize); miss != 1 {
		t.Fatalf("zero-cap cache must always miss, got %d", miss)
	}
	if c.HitRate() != 0 {
		t.Fatalf("hit rate = %f", c.HitRate())
	}
}

func TestPageCacheHitRate(t *testing.T) {
	c := NewPageCache(16 * PageSize)
	c.Touch("f", 0, PageSize)
	c.Touch("f", 0, PageSize)
	c.Touch("f", 0, PageSize)
	c.Touch("f", 0, PageSize)
	if hr := c.HitRate(); hr != 0.75 {
		t.Fatalf("hit rate = %f, want 0.75", hr)
	}
	hits, misses := c.Stats()
	if hits != 3 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestAccessClkAdvances(t *testing.T) {
	d := New(QLCParams(1 << 30))
	clk := NewClock()
	lat := d.AccessClk(clk, OpRead, 4096)
	if lat < 391*time.Microsecond {
		t.Fatalf("QLC read latency %v < 391µs", lat)
	}
	if clk.Elapsed() != lat {
		t.Fatalf("clock %v != latency %v", clk.Elapsed(), lat)
	}
}

func TestTierLatencyGap(t *testing.T) {
	// Table 1: ~65× random-read gap between NVM and QLC.
	nvm := New(NVMParams(1 << 30))
	qlc := New(QLCParams(1 << 30))
	nl := nvm.AccessClk(NewClock(), OpRead, 4096)
	ql := qlc.AccessClk(NewClock(), OpRead, 4096)
	ratio := float64(ql) / float64(nl)
	if ratio < 40 || ratio > 90 {
		t.Fatalf("NVM:QLC read gap = %.1fx, want ~65x", ratio)
	}
}
