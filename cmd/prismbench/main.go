// Command prismbench regenerates the tables and figures of the PrismDB
// paper's evaluation (§7) on the simulated two-tier storage substrate.
//
// Usage:
//
//	prismbench -list                  # experiment IDs and descriptions
//	prismbench -exp table2            # one experiment
//	prismbench -exp all               # everything (EXPERIMENTS.md source)
//	prismbench -exp fig10 -scale 4    # 4× the default dataset/ops
//
// The experiment set lives in the bench package's registry
// (bench.Experiments); this command is a thin flag wrapper over it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/prismdb/prismdb/bench"
)

func main() {
	exp := flag.String("exp", "all",
		"experiment id ("+strings.Join(bench.ExperimentIDs(), "|")+"|all)")
	list := flag.Bool("list", false, "list experiments and exit")
	scale := flag.Float64("scale", 1, "dataset/ops multiplier over the CI-friendly default (paper scale ≈ 5000)")
	keys := flag.Int("keys", 0, "override dataset keys")
	ops := flag.Int("ops", 0, "override measured ops")
	valueSize := flag.Int("value", 0, "override object size in bytes")
	parallel := flag.Bool("parallel", false, "drive PrismDB partitions with one worker goroutine each (wall-clock speed; virtual-time results vary slightly run to run)")
	compaction := flag.String("compaction", "", "PrismDB compaction mode: sync, async, or empty for the driver-matched default (serial→sync, parallel→async)")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	bench.UseParallelDriver = *parallel
	switch *compaction {
	case "", "sync", "async":
		bench.ForceCompaction = *compaction
	default:
		fmt.Fprintf(os.Stderr, "prismbench: -compaction must be sync or async, got %q\n", *compaction)
		os.Exit(2)
	}
	sc := bench.DefaultScale().Mul(*scale)
	if *keys > 0 {
		sc.Keys = *keys
	}
	if *ops > 0 {
		sc.Ops = *ops
		sc.WarmupOps = *ops / 2
	}
	if *valueSize > 0 {
		sc.ValueSize = *valueSize
	}

	if err := bench.RunExperiment(os.Stdout, *exp, sc); err != nil {
		fmt.Fprintf(os.Stderr, "prismbench: %v\n", err)
		os.Exit(1)
	}
}
