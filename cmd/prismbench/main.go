// Command prismbench regenerates the tables and figures of the PrismDB
// paper's evaluation (§7) on the simulated two-tier storage substrate.
//
// Usage:
//
//	prismbench -exp table2            # one experiment
//	prismbench -exp all               # everything (EXPERIMENTS.md source)
//	prismbench -exp fig10 -scale 4    # 4× the default dataset/ops
//
// Experiments: table1 table2 fig2 fig5 fig6 fig9 fig10 fig11 fig12 fig13
// fig14a fig14b fig14c fig14d table5 ycsbe all
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/prismdb/prismdb/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1|table2|fig2|fig5|fig6|fig9|fig10|fig11|fig12|fig13|fig14a|fig14b|fig14c|fig14d|table5|ycsbe|all)")
	scale := flag.Float64("scale", 1, "dataset/ops multiplier over the CI-friendly default (paper scale ≈ 5000)")
	keys := flag.Int("keys", 0, "override dataset keys")
	ops := flag.Int("ops", 0, "override measured ops")
	valueSize := flag.Int("value", 0, "override object size in bytes")
	parallel := flag.Bool("parallel", false, "drive PrismDB partitions with one worker goroutine each (wall-clock speed; virtual-time results vary slightly run to run)")
	flag.Parse()
	bench.UseParallelDriver = *parallel

	sc := bench.DefaultScale().Mul(*scale)
	if *keys > 0 {
		sc.Keys = *keys
	}
	if *ops > 0 {
		sc.Ops = *ops
		sc.WarmupOps = *ops / 2
	}
	if *valueSize > 0 {
		sc.ValueSize = *valueSize
	}

	w := os.Stdout
	run := func(id string) error {
		fmt.Fprintf(w, "\n== %s ==\n", id)
		switch id {
		case "table1":
			return bench.Table1(w)
		case "table2":
			_, err := bench.Table2(w, sc)
			return err
		case "fig2":
			_, err := bench.Fig2(w, sc)
			return err
		case "fig5":
			_, err := bench.Fig5(w, sc)
			return err
		case "fig6":
			_, err := bench.Fig6(w, sc)
			return err
		case "fig9":
			_, err := bench.Fig9(w, sc)
			return err
		case "fig10":
			_, err := bench.Fig10(w, sc)
			return err
		case "fig11":
			_, err := bench.Fig11(w, sc)
			return err
		case "fig12":
			_, err := bench.Fig12(w, sc)
			return err
		case "fig13":
			_, err := bench.Fig13(w, sc)
			return err
		case "fig14a":
			_, err := bench.Fig14a(w, sc)
			return err
		case "fig14b":
			_, err := bench.Fig14b(w, sc)
			return err
		case "fig14c":
			_, err := bench.Fig14c(w, sc)
			return err
		case "fig14d":
			_, err := bench.Fig14d(w, sc)
			return err
		case "table5":
			_, err := bench.Table5(w, sc)
			return err
		case "ycsbe":
			_, err := bench.YCSBE(w, sc)
			return err
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table1", "table2", "fig2", "fig5", "fig6", "fig9", "fig10",
			"fig11", "fig12", "fig13", "fig14a", "fig14b", "fig14c", "fig14d", "table5", "ycsbe"}
	}
	for _, id := range ids {
		if err := run(id); err != nil {
			fmt.Fprintf(os.Stderr, "prismbench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
