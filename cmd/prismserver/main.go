// Command prismserver serves a PrismDB instance over a RESP2-subset TCP
// protocol (GET/SET/DEL/MGET/SCAN/PING/INFO), so any Redis client or the
// bundled cmd/prismload generator can put real network load on the engine.
//
// The engine runs RecommendedConfig — the paper's two-tier evaluation setup
// (simulated Optane NVM + QLC flash, tracker at 20% of keys, approx-MSC
// compactions) — so INFO reports both wall-clock serving latencies and the
// engine's virtual-time behavior: tier hit ratios, compaction counters, and
// simulated per-op latencies.
//
// Usage:
//
//	prismserver                          # serve :6380, 1 GiB het10 DB
//	prismserver -addr :7000 -total 4096  # 4 GiB database
//	prismserver -preload 100000          # preload keys before serving
//	prismserver -data-dir /tmp/prism     # durable: WAL + manifest journal,
//	                                     # kill -9 safe, recovers on restart
//	prismserver -metrics-addr :9090      # Prometheus /metrics + /events +
//	                                     # net/http/pprof on a side listener
//
// SIGINT/SIGTERM trigger a graceful shutdown: stop accepting, drain
// connections, then close the DB so stragglers fail with ErrClosed instead
// of racing teardown.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/prismdb/prismdb"
	"github.com/prismdb/prismdb/internal/server"
	"github.com/prismdb/prismdb/workload"
)

func main() {
	addr := flag.String("addr", ":6380", "TCP listen address")
	totalMB := flag.Int64("total", 1024, "database capacity in MiB across both tiers")
	nvmFrac := flag.Float64("nvm", 0.11, "NVM share of capacity (paper het10 ≈ 0.11)")
	parts := flag.Int("partitions", 0, "partition count (0 = default 8)")
	keys := flag.Int("keys", 0, "dataset-size hint for tracker/key-space sizing (0 = derive from capacity)")
	preload := flag.Int("preload", 0, "preload this many workload-keyed 1 KiB objects before serving")
	maxScan := flag.Int("maxscan", 0, "cap on one SCAN command's result count (0 = default 10000)")
	grace := flag.Duration("grace", 5*time.Second, "graceful-shutdown drain window")
	quiet := flag.Bool("quiet", false, "suppress per-connection log output")
	compaction := flag.String("compaction", "async", "compaction mode: async (background workers; short foreground critical sections) or sync (inline, deterministic)")
	writeMode := flag.String("write-mode", "async", "write path: async (per-partition owner goroutine, batched group commit) or sync (legacy locked per-op path)")
	dataDir := flag.String("data-dir", "", "durable data directory (empty = in-memory simulation; see the package docs' Durability section)")
	walSync := flag.String("wal-sync", "sync", "WAL durability mode with -data-dir: sync (ack after fsync, group commit), group (background fsync window), nosync (OS-paced)")
	fsyncEvery := flag.Int("fsync-every", 0, "group mode: fsync every N records (0 = default 64)")
	fsyncInterval := flag.Duration("fsync-interval", 0, "group mode: max delay before a pending batch is fsynced (0 = default 2ms)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics, /events, and net/http/pprof on this address (empty = off)")
	traceSample := flag.Int("trace-sample", 0, "trace 1 in N commands into SLOWLOG/TRACE (0 = default 64, negative = off)")
	slowlogLen := flag.Int("slowlog-len", 0, "SLOWLOG retained-entry cap (0 = default 32)")
	maxConns := flag.Int("max-conns", 0, "cap on concurrently open client connections; extras get '-ERR max clients reached' (0 = unlimited)")
	idleTimeout := flag.Duration("idle-timeout", 0, "close connections idle for this long (0 = never)")
	stallDeadline := flag.Duration("io-stall-deadline", 0, "with -data-dir: declare a WAL I/O stalled (and degrade to read-only) after this long (0 = off)")
	scrubInterval := flag.Duration("scrub-interval", 0, "with -data-dir: background CRC scrub cycle interval for slab slots and SST blocks (0 = off)")
	chaosDebug := flag.Bool("chaos-debug", false, "enable the DEBUG FAULT command for wire-driven fault injection (chaos testing only)")
	flag.Parse()

	cfg0 := prismdb.RecommendedConfig(prismdb.TierSpec{
		TotalBytes:  *totalMB << 20,
		NVMFraction: *nvmFrac,
		Partitions:  *parts,
		DatasetKeys: *keys,
	})
	switch *compaction {
	case "async":
		cfg0.CompactionMode = prismdb.CompactionAsync
	case "sync":
		cfg0.CompactionMode = prismdb.CompactionSync
	default:
		log.Fatalf("prismserver: -compaction must be async or sync, got %q", *compaction)
	}
	wm, err := prismdb.ParseWriteMode(*writeMode)
	if err != nil {
		log.Fatalf("prismserver: %v", err)
	}
	cfg0.WriteMode = wm
	if *dataDir != "" {
		mode, err := prismdb.ParseSyncMode(*walSync)
		if err != nil {
			log.Fatalf("prismserver: %v", err)
		}
		cfg0.DataDir = *dataDir
		cfg0.WALSync = mode
		cfg0.WALFsyncEvery = *fsyncEvery
		cfg0.WALFsyncInterval = *fsyncInterval
		cfg0.IOStallDeadline = *stallDeadline
		cfg0.ScrubInterval = *scrubInterval
	}
	// -chaos-debug wires one fault injector through both the engine's file
	// backend and the server's DEBUG FAULT command, so a chaos harness can
	// break storage over the wire while a workload runs.
	var faults *prismdb.FaultInjector
	if *chaosDebug {
		if *dataDir == "" {
			log.Fatalf("prismserver: -chaos-debug requires -data-dir (faults are injected into the file backend)")
		}
		faults = &prismdb.FaultInjector{}
		cfg0.Faults = faults
		log.Printf("chaos: DEBUG FAULT enabled (fault injection armed over the wire)")
	}
	// One registry and one event log shared by the engine and the server,
	// so /metrics and INFO expose the whole stack from a single source.
	reg := prismdb.NewMetricsRegistry()
	events := prismdb.NewEventLog(256)
	cfg0.Metrics = reg
	cfg0.Events = events

	openStart := time.Now()
	db, err := prismdb.Open(cfg0)
	if err != nil {
		log.Fatalf("prismserver: open: %v", err)
	}
	if ps := db.PersistenceStats(); ps.Durable {
		log.Printf("durable: %s (wal %s), recovered %d WAL records across %d segments in %v (truncated %d torn bytes, removed %d orphan SSTs)",
			*dataDir, *walSync, ps.RecoveryRecords, ps.RecoverySegments,
			time.Since(openStart).Round(time.Millisecond),
			ps.LastRecoveryTruncatedBytes, ps.OrphanSSTsRemoved)
	}

	if *preload > 0 {
		start := time.Now()
		val := make([]byte, 1024)
		for i := range val {
			val[i] = 'a' + byte(i%26)
		}
		// workload.KeyOf, so preloaded keys are exactly what prismload's
		// generators (and the bench harness) will ask for.
		for i := 0; i < *preload; i++ {
			if _, err := db.Put(workload.KeyOf(i), val); err != nil {
				log.Fatalf("prismserver: preload key %d: %v", i, err)
			}
		}
		log.Printf("preloaded %d keys in %v", *preload, time.Since(start).Round(time.Millisecond))
	}

	cfg := server.Config{
		Engine:      db,
		MaxScanLen:  *maxScan,
		Metrics:     reg,
		Events:      events,
		TraceSample: *traceSample,
		SlowlogLen:  *slowlogLen,
		MaxConns:    *maxConns,
		IdleTimeout: *idleTimeout,
		Faults:      faults,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatalf("prismserver: %v", err)
	}

	var msrv *http.Server
	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("prismserver: metrics listen: %v", err)
		}
		msrv = &http.Server{Handler: prismdb.NewMetricsMux(reg, events)}
		go func() {
			if err := msrv.Serve(mln); err != nil && err != http.ErrServerClosed {
				log.Printf("prismserver: metrics: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/metrics (events at /events, pprof at /debug/pprof/)", mln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("prismserver: listen: %v", err)
	}
	// The resolved address is logged so harnesses may pass
	// -addr 127.0.0.1:0 and scrape the chosen ephemeral port.
	log.Printf("prismserver listening on %s (capacity %d MiB, nvm %.0f%%)",
		ln.Addr(), *totalMB, *nvmFrac*100)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatalf("prismserver: serve: %v", err)
	case s := <-sig:
		log.Printf("received %v, draining connections (up to %v)", s, *grace)
	}
	if err := srv.Shutdown(*grace); err != nil {
		log.Printf("prismserver: shutdown: %v", err)
	}
	if msrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := msrv.Shutdown(ctx); err != nil {
			log.Printf("prismserver: metrics shutdown: %v", err)
		}
		cancel()
	}
	if err := <-serveErr; err != nil {
		log.Printf("prismserver: serve: %v", err)
	}
	// Close after the drain so any straggling request fails with ErrClosed
	// rather than observing teardown.
	if err := db.Close(); err != nil {
		log.Printf("prismserver: close: %v", err)
	}
	st := db.Stats()
	log.Printf("final: puts=%d gets=%d deletes=%d scans=%d nvm_read_ratio=%.3f virtual_elapsed=%v",
		st.Puts, st.Gets, st.Deletes, st.Scans, st.NVMReadRatio(), db.Elapsed().Round(time.Microsecond))
}
